// Domain application: principal component of a data covariance matrix via
// power iteration, built entirely on the AUGEM-generated kernels — the kind
// of scientific-computing workload the paper's introduction motivates.
//
//   C = X^T X / samples      (SYRK on the generated GEMM kernel)
//   repeat: v ← C v / ‖C v‖  (GEMV, DOT, AXPY — the other three kernels)
//
//   build/examples/pca_power_iteration

#include <cmath>
#include <cstdio>
#include <vector>

#include "augem/augem_blas.hpp"
#include "support/buffer.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main() {
  using namespace augem;
  auto lib = make_augem_blas();

  // Synthetic data: `samples` observations of `dims` correlated features.
  const long samples = 4096, dims = 512;
  Rng rng(123);
  DoubleBuffer x(static_cast<std::size_t>(samples * dims));  // col-major
  // Feature j = latent signal * weight_j + noise → a dominant component.
  std::vector<double> latent(static_cast<std::size_t>(samples));
  rng.fill(latent);
  for (long j = 0; j < dims; ++j) {
    const double weight = std::sin(0.05 * static_cast<double>(j)) + 1.5;
    for (long i = 0; i < samples; ++i)
      x[static_cast<std::size_t>(j * samples + i)] =
          weight * latent[static_cast<std::size_t>(i)] + 0.1 * rng.uniform();
  }

  Timer total;

  // Covariance (lower triangle) via SYRK: C = X^T X / samples.
  // X^T is dims×samples, so SYRK over A = X^T — expressed with the packed
  // transpose read the library supports (A(n×k) with n=dims, k=samples).
  DoubleBuffer xt(static_cast<std::size_t>(dims * samples));
  for (long j = 0; j < dims; ++j)
    for (long i = 0; i < samples; ++i)
      xt[static_cast<std::size_t>(i * dims + j)] =
          x[static_cast<std::size_t>(j * samples + i)];
  DoubleBuffer c(static_cast<std::size_t>(dims * dims));
  lib->syrk(blas::Uplo::kLower, blas::Trans::kNo, dims, samples, 1.0 / static_cast<double>(samples), xt.data(),
            dims, 0.0, c.data(), dims);
  // Mirror to a full symmetric matrix for the GEMV iterations.
  for (long j = 0; j < dims; ++j)
    for (long i = 0; i < j; ++i)
      c[static_cast<std::size_t>(j * dims + i)] =
          c[static_cast<std::size_t>(i * dims + j)];

  // Power iteration on C.
  DoubleBuffer v(static_cast<std::size_t>(dims));
  DoubleBuffer w(static_cast<std::size_t>(dims));
  for (long i = 0; i < dims; ++i) v[static_cast<std::size_t>(i)] = 1.0;
  double eigenvalue = 0.0;
  int iters = 0;
  for (; iters < 200; ++iters) {
    lib->gemv(dims, dims, 1.0, c.data(), dims, v.data(), 0.0, w.data());
    const double norm = std::sqrt(lib->dot(dims, w.data(), w.data()));
    double next = 0.0;
    for (long i = 0; i < dims; ++i) {
      w[static_cast<std::size_t>(i)] /= norm;
    }
    next = norm;  // ‖Cv‖ with ‖v‖=1 estimates the dominant eigenvalue
    // v ← w via AXPY trickery: v = 0 + 1.0*w.
    for (long i = 0; i < dims; ++i) v[static_cast<std::size_t>(i)] = 0.0;
    lib->axpy(dims, 1.0, w.data(), v.data());
    if (std::abs(next - eigenvalue) < 1e-9 * next) {
      eigenvalue = next;
      break;
    }
    eigenvalue = next;
  }

  std::printf("PCA on %ldx%ld data (covariance %ldx%ld)\n", samples, dims,
              dims, dims);
  std::printf("dominant eigenvalue: %.6f after %d power iterations\n",
              eigenvalue, iters + 1);
  std::printf("total time: %.3f s (SYRK + iterations, all on generated "
              "kernels)\n",
              total.elapsed_s());

  // Sanity: the leading eigenvector should follow the planted weights.
  const double v0 = v[0];
  const double w0 = std::sin(0.0) + 1.5;
  double max_rel = 0.0;
  for (long j = 0; j < dims; ++j) {
    const double expected = (std::sin(0.05 * static_cast<double>(j)) + 1.5) /
                            w0 * v0;
    max_rel = std::max(max_rel,
                       std::abs(v[static_cast<std::size_t>(j)] - expected) /
                           std::abs(expected));
  }
  std::printf("eigenvector matches planted structure within %.2f%%\n",
              100.0 * max_rel);
  return max_rel < 0.05 ? 0 : 1;
}
