// Empirical tuning demo (paper §2.1): search the unroll / unroll&jam /
// strategy space for this machine, print the whole trial table, then build
// a KernelSet from the winner and compare against the untuned defaults.
//
//   build/examples/tune_and_run

#include <cstdio>

#include "augem/augem.hpp"
#include "augem/augem_blas.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "tuning/tuner.hpp"

int main() {
  using namespace augem;
  const Isa isa = host_arch().best_native_isa();
  std::printf("Empirical tuning on %s\n\n", isa_name(isa));

  // 1. Search.
  tuning::TuneWorkload workload;
  workload.mc = 128;
  workload.nc = 120;
  workload.kc = 256;
  const tuning::TuneResult gemm = tuning::tune_gemm(isa, workload);
  std::printf("%s\n", gemm.report().c_str());
  const tuning::TuneResult dot =
      tuning::tune_level1(frontend::KernelKind::kDot, isa, workload);
  std::printf("%s\n", dot.report().c_str());

  // 2. Build kernel sets from the winner and from the defaults.
  transform::CGenParams level1 = dot.params;
  auto tuned = std::make_shared<KernelSet>(isa, gemm.params,
                                           gemm.config.strategy, level1);
  auto tuned_blas =
      make_augem_blas(tuned, blas::default_block_sizes(host_arch()));
  auto default_blas = make_augem_blas();

  // 3. Compare on a full GEMM.
  const long mn = 768, k = 256;
  Rng rng(5);
  DoubleBuffer a(static_cast<std::size_t>(mn * k));
  DoubleBuffer b(static_cast<std::size_t>(k * mn));
  DoubleBuffer c(static_cast<std::size_t>(mn * mn));
  rng.fill(a.span());
  rng.fill(b.span());
  for (auto [label, lib] :
       {std::pair<const char*, blas::Blas*>{"defaults", default_blas.get()},
        {"tuned", tuned_blas.get()}}) {
    const double s = time_best_of(3, [&] {
      lib->gemm(blas::Trans::kNo, blas::Trans::kNo, mn, mn, k, 1.0, a.data(),
                mn, b.data(), k, 0.0, c.data(), mn);
    });
    std::printf("DGEMM %ldx%ldx%ld with %-8s : %10.1f MFLOPS\n", mn, mn, k,
                label, mflops(gemm_flops(mn, mn, k), s));
  }
  return 0;
}
