// Quickstart: generate a DGEMM kernel through the full AUGEM pipeline,
// JIT-compile it, and multiply two matrices with the AUGEM-backed BLAS.
//
//   build/examples/quickstart

#include <cstdio>
#include <vector>

#include "augem/augem.hpp"
#include "augem/augem_blas.hpp"
#include "blas/reference.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main() {
  using namespace augem;

  std::printf("AUGEM quickstart\n================\n%s\n",
              host_arch().report().c_str());

  // 1. Generate the kernel: simple C → optimized C → templates → assembly.
  const Isa isa = host_arch().best_native_isa();
  const GenerateOptions options = default_options(frontend::KernelKind::kGemm, isa);
  const asmgen::GeneratedKernel kernel =
      generate_kernel(frontend::KernelKind::kGemm, options);
  std::printf("generated %s for %s: %zu instructions of assembly\n\n",
              kernel.name.c_str(), isa_name(isa), kernel.insts.size());

  // Show the first lines of the generated assembly.
  std::printf("--- generated assembly (head) ---\n");
  std::size_t pos = 0;
  for (int line = 0; line < 18 && pos != std::string::npos; ++line) {
    const std::size_t next = kernel.asm_text.find('\n', pos);
    std::printf("%s\n", kernel.asm_text.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("... (%zu bytes total)\n\n", kernel.asm_text.size());

  // 2. Use the AUGEM BLAS (kernels JIT-compiled behind the scenes).
  auto blas_lib = make_augem_blas();
  const long m = 768, n = 768, k = 256;
  Rng rng(7);
  DoubleBuffer a(static_cast<std::size_t>(m * k));
  DoubleBuffer b(static_cast<std::size_t>(k * n));
  DoubleBuffer c(static_cast<std::size_t>(m * n));
  rng.fill(a.span());
  rng.fill(b.span());

  const double seconds = time_best_of(3, [&] {
    blas_lib->gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0, a.data(),
                   m, b.data(), k, 0.0, c.data(), m);
  });
  std::printf("DGEMM %ldx%ldx%ld: %.1f MFLOPS\n", m, n, k,
              mflops(gemm_flops(m, n, k), seconds));

  // 3. Verify against the reference implementation.
  std::vector<double> c_ref(static_cast<std::size_t>(m * n), 0.0);
  blas::ref::gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0, a.data(),
                  m, b.data(), k, 0.0, c_ref.data(), m);
  double max_err = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i)
    max_err = std::max(max_err, std::abs(c[i] - c_ref[i]));
  std::printf("max |error| vs reference: %.3e %s\n", max_err,
              max_err < 1e-9 ? "(ok)" : "(FAILED)");
  return max_err < 1e-9 ? 0 : 1;
}
