// Walks one kernel through every stage of the AUGEM pipeline and prints the
// intermediate artifacts — the programmatic version of the paper's Figs.
// 12-14 plus the final assembly:
//
//   1. the simple C input            (Fig. 12)
//   2. the optimized low-level C     (Fig. 13)
//   3. the template-annotated form   (Fig. 14)
//   4. the generated assembly, for a selectable ISA
//
//   build/examples/inspect_pipeline [gemm|gemv|axpy|dot] [sse2|avx|fma3|fma4]

#include <cstdio>
#include <cstring>

#include "augem/augem.hpp"
#include "match/identifier.hpp"

int main(int argc, char** argv) {
  using namespace augem;
  using frontend::KernelKind;

  KernelKind kind = KernelKind::kGemm;
  if (argc > 1) {
    for (KernelKind k : {KernelKind::kGemm, KernelKind::kGemv,
                         KernelKind::kAxpy, KernelKind::kDot})
      if (std::strcmp(argv[1], frontend::kernel_kind_name(k)) == 0) kind = k;
  }
  Isa isa = Isa::kFma3;
  if (argc > 2) {
    for (Isa i : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
      std::string lower = isa_name(i);
      for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
      if (lower == argv[2]) isa = i;
    }
  }

  GenerateOptions options = default_options(kind, isa);
  // Small tile so the listing stays readable.
  options.params.mr = std::min(options.params.mr, 2 * isa_vector_doubles(isa));
  options.params.ku = 1;
  options.params.unroll = std::min(options.params.unroll, 8);

  std::printf("==== 1. simple C input (paper Fig. 12/15/16/17) ====\n%s\n",
              frontend::make_kernel(kind, options.layout).to_string().c_str());

  ir::Kernel optimized = transform::generate_optimized_c(
      kind, options.layout, options.params);
  std::printf("==== 2. optimized low-level C (paper Fig. 13) ====\n%s\n",
              optimized.to_string().c_str());

  ir::Kernel annotated = optimized.clone();
  const match::MatchResult match = match::identify_templates(annotated);
  std::printf("==== 3. template-annotated (paper Fig. 14) ====\n%s\n",
              annotated.to_string().c_str());
  std::printf("identified regions:\n");
  for (const match::Region& r : match.regions)
    std::printf("  #%d %-16s x%zu\n", r.id, r.name().c_str(), r.size());

  const asmgen::GeneratedKernel gen = generate_kernel(kind, options);
  std::printf("\n==== 4. generated %s assembly ====\n%s\n", isa_name(isa),
              gen.asm_text.c_str());
  return 0;
}
