// Thread-scaling benchmark for the blocked DGEMM driver: GFLOPS versus
// thread count at a fixed square size (default 2048, overridable via
// argv[1]), one JSON row per point plus the usual human-readable table.
//
// The serial row (threads=1) runs the historical single-core driver; the
// threaded rows run the shared-packed-B / partitioned-ic decomposition on
// the global pool. The paper's OpenBLAS integration reports both single-
// and multi-threaded DGEMM; this is our equivalent of that second curve.
//
// Expected shape: near-linear scaling while cores are exclusive, with the
// 4-thread point at ≳2.5× serial on a ≥4-core machine.

#include "common.hpp"

#include <algorithm>

#include "support/threadpool.hpp"

int main(int argc, char** argv) {
  using namespace augem;
  using namespace augem::bench;

  const long mn = argc > 1 ? std::atol(argv[1]) : 2048;
  print_platform("Thread scaling: DGEMM, m=n=k sweep over thread counts");
  SuiteReporter reporter("scaling_threads");

  auto kernels = std::make_shared<KernelSet>(host_arch().best_native_isa());
  const blas::BlockSizes sizes = blas::default_block_sizes(host_arch());

  std::vector<int> thread_counts;
  const int max_threads = ThreadPool::global().num_threads();
  for (int t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);
  if (max_threads < 4)
    std::printf("note: pool has %d thread(s); set AUGEM_NUM_THREADS to force "
                "a wider sweep\n",
                max_threads);

  Rng rng(29);
  DoubleBuffer a(static_cast<std::size_t>(mn * mn));
  DoubleBuffer b(static_cast<std::size_t>(mn * mn));
  DoubleBuffer c(static_cast<std::size_t>(mn * mn));
  rng.fill(a.span());
  rng.fill(b.span());

  std::printf("%12s  %20s  %12s\n", "threads", "GFLOPS", "speedup");
  double serial_gflops = 0.0;
  std::vector<std::pair<int, double>> rows;
  for (int t : thread_counts) {
    auto lib = make_augem_blas(kernels, sizes, t);
    const double mf = reporter.measure_mflops(
        "AUGEM", mn, mn, mn, gemm_flops(mn, mn, mn),
        [&] {
          lib->gemm(blas::Trans::kNo, blas::Trans::kNo, mn, mn, mn, 1.0,
                    a.data(), mn, b.data(), mn, 0.0, c.data(), mn);
        },
        t);
    const double gflops = mf / 1000.0;
    if (t == 1) serial_gflops = gflops;
    const double speedup = serial_gflops > 0.0 ? gflops / serial_gflops : 0.0;
    std::printf("%12d  %20.2f  %12.2f\n", t, gflops, speedup);
    rows.emplace_back(t, gflops);
  }
  std::printf("\n");
  for (const auto& [t, gflops] : rows)
    print_json_row("scaling_threads", "AUGEM", mn, mn, mn, t, gflops,
                   serial_gflops > 0.0 ? gflops / serial_gflops : 0.0);
  return 0;
}
