// Table 6 reproduction: average MFLOPS of the six higher-level DLA routines
// (SYMM, SYRK, SYR2K, TRMM, TRSM, GER) built on the generated kernels,
// versus the comparator stand-ins.
//
// Expected shape (paper Table 6): AUGEM wins every routine except TRSM,
// where its non-template-optimized triangular-solve step lets the vendor
// library edge ahead — our TRSM deliberately reproduces that structure.

#include "common.hpp"

namespace {

using namespace augem;
using namespace augem::bench;
using blas::index_t;
using blas::Side;
using blas::Trans;
using blas::Uplo;

struct Routine {
  const char* name;
  double (*run)(SuiteReporter&, const std::string& series, blas::Blas&,
                long mn, long k, Rng&);
};

double run_symm(SuiteReporter& rep, const std::string& series,
                blas::Blas& lib, long mn, long k, Rng& rng) {
  (void)k;
  DoubleBuffer a(static_cast<std::size_t>(mn * mn));
  DoubleBuffer b(static_cast<std::size_t>(mn * 256));
  DoubleBuffer c(static_cast<std::size_t>(mn * 256));
  rng.fill(a.span());
  rng.fill(b.span());
  return rep.measure_mflops(series, mn, 256, 0, symm_flops(mn, 256), [&] {
    lib.symm(Side::kLeft, Uplo::kLower, mn, 256, 1.0, a.data(), mn,
             b.data(), mn, 0.0, c.data(), mn);
  });
}

double run_syrk(SuiteReporter& rep, const std::string& series,
                blas::Blas& lib, long mn, long k, Rng& rng) {
  DoubleBuffer a(static_cast<std::size_t>(mn * k));
  DoubleBuffer c(static_cast<std::size_t>(mn * mn));
  rng.fill(a.span());
  return rep.measure_mflops(series, mn, 0, k, syrk_flops(mn, k), [&] {
    lib.syrk(Uplo::kLower, Trans::kNo, mn, k, 1.0, a.data(), mn, 0.0,
             c.data(), mn);
  });
}

double run_syr2k(SuiteReporter& rep, const std::string& series,
                blas::Blas& lib, long mn, long k, Rng& rng) {
  DoubleBuffer a(static_cast<std::size_t>(mn * k));
  DoubleBuffer b(static_cast<std::size_t>(mn * k));
  DoubleBuffer c(static_cast<std::size_t>(mn * mn));
  rng.fill(a.span());
  rng.fill(b.span());
  return rep.measure_mflops(series, mn, 0, k, syr2k_flops(mn, k), [&] {
    lib.syr2k(Uplo::kLower, Trans::kNo, mn, k, 1.0, a.data(), mn,
              b.data(), mn, 0.0, c.data(), mn);
  });
}

double run_trmm(SuiteReporter& rep, const std::string& series,
                blas::Blas& lib, long mn, long k, Rng& rng) {
  (void)k;
  DoubleBuffer l(static_cast<std::size_t>(mn * mn));
  DoubleBuffer b(static_cast<std::size_t>(mn * 256));
  rng.fill(l.span());
  rng.fill(b.span());
  return rep.measure_mflops(series, mn, 256, 0, trmm_flops(mn, 256), [&] {
    lib.trmm(Side::kLeft, Uplo::kLower, Trans::kNo, mn, 256, 1.0,
             l.data(), mn, b.data(), mn);
  });
}

double run_trsm(SuiteReporter& rep, const std::string& series,
                blas::Blas& lib, long mn, long k, Rng& rng) {
  (void)k;
  DoubleBuffer l(static_cast<std::size_t>(mn * mn));
  DoubleBuffer b(static_cast<std::size_t>(mn * 256));
  rng.fill(l.span());
  for (long i = 0; i < mn; ++i) l[i * mn + i] = 4.0 + i % 3;
  rng.fill(b.span());
  return rep.measure_mflops(series, mn, 256, 0, trsm_flops(mn, 256), [&] {
    lib.trsm(Side::kLeft, Uplo::kLower, Trans::kNo, mn, 256, 1.0,
             l.data(), mn, b.data(), mn);
  });
}

double run_ger(SuiteReporter& rep, const std::string& series,
                blas::Blas& lib, long mn, long k, Rng& rng) {
  (void)k;
  DoubleBuffer x(static_cast<std::size_t>(mn));
  DoubleBuffer y(static_cast<std::size_t>(mn));
  DoubleBuffer a(static_cast<std::size_t>(mn * mn));
  rng.fill(x.span());
  rng.fill(y.span());
  return rep.measure_mflops(series, mn, mn, 0, ger_flops(mn, mn) * 4, [&] {
    for (int r = 0; r < 4; ++r)
      lib.ger(mn, mn, 1.0000001, x.data(), y.data(), a.data(), mn);
  });
}

}  // namespace

int main() {
  print_platform("Table 6: higher-level DLA routines (avg MFLOPS)");
  auto libs = figure_libraries();
  augem::bench::SuiteReporter reporter("table6_level3");

  const Routine routines[] = {
      {"SYMM", run_symm},  {"SYRK", run_syrk}, {"SYR2K", run_syr2k},
      {"TRMM", run_trmm},  {"TRSM", run_trsm}, {"GER", run_ger},
  };

  std::printf("%8s", "Routine");
  for (const auto& l : libs) std::printf("  %20s", l.label.c_str());
  std::printf("\n");

  for (const Routine& r : routines) {
    std::printf("%8s", r.name);
    const bool is_ger = std::string(r.name) == "GER";
    for (const auto& l : libs) {
      double sum = 0.0;
      int count = 0;
      // Level-3: m=n ∈ {256, 384, 512}, k=256 (paper: k=256, m=n sweep).
      // GER: m=n ∈ {768, 1024} (paper: 2048..5120).
      for (long mn : is_ger ? std::vector<long>{768, 1024}
                            : std::vector<long>{256, 384, 512}) {
        Rng rng(37);
        sum += r.run(reporter, std::string(r.name) + "/" + l.label, *l.lib,
                     mn, 256, rng);
        ++count;
      }
      std::printf("  %20.1f", sum / count);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: AUGEM leads every row except TRSM (its "
              "diagonal solve is deliberately non-template-optimized, as in "
              "the paper).\n\n");
  return 0;
}
