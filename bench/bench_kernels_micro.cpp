// google-benchmark microbenchmarks of the four generated kernels, for
// fine-grained perf tracking (complements the figure-style sweeps).

#include <benchmark/benchmark.h>

#include "augem/augem.hpp"
#include "support/buffer.hpp"
#include "support/rng.hpp"

namespace {

using namespace augem;

KernelSet& kernels() {
  static KernelSet set(host_arch().best_native_isa());
  return set;
}

void BM_GemmKernel(benchmark::State& state) {
  KernelSet& set = kernels();
  const long mn = state.range(0);
  const long mc = mn / set.gemm_mr() * set.gemm_mr();
  const long nc = mn / set.gemm_nr() * set.gemm_nr();
  const long kc = 256;
  Rng rng(1);
  DoubleBuffer pa(static_cast<std::size_t>(mc * kc));
  DoubleBuffer pb(static_cast<std::size_t>(nc * kc));
  DoubleBuffer c(static_cast<std::size_t>(mc * nc));
  rng.fill(pa.span());
  rng.fill(pb.span());
  for (auto _ : state)
    set.gemm()(mc, nc, kc, pa.data(), pb.data(), c.data(), mc);
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(mc) * static_cast<double>(nc) *
          static_cast<double>(kc),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmKernel)->Arg(128)->Arg(256)->Arg(384);

void BM_GemvKernel(benchmark::State& state) {
  const long mn = state.range(0);
  Rng rng(2);
  DoubleBuffer a(static_cast<std::size_t>(mn * mn));
  DoubleBuffer x(static_cast<std::size_t>(mn));
  DoubleBuffer y(static_cast<std::size_t>(mn));
  rng.fill(a.span());
  rng.fill(x.span());
  for (auto _ : state) kernels().gemv()(mn, mn, a.data(), mn, x.data(), y.data());
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(mn) * static_cast<double>(mn),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemvKernel)->Arg(512)->Arg(1024);

void BM_AxpyKernel(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(3);
  DoubleBuffer x(static_cast<std::size_t>(n));
  DoubleBuffer y(static_cast<std::size_t>(n));
  rng.fill(x.span());
  rng.fill(y.span());
  for (auto _ : state) kernels().axpy()(n, 1.0000001, x.data(), y.data());
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AxpyKernel)->Arg(10000)->Arg(100000);

void BM_DotKernel(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(4);
  DoubleBuffer x(static_cast<std::size_t>(n));
  DoubleBuffer y(static_cast<std::size_t>(n));
  rng.fill(x.span());
  rng.fill(y.span());
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels().dot()(n, x.data(), y.data()));
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DotKernel)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
