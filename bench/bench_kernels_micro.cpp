// Microbenchmarks of the generated kernels, for fine-grained perf tracking
// (complements the figure-style sweeps). Runs the shared "micro" suite
// (src/perf/suites.hpp) — the same points tools/bench_gate gates on — so
// this binary, the gate, and the bench_quick_gate ctest all produce
// byte-compatible BENCH_micro.json trajectories.
//
//   bench_kernels_micro [--quick] [--pessimize]
//
// --quick shrinks problems to the tier-1 smoke sizes; --pessimize runs the
// deliberately slow kernel configuration (for exercising the gate by hand).

#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "perf/suites.hpp"

int main(int argc, char** argv) {
  using namespace augem;
  using namespace augem::bench;

  perf::SuiteOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--pessimize") == 0) {
      options.pessimize = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels_micro [--quick] [--pessimize]\n");
      return 2;
    }
  }

  print_platform("Micro: generated kernels through BenchRunner");
  const perf::BenchReport report = perf::run_suite("micro", options);

  std::printf("%-8s %10s %10s %10s  %-28s %6s %6s\n", "kernel", "m", "n", "k",
              "GFLOPS [95% CI]", "reps", "freq");
  const CpuArch& arch = host_arch();
  for (const perf::BenchRow& r : report.rows) {
    char ci[40];
    std::snprintf(ci, sizeof ci, "%.2f [%.2f, %.2f]", r.gflops, r.gflops_lo,
                  r.gflops_hi);
    std::printf("%-8s %10ld %10ld %10ld  %-28s %6d %6s\n", r.name.c_str(),
                r.m, r.n, r.k, ci, r.reps, r.frequency_stable ? "ok" : "DRIFT");
  }
  if (!report.rows.empty())
    std::printf("roofline: gemm %s\n",
                perf::roofline_annotation(report.rows.front().gflops, arch,
                                          arch.best_native_isa())
                    .c_str());

  const std::string path = perf::write_report(report);
  std::printf("trajectory: %s (%zu rows, rev %s)\n\n", path.c_str(),
              report.rows.size(), report.git_rev.c_str());
  return 0;
}
