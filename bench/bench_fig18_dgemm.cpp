// Figure 18 reproduction: DGEMM MFLOPS across output sizes m = n with
// k = 256, four series (AUGEM, vendor stand-in, ATLAS stand-in, GotoBLAS
// stand-in). Paper: m = n ∈ [1024, 6144]; here scaled to single-core /
// CI sizes — the series ordering and ratios are the reproduction target.
//
// Expected shape (paper Fig. 18): AUGEM ≈ or slightly above the vendor
// library (+1.4% MKL / +2.6% ACML in the paper), ATLAS a few percent back,
// GotoBLAS far behind (−47%…−89%) because it lacks AVX/FMA.

#include "common.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Figure 18: DGEMM, m=n sweep, k=256");
  auto libs = figure_libraries();
  SuiteReporter reporter("fig18_dgemm");
  print_series_header("m=n (k=256)", libs);

  const long k = 256;
  std::vector<double> sums(libs.size(), 0.0);
  int rows = 0;
  for (long mn = 384; mn <= 1280; mn += 128) {
    Rng rng(17);
    DoubleBuffer a(static_cast<std::size_t>(mn * k));
    DoubleBuffer b(static_cast<std::size_t>(k * mn));
    DoubleBuffer c(static_cast<std::size_t>(mn * mn));
    rng.fill(a.span());
    rng.fill(b.span());

    std::vector<double> row;
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double mf = reporter.measure_mflops(
          libs[li].label, mn, mn, k, gemm_flops(mn, mn, k), [&] {
            libs[li].lib->gemm(blas::Trans::kNo, blas::Trans::kNo, mn, mn, k,
                               1.0, a.data(), mn, b.data(), k, 0.0, c.data(),
                               mn);
          });
      row.push_back(mf);
      sums[li] += mf;
    }
    print_series_row(mn, row);
    ++rows;
  }
  for (double& s : sums) s /= rows;
  print_average_summary(libs, sums);
  return 0;
}
