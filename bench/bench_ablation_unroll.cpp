// Ablation: the unroll / unroll&jam search surface (paper §2.1: factors
// are "extremely sensitive to variations of the underlying machine
// architecture", hence the empirical tuner). Prints the (mr × nr) MFLOPS
// grid the tuner searches; infeasible points (register overflow) show 0.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: register-tile (unroll&jam) search surface");
  const Isa isa = host_arch().best_native_isa();
  SuiteReporter reporter("ablation_unroll");
  GemmKernelBench bench;

  const int mrs[] = {2, 4, 8, 16};
  const int nrs[] = {1, 2, 4, 8};
  std::printf("%8s", "mr\\nr");
  for (int nr : nrs) std::printf("  %8d", nr);
  std::printf("\n");
  for (int mr : mrs) {
    std::printf("%8d", mr);
    for (int nr : nrs) {
      transform::CGenParams p;
      p.mr = mr;
      p.nr = nr;
      opt::OptConfig cfg;
      cfg.isa = isa;
      char series[32];
      std::snprintf(series, sizeof series, "mr%d_nr%d", mr, nr);
      std::printf("  %8.0f", bench.run(p, cfg, &reporter, series));
    }
    std::printf("\n");
  }
  std::printf("(0 = infeasible: the planner rejects tiles that exceed the "
              "vector register file)\n\n");

  // Inner-loop unroll (ku) on the best 2w×w tile.
  const int w = isa_vector_doubles(isa);
  std::printf("%8s %10s\n", "ku", "MFLOPS");
  for (int ku : {1, 2, 4}) {
    transform::CGenParams p;
    p.mr = 2 * w;
    p.nr = w;
    p.ku = ku;
    opt::OptConfig cfg;
    cfg.isa = isa;
    char series[32];
    std::snprintf(series, sizeof series, "ku%d", ku);
    std::printf("%8d %10.1f\n", ku, bench.run(p, cfg, &reporter, series));
  }
  std::printf("\n");
  return 0;
}
