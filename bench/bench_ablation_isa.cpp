// Ablation: the instruction-mapping rules of Tables 1-4 — the identical
// template pipeline retargeted across ISAs. SSE2 halves the vector width;
// AVX doubles it with discrete Mul+Add; FMA3 fuses them. FMA4 output is
// generated and VM-verified (see tests) but cannot run natively here.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: same templates, different ISA mapping rules");
  SuiteReporter reporter("ablation_isa");
  GemmKernelBench bench;

  std::printf("%-8s %-10s %10s\n", "ISA", "tile", "MFLOPS");
  for (Isa isa : host_arch().native_isas()) {
    if (isa == Isa::kFma4) continue;  // not natively executable here
    const int w = isa_vector_doubles(isa);
    transform::CGenParams p;
    p.mr = 2 * w;
    p.nr = w;
    opt::OptConfig cfg;
    cfg.isa = isa;
    cfg.strategy = opt::VecStrategy::kVdup;
    std::printf("%-8s %dx%-8d %10.1f\n", isa_name(isa), p.mr, p.nr,
                bench.run(p, cfg, &reporter, isa_name(isa)));
  }
  std::printf("(FMA4 code is generated and semantically verified in the VM; "
              "this host cannot execute it natively)\n\n");
  return 0;
}
