// Ablation: the paper's two SIMD vectorization strategies (§3.4).
// Vdup (Vld-Vdup-Vmul-Vadd) vs Shuf (Vld-Vld + Shufi rotations) on the
// n×n register tile where both are legal, plus Vdup on its preferred
// larger tile — showing why kernels pick one strategy per machine.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: Vdup vs Shuf vectorization (GEMM kernel)");
  const Isa isa = host_arch().best_native_isa();
  const int w = isa_vector_doubles(isa);
  SuiteReporter reporter("ablation_vdup_shuf");
  GemmKernelBench bench;

  struct Case {
    const char* label;
    int mr, nr;
    opt::VecStrategy strategy;
  };
  const Case cases[] = {
      {"vdup  w x w ", w, w, opt::VecStrategy::kVdup},
      {"shuf  w x w ", w, w, opt::VecStrategy::kShuf},
      {"vdup 2w x w ", 2 * w, w, opt::VecStrategy::kVdup},
      {"vdup 2w x 2 ", 2 * w, 2, opt::VecStrategy::kVdup},
  };
  std::printf("%-14s %10s\n", "strategy/tile", "MFLOPS");
  for (const Case& c : cases) {
    transform::CGenParams p;
    p.mr = c.mr;
    p.nr = c.nr;
    opt::OptConfig cfg;
    cfg.isa = isa;
    cfg.strategy = c.strategy;
    std::string series = c.label;
    for (char& ch : series)
      if (ch == ' ') ch = '_';
    std::printf("%-14s %10.1f\n", c.label,
                bench.run(p, cfg, &reporter, series));
  }
  std::printf("\n");
  return 0;
}
