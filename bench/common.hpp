#pragma once
// Shared benchmark scaffolding: the library roster of the paper's figures
// (AUGEM + the three comparator stand-ins), the measurement policy, and
// table formatting.
//
// All timing goes through perf::BenchRunner (src/perf): warmup detection,
// adaptive repetition to a target confidence interval, median/MAD
// statistics, and a frequency-drift probe — docs/benchmarking.md is the
// methodology reference. Each bench records its points into a
// SuiteReporter, which writes a schema-versioned BENCH_<name>.json
// trajectory file (machine signature, git revision, per-point GFLOPS with
// CI bounds) that tools/bench_gate can diff against a baseline.
//
// Absolute MFLOPS are machine-specific; EXPERIMENTS.md compares *shapes* —
// series ordering, rough ratios, crossovers — against the paper's figures.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "augem/augem_blas.hpp"
#include "blas/libraries.hpp"
#include "perf/bench_runner.hpp"
#include "perf/clock.hpp"
#include "perf/report.hpp"
#include "perf/roofline.hpp"
#include "support/arch.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"

namespace augem::bench {

struct NamedLib {
  std::string label;   ///< series label incl. which paper library it stands for
  std::unique_ptr<blas::Blas> lib;
};

/// The four series of Figs. 18-21 / Table 6: AUGEM vs the stand-ins for
/// MKL/ACML ("vendorsim"), ATLAS ("atlsim") and GotoBLAS ("gotosim").
inline std::vector<NamedLib> figure_libraries() {
  std::vector<NamedLib> libs;
  libs.push_back({"AUGEM", make_augem_blas()});
  libs.push_back({"vendorsim(MKL/ACML)", blas::make_vendorsim()});
  libs.push_back({"atlsim(ATLAS)", blas::make_atlsim()});
  libs.push_back({"gotosim(GotoBLAS)", blas::make_gotosim()});
  return libs;
}

/// Median-of-adaptive-reps MFLOPS for a workload closure (no trajectory
/// row; prefer SuiteReporter::measure_mflops so the point is recorded).
inline double measure_mflops(double flops, const std::function<void()>& fn) {
  return perf::BenchRunner().run(flops, fn).mflops();
}

/// Collects one bench's measurements and writes BENCH_<name>.json on
/// destruction (into AUGEM_BENCH_DIR or the current directory).
class SuiteReporter {
 public:
  explicit SuiteReporter(std::string bench_name)
      : report_(perf::make_host_report(std::move(bench_name))) {}

  SuiteReporter(const SuiteReporter&) = delete;
  SuiteReporter& operator=(const SuiteReporter&) = delete;

  /// Measures `fn` through BenchRunner, records a trajectory row under
  /// `series` with problem identity (m, n, k, threads), and returns the
  /// median MFLOPS for the human-readable tables.
  double measure_mflops(const std::string& series, long m, long n, long k,
                        double flops, const std::function<void()>& fn,
                        int threads = 1) {
    const perf::Measurement meas = runner_.run(flops, fn);
    report_.rows.push_back(
        perf::BenchRow::from_measurement(meas, series, m, n, k, threads));
    return meas.mflops();
  }

  /// Records an externally produced row (one-shot latencies, VM
  /// instruction counts — anything not re-runnable through the runner).
  void add_row(perf::BenchRow row) { report_.rows.push_back(std::move(row)); }

  const perf::BenchReport& report() const { return report_; }

  /// Writes the trajectory file; called automatically on destruction.
  void write() {
    if (written_ || report_.rows.empty()) return;
    written_ = true;
    try {
      const std::string path = perf::write_report(report_);
      std::printf("trajectory: %s (%zu rows, rev %s)\n", path.c_str(),
                  report_.rows.size(), report_.git_rev.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "trajectory write failed: %s\n", e.what());
    }
  }

  ~SuiteReporter() { write(); }

 private:
  perf::BenchRunner runner_;
  perf::BenchReport report_;
  bool written_ = false;
};

inline void print_platform(const char* title) {
  std::printf("==== %s ====\n", title);
  std::printf("%s", host_arch().report().c_str());
  std::printf("(shape comparison vs the paper; absolute MFLOPS are "
              "machine-specific)\n\n");
  // Spin the FPU briefly so the first measured series is not taken during
  // the CPU's clock ramp (observed: the first binary of a suite run can
  // otherwise measure at half frequency).
  perf::spin_fpu(0.4);
}

inline void print_series_header(const char* xlabel,
                                const std::vector<NamedLib>& libs) {
  std::printf("%12s", xlabel);
  for (const NamedLib& l : libs) std::printf("  %20s", l.label.c_str());
  std::printf("\n");
}

inline void print_series_row(long x, const std::vector<double>& mflops) {
  std::printf("%12ld", x);
  for (double v : mflops) std::printf("  %20.1f", v);
  std::printf("\n");
}

/// One machine-readable result row (one JSON object per line, so runs can
/// be concatenated and post-processed with line-oriented tools). Used by
/// the scaling benchmarks alongside the BENCH_*.json trajectory files.
inline void print_json_row(const char* bench, const char* lib, long m, long n,
                           long k, int threads, double gflops,
                           double speedup) {
  std::printf(
      "{\"bench\":\"%s\",\"lib\":\"%s\",\"m\":%ld,\"n\":%ld,\"k\":%ld,"
      "\"threads\":%d,\"gflops\":%.3f,\"speedup_vs_1t\":%.3f}\n",
      bench, lib, m, n, k, threads, gflops, speedup);
}

/// Prints the paper-style "AUGEM outperforms X by N%" summary from
/// per-library average MFLOPS (index 0 = AUGEM), with the roofline
/// annotation for the AUGEM series.
inline void print_average_summary(const std::vector<NamedLib>& libs,
                                  const std::vector<double>& avg) {
  std::printf("\naverage MFLOPS:");
  for (std::size_t i = 0; i < libs.size(); ++i)
    std::printf("  %s=%.1f", libs[i].label.c_str(), avg[i]);
  std::printf("\nAUGEM vs:");
  for (std::size_t i = 1; i < libs.size(); ++i)
    std::printf("  %s %+.1f%%", libs[i].label.c_str(),
                100.0 * (avg[0] / avg[i] - 1.0));
  const CpuArch& arch = host_arch();
  std::printf("\nroofline: AUGEM %s\n\n",
              perf::roofline_annotation(avg[0] / 1000.0, arch,
                                        arch.best_native_isa())
                  .c_str());
}

}  // namespace augem::bench
