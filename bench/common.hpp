#pragma once
// Shared benchmark scaffolding: the library roster of the paper's figures
// (AUGEM + the three comparator stand-ins), timing policy (mean of N runs,
// as §5 reports), and table formatting.
//
// Absolute MFLOPS are machine-specific; EXPERIMENTS.md compares *shapes* —
// series ordering, rough ratios, crossovers — against the paper's figures.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "augem/augem_blas.hpp"
#include "blas/libraries.hpp"
#include "support/arch.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace augem::bench {

struct NamedLib {
  std::string label;   ///< series label incl. which paper library it stands for
  std::unique_ptr<blas::Blas> lib;
};

/// The four series of Figs. 18-21 / Table 6: AUGEM vs the stand-ins for
/// MKL/ACML ("vendorsim"), ATLAS ("atlsim") and GotoBLAS ("gotosim").
inline std::vector<NamedLib> figure_libraries() {
  std::vector<NamedLib> libs;
  libs.push_back({"AUGEM", make_augem_blas()});
  libs.push_back({"vendorsim(MKL/ACML)", blas::make_vendorsim()});
  libs.push_back({"atlsim(ATLAS)", blas::make_atlsim()});
  libs.push_back({"gotosim(GotoBLAS)", blas::make_gotosim()});
  return libs;
}

/// Repetitions per measurement (paper: five); override with
/// AUGEM_BENCH_REPS for quick smoke runs.
inline int bench_reps() {
  if (const char* env = std::getenv("AUGEM_BENCH_REPS")) {
    const int r = std::atoi(env);
    if (r > 0) return r;
  }
  return 3;
}

/// Mean-of-reps MFLOPS for a workload closure.
inline double measure_mflops(double flops, const std::function<void()>& fn) {
  fn();  // warm up (first-touch, JIT paging)
  return mflops(flops, time_mean_of(bench_reps(), fn));
}

inline void print_platform(const char* title) {
  std::printf("==== %s ====\n", title);
  std::printf("%s", host_arch().report().c_str());
  std::printf("(shape comparison vs the paper; absolute MFLOPS are "
              "machine-specific)\n\n");
  // Spin the FPU briefly so the first measured series is not taken during
  // the CPU's clock ramp (observed: the first binary of a suite run can
  // otherwise measure at half frequency).
  volatile double sink = 1.0;
  Timer t;
  while (t.elapsed_s() < 0.4) sink = sink * 1.0000001 + 1e-9;
  (void)sink;
}

inline void print_series_header(const char* xlabel,
                                const std::vector<NamedLib>& libs) {
  std::printf("%12s", xlabel);
  for (const NamedLib& l : libs) std::printf("  %20s", l.label.c_str());
  std::printf("\n");
}

inline void print_series_row(long x, const std::vector<double>& mflops) {
  std::printf("%12ld", x);
  for (double v : mflops) std::printf("  %20.1f", v);
  std::printf("\n");
}

/// One machine-readable result row (one JSON object per line, so runs can
/// be concatenated and post-processed with line-oriented tools). Used by
/// the scaling benchmarks alongside the human-readable tables above.
inline void print_json_row(const char* bench, const char* lib, long m, long n,
                           long k, int threads, double gflops,
                           double speedup) {
  std::printf(
      "{\"bench\":\"%s\",\"lib\":\"%s\",\"m\":%ld,\"n\":%ld,\"k\":%ld,"
      "\"threads\":%d,\"gflops\":%.3f,\"speedup_vs_1t\":%.3f}\n",
      bench, lib, m, n, k, threads, gflops, speedup);
}

/// Prints the paper-style "AUGEM outperforms X by N%" summary from
/// per-library average MFLOPS (index 0 = AUGEM).
inline void print_average_summary(const std::vector<NamedLib>& libs,
                                  const std::vector<double>& avg) {
  std::printf("\naverage MFLOPS:");
  for (std::size_t i = 0; i < libs.size(); ++i)
    std::printf("  %s=%.1f", libs[i].label.c_str(), avg[i]);
  std::printf("\nAUGEM vs:");
  for (std::size_t i = 1; i < libs.size(); ++i)
    std::printf("  %s %+.1f%%", libs[i].label.c_str(),
                100.0 * (avg[0] / avg[i] - 1.0));
  std::printf("\n\n");
}

}  // namespace augem::bench
