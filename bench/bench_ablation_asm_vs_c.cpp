// Ablation: the paper's central thesis. The SAME optimized low-level C
// (unroll&jam + strength reduction + scalar replacement + prefetch) is
// compiled two ways:
//   (a) by AUGEM's template-based assembly backend;
//   (b) by the general-purpose compiler (gcc -O2 / -O3) — the route ATLAS
//       and friends take.
// The paper argues (a) beats (b) because the compiler cannot reproduce the
// Vdup/Shuf vectorization and per-array register allocation.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: template backend vs general-purpose compiler "
                 "(same optimized C input)");
  SuiteReporter reporter("ablation_asm_vs_c");
  const Isa isa = host_arch().best_native_isa();
  const int w = isa_vector_doubles(isa);

  transform::CGenParams p;
  p.mr = 2 * w;
  p.nr = w;

  // The shared input: the Optimized C Kernel Generator's output.
  ir::Kernel opt_c = transform::generate_optimized_c(
      frontend::KernelKind::kGemm, frontend::BLayout::kRowPanel, p);
  const std::string c_text = opt_c.to_string();

  const long mc = 384 / p.mr * p.mr, nc = 384 / p.nr * p.nr, kc = 256;
  Rng rng(47);
  DoubleBuffer pa(static_cast<std::size_t>(mc * kc));
  DoubleBuffer pb(static_cast<std::size_t>(nc * kc));
  DoubleBuffer c(static_cast<std::size_t>(mc * nc));
  rng.fill(pa.span());
  rng.fill(pb.span());

  using Fn = void(long, long, long, const double*, const double*, double*, long);
  auto time_fn = [&](const std::string& series, Fn* fn) {
    return reporter.measure_mflops(
        series, mc, nc, kc, gemm_flops(mc, nc, kc),
        [&] { fn(mc, nc, kc, pa.data(), pb.data(), c.data(), mc); });
  };

  std::printf("%-34s %10s\n", "backend", "MFLOPS");

  // (a) AUGEM template backend.
  {
    opt::OptConfig cfg;
    cfg.isa = isa;
    const auto gen = generate_kernel(frontend::KernelKind::kGemm,
                                     {p, cfg, frontend::BLayout::kRowPanel});
    const jit::CompiledModule mod = jit::assemble(gen.asm_text);
    std::printf("%-34s %10.1f\n", "AUGEM templates -> assembly",
                time_fn("augem_templates", mod.fn<Fn>(gen.name)));
  }
  // (b) the general-purpose compiler on the identical C text.
  for (const char* flags : {"-O2", "-O3 -funroll-loops",
                            "-O3 -funroll-loops -march=native"}) {
    const jit::CompiledModule mod = jit::compile_c(c_text, flags);
    std::string series = std::string("gcc_") + flags;
    for (char& ch : series)
      if (ch == ' ' || ch == '-' || ch == '=') ch = '_';
    std::printf("gcc %-30s %10.1f\n", flags,
                time_fn(series, mod.fn<Fn>("dgemm_kernel")));
  }
  std::printf("(gcc -march=native may close part of the gap; the paper's "
              "comparators could not use -march=native since portable "
              "binaries target the baseline ISA)\n\n");
  return 0;
}
