// Ablation: the paper's per-array register queues (§3.1: "a separate
// register queue is dedicated to each array variable … to minimize any
// false dependence") versus a single shared free list.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: register allocation policy");
  const Isa isa = host_arch().best_native_isa();
  const int w = isa_vector_doubles(isa);
  SuiteReporter reporter("ablation_regalloc");
  GemmKernelBench bench;

  std::printf("%-18s %10s\n", "policy", "MFLOPS");
  for (const auto policy : {opt::RegAllocPolicy::kPerArrayQueues,
                            opt::RegAllocPolicy::kSinglePool}) {
    transform::CGenParams p;
    p.mr = 2 * w;
    p.nr = w;
    opt::OptConfig cfg;
    cfg.isa = isa;
    cfg.regalloc = policy;
    const bool queues = policy == opt::RegAllocPolicy::kPerArrayQueues;
    std::printf("%-18s %10.1f\n",
                queues ? "per-array queues" : "single pool",
                bench.run(p, cfg, &reporter,
                          queues ? "per_array_queues" : "single_pool"));
  }
  std::printf("\n");
  return 0;
}
