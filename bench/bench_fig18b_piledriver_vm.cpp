// Figure 18(b) counterpart: the AMD Piledriver code paths.
//
// This host cannot execute FMA4 natively, so wall-clock MFLOPS for the
// Piledriver-targeted kernel are not measurable here (DESIGN.md §2). What
// *is* measurable — and what the paper's FMA3-vs-FMA4 choice on Piledriver
// came down to — is instruction efficiency: the VM executes each ISA
// variant of the same GEMM templates and reports dynamic instruction
// counts per FLOP. FMA3 and FMA4 must coincide (one fused op per mmCOMP);
// AVX pays one extra arithmetic op per FMA pair; SSE2 pays the extra mov
// plus double the vector ops at half the width.
//
// The FMA4 stream is also fully executed and checked against the reference
// here, so the Piledriver path is *semantically* validated, not just
// counted.

#include <cmath>

#include "common.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Figure 18(b): Piledriver ISA paths, executed in the VM");
  // Deterministic bench: the recorded metric is FLOPs per dynamic VM
  // instruction (higher = better, zero noise), not wall-clock GFLOPS.
  SuiteReporter reporter("fig18b_piledriver_vm");

  const long mc = 16, nc = 8, kc = 32, ldc = mc;
  std::printf("GEMM %ldx%ldx%ld on packed panels; identical templates, "
              "per-ISA mapping rules (Tables 1-4)\n\n",
              mc, nc, kc);
  std::printf("%-6s %-6s %14s %14s %10s\n", "ISA", "tile", "dyn.instr",
              "instr/FLOP", "checked");

  const double flops = gemm_flops(mc, nc, kc);
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4}) {
    const int w = isa_vector_doubles(isa);
    transform::CGenParams p;
    p.mr = 2 * w;
    p.nr = w;
    p.prefetch.enabled = false;
    opt::OptConfig cfg;
    cfg.isa = isa;
    const auto gen =
        generate_kernel(frontend::KernelKind::kGemm,
                        {p, cfg, frontend::BLayout::kRowPanel});

    Rng rng(71);
    DoubleBuffer a(static_cast<std::size_t>(mc * kc));
    DoubleBuffer b(static_cast<std::size_t>(nc * kc));
    DoubleBuffer c(static_cast<std::size_t>(mc * nc));
    rng.fill(a.span());
    rng.fill(b.span());

    vm::Machine m(gen.insts);
    m.call({mc, nc, kc, static_cast<const double*>(a.data()),
            static_cast<const double*>(b.data()), c.data(), ldc});

    // Verify against the reference before reporting anything.
    double max_err = 0.0;
    for (long j = 0; j < nc; ++j)
      for (long i = 0; i < mc; ++i) {
        double want = 0.0;
        for (long l = 0; l < kc; ++l) want += a[l * mc + i] * b[l * nc + j];
        max_err = std::max(max_err, std::abs(c[j * ldc + i] - want));
      }

    std::printf("%-6s %dx%-4d %14lld %14.3f %10s\n", isa_name(isa), p.mr,
                p.nr, static_cast<long long>(m.steps_executed()),
                static_cast<double>(m.steps_executed()) / flops,
                max_err < 1e-10 ? "ok" : "FAILED");

    perf::BenchRow row;
    row.name = std::string("flops_per_instr/") + isa_name(isa);
    row.m = mc;
    row.n = nc;
    row.k = kc;
    row.gflops = flops / static_cast<double>(m.steps_executed());
    row.gflops_lo = row.gflops;  // deterministic: zero-width interval
    row.gflops_hi = row.gflops;
    row.reps = 1;
    reporter.add_row(row);
  }
  std::printf(
      "\nFMA3 and FMA4 execute the same instruction count (one fused op per\n"
      "mmCOMP); the paper selected the FMA3 path on Piledriver (ACML_FMA=3)\n"
      "and so do we. The FMA4 stream above ran to completion and matched\n"
      "the reference — the Piledriver code path is semantically validated.\n\n");
  return 0;
}
