// Figure 21 reproduction: DDOT MFLOPS across vector sizes 1e5..2e5 (the
// paper's exact range). Paper gaps: 1-55%, ATLAS trailing on Sandy Bridge
// and GotoBLAS on Piledriver.

#include "common.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Figure 21: DDOT, n = 100000..200000");
  auto libs = figure_libraries();
  SuiteReporter reporter("fig21_ddot");
  print_series_header("n", libs);

  std::vector<double> sums(libs.size(), 0.0);
  int rows = 0;
  volatile double sink = 0.0;
  for (long n = 100000; n <= 200000; n += 10000) {
    Rng rng(29);
    DoubleBuffer x(static_cast<std::size_t>(n));
    DoubleBuffer y(static_cast<std::size_t>(n));
    rng.fill(x.span());
    rng.fill(y.span());

    std::vector<double> row;
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double mf = reporter.measure_mflops(
          libs[li].label, n, 0, 0, dot_flops(n) * 16, [&] {
            double acc = 0.0;
            for (int r = 0; r < 16; ++r)
              acc += libs[li].lib->dot(n, x.data(), y.data());
            sink = acc;
          });
      row.push_back(mf);
      sums[li] += mf;
    }
    print_series_row(n, row);
    ++rows;
  }
  (void)sink;
  for (double& s : sums) s /= rows;
  print_average_summary(libs, sums);
  return 0;
}
