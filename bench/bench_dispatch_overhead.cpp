// Serving cost of the kernel runtime (docs/runtime.md): how much latency
// the dispatch layers add to a BLAS call, stage by stage.
//
//   cold_resolve      empty cache dir: tuner + generate + assemble + store
//   db_warm_resolve   fresh process, same dir: database hit, build only
//   code_cache_hit    resolve again inside one runtime: in-memory hit
//   dispatched_call   full runtime-BLAS DGEMM call, warm caches
//   direct_call       same problem through a pre-resolved kernel (floor)
//
// One JSON object per line, like the scaling benchmarks, plus a table.
// The cold rows use the real per-shape tuning workload, so they show the
// cost `augem_tunedb prewarm` amortizes away; set AUGEM_BENCH_QUICK=1 to
// use the reduced CI workload instead.

#include "common.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "blas/driver.hpp"
#include "runtime/runtime_blas.hpp"

namespace {

using namespace augem;
using namespace augem::bench;
namespace rt = augem::runtime;

rt::RuntimeConfig dir_config(const std::string& dir) {
  rt::RuntimeConfig cfg;
  cfg.cache_dir = dir;
  cfg.use_persistent = true;
  if (const char* env = std::getenv("AUGEM_BENCH_QUICK");
      env != nullptr && env[0] == '1') {
    tuning::TuneWorkload w;
    w.mc = 32;
    w.nc = 32;
    w.kc = 64;
    w.vec_len = 2048;
    w.reps = 1;
    cfg.workload_override = w;
  }
  return cfg;
}

void print_json(const char* stage, const char* kind, double ms) {
  std::printf("{\"bench\":\"dispatch_overhead\",\"stage\":\"%s\","
              "\"kind\":\"%s\",\"ms\":%.6f}\n",
              stage, kind, ms);
}

void print_row(const char* stage, const char* kind, double ms) {
  std::printf("%-18s %-5s %14.3f ms\n", stage, kind, ms);
}

}  // namespace

int main() {
  print_platform("Dispatch overhead: kernel-runtime serving cost per stage");

  char dir_template[] = "/tmp/augem_bench_dispatch_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  const struct {
    frontend::KernelKind kind;
    const char* name;
  } kinds[] = {{frontend::KernelKind::kGemm, "gemm"},
               {frontend::KernelKind::kGemv, "gemv"},
               {frontend::KernelKind::kAxpy, "axpy"},
               {frontend::KernelKind::kDot, "dot"}};
  const rt::ShapeClass shape = rt::ShapeClass::kLarge;

  SuiteReporter reporter("dispatch_overhead");
  const perf::BenchRunner runner;
  // Latency rows carry median_s only (gflops = 0): one-shot stages cannot
  // be re-measured, so they are recorded as informational trajectory rows.
  auto record = [&](const char* stage, const char* kind, double ms,
                    int reps) {
    print_row(stage, kind, ms);
    print_json(stage, kind, ms);
    perf::BenchRow row;
    row.name = std::string(stage) + "/" + kind;
    row.median_s = ms / 1e3;
    row.reps = reps;
    reporter.add_row(row);
  };

  // Stage 1+2: resolve latency, cold then database-warm. The second
  // runtime replays the database the first one wrote, so its resolve
  // skips the tuner but still generates + assembles.
  rt::KernelRuntime cold(dir_config(dir));
  for (const auto& k : kinds) {
    perf::Stopwatch t;
    (void)cold.resolve(k.kind, shape);
    record("cold_resolve", k.name, t.elapsed_s() * 1e3, 1);
  }
  rt::KernelRuntime warm(dir_config(dir));
  for (const auto& k : kinds) {
    perf::Stopwatch t;
    (void)warm.resolve(k.kind, shape);
    record("db_warm_resolve", k.name, t.elapsed_s() * 1e3, 1);
  }

  // Stage 3: in-memory hit. Batched — a single hit is below timer
  // resolution — then measured like any kernel: median of adaptive reps.
  for (const auto& k : kinds) {
    const int batch = 10000;
    const auto meas = runner.run(0.0, [&] {
      for (int i = 0; i < batch; ++i) (void)warm.resolve(k.kind, shape);
    });
    record("code_cache_hit", k.name, meas.seconds.median * 1e3 / batch,
           static_cast<int>(meas.seconds.n));
  }

  // Stage 4 vs floor: a dispatched DGEMM call with every cache warm,
  // against the same problem through the already-resolved kernel. The
  // difference is the steady-state tax of going through the runtime.
  {
    const blas::index_t mn = 256;
    Rng rng(17);
    DoubleBuffer a(static_cast<std::size_t>(mn * mn));
    DoubleBuffer b(static_cast<std::size_t>(mn * mn));
    DoubleBuffer c(static_cast<std::size_t>(mn * mn));
    rng.fill(a.span());
    rng.fill(b.span());

    auto lib = rt::make_runtime_blas(warm);
    auto dispatched = [&] {
      lib->gemm(blas::Trans::kNo, blas::Trans::kNo, mn, mn, mn, 1.0, a.data(),
                mn, b.data(), mn, 0.0, c.data(), mn);
    };
    const auto dispatched_meas =
        runner.run(gemm_flops(mn, mn, mn), dispatched);
    reporter.add_row(perf::BenchRow::from_measurement(
        dispatched_meas, "dispatched_call/gemm", mn, mn, mn));
    print_row("dispatched_call", "gemm", dispatched_meas.seconds.median * 1e3);
    print_json("dispatched_call", "gemm", dispatched_meas.seconds.median * 1e3);

    const auto kernel =
        warm.resolve(frontend::KernelKind::kGemm,
                     rt::classify_gemm_shape(mn, mn, mn));
    const auto ctx = blas::serial_gemm_context(
        blas::block_sizes_for_shape(host_arch(), mn, mn, mn));
    const auto block_fn = padded_gemm_block_kernel(
        kernel->fn<KernelSet::GemmFn>(), kernel->mr, kernel->nr);
    auto direct = [&] {
      blas::blocked_gemm(blas::Trans::kNo, blas::Trans::kNo, mn, mn, mn, 1.0,
                         a.data(), mn, b.data(), mn, 0.0, c.data(), mn, ctx,
                         block_fn);
    };
    const auto direct_meas = runner.run(gemm_flops(mn, mn, mn), direct);
    reporter.add_row(perf::BenchRow::from_measurement(
        direct_meas, "direct_call/gemm", mn, mn, mn));
    print_row("direct_call", "gemm", direct_meas.seconds.median * 1e3);
    print_json("direct_call", "gemm", direct_meas.seconds.median * 1e3);
  }

  // Stage 5: amortized dispatch. The same 16^3 problem served two ways —
  // `batch` individual dgemm calls (each re-classifying the shape,
  // re-probing the code cache, and running the packed blocked driver) vs
  // one gemm_batch_strided call that resolves once and streams every
  // instance through the cached small kernel. A third series, the raw
  // resolved-kernel loop, is the compute floor: per-call *overhead* is
  // latency minus that floor, and the 4096-instance pair is the headline —
  // batched overhead must sit >= 10x below individual overhead, with the
  // batched/individual latency CIs non-overlapping in the trajectory.
  {
    const blas::index_t d = 16;
    const blas::index_t stride = d * d;
    auto lib = rt::make_runtime_blas(warm);
    frontend::SmallGemmSpec spec;  // alpha=1, beta=1: plain accumulate
    spec.m = spec.n = spec.k = static_cast<int>(d);
    const auto small = warm.resolve_small(spec);
    auto* small_fn = small->fn<SmallGemmFn>();
    Rng rng(23);
    for (const long batch : {1L, 64L, 4096L}) {
      DoubleBuffer a(static_cast<std::size_t>(stride * batch));
      DoubleBuffer b(static_cast<std::size_t>(stride * batch));
      DoubleBuffer c(static_cast<std::size_t>(stride * batch));
      rng.fill(a.span());
      rng.fill(b.span());
      rng.fill(c.span());
      const double flops = gemm_flops(d, d, d) * static_cast<double>(batch);
      const double db = static_cast<double>(batch);

      auto batched = [&] {
        lib->gemm_batch_strided(d, d, d, 1.0, a.data(), d, stride, b.data(),
                                d, stride, 1.0, c.data(), d, stride, batch);
      };
      batched();  // warm: resolve + JIT outside the timed region
      const auto bm = runner.run(flops, batched);
      reporter.add_row(perf::BenchRow::from_measurement(
          bm, "batched_call/b" + std::to_string(batch), d, d, d));

      auto individual = [&] {
        for (long p = 0; p < batch; ++p)
          lib->gemm(blas::Trans::kNo, blas::Trans::kNo, d, d, d, 1.0,
                    a.data() + p * stride, d, b.data() + p * stride, d, 1.0,
                    c.data() + p * stride, d);
      };
      individual();
      const auto im = runner.run(flops, individual);
      reporter.add_row(perf::BenchRow::from_measurement(
          im, "individual_call/b" + std::to_string(batch), d, d, d));

      auto floor_loop = [&] {
        for (long p = 0; p < batch; ++p)
          small_fn(a.data() + p * stride, d, b.data() + p * stride, d,
                   c.data() + p * stride, d, nullptr, 1.0, 1.0);
      };
      const auto fm = runner.run(flops, floor_loop);
      reporter.add_row(perf::BenchRow::from_measurement(
          fm, "kernel_floor/b" + std::to_string(batch), d, d, d));

      const double bpc = bm.seconds.median / db;
      const double ipc = im.seconds.median / db;
      const double fpc = fm.seconds.median / db;
      const double b_over = std::max(bpc - fpc, 0.0);
      const double i_over = std::max(ipc - fpc, 0.0);
      std::printf("batch=%-5ld batched %8.1f ns/call  individual %8.1f "
                  "ns/call  floor %8.1f ns/call  overhead %.1f vs %.1f ns "
                  "(%.0fx)\n",
                  batch, bpc * 1e9, ipc * 1e9, fpc * 1e9, b_over * 1e9,
                  i_over * 1e9, i_over / std::max(b_over, 1e-12));
      std::printf("{\"bench\":\"dispatch_overhead\",\"stage\":\"batch\","
                  "\"batch\":%ld,\"batched_ns_call\":%.1f,"
                  "\"individual_ns_call\":%.1f,\"floor_ns_call\":%.1f,"
                  "\"batched_overhead_ns\":%.1f,\"individual_overhead_ns\""
                  ":%.1f,\"overhead_ratio\":%.1f}\n",
                  batch, bpc * 1e9, ipc * 1e9, fpc * 1e9, b_over * 1e9,
                  i_over * 1e9, i_over / std::max(b_over, 1e-12));
    }
  }

  rt::TuningDatabase(dir).purge();
  ::remove(dir);
  return 0;
}
