#pragma once
// Helper for ablation benches: generate + JIT one GEMM kernel configuration
// and time it on packed blocks. Measurement goes through perf::BenchRunner
// like everything else — historically this helper reported best-of while
// the figure benches reported mean-of; both now report the median of
// adaptive post-warmup repetitions (docs/benchmarking.md).

#include <cstdio>
#include <string>

#include "augem/augem.hpp"
#include "common.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"

namespace augem::bench {

struct GemmKernelBench {
  long mc = 384;
  long nc = 384;
  long kc = 256;

  /// MFLOPS of the generated GEMM kernel for this config; 0 if infeasible.
  /// With a reporter, the point is also recorded as a trajectory row named
  /// `series`.
  double run(const transform::CGenParams& params, const opt::OptConfig& config,
             SuiteReporter* reporter = nullptr,
             const std::string& series = {}) const {
    try {
      GenerateOptions o;
      o.params = params;
      o.config = config;
      const auto gen = generate_kernel(frontend::KernelKind::kGemm, o);
      const jit::CompiledModule mod = jit::assemble(gen.asm_text);
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);

      const long m = mc / params.mr * params.mr;
      const long n = nc / params.nr * params.nr;
      Rng rng(43);
      DoubleBuffer pa(static_cast<std::size_t>(m * kc));
      DoubleBuffer pb(static_cast<std::size_t>(n * kc));
      DoubleBuffer c(static_cast<std::size_t>(m * n));
      rng.fill(pa.span());
      rng.fill(pb.span());
      const auto work = [&] {
        fn(m, n, kc, pa.data(), pb.data(), c.data(), m);
      };
      const double flops = gemm_flops(m, n, kc);
      if (reporter != nullptr)
        return reporter->measure_mflops(series, m, n, kc, flops, work);
      return perf::BenchRunner().run(flops, work).mflops();
    } catch (const Error&) {
      return 0.0;  // infeasible configuration (register budget, Shuf shape)
    }
  }
};

}  // namespace augem::bench
