#pragma once
// Helper for ablation benches: generate + JIT one GEMM kernel configuration
// and time it on packed blocks.

#include <cstdio>
#include <string>

#include "augem/augem.hpp"
#include "support/buffer.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace augem::bench {

struct GemmKernelBench {
  long mc = 384;
  long nc = 384;
  long kc = 256;
  int reps = 5;

  /// MFLOPS of the generated GEMM kernel for this config; 0 if infeasible.
  double run(const transform::CGenParams& params,
             const opt::OptConfig& config) const {
    try {
      GenerateOptions o;
      o.params = params;
      o.config = config;
      const auto gen = generate_kernel(frontend::KernelKind::kGemm, o);
      const jit::CompiledModule mod = jit::assemble(gen.asm_text);
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);

      const long m = mc / params.mr * params.mr;
      const long n = nc / params.nr * params.nr;
      Rng rng(43);
      DoubleBuffer pa(static_cast<std::size_t>(m * kc));
      DoubleBuffer pb(static_cast<std::size_t>(n * kc));
      DoubleBuffer c(static_cast<std::size_t>(m * n));
      rng.fill(pa.span());
      rng.fill(pb.span());
      fn(m, n, kc, pa.data(), pb.data(), c.data(), m);  // warm up
      const double s = time_best_of(
          reps, [&] { fn(m, n, kc, pa.data(), pb.data(), c.data(), m); });
      return mflops(gemm_flops(m, n, kc), s);
    } catch (const Error&) {
      return 0.0;  // infeasible configuration (register budget, Shuf shape)
    }
  }
};

}  // namespace augem::bench
