// Figure 19 reproduction: DGEMV MFLOPS across square sizes m = n.
// Paper: 24 sizes in [2048, 5120]; here scaled down. GEMV is memory-bound,
// so the tuned libraries bunch within tens of percent (paper gaps:
// 3.7-23.6%), with GotoBLAS/ATLAS stand-ins trailing modestly.

#include "common.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Figure 19: DGEMV, m=n sweep");
  auto libs = figure_libraries();
  SuiteReporter reporter("fig19_dgemv");
  print_series_header("m=n", libs);

  std::vector<double> sums(libs.size(), 0.0);
  int rows = 0;
  for (long mn = 512; mn <= 2048; mn += 256) {
    Rng rng(19);
    DoubleBuffer a(static_cast<std::size_t>(mn * mn));
    DoubleBuffer x(static_cast<std::size_t>(mn));
    DoubleBuffer y(static_cast<std::size_t>(mn));
    rng.fill(a.span());
    rng.fill(x.span());

    std::vector<double> row;
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double mf = reporter.measure_mflops(
          libs[li].label, mn, mn, 0, gemv_flops(mn, mn), [&] {
            libs[li].lib->gemv(mn, mn, 1.0, a.data(), mn, x.data(), 0.0,
                               y.data());
          });
      row.push_back(mf);
      sums[li] += mf;
    }
    print_series_row(mn, row);
    ++rows;
  }
  for (double& s : sums) s /= rows;
  print_average_summary(libs, sums);
  return 0;
}
