// Ablation: the data-prefetching transform (paper §2.1) — off versus a
// sweep of stream-prefetch distances.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: prefetch distance (GEMM kernel)");
  const Isa isa = host_arch().best_native_isa();
  const int w = isa_vector_doubles(isa);
  SuiteReporter reporter("ablation_prefetch");
  GemmKernelBench bench;

  std::printf("%-12s %10s\n", "prefetch", "MFLOPS");
  for (int distance : {-1, 4, 8, 16, 32, 64}) {
    transform::CGenParams p;
    p.mr = 2 * w;
    p.nr = w;
    p.prefetch.enabled = distance >= 0;
    if (distance >= 0) p.prefetch.distance = distance;
    opt::OptConfig cfg;
    cfg.isa = isa;
    char series[32];
    if (distance < 0)
      std::snprintf(series, sizeof series, "off");
    else
      std::snprintf(series, sizeof series, "dist%d", distance);
    const double mf = bench.run(p, cfg, &reporter, series);
    if (distance < 0) {
      std::printf("%-12s %10.1f\n", "off", mf);
    } else {
      std::printf("dist=%-7d %10.1f\n", distance, mf);
    }
  }
  std::printf("\n");
  return 0;
}
