// Ablation: the instruction scheduler (paper §2.3 bundles Instruction
// Selection/Scheduling into the template optimizers) — loads hoisted ahead
// of the multiply-add chains versus naive emission order.

#include "common.hpp"
#include "kernel_bench.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Ablation: instruction scheduling");
  const Isa isa = host_arch().best_native_isa();
  const int w = isa_vector_doubles(isa);
  SuiteReporter reporter("ablation_schedule");
  GemmKernelBench bench;

  std::printf("%-12s %10s\n", "scheduler", "MFLOPS");
  for (bool sched : {false, true}) {
    transform::CGenParams p;
    p.mr = 2 * w;
    p.nr = w;
    opt::OptConfig cfg;
    cfg.isa = isa;
    cfg.schedule = sched;
    std::printf("%-12s %10.1f\n", sched ? "on" : "off",
                bench.run(p, cfg, &reporter, sched ? "on" : "off"));
  }
  std::printf("\n");
  return 0;
}
