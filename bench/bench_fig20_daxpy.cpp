// Figure 20 reproduction: DAXPY MFLOPS across vector sizes 1e5..2e5 —
// the paper's exact size range (these fit this machine). Memory-bound:
// the paper's gaps are 6-45%, largest vs ACML on Piledriver.

#include "common.hpp"

int main() {
  using namespace augem;
  using namespace augem::bench;

  print_platform("Figure 20: DAXPY, n = 100000..200000");
  auto libs = figure_libraries();
  SuiteReporter reporter("fig20_daxpy");
  print_series_header("n", libs);

  std::vector<double> sums(libs.size(), 0.0);
  int rows = 0;
  for (long n = 100000; n <= 200000; n += 10000) {
    Rng rng(23);
    DoubleBuffer x(static_cast<std::size_t>(n));
    DoubleBuffer y(static_cast<std::size_t>(n));
    rng.fill(x.span());
    rng.fill(y.span());

    std::vector<double> row;
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double mf = reporter.measure_mflops(
          libs[li].label, n, 0, 0, axpy_flops(n) * 16, [&] {
            for (int r = 0; r < 16; ++r)  // amortize timer resolution
              libs[li].lib->axpy(n, 1.0000001, x.data(), y.data());
          });
      row.push_back(mf);
      sums[li] += mf;
    }
    print_series_row(n, row);
    ++rows;
  }
  for (double& s : sums) s /= rows;
  print_average_summary(libs, sums);
  return 0;
}
