#include "tuning/search.hpp"

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace augem::tuning {

const char* infeasible_reason_name(InfeasibleReason r) {
  switch (r) {
    case InfeasibleReason::kNone:
      return "none";
    case InfeasibleReason::kPlannerRejected:
      return "planner";
    case InfeasibleReason::kRegallocExhausted:
      return "regalloc";
    case InfeasibleReason::kOther:
      return "other";
  }
  return "other";
}

bool parse_infeasible_reason(const std::string& name, InfeasibleReason& out) {
  for (InfeasibleReason r :
       {InfeasibleReason::kNone, InfeasibleReason::kPlannerRejected,
        InfeasibleReason::kRegallocExhausted, InfeasibleReason::kOther})
    if (name == infeasible_reason_name(r)) {
      out = r;
      return true;
    }
  return false;
}

InfeasibleReason classify_infeasible(const std::string& error_message) {
  // The stages are identified by their diagnostic text (src/opt/plan.cpp
  // and src/opt/regalloc.cpp); tests/tuning pins these so a reworded
  // message fails loudly instead of silently reclassifying.
  if (error_message.find("out of vector registers") != std::string::npos)
    return InfeasibleReason::kRegallocExhausted;
  if (error_message.find("vector register budget exceeded") !=
          std::string::npos ||
      error_message.find("Shuf strategy requires") != std::string::npos)
    return InfeasibleReason::kPlannerRejected;
  return InfeasibleReason::kOther;
}

SearchOptions SearchOptions::from_env() {
  SearchOptions o;
  if (const char* s = std::getenv("AUGEM_TUNE_SEED");
      s != nullptr && s[0] != '\0') {
    o.seed = std::strtoull(s, nullptr, 10);
    o.seed_from_env = true;
  }
  if (const char* s = std::getenv("AUGEM_TUNE_TRIALS");
      s != nullptr && s[0] != '\0')
    o.max_trials = std::atoi(s);
  if (const char* s = std::getenv("AUGEM_TUNE_SECONDS");
      s != nullptr && s[0] != '\0')
    o.max_seconds = std::atof(s);
  if (const char* s = std::getenv("AUGEM_TUNE_EXHAUSTIVE");
      s != nullptr && s[0] != '\0' && std::string(s) != "0")
    o.exhaustive = true;
  if (const char* s = std::getenv("AUGEM_TUNE_SYNTHETIC");
      s != nullptr && s[0] != '\0' && std::string(s) != "0")
    o.synthetic = true;
  if (const char* s = std::getenv("AUGEM_BENCH_REPS");
      s != nullptr && s[0] != '\0')
    o.fixed_reps = std::atoi(s);
  return o;
}

SearchSpace SearchSpace::gemm(Isa isa, bool downsized) {
  const int w = isa_vector_doubles(isa);
  SearchSpace s;
  s.kind_ = Kind::kGemm;
  if (downsized) {
    s.tiles_ = {{w, 2}, {w, w}, {2 * w, w}};
    s.axes_ = {{"tile", {0, 1, 2}},
               {"ku", {1, 2}},
               {"prefetch", {0, 16}},
               {"strategy", {0}}};
  } else {
    s.tiles_ = {{w, 2},     {w, w},      {2 * w, 2},
                {2 * w, w}, {2 * w, 2 * w}, {4 * w, w}};
    s.axes_ = {{"tile", {0, 1, 2, 3, 4, 5}},
               {"ku", {1, 2, 4, 8}},
               {"prefetch", {0, 8, 16, 32, 64}},
               {"strategy", {0, 1}}};
  }
  return s;
}

SearchSpace SearchSpace::level1(bool downsized) {
  SearchSpace s;
  s.kind_ = Kind::kLevel1;
  if (downsized) {
    s.axes_ = {{"unroll", {4, 8, 16}}, {"prefetch", {0, 16}}};
  } else {
    s.axes_ = {{"unroll", {1, 2, 4, 8, 16, 32, 64}},
               {"prefetch", {0, 8, 16, 32, 64}}};
  }
  return s;
}

int SearchSpace::grid_size() const {
  int n = 1;
  for (const Axis& a : axes_) n *= static_cast<int>(a.values.size());
  return n;
}

Point SearchSpace::start() const {
  // The generator-default cell: tile (w,2) / ku 1 / prefetch 16 / vdup for
  // GEMM, unroll 8 / prefetch 16 for Level-1 — the configuration the
  // drivers would use untuned, so the climb starts from known-good ground.
  Point p;
  p.ix.assign(axes_.size(), 0);
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const Axis& ax = axes_[a];
    int want = 0;
    if (ax.name == "prefetch") want = 16;
    if (ax.name == "unroll") want = 8;
    if (ax.name == "ku") want = 1;
    for (std::size_t i = 0; i < ax.values.size(); ++i)
      if (ax.values[i] == want) p.ix[static_cast<int>(a)] = static_cast<int>(i);
  }
  return p;
}

std::vector<Point> SearchSpace::neighbors(const Point& p) const {
  AUGEM_CHECK(p.ix.size() == axes_.size(), "point/axis arity mismatch");
  std::vector<Point> out;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const int n = static_cast<int>(axes_[a].values.size());
    if (axes_[a].name == "strategy") {
      // Unordered axis: every other value is adjacent.
      for (int v = 0; v < n; ++v) {
        if (v == p.ix[a]) continue;
        Point q = p;
        q.ix[a] = v;
        out.push_back(std::move(q));
      }
      continue;
    }
    for (int step : {-1, +1}) {
      const int v = p.ix[a] + step;
      if (v < 0 || v >= n) continue;
      Point q = p;
      q.ix[a] = v;
      out.push_back(std::move(q));
    }
  }
  return out;
}

Point SearchSpace::random_point(Rng& rng) const {
  Point p;
  p.ix.reserve(axes_.size());
  // Raw engine draws + modulo: the bias is irrelevant at these axis sizes
  // and, unlike std::uniform_int_distribution, the sequence is pinned by
  // the mt19937_64 standard — identical across processes and builds.
  for (const Axis& a : axes_)
    p.ix.push_back(static_cast<int>(rng.engine()() % a.values.size()));
  return p;
}

std::vector<Point> SearchSpace::all_points() const {
  std::vector<Point> out;
  Point p;
  p.ix.assign(axes_.size(), 0);
  while (true) {
    out.push_back(p);
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++p.ix[a] < static_cast<int>(axes_[a].values.size())) break;
      p.ix[a] = 0;
      if (a == 0) return out;
    }
  }
}

Candidate SearchSpace::materialize(const Point& p) const {
  AUGEM_CHECK(p.ix.size() == axes_.size(), "point/axis arity mismatch");
  Candidate c;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const Axis& ax = axes_[a];
    const int v = ax.values[static_cast<std::size_t>(p.ix[a])];
    if (ax.name == "tile") {
      c.params.mr = tiles_[static_cast<std::size_t>(v)].first;
      c.params.nr = tiles_[static_cast<std::size_t>(v)].second;
    } else if (ax.name == "ku") {
      c.params.ku = v;
    } else if (ax.name == "unroll") {
      c.params.unroll = v;
    } else if (ax.name == "prefetch") {
      c.params.prefetch.enabled = v != 0;
      if (v != 0) c.params.prefetch.distance = v;
    } else if (ax.name == "strategy") {
      c.strategy = v == 0 ? opt::VecStrategy::kVdup : opt::VecStrategy::kShuf;
    } else {
      AUGEM_FAIL("unknown search axis " << ax.name);
    }
  }
  return c;
}

std::string SearchSpace::key(const Point& p) const {
  std::ostringstream os;
  for (std::size_t a = 0; a < p.ix.size(); ++a)
    os << (a != 0 ? "/" : "") << p.ix[a];
  return os.str();
}

double SearchSpace::synthetic_score(const Point& p) const {
  // Strictly monotone increasing in every axis index with decoupled
  // weights: from any cell, stepping any axis up improves the score, so a
  // steepest-ascent climb provably reaches the last cell of the grid. The
  // weights are spread so no two cells tie.
  double score = 100.0;
  double weight = 1.0;
  for (std::size_t a = p.ix.size(); a-- > 0;) {
    score += weight * static_cast<double>(p.ix[a]);
    weight *= 10.0;
  }
  return score;
}

}  // namespace augem::tuning
