#pragma once
// The tuner's search space and search policy (docs/tuning.md).
//
// The paper's tuner (§2.1) enumerates its whole candidate grid; that stops
// scaling the moment prefetch distance and bigger unroll factors join the
// space (240 GEMM points instead of 31). This header factors the space into
// explicit axes — register tile, inner unroll, prefetch distance,
// vectorization strategy — and describes the seeded, budgeted
// hill-climbing search that replaces the exhaustive sweep: neighbors are
// single-axis steps, acceptance is decided against the measurement's pooled
// confidence interval (src/perf/stats.hpp), and random restarts escape
// local optima. Everything is reproducible from one seed.

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/kernels.hpp"
#include "opt/plan.hpp"
#include "support/rng.hpp"
#include "transform/ckernel.hpp"

namespace augem::tuning {

/// Why an evaluated point produced no kernel. Split by pipeline stage so
/// the trial log distinguishes a tile the planner refuses to lay out from
/// one the register allocator cannot color (the two prune for different
/// reasons and shrink differently as ISAs grow registers).
enum class InfeasibleReason {
  kNone,              ///< the point was feasible (a kernel was produced)
  kPlannerRejected,   ///< vector plan refused the shape/register budget
  kRegallocExhausted, ///< plan accepted, register allocation ran out
  kOther,             ///< any other generation failure
};

const char* infeasible_reason_name(InfeasibleReason r);
bool parse_infeasible_reason(const std::string& name, InfeasibleReason& out);

/// Maps a generation error message onto the pipeline stage that raised it.
InfeasibleReason classify_infeasible(const std::string& error_message);

/// Search policy knobs. `from_env()` reads:
///   AUGEM_TUNE_SEED      — search seed (decimal); presence pins the seed
///   AUGEM_TUNE_TRIALS    — trial budget (0 = per-space default, grid/8)
///   AUGEM_TUNE_SECONDS   — wall-clock cap in seconds (0 = uncapped)
///   AUGEM_TUNE_EXHAUSTIVE— "1" sweeps the whole grid (the old behavior)
///   AUGEM_TUNE_SYNTHETIC — "1" scores points with a deterministic model
///                          (feasibility stays real; used by determinism
///                          tests and the service smoke gate)
///   AUGEM_BENCH_REPS     — fixed timing repetitions per trial
struct SearchOptions {
  std::uint64_t seed = 2013;  ///< default: the paper's year, for the grep
  bool seed_from_env = false; ///< true when AUGEM_TUNE_SEED pinned the seed
  int max_trials = 0;         ///< measured-point budget; 0 = grid/8 default
  double max_seconds = 0.0;   ///< wall-clock cap; 0 = uncapped
  int restarts = 2;           ///< random restarts after a climb stalls
  int plateau_moves = 2;      ///< CI-tied sideways moves before stalling
  int fixed_reps = 0;         ///< timing reps override; 0 = workload reps
  bool exhaustive = false;    ///< sweep the full grid instead of searching
  bool synthetic = false;     ///< deterministic cost model, no timing

  static SearchOptions from_env();
};

/// A point in the axis-indexed space: one value index per axis.
struct Point {
  std::vector<int> ix;
  bool operator==(const Point& o) const { return ix == o.ix; }
};

/// A materialized point: the generator parameters it denotes.
struct Candidate {
  transform::CGenParams params;
  opt::VecStrategy strategy = opt::VecStrategy::kVdup;
};

/// The candidate grid as explicit axes. Neighbors of a point are all
/// single-axis index steps (±1 on ordered axes, any other value on the
/// strategy axis), which is what makes hill-climbing meaningful: adjacent
/// indices are adjacent parameter values.
class SearchSpace {
 public:
  struct Axis {
    std::string name;
    std::vector<int> values;
  };

  /// The GEMM space for `isa` (w = vector width in doubles): tiles
  /// {(w,2),(w,w),(2w,2),(2w,w),(2w,2w),(4w,w)} × ku {1,2,4,8} × prefetch
  /// {off,8,16,32,64} × strategy {vdup,shuf} — 240 points. `downsized`
  /// shrinks every axis (12 points) for property tests.
  static SearchSpace gemm(Isa isa, bool downsized = false);

  /// The Level-1/2 space: unroll {1,2,4,8,16,32,64} × prefetch
  /// {off,8,16,32,64} — 35 points.
  static SearchSpace level1(bool downsized = false);

  int grid_size() const;
  const std::vector<Axis>& axes() const { return axes_; }

  /// The climb's canonical starting point (the generator defaults' cell).
  Point start() const;
  std::vector<Point> neighbors(const Point& p) const;
  Point random_point(Rng& rng) const;
  std::vector<Point> all_points() const;  ///< row-major, for exhaustive mode

  Candidate materialize(const Point& p) const;
  std::string key(const Point& p) const;  ///< stable dedup key

  /// Deterministic synthetic score for `p` (strictly monotone per axis, so
  /// a hill climb provably reaches the grid maximum). Used when
  /// SearchOptions::synthetic is set; always > 0.
  double synthetic_score(const Point& p) const;

 private:
  enum class Kind { kGemm, kLevel1 };
  Kind kind_ = Kind::kGemm;
  std::vector<Axis> axes_;
  std::vector<std::pair<int, int>> tiles_;  ///< GEMM (mr, nr) per tile index
};

/// Metadata describing one search run, persisted with the winning variant
/// so `augem_tunedb show` can answer "how was this found".
struct SearchMeta {
  std::string algorithm = "hillclimb";  ///< "hillclimb" or "exhaustive"
  std::uint64_t seed = 0;
  int budget_trials = 0;
  double budget_seconds = 0.0;  ///< 0 = uncapped
  int grid_size = 0;
  int trials_run = 0;
  int restarts_used = 0;
  double elapsed_seconds = 0.0;
  bool wall_capped = false;  ///< the wall-clock cap ended the search
  bool synthetic = false;
};

}  // namespace augem::tuning
