#include "tuning/tuner.hpp"

#include <fstream>
#include <sstream>

#include <algorithm>

#include "asmgen/codegen.hpp"
#include "jit/jit.hpp"
#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace augem::tuning {

using frontend::KernelKind;
using opt::OptConfig;
using opt::VecStrategy;
using transform::CGenParams;

std::string Trial::describe() const {
  std::ostringstream os;
  os << params.to_string() << " strategy=" << opt::vec_strategy_name(strategy);
  if (feasible) {
    os << " -> " << static_cast<long>(mflops) << " MFLOPS";
  } else {
    os << " -> infeasible";
  }
  return os.str();
}

std::string TuneResult::report() const {
  std::ostringstream os;
  os << "tuning " << frontend::kernel_kind_name(kind) << " on "
     << isa_name(config.isa) << ":\n";
  for (const Trial& t : trials) os << "  " << t.describe() << "\n";
  os << "best: " << params.to_string() << " strategy="
     << opt::vec_strategy_name(config.strategy) << " ("
     << static_cast<long>(mflops) << " MFLOPS)\n";
  return os.str();
}

namespace {

/// Builds + JITs one candidate; returns MFLOPS or nullopt if infeasible.
/// `time_fn` runs the kernel once and returns the flop count.
double time_candidate(KernelKind kind, const CGenParams& params,
                      const OptConfig& config, const TuneWorkload& w) {
  ir::Kernel opt_c = transform::generate_optimized_c(
      kind, frontend::BLayout::kRowPanel, params);
  asmgen::GeneratedKernel gen =
      asmgen::generate_assembly(std::move(opt_c), config);
  jit::CompiledModule mod = jit::assemble(gen.asm_text);

  Rng rng(11);
  switch (kind) {
    case KernelKind::kGemm: {
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);
      DoubleBuffer a(static_cast<std::size_t>(w.mc * w.kc));
      DoubleBuffer b(static_cast<std::size_t>(w.nc * w.kc));
      DoubleBuffer c(static_cast<std::size_t>(w.nc * w.mc));
      rng.fill(a.span());
      rng.fill(b.span());
      const std::int64_t m_main = w.mc / params.mr * params.mr;
      const std::int64_t n_main = w.nc / params.nr * params.nr;
      const double s = time_best_of(w.reps, [&] {
        fn(m_main, n_main, w.kc, a.data(), b.data(), c.data(), w.mc);
      });
      return mflops(gemm_flops(m_main, n_main, w.kc), s);
    }
    case KernelKind::kGemv: {
      auto* fn = mod.fn<void(long, long, const double*, long, const double*,
                             double*)>(gen.name);
      const std::int64_t m = w.vec_len / 8, n = 64;
      DoubleBuffer a(static_cast<std::size_t>(m * n));
      DoubleBuffer x(static_cast<std::size_t>(n));
      DoubleBuffer y(static_cast<std::size_t>(m));
      rng.fill(a.span());
      rng.fill(x.span());
      const double s = time_best_of(
          w.reps, [&] { fn(m, n, a.data(), m, x.data(), y.data()); });
      return mflops(gemv_flops(m, n), s);
    }
    case KernelKind::kAxpy: {
      auto* fn = mod.fn<void(long, double, const double*, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      const double s = time_best_of(
          w.reps, [&] { fn(w.vec_len, 1.1, x.data(), y.data()); });
      return mflops(axpy_flops(w.vec_len), s);
    }
    case KernelKind::kScal: {
      auto* fn = mod.fn<void(long, double, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      const double s = time_best_of(
          w.reps, [&] { fn(w.vec_len, 1.0000001, x.data()); });
      return mflops(static_cast<double>(w.vec_len), s);
    }
    case KernelKind::kDot: {
      auto* fn = mod.fn<double(long, const double*, const double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      rng.fill(y.span());
      volatile double sink = 0.0;
      const double s = time_best_of(
          w.reps, [&] { sink = fn(w.vec_len, x.data(), y.data()); });
      (void)sink;
      return mflops(dot_flops(w.vec_len), s);
    }
  }
  AUGEM_FAIL("unknown kernel kind");
}

TuneResult run_search(KernelKind kind, Isa isa,
                      const std::vector<Trial>& candidates,
                      const TuneWorkload& w) {
  TuneResult best;
  best.kind = kind;
  best.config.isa = isa;
  for (Trial t : candidates) {
    OptConfig config;
    config.isa = isa;
    config.strategy = t.strategy;
    try {
      t.mflops = time_candidate(kind, t.params, config, w);
      t.feasible = true;
    } catch (const Error&) {
      t.mflops = 0.0;
      t.feasible = false;
    }
    if (t.feasible && t.mflops > best.mflops) {
      best.params = t.params;
      best.config = config;
      best.mflops = t.mflops;
    }
    best.trials.push_back(std::move(t));
  }
  AUGEM_CHECK(best.mflops > 0.0, "no feasible configuration found");
  return best;
}

}  // namespace

TuneResult tune_gemm(Isa isa, const TuneWorkload& workload) {
  const int word = isa_vector_doubles(isa);
  std::vector<Trial> candidates;
  for (auto [mr, nr] : {std::pair{word, 2},
                              {word, word},
                              {2 * word, 2},
                              {2 * word, word},
                              {2 * word, 2 * word}}) {
    for (int ku : {1, 2, 4}) {
      for (bool prefetch : {false, true}) {
        Trial t;
        t.params.mr = mr;
        t.params.nr = nr;
        t.params.ku = ku;
        t.params.prefetch.enabled = prefetch;
        t.strategy = VecStrategy::kVdup;
        candidates.push_back(t);
        if (mr == word && nr == word && ku == 1) {
          Trial s = t;
          s.strategy = VecStrategy::kShuf;
          candidates.push_back(s);
        }
      }
    }
  }
  return run_search(KernelKind::kGemm, isa, candidates, workload);
}

TuneResult tune_level1(KernelKind kind, Isa isa, const TuneWorkload& workload) {
  AUGEM_CHECK(kind != KernelKind::kGemm, "use tune_gemm for GEMM");
  std::vector<Trial> candidates;
  for (int unroll : {4, 8, 16, 32}) {
    Trial t;
    t.params.unroll = unroll;
    candidates.push_back(t);
  }
  return run_search(kind, isa, candidates, workload);
}

std::string DriverTrial::describe() const {
  std::ostringstream os;
  os << "threads=" << threads << " mc=" << sizes.mc << " nc=" << sizes.nc
     << " kc=" << sizes.kc << " -> " << static_cast<long>(mflops)
     << " MFLOPS";
  return os.str();
}

blas::GemmContext DriverTuneResult::context() const {
  blas::GemmContext ctx = blas::threaded_gemm_context(sizes);
  ctx.threads = threads;
  return ctx;
}

std::string DriverTuneResult::report() const {
  std::ostringstream os;
  os << "tuning the blocked GEMM driver:\n";
  for (const DriverTrial& t : trials) os << "  " << t.describe() << "\n";
  os << "best: threads=" << threads << " mc=" << sizes.mc << " nc="
     << sizes.nc << " kc=" << sizes.kc << " ("
     << static_cast<long>(mflops) << " MFLOPS)\n";
  return os.str();
}

DriverTuneResult tune_driver(const blas::BlockKernel& kernel,
                             const blas::BlockSizes& base, std::int64_t m,
                             std::int64_t n, std::int64_t k, int reps) {
  AUGEM_CHECK(m > 0 && n > 0 && k > 0, "driver workload must be non-empty");
  ThreadPool& pool = ThreadPool::global();

  std::vector<int> thread_counts;
  for (int t = 1; t < pool.num_threads(); t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(pool.num_threads());

  // Block-size scalings around the cache-derived base, clamped and kept on
  // the register-tile multiple the serial derivation uses.
  auto rounded = [](blas::index_t v) {
    return std::max<blas::index_t>(8, v / 8 * 8);
  };
  std::vector<blas::BlockSizes> size_variants{base};
  blas::BlockSizes half_mc = base, twice_mc = base, half_nc = base;
  half_mc.mc = rounded(base.mc / 2);
  twice_mc.mc = rounded(base.mc * 2);
  half_nc.nc = rounded(base.nc / 2);
  size_variants.push_back(half_mc);
  size_variants.push_back(twice_mc);
  size_variants.push_back(half_nc);

  Rng rng(23);
  DoubleBuffer a(static_cast<std::size_t>(m * k));
  DoubleBuffer b(static_cast<std::size_t>(k * n));
  DoubleBuffer c(static_cast<std::size_t>(m * n));
  rng.fill(a.span());
  rng.fill(b.span());

  DriverTuneResult best;
  for (const blas::BlockSizes& sizes : size_variants) {
    for (int threads : thread_counts) {
      blas::GemmContext ctx = blas::threaded_gemm_context(sizes);
      ctx.threads = threads;
      DriverTrial trial;
      trial.threads = threads;
      trial.sizes = sizes;
      const double s = time_best_of(reps, [&] {
        blas::blocked_gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0,
                           a.data(), m, b.data(), k, 0.0, c.data(), m, ctx,
                           kernel);
      });
      trial.mflops = mflops(gemm_flops(m, n, k), s);
      if (trial.mflops > best.mflops) {
        best.threads = threads;
        best.sizes = sizes;
        best.mflops = trial.mflops;
      }
      best.trials.push_back(trial);
    }
  }
  return best;
}

void save_result(const TuneResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::app);
  AUGEM_CHECK(out.good(), "cannot write tuning cache " << path);
  out << frontend::kernel_kind_name(result.kind) << " "
      << isa_name(result.config.isa) << " " << result.params.mr << " "
      << result.params.nr << " " << result.params.ku << " "
      << result.params.unroll << " "
      << opt::vec_strategy_name(result.config.strategy) << " "
      << result.mflops << "\n";
}

bool load_result(KernelKind kind, Isa isa, const std::string& path,
                 TuneResult& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string k, i, strat;
  TuneResult r;
  bool found = false;
  while (in >> k >> i >> r.params.mr >> r.params.nr >> r.params.ku >>
         r.params.unroll >> strat >> r.mflops) {
    if (k != frontend::kernel_kind_name(kind) || i != isa_name(isa)) continue;
    r.kind = kind;
    r.config.isa = isa;
    for (VecStrategy s : {VecStrategy::kVdup, VecStrategy::kShuf,
                          VecStrategy::kScalar, VecStrategy::kAuto})
      if (strat == opt::vec_strategy_name(s)) r.config.strategy = s;
    out = r;
    found = true;  // keep scanning: last entry wins
  }
  return found;
}

}  // namespace augem::tuning
