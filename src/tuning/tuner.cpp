#include "tuning/tuner.hpp"

#include <fstream>
#include <sstream>

#include "asmgen/codegen.hpp"
#include "jit/jit.hpp"
#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace augem::tuning {

using frontend::KernelKind;
using opt::OptConfig;
using opt::VecStrategy;
using transform::CGenParams;

std::string Trial::describe() const {
  std::ostringstream os;
  os << params.to_string() << " strategy=" << opt::vec_strategy_name(strategy);
  if (feasible) {
    os << " -> " << static_cast<long>(mflops) << " MFLOPS";
  } else {
    os << " -> infeasible";
  }
  return os.str();
}

std::string TuneResult::report() const {
  std::ostringstream os;
  os << "tuning " << frontend::kernel_kind_name(kind) << " on "
     << isa_name(config.isa) << ":\n";
  for (const Trial& t : trials) os << "  " << t.describe() << "\n";
  os << "best: " << params.to_string() << " strategy="
     << opt::vec_strategy_name(config.strategy) << " ("
     << static_cast<long>(mflops) << " MFLOPS)\n";
  return os.str();
}

namespace {

/// Builds + JITs one candidate; returns MFLOPS or nullopt if infeasible.
/// `time_fn` runs the kernel once and returns the flop count.
double time_candidate(KernelKind kind, const CGenParams& params,
                      const OptConfig& config, const TuneWorkload& w) {
  ir::Kernel opt_c = transform::generate_optimized_c(
      kind, frontend::BLayout::kRowPanel, params);
  asmgen::GeneratedKernel gen =
      asmgen::generate_assembly(std::move(opt_c), config);
  jit::CompiledModule mod = jit::assemble(gen.asm_text);

  Rng rng(11);
  switch (kind) {
    case KernelKind::kGemm: {
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);
      DoubleBuffer a(static_cast<std::size_t>(w.mc * w.kc));
      DoubleBuffer b(static_cast<std::size_t>(w.nc * w.kc));
      DoubleBuffer c(static_cast<std::size_t>(w.nc * w.mc));
      rng.fill(a.span());
      rng.fill(b.span());
      const std::int64_t m_main = w.mc / params.mr * params.mr;
      const std::int64_t n_main = w.nc / params.nr * params.nr;
      const double s = time_best_of(w.reps, [&] {
        fn(m_main, n_main, w.kc, a.data(), b.data(), c.data(), w.mc);
      });
      return mflops(gemm_flops(m_main, n_main, w.kc), s);
    }
    case KernelKind::kGemv: {
      auto* fn = mod.fn<void(long, long, const double*, long, const double*,
                             double*)>(gen.name);
      const std::int64_t m = w.vec_len / 8, n = 64;
      DoubleBuffer a(static_cast<std::size_t>(m * n));
      DoubleBuffer x(static_cast<std::size_t>(n));
      DoubleBuffer y(static_cast<std::size_t>(m));
      rng.fill(a.span());
      rng.fill(x.span());
      const double s = time_best_of(
          w.reps, [&] { fn(m, n, a.data(), m, x.data(), y.data()); });
      return mflops(gemv_flops(m, n), s);
    }
    case KernelKind::kAxpy: {
      auto* fn = mod.fn<void(long, double, const double*, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      const double s = time_best_of(
          w.reps, [&] { fn(w.vec_len, 1.1, x.data(), y.data()); });
      return mflops(axpy_flops(w.vec_len), s);
    }
    case KernelKind::kScal: {
      auto* fn = mod.fn<void(long, double, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      const double s = time_best_of(
          w.reps, [&] { fn(w.vec_len, 1.0000001, x.data()); });
      return mflops(static_cast<double>(w.vec_len), s);
    }
    case KernelKind::kDot: {
      auto* fn = mod.fn<double(long, const double*, const double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      rng.fill(y.span());
      volatile double sink = 0.0;
      const double s = time_best_of(
          w.reps, [&] { sink = fn(w.vec_len, x.data(), y.data()); });
      (void)sink;
      return mflops(dot_flops(w.vec_len), s);
    }
  }
  AUGEM_FAIL("unknown kernel kind");
}

TuneResult run_search(KernelKind kind, Isa isa,
                      const std::vector<Trial>& candidates,
                      const TuneWorkload& w) {
  TuneResult best;
  best.kind = kind;
  best.config.isa = isa;
  for (Trial t : candidates) {
    OptConfig config;
    config.isa = isa;
    config.strategy = t.strategy;
    try {
      t.mflops = time_candidate(kind, t.params, config, w);
      t.feasible = true;
    } catch (const Error&) {
      t.mflops = 0.0;
      t.feasible = false;
    }
    if (t.feasible && t.mflops > best.mflops) {
      best.params = t.params;
      best.config = config;
      best.mflops = t.mflops;
    }
    best.trials.push_back(std::move(t));
  }
  AUGEM_CHECK(best.mflops > 0.0, "no feasible configuration found");
  return best;
}

}  // namespace

TuneResult tune_gemm(Isa isa, const TuneWorkload& workload) {
  const int word = isa_vector_doubles(isa);
  std::vector<Trial> candidates;
  for (auto [mr, nr] : {std::pair{word, 2},
                              {word, word},
                              {2 * word, 2},
                              {2 * word, word},
                              {2 * word, 2 * word}}) {
    for (int ku : {1, 2, 4}) {
      for (bool prefetch : {false, true}) {
        Trial t;
        t.params.mr = mr;
        t.params.nr = nr;
        t.params.ku = ku;
        t.params.prefetch.enabled = prefetch;
        t.strategy = VecStrategy::kVdup;
        candidates.push_back(t);
        if (mr == word && nr == word && ku == 1) {
          Trial s = t;
          s.strategy = VecStrategy::kShuf;
          candidates.push_back(s);
        }
      }
    }
  }
  return run_search(KernelKind::kGemm, isa, candidates, workload);
}

TuneResult tune_level1(KernelKind kind, Isa isa, const TuneWorkload& workload) {
  AUGEM_CHECK(kind != KernelKind::kGemm, "use tune_gemm for GEMM");
  std::vector<Trial> candidates;
  for (int unroll : {4, 8, 16, 32}) {
    Trial t;
    t.params.unroll = unroll;
    candidates.push_back(t);
  }
  return run_search(kind, isa, candidates, workload);
}

void save_result(const TuneResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::app);
  AUGEM_CHECK(out.good(), "cannot write tuning cache " << path);
  out << frontend::kernel_kind_name(result.kind) << " "
      << isa_name(result.config.isa) << " " << result.params.mr << " "
      << result.params.nr << " " << result.params.ku << " "
      << result.params.unroll << " "
      << opt::vec_strategy_name(result.config.strategy) << " "
      << result.mflops << "\n";
}

bool load_result(KernelKind kind, Isa isa, const std::string& path,
                 TuneResult& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string k, i, strat;
  TuneResult r;
  bool found = false;
  while (in >> k >> i >> r.params.mr >> r.params.nr >> r.params.ku >>
         r.params.unroll >> strat >> r.mflops) {
    if (k != frontend::kernel_kind_name(kind) || i != isa_name(isa)) continue;
    r.kind = kind;
    r.config.isa = isa;
    for (VecStrategy s : {VecStrategy::kVdup, VecStrategy::kShuf,
                          VecStrategy::kScalar, VecStrategy::kAuto})
      if (strat == opt::vec_strategy_name(s)) r.config.strategy = s;
    out = r;
    found = true;  // keep scanning: last entry wins
  }
  return found;
}

}  // namespace augem::tuning
