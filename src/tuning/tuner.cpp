#include "tuning/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "asmgen/codegen.hpp"
#include "jit/jit.hpp"
#include "perf/stats.hpp"
#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace augem::tuning {

using frontend::KernelKind;
using opt::OptConfig;
using opt::VecStrategy;
using transform::CGenParams;

std::string Trial::describe() const {
  std::ostringstream os;
  os << params.to_string() << " strategy=" << opt::vec_strategy_name(strategy);
  if (feasible) {
    os << " -> " << static_cast<long>(mflops) << " MFLOPS"
       << " ±" << static_cast<long>(ci_half);
  } else {
    os << " -> infeasible: ";
    switch (reason) {
      case InfeasibleReason::kPlannerRejected:
        os << "planner rejected";
        break;
      case InfeasibleReason::kRegallocExhausted:
        os << "regalloc exhausted";
        break;
      default:
        os << "generation failed";
        break;
    }
  }
  return os.str();
}

std::string TuneResult::report() const {
  std::ostringstream os;
  os << "tuning " << frontend::kernel_kind_name(kind) << " on "
     << isa_name(config.isa) << ":\n";
  for (const Trial& t : trials) os << "  " << t.describe() << "\n";
  os << "search: " << search.algorithm << " seed=" << search.seed
     << " trials=" << search.trials_run << "/" << search.budget_trials
     << " grid=" << search.grid_size << " restarts=" << search.restarts_used
     << (search.wall_capped ? " (wall-capped)" : "") << "\n";
  os << "best: " << params.to_string() << " strategy="
     << opt::vec_strategy_name(config.strategy) << " ("
     << static_cast<long>(mflops) << " MFLOPS)\n";
  return os.str();
}

namespace {

/// Builds + JITs one candidate and times it `reps` times, writing the
/// per-invocation MFLOPS samples. Throws (planner/regalloc/codegen Error)
/// when the point is infeasible.
std::vector<double> time_candidate(KernelKind kind, const CGenParams& params,
                                   const OptConfig& config,
                                   const TuneWorkload& w, int reps) {
  ir::Kernel opt_c = transform::generate_optimized_c(
      kind, frontend::BLayout::kRowPanel, params);
  asmgen::GeneratedKernel gen =
      asmgen::generate_assembly(std::move(opt_c), config);
  jit::CompiledModule mod = jit::assemble(gen.asm_text);

  Rng rng(11);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  const auto sample = [&](double flops, const std::function<void()>& fn) {
    for (int r = 0; r < reps; ++r)
      samples.push_back(mflops(flops, time_best_of(1, fn)));
  };
  switch (kind) {
    case KernelKind::kGemm: {
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);
      DoubleBuffer a(static_cast<std::size_t>(w.mc * w.kc));
      DoubleBuffer b(static_cast<std::size_t>(w.nc * w.kc));
      DoubleBuffer c(static_cast<std::size_t>(w.nc * w.mc));
      rng.fill(a.span());
      rng.fill(b.span());
      const std::int64_t m_main = w.mc / params.mr * params.mr;
      const std::int64_t n_main = w.nc / params.nr * params.nr;
      sample(gemm_flops(m_main, n_main, w.kc), [&] {
        fn(m_main, n_main, w.kc, a.data(), b.data(), c.data(), w.mc);
      });
      break;
    }
    case KernelKind::kGemv: {
      auto* fn = mod.fn<void(long, long, const double*, long, const double*,
                             double*)>(gen.name);
      const std::int64_t m = w.vec_len / 8, n = 64;
      DoubleBuffer a(static_cast<std::size_t>(m * n));
      DoubleBuffer x(static_cast<std::size_t>(n));
      DoubleBuffer y(static_cast<std::size_t>(m));
      rng.fill(a.span());
      rng.fill(x.span());
      sample(gemv_flops(m, n),
             [&] { fn(m, n, a.data(), m, x.data(), y.data()); });
      break;
    }
    case KernelKind::kAxpy: {
      auto* fn = mod.fn<void(long, double, const double*, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      sample(axpy_flops(w.vec_len),
             [&] { fn(w.vec_len, 1.1, x.data(), y.data()); });
      break;
    }
    case KernelKind::kScal: {
      auto* fn = mod.fn<void(long, double, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      sample(static_cast<double>(w.vec_len),
             [&] { fn(w.vec_len, 1.0000001, x.data()); });
      break;
    }
    case KernelKind::kDot: {
      auto* fn = mod.fn<double(long, const double*, const double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      rng.fill(y.span());
      volatile double sink = 0.0;
      sample(dot_flops(w.vec_len),
             [&] { sink = fn(w.vec_len, x.data(), y.data()); });
      (void)sink;
      break;
    }
  }
  AUGEM_CHECK(!samples.empty(), "unknown kernel kind");
  return samples;
}

/// Checks feasibility without timing: the point must survive the full
/// generation pipeline (planner + regalloc + codegen). Used by synthetic
/// mode so determinism tests exercise real pruning with model scores.
void check_feasible(KernelKind kind, const CGenParams& params,
                    const OptConfig& config) {
  ir::Kernel opt_c = transform::generate_optimized_c(
      kind, frontend::BLayout::kRowPanel, params);
  (void)asmgen::generate_assembly(std::move(opt_c), config);
}

/// The search driver shared by hill-climbing and exhaustive mode: owns the
/// trial log, the dedup map, and the budget/wall accounting.
class SearchRun {
 public:
  SearchRun(KernelKind kind, Isa isa, const SearchSpace& space,
            const TuneWorkload& w, const SearchOptions& opts)
      : kind_(kind), space_(space), w_(w), opts_(opts) {
    result_.kind = kind;
    result_.config.isa = isa;
    const int grid = space.grid_size();
    budget_ = opts.exhaustive
                  ? grid
                  : std::min(grid, opts.max_trials > 0
                                       ? opts.max_trials
                                       : std::max(8, grid / 8));
    SearchMeta& m = result_.search;
    m.algorithm = opts.exhaustive ? "exhaustive" : "hillclimb";
    m.seed = opts.seed;
    m.budget_trials = budget_;
    m.budget_seconds = opts.max_seconds;
    m.grid_size = grid;
    m.synthetic = opts.synthetic;
  }

  bool out_of_budget() {
    if (static_cast<int>(result_.trials.size()) >= budget_) return true;
    if (opts_.max_seconds > 0.0 && timer_.elapsed_s() >= opts_.max_seconds) {
      result_.search.wall_capped = true;
      return true;
    }
    return false;
  }

  bool measured(const Point& p) const {
    return seen_.count(space_.key(p)) > 0;
  }

  /// Measures `p` (or returns the earlier trial), returning its index.
  std::size_t measure(const Point& p) {
    const std::string k = space_.key(p);
    if (const auto it = seen_.find(k); it != seen_.end()) return it->second;
    const Candidate c = space_.materialize(p);
    Trial t;
    t.params = c.params;
    t.strategy = c.strategy;
    OptConfig config = result_.config;
    config.strategy = c.strategy;
    try {
      if (opts_.synthetic) {
        check_feasible(kind_, t.params, config);
        t.mflops = space_.synthetic_score(p);
        t.ci_half = 0.0;
      } else {
        const int reps =
            opts_.fixed_reps > 0 ? opts_.fixed_reps : std::max(1, w_.reps);
        const perf::Summary s =
            perf::summarize(time_candidate(kind_, t.params, config, w_, reps));
        t.mflops = s.median;
        t.ci_half = s.ci_half;
      }
      t.feasible = true;
      t.reason = InfeasibleReason::kNone;
    } catch (const Error& e) {
      t.feasible = false;
      t.mflops = 0.0;
      t.reason = classify_infeasible(e.what());
    }
    const std::size_t idx = result_.trials.size();
    result_.trials.push_back(std::move(t));
    seen_.emplace(k, idx);
    const Trial& logged = result_.trials[idx];
    if (logged.feasible &&
        (best_ < 0 || logged.mflops > result_.trials[best_].mflops)) {
      best_ = static_cast<int>(idx);
      result_.params = logged.params;
      result_.config.strategy = logged.strategy;
    }
    return idx;
  }

  const Trial& trial(std::size_t idx) const { return result_.trials[idx]; }

  TuneResult finish() {
    result_.search.trials_run = static_cast<int>(result_.trials.size());
    result_.search.elapsed_seconds = timer_.elapsed_s();
    AUGEM_CHECK(best_ >= 0, "no feasible configuration found");
    result_.mflops = result_.trials[static_cast<std::size_t>(best_)].mflops;
    return std::move(result_);
  }

  SearchMeta& meta() { return result_.search; }

 private:
  KernelKind kind_;
  const SearchSpace& space_;
  const TuneWorkload& w_;
  const SearchOptions& opts_;
  TuneResult result_;
  std::map<std::string, std::size_t> seen_;
  int best_ = -1;
  int budget_ = 0;
  Timer timer_;
};

}  // namespace

TuneResult tune_space(KernelKind kind, Isa isa, const SearchSpace& space,
                      const TuneWorkload& w, const SearchOptions& opts) {
  SearchRun run(kind, isa, space, w, opts);

  if (opts.exhaustive) {
    for (const Point& p : space.all_points()) {
      if (run.out_of_budget()) break;
      run.measure(p);
    }
    return run.finish();
  }

  Rng rng(opts.seed);
  Point cur = space.start();
  std::size_t cur_idx = run.measure(cur);
  int plateau = 0;
  while (!run.out_of_budget()) {
    // One steepest-ascent step: measure the unseen neighbors of `cur`, in
    // seeded-shuffled order so plateau walks don't always favor axis 0.
    std::vector<Point> neigh = space.neighbors(cur);
    for (std::size_t i = neigh.size(); i > 1; --i)
      std::swap(neigh[i - 1], neigh[rng.engine()() % i]);
    int step_best = -1;
    Point step_best_p;
    for (const Point& q : neigh) {
      if (run.measured(q)) continue;
      if (run.out_of_budget()) break;
      const std::size_t idx = run.measure(q);
      const Trial& t = run.trial(idx);
      if (!t.feasible) continue;
      if (step_best < 0 ||
          t.mflops > run.trial(static_cast<std::size_t>(step_best)).mflops) {
        step_best = static_cast<int>(idx);
        step_best_p = q;
      }
    }

    bool moved = false;
    if (step_best >= 0) {
      const Trial& cand = run.trial(static_cast<std::size_t>(step_best));
      const Trial& here = run.trial(cur_idx);
      // CI-based acceptance: a move must clear the pooled 95% interval of
      // the two medians; a statistical tie is a (bounded) plateau move.
      const double pooled = std::sqrt(cand.ci_half * cand.ci_half +
                                      here.ci_half * here.ci_half);
      const double diff = cand.mflops - here.mflops;
      if (!here.feasible || diff > pooled) {
        plateau = 0;
        moved = true;
      } else if (diff > -pooled && plateau < opts.plateau_moves) {
        ++plateau;
        moved = true;
      }
      if (moved) {
        cur = step_best_p;
        cur_idx = static_cast<std::size_t>(step_best);
      }
    }
    if (!moved) {
      // Stalled: every neighbor is measured, infeasible, or worse beyond
      // the CI. Restart from a random unseen point.
      if (run.meta().restarts_used >= opts.restarts) break;
      ++run.meta().restarts_used;
      plateau = 0;
      bool found = false;
      for (int tries = 0; tries < 64 && !found; ++tries) {
        const Point q = space.random_point(rng);
        if (!run.measured(q)) {
          cur = q;
          found = true;
        }
      }
      if (!found || run.out_of_budget()) break;
      cur_idx = run.measure(cur);
    }
  }
  return run.finish();
}

TuneResult tune_gemm(Isa isa, const TuneWorkload& workload,
                     const SearchOptions& opts) {
  return tune_space(KernelKind::kGemm, isa, SearchSpace::gemm(isa), workload,
                    opts);
}

TuneResult tune_level1(KernelKind kind, Isa isa, const TuneWorkload& workload,
                       const SearchOptions& opts) {
  AUGEM_CHECK(kind != KernelKind::kGemm, "use tune_gemm for GEMM");
  return tune_space(kind, isa, SearchSpace::level1(), workload, opts);
}

std::string DriverTrial::describe() const {
  std::ostringstream os;
  os << "threads=" << threads << " mc=" << sizes.mc << " nc=" << sizes.nc
     << " kc=" << sizes.kc << " -> " << static_cast<long>(mflops)
     << " MFLOPS";
  return os.str();
}

blas::GemmContext DriverTuneResult::context() const {
  blas::GemmContext ctx = blas::threaded_gemm_context(sizes);
  ctx.threads = threads;
  return ctx;
}

std::string DriverTuneResult::report() const {
  std::ostringstream os;
  os << "tuning the blocked GEMM driver:\n";
  for (const DriverTrial& t : trials) os << "  " << t.describe() << "\n";
  os << "best: threads=" << threads << " mc=" << sizes.mc << " nc="
     << sizes.nc << " kc=" << sizes.kc << " ("
     << static_cast<long>(mflops) << " MFLOPS)\n";
  return os.str();
}

DriverTuneResult tune_driver(const blas::BlockKernel& kernel,
                             const blas::BlockSizes& base, std::int64_t m,
                             std::int64_t n, std::int64_t k, int reps) {
  AUGEM_CHECK(m > 0 && n > 0 && k > 0, "driver workload must be non-empty");
  ThreadPool& pool = ThreadPool::global();

  std::vector<int> thread_counts;
  for (int t = 1; t < pool.num_threads(); t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(pool.num_threads());

  // Block-size scalings around the cache-derived base, clamped and kept on
  // the register-tile multiple the serial derivation uses.
  auto rounded = [](blas::index_t v) {
    return std::max<blas::index_t>(8, v / 8 * 8);
  };
  std::vector<blas::BlockSizes> size_variants{base};
  blas::BlockSizes half_mc = base, twice_mc = base, half_nc = base;
  half_mc.mc = rounded(base.mc / 2);
  twice_mc.mc = rounded(base.mc * 2);
  half_nc.nc = rounded(base.nc / 2);
  size_variants.push_back(half_mc);
  size_variants.push_back(twice_mc);
  size_variants.push_back(half_nc);

  Rng rng(23);
  DoubleBuffer a(static_cast<std::size_t>(m * k));
  DoubleBuffer b(static_cast<std::size_t>(k * n));
  DoubleBuffer c(static_cast<std::size_t>(m * n));
  rng.fill(a.span());
  rng.fill(b.span());

  DriverTuneResult best;
  for (const blas::BlockSizes& sizes : size_variants) {
    for (int threads : thread_counts) {
      blas::GemmContext ctx = blas::threaded_gemm_context(sizes);
      ctx.threads = threads;
      DriverTrial trial;
      trial.threads = threads;
      trial.sizes = sizes;
      const double s = time_best_of(reps, [&] {
        blas::blocked_gemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, 1.0,
                           a.data(), m, b.data(), k, 0.0, c.data(), m, ctx,
                           kernel);
      });
      trial.mflops = mflops(gemm_flops(m, n, k), s);
      if (trial.mflops > best.mflops) {
        best.threads = threads;
        best.sizes = sizes;
        best.mflops = trial.mflops;
      }
      best.trials.push_back(trial);
    }
  }
  return best;
}

void save_result(const TuneResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::app);
  AUGEM_CHECK(out.good(), "cannot write tuning cache " << path);
  out << frontend::kernel_kind_name(result.kind) << " "
      << isa_name(result.config.isa) << " " << result.params.mr << " "
      << result.params.nr << " " << result.params.ku << " "
      << result.params.unroll << " "
      << opt::vec_strategy_name(result.config.strategy) << " "
      << result.mflops << "\n";
}

bool load_result(KernelKind kind, Isa isa, const std::string& path,
                 TuneResult& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string k, i, strat;
  TuneResult r;
  bool found = false;
  while (in >> k >> i >> r.params.mr >> r.params.nr >> r.params.ku >>
         r.params.unroll >> strat >> r.mflops) {
    if (k != frontend::kernel_kind_name(kind) || i != isa_name(isa)) continue;
    r.kind = kind;
    r.config.isa = isa;
    for (VecStrategy s : {VecStrategy::kVdup, VecStrategy::kShuf,
                          VecStrategy::kScalar, VecStrategy::kAuto})
      if (strat == opt::vec_strategy_name(s)) r.config.strategy = s;
    out = r;
    found = true;  // keep scanning: last entry wins
  }
  return found;
}

}  // namespace augem::tuning
