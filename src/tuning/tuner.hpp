#pragma once
// Empirical tuning (paper §2.1): "our Optimized C Kernel Generator
// automatically experiments with different unrolling and unroll&jam
// configurations and selects the best performing configurations based on
// the performance of their optimized code."
//
// The tuner enumerates candidate (register tile, inner unroll,
// vectorization strategy) points, generates + JIT-compiles each kernel,
// times it on representative packed workloads, and returns the winner.
// Configurations the planner rejects (register-budget overflow, Shuf shape
// violations) are skipped, exactly like ATLAS-style search spaces prune
// infeasible points.

#include <string>
#include <vector>

#include "blas/driver.hpp"
#include "frontend/kernels.hpp"
#include "opt/plan.hpp"
#include "transform/ckernel.hpp"

namespace augem::tuning {

/// One evaluated search point.
struct Trial {
  transform::CGenParams params;
  opt::VecStrategy strategy = opt::VecStrategy::kVdup;
  double mflops = 0.0;   ///< 0 when the point was infeasible
  bool feasible = false;
  std::string describe() const;
};

/// Search outcome: the winning configuration plus the full trial log.
struct TuneResult {
  frontend::KernelKind kind{};
  transform::CGenParams params;
  opt::OptConfig config;
  double mflops = 0.0;
  std::vector<Trial> trials;

  std::string report() const;
};

/// Workload extents used for timing (packed-block shapes for GEMM,
/// vector length for the Level-1/2 kernels).
struct TuneWorkload {
  std::int64_t mc = 128;
  std::int64_t nc = 128;
  std::int64_t kc = 256;
  std::int64_t vec_len = 8192;
  int reps = 5;  ///< timing repetitions per candidate (best-of)
};

/// Tunes the GEMM register tile and strategy for `isa`.
TuneResult tune_gemm(Isa isa, const TuneWorkload& workload = {});

/// Tunes the inner-loop unroll factor for GEMV / AXPY / DOT.
TuneResult tune_level1(frontend::KernelKind kind, Isa isa,
                       const TuneWorkload& workload = {});

/// Persists / restores a result keyed by (kernel kind, ISA) in a simple
/// text cache, so repeated runs skip the search.
void save_result(const TuneResult& result, const std::string& path);
bool load_result(frontend::KernelKind kind, Isa isa, const std::string& path,
                 TuneResult& out);

// ---- macro-loop (driver) tuning ------------------------------------------

/// One evaluated (thread count, block sizes) point of the driver sweep.
struct DriverTrial {
  int threads = 1;
  blas::BlockSizes sizes;
  double mflops = 0.0;
  std::string describe() const;
};

/// Outcome of the macro-loop search: the best-performing GemmContext
/// parameters plus the full trial log.
struct DriverTuneResult {
  int threads = 1;
  blas::BlockSizes sizes;
  double mflops = 0.0;
  std::vector<DriverTrial> trials;

  /// The winning configuration as a ready-to-use driver context.
  blas::GemmContext context() const;

  std::string report() const;
};

/// Sweeps thread counts (1, 2, 4, … up to the global pool size) alongside
/// mc/nc scalings around `base`, timing the full blocked driver with
/// `kernel` on an m×n×k DGEMM workload. Complements tune_gemm: that search
/// picks the register tile inside the micro kernel, this one picks the
/// macro-loop decomposition around it.
DriverTuneResult tune_driver(const blas::BlockKernel& kernel,
                             const blas::BlockSizes& base, std::int64_t m,
                             std::int64_t n, std::int64_t k, int reps = 3);

}  // namespace augem::tuning
