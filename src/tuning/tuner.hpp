#pragma once
// Empirical tuning (paper §2.1): "our Optimized C Kernel Generator
// automatically experiments with different unrolling and unroll&jam
// configurations and selects the best performing configurations based on
// the performance of their optimized code."
//
// Where the paper (and the first nine PRs of this repo) swept the whole
// candidate grid, the tuner now runs the seeded, budgeted hill-climbing
// search described in docs/tuning.md over the axis-factored space in
// tuning/search.hpp: generate + JIT + time each visited point, accept moves
// whose improvement clears the pooled confidence interval of the two
// measurements, treat statistical ties as plateau moves, and restart from
// random points when a climb stalls. Configurations the planner or the
// register allocator rejects are logged as infeasible (with the stage that
// rejected them) and pruned, exactly like ATLAS-style search spaces.

#include <string>
#include <vector>

#include "blas/driver.hpp"
#include "frontend/kernels.hpp"
#include "opt/plan.hpp"
#include "transform/ckernel.hpp"
#include "tuning/search.hpp"

namespace augem::tuning {

/// One evaluated search point.
struct Trial {
  transform::CGenParams params;
  opt::VecStrategy strategy = opt::VecStrategy::kVdup;
  double mflops = 0.0;   ///< median MFLOPS over the timing reps; 0 infeasible
  double ci_half = 0.0;  ///< 95% CI half-width on the median (stats.hpp)
  bool feasible = false;
  InfeasibleReason reason = InfeasibleReason::kNone;  ///< why infeasible
  std::string describe() const;
};

/// Search outcome: the winning configuration plus the full trial log and
/// the metadata describing how the search ran (seed, budgets, restarts).
struct TuneResult {
  frontend::KernelKind kind{};
  transform::CGenParams params;
  opt::OptConfig config;
  double mflops = 0.0;
  std::vector<Trial> trials;
  SearchMeta search;

  std::string report() const;
};

/// Workload extents used for timing (packed-block shapes for GEMM,
/// vector length for the Level-1/2 kernels).
struct TuneWorkload {
  std::int64_t mc = 128;
  std::int64_t nc = 128;
  std::int64_t kc = 256;
  std::int64_t vec_len = 8192;
  int reps = 5;  ///< timing repetitions per candidate (median-of)
};

/// Tunes the GEMM register tile, unrolls, prefetch distance and strategy
/// for `isa` with the seeded search (or the full sweep when
/// `opts.exhaustive` is set).
TuneResult tune_gemm(Isa isa, const TuneWorkload& workload = {},
                     const SearchOptions& opts = SearchOptions::from_env());

/// Tunes the inner-loop unroll factor + prefetch for GEMV / AXPY / DOT.
TuneResult tune_level1(frontend::KernelKind kind, Isa isa,
                       const TuneWorkload& workload = {},
                       const SearchOptions& opts = SearchOptions::from_env());

/// Runs the search over an explicit space (tests use downsized grids; the
/// mirlint sweep samples points from the same spaces the tuner climbs).
TuneResult tune_space(frontend::KernelKind kind, Isa isa,
                      const SearchSpace& space, const TuneWorkload& workload,
                      const SearchOptions& opts);

/// Persists / restores a result keyed by (kernel kind, ISA) in a simple
/// text cache, so repeated runs skip the search.
void save_result(const TuneResult& result, const std::string& path);
bool load_result(frontend::KernelKind kind, Isa isa, const std::string& path,
                 TuneResult& out);

// ---- macro-loop (driver) tuning ------------------------------------------

/// One evaluated (thread count, block sizes) point of the driver sweep.
struct DriverTrial {
  int threads = 1;
  blas::BlockSizes sizes;
  double mflops = 0.0;
  std::string describe() const;
};

/// Outcome of the macro-loop search: the best-performing GemmContext
/// parameters plus the full trial log.
struct DriverTuneResult {
  int threads = 1;
  blas::BlockSizes sizes;
  double mflops = 0.0;
  std::vector<DriverTrial> trials;

  /// The winning configuration as a ready-to-use driver context.
  blas::GemmContext context() const;

  std::string report() const;
};

/// Sweeps thread counts (1, 2, 4, … up to the global pool size) alongside
/// mc/nc scalings around `base`, timing the full blocked driver with
/// `kernel` on an m×n×k DGEMM workload. Complements tune_gemm: that search
/// picks the register tile inside the micro kernel, this one picks the
/// macro-loop decomposition around it.
DriverTuneResult tune_driver(const blas::BlockKernel& kernel,
                             const blas::BlockSizes& base, std::int64_t m,
                             std::int64_t n, std::int64_t k, int reps = 3);

}  // namespace augem::tuning
