#pragma once
// Control-flow graph over the machine IR.
//
// Basic blocks are maximal straight-line instruction ranges: a block starts
// at instruction 0, at every label, and after every jump or ret; it ends
// before the next leader. Edges follow the jump targets plus fall-through.
// The old verifier walked instructions in linear order only; every dataflow
// pass (definite assignment, liveness, flag discipline, symbolic bounds)
// is formulated over this graph instead, so properties hold along every
// execution path rather than along the emission order.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "opt/minst.hpp"

namespace augem::analysis {

struct BasicBlock {
  std::size_t first = 0;  ///< index of the first instruction
  std::size_t last = 0;   ///< one past the last instruction
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;
};

struct Cfg {
  const opt::MInstList* insts = nullptr;
  std::vector<BasicBlock> blocks;           ///< in instruction order
  std::vector<std::size_t> block_of;        ///< instruction index -> block id
  std::map<std::string, std::size_t> label_block;  ///< label -> block id

  std::size_t size() const { return blocks.size(); }
};

/// True for kJl/kJge/kJne/kJe.
bool is_cond_jump(opt::MOp op);

/// Builds the CFG. Jumps to unknown labels get no edge (the structural pass
/// reports them); such jumps are treated as fall-through so later passes
/// still see a connected graph.
Cfg build_cfg(const opt::MInstList& insts);

}  // namespace augem::analysis
