#pragma once
// Symbolic memory-bounds proofs for generated machine code.
//
// Models every GPR and frame slot as a polynomial (ir::Poly) over the
// kernel's parameters (extents, leading dimensions, pointer bases) plus
// bounded loop-counter symbols, executes the instruction stream abstractly
// over the generator's counted-loop idiom, and discharges, for every load,
// store and prefetch, the proof obligation
//
//     0 <= byte offset  &&  byte offset + access bytes <= 8 * buffer extent
//
// against the KernelContract's buffer extents and arithmetic facts
// (divisibility of block sizes by register tiles, mc <= ldc, …).
// Prefetches get a configurable slack window on both sides (they are
// hints and cannot fault); stores additionally require a writable buffer.
//
// The pass is sound over the shapes the generator emits (pre-guarded
// counted loops `init; cmp; jge END; HEAD: …; add; cmp; jl HEAD; END:`,
// including remainder loops continuing a counter). Anything it cannot
// interpret — an unguarded or non-counted loop, an address that is not a
// provable offset into a contract buffer — is reported as an error, never
// silently skipped: "no finding" means "proved".

#include "analysis/contract.hpp"
#include "analysis/findings.hpp"
#include "opt/minst.hpp"

namespace augem::analysis {

struct BoundsOptions {
  /// Bytes a prefetch may range beyond (or before) its buffer.
  int prefetch_slack_bytes = 1024;
};

void run_bounds_check(const opt::MInstList& insts,
                      const KernelContract& contract,
                      const BoundsOptions& opts, AnalysisReport& report);

}  // namespace augem::analysis
