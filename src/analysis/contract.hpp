#pragma once
// Caller-side contracts for the generated kernels.
//
// The symbolic bounds pass (analysis/bounds) proves that every memory
// access of a generated kernel stays inside the caller's buffers. The
// buffers and the arithmetic facts that make those proofs possible are not
// inferable from the machine code — they are the ABI documented in
// frontend/kernels.hpp plus the guarantees the blocked drivers give their
// inner kernels (e.g. `mc % mr == 0`, `mc <= ldc`). A KernelContract states
// them explicitly per kernel kind.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "frontend/kernels.hpp"
#include "ir/affine.hpp"
#include "ir/kernel.hpp"
#include "transform/ckernel.hpp"

namespace augem::analysis {

/// Facts about one integer parameter, used during bound elimination.
struct ParamFacts {
  std::string name;
  std::int64_t divisible_by = 1;       ///< e.g. mc % mr == 0
  std::optional<ir::Poly> upper_bound; ///< e.g. mc <= ldc
  /// Constant lower bound, e.g. lda >= m for a small-GEMM kernel whose
  /// extents are compile-time constants (the leading dimensions are the
  /// only runtime values left to relate the buffers to the accesses).
  std::optional<std::int64_t> min_value;
};

/// One caller buffer reachable through a pointer parameter.
struct BufferSpec {
  std::string param;      ///< pointer parameter name ("A", "x", …)
  ir::Poly extent_elems;  ///< number of doubles the caller guarantees
  bool writable = false;  ///< stores allowed (C, y) or read-only (A, B, x)
};

/// One kernel parameter in ABI order.
struct ArgSpec {
  std::string name;
  bool is_f64 = false;  ///< SSE class (xmm0-7); else INTEGER class
};

struct KernelContract {
  std::vector<ArgSpec> args;       ///< ABI order (= ir::Kernel param order)
  std::vector<ParamFacts> facts;   ///< integer-parameter facts
  std::vector<BufferSpec> buffers;

  const BufferSpec* buffer_for(const std::string& param) const;
  const ParamFacts* facts_for(const std::string& param) const;
};

/// Builds the contract for one generated kernel configuration. `params`
/// supplies the register-tile divisibility the blocked drivers guarantee
/// (GEMM is always called with mc % mr == 0 and nc % nr == 0).
KernelContract contract_for(frontend::KernelKind kind,
                            frontend::BLayout layout,
                            const transform::CGenParams& params,
                            const ir::Kernel& kernel);

/// Contract for a shape-specialized small-GEMM kernel (see
/// frontend::make_small_gemm_kernel). The extents m/n/k are baked into the
/// code, so the facts relate the runtime leading dimensions to them
/// (lda >= m, ldb >= k, ldc >= m) and the buffer extents are lda*k, ldb*n,
/// ldc*n — plus the epilogue's bias vector (m elements) when the spec
/// fuses a bias add.
KernelContract contract_for_small_gemm(const frontend::SmallGemmSpec& spec,
                                       const ir::Kernel& kernel);

}  // namespace augem::analysis
