// Implements the opt/verifier.hpp API as a thin wrapper over the analysis
// passes. The old straight-line verifier lived in src/opt/verifier.cpp; its
// checks (and message wording) are subsumed by analysis/structural.cpp and
// analysis/dataflow.cpp, which additionally run over the CFG — so GPR
// reads-before-writes and post-loop vector reads are now caught along every
// path, not just in emission order. Only error-severity findings become
// VerifyIssues: warnings (dead stores, queue-reuse hazards) are advisory
// and reported through the full analysis::analyze API or tools/mirlint.

#include "opt/verifier.hpp"

#include <sstream>

#include "analysis/analyzer.hpp"
#include "support/error.hpp"

namespace augem::opt {

std::vector<VerifyIssue> verify_machine_code(const MInstList& insts,
                                             int num_f64_params) {
  analysis::AnalyzeOptions options;
  options.num_f64_params = num_f64_params;
  const analysis::AnalysisReport report = analysis::analyze(insts, options);

  std::vector<VerifyIssue> issues;
  for (const analysis::Finding& f : report.findings)
    if (f.severity == analysis::Severity::kError)
      issues.push_back({f.index, f.message});
  return issues;
}

void check_machine_code(const MInstList& insts, int num_f64_params) {
  const std::vector<VerifyIssue> issues =
      verify_machine_code(insts, num_f64_params);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "machine-code verification failed (" << issues.size() << " issue(s)):";
  for (const VerifyIssue& vi : issues)
    os << "\n  [" << vi.index << "] " << vi.message << "  | "
       << insts[vi.index].to_string();
  AUGEM_FAIL(os.str());
}

}  // namespace augem::opt
