#include "analysis/symexec.hpp"

#include <utility>

#include "analysis/cfg.hpp"

namespace augem::analysis::symexec {

using ir::Poly;
using opt::Gpr;
using opt::Mem;
using opt::MInst;
using opt::MInstList;
using opt::MOp;
using opt::Vr;

const char* const kRsp0 = "rsp0$";

SymExec::SymExec(const MInstList& insts, const KernelContract& contract)
    : insts_(insts), contract_(contract) {}

// ---- symbols and proofs ----------------------------------------------------

std::size_t SymExec::add_symbol(SymInfo info) {
  sym_index_[info.name] = symbols_.size();
  symbols_.push_back(std::move(info));
  return symbols_.size() - 1;
}

const SymInfo* SymExec::find_symbol(const std::string& name) const {
  auto it = sym_index_.find(name);
  return it == sym_index_.end() ? nullptr : &symbols_[it->second];
}

Sign SymExec::sign_of(const Poly& p) const {
  bool has_pos = false, has_neg = false;
  for (const ir::PolyTerm& t : p.terms()) {
    for (const std::string& var : t.vars) {
      const SymInfo* s = find_symbol(var);
      if (s == nullptr || !s->nonneg) return Sign::kUnknown;
    }
    (t.coeff > 0 ? has_pos : has_neg) = true;
  }
  if (has_pos && has_neg) return Sign::kUnknown;
  return has_neg ? Sign::kNonPos : Sign::kNonNeg;
}

std::optional<std::int64_t> SymExec::lower_bound(Poly p) const {
  for (int sweep = 0; sweep < 64; ++sweep) {
    if (p.without_constant().terms().empty()) return p.constant_part();
    bool progressed = false;
    // Relational substitutions first: bounds expressed over OTHER symbols
    // carry the contract's and loop protocol's relational facts (mc <= ldc,
    // counter <= extent, remainder-counter >= main-loop exit), which must
    // cancel against other terms before any variable is floored at its
    // relation-free lower bound. E.g. 8*ldc - 8*mc proves >= 0 only via
    // mc -> ldc; flooring ldc -> 0 first would lose the relation. Symmetric
    // on the low side: 8*ct - 8*k with ct.lo = exit and k.hi = exit - 1
    // proves >= 8 only via ct -> exit, so a non-constant lower bound joins
    // this sweep (constant floors stay in the fallback pass below).
    for (std::size_t i = symbols_.size(); i-- > 0;) {
      const SymInfo& s = symbols_[i];
      if (p.independent_of(s.name)) continue;
      const std::optional<Poly> c = p.coefficient_of(s.name);
      if (!c) continue;  // nonlinear in s; other substitutions may fix it
      if (sign_of(*c) == Sign::kNonPos && s.hi) {
        p = p.substitute(s.name, *s.hi);
        progressed = true;
      } else if (sign_of(*c) == Sign::kNonNeg && s.lo &&
                 !s.lo->without_constant().terms().empty()) {
        p = p.substitute(s.name, *s.lo);
        progressed = true;
      }
    }
    if (progressed) continue;
    // No relational fact applies: floor one nonnegative-coefficient
    // variable (newest first) and re-sweep.
    for (std::size_t i = symbols_.size(); i-- > 0;) {
      const SymInfo& s = symbols_[i];
      if (p.independent_of(s.name)) continue;
      const std::optional<Poly> c = p.coefficient_of(s.name);
      if (!c || sign_of(*c) != Sign::kNonNeg) continue;
      if (s.lo)
        p = p.substitute(s.name, *s.lo);
      else if (s.nonneg)
        p = p.substitute(s.name, Poly::constant(0));
      else
        continue;
      progressed = true;
      break;
    }
    if (!progressed) return std::nullopt;  // stuck: unknown sign or var
  }
  return std::nullopt;
}

bool SymExec::prove_nonneg(const Poly& p) const {
  const std::optional<std::int64_t> lb = lower_bound(p);
  return lb.has_value() && *lb >= 0;
}

bool SymExec::divisible(const Poly& p, std::int64_t d) const {
  if (d == 1) return true;
  if (d == 0) return false;
  for (const ir::PolyTerm& t : p.terms()) {
    std::int64_t f = t.coeff % d;
    for (const std::string& var : t.vars) {
      const SymInfo* s = find_symbol(var);
      const std::int64_t m = s != nullptr ? s->divisible_by : 1;
      f = (f * (m % d)) % d;
    }
    if (f != 0) return false;
  }
  return true;
}

std::optional<Poly> SymExec::poly_div(const Poly& p, std::int64_t d) {
  if (d == 0) return std::nullopt;
  Poly q;
  for (const ir::PolyTerm& t : p.terms()) {
    if (t.coeff % d != 0) return std::nullopt;
    Poly term = Poly::constant(t.coeff / d);
    for (const std::string& var : t.vars) term = term * Poly::variable(var);
    q = q + term;
  }
  return q;
}

bool SymExec::uses_only_older(const Poly& p, std::size_t watermark) const {
  for (const ir::PolyTerm& t : p.terms())
    for (const std::string& var : t.vars) {
      auto it = sym_index_.find(var);
      if (it == sym_index_.end() || it->second >= watermark) return false;
    }
  return true;
}

// ---- state -----------------------------------------------------------------

IntState SymExec::initial_state() {
  IntState st;
  add_symbol({kRsp0, std::nullopt, std::nullopt, true, 1});

  static constexpr Gpr kIntArgRegs[6] = {Gpr::rdi, Gpr::rsi, Gpr::rdx,
                                         Gpr::rcx, Gpr::r8,  Gpr::r9};
  int next_int = 0;
  std::int64_t next_stack = 8;  // 0 is the return address
  for (const ArgSpec& a : contract_.args) {
    if (a.is_f64) continue;  // SSE class: vector values are untracked here
    SymInfo si;
    si.name = a.name;
    si.nonneg = true;  // extents are nonnegative; pointers are addresses
    if (const ParamFacts* f = contract_.facts_for(a.name)) {
      si.divisible_by = f->divisible_by;
      si.hi = f->upper_bound;
      if (f->min_value) si.lo = Poly::constant(*f->min_value);
    }
    if (contract_.buffer_for(a.name) != nullptr) pointer_syms_.insert(a.name);
    add_symbol(si);
    if (next_int < 6) {
      st.gpr[index_of(kIntArgRegs[next_int++])] = Poly::variable(a.name);
    } else {
      st.stack[next_stack] = Poly::variable(a.name);
      next_stack += 8;
      ++n_stack_args_;
    }
  }
  return st;
}

SymVal SymExec::get(const IntState& st, Gpr g) const {
  if (g == Gpr::rsp)
    return Poly::variable(kRsp0) + Poly::constant(st.rsp_rel);
  return st.gpr[index_of(g)];
}

SymVal SymExec::get_loc(const IntState& st, const Loc& l) const {
  if (!l.is_slot) return get(st, l.reg);
  auto it = st.stack.find(l.off);
  return it == st.stack.end() ? std::nullopt : it->second;
}

void SymExec::set_loc(IntState& st, const Loc& l, SymVal v) {
  if (l.is_slot)
    st.stack[l.off] = std::move(v);
  else
    st.gpr[index_of(l.reg)] = std::move(v);
}

SymVal SymExec::addr_of(const IntState& st, const Mem& m) const {
  if (!m.valid()) return std::nullopt;
  SymVal base = get(st, m.base);
  if (!base) return std::nullopt;
  Poly a = *base + Poly::constant(m.disp);
  if (m.has_index()) {
    SymVal idx = get(st, m.index);
    if (!idx) return std::nullopt;
    a = a + *idx * Poly::constant(m.scale);
  }
  return a;
}

AccessRef SymExec::classify_access(const IntState& st, const Mem& m) const {
  AccessRef ref;
  const SymVal addr = addr_of(st, m);
  if (!addr) return ref;
  const std::optional<Poly> c = addr->coefficient_of(kRsp0);
  if (c && !(c->without_constant().terms().empty() &&
             c->constant_part() == 0)) {
    // Stack access: must be a constant entry-relative offset.
    const Poly rem = *addr - Poly::variable(kRsp0);
    if (!(c->without_constant().terms().empty() && c->constant_part() == 1) ||
        !rem.without_constant().terms().empty()) {
      ref.nonconst_stack = true;
      ref.addr = *addr;
      return ref;
    }
    ref.kind = AccessRef::kStack;
    ref.slot = rem.constant_part();
    return ref;
  }
  ref.kind = AccessRef::kData;
  ref.addr = *addr;
  return ref;
}

std::optional<std::pair<const BufferSpec*, Poly>> SymExec::data_ref(
    const Poly& addr) const {
  const BufferSpec* buf = nullptr;
  for (const std::string& p : pointer_syms_) {
    const std::optional<Poly> c = addr.coefficient_of(p);
    if (!c || c->without_constant().terms().empty() == false ||
        c->constant_part() == 0)
      continue;
    if (c->constant_part() != 1 || buf != nullptr) return std::nullopt;
    buf = contract_.buffer_for(p);
  }
  if (buf == nullptr) return std::nullopt;
  return std::make_pair(buf, addr - Poly::variable(buf->param));
}

// ---- abstract integer transfer ---------------------------------------------

bool SymExec::exec_int(std::size_t i, IntState& st, std::string* why) const {
  const MInst& inst = insts_[i];
  bool ok = true;
  auto setg = [&](Gpr g, SymVal v) {
    if (g == Gpr::kNoGpr) return;
    if (g == Gpr::rsp) {
      if (why != nullptr) *why = "unexpected write to rsp";
      ok = false;
      return;
    }
    st.gpr[index_of(g)] = std::move(v);
  };
  auto bin = [&](auto f) -> SymVal {
    SymVal a = get(st, inst.gdst), b = get(st, inst.gsrc);
    if (!a || !b) return std::nullopt;
    return f(*a, *b);
  };
  auto slot_of = [&](const Mem& m) -> std::optional<std::int64_t> {
    const AccessRef ref = classify_access(st, m);
    if (ref.kind != AccessRef::kStack) return std::nullopt;
    return ref.slot;
  };

  switch (inst.op) {
    case MOp::kIMovImm:
      setg(inst.gdst, Poly::constant(inst.imm));
      break;
    case MOp::kIMov:
      setg(inst.gdst, get(st, inst.gsrc));
      break;
    case MOp::kIAdd:
      setg(inst.gdst, bin([](const Poly& a, const Poly& b) { return a + b; }));
      break;
    case MOp::kISub:
      setg(inst.gdst, bin([](const Poly& a, const Poly& b) { return a - b; }));
      break;
    case MOp::kIMul:
      setg(inst.gdst, bin([](const Poly& a, const Poly& b) { return a * b; }));
      break;
    case MOp::kIAddImm:
      if (inst.gdst == Gpr::rsp) {
        st.rsp_rel += inst.imm;
      } else {
        SymVal v = get(st, inst.gdst);
        setg(inst.gdst, v ? SymVal(*v + Poly::constant(inst.imm)) : v);
      }
      break;
    case MOp::kISubImm:
      if (inst.gdst == Gpr::rsp) {
        st.rsp_rel -= inst.imm;
      } else {
        SymVal v = get(st, inst.gdst);
        setg(inst.gdst, v ? SymVal(*v - Poly::constant(inst.imm)) : v);
      }
      break;
    case MOp::kIMulImm: {
      SymVal v = get(st, inst.gsrc);
      setg(inst.gdst, v ? SymVal(*v * Poly::constant(inst.imm)) : v);
      break;
    }
    case MOp::kIShlImm: {
      SymVal v = get(st, inst.gdst);
      if (v && inst.imm >= 0 && inst.imm < 62)
        setg(inst.gdst, *v * Poly::constant(std::int64_t{1} << inst.imm));
      else
        setg(inst.gdst, std::nullopt);
      break;
    }
    case MOp::kINeg: {
      SymVal v = get(st, inst.gdst);
      setg(inst.gdst, v ? SymVal(Poly::constant(0) - *v) : v);
      break;
    }
    case MOp::kLea:
      setg(inst.gdst, addr_of(st, inst.mem));
      break;

    case MOp::kILoad: {
      const auto slot = slot_of(inst.mem);
      if (slot) {
        auto it = st.stack.find(*slot);
        setg(inst.gdst, it == st.stack.end() ? SymVal{} : it->second);
      } else {
        setg(inst.gdst, std::nullopt);
      }
      break;
    }
    case MOp::kIStore: {
      const auto slot = slot_of(inst.mem);
      if (slot) st.stack[*slot] = get(st, inst.gsrc);
      break;
    }
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem: {
      const auto slot = slot_of(inst.mem);
      SymVal mv;
      if (slot) {
        auto it = st.stack.find(*slot);
        if (it != st.stack.end()) mv = it->second;
      }
      SymVal v = get(st, inst.gdst);
      if (v && mv) {
        if (inst.op == MOp::kIAddMem)
          setg(inst.gdst, *v + *mv);
        else if (inst.op == MOp::kISubMem)
          setg(inst.gdst, *v - *mv);
        else
          setg(inst.gdst, *v * *mv);
      } else {
        setg(inst.gdst, std::nullopt);
      }
      break;
    }

    case MOp::kPush:
      st.stack[st.rsp_rel - 8] = get(st, inst.gsrc);
      st.rsp_rel -= 8;
      break;
    case MOp::kPop: {
      auto it = st.stack.find(st.rsp_rel);
      setg(inst.gdst, it == st.stack.end() ? SymVal{} : it->second);
      st.rsp_rel += 8;
      break;
    }

    default:
      break;  // vector arithmetic, cmp, labels, comments, vzeroupper, ret
  }
  return ok;
}

// ---- counted-loop idiom ----------------------------------------------------

std::size_t SymExec::find_latch(std::size_t head, std::size_t last) const {
  const std::string& name = insts_[head].label;
  std::size_t latch = kNoneIdx;
  for (std::size_t j = head + 1; j < last; ++j)
    if ((is_cond_jump(insts_[j].op) || insts_[j].op == MOp::kJmp) &&
        insts_[j].label == name)
      latch = j;
  return latch;
}

std::size_t SymExec::prev_real(std::size_t i, std::size_t floor) const {
  while (i-- > floor)
    if (insts_[i].op != MOp::kComment) return i;
  return kNoneIdx;
}

SymVal SymExec::cmp_rhs_value(std::size_t cmp_idx, const IntState& st) const {
  const MInst& c = insts_[cmp_idx];
  if (c.op == MOp::kCmpImm) return Poly::constant(c.imm);
  return get(st, c.gsrc);
}

std::optional<Loc> SymExec::trace_cmp_lhs(std::size_t cmp_idx,
                                          std::size_t floor,
                                          const IntState& st) const {
  const Gpr r = insts_[cmp_idx].gdst;
  std::vector<Gpr> dg;
  std::vector<Vr> dv;
  for (std::size_t j = cmp_idx; j-- > floor;) {
    const MInst& inst = insts_[j];
    defs_of(inst, dg, dv);
    bool defs_r = false;
    for (Gpr g : dg) defs_r |= g == r;
    if (!defs_r) continue;
    if (inst.op == MOp::kILoad && inst.mem.base == Gpr::rsp &&
        !inst.mem.has_index())
      return Loc{true, Gpr::kNoGpr, st.rsp_rel + inst.mem.disp};
    if (inst.op == MOp::kIAdd || inst.op == MOp::kIAddImm ||
        inst.op == MOp::kISub || inst.op == MOp::kISubImm)
      return Loc{false, r, 0};
    return std::nullopt;  // counter produced some other way: unsupported
  }
  return Loc{false, r, 0};  // not redefined in range: the register itself
}

bool SymExec::modified_locs(std::size_t first, std::size_t last,
                            const IntState& st, std::set<Loc>& out,
                            std::size_t* where, std::string* why) const {
  std::vector<Gpr> dg;
  std::vector<Vr> dv;
  auto fail = [&](std::size_t i, const char* msg) {
    if (where != nullptr) *where = i;
    if (why != nullptr) *why = msg;
    return false;
  };
  for (std::size_t i = first; i < last; ++i) {
    const MInst& inst = insts_[i];
    if (inst.op == MOp::kPush || inst.op == MOp::kPop)
      return fail(i, "push/pop inside a loop");
    defs_of(inst, dg, dv);
    for (Gpr g : dg) {
      if (g == Gpr::rsp) return fail(i, "rsp adjustment inside a loop");
      out.insert({false, g, 0});
    }
    if (inst.op == MOp::kIStore || inst.op == MOp::kFStore ||
        inst.op == MOp::kVStore) {
      if (inst.mem.base == Gpr::rsp) {
        if (inst.mem.has_index())
          return fail(i, "indexed stack store inside a loop");
        out.insert({true, Gpr::kNoGpr, st.rsp_rel + inst.mem.disp});
      }
    }
  }
  return true;
}

std::optional<LoopShape> SymExec::loop_shape(std::size_t head,
                                             std::size_t latch,
                                             const IntState& st,
                                             std::size_t* where,
                                             std::string* why) const {
  auto fail = [&](std::size_t i, const char* msg) -> std::optional<LoopShape> {
    if (where != nullptr) *where = i;
    if (why != nullptr) *why = msg;
    return std::nullopt;
  };
  if (insts_[latch].op != MOp::kJl) return fail(latch, "loop latch is not jl");
  const std::size_t cmp_idx = prev_real(latch, head);
  if (cmp_idx == kNoneIdx || (insts_[cmp_idx].op != MOp::kCmp &&
                              insts_[cmp_idx].op != MOp::kCmpImm))
    return fail(latch, "loop latch without a compare");

  LoopShape shape;
  shape.head = head;
  shape.latch = latch;
  shape.cmp_idx = cmp_idx;

  const std::optional<Loc> counter = trace_cmp_lhs(cmp_idx, head + 1, st);
  if (!counter) return fail(cmp_idx, "cannot identify the loop counter");
  shape.counter = *counter;
  const SymVal c0v = get_loc(st, *counter);
  if (!c0v) return fail(head, "loop counter has no symbolic entry value");
  shape.c0 = *c0v;

  // The bound: evaluated at loop entry; the discovery pass verifies it
  // does not move.
  shape.bound0 = cmp_rhs_value(cmp_idx, st);

  // Pre-guard: `cmp c0, B; jge END` immediately before the loop head,
  // where END labels the instruction after the latch. Without it the
  // first iteration is unconstrained, so the counter gets no upper bound.
  if (shape.bound0 && latch + 1 < insts_.size() &&
      insts_[latch + 1].op == MOp::kLabel) {
    const std::size_t g_jge = prev_real(head, 0);
    if (g_jge != kNoneIdx && insts_[g_jge].op == MOp::kJge &&
        insts_[g_jge].label == insts_[latch + 1].label) {
      const std::size_t g_cmp = prev_real(g_jge, 0);
      if (g_cmp != kNoneIdx && (insts_[g_cmp].op == MOp::kCmp ||
                                insts_[g_cmp].op == MOp::kCmpImm)) {
        const SymVal glhs = get(st, insts_[g_cmp].gdst);
        const SymVal grhs = cmp_rhs_value(g_cmp, st);
        shape.guarded =
            glhs && grhs && *glhs == shape.c0 && *grhs == *shape.bound0;
      }
    }
  }

  shape.watermark = symbols_.size();
  if (!modified_locs(head + 1, latch, st, shape.modified, where, why))
    return std::nullopt;
  return shape;
}

std::optional<std::int64_t> SymExec::loop_step(const LoopShape& shape,
                                               const IntState& s1,
                                               std::size_t* where,
                                               std::string* why) const {
  auto fail = [&](const char* msg) -> std::optional<std::int64_t> {
    if (where != nullptr) *where = shape.latch;
    if (why != nullptr) *why = msg;
    return std::nullopt;
  };
  const SymVal c1v = get_loc(s1, shape.counter);
  if (!c1v) return fail("loop counter value lost across the body");
  const Poly delta_c = *c1v - shape.c0;
  if (!delta_c.without_constant().terms().empty() ||
      delta_c.constant_part() <= 0)
    return fail("loop counter step is not a positive constant");
  return delta_c.constant_part();
}

bool SymExec::bound_invariant(const LoopShape& shape,
                              const IntState& s1) const {
  const SymVal bound1 = cmp_rhs_value(shape.cmp_idx, s1);
  return shape.bound0 && bound1 && *shape.bound0 == *bound1;
}

std::string SymExec::make_counter_symbol(const LoopShape& shape,
                                         std::int64_t step, bool bound_ok) {
  SymInfo ct;
  ct.name = "ct$" + std::to_string(fresh_++);
  ct.lo = shape.c0;
  ct.nonneg = prove_nonneg(shape.c0);
  if (shape.guarded && bound_ok) {
    const Poly b = *shape.bound0;
    ct.hi = divisible(b - shape.c0, step) ? b - Poly::constant(step)
                                          : b - Poly::constant(1);
  }
  if (divisible(shape.c0, step)) ct.divisible_by = step;
  add_symbol(ct);
  return symbols_.back().name;
}

std::string SymExec::make_exit_symbol(const LoopShape& shape,
                                      std::int64_t step, bool bound_ok) {
  // The counter leaves holding some value in [c0, B + step - 1] (the
  // failed-guard value after the last iteration, or c0 when the pre-guard
  // skipped the loop entirely). It is always exactly c0 + step*trips, so
  // when c0 is a multiple of the step the exit value is too — that fact
  // lets remainder-loop summaries line up with the main loop's.
  SymInfo ex;
  ex.name = "exit$" + std::to_string(fresh_++);
  ex.lo = shape.c0;
  ex.nonneg = prove_nonneg(shape.c0);
  if (shape.guarded && bound_ok) {
    const Poly hi = *shape.bound0 + Poly::constant(step - 1);
    if (prove_nonneg(hi - shape.c0)) ex.hi = hi;
  }
  if (divisible(shape.c0, step)) ex.divisible_by = step;
  add_symbol(ex);
  return symbols_.back().name;
}

std::map<Loc, SymVal> SymExec::inducted(const LoopShape& shape,
                                        const IntState& base,
                                        const IntState& s1, std::int64_t step,
                                        const Poly& sym) const {
  std::map<Loc, SymVal> vals;
  for (const Loc& loc : shape.modified) {
    if (loc == shape.counter) {
      vals[loc] = sym;
      continue;
    }
    const SymVal a = get_loc(base, loc);
    const SymVal b = get_loc(s1, loc);
    SymVal v;
    if (a && b) {
      const Poly d = *b - *a;
      if (uses_only_older(d, shape.watermark)) {
        if (const std::optional<Poly> q = poly_div(d, step))
          v = *a + *q * (sym - shape.c0);
      }
    }
    vals[loc] = v;
  }
  return vals;
}

void SymExec::apply(IntState& dst, const std::map<Loc, SymVal>& vals) {
  for (const auto& [loc, v] : vals) set_loc(dst, loc, v);
}

}  // namespace augem::analysis::symexec
