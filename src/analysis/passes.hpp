#pragma once
// The non-symbolic analysis passes over the machine-IR CFG.
//
//  * structural  — operand completeness, encodings/widths, label sanity,
//    push/pop and stack-frame discipline (subsumes the old opt/verifier
//    checks of the same names, with identical message wording).
//  * flags       — EFLAGS liveness per block: every conditional jump must
//    be dominated, within its block, by a compare with no flag-clobbering
//    instruction in between.
//  * definite assignment — forward dataflow (intersection at joins): no
//    vector or general-purpose register is read on ANY path before every
//    path to that read has written it. Entry state is the SysV argument
//    registers. This closes the old verifier's gap: a write inside a loop
//    body does not initialize code after the loop, because the loop may
//    run zero iterations.
//  * liveness    — backward dataflow; vector-register writes whose value
//    cannot reach any use are dead stores (warnings: wasted issue slots).
//  * queue reuse — register-queue false-dependence heuristic: a load-class
//    redefinition of a vector register too close to a prior arithmetic use
//    creates a WAR hazard that defeats the paper's R/m queue rotation.

#include "analysis/cfg.hpp"
#include "analysis/findings.hpp"

namespace augem::analysis {

void run_structural_checks(const Cfg& cfg, AnalysisReport& report);

void run_flags_check(const Cfg& cfg, AnalysisReport& report);

/// `num_f64_params` seeds xmm0..n-1 as initialized (SysV SSE args).
void run_definite_assignment(const Cfg& cfg, int num_f64_params,
                             AnalysisReport& report);

void run_dead_store_check(const Cfg& cfg, AnalysisReport& report);

/// `window`: how many instructions after a non-copy use of a vector
/// register a load-class redefinition of it is considered "in flight".
void run_queue_reuse_check(const Cfg& cfg, int window, AnalysisReport& report);

}  // namespace augem::analysis
