#pragma once
// Shared symbolic-execution machinery for the machine-IR analyses.
//
// Models every GPR and frame slot as a polynomial (ir::Poly) over the
// kernel's contract parameters plus bounded loop-counter symbols, and
// interprets the generator's counted-loop idiom
//
//     init; cmp; jge END; HEAD: body…; add step; cmp; jl HEAD; END:
//
// by two-pass induction: a discovery pass finds each location's
// per-iteration delta, then inductive locations are re-expressed as affine
// functions of a fresh bounded counter symbol. Loop exits are parametrized
// by an exit symbol (which also covers the zero-trip path), so remainder
// loops that continue a counter keep the cursor/counter correlation.
//
// Two passes build on this engine: the memory-bounds prover (bounds.cpp)
// and the translation validator (semantics.cpp). The bounds pass owns the
// access-checking policy; the semantics pass layers per-lane floating-point
// expression tracking on top of the same integer state and loop protocol.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/contract.hpp"
#include "ir/affine.hpp"
#include "opt/minst.hpp"

namespace augem::analysis::symexec {

constexpr std::size_t kNoneIdx = static_cast<std::size_t>(-1);

/// Entry-rsp symbol: stack addresses are RSP0-relative constants.
extern const char* const kRsp0;

/// Abstract value: a polynomial over parameter/counter symbols, or unknown.
using SymVal = std::optional<ir::Poly>;

struct SymInfo {
  std::string name;
  std::optional<ir::Poly> lo;  ///< inclusive lower bound (over older symbols)
  std::optional<ir::Poly> hi;  ///< inclusive upper bound (over older symbols)
  bool nonneg = false;
  std::int64_t divisible_by = 1;
};

enum class Sign { kNonNeg, kNonPos, kUnknown };

/// A trackable storage location: a GPR or an entry-rsp-relative frame slot.
struct Loc {
  bool is_slot = false;
  opt::Gpr reg = opt::Gpr::kNoGpr;
  std::int64_t off = 0;

  bool operator<(const Loc& o) const {
    if (is_slot != o.is_slot) return is_slot < o.is_slot;
    if (is_slot) return off < o.off;
    return reg < o.reg;
  }
  bool operator==(const Loc& o) const {
    return is_slot == o.is_slot && (is_slot ? off == o.off : reg == o.reg);
  }
};

struct IntState {
  std::array<SymVal, opt::kNumGprs> gpr;
  std::map<std::int64_t, SymVal> stack;  ///< entry-rsp-relative offset -> val
  std::int64_t rsp_rel = 0;              ///< rsp - entry rsp (<= 0)
};

/// Classification of one memory operand's symbolic address.
struct AccessRef {
  enum Kind {
    kUnknown,  ///< no symbolic address (or non-constant stack address)
    kStack,    ///< constant entry-rsp-relative frame offset
    kData,     ///< a symbolic data address (see `addr`)
  } kind = kUnknown;
  std::int64_t slot = 0;          ///< kStack: entry-rsp-relative offset
  std::optional<ir::Poly> addr;   ///< kData: the full symbolic address
  bool nonconst_stack = false;    ///< kUnknown due to a moving stack address
};

/// Integer facts about one counted loop, gathered before the discovery pass.
struct LoopShape {
  std::size_t head = 0;     ///< index of the loop-head label
  std::size_t latch = 0;    ///< index of the conditional back-jump
  std::size_t cmp_idx = 0;  ///< the compare feeding the latch
  Loc counter;              ///< storage location of the loop counter
  ir::Poly c0;              ///< counter value at loop entry
  SymVal bound0;            ///< loop bound evaluated at entry
  bool guarded = false;     ///< `cmp c0,B; jge END` precedes the head
  std::set<Loc> modified;   ///< locations written anywhere in the body
  std::size_t watermark = 0;  ///< symbol count at loop entry
};

/// The shared engine. Analyses either use it as a member or derive from it;
/// it has no findings policy of its own — callers decide what an
/// uninterpretable shape means.
class SymExec {
 public:
  SymExec(const opt::MInstList& insts, const KernelContract& contract);

  // ---- symbols and proofs ------------------------------------------------

  std::size_t add_symbol(SymInfo info);
  const SymInfo* find_symbol(const std::string& name) const;

  /// Syntactic sign: every term has the given sign with all variables
  /// known nonnegative. Conservative (kUnknown fails proofs).
  Sign sign_of(const ir::Poly& p) const;

  /// Constant lower bound of `p` by monomial-wise symbol elimination:
  /// a symbol with nonnegative coefficient is replaced by its lower bound,
  /// with nonpositive coefficient by its upper bound. Substituted bounds
  /// may reference other symbols, so sweep until only a constant remains.
  std::optional<std::int64_t> lower_bound(ir::Poly p) const;

  bool prove_nonneg(const ir::Poly& p) const;

  /// True when `p` is provably a multiple of `d` (term-wise, using the
  /// declared divisibility of each variable; arithmetic is mod d).
  bool divisible(const ir::Poly& p, std::int64_t d) const;

  static std::optional<ir::Poly> poly_div(const ir::Poly& p, std::int64_t d);

  /// Every variable of `p` was created before symbol index `watermark`.
  bool uses_only_older(const ir::Poly& p, std::size_t watermark) const;

  std::size_t num_symbols() const { return symbols_.size(); }
  const std::set<std::string>& pointer_syms() const { return pointer_syms_; }
  int num_stack_args() const { return n_stack_args_; }

  // ---- state -------------------------------------------------------------

  /// SysV entry state: integer-class contract arguments in rdi..r9 then
  /// stack slots at +8…; f64 args are skipped (SSE class, untracked here).
  IntState initial_state();

  SymVal get(const IntState& st, opt::Gpr g) const;
  SymVal get_loc(const IntState& st, const Loc& l) const;
  static void set_loc(IntState& st, const Loc& l, SymVal v);
  SymVal addr_of(const IntState& st, const opt::Mem& m) const;

  /// Splits a memory operand into frame slot / data address / unknown.
  AccessRef classify_access(const IntState& st, const opt::Mem& m) const;

  /// The contract buffer a data address points into, with the byte offset
  /// from its base; nullopt when the address is not a unit offset into
  /// exactly one buffer.
  std::optional<std::pair<const BufferSpec*, ir::Poly>> data_ref(
      const ir::Poly& addr) const;

  /// Abstract integer transfer for one instruction (moves, arithmetic,
  /// lea, loads/stores with frame-slot forwarding, push/pop, rsp
  /// adjustments). Vector arithmetic, compares, labels and prefetches have
  /// no integer effect. Returns false (with *why) on a write to rsp
  /// outside the frame idiom.
  bool exec_int(std::size_t i, IntState& st, std::string* why) const;

  // ---- counted-loop idiom ------------------------------------------------

  /// Index of the latest conditional back-jump in (head, last) targeting
  /// the label at `head`, or kNoneIdx.
  std::size_t find_latch(std::size_t head, std::size_t last) const;

  /// Previous non-comment instruction at or above `floor`, or kNoneIdx.
  std::size_t prev_real(std::size_t i, std::size_t floor) const;

  /// Value of the compare's right operand (the loop bound) in `st`.
  SymVal cmp_rhs_value(std::size_t cmp_idx, const IntState& st) const;

  /// The storage location whose value the compare at `cmp_idx` reads as its
  /// left operand, looking back through at most one reload from a frame
  /// slot. `floor` limits the def search.
  std::optional<Loc> trace_cmp_lhs(std::size_t cmp_idx, std::size_t floor,
                                   const IntState& st) const;

  /// Locations written anywhere in [first, last): GPR defs plus constant
  /// rsp-relative stores. Returns false (with *where/*why) on pushes/pops
  /// inside the range, rsp writes, or non-constant stack stores.
  bool modified_locs(std::size_t first, std::size_t last, const IntState& st,
                     std::set<Loc>& out, std::size_t* where,
                     std::string* why) const;

  /// Full pre-discovery loop analysis: latch/compare shape, counter
  /// location and entry value, bound, pre-guard, modified set. Returns
  /// nullopt (with *where/*why) when the loop is not the counted idiom.
  std::optional<LoopShape> loop_shape(std::size_t head, std::size_t latch,
                                      const IntState& st, std::size_t* where,
                                      std::string* why) const;

  /// Counter step extracted from the discovery-pass exit state `s1`;
  /// nullopt (with *where/*why) unless it is a positive constant.
  std::optional<std::int64_t> loop_step(const LoopShape& shape,
                                        const IntState& s1, std::size_t* where,
                                        std::string* why) const;

  /// True when the bound reads the same value after one iteration.
  bool bound_invariant(const LoopShape& shape, const IntState& s1) const;

  /// Fresh `ct$N` symbol for the body pass: lo = c0; hi = bound - step when
  /// the guarded bound is divisible, bound - 1 otherwise.
  std::string make_counter_symbol(const LoopShape& shape, std::int64_t step,
                                  bool bound_ok);

  /// Fresh `exit$N` symbol: the counter leaves holding c0 + step * trips,
  /// in [c0, bound + step - 1] (covering the zero-trip path).
  std::string make_exit_symbol(const LoopShape& shape, std::int64_t step,
                               bool bound_ok);

  /// Induction map: every modified location that advanced by a
  /// loop-invariant multiple of the step, re-expressed in `sym`; the rest
  /// map to unknown.
  std::map<Loc, SymVal> inducted(const LoopShape& shape, const IntState& base,
                                 const IntState& s1, std::int64_t step,
                                 const ir::Poly& sym) const;

  static void apply(IntState& dst, const std::map<Loc, SymVal>& vals);

 protected:
  const opt::MInstList& insts_;
  const KernelContract& contract_;
  std::vector<SymInfo> symbols_;  // creation order; elimination runs newest
                                  // to oldest so bounds only reference what
                                  // remains
  std::map<std::string, std::size_t> sym_index_;
  std::set<std::string> pointer_syms_;
  int n_stack_args_ = 0;
  int fresh_ = 0;
};

}  // namespace augem::analysis::symexec
