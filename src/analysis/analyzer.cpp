#include "analysis/analyzer.hpp"

#include <sstream>

#include "analysis/cfg.hpp"
#include "analysis/passes.hpp"
#include "support/error.hpp"

namespace augem::analysis {

AnalysisReport analyze(const opt::MInstList& insts,
                       const AnalyzeOptions& options) {
  AnalysisReport report;
  if (insts.empty()) return report;

  const Cfg cfg = build_cfg(insts);
  run_structural_checks(cfg, report);
  run_flags_check(cfg, report);
  run_definite_assignment(cfg, options.num_f64_params, report);
  run_dead_store_check(cfg, report);
  run_queue_reuse_check(cfg, options.queue_reuse_window, report);

  if (options.contract != nullptr) {
    BoundsOptions bo;
    bo.prefetch_slack_bytes = options.prefetch_slack_bytes;
    run_bounds_check(insts, *options.contract, bo, report);
    if (options.semantics != nullptr)
      run_semantics_check(insts, *options.contract, *options.semantics,
                          report);
  }
  return report;
}

void check_clean(const AnalysisReport& report, const opt::MInstList& insts) {
  const std::size_t errors = report.errors();
  if (errors == 0) return;
  std::ostringstream os;
  os << "machine-code verification failed (" << errors << " issue(s)):";
  for (const Finding& f : report.findings) {
    if (f.severity != Severity::kError) continue;
    os << "\n  [" << f.index << "] " << f.message;
    if (f.index < insts.size()) os << "  | " << insts[f.index].to_string();
  }
  AUGEM_FAIL(os.str());
}

}  // namespace augem::analysis
