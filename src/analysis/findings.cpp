#include "analysis/findings.hpp"

#include <sstream>

namespace augem::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::size_t AnalysisReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == s) ++n;
  return n;
}

std::string AnalysisReport::to_string(const opt::MInstList& insts) const {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << "[" << f.index << "] " << severity_name(f.severity) << " " << f.kind
       << ": " << f.message;
    if (f.index < insts.size()) os << "  | " << insts[f.index].to_string();
    os << "\n";
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

std::string AnalysisReport::to_json(const opt::MInstList& insts) const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) os << ",";
    os << "{\"index\":" << f.index << ",\"severity\":\""
       << severity_name(f.severity) << "\",\"kind\":\"" << json_escape(f.kind)
       << "\",\"message\":\"" << json_escape(f.message) << "\"";
    if (f.index < insts.size())
      os << ",\"inst\":\"" << json_escape(insts[f.index].to_string()) << "\"";
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace augem::analysis
