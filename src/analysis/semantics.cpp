#include "analysis/semantics.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/symexec.hpp"
#include "opt/schedule.hpp"
#include "support/error.hpp"

namespace augem::analysis {

using frontend::BLayout;
using frontend::KernelKind;
using ir::Poly;
using opt::Gpr;
using opt::Mem;
using opt::MInst;
using opt::MInstList;
using opt::MOp;
using opt::Vr;

namespace {

using symexec::AccessRef;
using symexec::IntState;
using symexec::kNoneIdx;
using symexec::LoopShape;
using symexec::SymVal;

/// Reserved bound-variable name of every kSum body. The induction machinery
/// never emits a counter with this name, so it cannot collide with free
/// variables.
const char* const kSumVar = "sum$";

// ---- symbolic value DAG ----------------------------------------------------
//
// The abstract domain for one vector lane: real-valued expressions over
// pristine memory, f64 arguments and opaque "visit" leaves, kept in a
// canonical form where addition and multiplication are flattened n-ary
// nodes with key-sorted children. Equal canonical keys mean the two values
// are equal under reassociation/commutation of + and * — exactly the
// rewrites the optimizer is licensed to perform — and nothing else (no
// distribution, no cancellation beyond the +0/*0/*1 identities).

enum class SK : std::uint8_t {
  kConst,  ///< floating-point literal
  kParam,  ///< f64 kernel argument (alpha, beta)
  kInit,   ///< pristine memory: buffer + byte offset at kernel entry
  kVisit,  ///< opaque value the checker cannot (or need not) resolve
  kLoop,   ///< pass-B placeholder for a loop-carried lane (never escapes)
  kAdd,    ///< n-ary sum; children key-sorted (commutative, associative)
  kMul,    ///< n-ary product; children key-sorted
  kMax,    ///< ordered max(a, b): MAXPD picks b on NaN/ties, so no sorting
  kSum,    ///< sum of `body` over `sum$` in [lo, hi) stepping `step`
};

struct SExpr;
using SRef = std::shared_ptr<const SExpr>;

struct SExpr {
  SK kind = SK::kConst;
  double cval = 0.0;       // kConst
  std::string name;        // kParam: argument; kInit/kVisit: buffer param
  Poly off;                // kInit (and informationally kVisit): byte offset
  int id = -1;             // kVisit / kLoop
  std::vector<SRef> kids;  // kAdd/kMul (n), kMax (2), kSum (1: the body)
  Poly lo, hi;             // kSum: bound-variable range [lo, hi)
  std::int64_t step = 1;   // kSum

  // Cached canonical form and facts (filled by intern()).
  std::string key;       ///< equal keys <=> equivalent canonical values
  bool has_sum = false;  ///< a kSum appears somewhere in the tree
  bool has_loop = false; ///< a pass-B placeholder appears in the tree
  int max_visit = -1;    ///< largest kVisit id in the tree (-1: none)
};

std::string fmt_const(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Finalizes a node: folds child facts upward and computes the canonical
/// key. Every construction path funnels through here.
SRef intern(SExpr e) {
  for (const SRef& k : e.kids) {
    e.has_sum = e.has_sum || k->has_sum;
    e.has_loop = e.has_loop || k->has_loop;
    e.max_visit = std::max(e.max_visit, k->max_visit);
  }
  switch (e.kind) {
    case SK::kConst:
      e.key = "c:" + fmt_const(e.cval);
      break;
    case SK::kParam:
      e.key = "P:" + e.name;
      break;
    case SK::kInit:
      e.key = "I:" + e.name + ":" + e.off.to_string();
      break;
    case SK::kVisit:
      e.key = "V:" + std::to_string(e.id);
      e.max_visit = std::max(e.max_visit, e.id);
      break;
    case SK::kLoop:
      e.key = "L:" + std::to_string(e.id);
      e.has_loop = true;
      break;
    case SK::kAdd: {
      e.key = "(+";
      for (const SRef& k : e.kids) {
        e.key += ' ';
        e.key += k->key;
      }
      e.key += ')';
      break;
    }
    case SK::kMul: {
      e.key = "(*";
      for (const SRef& k : e.kids) {
        e.key += ' ';
        e.key += k->key;
      }
      e.key += ')';
      break;
    }
    case SK::kMax:
      e.key = "(max " + e.kids[0]->key + " " + e.kids[1]->key + ")";
      break;
    case SK::kSum:
      e.has_sum = true;
      e.key = "(sum " + e.lo.to_string() + ";" + e.hi.to_string() + ";" +
              std::to_string(e.step) + " " + e.kids[0]->key + ")";
      break;
  }
  return std::make_shared<const SExpr>(std::move(e));
}

bool key_less(const SRef& a, const SRef& b) { return a->key < b->key; }

/// Substitutes integer variable `var` with `repl` inside every embedded
/// polynomial (kInit/kVisit offsets, kSum bounds). `sum$` is a binder:
/// substituting it must not recurse into nested kSum bodies, where the
/// inner binder shadows it. Re-sorts kAdd/kMul children because offsets —
/// and hence keys — change under substitution.
SRef subst_var(const SRef& e, const std::string& var, const Poly& repl) {
  if (!e) return e;
  SExpr n;
  bool changed = false;
  auto copy = [&] {
    if (!changed) {
      n = *e;
      n.has_sum = n.has_loop = false;
      n.max_visit = -1;
      n.key.clear();
      changed = true;
    }
  };
  switch (e->kind) {
    case SK::kInit:
    case SK::kVisit:
      if (!e->off.independent_of(var)) {
        copy();
        n.off = e->off.substitute(var, repl);
      }
      break;
    case SK::kSum: {
      if (!e->lo.independent_of(var)) {
        copy();
        n.lo = e->lo.substitute(var, repl);
      }
      if (!e->hi.independent_of(var)) {
        copy();
        n.hi = e->hi.substitute(var, repl);
      }
      if (var != kSumVar) {
        const SRef b = subst_var(e->kids[0], var, repl);
        if (b != e->kids[0]) {
          copy();
          n.kids[0] = b;
        }
      }
      break;
    }
    case SK::kAdd:
    case SK::kMul:
    case SK::kMax:
      for (std::size_t i = 0; i < e->kids.size(); ++i) {
        const SRef k = subst_var(e->kids[i], var, repl);
        if (k != e->kids[i]) {
          copy();
          n.kids[i] = k;
        }
      }
      if (changed && e->kind != SK::kMax)
        std::sort(n.kids.begin(), n.kids.end(), key_less);
      break;
    default:
      break;
  }
  return changed ? intern(std::move(n)) : e;
}

/// Human-readable rendering for finding messages (not the canonical key).
void render_to(const SRef& e, std::string& out) {
  if (out.size() > 400) return;  // truncated by render() anyway
  if (!e) {
    out += "<undef>";
    return;
  }
  switch (e->kind) {
    case SK::kConst:
      out += fmt_const(e->cval);
      break;
    case SK::kParam:
      out += e->name;
      break;
    case SK::kInit:
      out += e->name + "[" + e->off.to_string() + "]";
      break;
    case SK::kVisit:
      out += "?" + std::to_string(e->id);
      if (!e->name.empty())
        out += "{" + e->name + "[" + e->off.to_string() + "]}";
      break;
    case SK::kLoop:
      out += "loop#" + std::to_string(e->id);
      break;
    case SK::kAdd:
    case SK::kMul: {
      const char* sep = e->kind == SK::kAdd ? " + " : " * ";
      out += '(';
      for (std::size_t i = 0; i < e->kids.size(); ++i) {
        if (i) out += sep;
        render_to(e->kids[i], out);
      }
      out += ')';
      break;
    }
    case SK::kMax:
      out += "max(";
      render_to(e->kids[0], out);
      out += ", ";
      render_to(e->kids[1], out);
      out += ')';
      break;
    case SK::kSum:
      out += "sum{" + std::string(kSumVar) + "=" + e->lo.to_string() + ".." +
             e->hi.to_string() + " step " + std::to_string(e->step) + "}(";
      render_to(e->kids[0], out);
      out += ')';
      break;
  }
}

std::string render(const SRef& e) {
  std::string out;
  render_to(e, out);
  if (out.size() > 400) {
    out.resize(400);
    out += "...";
  }
  return out;
}

// ---- per-lane machine state ------------------------------------------------

struct Lanes {
  std::array<SRef, 4> l{};
};

/// One store into a writable data buffer: lane 0's byte offset plus the
/// stored lane values. Later loads forward from the newest matching event.
struct Ev {
  std::string buf;
  Poly off;
  int lanes = 1;
  std::array<SRef, 4> val{};
};

struct FpState {
  std::array<Lanes, opt::kNumVrs> vr{};
  std::map<std::int64_t, SRef> slots;  ///< entry-rsp-relative offset -> value
  std::vector<Ev> events;
};

struct SemState {
  IntState in;
  FpState fp;
};

/// Which walk this is. Only kCheck walks verify stores and may resolve a
/// writable-buffer load as pristine memory; the two loop-discovery walks
/// run over states that do not represent all prior iterations, so their
/// unresolved loads must stay opaque.
enum class Mode { kDiscover, kInduct, kCheck };


// ---- the engine ------------------------------------------------------------

class SemEngine : private symexec::SymExec {
 public:
  SemEngine(const MInstList& insts, const KernelContract& contract,
            const SemanticsSpec& spec, AnalysisReport& report)
      : SymExec(insts, contract), spec_(spec), report_(report) {
    zero_ = mk_const(0.0);
    one_ = mk_const(1.0);
  }

  void run() {
    SemState st;
    st.in = initial_state();
    seed_fp(st.fp);
    walk(0, insts_.size(), st, Mode::kCheck);
    if (!stop_ && spec_.kind == KernelKind::kDot) check_dot_return(st);
  }

 private:
  const SemanticsSpec& spec_;
  AnalysisReport& report_;
  bool stop_ = false;
  int visit_id_ = 0;
  int loop_id_ = 0;
  SRef zero_, one_;

  // ---- findings ------------------------------------------------------------

  void finding(std::size_t i, const char* kind, const std::string& msg) {
    if (stop_) return;
    stop_ = true;
    report_.add(i, Severity::kError, kind, msg);
  }
  void unsupported(std::size_t i, const std::string& why) {
    finding(i, "semantics-unsupported",
            "translation validation cannot interpret this code (" + why +
                "); the kernel is unproven");
  }
  void unproven(std::size_t i, const std::string& msg) {
    finding(i, "semantics-unproven", msg);
  }
  void mismatch(std::size_t i, const std::string& msg) {
    finding(i, "semantics-mismatch", msg);
  }

  // ---- expression builders -------------------------------------------------
  //
  // Member functions because canonicalization (phase merge, range gluing,
  // chunk splitting) needs the engine's divisibility and sign facts.

  SRef mk_const(double v) {
    if (zero_ && v == 0.0) return zero_;
    if (one_ && v == 1.0) return one_;
    SExpr e;
    e.kind = SK::kConst;
    e.cval = v;
    return intern(std::move(e));
  }

  SRef mk_param(const std::string& name) {
    SExpr e;
    e.kind = SK::kParam;
    e.name = name;
    return intern(std::move(e));
  }

  SRef mk_init(const std::string& buf, Poly off) {
    SExpr e;
    e.kind = SK::kInit;
    e.name = buf;
    e.off = std::move(off);
    return intern(std::move(e));
  }

  SRef mk_visit() {
    SExpr e;
    e.kind = SK::kVisit;
    e.id = visit_id_++;
    return intern(std::move(e));
  }

  SRef mk_visit_at(const std::string& buf, Poly off) {
    SExpr e;
    e.kind = SK::kVisit;
    e.id = visit_id_++;
    e.name = buf;
    e.off = std::move(off);
    return intern(std::move(e));
  }

  SRef mk_loop() {
    SExpr e;
    e.kind = SK::kLoop;
    e.id = loop_id_++;
    return intern(std::move(e));
  }

  /// n-ary sum: flatten, fold constants (dropping +0), merge phase-shifted
  /// partial sums, glue adjacent ranges, sort. Null (undefined) operands
  /// poison the result.
  SRef mk_add(std::vector<SRef> in) {
    std::vector<SRef> kids;
    double c = 0.0;
    bool has_c = false;
    for (const SRef& k : in) {
      if (!k) return nullptr;
      if (k->kind == SK::kAdd) {
        for (const SRef& g : k->kids) {
          if (g->kind == SK::kConst) {
            c += g->cval;
            has_c = true;
          } else {
            kids.push_back(g);
          }
        }
      } else if (k->kind == SK::kConst) {
        c += k->cval;
        has_c = true;
      } else {
        kids.push_back(k);
      }
    }
    if (has_c && c != 0.0) kids.push_back(mk_const(c));
    while (phase_merge(kids) || range_glue(kids)) {
    }
    if (kids.empty()) return zero_;
    if (kids.size() == 1) return kids[0];
    std::sort(kids.begin(), kids.end(), key_less);
    SExpr e;
    e.kind = SK::kAdd;
    e.kids = std::move(kids);
    return intern(std::move(e));
  }

  /// n-ary product: flatten, fold constants (*1 drops, *0 annihilates —
  /// a real-arithmetic identity that ignores signed zeros and NaN; see
  /// docs/static-analysis.md), sort.
  SRef mk_mul(std::vector<SRef> in) {
    std::vector<SRef> kids;
    double c = 1.0;
    bool has_c = false;
    for (const SRef& k : in) {
      if (!k) return nullptr;
      if (k->kind == SK::kMul) {
        for (const SRef& g : k->kids) {
          if (g->kind == SK::kConst) {
            c *= g->cval;
            has_c = true;
          } else {
            kids.push_back(g);
          }
        }
      } else if (k->kind == SK::kConst) {
        c *= k->cval;
        has_c = true;
      } else {
        kids.push_back(k);
      }
    }
    if (has_c && c == 0.0) return zero_;
    if (has_c && c != 1.0) kids.push_back(mk_const(c));
    if (kids.empty()) return one_;
    if (kids.size() == 1) return kids[0];
    std::sort(kids.begin(), kids.end(), key_less);
    SExpr e;
    e.kind = SK::kMul;
    e.kids = std::move(kids);
    return intern(std::move(e));
  }

  /// Ordered max: MAXPD returns src2 on NaN and on ties, so max(a,b) and
  /// max(b,a) are NOT interchangeable and the operands stay in machine
  /// order.
  SRef mk_max(SRef a, SRef b) {
    if (!a || !b) return nullptr;
    SExpr e;
    e.kind = SK::kMax;
    e.kids = {std::move(a), std::move(b)};
    return intern(std::move(e));
  }

  /// Counted sum of `body` over sum$ in [lo, hi) stepping `step`. An
  /// unrolled body — an Add whose children are `c` phase shifts of one
  /// base term with stride step/c — is split into the equivalent
  /// finer-stepped sum, so unroll-by-c loops summarize identically to
  /// their scalar remainder loops.
  SRef mk_sum(const Poly& lo, const Poly& hi, std::int64_t step, SRef body) {
    if (!body) return nullptr;
    if (body->key == zero_->key || lo == hi) return zero_;
    // A constant trip count unrolls to the plain n-ary sum: fully and
    // partially unrolled kernels then share one canonical form with their
    // loop-summarized siblings (and with the reference expansion).
    {
      const Poly span = hi - lo;
      if (span.without_constant().terms().empty() &&
          lo.without_constant().terms().empty()) {
        const std::int64_t n = span.constant_part();
        const std::int64_t trips = (n + step - 1) / step;
        if (trips > 0 && trips <= 256) {
          std::vector<SRef> terms;
          for (std::int64_t t = 0; t < trips; ++t)
            terms.push_back(subst_var(
                body, kSumVar,
                Poly::constant(lo.constant_part() + t * step)));
          return mk_add(std::move(terms));
        }
      }
    }
    if (body->kind == SK::kAdd && !body->has_sum) {
      const auto c = static_cast<std::int64_t>(body->kids.size());
      if (c >= 2 && step % c == 0 && divisible(hi - lo, step)) {
        const std::int64_t delta = step / c;
        std::multiset<std::string> have;
        for (const SRef& k : body->kids) have.insert(k->key);
        for (const SRef& base : body->kids) {
          std::multiset<std::string> want;
          for (std::int64_t u = 0; u < c; ++u)
            want.insert(subst_var(base, kSumVar,
                                  Poly::variable(kSumVar) +
                                      Poly::constant(u * delta))
                            ->key);
          if (want == have) return mk_sum(lo, hi, delta, base);
        }
      }
    }
    SExpr e;
    e.kind = SK::kSum;
    e.lo = lo;
    e.hi = hi;
    e.step = step;
    e.kids = {std::move(body)};
    return intern(std::move(e));
  }

  /// Merges `step` sibling sums over the same [lo, hi) with stride step>1
  /// whose bodies are the stride's phase shifts of one base body into a
  /// single stride-1 sum. This is how per-lane / per-register partial sums
  /// combine after a horizontal reduction.
  bool phase_merge(std::vector<SRef>& kids) {
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const SRef& s = kids[i];
      if (s->kind != SK::kSum || s->step <= 1 || s->kids[0]->has_sum)
        continue;
      if (!divisible(s->hi - s->lo, s->step)) continue;
      std::set<std::size_t> taken;
      bool ok = true;
      for (std::int64_t v = 0; v < s->step && ok; ++v) {
        const SRef want =
            subst_var(s->kids[0], kSumVar,
                      Poly::variable(kSumVar) + Poly::constant(v));
        ok = false;
        for (std::size_t j = 0; j < kids.size(); ++j) {
          if (taken.count(j)) continue;
          const SRef& t = kids[j];
          if (t->kind == SK::kSum && t->step == s->step && t->lo == s->lo &&
              t->hi == s->hi && t->kids[0]->key == want->key) {
            taken.insert(j);
            ok = true;
            break;
          }
        }
      }
      if (!ok) continue;
      const SRef merged = mk_sum(s->lo, s->hi, 1, s->kids[0]);
      std::vector<SRef> out;
      for (std::size_t j = 0; j < kids.size(); ++j)
        if (!taken.count(j)) out.push_back(kids[j]);
      if (merged->key != zero_->key) out.push_back(merged);
      kids = std::move(out);
      return true;
    }
    return false;
  }

  /// Glues sum(lo,m) + sum(m,hi) with equal stride and body into
  /// sum(lo,hi): a main loop and its remainder loop become one range.
  bool range_glue(std::vector<SRef>& kids) {
    for (std::size_t i = 0; i < kids.size(); ++i) {
      for (std::size_t j = 0; j < kids.size(); ++j) {
        if (i == j) continue;
        const SRef& x = kids[i];
        const SRef& y = kids[j];
        if (x->kind != SK::kSum || y->kind != SK::kSum) continue;
        if (x->step != y->step || x->kids[0]->key != y->kids[0]->key)
          continue;
        if (!(x->hi == y->lo)) continue;
        if (x->step > 1 && !divisible(x->hi - x->lo, x->step)) continue;
        const SRef merged = mk_sum(x->lo, y->hi, x->step, x->kids[0]);
        std::vector<SRef> out;
        for (std::size_t k = 0; k < kids.size(); ++k)
          if (k != i && k != j) out.push_back(kids[k]);
        if (merged->key != zero_->key) out.push_back(merged);
        kids = std::move(out);
        return true;
      }
    }
    return false;
  }

  // ---- state seeding -------------------------------------------------------

  /// Entry FP state: every lane of every register is opaque garbage; then
  /// the f64-class arguments land in xmm0… (lane 0 only — the SysV upper
  /// bits are undefined).
  void seed_fp(FpState& fp) {
    for (auto& r : fp.vr)
      for (auto& v : r.l) v = mk_visit();
    int next_xmm = 0;
    for (const ArgSpec& a : contract_.args)
      if (a.is_f64 && next_xmm < 8)
        fp.vr[next_xmm++].l[0] = mk_param(a.name);
  }

  // ---- structured walk -----------------------------------------------------

  void walk(std::size_t first, std::size_t last, SemState& st, Mode mode) {
    std::size_t i = first;
    while (i < last && !stop_) {
      const MInst& inst = insts_[i];
      if (inst.op == MOp::kLabel) {
        const std::size_t latch = find_latch(i, last);
        if (latch != kNoneIdx) {
          sem_loop(i, latch, st, mode);
          i = latch + 1;
          continue;
        }
        ++i;
        continue;
      }
      if (is_cond_jump(inst.op)) {
        // Forward guards fall through (the loop protocol's exit symbol
        // covers the skip path); a backward jump here is not the counted
        // idiom.
        bool forward = false;
        for (std::size_t j = i + 1; j < insts_.size() && !forward; ++j)
          forward = insts_[j].op == MOp::kLabel && insts_[j].label == inst.label;
        if (!forward) {
          unsupported(i, "backward jump outside the counted-loop idiom");
          return;
        }
        ++i;
        continue;
      }
      if (inst.op == MOp::kJmp) {
        unsupported(i, "unconditional jump");
        return;
      }
      exec_sem(i, st, mode);
      ++i;
    }
  }

  // ---- one instruction -----------------------------------------------------

  int vidx(Vr v) const { return opt::index_of(v); }

  void exec_sem(std::size_t i, SemState& st, Mode mode) {
    const MInst& inst = insts_[i];
    auto& vr = st.fp.vr;
    const int w = inst.width;
    switch (inst.op) {
      case MOp::kVZero: {
        for (auto& v : vr[vidx(inst.vdst)].l) v = zero_;
        return;
      }
      case MOp::kVLoad:
      case MOp::kFLoad: {
        Lanes d;
        load_lanes(i, st, inst.mem, w, d, mode);
        for (int k = w; k < 4; ++k) d.l[k] = zero_;
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVBroadcast: {
        Lanes d;
        load_lanes(i, st, inst.mem, 1, d, mode);
        for (int k = 1; k < w; ++k) d.l[k] = d.l[0];
        for (int k = w; k < 4; ++k) d.l[k] = zero_;
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVStore:
      case MOp::kFStore:
        do_store(i, st, inst.mem, w, vr[vidx(inst.vsrc1)], mode);
        return;
      case MOp::kVMov:
        vr[vidx(inst.vdst)] = vr[vidx(inst.vsrc1)];
        return;
      case MOp::kVMul:
      case MOp::kVAdd:
      case MOp::kVMax: {
        const Lanes a = vr[vidx(inst.vsrc1)];
        const Lanes b = vr[vidx(inst.vsrc2)];
        Lanes d = a;  // upper lanes pass src1 through
        for (int k = 0; k < w; ++k) {
          if (inst.op == MOp::kVMul)
            d.l[k] = mk_mul({a.l[k], b.l[k]});
          else if (inst.op == MOp::kVAdd)
            d.l[k] = mk_add({a.l[k], b.l[k]});
          else
            d.l[k] = mk_max(a.l[k], b.l[k]);
        }
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVFma231: {
        const Lanes a = vr[vidx(inst.vsrc1)];
        const Lanes b = vr[vidx(inst.vsrc2)];
        Lanes d = vr[vidx(inst.vdst)];  // upper lanes keep the accumulator
        for (int k = 0; k < w; ++k)
          d.l[k] = mk_add({d.l[k], mk_mul({a.l[k], b.l[k]})});
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVFma4: {
        const Lanes a = vr[vidx(inst.vsrc1)];
        const Lanes b = vr[vidx(inst.vsrc2)];
        const Lanes c = vr[vidx(inst.vsrc3)];
        Lanes d = a;  // upper lanes pass src1 through
        for (int k = 0; k < w; ++k)
          d.l[k] = mk_add({mk_mul({a.l[k], b.l[k]}), c.l[k]});
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVShuf: {
        const Lanes a = vr[vidx(inst.vsrc1)];
        const Lanes b = vr[vidx(inst.vsrc2)];
        Lanes d = a;
        d.l[0] = a.l[inst.imm & 1];
        d.l[1] = b.l[(inst.imm >> 1) & 1];
        if (w == 4) {
          d.l[2] = a.l[2 + ((inst.imm >> 2) & 1)];
          d.l[3] = b.l[2 + ((inst.imm >> 3) & 1)];
        }
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVPerm128: {
        const Lanes a = vr[vidx(inst.vsrc1)];
        const Lanes b = vr[vidx(inst.vsrc2)];
        auto pick = [&](std::int64_t sel, int lane) -> SRef {
          switch (sel & 3) {
            case 0: return a.l[lane];
            case 1: return a.l[2 + lane];
            case 2: return b.l[lane];
            default: return b.l[2 + lane];
          }
        };
        Lanes d;
        d.l[0] = pick(inst.imm, 0);
        d.l[1] = pick(inst.imm, 1);
        d.l[2] = pick(inst.imm >> 4, 0);
        d.l[3] = pick(inst.imm >> 4, 1);
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVBlend: {
        const Lanes a = vr[vidx(inst.vsrc1)];
        const Lanes b = vr[vidx(inst.vsrc2)];
        Lanes d = a;
        for (int k = 0; k < w; ++k)
          d.l[k] = ((inst.imm >> k) & 1) ? b.l[k] : a.l[k];
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVExtractHigh: {
        const Lanes s = vr[vidx(inst.vsrc1)];
        Lanes d;
        d.l[0] = s.l[2];
        d.l[1] = s.l[3];
        d.l[2] = zero_;
        d.l[3] = zero_;
        vr[vidx(inst.vdst)] = d;
        return;
      }
      case MOp::kVZeroUpper: {
        for (auto& r : vr) {
          r.l[2] = zero_;
          r.l[3] = zero_;
        }
        return;
      }
      default: {
        // Integer / control path. An integer store can overwrite an FP
        // frame slot — or, if it escapes to a data buffer, corrupt the
        // value the FP tracking believes is there.
        if (inst.op == MOp::kIStore) {
          const AccessRef ref = classify_access(st.in, inst.mem);
          if (ref.kind == AccessRef::kStack) {
            st.fp.slots.erase(ref.slot);
          } else {
            const auto dr = ref.addr ? data_ref(*ref.addr) : std::nullopt;
            if (!dr || dr->first->writable) {
              unsupported(i, "integer store to a data address");
              return;
            }
          }
        } else if (inst.op == MOp::kPush) {
          st.fp.slots.erase(st.in.rsp_rel - 8);
        }
        std::string why;
        if (!exec_int(i, st.in, &why)) unsupported(i, why);
        return;
      }
    }
  }

  // ---- loads ---------------------------------------------------------------

  void load_lanes(std::size_t i, SemState& st, const Mem& m, int width,
                  Lanes& out, Mode mode) {
    const AccessRef ref = classify_access(st.in, m);
    if (ref.kind == AccessRef::kStack) {
      for (int k = 0; k < width; ++k) {
        auto it = st.fp.slots.find(ref.slot + 8 * k);
        out.l[k] =
            (it != st.fp.slots.end() && it->second) ? it->second : mk_visit();
      }
      return;
    }
    if (ref.kind == AccessRef::kData) {
      const auto dr = data_ref(*ref.addr);
      if (dr) {
        const BufferSpec* buf = dr->first;
        if (!buf->writable) {
          for (int k = 0; k < width; ++k)
            out.l[k] = mk_init(buf->param, dr->second + Poly::constant(8 * k));
          return;
        }
        for (int k = 0; k < width; ++k)
          out.l[k] = resolve_writable(st, buf->param,
                                      dr->second + Poly::constant(8 * k), mode);
        return;
      }
    }
    (void)i;
    for (int k = 0; k < width; ++k) out.l[k] = mk_visit();
  }

  /// One lane loaded from a writable buffer: forward from the newest store
  /// event that provably covers it, fall through events proven disjoint,
  /// and go opaque on any possible partial overlap. With no matching event
  /// the memory is pristine — but only a kCheck walk may conclude that;
  /// the discovery walks do not carry events for prior iterations.
  SRef resolve_writable(SemState& st, const std::string& buf, const Poly& offk,
                        Mode mode) {
    for (auto it = st.fp.events.rbegin(); it != st.fp.events.rend(); ++it) {
      const Ev& ev = *it;
      if (ev.buf != buf) continue;  // distinct buffers never overlap
      const Poly d = offk - ev.off;
      if (d.without_constant().terms().empty()) {
        const std::int64_t c = d.constant_part();
        if (c >= 8 * ev.lanes || c <= -8) continue;  // disjoint
        if (c % 8 == 0 && c >= 0) return ev.val[c / 8];
        return mk_visit_at(buf, offk);  // partial overlap
      }
      if (prove_nonneg(offk - ev.off - Poly::constant(8 * ev.lanes)) ||
          prove_nonneg(ev.off - offk - Poly::constant(8)))
        continue;                     // provably disjoint
      return mk_visit_at(buf, offk);  // may alias
    }
    if (mode == Mode::kCheck) return mk_init(buf, offk);
    return mk_visit_at(buf, offk);
  }

  // ---- stores --------------------------------------------------------------

  void do_store(std::size_t i, SemState& st, const Mem& m, int width,
                const Lanes& src, Mode mode) {
    const AccessRef ref = classify_access(st.in, m);
    if (ref.kind == AccessRef::kStack) {
      for (int k = 0; k < width; ++k) {
        st.fp.slots[ref.slot + 8 * k] = src.l[k];
        // The slot no longer holds whatever integer value it held.
        auto it = st.in.stack.find(ref.slot + 8 * k);
        if (it != st.in.stack.end()) it->second = std::nullopt;
      }
      return;
    }
    if (ref.kind == AccessRef::kData) {
      const auto dr = data_ref(*ref.addr);
      if (dr) {
        const BufferSpec* buf = dr->first;
        if (!buf->writable) return;  // the bounds pass owns readonly-store
        if (mode == Mode::kCheck) check_store(i, buf, dr->second, width, src);
        Ev ev;
        ev.buf = buf->param;
        ev.off = dr->second;
        ev.lanes = width;
        for (int k = 0; k < width; ++k) ev.val[k] = src.l[k];
        st.fp.events.push_back(std::move(ev));
        return;
      }
    }
    // An unattributable store could hit the output buffer; every walk must
    // refuse it or later loads would be unsound.
    unsupported(i, "store to an address the checker cannot attribute to a "
                   "frame slot or kernel buffer");
  }

  // ---- loops ---------------------------------------------------------------

  /// Vector registers and FP frame slots the body can write. Mirrors
  /// modified_locs for the FP state.
  bool fp_modified(std::size_t first, std::size_t last, const SemState& st,
                   std::set<int>& regs, std::set<std::int64_t>& slots,
                   std::size_t* where, std::string* why) const {
    std::vector<Gpr> dg;
    std::vector<Vr> dv;
    for (std::size_t i = first; i < last; ++i) {
      const MInst& inst = insts_[i];
      if (inst.op == MOp::kVZeroUpper) {
        for (int r = 0; r < opt::kNumVrs; ++r) regs.insert(r);
        continue;
      }
      defs_of(inst, dg, dv);
      for (Vr v : dv) regs.insert(opt::index_of(v));
      if (inst.op == MOp::kVStore || inst.op == MOp::kFStore ||
          inst.op == MOp::kIStore) {
        if (inst.mem.base == Gpr::rsp) {
          if (inst.mem.has_index()) {
            *where = i;
            *why = "indexed stack store inside a loop";
            return false;
          }
          const int w = inst.op == MOp::kVStore ? inst.width : 1;
          for (int k = 0; k < w; ++k)
            slots.insert(st.in.rsp_rel + inst.mem.disp + 8 * k);
        }
      }
    }
    return true;
  }

  /// How one loop-carried lane evolved across one generic iteration.
  enum class LK { kUnchanged, kInductive, kOpaque };
  struct LaneSum {
    LK lk = LK::kOpaque;
    SRef delta;  ///< kInductive: the per-iteration added term(s)
  };

  void sem_loop(std::size_t head, std::size_t latch, SemState& st, Mode mode) {
    std::size_t where = head;
    std::string why;
    const std::optional<LoopShape> shape =
        loop_shape(head, latch, st.in, &where, &why);
    if (!shape) {
      unsupported(where, why);
      return;
    }

    std::set<int> mod_vr;
    std::set<std::int64_t> mod_slots;
    if (!fp_modified(head + 1, latch, st, mod_vr, mod_slots, &where, &why)) {
      unsupported(where, why);
      return;
    }

    // Pass A (discover): one abstract iteration from the entry state to
    // learn the integer deltas; the FP side of this pass is discarded.
    SemState sA = st;
    walk(head + 1, latch, sA, Mode::kDiscover);
    if (stop_) return;

    const bool bound_ok = bound_invariant(*shape, sA.in);
    const std::optional<std::int64_t> step =
        loop_step(*shape, sA.in, &where, &why);
    if (!step) {
      unsupported(where, why);
      return;
    }

    const std::string ct = make_counter_symbol(*shape, *step, bound_ok);
    const Poly ctp = Poly::variable(ct);

    // Pass B (induct): rerun the body as a generic iteration. The integer
    // state is the inducted one; every FP lane/slot the body can write
    // starts as a unique placeholder so its exit expression exposes the
    // per-iteration delta. Events are cleared: prior iterations' stores
    // are not represented here, so loads must not forward across them.
    SemState sB;
    sB.in = st.in;
    apply(sB.in, inducted(*shape, st.in, sA.in, *step, ctp));
    sB.fp = st.fp;
    sB.fp.events.clear();
    std::map<std::pair<int, int>, SRef> vr_ph;
    std::map<std::int64_t, SRef> slot_ph;
    for (int r : mod_vr)
      for (int k = 0; k < 4; ++k) {
        const SRef p = mk_loop();
        vr_ph[{r, k}] = p;
        sB.fp.vr[r].l[k] = p;
      }
    for (std::int64_t s : mod_slots) {
      const SRef p = mk_loop();
      slot_ph[s] = p;
      sB.fp.slots[s] = p;
    }
    const int vwm = visit_id_;
    walk(head + 1, latch, sB, Mode::kInduct);
    if (stop_) return;

    // Classify every seeded lane: unchanged, inductive (placeholder plus a
    // delta that is loop-invariant — no placeholders, no visits minted
    // during pass B, no nested sums that would capture the binder), or
    // opaque.
    auto classify = [&](const SRef& ph, const SRef& res) -> LaneSum {
      if (res && res->key == ph->key) return {LK::kUnchanged, nullptr};
      if (res && res->kind == SK::kAdd) {
        std::vector<SRef> rest;
        bool seen = false;
        for (const SRef& k : res->kids) {
          if (!seen && k->key == ph->key) {
            seen = true;
            continue;
          }
          rest.push_back(k);
        }
        if (seen) {
          bool ok = true;
          for (const SRef& k : rest)
            ok = ok && !k->has_loop && k->max_visit < vwm && !k->has_sum;
          if (ok) return {LK::kInductive, mk_add(std::move(rest))};
        }
      }
      return {LK::kOpaque, nullptr};
    };
    std::map<std::pair<int, int>, LaneSum> vr_cls;
    for (const auto& [rk, ph] : vr_ph)
      vr_cls[rk] = classify(ph, sB.fp.vr[rk.first].l[rk.second]);
    std::map<std::int64_t, LaneSum> slot_cls;
    for (const auto& [s, ph] : slot_ph) {
      auto it = sB.fp.slots.find(s);
      slot_cls[s] =
          classify(ph, it == sB.fp.slots.end() ? nullptr : it->second);
    }

    // A summarized lane at counter value `upto`: entry value plus the
    // accumulated deltas of the iterations in [c0, upto).
    auto summed = [&](const SRef& entry, const LaneSum& c,
                      const Poly& upto) -> SRef {
      switch (c.lk) {
        case LK::kUnchanged:
          return entry;
        case LK::kInductive: {
          if (!entry) return nullptr;
          const SRef body = subst_var(c.delta, ct, Poly::variable(kSumVar));
          return mk_add({entry, mk_sum(shape->c0, upto, *step, body)});
        }
        case LK::kOpaque:
        default:
          return mk_visit();
      }
    };
    // Stores of the iterations in [c0, upto): each pass-B event retagged
    // at a universally quantified counter value, its payload replaced by
    // opaque visits — the concrete pass-B lanes could leak placeholders
    // through loop-invariant address forwarding.
    auto retag_events = [&](std::vector<Ev>& out, const Poly& upto) {
      if (sB.fp.events.empty()) return;
      symexec::SymInfo kappa;
      kappa.name = "all$" + std::to_string(fresh_++);
      kappa.lo = shape->c0;
      kappa.hi = upto - Poly::constant(*step);
      kappa.nonneg = prove_nonneg(shape->c0);
      if (divisible(shape->c0, *step)) kappa.divisible_by = *step;
      add_symbol(kappa);
      const Poly kp = Poly::variable(kappa.name);
      for (const Ev& ev : sB.fp.events) {
        Ev r;
        r.buf = ev.buf;
        r.off = ev.off.substitute(ct, kp);
        r.lanes = ev.lanes;
        for (int k = 0; k < ev.lanes; ++k)
          r.val[k] = mk_visit_at(r.buf, r.off + Poly::constant(8 * k));
        out.push_back(std::move(r));
      }
    };

    // Pass C (check): the body once more at the generic iteration, with
    // real prefix values and the prior iterations' stores visible, and
    // store checking on.
    if (mode == Mode::kCheck) {
      SemState sC;
      sC.in = st.in;
      apply(sC.in, inducted(*shape, st.in, sA.in, *step, ctp));
      sC.fp.vr = st.fp.vr;
      sC.fp.slots = st.fp.slots;
      for (const auto& [rk, c] : vr_cls)
        sC.fp.vr[rk.first].l[rk.second] =
            summed(st.fp.vr[rk.first].l[rk.second], c, ctp);
      for (const auto& [s, c] : slot_cls) {
        auto it = st.fp.slots.find(s);
        sC.fp.slots[s] =
            summed(it == st.fp.slots.end() ? nullptr : it->second, c, ctp);
      }
      sC.fp.events = st.fp.events;
      retag_events(sC.fp.events, ctp);
      walk(head + 1, latch, sC, Mode::kCheck);
      if (stop_) return;
    }

    // Exit. The integer state always leaves through the exit symbol (the
    // zero-trip path forbids assuming the bound was reached); the FP side
    // may use the exact bound when the trip count provably lands on it —
    // a remainder loop then starts at the symbolic integer exit and its
    // partial sum glues to (or is empty alongside) the main loop's.
    const std::string ex = make_exit_symbol(*shape, *step, bound_ok);
    Poly efp = Poly::variable(ex);
    if (shape->guarded && bound_ok && shape->bound0) {
      const Poly b = *shape->bound0;
      if (divisible(b - shape->c0, *step) && prove_nonneg(b - shape->c0))
        efp = b;
    }
    FpState exit_fp;
    exit_fp.vr = st.fp.vr;
    exit_fp.slots = st.fp.slots;
    for (const auto& [rk, c] : vr_cls)
      exit_fp.vr[rk.first].l[rk.second] =
          summed(st.fp.vr[rk.first].l[rk.second], c, efp);
    for (const auto& [s, c] : slot_cls) {
      auto it = st.fp.slots.find(s);
      exit_fp.slots[s] =
          summed(it == st.fp.slots.end() ? nullptr : it->second, c, efp);
    }
    exit_fp.events = st.fp.events;
    retag_events(exit_fp.events, efp);
    apply(st.in, inducted(*shape, st.in, sA.in, *step, Poly::variable(ex)));
    st.fp = std::move(exit_fp);
  }

  // ---- the reference semantics ---------------------------------------------

  void check_store(std::size_t i, const BufferSpec* buf, const Poly& off,
                   int width, const Lanes& src) {
    for (int k = 0; k < width && !stop_; ++k)
      check_lane(i, buf, off + Poly::constant(8 * k), src.l[k]);
  }

  void check_lane(std::size_t i, const BufferSpec* buf, const Poly& offk,
                  const SRef& got) {
    (void)buf;  // the kernel kind has exactly one writable buffer
    switch (spec_.kind) {
      case KernelKind::kGemm:
        if (spec_.small)
          check_small_lane(i, offk, got);
        else
          check_gemm_lane(i, offk, got);
        break;
      case KernelKind::kGemv:
        check_gemv_lane(i, offk, got);
        break;
      case KernelKind::kAxpy:
        check_axpy_lane(i, offk, got);
        break;
      case KernelKind::kScal:
        check_scal_lane(i, offk, got);
        break;
      case KernelKind::kDot:
        unsupported(i, "dot kernels must not store to a data buffer");
        break;
    }
  }

  /// Shared verdict: equal canonical keys prove the lane; otherwise any
  /// opaque part means "unproven", a fully resolved difference means the
  /// machine code computes the wrong value.
  void verdict(std::size_t i, const std::string& elem, const SRef& got,
               const SRef& want) {
    if (!got) {
      unproven(i, elem + ": stored value is undefined");
      return;
    }
    if (want && got->key == want->key) return;
    if (got->has_loop || got->max_visit >= 0)
      unproven(i, elem + ": stored value has parts the checker cannot "
                        "resolve: got " +
                   render(got) + "; want " + render(want));
    else
      mismatch(i, elem + ": stored value is not a permitted reassociation "
                        "of the reference semantics: got " +
                   render(got) + "; want " + render(want));
  }

  /// Decodes a C element from its byte offset: e = j*ldc + i (elements).
  struct CElem {
    Poly i, j;
    std::string name;
  };
  std::optional<CElem> decode_c(std::size_t idx, const Poly& offk) {
    const std::optional<Poly> e = poly_div(offk, 8);
    if (!e) {
      unproven(idx, "store to C at byte offset " + offk.to_string() +
                        ": offset is not a multiple of the element size");
      return std::nullopt;
    }
    const std::optional<Poly> j = e->coefficient_of("ldc");
    if (!j) {
      unproven(idx, "store to C at element offset " + e->to_string() +
                        ": cannot decode the (i, j) element indices");
      return std::nullopt;
    }
    CElem el;
    el.j = *j;
    el.i = *e - *j * Poly::variable("ldc");
    el.name =
        "C[i = " + el.i.to_string() + ", j = " + el.j.to_string() + "]";
    return el;
  }

  // GEMM inner kernel: C[j*ldc+i] += sum_l A[l*mc+i] * B(l,j) with
  // B(l,j) = B[l*nc+j] (row panel) or B[j*kc+l] (column major). Alpha/beta
  // scaling and the netlib short-circuits live in the blocked drivers, not
  // in this kernel (see docs/static-analysis.md).
  void check_gemm_lane(std::size_t i, const Poly& offk, const SRef& got) {
    const std::optional<CElem> el = decode_c(i, offk);
    if (!el) return;
    const Poly sigma = Poly::variable(kSumVar);
    const Poly aoff =
        Poly::constant(8) * (sigma * Poly::variable("mc") + el->i);
    const Poly boff =
        spec_.layout == BLayout::kRowPanel
            ? Poly::constant(8) * (sigma * Poly::variable("nc") + el->j)
            : Poly::constant(8) * (el->j * Poly::variable("kc") + sigma);
    const SRef prod = mk_mul({mk_init("A", aoff), mk_init("B", boff)});
    const SRef want =
        mk_add({mk_init("C", offk),
                mk_sum(Poly::constant(0), Poly::variable("kc"), 1, prod)});
    verdict(i, el->name, got, want);
  }

  // Small GEMM: C[j*ldc+i] = epilogue(C, sum_l A[l*lda+i]*B[j*ldb+l]) with
  // the fused scale/bias/relu epilogue in exactly that order.
  void check_small_lane(std::size_t i, const Poly& offk, const SRef& got) {
    const frontend::SmallGemmSpec& sg = *spec_.small;
    const std::optional<CElem> el = decode_c(i, offk);
    if (!el) return;
    std::vector<SRef> prods;
    prods.reserve(sg.k);
    for (int l = 0; l < sg.k; ++l)
      prods.push_back(mk_mul(
          {mk_init("A", Poly::constant(8) *
                            (Poly::constant(l) * Poly::variable("lda") +
                             el->i)),
           mk_init("B", Poly::constant(8) *
                            (el->j * Poly::variable("ldb") +
                             Poly::constant(l)))}));
    const SRef acc = mk_add(std::move(prods));
    SRef want;
    if (sg.epilogue.scale)
      want = mk_add({mk_mul({mk_init("C", offk), mk_param("beta")}),
                     mk_mul({acc, mk_param("alpha")})});
    else
      want = mk_add({mk_init("C", offk), acc});
    if (sg.epilogue.bias)
      want = mk_add({want, mk_init("bias", Poly::constant(8) * el->i)});
    if (sg.epilogue.relu) want = mk_max(want, zero_);
    verdict(i, el->name, got, want);
  }

  // GEMV (column-traversal AXPY form): each store must be the carried
  // y[j] — the pristine element or an opaque revisit of exactly this
  // offset — plus A[i*lda+j] * x[i] for the current outer iteration. The
  // per-outer-iteration delta is checked structurally; that the outer loop
  // applies it exactly once per i is a documented limit (the fuzz harness
  // owns cross-iteration multiplicity).
  void check_gemv_lane(std::size_t i, const Poly& offk, const SRef& got) {
    const std::optional<Poly> e = poly_div(offk, 8);
    if (!e) {
      unproven(i, "store to y at byte offset " + offk.to_string() +
                      ": offset is not a multiple of the element size");
      return;
    }
    const std::string elem = "y[j = " + e->to_string() + "]";
    if (!got) {
      unproven(i, elem + ": stored value is undefined");
      return;
    }
    auto fail = [&] {
      const std::string want =
          "y[" + offk.to_string() + "] + A[8*(i*lda) + " + offk.to_string() +
          "] * x[8*i]";
      if (got->has_loop || got->max_visit >= 0)
        unproven(i, elem + ": stored value has parts the checker cannot "
                          "resolve: got " +
                     render(got) + "; want " + want);
      else
        mismatch(i, elem + ": stored value is not a permitted "
                          "reassociation of the reference semantics: got " +
                     render(got) + "; want " + want);
    };
    if (got->kind != SK::kAdd || got->kids.size() != 2) return fail();
    const SRef* leaf = nullptr;
    const SRef* prod = nullptr;
    for (const SRef& k : got->kids) {
      if ((k->kind == SK::kVisit || k->kind == SK::kInit) && k->name == "y")
        leaf = &k;
      else if (k->kind == SK::kMul && k->kids.size() == 2)
        prod = &k;
    }
    if (!leaf || !prod || !((*leaf)->off == offk)) return fail();
    const SRef* ai = nullptr;
    const SRef* xi = nullptr;
    for (const SRef& k : (*prod)->kids) {
      if (k->kind != SK::kInit) return fail();
      if (k->name == "A")
        ai = &k;
      else if (k->name == "x")
        xi = &k;
    }
    if (!ai || !xi) return fail();
    const std::optional<Poly> q = poly_div((*xi)->off, 8);
    if (!q) return fail();
    const Poly want_a = Poly::constant(8) * *q * Poly::variable("lda") + offk;
    if (!((*ai)->off == want_a)) return fail();
  }

  // AXPY: y[i] += x[i] * alpha.
  void check_axpy_lane(std::size_t i, const Poly& offk, const SRef& got) {
    const std::optional<Poly> e = poly_div(offk, 8);
    if (!e) {
      unproven(i, "store to y at byte offset " + offk.to_string() +
                      ": offset is not a multiple of the element size");
      return;
    }
    const SRef want = mk_add(
        {mk_init("y", offk), mk_mul({mk_init("x", offk), mk_param("alpha")})});
    verdict(i, "y[i = " + e->to_string() + "]", got, want);
  }

  // SCAL: x[i] *= alpha.
  void check_scal_lane(std::size_t i, const Poly& offk, const SRef& got) {
    const std::optional<Poly> e = poly_div(offk, 8);
    if (!e) {
      unproven(i, "store to x at byte offset " + offk.to_string() +
                      ": offset is not a multiple of the element size");
      return;
    }
    const SRef want = mk_mul({mk_init("x", offk), mk_param("alpha")});
    verdict(i, "x[i = " + e->to_string() + "]", got, want);
  }

  // DOT: the kernel returns sum_i x[i]*y[i] in xmm0 lane 0.
  void check_dot_return(const SemState& st) {
    std::size_t ri = insts_.empty() ? 0 : insts_.size() - 1;
    for (std::size_t i = 0; i < insts_.size(); ++i)
      if (insts_[i].op == MOp::kRet) ri = i;
    const Poly sigma = Poly::variable(kSumVar);
    const SRef body = mk_mul({mk_init("x", Poly::constant(8) * sigma),
                              mk_init("y", Poly::constant(8) * sigma)});
    const SRef want =
        mk_sum(Poly::constant(0), Poly::variable("n"), 1, body);
    verdict(ri, "return value", st.fp.vr[0].l[0], want);
  }
};

}  // namespace

void run_semantics_check(const MInstList& insts,
                         const KernelContract& contract,
                         const SemanticsSpec& spec, AnalysisReport& report) {
  SemEngine(insts, contract, spec, report).run();
}

// ---- scheduler translation validation --------------------------------------
//
// The scheduler only permutes instructions inside straight-line spans, so
// equivalence is checkable span by span with plain value numbering: every
// register value is a string built from the op and its operands' values,
// loads are keyed by (address value, number of stores issued so far in the
// span), and stores form an ordered sequence. Two spans are equivalent when
// the final value of every register, the store sequence, and (when the span
// feeds a conditional jump) the flags value all agree.

namespace {

struct SpanSim {
  std::map<int, std::string> gpr;
  std::map<int, std::string> vr;
  std::vector<std::string> stores;  ///< "addr|width|value", in order
  std::string flags = "f:init";

  std::string g(Gpr r) {
    const int i = static_cast<int>(r);
    auto it = gpr.find(i);
    if (it == gpr.end())
      it = gpr.emplace(i, "g:init" + std::to_string(i)).first;
    return it->second;
  }
  std::string v(opt::Vr r) {
    const int i = opt::index_of(r);
    auto it = vr.find(i);
    if (it == vr.end()) it = vr.emplace(i, "v:init" + std::to_string(i)).first;
    return it->second;
  }
  std::string addr(const Mem& m) {
    std::string a = "[" + g(m.base);
    if (m.has_index())
      a += "+" + g(m.index) + "*" + std::to_string(m.scale);
    return a + "+" + std::to_string(m.disp) + "]";
  }
  std::string load(const MInst& in) {
    return "ld(" + std::to_string(in.width) + "," + addr(in.mem) + ",@" +
           std::to_string(stores.size()) + ")";
  }

  void exec(const MInst& in) {
    auto wstr = [&] { return std::to_string(in.width); };
    auto istr = [&] { return std::to_string(in.imm); };
    switch (in.op) {
      case MOp::kVZero:
        vr[opt::index_of(in.vdst)] = "vz(" + wstr() + ")";
        break;
      case MOp::kVLoad:
      case MOp::kFLoad:
        vr[opt::index_of(in.vdst)] = load(in);
        break;
      case MOp::kVBroadcast:
        vr[opt::index_of(in.vdst)] = "bc(" + load(in) + ")";
        break;
      case MOp::kVStore:
      case MOp::kFStore:
        stores.push_back(addr(in.mem) + "|" + wstr() + "|" + v(in.vsrc1));
        break;
      case MOp::kVMov:
        vr[opt::index_of(in.vdst)] = v(in.vsrc1);
        break;
      case MOp::kVMul:
      case MOp::kVAdd:
      case MOp::kVMax: {
        const char* op = in.op == MOp::kVMul ? "mul"
                         : in.op == MOp::kVAdd ? "add"
                                               : "max";
        vr[opt::index_of(in.vdst)] = std::string(op) + "(" + wstr() + "," +
                                     v(in.vsrc1) + "," + v(in.vsrc2) + ")";
        break;
      }
      case MOp::kVFma231:
        vr[opt::index_of(in.vdst)] = "fma231(" + wstr() + "," + v(in.vdst) +
                                     "," + v(in.vsrc1) + "," + v(in.vsrc2) +
                                     ")";
        break;
      case MOp::kVFma4:
        vr[opt::index_of(in.vdst)] = "fma4(" + wstr() + "," + v(in.vsrc1) +
                                     "," + v(in.vsrc2) + "," + v(in.vsrc3) +
                                     ")";
        break;
      case MOp::kVShuf:
      case MOp::kVPerm128:
      case MOp::kVBlend: {
        const char* op = in.op == MOp::kVShuf ? "shuf"
                         : in.op == MOp::kVPerm128 ? "perm"
                                                   : "blend";
        vr[opt::index_of(in.vdst)] = std::string(op) + "(" + wstr() + "," +
                                     v(in.vsrc1) + "," + v(in.vsrc2) + "," +
                                     istr() + ")";
        break;
      }
      case MOp::kVExtractHigh:
        vr[opt::index_of(in.vdst)] = "exth(" + v(in.vsrc1) + ")";
        break;
      case MOp::kVZeroUpper:
        for (int i = 0; i < opt::kNumVrs; ++i) {
          auto it = vr.find(i);
          const std::string old =
              it == vr.end() ? "v:init" + std::to_string(i) : it->second;
          vr[i] = "vzu(" + old + ")";
        }
        break;
      case MOp::kIMovImm:
        gpr[static_cast<int>(in.gdst)] = "i:" + istr();
        break;
      case MOp::kIMov:
        gpr[static_cast<int>(in.gdst)] = g(in.gsrc);
        break;
      case MOp::kIAdd:
      case MOp::kISub:
      case MOp::kIMul: {
        const char* op = in.op == MOp::kIAdd ? "add"
                         : in.op == MOp::kISub ? "sub"
                                               : "mul";
        const std::string val =
            std::string(op) + "(" + g(in.gdst) + "," + g(in.gsrc) + ")";
        gpr[static_cast<int>(in.gdst)] = val;
        flags = val;
        break;
      }
      case MOp::kIAddImm:
      case MOp::kISubImm:
      case MOp::kIShlImm: {
        const char* op = in.op == MOp::kIAddImm ? "addi"
                         : in.op == MOp::kISubImm ? "subi"
                                                  : "shli";
        const std::string val =
            std::string(op) + "(" + g(in.gdst) + "," + istr() + ")";
        gpr[static_cast<int>(in.gdst)] = val;
        flags = val;
        break;
      }
      case MOp::kIMulImm: {
        const std::string val = "muli(" + g(in.gsrc) + "," + istr() + ")";
        gpr[static_cast<int>(in.gdst)] = val;
        flags = val;
        break;
      }
      case MOp::kINeg: {
        const std::string val = "neg(" + g(in.gdst) + ")";
        gpr[static_cast<int>(in.gdst)] = val;
        flags = val;
        break;
      }
      case MOp::kILoad:
        gpr[static_cast<int>(in.gdst)] = "i" + load(in);
        break;
      case MOp::kIStore:
        stores.push_back(addr(in.mem) + "|i|" + g(in.gsrc));
        break;
      case MOp::kIAddMem:
      case MOp::kISubMem:
      case MOp::kIMulMem: {
        const char* op = in.op == MOp::kIAddMem ? "addm"
                         : in.op == MOp::kISubMem ? "subm"
                                                  : "mulm";
        const std::string val =
            std::string(op) + "(" + g(in.gdst) + "," + load(in) + ")";
        gpr[static_cast<int>(in.gdst)] = val;
        flags = val;
        break;
      }
      case MOp::kLea:
        gpr[static_cast<int>(in.gdst)] =
            "lea(" + addr(in.mem) + "," + istr() + ")";
        break;
      case MOp::kCmp:
        flags = "cmp(" + g(in.gdst) + "," + g(in.gsrc) + ")";
        break;
      case MOp::kCmpImm:
        flags = "cmpi(" + g(in.gdst) + "," + istr() + ")";
        break;
      case MOp::kPush: {
        const std::string rsp = g(Gpr::rsp);
        stores.push_back("push(" + rsp + ")|i|" + g(in.gsrc));
        gpr[static_cast<int>(Gpr::rsp)] = "pushadj(" + rsp + ")";
        break;
      }
      case MOp::kPop: {
        const std::string rsp = g(Gpr::rsp);
        gpr[static_cast<int>(in.gdst)] =
            "pop(" + rsp + ",@" + std::to_string(stores.size()) + ")";
        gpr[static_cast<int>(Gpr::rsp)] = "popadj(" + rsp + ")";
        break;
      }
      case MOp::kPrefetch:
        break;  // hint: no dataflow
      default:
        break;  // barriers never reach exec()
    }
  }
};

bool sched_is_barrier(const MInst& in) {
  return opt::is_control(in) || in.op == MOp::kComment;
}

/// Simulates [first, last) of `insts` into `sim`.
void sim_span(const MInstList& insts, std::size_t first, std::size_t last,
              SpanSim& sim) {
  for (std::size_t i = first; i < last; ++i) sim.exec(insts[i]);
}

[[noreturn]] void sched_fail(std::size_t span_at, const std::string& what) {
  AUGEM_FAIL("instruction scheduler broke dataflow in the span at index " +
             std::to_string(span_at) + ": " + what);
}

void compare_spans(std::size_t span_at, bool flags_live, SpanSim& a,
                   SpanSim& b) {
  if (a.stores != b.stores) {
    const std::size_t n = std::min(a.stores.size(), b.stores.size());
    std::size_t i = 0;
    while (i < n && a.stores[i] == b.stores[i]) ++i;
    sched_fail(span_at,
               "store sequence diverges at store " + std::to_string(i) +
                   ": before=" +
                   (i < a.stores.size() ? a.stores[i] : "<missing>") +
                   " after=" + (i < b.stores.size() ? b.stores[i] : "<missing>"));
  }
  auto cmp_regs = [&](std::map<int, std::string>& ra,
                      std::map<int, std::string>& rb, const char* kind,
                      const char* init) {
    std::set<int> keys;
    for (const auto& [k, _] : ra) keys.insert(k);
    for (const auto& [k, _] : rb) keys.insert(k);
    for (int k : keys) {
      auto ita = ra.find(k), itb = rb.find(k);
      const std::string va =
          ita == ra.end() ? init + std::to_string(k) : ita->second;
      const std::string vb =
          itb == rb.end() ? init + std::to_string(k) : itb->second;
      if (va != vb)
        sched_fail(span_at, std::string(kind) + " register " +
                                std::to_string(k) + " holds " + vb +
                                " after scheduling but " + va + " before");
    }
  };
  cmp_regs(a.gpr, b.gpr, "general-purpose", "g:init");
  cmp_regs(a.vr, b.vr, "vector", "v:init");
  if (flags_live && a.flags != b.flags)
    sched_fail(span_at, "flags feeding the conditional jump come from " +
                            b.flags + " after scheduling but " + a.flags +
                            " before");
}

}  // namespace

void validate_schedule_equivalence(const MInstList& before,
                                   const MInstList& after) {
  if (before.size() != after.size())
    AUGEM_FAIL("instruction scheduler changed the instruction count (" +
               std::to_string(before.size()) + " -> " +
               std::to_string(after.size()) + ")");
  std::size_t span_start = 0;
  for (std::size_t i = 0; i <= before.size(); ++i) {
    const bool at_end = i == before.size();
    if (!at_end && !sched_is_barrier(before[i])) continue;
    if (!at_end) {
      // Barriers delimit spans and must be untouched, position and all.
      if (!sched_is_barrier(after[i]) ||
          after[i].to_string() != before[i].to_string())
        AUGEM_FAIL("instruction scheduler moved a control instruction: " +
                   before[i].to_string() + " is no longer at index " +
                   std::to_string(i));
    }
    SpanSim a, b;
    sim_span(before, span_start, i, a);
    sim_span(after, span_start, i, b);
    const bool flags_live =
        !at_end && is_cond_jump(before[i].op);
    compare_spans(span_start, flags_live, a, b);
    span_start = i + 1;
  }
}

namespace {
const struct ScheduleValidatorRegistrar {
  ScheduleValidatorRegistrar() {
    opt::set_schedule_validator(&validate_schedule_equivalence);
  }
} schedule_validator_registrar;
}  // namespace

}  // namespace augem::analysis
