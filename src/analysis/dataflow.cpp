#include "analysis/passes.hpp"

#include <cstdint>
#include <string>

namespace augem::analysis {

using opt::Gpr;
using opt::gpr_at;
using opt::gpr_name;
using opt::MInst;
using opt::MInstList;
using opt::MOp;
using opt::Vr;
using opt::vr_at;
using opt::vr_name;

namespace {

// One bit per register: GPRs at [0,16), vector registers at [16,32).
using RegSet = std::uint32_t;

constexpr RegSet kAll = ~RegSet{0};

RegSet gbit(Gpr g) { return RegSet{1} << index_of(g); }
RegSet vbit(Vr v) { return RegSet{1} << (16 + index_of(v)); }

RegSet entry_defined(int num_f64_params) {
  RegSet s = gbit(Gpr::rdi) | gbit(Gpr::rsi) | gbit(Gpr::rdx) |
             gbit(Gpr::rcx) | gbit(Gpr::r8) | gbit(Gpr::r9) | gbit(Gpr::rsp);
  for (int p = 0; p < num_f64_params && p < 8; ++p) s |= vbit(vr_at(p));
  return s;
}

struct DefUse {
  RegSet defs = 0;
  RegSet uses = 0;
};

DefUse def_use(const MInst& inst) {
  static thread_local std::vector<Gpr> dg, ug;
  static thread_local std::vector<Vr> dv, uv;
  DefUse r;
  defs_of(inst, dg, dv);
  for (Gpr g : dg) r.defs |= gbit(g);
  for (Vr v : dv) r.defs |= vbit(v);
  uses_of(inst, ug, uv);
  // Pushes in the prologue save caller-owned values: not "reads" of
  // generator-initialized state.
  if (inst.op != MOp::kPush) {
    for (Gpr g : ug) r.uses |= gbit(g);
    for (Vr v : uv) r.uses |= vbit(v);
  }
  return r;
}

}  // namespace

void run_definite_assignment(const Cfg& cfg, int num_f64_params,
                             AnalysisReport& report) {
  const MInstList& insts = *cfg.insts;
  if (cfg.blocks.empty()) return;

  // Forward must-analysis: OUT[b] = registers definitely written on every
  // path from entry through the end of b. Optimistic initialization, meet
  // is intersection.
  std::vector<RegSet> out(cfg.size(), kAll);
  const RegSet entry = entry_defined(num_f64_params);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = 0; bi < cfg.size(); ++bi) {
      const BasicBlock& b = cfg.blocks[bi];
      RegSet in = bi == 0 ? entry : kAll;
      for (std::size_t p : b.preds) in &= out[p];
      RegSet cur = in;
      for (std::size_t i = b.first; i < b.last; ++i)
        cur |= def_use(insts[i]).defs;
      if (cur != out[bi]) {
        out[bi] = cur;
        changed = true;
      }
    }
  }

  // Reporting walk with the fixpoint IN states.
  for (std::size_t bi = 0; bi < cfg.size(); ++bi) {
    const BasicBlock& b = cfg.blocks[bi];
    RegSet defined = bi == 0 ? entry : kAll;
    for (std::size_t p : b.preds) defined &= out[p];
    for (std::size_t i = b.first; i < b.last; ++i) {
      const MInst& inst = insts[i];
      const DefUse du = def_use(inst);
      for (int v = 0; v < opt::kNumVrs; ++v)
        if ((du.uses & vbit(vr_at(v))) && !(defined & vbit(vr_at(v))))
          report.add(i, Severity::kError, "read-uninit-vreg",
                     std::string("read of uninitialized vector register ") +
                         vr_name(vr_at(v), inst.width));
      for (int g = 0; g < opt::kNumGprs; ++g)
        if ((du.uses & gbit(gpr_at(g))) && !(defined & gbit(gpr_at(g))))
          report.add(i, Severity::kError, "read-uninit-gpr",
                     std::string("read of uninitialized register ") +
                         gpr_name(gpr_at(g)));
      defined |= du.defs;
    }
  }
}

void run_dead_store_check(const Cfg& cfg, AnalysisReport& report) {
  const MInstList& insts = *cfg.insts;
  if (cfg.blocks.empty()) return;

  // Backward may-analysis over the vector registers only: GPR overwrites
  // without intervening reads are idiomatic (counter resets, epilogue pops),
  // but a vector result that never reaches a use is a wasted issue slot —
  // exactly the waste the register queues exist to avoid.
  const RegSet vmask = ~RegSet{0} << 16;
  // A double return value travels in xmm0; treat it as live at every ret.
  const RegSet ret_live = vbit(Vr::v0);

  std::vector<RegSet> in(cfg.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = cfg.size(); bi-- > 0;) {
      const BasicBlock& b = cfg.blocks[bi];
      RegSet live = insts[b.last - 1].op == MOp::kRet ? ret_live : 0;
      for (std::size_t s : b.succs) live |= in[s];
      for (std::size_t i = b.last; i-- > b.first;) {
        const DefUse du = def_use(insts[i]);
        live = (live & ~du.defs) | (du.uses & vmask);
      }
      if (live != in[bi]) {
        in[bi] = live;
        changed = true;
      }
    }
  }

  for (std::size_t bi = 0; bi < cfg.size(); ++bi) {
    const BasicBlock& b = cfg.blocks[bi];
    RegSet live = insts[b.last - 1].op == MOp::kRet ? ret_live : 0;
    for (std::size_t s : b.succs) live |= in[s];
    for (std::size_t i = b.last; i-- > b.first;) {
      const MInst& inst = insts[i];
      const DefUse du = def_use(inst);
      if (inst.vdst != Vr::kNoVr && (du.defs & vbit(inst.vdst)) &&
          !(live & vbit(inst.vdst)))
        report.add(i, Severity::kWarning, "dead-store",
                   std::string("value written to ") +
                       vr_name(inst.vdst, inst.width) +
                       " is never read (dead store)");
      live = (live & ~du.defs) | (du.uses & vmask);
    }
  }
}

void run_queue_reuse_check(const Cfg& cfg, int window,
                           AnalysisReport& report) {
  const MInstList& insts = *cfg.insts;
  auto is_load_class = [](MOp op) {
    return op == MOp::kVLoad || op == MOp::kVBroadcast || op == MOp::kFLoad;
  };
  auto is_meta = [](MOp op) { return op == MOp::kComment || op == MOp::kLabel; };

  static thread_local std::vector<Gpr> ug;
  static thread_local std::vector<Vr> uv;
  for (const BasicBlock& b : cfg.blocks) {
    for (std::size_t i = b.first; i < b.last; ++i) {
      const MInst& inst = insts[i];
      if (!is_load_class(inst.op) || inst.vdst == Vr::kNoVr) continue;
      // Scan the previous `window` real instructions of the block for a
      // pending non-copy use of the register being reloaded. Register
      // copies (kVMov) are excluded: the generator emits them precisely to
      // break this dependence before rotating the queue.
      int seen = 0;
      for (std::size_t j = i; j-- > b.first && seen < window;) {
        if (is_meta(insts[j].op)) continue;
        ++seen;
        if (insts[j].op == MOp::kVMov) continue;
        uses_of(insts[j], ug, uv);
        bool used = false;
        for (Vr v : uv) used |= v == inst.vdst;
        if (used) {
          report.add(i, Severity::kWarning, "queue-false-dependence",
                     std::string("queue register ") +
                         vr_name(inst.vdst, inst.width) + " reloaded " +
                         std::to_string(seen) +
                         " instruction(s) after a pending use "
                         "(write-after-read false dependence defeats the "
                         "register-queue rotation)");
          break;
        }
        // A full redefinition ends the hazard window for older uses.
        const DefUse du = def_use(insts[j]);
        if (du.defs & vbit(inst.vdst)) break;
      }
    }
  }
}

}  // namespace augem::analysis
