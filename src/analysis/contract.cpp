#include "analysis/contract.hpp"

namespace augem::analysis {

using frontend::BLayout;
using frontend::KernelKind;
using ir::Poly;

const BufferSpec* KernelContract::buffer_for(const std::string& param) const {
  for (const BufferSpec& b : buffers)
    if (b.param == param) return &b;
  return nullptr;
}

const ParamFacts* KernelContract::facts_for(const std::string& param) const {
  for (const ParamFacts& f : facts)
    if (f.name == param) return &f;
  return nullptr;
}

KernelContract contract_for(KernelKind kind, BLayout layout,
                            const transform::CGenParams& params,
                            const ir::Kernel& kernel) {
  KernelContract c;
  for (const ir::Param& p : kernel.params())
    c.args.push_back({p.name, p.type == ir::ScalarType::kF64});

  auto v = [](const char* n) { return Poly::variable(n); };

  switch (kind) {
    case KernelKind::kGemm:
      // C[j*ldc+i] += sum_l A[l*mc+i] * B_elem(l,j), i<mc, j<nc, l<kc.
      // The blocked drivers pad/partition so the register tile divides the
      // block (unroll&jam rejects anything else) and call with the full C
      // leading dimension, so mc <= ldc.
      (void)layout;  // row-panel B[l*nc+j] and col-major B[j*kc+l] have the
                     // same kc*nc footprint.
      // The block extents are positive multiples of the register tile, so
      // mc >= mr and nc >= nr; ldc >= mc >= mr transitively. These floors
      // let the translation validator separate a C-tile load from the store
      // to the previous column (one ldc stride apart).
      c.facts.push_back({"mc", params.mr, v("ldc"), params.mr});
      c.facts.push_back({"nc", params.nr, std::nullopt, params.nr});
      c.facts.push_back({"kc", 1, std::nullopt, 1});
      c.facts.push_back({"ldc", 1, std::nullopt, params.mr});
      c.buffers.push_back({"A", v("mc") * v("kc"), false});
      c.buffers.push_back({"B", v("kc") * v("nc"), false});
      c.buffers.push_back({"C", v("ldc") * v("nc"), true});
      break;
    case KernelKind::kGemv:
      // y[j] += A[i*lda+j] * x[i], i<n, j<m, A column-major: m <= lda.
      c.facts.push_back({"m", 1, v("lda")});
      c.facts.push_back({"n", 1, std::nullopt});
      c.facts.push_back({"lda", 1, std::nullopt});
      c.buffers.push_back({"A", v("lda") * v("n"), false});
      c.buffers.push_back({"x", v("n"), false});
      c.buffers.push_back({"y", v("m"), true});
      break;
    case KernelKind::kAxpy:
      c.facts.push_back({"n", 1, std::nullopt});
      c.buffers.push_back({"x", v("n"), false});
      c.buffers.push_back({"y", v("n"), true});
      break;
    case KernelKind::kDot:
      c.facts.push_back({"n", 1, std::nullopt});
      c.buffers.push_back({"x", v("n"), false});
      c.buffers.push_back({"y", v("n"), false});
      break;
    case KernelKind::kScal:
      c.facts.push_back({"n", 1, std::nullopt});
      c.buffers.push_back({"x", v("n"), true});
      break;
  }
  return c;
}

KernelContract contract_for_small_gemm(const frontend::SmallGemmSpec& spec,
                                       const ir::Kernel& kernel) {
  KernelContract c;
  for (const ir::Param& p : kernel.params())
    c.args.push_back({p.name, p.type == ir::ScalarType::kF64});

  auto v = [](const char* n) { return Poly::variable(n); };
  auto n = [](std::int64_t x) { return Poly::constant(x); };

  // A[l*lda+i], B[j*ldb+l], C[j*ldc+i] with i<m, j<n, l<k all constants;
  // the batch driver guarantees the leading dimensions cover the accessed
  // panel of each operand.
  c.facts.push_back({"lda", 1, std::nullopt, spec.m});
  c.facts.push_back({"ldb", 1, std::nullopt, spec.k});
  c.facts.push_back({"ldc", 1, std::nullopt, spec.m});
  c.buffers.push_back({"A", v("lda") * n(spec.k), false});
  c.buffers.push_back({"B", v("ldb") * n(spec.n), false});
  c.buffers.push_back({"C", v("ldc") * n(spec.n), true});
  if (spec.epilogue.bias) c.buffers.push_back({"bias", n(spec.m), false});
  return c;
}

}  // namespace augem::analysis
