#include "analysis/cfg.hpp"

#include <algorithm>

namespace augem::analysis {

using opt::MInst;
using opt::MInstList;
using opt::MOp;

bool is_cond_jump(MOp op) {
  return op == MOp::kJl || op == MOp::kJge || op == MOp::kJne ||
         op == MOp::kJe;
}

namespace {

bool ends_block(MOp op) {
  return is_cond_jump(op) || op == MOp::kJmp || op == MOp::kRet;
}

}  // namespace

Cfg build_cfg(const MInstList& insts) {
  Cfg cfg;
  cfg.insts = &insts;
  if (insts.empty()) return cfg;

  // Leaders: 0, every label, every instruction after a jump/ret.
  std::vector<char> leader(insts.size(), 0);
  leader[0] = 1;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (insts[i].op == MOp::kLabel) leader[i] = 1;
    if (ends_block(insts[i].op) && i + 1 < insts.size()) leader[i + 1] = 1;
  }

  cfg.block_of.assign(insts.size(), 0);
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (leader[i]) {
      BasicBlock b;
      b.first = i;
      cfg.blocks.push_back(b);
    }
    cfg.block_of[i] = cfg.blocks.size() - 1;
    cfg.blocks.back().last = i + 1;
  }

  for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const MInst& head = insts[cfg.blocks[bi].first];
    if (head.op == MOp::kLabel) cfg.label_block.emplace(head.label, bi);
  }

  auto add_edge = [&](std::size_t from, std::size_t to) {
    auto& ss = cfg.blocks[from].succs;
    if (std::find(ss.begin(), ss.end(), to) == ss.end()) {
      ss.push_back(to);
      cfg.blocks[to].preds.push_back(from);
    }
  };

  for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const MInst& tail = insts[cfg.blocks[bi].last - 1];
    const bool has_next = bi + 1 < cfg.blocks.size();
    if (tail.op == MOp::kRet) continue;
    if (tail.op == MOp::kJmp || is_cond_jump(tail.op)) {
      auto it = cfg.label_block.find(tail.label);
      if (it != cfg.label_block.end()) add_edge(bi, it->second);
      // Conditional jumps (and jumps to unknown labels, which the
      // structural pass reports) also fall through.
      if ((tail.op != MOp::kJmp || it == cfg.label_block.end()) && has_next)
        add_edge(bi, bi + 1);
      continue;
    }
    if (has_next) add_edge(bi, bi + 1);
  }
  return cfg;
}

}  // namespace augem::analysis
