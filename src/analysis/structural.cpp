#include "analysis/passes.hpp"

#include <set>
#include <string>

namespace augem::analysis {

using opt::Gpr;
using opt::MInst;
using opt::MInstList;
using opt::MOp;
using opt::Vr;

namespace {

bool requires_vdst(MOp op) {
  switch (op) {
    case MOp::kVZero:
    case MOp::kVLoad:
    case MOp::kVBroadcast:
    case MOp::kVMov:
    case MOp::kVMul:
    case MOp::kVAdd:
    case MOp::kVMax:
    case MOp::kVFma231:
    case MOp::kVFma4:
    case MOp::kVShuf:
    case MOp::kVPerm128:
    case MOp::kVBlend:
    case MOp::kVExtractHigh:
    case MOp::kFLoad:
      return true;
    default:
      return false;
  }
}

bool requires_mem(MOp op) {
  switch (op) {
    case MOp::kVLoad:
    case MOp::kVStore:
    case MOp::kVBroadcast:
    case MOp::kFLoad:
    case MOp::kFStore:
    case MOp::kILoad:
    case MOp::kIStore:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
    case MOp::kLea:
    case MOp::kPrefetch:
      return true;
    default:
      return false;
  }
}

bool two_operand_constrained(MOp op) {
  return op == MOp::kVMul || op == MOp::kVAdd || op == MOp::kVMax ||
         op == MOp::kVShuf || op == MOp::kVBlend;
}

}  // namespace

void run_structural_checks(const Cfg& cfg, AnalysisReport& report) {
  const MInstList& insts = *cfg.insts;
  auto err = [&](std::size_t i, const char* kind, const std::string& msg) {
    report.add(i, Severity::kError, kind, msg);
  };

  // Labels.
  std::set<std::string> labels;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (insts[i].op == MOp::kLabel) {
      if (!labels.insert(insts[i].label).second)
        err(i, "duplicate-label", "duplicate label '" + insts[i].label + "'");
    }
  }

  std::vector<Gpr> push_stack;
  std::int64_t rsp_delta = 0;
  bool saw_ret = false;
  std::vector<Gpr> dg;
  std::vector<Vr> dv;

  for (std::size_t i = 0; i < insts.size(); ++i) {
    const MInst& inst = insts[i];

    // Operand completeness and encodings.
    if (requires_vdst(inst.op) && inst.vdst == Vr::kNoVr)
      err(i, "missing-operand", "missing vector destination");
    if (requires_mem(inst.op) && !inst.mem.valid())
      err(i, "missing-operand", "missing/invalid memory operand");
    if (inst.width != 1 && inst.width != 2 && inst.width != 4)
      err(i, "invalid-width",
          "invalid vector width " + std::to_string(inst.width));
    if (!inst.vex && inst.width == 4)
      err(i, "vex-required", "256-bit operation without VEX encoding");
    if ((inst.op == MOp::kVPerm128 || inst.op == MOp::kVExtractHigh) &&
        !inst.vex)
      err(i, "vex-required", "AVX-only operation without VEX encoding");
    if (!inst.vex && two_operand_constrained(inst.op) &&
        inst.vdst != inst.vsrc1)
      err(i, "two-operand-form", "non-VEX two-operand form requires dst == src1");

    if ((is_cond_jump(inst.op) || inst.op == MOp::kJmp) &&
        labels.count(inst.label) == 0)
      err(i, "unknown-label", "jump to unknown label '" + inst.label + "'");

    // Frame discipline (linear order: the generator's prologue/epilogue are
    // straight-line; loops never push).
    switch (inst.op) {
      case MOp::kPush:
        push_stack.push_back(inst.gsrc);
        break;
      case MOp::kPop:
        if (push_stack.empty()) {
          err(i, "push-pop-mismatch", "pop without matching push");
        } else if (push_stack.back() != inst.gdst) {
          err(i, "push-pop-mismatch",
              std::string("pop order mismatch: expected ") +
                  gpr_name(push_stack.back()) + ", got " + gpr_name(inst.gdst));
          push_stack.pop_back();
        } else {
          push_stack.pop_back();
        }
        break;
      case MOp::kISubImm:
        if (inst.gdst == Gpr::rsp) rsp_delta += inst.imm;
        break;
      case MOp::kIAddImm:
        if (inst.gdst == Gpr::rsp) rsp_delta -= inst.imm;
        break;
      case MOp::kRet:
        saw_ret = true;
        if (!push_stack.empty())
          err(i, "push-pop-mismatch",
              std::to_string(push_stack.size()) +
                  " callee-saved register(s) not restored at ret");
        if (rsp_delta != 0)
          err(i, "unbalanced-frame",
              "unbalanced stack frame at ret (delta " +
                  std::to_string(rsp_delta) + " bytes)");
        break;
      default: {
        defs_of(inst, dg, dv);
        for (Gpr g : dg)
          if (g == Gpr::rsp)
            err(i, "rsp-write", "unexpected write to rsp");
        break;
      }
    }
  }

  if (!saw_ret && !insts.empty())
    err(insts.size() - 1, "missing-ret", "function has no ret");
}

void run_flags_check(const Cfg& cfg, AnalysisReport& report) {
  const MInstList& insts = *cfg.insts;
  // Per-block scan with flags invalid at block entry. The generator always
  // places the compare in the same block as its conditional jump (emit_loop
  // guards and latches); requiring this is strictly stronger than the old
  // linear rule, which let flag state leak across labels.
  for (const BasicBlock& b : cfg.blocks) {
    bool flags_valid = false;
    for (std::size_t i = b.first; i < b.last; ++i) {
      const MInst& inst = insts[i];
      if (inst.op == MOp::kCmp || inst.op == MOp::kCmpImm) {
        flags_valid = true;
      } else if (is_cond_jump(inst.op)) {
        if (!flags_valid)
          report.add(i, Severity::kError, "flags-clobbered",
                     "conditional jump without an immediately preceding "
                     "compare");
      } else if (inst.op != MOp::kComment && inst.op != MOp::kLabel &&
                 inst.op != MOp::kPrefetch && inst.op != MOp::kJmp) {
        // Arithmetic would clobber EFLAGS on real silicon: the generator
        // must re-compare before every conditional jump.
        flags_valid = false;
      }
    }
  }
}

}  // namespace augem::analysis
