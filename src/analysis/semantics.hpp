#pragma once
// Translation validation for generated kernels: a per-lane symbolic
// executor over the final MInstList that proves each stored element of the
// output buffer is a permitted reassociation of the kernel's reference
// semantics (the beta*C + alpha*sum a[i,k]*b[k,j] form, including fused
// bias/ReLU/scale epilogues). See docs/static-analysis.md for the
// abstraction, the canonical multiset-of-products form, the accepted
// rewrites, and the known limits.
//
// Findings (all errors; the absence of findings means "proved", so an
// uninterpretable shape must be a finding too):
//   semantics-mismatch    a stored value decodes to the wrong expression
//   semantics-unproven    a stored value contains opaque parts the checker
//                         cannot resolve (may-alias load, non-inductive
//                         accumulator)
//   semantics-unsupported the code walks outside the supported shape
//
// The pass stops at its first finding: downstream values are built on the
// same state, so later mismatches are usually echoes of the first.

#include <optional>

#include "analysis/contract.hpp"
#include "analysis/findings.hpp"
#include "frontend/kernels.hpp"
#include "opt/minst.hpp"

namespace augem::analysis {

/// What the kernel under analysis is supposed to compute. The contract
/// names the buffers; this names the math.
struct SemanticsSpec {
  frontend::KernelKind kind = frontend::KernelKind::kGemm;
  frontend::BLayout layout = frontend::BLayout::kRowPanel;
  /// Set for fully-unrolled small-GEMM kernels (fused epilogues, compile
  /// time shape); unset for the counted-loop kernels.
  std::optional<frontend::SmallGemmSpec> small;
};

/// Symbolically executes `insts` and checks every store into the writable
/// contract buffer (and the return value, for dot) against `spec`.
/// Appends at most one finding to `report`.
void run_semantics_check(const opt::MInstList& insts,
                         const KernelContract& contract,
                         const SemanticsSpec& spec, AnalysisReport& report);

/// Translation validation of the instruction scheduler: value-numbers both
/// instruction lists span by span (spans are delimited by control flow and
/// comments, which the scheduler never crosses) and AUGEM_FAILs unless
/// every register's final value, the ordered store sequence, and the flags
/// feeding each conditional jump agree. Installed into
/// opt::set_schedule_validator at static-initialization time, so debug
/// builds assert this after every opt::schedule_instructions call.
void validate_schedule_equivalence(const opt::MInstList& before,
                                   const opt::MInstList& after);

}  // namespace augem::analysis
