#pragma once
// Entry point of the machine-IR static analyzer ("mirlint").
//
// Runs, over a real CFG of the instruction stream:
//   1. structural checks  — operand completeness, encodings, labels,
//      push/pop and frame discipline (the old opt/verifier checks);
//   2. flag liveness      — every conditional jump sees a valid compare;
//   3. definite assignment — no vector or general-purpose register is read
//      before it is written along ANY path;
//   4. liveness           — dead vector stores (warnings);
//   5. queue-reuse        — write-after-read false-dependence hazards on
//      the register queues (warnings);
//   6. symbolic bounds    — with a KernelContract, proves every load,
//      store and prefetch lands inside the caller's buffers.
//
// opt::verify_machine_code is a thin wrapper over this (error findings
// only); asmgen::generate_assembly calls it on every kernel, and
// check::run_fuzz runs the full analyzer (with contract) on every fuzz
// case so static proofs are cross-checked against dynamic behavior.

#include "analysis/bounds.hpp"
#include "analysis/contract.hpp"
#include "analysis/findings.hpp"
#include "analysis/semantics.hpp"
#include "opt/minst.hpp"

namespace augem::analysis {

struct AnalyzeOptions {
  int num_f64_params = 0;  ///< SysV SSE-class args preinitializing xmm0..n-1
  const KernelContract* contract = nullptr;  ///< enables the bounds pass
  /// With a contract, enables the translation-validation pass: the stores
  /// of the kernel are proven equivalent to the reference semantics named
  /// by the spec (see analysis/semantics.hpp).
  const SemanticsSpec* semantics = nullptr;
  int queue_reuse_window = 2;   ///< see run_queue_reuse_check
  int prefetch_slack_bytes = 1024;
};

AnalysisReport analyze(const opt::MInstList& insts,
                       const AnalyzeOptions& options = {});

/// Throws augem::Error listing every error-severity finding, if any.
void check_clean(const AnalysisReport& report, const opt::MInstList& insts);

}  // namespace augem::analysis
