#pragma once
// Finding/report types shared by every static-analysis pass.
//
// A pass appends Findings to an AnalysisReport; severities separate
// "this code is wrong" (kError — generation aborts, mirlint exits
// nonzero) from "this code is wasteful or suspicious" (kWarning) and
// purely informational notes. Findings carry the instruction index so
// callers can render the offending MInst next to the message.

#include <cstddef>
#include <string>
#include <vector>

#include "opt/minst.hpp"

namespace augem::analysis {

enum class Severity { kError, kWarning, kNote };

const char* severity_name(Severity s);

/// One diagnostic from one pass.
struct Finding {
  std::size_t index = 0;   ///< instruction index the finding anchors to
  Severity severity = Severity::kError;
  std::string kind;        ///< stable kebab-case code, e.g. "oob-store"
  std::string message;     ///< human-readable description
};

/// All findings for one kernel, in pass order.
struct AnalysisReport {
  std::vector<Finding> findings;

  void add(std::size_t index, Severity sev, std::string kind,
           std::string message) {
    findings.push_back({index, sev, std::move(kind), std::move(message)});
  }

  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }

  /// Multi-line human-readable rendering ("[12] error oob-store: … | inst").
  std::string to_string(const opt::MInstList& insts) const;

  /// JSON array of finding objects (stable keys: index, severity, kind,
  /// message, inst).
  std::string to_json(const opt::MInstList& insts) const;
};

/// Escapes a string for embedding in a JSON literal.
std::string json_escape(const std::string& s);

}  // namespace augem::analysis
