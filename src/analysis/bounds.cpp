#include "analysis/bounds.hpp"

#include <array>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace augem::analysis {

using ir::Poly;
using opt::Gpr;
using opt::Mem;
using opt::MInst;
using opt::MInstList;
using opt::MOp;
using opt::Vr;

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Entry-rsp symbol: stack addresses are RSP0-relative constants.
const char* kRsp0 = "rsp0$";

/// Abstract value: a polynomial over parameter/counter symbols, or unknown.
using SymVal = std::optional<Poly>;

struct SymInfo {
  std::string name;
  std::optional<Poly> lo;  ///< inclusive lower bound (over older symbols)
  std::optional<Poly> hi;  ///< inclusive upper bound (over older symbols)
  bool nonneg = false;
  std::int64_t divisible_by = 1;
};

enum class Sign { kNonNeg, kNonPos, kUnknown };

/// A trackable storage location: a GPR or an entry-rsp-relative frame slot.
struct Loc {
  bool is_slot = false;
  Gpr reg = Gpr::kNoGpr;
  std::int64_t off = 0;

  bool operator<(const Loc& o) const {
    if (is_slot != o.is_slot) return is_slot < o.is_slot;
    if (is_slot) return off < o.off;
    return reg < o.reg;
  }
  bool operator==(const Loc& o) const {
    return is_slot == o.is_slot && (is_slot ? off == o.off : reg == o.reg);
  }
};

struct State {
  std::array<SymVal, opt::kNumGprs> gpr;
  std::map<std::int64_t, SymVal> stack;  ///< entry-rsp-relative offset -> val
  std::int64_t rsp_rel = 0;              ///< rsp - entry rsp (<= 0)
};

class BoundsEngine {
 public:
  BoundsEngine(const MInstList& insts, const KernelContract& contract,
               const BoundsOptions& opts, AnalysisReport& report)
      : insts_(insts), contract_(contract), opts_(opts), report_(report) {}

  void run() {
    State st = initial_state();
    analyze_span(0, insts_.size(), st, /*check=*/true);
  }

 private:
  const MInstList& insts_;
  const KernelContract& contract_;
  const BoundsOptions& opts_;
  AnalysisReport& report_;

  std::vector<SymInfo> symbols_;  // creation order; elimination runs newest
                                  // to oldest so bounds only reference what
                                  // remains
  std::map<std::string, std::size_t> sym_index_;
  std::set<std::string> pointer_syms_;
  int n_stack_args_ = 0;
  int fresh_ = 0;
  bool bailed_ = false;

  // ---- symbols and proofs --------------------------------------------------

  std::size_t add_symbol(SymInfo info) {
    sym_index_[info.name] = symbols_.size();
    symbols_.push_back(std::move(info));
    return symbols_.size() - 1;
  }

  const SymInfo* find_symbol(const std::string& name) const {
    auto it = sym_index_.find(name);
    return it == sym_index_.end() ? nullptr : &symbols_[it->second];
  }

  /// Syntactic sign: every term has the given sign with all variables
  /// known nonnegative. Conservative (kUnknown fails proofs).
  Sign sign_of(const Poly& p) const {
    bool has_pos = false, has_neg = false;
    for (const ir::PolyTerm& t : p.terms()) {
      for (const std::string& var : t.vars) {
        const SymInfo* s = find_symbol(var);
        if (s == nullptr || !s->nonneg) return Sign::kUnknown;
      }
      (t.coeff > 0 ? has_pos : has_neg) = true;
    }
    if (has_pos && has_neg) return Sign::kUnknown;
    return has_neg ? Sign::kNonPos : Sign::kNonNeg;
  }

  /// Constant lower bound of `p` by monomial-wise symbol elimination:
  /// a symbol with nonnegative coefficient is replaced by its lower bound,
  /// with nonpositive coefficient by its upper bound. Substituted bounds
  /// may reference other symbols, so sweep until only a constant remains.
  std::optional<std::int64_t> lower_bound(Poly p) const {
    for (int sweep = 0; sweep < 64; ++sweep) {
      if (p.without_constant().terms().empty()) return p.constant_part();
      bool progressed = false;
      // Upper-bound substitutions first: they carry the contract's
      // relational facts (mc <= ldc, counter <= extent), which must cancel
      // against other terms before any variable is floored at its
      // relation-free lower bound. E.g. 8*ldc - 8*mc proves >= 0 only via
      // mc -> ldc; flooring ldc -> 0 first would lose the relation.
      for (std::size_t i = symbols_.size(); i-- > 0;) {
        const SymInfo& s = symbols_[i];
        if (p.independent_of(s.name)) continue;
        const std::optional<Poly> c = p.coefficient_of(s.name);
        if (!c) continue;  // nonlinear in s; other substitutions may fix it
        if (sign_of(*c) != Sign::kNonPos || !s.hi) continue;
        p = p.substitute(s.name, *s.hi);
        progressed = true;
      }
      if (progressed) continue;
      // No relational fact applies: floor one nonnegative-coefficient
      // variable (newest first) and re-sweep.
      for (std::size_t i = symbols_.size(); i-- > 0;) {
        const SymInfo& s = symbols_[i];
        if (p.independent_of(s.name)) continue;
        const std::optional<Poly> c = p.coefficient_of(s.name);
        if (!c || sign_of(*c) != Sign::kNonNeg) continue;
        if (s.lo)
          p = p.substitute(s.name, *s.lo);
        else if (s.nonneg)
          p = p.substitute(s.name, Poly::constant(0));
        else
          continue;
        progressed = true;
        break;
      }
      if (!progressed) return std::nullopt;  // stuck: unknown sign or var
    }
    return std::nullopt;
  }

  bool prove_nonneg(const Poly& p) const {
    const std::optional<std::int64_t> lb = lower_bound(p);
    return lb.has_value() && *lb >= 0;
  }

  /// True when `p` is provably a multiple of `d` (term-wise, using the
  /// declared divisibility of each variable; arithmetic is mod d).
  bool divisible(const Poly& p, std::int64_t d) const {
    if (d == 1) return true;
    if (d == 0) return false;
    for (const ir::PolyTerm& t : p.terms()) {
      std::int64_t f = t.coeff % d;
      for (const std::string& var : t.vars) {
        const SymInfo* s = find_symbol(var);
        const std::int64_t m = s != nullptr ? s->divisible_by : 1;
        f = (f * (m % d)) % d;
      }
      if (f != 0) return false;
    }
    return true;
  }

  static std::optional<Poly> poly_div(const Poly& p, std::int64_t d) {
    if (d == 0) return std::nullopt;
    Poly q;
    for (const ir::PolyTerm& t : p.terms()) {
      if (t.coeff % d != 0) return std::nullopt;
      Poly term = Poly::constant(t.coeff / d);
      for (const std::string& var : t.vars) term = term * Poly::variable(var);
      q = q + term;
    }
    return q;
  }

  static bool uses_only_older(const Poly& p, std::size_t watermark,
                              const std::map<std::string, std::size_t>& idx) {
    for (const ir::PolyTerm& t : p.terms())
      for (const std::string& var : t.vars) {
        auto it = idx.find(var);
        if (it == idx.end() || it->second >= watermark) return false;
      }
    return true;
  }

  // ---- state ---------------------------------------------------------------

  State initial_state() {
    State st;
    add_symbol({kRsp0, std::nullopt, std::nullopt, true, 1});

    static constexpr Gpr kIntArgRegs[6] = {Gpr::rdi, Gpr::rsi, Gpr::rdx,
                                           Gpr::rcx, Gpr::r8,  Gpr::r9};
    int next_int = 0;
    std::int64_t next_stack = 8;  // 0 is the return address
    for (const ArgSpec& a : contract_.args) {
      if (a.is_f64) continue;  // SSE class: vector values are untracked
      SymInfo si;
      si.name = a.name;
      si.nonneg = true;  // extents are nonnegative; pointers are addresses
      if (const ParamFacts* f = contract_.facts_for(a.name)) {
        si.divisible_by = f->divisible_by;
        si.hi = f->upper_bound;
        if (f->min_value) si.lo = Poly::constant(*f->min_value);
      }
      if (contract_.buffer_for(a.name) != nullptr)
        pointer_syms_.insert(a.name);
      add_symbol(si);
      if (next_int < 6) {
        st.gpr[index_of(kIntArgRegs[next_int++])] = Poly::variable(a.name);
      } else {
        st.stack[next_stack] = Poly::variable(a.name);
        next_stack += 8;
        ++n_stack_args_;
      }
    }
    return st;
  }

  SymVal get(const State& st, Gpr g) const {
    if (g == Gpr::rsp)
      return Poly::variable(kRsp0) + Poly::constant(st.rsp_rel);
    return st.gpr[index_of(g)];
  }

  SymVal get_loc(const State& st, const Loc& l) const {
    if (!l.is_slot) return get(st, l.reg);
    auto it = st.stack.find(l.off);
    return it == st.stack.end() ? std::nullopt : it->second;
  }

  SymVal addr_of(const State& st, const Mem& m) const {
    if (!m.valid()) return std::nullopt;
    SymVal base = get(st, m.base);
    if (!base) return std::nullopt;
    Poly a = *base + Poly::constant(m.disp);
    if (m.has_index()) {
      SymVal idx = get(st, m.index);
      if (!idx) return std::nullopt;
      a = a + *idx * Poly::constant(m.scale);
    }
    return a;
  }

  // ---- findings ------------------------------------------------------------

  void bail(std::size_t i, const std::string& why) {
    if (bailed_) return;
    bailed_ = true;
    report_.add(i, Severity::kError, "bounds-unsupported",
                "symbolic bounds analysis cannot interpret this code (" +
                    why + "); remaining accesses are unproven");
  }

  // ---- memory access checks ------------------------------------------------

  void check_stack_access(std::size_t i, const State& st, std::int64_t off,
                          int bytes, bool is_write) {
    // Own frame (spill slots + saved registers) below the entry rsp...
    if (off >= st.rsp_rel && off + bytes <= 0) return;
    // ...or the caller's stack-argument area above the return address,
    // which the kernel must not write.
    if (!is_write && off >= 8 && off + bytes <= 8 + 8 * n_stack_args_) return;
    report_.add(i, Severity::kError, "oob-frame",
                std::string(is_write ? "store to" : "load from") +
                    " stack offset " + std::to_string(off) +
                    " (entry-rsp-relative) outside the frame [" +
                    std::to_string(st.rsp_rel) + ", 0) and argument area [8, " +
                    std::to_string(8 + 8 * n_stack_args_) + ")");
  }

  void check_data_access(std::size_t i, const Poly& addr, int bytes,
                         bool is_write, bool is_prefetch) {
    // The address must be base + offset for exactly one contract buffer.
    const BufferSpec* buf = nullptr;
    for (const std::string& p : pointer_syms_) {
      const std::optional<Poly> c = addr.coefficient_of(p);
      if (!c || c->without_constant().terms().empty() == false ||
          c->constant_part() == 0)
        continue;
      if (c->constant_part() != 1 || buf != nullptr) {
        report_.add(i, Severity::kError, "unknown-address",
                    "address " + addr.to_string() +
                        " is not a unit offset into a single kernel buffer");
        return;
      }
      buf = contract_.buffer_for(p);
    }
    if (buf == nullptr) {
      if (is_prefetch) return;  // prefetching a non-buffer address is a
                                // hint; it cannot fault
      report_.add(i, Severity::kError, "unknown-address",
                  "address " + addr.to_string() +
                      " is not a provable offset into any kernel buffer");
      return;
    }
    if (is_write && !buf->writable) {
      report_.add(i, Severity::kError, "readonly-store",
                  "store into read-only buffer '" + buf->param + "'");
      return;
    }
    const Poly off = addr - Poly::variable(buf->param);
    const std::int64_t slack = is_prefetch ? opts_.prefetch_slack_bytes : 0;
    const Severity sev = is_prefetch ? Severity::kWarning : Severity::kError;
    const char* kind =
        is_prefetch ? "oob-prefetch" : (is_write ? "oob-store" : "oob-load");
    // 0 <= off (- slack)  &&  off + bytes <= 8*extent (+ slack).
    if (!prove_nonneg(off + Poly::constant(slack)))
      report_.add(i, sev, kind,
                  std::string(is_prefetch ? "prefetch of" : is_write
                                                                ? "store to"
                                                                : "load from") +
                      " '" + buf->param + "' at byte offset " +
                      off.to_string() + ": cannot prove offset >= " +
                      std::to_string(-slack));
    const Poly room = Poly::constant(8) * buf->extent_elems +
                      Poly::constant(slack - bytes) - off;
    if (!prove_nonneg(room))
      report_.add(i, sev, kind,
                  std::string(is_prefetch ? "prefetch of" : is_write
                                                                ? "store to"
                                                                : "load from") +
                      " '" + buf->param + "' at byte offset " +
                      off.to_string() + " + " + std::to_string(bytes) +
                      " bytes: cannot prove it stays within 8*(" +
                      buf->extent_elems.to_string() + ")" +
                      (slack ? " + slack " + std::to_string(slack) : ""));
  }

  /// Routes one memory operand to the stack or data checker. Returns the
  /// entry-relative stack offset when the access is a frame access.
  std::optional<std::int64_t> check_access(std::size_t i, const State& st,
                                           const Mem& m, int bytes,
                                           bool is_write, bool is_prefetch,
                                           bool check) {
    const SymVal addr = addr_of(st, m);
    if (!addr) {
      if (check && !is_prefetch)
        report_.add(i, Severity::kError, "unknown-address",
                    "memory access through a register with no symbolic "
                    "value");
      return std::nullopt;
    }
    const std::optional<Poly> c = addr->coefficient_of(kRsp0);
    if (c && !(c->without_constant().terms().empty() &&
               c->constant_part() == 0)) {
      // Stack access: must be a constant entry-relative offset.
      const Poly rem = *addr - Poly::variable(kRsp0);
      if (!(c->without_constant().terms().empty() && c->constant_part() == 1) ||
          !rem.without_constant().terms().empty()) {
        if (check)
          report_.add(i, Severity::kError, "unknown-address",
                      "non-constant stack address " + addr->to_string());
        return std::nullopt;
      }
      const std::int64_t off = rem.constant_part();
      if (check && !is_prefetch) check_stack_access(i, st, off, bytes, is_write);
      return off;
    }
    if (check) check_data_access(i, *addr, bytes, is_write, is_prefetch);
    return std::nullopt;
  }

  // ---- abstract execution --------------------------------------------------

  void exec(std::size_t i, State& st, bool check) {
    const MInst& inst = insts_[i];
    auto setg = [&](Gpr g, SymVal v) {
      if (g == Gpr::kNoGpr) return;
      if (g == Gpr::rsp) {
        bail(i, "unexpected write to rsp");
        return;
      }
      st.gpr[index_of(g)] = std::move(v);
    };
    auto bin = [&](auto f) -> SymVal {
      SymVal a = get(st, inst.gdst), b = get(st, inst.gsrc);
      if (!a || !b) return std::nullopt;
      return f(*a, *b);
    };

    switch (inst.op) {
      case MOp::kIMovImm:
        setg(inst.gdst, Poly::constant(inst.imm));
        break;
      case MOp::kIMov:
        setg(inst.gdst, get(st, inst.gsrc));
        break;
      case MOp::kIAdd:
        setg(inst.gdst, bin([](const Poly& a, const Poly& b) { return a + b; }));
        break;
      case MOp::kISub:
        setg(inst.gdst, bin([](const Poly& a, const Poly& b) { return a - b; }));
        break;
      case MOp::kIMul:
        setg(inst.gdst, bin([](const Poly& a, const Poly& b) { return a * b; }));
        break;
      case MOp::kIAddImm:
        if (inst.gdst == Gpr::rsp) {
          st.rsp_rel += inst.imm;
        } else {
          SymVal v = get(st, inst.gdst);
          setg(inst.gdst, v ? SymVal(*v + Poly::constant(inst.imm)) : v);
        }
        break;
      case MOp::kISubImm:
        if (inst.gdst == Gpr::rsp) {
          st.rsp_rel -= inst.imm;
        } else {
          SymVal v = get(st, inst.gdst);
          setg(inst.gdst, v ? SymVal(*v - Poly::constant(inst.imm)) : v);
        }
        break;
      case MOp::kIMulImm: {
        SymVal v = get(st, inst.gsrc);
        setg(inst.gdst, v ? SymVal(*v * Poly::constant(inst.imm)) : v);
        break;
      }
      case MOp::kIShlImm: {
        SymVal v = get(st, inst.gdst);
        if (v && inst.imm >= 0 && inst.imm < 62)
          setg(inst.gdst, *v * Poly::constant(std::int64_t{1} << inst.imm));
        else
          setg(inst.gdst, std::nullopt);
        break;
      }
      case MOp::kINeg: {
        SymVal v = get(st, inst.gdst);
        setg(inst.gdst, v ? SymVal(Poly::constant(0) - *v) : v);
        break;
      }
      case MOp::kLea:
        setg(inst.gdst, addr_of(st, inst.mem));
        break;

      case MOp::kILoad: {
        const auto slot = check_access(i, st, inst.mem, 8, false, false, check);
        if (slot) {
          auto it = st.stack.find(*slot);
          setg(inst.gdst, it == st.stack.end() ? SymVal{} : it->second);
        } else {
          setg(inst.gdst, std::nullopt);
        }
        break;
      }
      case MOp::kIStore: {
        const auto slot = check_access(i, st, inst.mem, 8, true, false, check);
        if (slot) st.stack[*slot] = get(st, inst.gsrc);
        break;
      }
      case MOp::kIAddMem:
      case MOp::kISubMem:
      case MOp::kIMulMem: {
        const auto slot = check_access(i, st, inst.mem, 8, false, false, check);
        SymVal mv;
        if (slot) {
          auto it = st.stack.find(*slot);
          if (it != st.stack.end()) mv = it->second;
        }
        SymVal v = get(st, inst.gdst);
        if (v && mv) {
          if (inst.op == MOp::kIAddMem)
            setg(inst.gdst, *v + *mv);
          else if (inst.op == MOp::kISubMem)
            setg(inst.gdst, *v - *mv);
          else
            setg(inst.gdst, *v * *mv);
        } else {
          setg(inst.gdst, std::nullopt);
        }
        break;
      }

      case MOp::kVLoad:
        check_access(i, st, inst.mem, 8 * inst.width, false, false, check);
        break;
      case MOp::kVBroadcast:
      case MOp::kFLoad:
        check_access(i, st, inst.mem, 8, false, false, check);
        break;
      case MOp::kVStore:
        check_access(i, st, inst.mem, 8 * inst.width, true, false, check);
        break;
      case MOp::kFStore:
        check_access(i, st, inst.mem, 8, true, false, check);
        break;
      case MOp::kPrefetch:
        // A prefetch cannot fault; it is checked (with slack) so that a
        // runaway prefetch cursor is still surfaced, at warning severity.
        check_access(i, st, inst.mem, 64, false, true, check);
        break;

      case MOp::kPush:
        st.stack[st.rsp_rel - 8] = get(st, inst.gsrc);
        st.rsp_rel -= 8;
        break;
      case MOp::kPop: {
        auto it = st.stack.find(st.rsp_rel);
        setg(inst.gdst, it == st.stack.end() ? SymVal{} : it->second);
        st.rsp_rel += 8;
        break;
      }

      default:
        break;  // vector arithmetic, cmp, labels, comments, vzeroupper, ret
    }
  }

  // ---- loop protocol -------------------------------------------------------

  /// Index of the latest conditional back-jump in (head, last) targeting
  /// the label at `head`, or kNone.
  std::size_t find_latch(std::size_t head, std::size_t last) const {
    const std::string& name = insts_[head].label;
    std::size_t latch = kNone;
    for (std::size_t j = head + 1; j < last; ++j)
      if ((is_cond_jump(insts_[j].op) || insts_[j].op == MOp::kJmp) &&
          insts_[j].label == name)
        latch = j;
    return latch;
  }

  std::size_t prev_real(std::size_t i, std::size_t floor) const {
    while (i-- > floor)
      if (insts_[i].op != MOp::kComment) return i;
    return kNone;
  }

  /// Locations written anywhere in [first, last): GPR defs plus constant
  /// rsp-relative stores. Returns false (bail) on pushes/pops inside the
  /// range or non-constant stack stores.
  bool modified_locs(std::size_t first, std::size_t last, const State& st,
                     std::set<Loc>& out) {
    std::vector<Gpr> dg;
    std::vector<Vr> dv;
    for (std::size_t i = first; i < last; ++i) {
      const MInst& inst = insts_[i];
      if (inst.op == MOp::kPush || inst.op == MOp::kPop) {
        bail(i, "push/pop inside a loop");
        return false;
      }
      defs_of(inst, dg, dv);
      for (Gpr g : dg) {
        if (g == Gpr::rsp) {
          bail(i, "rsp adjustment inside a loop");
          return false;
        }
        out.insert({false, g, 0});
      }
      if (inst.op == MOp::kIStore || inst.op == MOp::kFStore ||
          inst.op == MOp::kVStore) {
        if (inst.mem.base == Gpr::rsp) {
          if (inst.mem.has_index()) {
            bail(i, "indexed stack store inside a loop");
            return false;
          }
          out.insert({true, Gpr::kNoGpr, st.rsp_rel + inst.mem.disp});
        }
      }
    }
    return true;
  }

  /// The storage location whose value the compare at `cmp_idx` reads as its
  /// left operand, looking back through at most one reload from a frame
  /// slot. `floor` limits the def search.
  std::optional<Loc> trace_cmp_lhs(std::size_t cmp_idx, std::size_t floor,
                                   const State& st) {
    const Gpr r = insts_[cmp_idx].gdst;
    std::vector<Gpr> dg;
    std::vector<Vr> dv;
    for (std::size_t j = cmp_idx; j-- > floor;) {
      const MInst& inst = insts_[j];
      defs_of(inst, dg, dv);
      bool defs_r = false;
      for (Gpr g : dg) defs_r |= g == r;
      if (!defs_r) continue;
      if (inst.op == MOp::kILoad && inst.mem.base == Gpr::rsp &&
          !inst.mem.has_index())
        return Loc{true, Gpr::kNoGpr, st.rsp_rel + inst.mem.disp};
      if (inst.op == MOp::kIAdd || inst.op == MOp::kIAddImm ||
          inst.op == MOp::kISub || inst.op == MOp::kISubImm)
        return Loc{false, r, 0};
      return std::nullopt;  // counter produced some other way: unsupported
    }
    return Loc{false, r, 0};  // not redefined in range: the register itself
  }

  /// Value of the compare's right operand (the loop bound) in `st`.
  SymVal cmp_rhs_value(std::size_t cmp_idx, const State& st) const {
    const MInst& c = insts_[cmp_idx];
    if (c.op == MOp::kCmpImm) return Poly::constant(c.imm);
    return get(st, c.gsrc);
  }

  bool analyze_loop(std::size_t head, std::size_t latch, State& st,
                    bool check) {
    if (insts_[latch].op != MOp::kJl) {
      bail(latch, "loop latch is not jl");
      return false;
    }
    const std::size_t cmp_idx = prev_real(latch, head);
    if (cmp_idx == kNone || (insts_[cmp_idx].op != MOp::kCmp &&
                             insts_[cmp_idx].op != MOp::kCmpImm)) {
      bail(latch, "loop latch without a compare");
      return false;
    }

    const std::optional<Loc> counter = trace_cmp_lhs(cmp_idx, head + 1, st);
    if (!counter) {
      bail(cmp_idx, "cannot identify the loop counter");
      return false;
    }
    const SymVal c0v = get_loc(st, *counter);
    if (!c0v) {
      bail(head, "loop counter has no symbolic entry value");
      return false;
    }
    const Poly c0 = *c0v;

    // The bound: evaluated at loop entry; pass A verifies it does not move.
    const SymVal bound0 = cmp_rhs_value(cmp_idx, st);

    // Pre-guard: `cmp c0, B; jge END` immediately before the loop head,
    // where END labels the instruction after the latch. Without it the
    // first iteration is unconstrained, so the counter gets no upper bound.
    bool guarded = false;
    if (bound0 && latch + 1 < insts_.size() &&
        insts_[latch + 1].op == MOp::kLabel) {
      const std::size_t g_jge = prev_real(head, 0);
      if (g_jge != kNone && insts_[g_jge].op == MOp::kJge &&
          insts_[g_jge].label == insts_[latch + 1].label) {
        const std::size_t g_cmp = prev_real(g_jge, 0);
        if (g_cmp != kNone && (insts_[g_cmp].op == MOp::kCmp ||
                               insts_[g_cmp].op == MOp::kCmpImm)) {
          const SymVal glhs = get(st, insts_[g_cmp].gdst);
          const SymVal grhs = cmp_rhs_value(g_cmp, st);
          guarded = glhs && grhs && *glhs == c0 && *grhs == *bound0;
        }
      }
    }

    // Pass A: one abstract iteration from the entry state, checks off, to
    // discover every location's per-iteration delta.
    const std::size_t watermark = symbols_.size();
    std::set<Loc> modified;
    if (!modified_locs(head + 1, latch, st, modified)) return false;
    State s1 = st;
    if (!analyze_span(head + 1, latch, s1, /*check=*/false)) return false;

    // The bound must be loop-invariant.
    const SymVal bound1 = cmp_rhs_value(cmp_idx, s1);
    const bool bound_ok = bound0 && bound1 && *bound0 == *bound1;

    // Counter step: constant and positive.
    const SymVal c1v = get_loc(s1, *counter);
    if (!c1v) {
      bail(latch, "loop counter value lost across the body");
      return false;
    }
    const Poly delta_c = *c1v - c0;
    if (!delta_c.without_constant().terms().empty() ||
        delta_c.constant_part() <= 0) {
      bail(latch, "loop counter step is not a positive constant");
      return false;
    }
    const std::int64_t step = delta_c.constant_part();

    // The counter symbol: value of the counter location at body entry.
    SymInfo ct;
    ct.name = "ct$" + std::to_string(fresh_++);
    ct.lo = c0;
    ct.nonneg = prove_nonneg(c0);
    if (guarded && bound_ok) {
      const Poly b = *bound0;
      ct.hi = divisible(b - c0, step) ? b - Poly::constant(step)
                                      : b - Poly::constant(1);
    }
    add_symbol(ct);
    const Poly ctv = Poly::variable(ct.name);

    // Induction state for the body: every modified location that advanced
    // by a loop-invariant multiple of the step is re-expressed in ct.
    auto inducted = [&](const State& base, const Poly& sym)
        -> std::map<Loc, SymVal> {
      std::map<Loc, SymVal> vals;
      for (const Loc& loc : modified) {
        if (loc == *counter) {
          vals[loc] = sym;
          continue;
        }
        const SymVal a = get_loc(base, loc);
        const SymVal b = get_loc(s1, loc);
        SymVal v;
        if (a && b) {
          const Poly d = *b - *a;
          if (uses_only_older(d, watermark, sym_index_)) {
            if (const std::optional<Poly> q = poly_div(d, step))
              v = *a + *q * (sym - c0);
          }
        }
        vals[loc] = v;
      }
      return vals;
    };
    auto apply = [&](State& dst, const std::map<Loc, SymVal>& vals) {
      for (const auto& [loc, v] : vals) {
        if (loc.is_slot) {
          dst.stack[loc.off] = v;
        } else {
          dst.gpr[index_of(loc.reg)] = v;
        }
      }
    };

    if (check) {
      State body = st;
      apply(body, inducted(st, ctv));
      if (!analyze_span(head + 1, latch, body, /*check=*/true)) return false;
    }

    // Exit: the counter leaves holding some value in [c0, B + step - 1]
    // (the failed-guard value after the last iteration, or c0 when the
    // pre-guard skipped the loop entirely); everything inductive is
    // re-expressed in a fresh exit symbol so remainder loops keep the
    // cursor/counter correlation.
    SymInfo ex;
    ex.name = "exit$" + std::to_string(fresh_++);
    ex.lo = c0;
    ex.nonneg = ct.nonneg;
    if (guarded && bound_ok) {
      const Poly hi = *bound0 + Poly::constant(step - 1);
      if (prove_nonneg(hi - c0)) ex.hi = hi;
    }
    add_symbol(ex);
    apply(st, inducted(st, Poly::variable(ex.name)));
    return true;
  }

  // ---- structured walk -----------------------------------------------------

  bool analyze_span(std::size_t first, std::size_t last, State& st,
                    bool check) {
    std::size_t i = first;
    while (i < last && !bailed_) {
      const MInst& inst = insts_[i];
      if (inst.op == MOp::kLabel) {
        const std::size_t latch = find_latch(i, last);
        if (latch != kNone) {
          if (!analyze_loop(i, latch, st, check)) return false;
          i = latch + 1;
          continue;
        }
        ++i;
        continue;
      }
      if (is_cond_jump(inst.op)) {
        // Forward guards fall through here; the loop protocol accounts for
        // the skip path through the exit-symbol parametrization. A backward
        // jump at this point was not matched as a loop latch.
        auto target_is_forward = [&] {
          for (std::size_t j = i + 1; j < insts_.size(); ++j)
            if (insts_[j].op == MOp::kLabel && insts_[j].label == inst.label)
              return true;
          return false;
        };
        if (!target_is_forward()) {
          bail(i, "backward jump outside the counted-loop idiom");
          return false;
        }
        ++i;
        continue;
      }
      if (inst.op == MOp::kJmp) {
        bail(i, "unconditional jump");
        return false;
      }
      exec(i, st, check);
      ++i;
    }
    return !bailed_;
  }
};

}  // namespace

void run_bounds_check(const MInstList& insts, const KernelContract& contract,
                      const BoundsOptions& opts, AnalysisReport& report) {
  BoundsEngine(insts, contract, opts, report).run();
}

}  // namespace augem::analysis
