#include "analysis/bounds.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/symexec.hpp"

namespace augem::analysis {

using ir::Poly;
using opt::Gpr;
using opt::Mem;
using opt::MInst;
using opt::MInstList;
using opt::MOp;

namespace {

using symexec::AccessRef;
using symexec::IntState;
using symexec::kNoneIdx;
using symexec::kRsp0;
using symexec::LoopShape;
using symexec::SymVal;

/// The bounds prover: the shared symbolic engine plus the access-checking
/// policy (what must be proven about each load/store/prefetch and what an
/// uninterpretable shape means — a single bounds-unsupported error).
class BoundsEngine : private symexec::SymExec {
 public:
  BoundsEngine(const MInstList& insts, const KernelContract& contract,
               const BoundsOptions& opts, AnalysisReport& report)
      : SymExec(insts, contract), opts_(opts), report_(report) {}

  void run() {
    IntState st = initial_state();
    analyze_span(0, insts_.size(), st, /*check=*/true);
  }

 private:
  const BoundsOptions& opts_;
  AnalysisReport& report_;
  bool bailed_ = false;

  // ---- findings ------------------------------------------------------------

  void bail(std::size_t i, const std::string& why) {
    if (bailed_) return;
    bailed_ = true;
    report_.add(i, Severity::kError, "bounds-unsupported",
                "symbolic bounds analysis cannot interpret this code (" +
                    why + "); remaining accesses are unproven");
  }

  // ---- memory access checks ------------------------------------------------

  void check_stack_access(std::size_t i, const IntState& st, std::int64_t off,
                          int bytes, bool is_write) {
    // Own frame (spill slots + saved registers) below the entry rsp...
    if (off >= st.rsp_rel && off + bytes <= 0) return;
    // ...or the caller's stack-argument area above the return address,
    // which the kernel must not write.
    if (!is_write && off >= 8 && off + bytes <= 8 + 8 * num_stack_args())
      return;
    report_.add(i, Severity::kError, "oob-frame",
                std::string(is_write ? "store to" : "load from") +
                    " stack offset " + std::to_string(off) +
                    " (entry-rsp-relative) outside the frame [" +
                    std::to_string(st.rsp_rel) + ", 0) and argument area [8, " +
                    std::to_string(8 + 8 * num_stack_args()) + ")");
  }

  void check_data_access(std::size_t i, const Poly& addr, int bytes,
                         bool is_write, bool is_prefetch) {
    // The address must be base + offset for exactly one contract buffer.
    const BufferSpec* buf = nullptr;
    for (const std::string& p : pointer_syms()) {
      const std::optional<Poly> c = addr.coefficient_of(p);
      if (!c || c->without_constant().terms().empty() == false ||
          c->constant_part() == 0)
        continue;
      if (c->constant_part() != 1 || buf != nullptr) {
        report_.add(i, Severity::kError, "unknown-address",
                    "address " + addr.to_string() +
                        " is not a unit offset into a single kernel buffer");
        return;
      }
      buf = contract_.buffer_for(p);
    }
    if (buf == nullptr) {
      if (is_prefetch) return;  // prefetching a non-buffer address is a
                                // hint; it cannot fault
      report_.add(i, Severity::kError, "unknown-address",
                  "address " + addr.to_string() +
                      " is not a provable offset into any kernel buffer");
      return;
    }
    if (is_write && !buf->writable) {
      report_.add(i, Severity::kError, "readonly-store",
                  "store into read-only buffer '" + buf->param + "'");
      return;
    }
    const Poly off = addr - Poly::variable(buf->param);
    const std::int64_t slack = is_prefetch ? opts_.prefetch_slack_bytes : 0;
    const Severity sev = is_prefetch ? Severity::kWarning : Severity::kError;
    const char* kind =
        is_prefetch ? "oob-prefetch" : (is_write ? "oob-store" : "oob-load");
    // 0 <= off (- slack)  &&  off + bytes <= 8*extent (+ slack).
    if (!prove_nonneg(off + Poly::constant(slack)))
      report_.add(i, sev, kind,
                  std::string(is_prefetch ? "prefetch of" : is_write
                                                                ? "store to"
                                                                : "load from") +
                      " '" + buf->param + "' at byte offset " +
                      off.to_string() + ": cannot prove offset >= " +
                      std::to_string(-slack));
    const Poly room = Poly::constant(8) * buf->extent_elems +
                      Poly::constant(slack - bytes) - off;
    if (!prove_nonneg(room))
      report_.add(i, sev, kind,
                  std::string(is_prefetch ? "prefetch of" : is_write
                                                                ? "store to"
                                                                : "load from") +
                      " '" + buf->param + "' at byte offset " +
                      off.to_string() + " + " + std::to_string(bytes) +
                      " bytes: cannot prove it stays within 8*(" +
                      buf->extent_elems.to_string() + ")" +
                      (slack ? " + slack " + std::to_string(slack) : ""));
  }

  /// Routes one memory operand to the stack or data checker.
  void check_access(std::size_t i, const IntState& st, const Mem& m, int bytes,
                    bool is_write, bool is_prefetch) {
    const AccessRef ref = classify_access(st, m);
    switch (ref.kind) {
      case AccessRef::kUnknown:
        if (ref.nonconst_stack) {
          report_.add(i, Severity::kError, "unknown-address",
                      "non-constant stack address " + ref.addr->to_string());
        } else if (!is_prefetch) {
          report_.add(i, Severity::kError, "unknown-address",
                      "memory access through a register with no symbolic "
                      "value");
        }
        break;
      case AccessRef::kStack:
        if (!is_prefetch)
          check_stack_access(i, st, ref.slot, bytes, is_write);
        break;
      case AccessRef::kData:
        check_data_access(i, *ref.addr, bytes, is_write, is_prefetch);
        break;
    }
  }

  // ---- abstract execution --------------------------------------------------

  void exec(std::size_t i, IntState& st, bool check) {
    const MInst& inst = insts_[i];
    if (check) {
      switch (inst.op) {
        case MOp::kILoad:
        case MOp::kIAddMem:
        case MOp::kISubMem:
        case MOp::kIMulMem:
          check_access(i, st, inst.mem, 8, false, false);
          break;
        case MOp::kIStore:
          check_access(i, st, inst.mem, 8, true, false);
          break;
        case MOp::kVLoad:
          check_access(i, st, inst.mem, 8 * inst.width, false, false);
          break;
        case MOp::kVBroadcast:
        case MOp::kFLoad:
          check_access(i, st, inst.mem, 8, false, false);
          break;
        case MOp::kVStore:
          check_access(i, st, inst.mem, 8 * inst.width, true, false);
          break;
        case MOp::kFStore:
          check_access(i, st, inst.mem, 8, true, false);
          break;
        case MOp::kPrefetch:
          // A prefetch cannot fault; it is checked (with slack) so that a
          // runaway prefetch cursor is still surfaced, at warning severity.
          check_access(i, st, inst.mem, 64, false, true);
          break;
        default:
          break;
      }
    }
    std::string why;
    if (!exec_int(i, st, &why)) bail(i, why);
  }

  // ---- loop protocol -------------------------------------------------------

  bool analyze_loop(std::size_t head, std::size_t latch, IntState& st,
                    bool check) {
    std::size_t where = head;
    std::string why;
    const std::optional<LoopShape> shape =
        loop_shape(head, latch, st, &where, &why);
    if (!shape) {
      bail(where, why);
      return false;
    }

    // Pass A: one abstract iteration from the entry state, checks off, to
    // discover every location's per-iteration delta.
    IntState s1 = st;
    if (!analyze_span(head + 1, latch, s1, /*check=*/false)) return false;

    // The bound must be loop-invariant.
    const bool bound_ok = bound_invariant(*shape, s1);

    // Counter step: constant and positive.
    const std::optional<std::int64_t> step = loop_step(*shape, s1, &where, &why);
    if (!step) {
      bail(where, why);
      return false;
    }

    // The counter symbol: value of the counter location at body entry.
    const std::string ct = make_counter_symbol(*shape, *step, bound_ok);

    if (check) {
      IntState body = st;
      apply(body, inducted(*shape, st, s1, *step, Poly::variable(ct)));
      if (!analyze_span(head + 1, latch, body, /*check=*/true)) return false;
    }

    // Exit: everything inductive is re-expressed in a fresh exit symbol so
    // remainder loops keep the cursor/counter correlation.
    const std::string ex = make_exit_symbol(*shape, *step, bound_ok);
    apply(st, inducted(*shape, st, s1, *step, Poly::variable(ex)));
    return true;
  }

  // ---- structured walk -----------------------------------------------------

  bool analyze_span(std::size_t first, std::size_t last, IntState& st,
                    bool check) {
    std::size_t i = first;
    while (i < last && !bailed_) {
      const MInst& inst = insts_[i];
      if (inst.op == MOp::kLabel) {
        const std::size_t latch = find_latch(i, last);
        if (latch != kNoneIdx) {
          if (!analyze_loop(i, latch, st, check)) return false;
          i = latch + 1;
          continue;
        }
        ++i;
        continue;
      }
      if (is_cond_jump(inst.op)) {
        // Forward guards fall through here; the loop protocol accounts for
        // the skip path through the exit-symbol parametrization. A backward
        // jump at this point was not matched as a loop latch.
        auto target_is_forward = [&] {
          for (std::size_t j = i + 1; j < insts_.size(); ++j)
            if (insts_[j].op == MOp::kLabel && insts_[j].label == inst.label)
              return true;
          return false;
        };
        if (!target_is_forward()) {
          bail(i, "backward jump outside the counted-loop idiom");
          return false;
        }
        ++i;
        continue;
      }
      if (inst.op == MOp::kJmp) {
        bail(i, "unconditional jump");
        return false;
      }
      exec(i, st, check);
      ++i;
    }
    return !bailed_;
  }
};

}  // namespace

void run_bounds_check(const MInstList& insts, const KernelContract& contract,
                      const BoundsOptions& opts, AnalysisReport& report) {
  BoundsEngine(insts, contract, opts, report).run();
}

}  // namespace augem::analysis
