#include "runtime/key.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace augem::runtime {

using frontend::KernelKind;

const char* shape_class_name(ShapeClass s) {
  switch (s) {
    case ShapeClass::kSmall: return "small";
    case ShapeClass::kSkinny: return "skinny";
    case ShapeClass::kLarge: return "large";
  }
  return "?";
}

std::optional<ShapeClass> parse_shape_class(const std::string& name) {
  for (ShapeClass s :
       {ShapeClass::kSmall, ShapeClass::kSkinny, ShapeClass::kLarge})
    if (name == shape_class_name(s)) return s;
  return std::nullopt;
}

ShapeClass classify_gemm_shape(std::int64_t m, std::int64_t n,
                               std::int64_t k) {
  m = std::max<std::int64_t>(m, 1);
  n = std::max<std::int64_t>(n, 1);
  k = std::max<std::int64_t>(k, 1);
  // Small: the whole problem fits in L1/L2-class footprints — one 64³
  // GEMM's worth of work or less. Per-call overhead (packing setup, pool
  // wake) dominates here, so small problems get their own tuned variant
  // and a serial macro loop.
  if (m * n * k <= 64 * 64 * 64) return ShapeClass::kSmall;
  // Skinny: one C extent is starved relative to the other (panel-shaped
  // output) — the register tile cannot be square-ish and the B panel
  // reuse the large-regime tuning assumes is absent.
  const std::int64_t lo = std::min(m, n), hi = std::max(m, n);
  if (lo < 32 || lo * 8 <= hi) return ShapeClass::kSkinny;
  return ShapeClass::kLarge;
}

ShapeClass classify_vector_shape(std::int64_t n) {
  // 4096 doubles = 32 KB, the L1 capacity of the paper's testbeds: below
  // it a call is latency/overhead bound, above it stream bound.
  return n <= 4096 ? ShapeClass::kSmall : ShapeClass::kLarge;
}

std::optional<KernelKind> parse_kernel_kind(const std::string& name) {
  for (KernelKind k : {KernelKind::kGemm, KernelKind::kGemv, KernelKind::kAxpy,
                       KernelKind::kDot, KernelKind::kScal})
    if (name == frontend::kernel_kind_name(k)) return k;
  return std::nullopt;
}

std::optional<Isa> parse_isa(const std::string& name) {
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4})
    if (name == isa_name(isa)) return isa;
  return std::nullopt;
}

std::string KernelKey::to_string() const {
  std::ostringstream os;
  os << frontend::kernel_kind_name(kind);
  if (small) os << small->to_string();
  os << "/" << isa_name(isa) << "/" << dtype << "/" << shape_class_name(shape)
     << "@" << cpu;
  return os.str();
}

Isa select_dispatch_isa(const CpuArch& arch) {
  if (arch.has_fma3) return Isa::kFma3;
  if (arch.has_avx) return Isa::kAvx;
  return Isa::kSse2;
}

KernelKey host_kernel_key(KernelKind kind, ShapeClass shape) {
  KernelKey key;
  key.cpu = cpu_signature(host_arch());
  key.kind = kind;
  key.isa = select_dispatch_isa(host_arch());
  key.shape = shape;
  return key;
}

}  // namespace augem::runtime
