#include "runtime/codecache.hpp"

#include <atomic>

#include "support/error.hpp"

namespace augem::runtime {

namespace {

/// Distinguishes an entry from its same-key successor after eviction, so
/// failure cleanup never erases an entry a later builder installed.
std::uint64_t next_entry_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CodeCache::CodeCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  const std::size_t n = std::max<std::size_t>(shards, 1);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

CodeCache::Shard& CodeCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const CodeCache::Shard& CodeCache::shard_for(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::size_t CodeCache::shard_capacity() const {
  // Per-shard bound so a shard never holds the global capacity alone; at
  // least one entry per shard so every key stays cachable.
  return std::max<std::size_t>(1, capacity_ / shards_.size());
}

CodeCache::KernelPtr CodeCache::get_or_build(const KernelKey& key,
                                             const Builder& builder) {
  const std::string k = key.to_string();
  Shard& shard = shard_for(k);

  std::shared_future<KernelPtr> future;
  std::promise<KernelPtr> promise;
  std::uint64_t my_id = 0;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(k);
    if (it != shard.map.end()) {
      ++shard.stats.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      future = it->second.future;
    } else {
      ++shard.stats.misses;
      build_here = true;
      future = promise.get_future().share();
      shard.lru.push_front(k);
      Shard::Entry entry;
      entry.future = future;
      entry.lru_pos = shard.lru.begin();
      entry.id = my_id = next_entry_id();
      shard.map.emplace(k, std::move(entry));
      while (shard.map.size() > shard_capacity()) {
        const std::string victim = shard.lru.back();
        if (victim == k) break;  // never evict the entry being installed
        shard.lru.pop_back();
        shard.map.erase(victim);
        ++shard.stats.evictions;
      }
    }
  }

  if (build_here) {
    // The build runs outside the shard lock: other keys in this shard stay
    // resolvable, and concurrent requesters of *this* key block on the
    // future instead of redundantly assembling.
    try {
      KernelPtr built = builder();
      AUGEM_CHECK(built != nullptr, "code-cache builder returned null");
      promise.set_value(std::move(built));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.map.find(k);
      if (it != shard.map.end() && it->second.id == my_id) {
        shard.lru.erase(it->second.lru_pos);
        shard.map.erase(it);
      }
      // Fall through: future.get() below rethrows for this caller too.
    }
  }
  return future.get();
}

CodeCache::KernelPtr CodeCache::lookup(const KernelKey& key) {
  const std::string k = key.to_string();
  Shard& shard = shard_for(k);
  std::shared_future<KernelPtr> future;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(k);
    if (it == shard.map.end()) return nullptr;
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    future = it->second.future;
  }
  return future.get();
}

bool CodeCache::erase(const KernelKey& key) {
  const std::string k = key.to_string();
  Shard& shard = shard_for(k);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(k);
  if (it == shard.map.end()) return false;
  shard.lru.erase(it->second.lru_pos);
  shard.map.erase(it);
  return true;
}

CacheStats CodeCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

std::size_t CodeCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->map.size();
  }
  return n;
}

void CodeCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
    shard->lru.clear();
  }
}

std::vector<std::string> CodeCache::resident_keys() const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    keys.insert(keys.end(), shard->lru.begin(), shard->lru.end());
  }
  return keys;
}

}  // namespace augem::runtime
