#include "runtime/runtime_blas.hpp"

#include <algorithm>

#include "augem/augem_blas.hpp"
#include "blas/driver.hpp"
#include "blas/level3.hpp"
#include "support/threadpool.hpp"

namespace augem::runtime {

namespace {

using blas::at;
using blas::index_t;
using blas::Trans;
using frontend::KernelKind;

class RuntimeBlas final : public blas::Blas {
 public:
  explicit RuntimeBlas(KernelRuntime& rt) : rt_(rt) {}

  std::string name() const override { return "AUGEM-runtime"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    if (m <= 0 || n <= 0) return;
    if (k <= 0 || alpha == 0.0) {
      // Degenerate update: only the beta scaling of C happens; resolving
      // (possibly tuning) a kernel for it would be absurd.
      for (index_t j = 0; j < n; ++j) blas::beta_scale(&at(c, ldc, 0, j), m, beta);
      return;
    }
    const auto kernel = rt_.resolve(KernelKind::kGemm,
                                    classify_gemm_shape(m, n, k));
    blas::blocked_gemm(
        ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
        gemm_context_for_tile(m, n, k, kernel->nr),
        padded_gemm_block_kernel(kernel->fn<KernelSet::GemmFn>(), kernel->mr,
                                 kernel->nr));
  }

  void gemm_batch_strided(index_t m, index_t n, index_t k, double alpha,
                          const double* a, index_t lda, index_t stride_a,
                          const double* b, index_t ldb, index_t stride_b,
                          double beta, double* c, index_t ldc,
                          index_t stride_c, index_t batch, const double* bias,
                          index_t stride_bias, bool relu) override {
    if (m <= 0 || n <= 0 || batch <= 0) return;
    if (k <= 0 || alpha == 0.0) {
      // Degenerate update (no depth, or alpha == 0 meaning A/B are never
      // read — netlib semantics, so no 0 * Inf = NaN from the operands).
      // The reference loop applies the beta/bias/relu epilogue; resolving
      // a kernel for it would be absurd.
      Blas::gemm_batch_strided(m, n, k, alpha, a, lda, stride_a, b, ldb,
                               stride_b, beta, c, ldc, stride_c, batch, bias,
                               stride_bias, relu);
      return;
    }
    if (!use_small_gemm_kernel(m, n, k)) {
      // Above the small-kernel window the blocked path wins; run it per
      // instance (it parallelizes internally) and fuse the epilogue after.
      for (index_t p = 0; p < batch; ++p) {
        gemm(Trans::kNo, Trans::kNo, m, n, k, alpha, a + p * stride_a, lda,
             b + p * stride_b, ldb, beta, c + p * stride_c, ldc);
        apply_epilogue(m, n, c + p * stride_c, ldc,
                       bias == nullptr ? nullptr : bias + p * stride_bias,
                       relu);
      }
      return;
    }

    // Dispatch is resolved ONCE per (shape, epilogue) key; the batch then
    // streams through the cached kernel pointer with no per-instance
    // classification, cache probe, or packing.
    frontend::SmallGemmSpec spec;
    spec.m = static_cast<int>(m);
    spec.n = static_cast<int>(n);
    spec.k = static_cast<int>(k);
    const bool zero_first = beta == 0.0;
    spec.epilogue.scale = !(alpha == 1.0 && (beta == 1.0 || zero_first));
    spec.epilogue.bias = bias != nullptr;
    spec.epilogue.relu = relu;
    const auto kernel = rt_.resolve_small(spec);
    auto* fn = kernel->fn<SmallGemmFn>();

    auto run_instance = [&](index_t p) {
      const double* ap = a + p * stride_a;
      const double* bp = b + p * stride_b;
      double* cp = c + p * stride_c;
      const double* biasp = bias == nullptr ? nullptr : bias + p * stride_bias;
      if (zero_first)
        // beta == 0 overwrite semantics: the kernel always reads C, so
        // clear the instance first (0 * 0 is a clean 0 for the scale form).
        for (index_t j = 0; j < n; ++j)
          std::fill_n(&at(cp, ldc, 0, j), m, 0.0);
      fn(ap, lda, bp, ldb, cp, ldc, biasp, alpha, beta);
    };

    // Partition instances across the pool; below a handful of instances the
    // submit handshake costs more than it saves.
    ThreadPool& pool = ThreadPool::global();
    if (batch < 4 * pool.num_threads() || pool.num_threads() == 1) {
      for (index_t p = 0; p < batch; ++p) run_instance(p);
      return;
    }
    const int nt = pool.num_threads();
    pool.run([&](int tid) {
      const index_t lo = batch * tid / nt;
      const index_t hi = batch * (tid + 1) / nt;
      for (index_t p = lo; p < hi; ++p) run_instance(p);
    });
  }

  // ---- Level-3 casting routines, served through the same dispatch -------
  //
  // Each resolves ONE gemm kernel keyed by the routine's bulk-GEMM shape
  // (the panels all run through that kernel) and hands it to the prepacked
  // Level-3 engine, so the whole decomposition shares packed panels and the
  // threaded driver (docs/runtime.md).

  void symm(blas::Side side, blas::Uplo uplo, index_t m, index_t n,
            double alpha, const double* a, index_t lda, const double* b,
            index_t ldb, double beta, double* c, index_t ldc) override {
    if (m <= 0 || n <= 0) return;
    if (alpha == 0.0) {  // beta update only; no kernel to resolve
      for (index_t j = 0; j < n; ++j)
        blas::beta_scale(&at(c, ldc, 0, j), m, beta);
      return;
    }
    const index_t ka = side == blas::Side::kLeft ? m : n;
    blas::level3_symm(level3_config(m, n, ka), side, uplo, m, n, alpha, a,
                      lda, b, ldb, beta, c, ldc);
  }

  void syrk(blas::Uplo uplo, blas::Trans trans, index_t n, index_t k,
            double alpha, const double* a, index_t lda, double beta, double* c,
            index_t ldc) override {
    if (n <= 0) return;
    if (alpha == 0.0 || k <= 0) {
      scale_triangle(uplo, n, beta, c, ldc);
      return;
    }
    blas::level3_syrk(level3_config(n, n, k), uplo, trans, n, k, alpha, a,
                      lda, beta, c, ldc);
  }

  void syr2k(blas::Uplo uplo, blas::Trans trans, index_t n, index_t k,
             double alpha, const double* a, index_t lda, const double* b,
             index_t ldb, double beta, double* c, index_t ldc) override {
    if (n <= 0) return;
    if (alpha == 0.0 || k <= 0) {
      scale_triangle(uplo, n, beta, c, ldc);
      return;
    }
    blas::level3_syr2k(level3_config(n, n, k), uplo, trans, n, k, alpha, a,
                       lda, b, ldb, beta, c, ldc);
  }

  void trmm(blas::Side side, blas::Uplo uplo, blas::Trans trans, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override {
    if (m <= 0 || n <= 0) return;
    if (alpha == 0.0) {  // B := 0 without reading A or resolving a kernel
      for (index_t j = 0; j < n; ++j)
        blas::beta_scale(&at(b, ldb, 0, j), m, 0.0);
      return;
    }
    const index_t ka = side == blas::Side::kLeft ? m : n;
    blas::level3_trmm(level3_config(m, n, ka), side, uplo, trans, m, n, alpha,
                      a, lda, b, ldb);
  }

  void trsm(blas::Side side, blas::Uplo uplo, blas::Trans trans, index_t m,
            index_t n, double alpha, const double* a, index_t lda, double* b,
            index_t ldb) override {
    if (m <= 0 || n <= 0) return;
    if (alpha == 0.0) {
      for (index_t j = 0; j < n; ++j)
        blas::beta_scale(&at(b, ldb, 0, j), m, 0.0);
      return;
    }
    const index_t ka = side == blas::Side::kLeft ? m : n;
    blas::level3_trsm(level3_config(m, n, ka), side, uplo, trans, m, n, alpha,
                      a, lda, b, ldb);
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    if (m <= 0) return;
    if (n <= 0 || alpha == 0.0) {
      blas::beta_scale(y, m, beta);
      return;
    }
    const auto kernel =
        rt_.resolve(KernelKind::kGemv, classify_vector_shape(m));
    gemv_with_blas_semantics(kernel->fn<KernelSet::GemvFn>(), m, n, alpha, a,
                             lda, x, beta, y);
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    if (n <= 0 || alpha == 0.0) return;
    const auto kernel =
        rt_.resolve(KernelKind::kAxpy, classify_vector_shape(n));
    axpy_with_blas_semantics(kernel->fn<KernelSet::AxpyFn>(), n, alpha, x, y);
  }

  double dot(index_t n, const double* x, const double* y) override {
    if (n <= 0) return 0.0;
    const auto kernel = rt_.resolve(KernelKind::kDot, classify_vector_shape(n));
    return dot_with_blas_semantics(kernel->fn<KernelSet::DotFn>(), n, x, y);
  }

  void scal(index_t n, double alpha, double* x) override {
    if (n <= 0) return;
    if (alpha == 0.0) {
      scal_with_blas_semantics(nullptr_scal(), n, alpha, x);  // zero fill only
      return;
    }
    const auto kernel =
        rt_.resolve(KernelKind::kScal, classify_vector_shape(n));
    scal_with_blas_semantics(kernel->fn<KernelSet::ScalFn>(), n, alpha, x);
  }

 private:
  /// Post-GEMM bias/relu pass for batch instances served by the blocked
  /// path (the small kernels fuse this into their stores instead).
  static void apply_epilogue(index_t m, index_t n, double* c, index_t ldc,
                             const double* bias, bool relu) {
    if (bias == nullptr && !relu) return;
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        double v = at(c, ldc, i, j);
        if (bias != nullptr) v += bias[i];
        if (relu) v = v > 0.0 ? v : 0.0;  // MAXPD: NaN clamps to 0
        at(c, ldc, i, j) = v;
      }
    }
  }

  /// scal's alpha == 0 path never calls the kernel; passing a null fn
  /// keeps the zero-fill semantics without resolving one.
  static KernelSet::ScalFn* nullptr_scal() { return nullptr; }

  /// beta_scale over the stored triangle of C (SYRK/SYR2K degenerate path).
  static void scale_triangle(blas::Uplo uplo, index_t n, double beta,
                             double* c, index_t ldc) {
    for (index_t j = 0; j < n; ++j) {
      if (uplo == blas::Uplo::kLower)
        blas::beta_scale(&at(c, ldc, j, j), n - j, beta);
      else
        blas::beta_scale(&at(c, ldc, 0, j), j + 1, beta);
    }
  }

  /// Level-3 engine configuration for a routine whose bulk GEMM panels have
  /// shape (m, n, k): one kernel resolved through the cache with the
  /// shape-matched tuning key, wrapped for ragged edges, on the shape-aware
  /// (and jr-granule-aligned) threading context.
  blas::Level3Config level3_config(index_t m, index_t n, index_t k) {
    const auto kernel =
        rt_.resolve(KernelKind::kGemm, classify_gemm_shape(m, n, k));
    blas::Level3Config cfg;
    cfg.ctx = gemm_context_for_tile(m, n, k, kernel->nr);
    cfg.kernel = padded_gemm_block_kernel(kernel->fn<KernelSet::GemmFn>(),
                                          kernel->mr, kernel->nr);
    cfg.block = level3_block();
    return cfg;
  }

  /// Shape-aware context with the jr split kept on the resolved kernel's
  /// column-tile multiple (the bit-exactness condition of the threaded
  /// driver, see blas/driver.hpp).
  static blas::GemmContext gemm_context_for_tile(index_t m, index_t n,
                                                 index_t k, int nr) {
    blas::GemmContext ctx = blas::gemm_context_for_shape(host_arch(), m, n, k);
    ctx.jr_granule = std::max<index_t>(8, nr);
    return ctx;
  }

  KernelRuntime& rt_;
};

}  // namespace

std::unique_ptr<blas::Blas> make_runtime_blas() {
  return make_runtime_blas(KernelRuntime::global());
}

std::unique_ptr<blas::Blas> make_runtime_blas(KernelRuntime& runtime) {
  return std::make_unique<RuntimeBlas>(runtime);
}

}  // namespace augem::runtime
