#include "runtime/runtime_blas.hpp"

#include "augem/augem_blas.hpp"
#include "blas/driver.hpp"

namespace augem::runtime {

namespace {

using blas::at;
using blas::index_t;
using blas::Trans;
using frontend::KernelKind;

class RuntimeBlas final : public blas::Blas {
 public:
  explicit RuntimeBlas(KernelRuntime& rt) : rt_(rt) {}

  std::string name() const override { return "AUGEM-runtime"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    if (m <= 0 || n <= 0) return;
    if (k <= 0 || alpha == 0.0) {
      // Degenerate update: only the beta scaling of C happens; resolving
      // (possibly tuning) a kernel for it would be absurd.
      for (index_t j = 0; j < n; ++j) blas::beta_scale(&at(c, ldc, 0, j), m, beta);
      return;
    }
    const auto kernel = rt_.resolve(KernelKind::kGemm,
                                    classify_gemm_shape(m, n, k));
    blas::blocked_gemm(
        ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
        gemm_context_for_tile(m, n, k, kernel->nr),
        padded_gemm_block_kernel(kernel->fn<KernelSet::GemmFn>(), kernel->mr,
                                 kernel->nr));
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    if (m <= 0) return;
    if (n <= 0 || alpha == 0.0) {
      blas::beta_scale(y, m, beta);
      return;
    }
    const auto kernel =
        rt_.resolve(KernelKind::kGemv, classify_vector_shape(m));
    gemv_with_blas_semantics(kernel->fn<KernelSet::GemvFn>(), m, n, alpha, a,
                             lda, x, beta, y);
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    if (n <= 0 || alpha == 0.0) return;
    const auto kernel =
        rt_.resolve(KernelKind::kAxpy, classify_vector_shape(n));
    axpy_with_blas_semantics(kernel->fn<KernelSet::AxpyFn>(), n, alpha, x, y);
  }

  double dot(index_t n, const double* x, const double* y) override {
    if (n <= 0) return 0.0;
    const auto kernel = rt_.resolve(KernelKind::kDot, classify_vector_shape(n));
    return dot_with_blas_semantics(kernel->fn<KernelSet::DotFn>(), n, x, y);
  }

  void scal(index_t n, double alpha, double* x) override {
    if (n <= 0) return;
    if (alpha == 0.0) {
      scal_with_blas_semantics(nullptr_scal(), n, alpha, x);  // zero fill only
      return;
    }
    const auto kernel =
        rt_.resolve(KernelKind::kScal, classify_vector_shape(n));
    scal_with_blas_semantics(kernel->fn<KernelSet::ScalFn>(), n, alpha, x);
  }

 private:
  /// scal's alpha == 0 path never calls the kernel; passing a null fn
  /// keeps the zero-fill semantics without resolving one.
  static KernelSet::ScalFn* nullptr_scal() { return nullptr; }

  /// Shape-aware context with the jr split kept on the resolved kernel's
  /// column-tile multiple (the bit-exactness condition of the threaded
  /// driver, see blas/driver.hpp).
  static blas::GemmContext gemm_context_for_tile(index_t m, index_t n,
                                                 index_t k, int nr) {
    blas::GemmContext ctx = blas::gemm_context_for_shape(host_arch(), m, n, k);
    ctx.jr_granule = std::max<index_t>(8, nr);
    return ctx;
  }

  KernelRuntime& rt_;
};

}  // namespace

std::unique_ptr<blas::Blas> make_runtime_blas() {
  return make_runtime_blas(KernelRuntime::global());
}

std::unique_ptr<blas::Blas> make_runtime_blas(KernelRuntime& runtime) {
  return std::make_unique<RuntimeBlas>(runtime);
}

}  // namespace augem::runtime
