#include "runtime/dispatch.hpp"

#include "augem/augem.hpp"
#include "jit/jit.hpp"
#include "service/client.hpp"
#include "support/error.hpp"

namespace augem::runtime {

using frontend::KernelKind;

tuning::TuneWorkload tune_workload_for(KernelKind kind, ShapeClass shape) {
  tuning::TuneWorkload w;
  if (kind == KernelKind::kGemm) {
    switch (shape) {
      case ShapeClass::kSmall:
        // One L1-resident block: the regime where loop overhead and tile
        // edge handling dominate.
        w.mc = 32;
        w.nc = 32;
        w.kc = 64;
        break;
      case ShapeClass::kSkinny:
        // Panel-shaped: deep k, starved n — B-element reuse is minimal.
        w.mc = 128;
        w.nc = 32;
        w.kc = 256;
        break;
      case ShapeClass::kLarge:
        // The classic cache-blocked regime (the tuner's default).
        w.mc = 128;
        w.nc = 128;
        w.kc = 256;
        break;
    }
  } else {
    w.vec_len = shape == ShapeClass::kSmall ? 2048 : 32768;
  }
  return w;
}

bool use_small_gemm_kernel(std::int64_t m, std::int64_t n, std::int64_t k) {
  // Fully unrolled code: the instruction count grows with m*n*k, so the
  // window is capped where the straight-line body would stop fitting the
  // uop cache / L1I and the blocked kernel catches up anyway.
  return m >= 1 && m <= 32 && n >= 1 && n <= 32 && k >= 1 && k <= 32;
}

KernelRuntime::KernelRuntime(RuntimeConfig config)
    : config_(std::move(config)),
      isa_(select_dispatch_isa(host_arch())),
      cache_(config_.code_cache_capacity, config_.code_cache_shards) {
  if (config_.use_persistent)
    db_ = std::make_unique<TuningDatabase>(config_.cache_dir);
}

KernelRuntime::~KernelRuntime() = default;

KernelRuntime& KernelRuntime::global() {
  static KernelRuntime runtime{RuntimeConfig{}};
  return runtime;
}

RuntimeCounters KernelRuntime::counters() const {
  RuntimeCounters c;
  c.db_hits = db_hits_.load(std::memory_order_relaxed);
  c.db_misses = db_misses_.load(std::memory_order_relaxed);
  c.tuner_runs = tuner_runs_.load(std::memory_order_relaxed);
  c.builds = builds_.load(std::memory_order_relaxed);
  c.daemon_hits = daemon_hits_.load(std::memory_order_relaxed);
  c.daemon_misses = daemon_misses_.load(std::memory_order_relaxed);
  c.artifact_loads = artifact_loads_.load(std::memory_order_relaxed);
  return c;
}

bool KernelRuntime::invalidate(const KernelKey& key) {
  return cache_.erase(key);
}

service::ServiceClient* KernelRuntime::daemon_client() {
  if (!config_.use_daemon) return nullptr;
  std::call_once(client_once_, [this] {
    service::ClientOptions o;
    o.cache_dir = config_.cache_dir;
    o.autospawn = service::want_daemon_env();
    client_ = service::ServiceClient::try_connect(std::move(o));
  });
  return client_ != nullptr && client_->healthy() ? client_.get() : nullptr;
}

TunedVariant KernelRuntime::tune_variant_locally(const KernelKey& key) {
  TunedVariant v;
  if (key.small) {
    // Small-GEMM variants skip the empirical tuner: with every extent a
    // compile-time constant the register tile follows from the shape, and
    // the batched serving path cannot afford a search per (shape, epilogue).
    // mflops 0 marks the entry as untimed.
    const GenerateOptions o = default_small_gemm_options(*key.small, key.isa);
    v.params = o.params;
    v.strategy = o.config.strategy;
    v.mflops = 0.0;
  } else if (config_.tune_on_miss) {
    tuner_runs_.fetch_add(1, std::memory_order_relaxed);
    const tuning::TuneWorkload w = config_.workload_override
                                       ? *config_.workload_override
                                       : tune_workload_for(key.kind, key.shape);
    const tuning::TuneResult r =
        key.kind == KernelKind::kGemm
            ? tuning::tune_gemm(key.isa, w)
            : tuning::tune_level1(key.kind, key.isa, w);
    v = TunedVariant::from_tune_result(r);
  } else {
    // No search: the per-ISA default configuration (what an untuned
    // KernelSet would build). mflops 0 marks the entry as untimed.
    const GenerateOptions o = default_options(key.kind, key.isa);
    v.params = o.params;
    v.strategy = o.config.strategy;
    v.mflops = 0.0;
  }
  if (db_ != nullptr) db_->store(key, v);
  // A result tuned while no daemon answered is still worth sharing: offer
  // it, and let the daemon keep whichever entry scores better.
  if (auto* client = daemon_client()) client->publish(key, v);
  return v;
}

std::shared_ptr<const CachedKernel> KernelRuntime::build_kernel(
    const KernelKey& key) {
  TunedVariant variant;
  bool have_variant = false;

  // The machine's tuning daemon first: it is the single writer of the
  // shared database, and its published artifact lets this process skip the
  // whole tune+generate+assemble pipeline. Every daemon-side failure —
  // none running, protocol mismatch, key not servable, death mid-request —
  // lands in the `else` and the in-process path below takes over.
  if (auto* client = daemon_client()) {
    if (const auto entry = client->resolve(key)) {
      daemon_hits_.fetch_add(1, std::memory_order_relaxed);
      if (!entry->so_path.empty() && !entry->symbol.empty()) {
        try {
          auto kernel = std::make_shared<CachedKernel>();
          kernel->key = key;
          kernel->variant = entry->variant;
          kernel->mr = entry->mr;
          kernel->nr = entry->nr;
          kernel->symbol = entry->symbol;
          kernel->module = std::make_shared<jit::CompiledModule>(
              jit::load_shared_object(entry->so_path));
          kernel->entry = kernel->module->raw_symbol(entry->symbol);
          artifact_loads_.fetch_add(1, std::memory_order_relaxed);
          return kernel;  // no local build: one assembly per key machine-wide
        } catch (const Error&) {
          // Artifact unreadable (e.g. swept by a cache cleanup): build
          // locally from the served variant.
        }
      }
      variant = entry->variant;
      have_variant = true;
      // Deliberately NOT stored in the local database view: the daemon is
      // the one writer of the shared file.
    } else {
      daemon_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!have_variant && db_ != nullptr && db_->lookup(key, variant)) {
    db_hits_.fetch_add(1, std::memory_order_relaxed);
    have_variant = true;
  }
  if (!have_variant) {
    db_misses_.fetch_add(1, std::memory_order_relaxed);
    variant = tune_variant_locally(key);
  }
  builds_.fetch_add(1, std::memory_order_relaxed);

  // Regeneration goes through the same pipeline as direct use of the
  // public API: generate_kernel attaches the calling contract and demands
  // a clean mirlint analysis (memory-safety proofs included) before any
  // text is assembled.
  GenerateOptions options = key.small
                                ? default_small_gemm_options(*key.small, key.isa)
                                : default_options(key.kind, key.isa);
  options.params = variant.params;
  options.config.isa = key.isa;
  options.config.strategy = variant.strategy;
  const asmgen::GeneratedKernel gen =
      key.small ? generate_small_gemm_kernel(*key.small, options)
                : generate_kernel(key.kind, options);

  auto kernel = std::make_shared<CachedKernel>();
  kernel->key = key;
  kernel->variant = variant;
  if (key.kind == KernelKind::kGemm) {
    kernel->mr = variant.params.mr;
    kernel->nr = variant.params.nr;
  }
  kernel->symbol = gen.name;
  kernel->module =
      std::make_shared<jit::CompiledModule>(jit::assemble(gen.asm_text));
  kernel->entry = kernel->module->raw_symbol(gen.name);
  return kernel;
}

std::shared_ptr<const CachedKernel> KernelRuntime::resolve(KernelKind kind,
                                                           ShapeClass shape) {
  KernelKey key = host_kernel_key(kind, shape);
  key.isa = isa_;
  return cache_.get_or_build(key, [&] { return build_kernel(key); });
}

std::shared_ptr<const CachedKernel> KernelRuntime::resolve_small(
    const frontend::SmallGemmSpec& spec) {
  KernelKey key = host_kernel_key(KernelKind::kGemm, ShapeClass::kSmall);
  key.isa = isa_;
  key.small = spec;
  return cache_.get_or_build(key, [&] { return build_kernel(key); });
}

}  // namespace augem::runtime
