#pragma once
// The dispatching BLAS: blas::Blas entry points (dgemm/dgemv/daxpy/ddot/
// dscal and the Level-3 defaults on top of them) served by the kernel
// runtime. Every call classifies its problem shape, resolves the tuned
// kernel for (host CPU, kind, ISA, shape class) through the code cache /
// tuning database / tuner pipeline, and runs the blocked driver with
// shape-aware blocking — so a process's first call pays generation once
// and every later call (and every later *process* sharing the cache
// directory) serves resident code.

#include <memory>

#include "blas/blas.hpp"
#include "runtime/dispatch.hpp"

namespace augem::runtime {

/// A Blas on the process-global KernelRuntime (the transparent serving
/// configuration: persistent database honoring AUGEM_CACHE_DIR /
/// AUGEM_DISABLE_TUNE_CACHE, tuner on cold miss).
std::unique_ptr<blas::Blas> make_runtime_blas();

/// A Blas on an explicit runtime (tests, benchmarks, tools). The runtime
/// must outlive the returned Blas.
std::unique_ptr<blas::Blas> make_runtime_blas(KernelRuntime& runtime);

}  // namespace augem::runtime
