#include "runtime/tunedb.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "runtime/json.hpp"
#include "support/error.hpp"

namespace augem::runtime {

TunedVariant TunedVariant::from_tune_result(const tuning::TuneResult& r) {
  TunedVariant v;
  v.params = r.params;
  v.strategy = r.config.strategy;
  v.mflops = r.mflops;
  v.search = r.search;
  v.trial_log = r.trials;
  return v;
}

tuning::TuneResult TunedVariant::to_tune_result(const KernelKey& key) const {
  tuning::TuneResult r;
  r.kind = key.kind;
  r.params = params;
  r.config.isa = key.isa;
  r.config.strategy = strategy;
  r.mflops = mflops;
  if (search) r.search = *search;
  r.trials = trial_log;
  return r;
}

std::string default_cache_dir() {
  if (const char* dir = std::getenv("AUGEM_CACHE_DIR");
      dir != nullptr && dir[0] != '\0')
    return dir;
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0')
    return std::string(home) + "/.cache/augem";
  return "/tmp/augem-cache";
}

bool tune_cache_disabled() {
  const char* v = std::getenv("AUGEM_DISABLE_TUNE_CACHE");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

namespace {

/// mkdir -p: every component, existing directories tolerated.
void make_dirs(const std::string& path) {
  std::string partial;
  std::istringstream is(path);
  std::string component;
  if (!path.empty() && path[0] == '/') partial = "/";
  while (std::getline(is, component, '/')) {
    if (component.empty()) continue;
    partial += component;
    partial += '/';
    ::mkdir(partial.c_str(), 0755);  // EEXIST is fine
  }
}

}  // namespace

Json encode_kernel_key(const KernelKey& key) {
  Json rec = Json::object();
  rec["cpu"] = Json(key.cpu);
  rec["kind"] = Json(frontend::kernel_kind_name(key.kind));
  rec["isa"] = Json(isa_name(key.isa));
  rec["dtype"] = Json(key.dtype);
  rec["shape"] = Json(shape_class_name(key.shape));
  if (key.small) {
    rec["small_m"] = Json(key.small->m);
    rec["small_n"] = Json(key.small->n);
    rec["small_k"] = Json(key.small->k);
    rec["epi_scale"] = Json(key.small->epilogue.scale);
    rec["epi_bias"] = Json(key.small->epilogue.bias);
    rec["epi_relu"] = Json(key.small->epilogue.relu);
  }
  return rec;
}

std::optional<KernelKey> decode_kernel_key(const Json& rec) {
  if (!rec.is_object()) return std::nullopt;
  const auto cpu = rec.string("cpu");
  const auto kind_name = rec.string("kind");
  const auto isa = rec.string("isa");
  const auto dtype = rec.string("dtype");
  const auto shape_name = rec.string("shape");
  if (!cpu || !kind_name || !isa || !dtype || !shape_name) return std::nullopt;

  KernelKey key;
  key.cpu = *cpu;
  key.dtype = *dtype;
  const auto kind = parse_kernel_kind(*kind_name);
  const auto parsed_isa = parse_isa(*isa);
  const auto shape = parse_shape_class(*shape_name);
  if (!kind || !parsed_isa || !shape) return std::nullopt;
  key.kind = *kind;
  key.isa = *parsed_isa;
  key.shape = *shape;

  // Optional small-GEMM spec: the three baked-in extents plus the fused
  // epilogue's feature flags. All-or-nothing — a record with only some of
  // the extent fields is corrupt.
  const auto sm = rec.number("small_m");
  const auto sn = rec.number("small_n");
  const auto sk = rec.number("small_k");
  if (sm || sn || sk) {
    if (!sm || !sn || !sk) return std::nullopt;
    frontend::SmallGemmSpec spec;
    spec.m = static_cast<int>(*sm);
    spec.n = static_cast<int>(*sn);
    spec.k = static_cast<int>(*sk);
    if (spec.m < 1 || spec.n < 1 || spec.k < 1 || spec.m > 1024 ||
        spec.n > 1024 || spec.k > 1024)
      return std::nullopt;
    if (const auto b = rec.boolean("epi_scale")) spec.epilogue.scale = *b;
    if (const auto b = rec.boolean("epi_bias")) spec.epilogue.bias = *b;
    if (const auto b = rec.boolean("epi_relu")) spec.epilogue.relu = *b;
    key.small = spec;
  }
  return key;
}

Json encode_tuned_variant(const TunedVariant& v) {
  Json rec = Json::object();
  rec["mr"] = Json(v.params.mr);
  rec["nr"] = Json(v.params.nr);
  rec["ku"] = Json(v.params.ku);
  rec["unroll"] = Json(v.params.unroll);
  rec["prefetch"] = Json(v.params.prefetch.enabled);
  rec["prefetch_distance"] = Json(v.params.prefetch.distance);
  rec["strategy"] = Json(opt::vec_strategy_name(v.strategy));
  rec["mflops"] = Json(v.mflops);
  if (v.search) {
    // The search section is optional and self-contained: pre-search
    // readers ignore the extra field, pre-search records simply lack it.
    Json s = Json::object();
    s["algorithm"] = Json(v.search->algorithm);
    // Seeds are full 64-bit values; numbers are doubles, so persist the
    // seed as a decimal string to round-trip all 64 bits.
    s["seed"] = Json(std::to_string(v.search->seed));
    s["budget_trials"] = Json(v.search->budget_trials);
    s["budget_seconds"] = Json(v.search->budget_seconds);
    s["grid"] = Json(v.search->grid_size);
    s["trials_run"] = Json(v.search->trials_run);
    s["restarts"] = Json(v.search->restarts_used);
    s["elapsed_s"] = Json(v.search->elapsed_seconds);
    s["wall_capped"] = Json(v.search->wall_capped);
    s["synthetic"] = Json(v.search->synthetic);
    Json log = Json::array();
    for (const tuning::Trial& t : v.trial_log) {
      Json tj = Json::object();
      tj["mr"] = Json(t.params.mr);
      tj["nr"] = Json(t.params.nr);
      tj["ku"] = Json(t.params.ku);
      tj["unroll"] = Json(t.params.unroll);
      tj["pf"] = Json(t.params.prefetch.enabled);
      tj["pfd"] = Json(t.params.prefetch.distance);
      tj["strategy"] = Json(opt::vec_strategy_name(t.strategy));
      tj["mflops"] = Json(t.mflops);
      tj["ci"] = Json(t.ci_half);
      tj["reason"] = Json(tuning::infeasible_reason_name(t.reason));
      log.push_back(std::move(tj));
    }
    s["trials"] = std::move(log);
    rec["search"] = std::move(s);
  }
  return rec;
}

namespace {

/// Decodes the optional search section. A malformed section is dropped
/// (the variant itself stays usable) — same tolerance as the rest of the
/// replay path.
void decode_search_section(const Json& rec, TunedVariant& v) {
  const Json* s = rec.get("search");
  if (s == nullptr || !s->is_object()) return;
  const auto algorithm = s->string("algorithm");
  const auto seed = s->string("seed");
  if (!algorithm || !seed) return;
  tuning::SearchMeta meta;
  meta.algorithm = *algorithm;
  meta.seed = std::strtoull(seed->c_str(), nullptr, 10);
  meta.budget_trials = static_cast<int>(s->number("budget_trials").value_or(0));
  meta.budget_seconds = s->number("budget_seconds").value_or(0.0);
  meta.grid_size = static_cast<int>(s->number("grid").value_or(0));
  meta.trials_run = static_cast<int>(s->number("trials_run").value_or(0));
  meta.restarts_used = static_cast<int>(s->number("restarts").value_or(0));
  meta.elapsed_seconds = s->number("elapsed_s").value_or(0.0);
  meta.wall_capped = s->boolean("wall_capped").value_or(false);
  meta.synthetic = s->boolean("synthetic").value_or(false);

  std::vector<tuning::Trial> log;
  if (const Json* trials = s->get("trials"); trials != nullptr) {
    if (!trials->is_array()) return;
    for (const Json& tj : trials->items()) {
      if (!tj.is_object()) return;
      tuning::Trial t;
      const auto mr = tj.number("mr");
      const auto nr = tj.number("nr");
      const auto ku = tj.number("ku");
      const auto unroll = tj.number("unroll");
      const auto strategy_name = tj.string("strategy");
      const auto reason_name = tj.string("reason");
      if (!mr || !nr || !ku || !unroll || !strategy_name || !reason_name)
        return;
      t.params.mr = static_cast<int>(*mr);
      t.params.nr = static_cast<int>(*nr);
      t.params.ku = static_cast<int>(*ku);
      t.params.unroll = static_cast<int>(*unroll);
      t.params.prefetch.enabled = tj.boolean("pf").value_or(true);
      t.params.prefetch.distance =
          static_cast<int>(tj.number("pfd").value_or(16));
      bool strategy_known = false;
      for (opt::VecStrategy st :
           {opt::VecStrategy::kAuto, opt::VecStrategy::kVdup,
            opt::VecStrategy::kShuf, opt::VecStrategy::kScalar})
        if (*strategy_name == opt::vec_strategy_name(st)) {
          t.strategy = st;
          strategy_known = true;
        }
      if (!strategy_known) return;
      if (!tuning::parse_infeasible_reason(*reason_name, t.reason)) return;
      t.feasible = t.reason == tuning::InfeasibleReason::kNone;
      t.mflops = tj.number("mflops").value_or(0.0);
      t.ci_half = tj.number("ci").value_or(0.0);
      log.push_back(std::move(t));
    }
  }
  v.search = meta;
  v.trial_log = std::move(log);
}

}  // namespace

std::optional<TunedVariant> decode_tuned_variant(const Json& rec) {
  if (!rec.is_object()) return std::nullopt;
  const auto mr = rec.number("mr");
  const auto nr = rec.number("nr");
  const auto ku = rec.number("ku");
  const auto unroll = rec.number("unroll");
  const auto prefetch = rec.boolean("prefetch");
  const auto strategy_name = rec.string("strategy");
  const auto mflops = rec.number("mflops");
  if (!mr || !nr || !ku || !unroll || !prefetch || !strategy_name || !mflops)
    return std::nullopt;

  TunedVariant v;
  v.params.mr = static_cast<int>(*mr);
  v.params.nr = static_cast<int>(*nr);
  v.params.ku = static_cast<int>(*ku);
  v.params.unroll = static_cast<int>(*unroll);
  v.params.prefetch.enabled = *prefetch;
  if (const auto dist = rec.number("prefetch_distance"))
    v.params.prefetch.distance = static_cast<int>(*dist);
  v.mflops = *mflops;

  bool strategy_known = false;
  for (opt::VecStrategy s :
       {opt::VecStrategy::kAuto, opt::VecStrategy::kVdup,
        opt::VecStrategy::kShuf, opt::VecStrategy::kScalar})
    if (*strategy_name == opt::vec_strategy_name(s)) {
      v.strategy = s;
      strategy_known = true;
    }
  if (!strategy_known) return std::nullopt;

  // Reject parameter values no generator configuration can produce — a
  // bit-flipped record must not reach the kernel generator.
  const auto plausible = [](int x) { return x >= 1 && x <= 1024; };
  if (!plausible(v.params.mr) || !plausible(v.params.nr) ||
      !plausible(v.params.ku) || !plausible(v.params.unroll))
    return std::nullopt;
  decode_search_section(rec, v);
  return v;
}

Json encode_db_record(const KernelKey& key, const TunedVariant& v) {
  Json rec = encode_kernel_key(key);
  const Json variant = encode_tuned_variant(v);
  for (const auto& [field, value] : variant.fields()) rec[field] = value;
  rec["schema"] = Json(kTuneDbSchema);
  return rec;
}

std::optional<DbEntry> decode_db_record(const Json& rec) {
  if (!rec.is_object()) return std::nullopt;
  const auto schema = rec.number("schema");
  if (!schema || static_cast<int>(*schema) != kTuneDbSchema)
    return std::nullopt;
  const auto key = decode_kernel_key(rec);
  const auto variant = decode_tuned_variant(rec);
  if (!key || !variant) return std::nullopt;

  DbEntry e;
  e.key = *key;
  e.variant = *variant;
  // A small-GEMM record whose register tile cannot divide its baked-in
  // extents would make the generator throw; treat it as corrupt instead.
  if (e.key.small && (e.key.small->m % e.variant.params.mr != 0 ||
                      e.key.small->n % e.variant.params.nr != 0))
    return std::nullopt;
  return e;
}

Json ReplayStats::to_json() const {
  Json j = Json::object();
  j["total_lines"] = Json(static_cast<double>(total_lines));
  j["parse_errors"] = Json(static_cast<double>(parse_errors));
  j["schema_mismatches"] = Json(static_cast<double>(schema_mismatches));
  j["invalid_records"] = Json(static_cast<double>(invalid_records));
  j["skipped"] = Json(static_cast<double>(skipped()));
  j["live_entries"] = Json(static_cast<double>(live_entries));
  return j;
}

TuningDatabase::TuningDatabase(std::string dir)
    : dir_(dir.empty() ? default_cache_dir() : std::move(dir)) {
  std::lock_guard<std::mutex> lock(mutex_);
  replay_locked();
}

std::string TuningDatabase::file_path() const {
  // The schema version is part of the file name as well as of each record:
  // a future incompatible format starts from a fresh file instead of
  // fighting this one for the same bytes.
  return dir_ + "/tunedb-v" + std::to_string(kTuneDbSchema) + ".jsonl";
}

void TuningDatabase::replay_locked() {
  entries_.clear();
  replay_ = ReplayStats{};
  std::ifstream in(file_path());
  if (!in.good()) return;  // no database yet: every lookup misses
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++replay_.total_lines;
    // Corrupt, truncated, or foreign-schema lines are skipped (counted per
    // category): the entry such a line would have named simply misses and
    // gets re-tuned + re-appended.
    const auto doc = parse_json(line);
    if (!doc) {
      ++replay_.parse_errors;
      continue;
    }
    const auto schema = doc->number("schema");
    if (!schema || static_cast<int>(*schema) != kTuneDbSchema) {
      ++replay_.schema_mismatches;
      continue;
    }
    const auto entry = decode_db_record(*doc);
    if (!entry) {
      ++replay_.invalid_records;
      continue;
    }
    entries_[entry->key.to_string()] = *entry;  // last entry wins
  }
  replay_.live_entries = entries_.size();
}

bool TuningDatabase::lookup(const KernelKey& key, TunedVariant& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key.to_string());
  if (it == entries_.end()) return false;
  out = it->second.variant;
  return true;
}

void TuningDatabase::append_locked(const KernelKey& key,
                                   const TunedVariant& variant) {
  make_dirs(dir_);
  const std::string line = encode_db_record(key, variant).dump() + "\n";
  // O_APPEND makes each successful write land at the end of the file, but
  // libc/ofstream may split one line across several writes; an advisory
  // flock around the whole line keeps two processes sharing AUGEM_CACHE_DIR
  // from interleaving partial lines (the corrupt lines the reader would
  // then have to skip). flock failure degrades to O_APPEND-only — a
  // filesystem without lock support must not make stores fatal.
  const int fd = ::open(file_path().c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  AUGEM_CHECK(fd >= 0, "cannot write tuning database " << file_path());
  (void)::flock(fd, LOCK_EX);
  const char* p = line.data();
  std::size_t left = line.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  (void)::flock(fd, LOCK_UN);
  ::close(fd);
  AUGEM_CHECK(ok, "cannot write tuning database " << file_path());
}

void TuningDatabase::store(const KernelKey& key, const TunedVariant& variant) {
  std::lock_guard<std::mutex> lock(mutex_);
  DbEntry e;
  e.key = key;
  e.variant = variant;
  entries_[key.to_string()] = e;
  append_locked(key, variant);
}

void TuningDatabase::reload() {
  std::lock_guard<std::mutex> lock(mutex_);
  replay_locked();
}

void TuningDatabase::purge() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  replay_ = ReplayStats{};
  std::remove(file_path().c_str());
}

std::vector<DbEntry> TuningDatabase::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DbEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

std::uint64_t TuningDatabase::skipped_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replay_.skipped();
}

ReplayStats TuningDatabase::replay_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replay_;
}

}  // namespace augem::runtime
