#pragma once
// Cache keying for the kernel runtime (docs/runtime.md).
//
// A tuned kernel is only valid on the machine class it was tuned for and
// for the problem-shape regime it was timed on, so both the persistent
// tuning database and the in-memory code cache key entries by the full
// tuple (CPU signature, kernel kind, ISA, element type, shape class).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "frontend/kernels.hpp"
#include "support/arch.hpp"

namespace augem::runtime {

/// Problem-shape buckets the dispatcher routes between. Different regimes
/// want different tuned variants: tiny problems live in registers/L1 and
/// are dominated by call overhead, skinny GEMMs (panel × panel) starve the
/// register tile in one direction, and large square-ish problems are the
/// regime the classic tuning workload represents.
enum class ShapeClass : std::uint8_t { kSmall, kSkinny, kLarge };

const char* shape_class_name(ShapeClass s);
std::optional<ShapeClass> parse_shape_class(const std::string& name);

/// Buckets a GEMM problem. Non-positive extents classify as kSmall (the
/// dispatcher never reaches the kernel for those, but the key must still
/// be well-defined).
ShapeClass classify_gemm_shape(std::int64_t m, std::int64_t n, std::int64_t k);

/// Buckets a Level-1/2 problem by its traversal length (kSkinny never
/// applies: a vector has no second extent to starve).
ShapeClass classify_vector_shape(std::int64_t n);

/// Stable identifier of the machine class a tuning result is valid for.
/// Shared with the perf harness; the definition lives with CpuArch in
/// support/arch.hpp.
using ::augem::cpu_signature;

/// Round-trip helpers for persisted enum fields.
std::optional<frontend::KernelKind> parse_kernel_kind(const std::string& name);
std::optional<Isa> parse_isa(const std::string& name);

/// The full cache key. `dtype` is always "f64" today; it is part of the
/// key (and of the persisted record) so a future single-precision backend
/// cannot collide with existing entries.
struct KernelKey {
  std::string cpu;
  frontend::KernelKind kind = frontend::KernelKind::kGemm;
  Isa isa = Isa::kSse2;
  std::string dtype = "f64";
  ShapeClass shape = ShapeClass::kLarge;

  /// Shape-specialized small-GEMM variant (batched serving path): the
  /// baked-in extents and fused epilogue are part of the identity, so
  /// every (shape, epilogue) combination is generated, verified, and
  /// JIT-compiled exactly once and never collides with the blocked kernel.
  std::optional<frontend::SmallGemmSpec> small;

  /// Canonical flat form, e.g. "gemm/FMA3/f64/large@GenuineIntel..." —
  /// small-GEMM variants embed the spec: "gemm16x16x16+bias+relu/FMA3/...".
  /// Used as the code-cache map key and the database record key.
  std::string to_string() const;

  bool operator==(const KernelKey& other) const {
    return cpu == other.cpu && kind == other.kind && isa == other.isa &&
           dtype == other.dtype && shape == other.shape &&
           small == other.small;
  }
};

/// Key for the host CPU: best dispatchable ISA (FMA3 > AVX > SSE2, decided
/// from CPUID feature bits at runtime) and the given kind/shape.
KernelKey host_kernel_key(frontend::KernelKind kind, ShapeClass shape);

/// The dispatcher's ISA ladder. FMA4 is deliberately not dispatched even
/// when present: on every FMA4 machine this repository models, FMA3 is
/// also present and at least as fast (paper Table 5's Piledriver).
Isa select_dispatch_isa(const CpuArch& arch);

}  // namespace augem::runtime
