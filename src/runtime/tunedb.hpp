#pragma once
// Persistent tuning database (docs/runtime.md).
//
// The empirical tuner (paper §2.1) is expensive — dozens of generate +
// assemble + time cycles per kernel — and its verdict only depends on the
// machine, so re-running it per process throws the cost away. This store
// persists tuned variants across processes as a line-oriented JSON file
// under a per-user cache directory (default ~/.cache/augem, overridden by
// AUGEM_CACHE_DIR; AUGEM_DISABLE_TUNE_CACHE=1 disables persistence
// entirely).
//
// Durability contract: records are appended atomically-per-line (O_APPEND
// plus an advisory flock around each append, so two processes sharing
// AUGEM_CACHE_DIR cannot interleave partial lines) with last-entry-wins
// replay, every record carries a schema version, and any line that fails
// to parse or validate is *skipped* — a corrupt or truncated database
// degrades to a cold cache, it never takes the process down. Replays
// count what they skipped per category (ReplayStats) so fleet health is
// inspectable.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/key.hpp"
#include "support/json.hpp"
#include "tuning/tuner.hpp"

namespace augem::runtime {

/// The persisted payload of one database entry: everything needed to
/// regenerate the winning kernel deterministically, plus the score for
/// reporting and — when the entry came from a tuner run — the search
/// metadata and trial log, so `augem_tunedb show` can answer "how was this
/// found" and determinism gates can compare search traces across
/// processes. Both are optional: pre-search records (and hand-written
/// ones) decode with `search == nullopt` and an empty log, so the schema
/// version stays at 1.
struct TunedVariant {
  transform::CGenParams params;
  opt::VecStrategy strategy = opt::VecStrategy::kVdup;
  double mflops = 0.0;
  std::optional<tuning::SearchMeta> search;
  std::vector<tuning::Trial> trial_log;

  /// Conversion from/to the tuner's result type.
  static TunedVariant from_tune_result(const tuning::TuneResult& r);
  tuning::TuneResult to_tune_result(const KernelKey& key) const;
};

/// One (key, variant) pair as stored on disk.
struct DbEntry {
  KernelKey key;
  TunedVariant variant;
};

/// Schema version written into every record; loaders skip records from a
/// different schema (they will be re-tuned and re-appended).
inline constexpr int kTuneDbSchema = 1;

// ---- record codecs ---------------------------------------------------------
//
// The database file and the tuning-service wire protocol (src/service)
// speak the same JSON shape, so the codecs are exported instead of living
// in the .cpp: a record is the union of its key fields and variant fields
// plus the schema tag. Decoders return nullopt on anything missing,
// mistyped, or implausible — the caller treats that as a corrupt record
// (or a malformed request), never as a crash.

/// Key fields only (cpu, kind, isa, dtype, shape, optional small spec).
Json encode_kernel_key(const KernelKey& key);
std::optional<KernelKey> decode_kernel_key(const Json& j);

/// Variant fields only (tile params, strategy, mflops). Rejects parameter
/// values no generator configuration can produce.
Json encode_tuned_variant(const TunedVariant& v);
std::optional<TunedVariant> decode_tuned_variant(const Json& j);

/// One full on-disk record (schema + key + variant). decode additionally
/// enforces cross-field validity (a small-GEMM record whose register tile
/// cannot divide its baked-in extents is corrupt).
Json encode_db_record(const KernelKey& key, const TunedVariant& v);
std::optional<DbEntry> decode_db_record(const Json& rec);

/// Per-category accounting of the last replay, exposed so fleet health is
/// inspectable (`augem_tunedb list --json`, the daemon's `stats` request)
/// instead of silently folded into one number.
struct ReplayStats {
  std::uint64_t total_lines = 0;       ///< non-empty lines seen
  std::uint64_t parse_errors = 0;      ///< not valid JSON (truncated/garbled)
  std::uint64_t schema_mismatches = 0; ///< valid JSON, foreign/missing schema
  std::uint64_t invalid_records = 0;   ///< right schema, bad/implausible fields
  std::uint64_t live_entries = 0;      ///< entries after last-entry-wins

  std::uint64_t skipped() const {
    return parse_errors + schema_mismatches + invalid_records;
  }
  Json to_json() const;
};

/// Resolves the cache directory: $AUGEM_CACHE_DIR, else $HOME/.cache/augem,
/// else /tmp/augem-cache. The directory is not created here.
std::string default_cache_dir();

/// True when AUGEM_DISABLE_TUNE_CACHE is set to a non-empty value other
/// than "0": the runtime then keeps everything in memory only.
bool tune_cache_disabled();

/// The on-disk store. Thread-safe; every instance replays the file on
/// construction, so a second instance (or a second process) pointed at the
/// same directory warm-starts from entries the first one wrote.
class TuningDatabase {
 public:
  /// Opens (and replays) the database in `dir`; empty selects
  /// default_cache_dir(). The directory is created on first store.
  explicit TuningDatabase(std::string dir = "");

  /// Looks up the variant for `key`. Returns false on miss.
  bool lookup(const KernelKey& key, TunedVariant& out) const;

  /// Inserts/overwrites the entry and appends it to the on-disk file.
  void store(const KernelKey& key, const TunedVariant& variant);

  /// Re-reads the file, picking up entries other processes appended.
  void reload();

  /// Deletes the on-disk file and clears memory.
  void purge();

  /// All live entries (after last-entry-wins replay), sorted by key.
  std::vector<DbEntry> entries() const;

  const std::string& dir() const { return dir_; }
  std::string file_path() const;

  /// Lines skipped by the last replay because they were corrupt, from a
  /// different schema, or truncated. Exposed for tests and the CLI.
  std::uint64_t skipped_records() const;

  /// The full per-category breakdown of the last replay.
  ReplayStats replay_stats() const;

 private:
  void replay_locked();
  void append_locked(const KernelKey& key, const TunedVariant& variant);

  std::string dir_;
  mutable std::mutex mutex_;
  std::map<std::string, DbEntry> entries_;  ///< keyed by KernelKey::to_string
  ReplayStats replay_;
};

}  // namespace augem::runtime
