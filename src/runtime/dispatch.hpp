#pragma once
// The kernel runtime's dispatcher (docs/runtime.md): the serving layer
// that turns "I need a GEMM kernel for this machine and this problem
// shape" into a callable function pointer, amortizing tuning and assembly
// across calls and processes.
//
// Resolution order for a key (CPU signature, kind, ISA, dtype, shape):
//
//   1. in-memory code cache — hit: return the resident module;
//   2. the machine's tuning daemon, when one is engaged (docs/serving.md)
//      — the daemon tunes/builds at most once per key machine-wide and
//      publishes a .so artifact this process dlopens directly, skipping
//      even the assemble step; any daemon failure falls through silently;
//   3. persistent tuning database — hit: regenerate the stored winning
//      configuration (through the full mirlint-verified generation
//      pipeline), assemble, cache, return;
//   4. cold miss — run the empirical tuner for the shape class, store the
//      winner in the database (offering it to the daemon if one appears
//      later), then proceed as in 3.
//
// The ISA is chosen once per process from CPUID feature bits
// (FMA3 > AVX > SSE2); the shape class is chosen per call by the
// runtime-backed BLAS (runtime_blas.hpp).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "runtime/codecache.hpp"
#include "runtime/key.hpp"
#include "runtime/tunedb.hpp"
#include "tuning/tuner.hpp"

namespace augem::service {
class ServiceClient;  // the tuning daemon's client (service/client.hpp)
}  // namespace augem::service

namespace augem::runtime {

struct RuntimeConfig {
  /// Database directory; empty → default_cache_dir() (which honors
  /// AUGEM_CACHE_DIR).
  std::string cache_dir;
  /// Persist tuning results across processes. Defaults to the inverse of
  /// AUGEM_DISABLE_TUNE_CACHE; set false for a memory-only runtime.
  bool use_persistent = !tune_cache_disabled();
  /// On a database miss, run the empirical tuner (true) or fall back to
  /// the per-ISA default configuration without tuning (false — cheap
  /// cold start, e.g. for short-lived tools).
  bool tune_on_miss = true;
  /// Bound and granularity of the in-memory code cache.
  std::size_t code_cache_capacity = 32;
  std::size_t code_cache_shards = 8;
  /// Overrides the per-shape-class tuning workload (tests use a tiny one;
  /// unset picks tune_workload_for(kind, shape)).
  std::optional<tuning::TuneWorkload> workload_override;
  /// Consult the machine's tuning daemon on a code-cache miss (see the
  /// engagement policy in service/client.hpp — without a live daemon
  /// socket or AUGEM_DAEMON=1 this is a no-op). The daemon's own runtime
  /// sets this false so it never recurses into itself.
  bool use_daemon = true;
};

/// Serving-path counters (monotone, per-runtime).
struct RuntimeCounters {
  std::uint64_t db_hits = 0;     ///< database served a tuned variant
  std::uint64_t db_misses = 0;   ///< no usable database entry
  std::uint64_t tuner_runs = 0;  ///< empirical searches performed
  std::uint64_t builds = 0;      ///< generate+assemble cycles performed
  std::uint64_t daemon_hits = 0;    ///< tuning daemon served the variant
  std::uint64_t daemon_misses = 0;  ///< daemon engaged but could not serve
  std::uint64_t artifact_loads = 0; ///< daemon .so dlopened, no local build
};

/// The timing workload the tuner uses for a (kind, shape class): small
/// shapes are tuned on small packed blocks / short vectors so the winner
/// reflects the overhead-bound regime it will serve.
tuning::TuneWorkload tune_workload_for(frontend::KernelKind kind,
                                       ShapeClass shape);

/// True when (m, n, k) should be served by a shape-specialized fully
/// unrolled small-GEMM kernel instead of the blocked driver. Only the
/// batched serving path (gemm_batch_strided) routes through this: the
/// shape repeats thousands of times there, so the one-time generation cost
/// amortizes; a single dgemm call keeps the blocked path.
bool use_small_gemm_kernel(std::int64_t m, std::int64_t n, std::int64_t k);

class KernelRuntime {
 public:
  explicit KernelRuntime(RuntimeConfig config = {});
  ~KernelRuntime();

  /// The process-wide runtime used by make_runtime_blas() and the public
  /// BLAS entry points. Constructed on first use with default config.
  static KernelRuntime& global();

  /// Resolves the kernel for (kind, shape) on the host CPU, running the
  /// cold-miss pipeline if needed. Thread-safe; concurrent calls for the
  /// same key perform one build. Throws augem::Error when generation is
  /// impossible (e.g. no toolchain).
  std::shared_ptr<const CachedKernel> resolve(frontend::KernelKind kind,
                                              ShapeClass shape);

  /// Resolves the shape-specialized small-GEMM kernel for `spec` on the
  /// host CPU. The spec (extents + fused epilogue) is part of the cache
  /// key, so each variant is generated, verified, and assembled exactly
  /// once; the empirical tuner is skipped (the register tile follows
  /// directly from the baked-in extents).
  std::shared_ptr<const CachedKernel> resolve_small(
      const frontend::SmallGemmSpec& spec);

  /// The ISA every resolution targets (FMA3 > AVX > SSE2 from CPUID).
  Isa dispatch_isa() const { return isa_; }

  CacheStats code_stats() const { return cache_.stats(); }
  RuntimeCounters counters() const;

  /// The persistent store, or nullptr when the runtime is memory-only.
  TuningDatabase* database() { return db_.get(); }
  const RuntimeConfig& config() const { return config_; }

  /// Drops the resident kernel for `key` so the next resolve rebuilds it
  /// from the (possibly newer) database entry. Running callers keep their
  /// shared_ptr — nothing is unmapped. Returns whether an entry existed.
  bool invalidate(const KernelKey& key);

  /// The daemon client this runtime resolved (engagement policy applied on
  /// first use), or nullptr when serving purely in-process. Exposed for
  /// tools and tests; may die (healthy() false) at any point.
  service::ServiceClient* daemon_client();

 private:
  std::shared_ptr<const CachedKernel> build_kernel(const KernelKey& key);
  TunedVariant tune_variant_locally(const KernelKey& key);

  RuntimeConfig config_;
  Isa isa_;
  std::unique_ptr<TuningDatabase> db_;  ///< null when memory-only
  CodeCache cache_;
  std::once_flag client_once_;
  std::unique_ptr<service::ServiceClient> client_;  ///< null: in-process only
  std::atomic<std::uint64_t> db_hits_{0};
  std::atomic<std::uint64_t> db_misses_{0};
  std::atomic<std::uint64_t> tuner_runs_{0};
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> daemon_hits_{0};
  std::atomic<std::uint64_t> daemon_misses_{0};
  std::atomic<std::uint64_t> artifact_loads_{0};
};

}  // namespace augem::runtime
