#pragma once
// In-memory JIT code cache (docs/runtime.md).
//
// Resolving a kernel costs a full generate → verify → assemble → dlopen
// cycle (tens of milliseconds); a BLAS entry point must pay it at most
// once per key per process. This cache is a sharded map from KernelKey to
// the compiled artifact:
//
//  * one mutex per shard, so concurrent GemmContext threads resolving
//    *different* kernels never contend;
//  * per-key build deduplication — the first thread to miss installs a
//    shared_future and builds outside the shard lock, every concurrent
//    requester of the same key waits on that future, so exactly one
//    assembly happens per key no matter the thread count;
//  * bounded with LRU eviction. Evicted entries stay alive for as long as
//    callers hold the shared_ptr (the CompiledModule's dlopen handle is
//    reference-counted through it), so eviction can never unmap running
//    code;
//  * hit/miss/eviction counters for the dispatch benchmarks and tests.

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "jit/jit.hpp"
#include "runtime/key.hpp"
#include "runtime/tunedb.hpp"

namespace augem::runtime {

/// A resolved, callable kernel: the loaded module plus its entry symbol
/// and the metadata the drivers need (the GEMM register tile). Immutable
/// after construction; shared freely across threads.
struct CachedKernel {
  KernelKey key;
  TunedVariant variant;
  int mr = 0;  ///< GEMM register tile rows (0 for Level-1/2 kernels)
  int nr = 0;  ///< GEMM register tile columns
  std::string symbol;
  std::shared_ptr<jit::CompiledModule> module;
  void* entry = nullptr;

  /// Typed entry-point access, e.g. `k.fn<KernelSet::GemmFn>()`.
  template <typename Fn>
  Fn* fn() const {
    return reinterpret_cast<Fn*>(entry);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class CodeCache {
 public:
  using KernelPtr = std::shared_ptr<const CachedKernel>;
  using Builder = std::function<KernelPtr()>;

  /// `capacity` bounds the number of resident modules across all shards;
  /// `shards` fixes the lock granularity (tests use 1 shard to make the
  /// global LRU order deterministic).
  explicit CodeCache(std::size_t capacity = 32, std::size_t shards = 8);

  /// Returns the cached kernel for `key`, building it with `builder` on a
  /// miss. Concurrent callers with the same key share one build; a builder
  /// that throws propagates to every waiter and leaves the key absent so a
  /// later call can retry.
  KernelPtr get_or_build(const KernelKey& key, const Builder& builder);

  /// Peeks without building or counting a miss. Touches LRU on hit.
  KernelPtr lookup(const KernelKey& key);

  /// Drops the entry for `key` so the next resolve rebuilds it (used when a
  /// retuned variant is promoted). Callers holding the shared_ptr keep
  /// running the old code — erase never unmaps anything. Returns whether an
  /// entry was present.
  bool erase(const KernelKey& key);

  CacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// Keys currently resident, most recently used first within each shard
  /// (exposed for tests and the CLI).
  std::vector<std::string> resident_keys() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// LRU list, most recent at front; the map stores iterators into it.
    std::list<std::string> lru;
    struct Entry {
      std::shared_future<KernelPtr> future;
      std::list<std::string>::iterator lru_pos;
      std::uint64_t id = 0;  ///< failure cleanup erases only its own entry
    };
    std::unordered_map<std::string, Entry> map;
    CacheStats stats;
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;
  std::size_t shard_capacity() const;

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace augem::runtime
