#pragma once
// Compatibility forwarder: the JSON value/parser moved to support/json.hpp
// so the perf harness (src/perf) can share it without pulling in the whole
// runtime stack. Runtime code (and its tests) keep the augem::runtime::Json
// spelling via these using-declarations.

#include "support/json.hpp"

namespace augem::runtime {

using augem::Json;
using augem::parse_json;

}  // namespace augem::runtime
