#pragma once
// The AUGEM public API (the framework of the paper's Fig. 1, end to end).
//
//   * `generate_kernel` — simple C → optimized C → templates → assembly,
//     returning the full artifact (assembly text, machine IR, tagged
//     low-level C) for inspection or VM execution.
//   * `KernelSet` — the four DLA kernels generated for a configuration and
//     JIT-compiled into native, callable function pointers.
//   * `make_augem_blas` (augem_blas.hpp) — a complete BLAS built on a
//     KernelSet, the "AUGEM" series of every figure and table.

#include <memory>
#include <string>

#include "asmgen/codegen.hpp"
#include "frontend/kernels.hpp"
#include "jit/jit.hpp"
#include "opt/plan.hpp"
#include "transform/ckernel.hpp"

namespace augem {

/// Everything needed to generate one kernel.
struct GenerateOptions {
  transform::CGenParams params;
  opt::OptConfig config;
  frontend::BLayout layout = frontend::BLayout::kRowPanel;
};

/// Sensible per-ISA defaults (the configurations the tuner usually picks).
GenerateOptions default_options(frontend::KernelKind kind, Isa isa);

/// Runs the full pipeline for one kernel.
asmgen::GeneratedKernel generate_kernel(frontend::KernelKind kind,
                                        const GenerateOptions& options);

/// Signature of every shape-specialized small-GEMM kernel (see
/// frontend::make_small_gemm_kernel). `bias` may be null when the spec's
/// epilogue does not fuse a bias add; `alpha`/`beta` are read only when it
/// fuses scaling.
using SmallGemmFn = void(const double* a, long lda, const double* b, long ldb,
                         double* c, long ldc, const double* bias, double alpha,
                         double beta);

/// Register tile for a small-GEMM spec on `isa`: the largest mr in
/// {2w, w, 2, 1} dividing m and nr in {4, 2, 1} dividing n that keep the
/// accumulator groups (plus the epilogue's broadcast scalars) inside the
/// vector register budget.
transform::CGenParams small_gemm_params(const frontend::SmallGemmSpec& spec,
                                        Isa isa);

/// Default generation options for a small-GEMM spec on `isa`.
GenerateOptions default_small_gemm_options(const frontend::SmallGemmSpec& spec,
                                           Isa isa);

/// Full pipeline for one shape-specialized small-GEMM kernel, including the
/// memory-safety proofs against its contract (lda >= m, ldb >= k, ldc >= m,
/// bias extent m when fused).
asmgen::GeneratedKernel generate_small_gemm_kernel(
    const frontend::SmallGemmSpec& spec, const GenerateOptions& options);

/// The four generated kernels, JIT-compiled and callable.
class KernelSet {
 public:
  using GemmFn = void(long mc, long nc, long kc, const double* pa,
                      const double* pb, double* c, long ldc);
  using GemvFn = void(long m, long n, const double* a, long lda,
                      const double* x, double* y);
  using AxpyFn = void(long n, double alpha, const double* x, double* y);
  using DotFn = double(long n, const double* x, const double* y);
  using ScalFn = void(long n, double alpha, double* x);

  /// Generates and compiles all four kernels for `isa` with per-kernel
  /// options (defaults when not overridden). The ISA must be natively
  /// executable on this host.
  explicit KernelSet(Isa isa);
  KernelSet(Isa isa, const transform::CGenParams& gemm_params,
            opt::VecStrategy gemm_strategy,
            const transform::CGenParams& level1_params);

  GemmFn* gemm() const { return gemm_; }
  GemvFn* gemv() const { return gemv_; }
  AxpyFn* axpy() const { return axpy_; }
  DotFn* dot() const { return dot_; }
  ScalFn* scal() const { return scal_; }

  /// The GEMM register tile the kernels were generated for (the macro
  /// driver must call the kernel with multiples of these).
  int gemm_mr() const { return gemm_mr_; }
  int gemm_nr() const { return gemm_nr_; }
  Isa isa() const { return isa_; }

  /// Generated assembly, for inspection (indexed by KernelKind).
  const std::string& asm_text(frontend::KernelKind kind) const;

 private:
  void build(Isa isa, const transform::CGenParams& gemm_params,
             opt::VecStrategy gemm_strategy,
             const transform::CGenParams& level1_params);

  Isa isa_{};
  int gemm_mr_ = 0;
  int gemm_nr_ = 0;
  std::unique_ptr<jit::CompiledModule> module_;
  std::string asm_[5];
  GemmFn* gemm_ = nullptr;
  GemvFn* gemv_ = nullptr;
  AxpyFn* axpy_ = nullptr;
  DotFn* dot_ = nullptr;
  ScalFn* scal_ = nullptr;
};

}  // namespace augem
