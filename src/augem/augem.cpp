#include "augem/augem.hpp"

#include "analysis/contract.hpp"
#include "support/error.hpp"

namespace augem {

using frontend::KernelKind;
using opt::VecStrategy;
using transform::CGenParams;

GenerateOptions default_options(KernelKind kind, Isa isa) {
  GenerateOptions o;
  o.config.isa = isa;
  const int w = isa_vector_doubles(isa);
  switch (kind) {
    case KernelKind::kGemm:
      // 2w×w register tile: 8×4 on 256-bit ISAs, 4×2 on SSE — the shapes
      // hand-written kernels for these machines use. The depth-4 inner
      // unroll amortizes loop control; software prefetch is off by default
      // (the packed panels stream L1-resident, so per-iteration prefetches
      // only burn load-port slots — see bench_ablation_prefetch).
      o.params.mr = 2 * w;
      o.params.nr = w;
      o.params.ku = 4;
      o.params.prefetch.enabled = false;
      o.config.strategy = VecStrategy::kVdup;
      break;
    case KernelKind::kGemv:
    case KernelKind::kAxpy:
    case KernelKind::kDot:
    case KernelKind::kScal:
      o.params.unroll = 4 * w;
      o.params.prefetch.enabled = false;
      o.config.strategy = VecStrategy::kAuto;
      break;
  }
  return o;
}

asmgen::GeneratedKernel generate_kernel(KernelKind kind,
                                        const GenerateOptions& options) {
  ir::Kernel k =
      transform::generate_optimized_c(kind, options.layout, options.params);
  // With the calling contract in hand we can demand full memory-safety
  // proofs at generation time, not just structural well-formedness.
  const analysis::KernelContract contract =
      analysis::contract_for(kind, options.layout, options.params, k);
  return asmgen::generate_assembly(std::move(k), options.config, &contract);
}

CGenParams small_gemm_params(const frontend::SmallGemmSpec& spec, Isa isa) {
  CGenParams p;
  p.ku = 1;  // ignored: the depth loop unrolls by the spec's k
  p.prefetch.enabled = false;  // straight-line code over tiny operands
  const int w = isa_vector_doubles(isa);
  auto pick = [](int n, std::initializer_list<int> ladder) {
    for (int c : ladder)
      if (c >= 1 && n % c == 0) return c;
    return 1;
  };
  int mr = pick(spec.m, {2 * w, w, 2});
  int nr = pick(spec.n, {4, 2});
  // Accumulator groups this tile would hold resident, at the width the
  // planner will pick for it.
  auto groups = [&](int mr_, int nr_) {
    const int wv = mr_ % w == 0 ? w : (mr_ % 2 == 0 ? 2 : 1);
    return mr_ / wv * nr_;
  };
  // The fully-unrolled body keeps every accumulator group resident plus,
  // per k-step, the A vectors and B broadcast in flight. A scaling epilogue
  // additionally pins broadcast alpha and beta for the whole kernel, and
  // ISAs without a fused multiply-add burn an extra mul temporary on every
  // accumulate — either condition empirically caps the workable tile at
  // ~4 resident groups out of the 16 vector registers.
  const bool has_fma = isa == Isa::kFma3 || isa == Isa::kFma4;
  const int budget = spec.epilogue.scale || !has_fma ? 6 : 12;
  while (groups(mr, nr) > budget && nr > 1) nr /= 2;
  while (groups(mr, nr) > budget && mr > w) mr /= 2;
  p.mr = mr;
  p.nr = nr;
  return p;
}

GenerateOptions default_small_gemm_options(const frontend::SmallGemmSpec& spec,
                                           Isa isa) {
  GenerateOptions o;
  o.config.isa = isa;
  o.config.strategy = VecStrategy::kVdup;
  o.params = small_gemm_params(spec, isa);
  return o;
}

asmgen::GeneratedKernel generate_small_gemm_kernel(
    const frontend::SmallGemmSpec& spec, const GenerateOptions& options) {
  ir::Kernel k = transform::generate_small_gemm_c(spec, options.params);
  const analysis::KernelContract contract =
      analysis::contract_for_small_gemm(spec, k);
  return asmgen::generate_assembly(std::move(k), options.config, &contract);
}

KernelSet::KernelSet(Isa isa) {
  const GenerateOptions g = default_options(KernelKind::kGemm, isa);
  const GenerateOptions l = default_options(KernelKind::kAxpy, isa);
  build(isa, g.params, g.config.strategy, l.params);
}

KernelSet::KernelSet(Isa isa, const CGenParams& gemm_params,
                     VecStrategy gemm_strategy,
                     const CGenParams& level1_params) {
  build(isa, gemm_params, gemm_strategy, level1_params);
}

void KernelSet::build(Isa isa, const CGenParams& gemm_params,
                      VecStrategy gemm_strategy,
                      const CGenParams& level1_params) {
  AUGEM_CHECK(host_arch().supports(isa),
              isa_name(isa) << " is not natively executable on this host; "
                               "use the VM for that ISA");
  isa_ = isa;
  gemm_mr_ = gemm_params.mr;
  gemm_nr_ = gemm_params.nr;

  auto make = [&](KernelKind kind, const CGenParams& p, VecStrategy s) {
    GenerateOptions o;
    o.params = p;
    o.config.isa = isa;
    o.config.strategy = s;
    return generate_kernel(kind, o);
  };
  const auto g = make(KernelKind::kGemm, gemm_params, gemm_strategy);
  const auto v = make(KernelKind::kGemv, level1_params, VecStrategy::kAuto);
  const auto a = make(KernelKind::kAxpy, level1_params, VecStrategy::kAuto);
  const auto d = make(KernelKind::kDot, level1_params, VecStrategy::kAuto);
  const auto sc = make(KernelKind::kScal, level1_params, VecStrategy::kAuto);
  asm_[0] = g.asm_text;
  asm_[1] = v.asm_text;
  asm_[2] = a.asm_text;
  asm_[3] = d.asm_text;
  asm_[4] = sc.asm_text;

  // All five kernels live in one shared object.
  module_ = std::make_unique<jit::CompiledModule>(jit::assemble(
      g.asm_text + v.asm_text + a.asm_text + d.asm_text + sc.asm_text));
  gemm_ = module_->fn<GemmFn>(g.name);
  gemv_ = module_->fn<GemvFn>(v.name);
  axpy_ = module_->fn<AxpyFn>(a.name);
  dot_ = module_->fn<DotFn>(d.name);
  scal_ = module_->fn<ScalFn>(sc.name);
}

const std::string& KernelSet::asm_text(KernelKind kind) const {
  return asm_[static_cast<int>(kind)];
}

}  // namespace augem
