#include "augem/augem_blas.hpp"

#include <algorithm>
#include <vector>

#include "support/scratch.hpp"

namespace augem {

namespace {

using blas::at;
using blas::BlockSizes;
using blas::GemmContext;
using blas::index_t;
using blas::Trans;

class AugemBlas final : public blas::Blas {
 public:
  AugemBlas(std::shared_ptr<KernelSet> kernels, const GemmContext& ctx)
      : kernels_(std::move(kernels)), ctx_(ctx) {}

  std::string name() const override { return "AUGEM"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    blas::blocked_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                       ctx_,
                       padded_gemm_block_kernel(kernels_->gemm(),
                                                kernels_->gemm_mr(),
                                                kernels_->gemm_nr()));
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    gemv_with_blas_semantics(kernels_->gemv(), m, n, alpha, a, lda, x, beta,
                             y);
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    axpy_with_blas_semantics(kernels_->axpy(), n, alpha, x, y);
  }

  double dot(index_t n, const double* x, const double* y) override {
    return dot_with_blas_semantics(kernels_->dot(), n, x, y);
  }

  void scal(index_t n, double alpha, double* x) override {
    scal_with_blas_semantics(kernels_->scal(), n, alpha, x);
  }

 private:
  std::shared_ptr<KernelSet> kernels_;
  GemmContext ctx_;
};

}  // namespace

void gemv_with_blas_semantics(KernelSet::GemvFn* fn, index_t m, index_t n,
                              double alpha, const double* a, index_t lda,
                              const double* x, double beta, double* y) {
  // beta == 0 must overwrite (beta_scale), not multiply: `y[i] *= beta`
  // would keep NaN/Inf from an uninitialized y alive. alpha == 0 leaves
  // y at beta*y without ever reading A or x (netlib dgemv).
  blas::beta_scale(y, m, beta);
  if (m <= 0 || n <= 0 || alpha == 0.0) return;
  if (alpha == 1.0) {
    fn(m, n, a, lda, x, y);
    return;
  }
  // The generated kernel computes y += A*x; fold alpha into a scaled x.
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    xs[static_cast<std::size_t>(j)] = alpha * x[j];
  fn(m, n, a, lda, xs.data(), y);
}

void axpy_with_blas_semantics(KernelSet::AxpyFn* fn, index_t n, double alpha,
                              const double* x, double* y) {
  if (alpha == 0.0) return;  // netlib daxpy: y untouched, even for NaN x
  if (n > 0) fn(n, alpha, x, y);
}

double dot_with_blas_semantics(KernelSet::DotFn* fn, index_t n,
                               const double* x, const double* y) {
  return n > 0 ? fn(n, x, y) : 0.0;
}

void scal_with_blas_semantics(KernelSet::ScalFn* fn, index_t n, double alpha,
                              double* x) {
  if (n <= 0) return;
  if (alpha == 0.0) {  // overwrite: scal-to-zero must clear NaN/Inf
    std::fill(x, x + n, 0.0);
    return;
  }
  fn(n, alpha, x);
}

blas::BlockKernel padded_gemm_block_kernel(GemmBlockFn fn, index_t mr,
                                           index_t nr) {
  return [fn = std::move(fn), mr, nr](index_t mc, index_t nc, index_t kc,
                                      const double* pa, const double* pb,
                                      double* cc, index_t ldcc) {
    if (mc % mr == 0 && nc % nr == 0) {
      fn(mc, nc, kc, pa, pb, cc, ldcc);
      return;
    }
    // Edge block: the Fig.-12 kernel ABI uses mc/nc both as loop bounds
    // and as the packed strides, so a partial tile is run on zero-padded
    // copies and accumulated back. Rare at benchmark sizes; correctness
    // matters more than speed here. The pads live in per-thread scratch —
    // the threaded driver calls this block kernel concurrently. An operand
    // that is already tile-aligned keeps its original packed panel (the
    // stride only changes when padding actually widens the block).
    const index_t mp = (mc + mr - 1) / mr * mr;
    const index_t np = (nc + nr - 1) / nr * nr;
    const double* ka = pa;
    const double* kb = pb;
    if (mp != mc) {
      double* pad_a = scratch_doubles(static_cast<std::size_t>(mp * kc),
                                      Scratch::kGemmPadA);
      for (index_t l = 0; l < kc; ++l) {
        for (index_t i = 0; i < mc; ++i) pad_a[l * mp + i] = pa[l * mc + i];
        std::fill(pad_a + l * mp + mc, pad_a + (l + 1) * mp, 0.0);
      }
      ka = pad_a;
    }
    if (np != nc) {
      double* pad_b = scratch_doubles(static_cast<std::size_t>(np * kc),
                                      Scratch::kGemmPadB);
      for (index_t l = 0; l < kc; ++l) {
        for (index_t j = 0; j < nc; ++j) pad_b[l * np + j] = pb[l * nc + j];
        std::fill(pad_b + l * np + nc, pad_b + (l + 1) * np, 0.0);
      }
      kb = pad_b;
    }
    // C pad: zero-initialized so the kernel's accumulation yields exactly
    // the block product; the mc×nc window is then *added* to C — never
    // assigned — because the driver has already applied beta to all of C
    // (including this block) before any block kernel runs.
    double* pad_c = scratch_doubles(static_cast<std::size_t>(mp * np),
                                    Scratch::kGemmPadC);
    std::fill(pad_c, pad_c + mp * np, 0.0);
    fn(mp, np, kc, ka, kb, pad_c, mp);
    for (index_t j = 0; j < nc; ++j)
      for (index_t i = 0; i < mc; ++i)
        at(cc, ldcc, i, j) += pad_c[j * mp + i];
  };
}

std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes,
                                            int num_threads) {
  GemmContext ctx = blas::threaded_gemm_context(sizes);
  ctx.threads = std::max(1, num_threads);
  // jr chunks must keep the generated register tile's column grouping.
  ctx.jr_granule = std::max<index_t>(8, kernels->gemm_nr());
  return std::make_unique<AugemBlas>(std::move(kernels), ctx);
}

std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes) {
  const int threads = ThreadPool::global().num_threads();
  return make_augem_blas(std::move(kernels), sizes, threads);
}

std::unique_ptr<blas::Blas> make_augem_blas() {
  auto kernels =
      std::make_shared<KernelSet>(host_arch().best_native_isa());
  return make_augem_blas(std::move(kernels),
                         blas::default_block_sizes(host_arch()));
}

}  // namespace augem
