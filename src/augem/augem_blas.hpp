#pragma once
// The AUGEM-backed BLAS: blas::Blas implemented on the generated assembly
// kernels. This is the "AUGEM" series of every figure and table in the
// paper's evaluation.

#include <functional>
#include <memory>

#include "augem/augem.hpp"
#include "blas/blas.hpp"
#include "blas/driver.hpp"

namespace augem {

/// A GEMM block function with the generated Fig.-12 kernel contract:
/// C(mc×nc, ldc) += PA(mc×kc) * PB(kc×nc) over packed panels, where mc/nc
/// serve both as loop bounds and as the packed strides, so the caller must
/// guarantee mc % mr == 0 and nc % nr == 0. Matches KernelSet::GemmFn but
/// also admits non-native executors (the machine-IR VM in the differential
/// harness).
using GemmBlockFn = std::function<void(long mc, long nc, long kc,
                                       const double* pa, const double* pb,
                                       double* c, long ldc)>;

/// Wraps a tile-aligned GEMM block function into a driver BlockKernel that
/// accepts arbitrary mc/nc ≥ 1: partial tiles run on zero-padded copies in
/// per-thread scratch (sized ⌈mc/mr⌉·mr × kc and ⌈nc/nr⌉·nr × kc) and the
/// mc×nc window of the padded C accumulator is added back. The wrapper is
/// accumulate-only — beta must already have been applied by the driver —
/// and is reentrant: the threaded driver calls it concurrently.
blas::BlockKernel padded_gemm_block_kernel(GemmBlockFn fn, blas::index_t mr,
                                           blas::index_t nr);

// ---- netlib-semantics wrappers around the raw generated kernels ----------
//
// The generated functions are pure accumulate/compute loops (y += A*x,
// y += alpha*x, …); the BLAS edge rules — beta == 0 overwrites, alpha == 0
// never reads the inputs, non-positive extents are no-ops — live here so
// every Blas built on generated kernels (the classic KernelSet-backed one
// and the dispatching runtime one) shares one audited implementation
// (docs/correctness.md).

/// y = alpha*A*x + beta*y around a `y += A*x` kernel.
void gemv_with_blas_semantics(KernelSet::GemvFn* fn, blas::index_t m,
                              blas::index_t n, double alpha, const double* a,
                              blas::index_t lda, const double* x, double beta,
                              double* y);

/// y += alpha*x around a `y += alpha*x` kernel (alpha == 0 leaves y
/// untouched even for NaN x — netlib daxpy).
void axpy_with_blas_semantics(KernelSet::AxpyFn* fn, blas::index_t n,
                              double alpha, const double* x, double* y);

/// dot(x, y); n <= 0 returns 0 without calling the kernel.
double dot_with_blas_semantics(KernelSet::DotFn* fn, blas::index_t n,
                               const double* x, const double* y);

/// x *= alpha; alpha == 0 overwrites with zeros (clears NaN/Inf).
void scal_with_blas_semantics(KernelSet::ScalFn* fn, blas::index_t n,
                              double alpha, double* x);

/// Builds an AUGEM BLAS for the host's best natively executable ISA with
/// default (untuned) kernel configurations. GEMM runs on the global thread
/// pool (AUGEM_NUM_THREADS or all detected cores; 1 → the serial driver).
std::unique_ptr<blas::Blas> make_augem_blas();

/// Builds an AUGEM BLAS from an explicit kernel set (e.g. a tuned one) and
/// block sizes, threaded like the default factory.
std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes);

/// As above with an explicit GEMM thread count (clamped to the global pool
/// size; 1 selects the bit-identical serial driver). Used by the scaling
/// benchmarks and the driver tuner.
std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes,
                                            int num_threads);

}  // namespace augem
