#pragma once
// The AUGEM-backed BLAS: blas::Blas implemented on the generated assembly
// kernels. This is the "AUGEM" series of every figure and table in the
// paper's evaluation.

#include <memory>

#include "augem/augem.hpp"
#include "blas/blas.hpp"
#include "blas/driver.hpp"

namespace augem {

/// Builds an AUGEM BLAS for the host's best natively executable ISA with
/// default (untuned) kernel configurations. GEMM runs on the global thread
/// pool (AUGEM_NUM_THREADS or all detected cores; 1 → the serial driver).
std::unique_ptr<blas::Blas> make_augem_blas();

/// Builds an AUGEM BLAS from an explicit kernel set (e.g. a tuned one) and
/// block sizes, threaded like the default factory.
std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes);

/// As above with an explicit GEMM thread count (clamped to the global pool
/// size; 1 selects the bit-identical serial driver). Used by the scaling
/// benchmarks and the driver tuner.
std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes,
                                            int num_threads);

}  // namespace augem
