#pragma once
// The AUGEM-backed BLAS: blas::Blas implemented on the generated assembly
// kernels. This is the "AUGEM" series of every figure and table in the
// paper's evaluation.

#include <functional>
#include <memory>

#include "augem/augem.hpp"
#include "blas/blas.hpp"
#include "blas/driver.hpp"

namespace augem {

/// A GEMM block function with the generated Fig.-12 kernel contract:
/// C(mc×nc, ldc) += PA(mc×kc) * PB(kc×nc) over packed panels, where mc/nc
/// serve both as loop bounds and as the packed strides, so the caller must
/// guarantee mc % mr == 0 and nc % nr == 0. Matches KernelSet::GemmFn but
/// also admits non-native executors (the machine-IR VM in the differential
/// harness).
using GemmBlockFn = std::function<void(long mc, long nc, long kc,
                                       const double* pa, const double* pb,
                                       double* c, long ldc)>;

/// Wraps a tile-aligned GEMM block function into a driver BlockKernel that
/// accepts arbitrary mc/nc ≥ 1: partial tiles run on zero-padded copies in
/// per-thread scratch (sized ⌈mc/mr⌉·mr × kc and ⌈nc/nr⌉·nr × kc) and the
/// mc×nc window of the padded C accumulator is added back. The wrapper is
/// accumulate-only — beta must already have been applied by the driver —
/// and is reentrant: the threaded driver calls it concurrently.
blas::BlockKernel padded_gemm_block_kernel(GemmBlockFn fn, blas::index_t mr,
                                           blas::index_t nr);

/// Builds an AUGEM BLAS for the host's best natively executable ISA with
/// default (untuned) kernel configurations. GEMM runs on the global thread
/// pool (AUGEM_NUM_THREADS or all detected cores; 1 → the serial driver).
std::unique_ptr<blas::Blas> make_augem_blas();

/// Builds an AUGEM BLAS from an explicit kernel set (e.g. a tuned one) and
/// block sizes, threaded like the default factory.
std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes);

/// As above with an explicit GEMM thread count (clamped to the global pool
/// size; 1 selects the bit-identical serial driver). Used by the scaling
/// benchmarks and the driver tuner.
std::unique_ptr<blas::Blas> make_augem_blas(std::shared_ptr<KernelSet> kernels,
                                            const blas::BlockSizes& sizes,
                                            int num_threads);

}  // namespace augem
