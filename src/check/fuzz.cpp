#include "check/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "asmgen/codegen.hpp"
#include "augem/augem_blas.hpp"
#include "blas/driver.hpp"
#include "blas/level3.hpp"
#include "blas/libraries.hpp"
#include "blas/reference.hpp"
#include "check/ulp.hpp"
#include "frontend/kernels.hpp"
#include "ir/interp.hpp"
#include "jit/jit.hpp"
#include "opt/verifier.hpp"
#include "runtime/dispatch.hpp"
#include "runtime/runtime_blas.hpp"
#include "support/arch.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "transform/ckernel.hpp"
#include "vm/machine.hpp"

namespace augem::check {

namespace {

using blas::index_t;
using blas::Side;
using blas::Trans;
using blas::Uplo;
using frontend::BLayout;
using frontend::KernelKind;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- deterministic seeding ------------------------------------------------

/// splitmix64 finalizer: one well-mixed sub-seed per (master seed, index),
/// so any single case reproduces without replaying the ones before it.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---- guarded buffers ------------------------------------------------------

/// Guard elements appended past every payload, holding a fixed bit pattern.
/// A path that writes past the end of its output (or any input) flips them.
constexpr std::size_t kGuardLen = 8;

double guard_value() {
  const std::uint64_t bits = 0xdeadbeefcafef00dull;
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

struct Buf {
  std::vector<double> v;  ///< payload followed by kGuardLen guard elements
  std::size_t n;          ///< payload length

  Buf(std::size_t n_, Rng& rng) : v(n_ + kGuardLen), n(n_) {
    rng.fill(std::span<double>(v.data(), n));
    std::fill(v.begin() + static_cast<std::ptrdiff_t>(n), v.end(),
              guard_value());
  }

  double* data() { return v.data(); }
  const double* cdata() const { return v.data(); }

  bool guard_ok() const {
    const double g = guard_value();
    for (std::size_t i = n; i < v.size(); ++i)
      if (std::memcmp(&v[i], &g, sizeof(double)) != 0) return false;
    return true;
  }

  std::vector<double> payload() const {
    return std::vector<double>(v.begin(),
                               v.begin() + static_cast<std::ptrdiff_t>(n));
  }
};

// ---- special-value poisoning ----------------------------------------------

enum class Poison { kNone, kNaN, kInf, kMix };

const char* poison_name(Poison p) {
  switch (p) {
    case Poison::kNone: return "none";
    case Poison::kNaN: return "nan";
    case Poison::kInf: return "inf";
    case Poison::kMix: return "mix";
  }
  return "?";
}

void poison(Buf& b, Rng& rng, Poison p) {
  if (p == Poison::kNone || b.n == 0) return;
  const int count = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < count; ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(b.n) - 1));
    switch (p) {
      case Poison::kNone: break;
      case Poison::kNaN: b.v[pos] = kNaN; break;
      case Poison::kInf: b.v[pos] = rng.uniform_int(0, 1) ? kInf : -kInf; break;
      case Poison::kMix: {
        const double menu[4] = {kNaN, kInf, -kInf, 0.0};
        b.v[pos] = menu[rng.uniform_int(0, 3)];
        break;
      }
    }
  }
}

// ---- kernel configurations ------------------------------------------------

struct CaseConfig {
  KernelKind op = KernelKind::kGemm;
  BLayout layout = BLayout::kRowPanel;
  Isa isa = Isa::kAvx;
  opt::VecStrategy strategy = opt::VecStrategy::kAuto;
  transform::CGenParams params;

  std::string to_string() const {
    std::ostringstream os;
    os << frontend::kernel_kind_name(op) << " isa=" << isa_name(isa)
       << " strategy=" << opt::vec_strategy_name(strategy);
    if (op == KernelKind::kGemm)
      os << " layout="
         << (layout == BLayout::kRowPanel ? "row-panel" : "col-major");
    os << " " << params.to_string();
    return os.str();
  }
};

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&menu)[N]) {
  return menu[rng.uniform_int(0, static_cast<std::int64_t>(N) - 1)];
}

constexpr std::int64_t kSlackMenu[3] = {0, 1, 5};
constexpr std::int64_t kSmallSlackMenu[3] = {0, 1, 3};

CaseConfig draw_config(Rng& rng) {
  CaseConfig c;
  constexpr KernelKind kOps[5] = {KernelKind::kGemm, KernelKind::kGemv,
                                  KernelKind::kAxpy, KernelKind::kDot,
                                  KernelKind::kScal};
  c.op = pick(rng, kOps);
  constexpr Isa kIsas[4] = {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4};
  c.isa = pick(rng, kIsas);
  constexpr opt::VecStrategy kStrategies[4] = {
      opt::VecStrategy::kAuto, opt::VecStrategy::kVdup,
      opt::VecStrategy::kShuf, opt::VecStrategy::kScalar};
  c.strategy = pick(rng, kStrategies);
  if (c.op == KernelKind::kGemm)
    c.layout =
        rng.uniform_int(0, 1) ? BLayout::kColMajor : BLayout::kRowPanel;
  constexpr int kTiles[4] = {1, 2, 4, 8};
  c.params.mr = pick(rng, kTiles);
  c.params.nr = pick(rng, kTiles);
  constexpr int kKus[3] = {1, 2, 4};
  c.params.ku = pick(rng, kKus);
  constexpr int kUnrolls[5] = {1, 2, 4, 8, 16};
  c.params.unroll = pick(rng, kUnrolls);
  c.params.prefetch.enabled = rng.uniform_int(0, 1) != 0;
  constexpr int kDistances[4] = {4, 8, 16, 32};
  c.params.prefetch.distance = pick(rng, kDistances);
  c.params.prefetch.prefetch_stores = rng.uniform_int(0, 1) != 0;
  return c;
}

// ---- kernel-contract oracles ----------------------------------------------
// Plain-C mirrors of the generated kernels' contracts (no alpha/beta special
// cases — those are BLAS-level semantics and live in blas::ref, which is the
// oracle for the driver/wrapper checks below). Kept local so src/ never
// depends on test headers.

void oracle_gemm_block(index_t mc, index_t nc, index_t kc, const double* a,
                       const double* b, double* c, index_t ldc,
                       BLayout layout) {
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < mc; ++i) {
      double res = 0.0;
      for (index_t l = 0; l < kc; ++l) {
        const double bv =
            layout == BLayout::kRowPanel ? b[l * nc + j] : b[j * kc + l];
        res += a[l * mc + i] * bv;
      }
      c[j * ldc + i] += res;
    }
}

void oracle_gemv(index_t m, index_t n, const double* a, index_t lda,
                 const double* x, double* y) {
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < m; ++j) y[j] += a[i * lda + j] * x[i];
}

void oracle_axpy(index_t n, double alpha, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) y[i] += x[i] * alpha;
}

double oracle_dot(index_t n, const double* x, const double* y) {
  double res = 0.0;
  for (index_t i = 0; i < n; ++i) res += x[i] * y[i];
  return res;
}

void oracle_scal(index_t n, double alpha, double* x) {
  for (index_t i = 0; i < n; ++i) x[i] = x[i] * alpha;
}

// ---- comparison -----------------------------------------------------------

std::string fmt_mismatch(const char* what, std::size_t i, double got,
                         double want) {
  std::ostringstream os;
  os.precision(17);
  os << what << "[" << i << "]: got " << got << ", want " << want
     << " (ulp distance " << ulp_distance(got, want) << ")";
  return os.str();
}

std::optional<std::string> compare_out(const char* what, const double* got,
                                       const double* want, std::size_t count,
                                       const CompareSpec& spec) {
  for (std::size_t i = 0; i < count; ++i)
    if (!spec.close(got[i], want[i]))
      return fmt_mismatch(what, i, got[i], want[i]);
  return std::nullopt;
}

std::optional<std::string> check_untouched(const char* what, const Buf& buf,
                                           const std::vector<double>& before) {
  if (!buf.guard_ok()) return std::string(what) + ": guard region overwritten";
  // Zero-extent buffers have nothing to compare (and data() may be null,
  // which memcmp's nonnull contract forbids even for length 0).
  if (!before.empty() &&
      std::memcmp(buf.v.data(), before.data(),
                  before.size() * sizeof(double)) != 0)
    return std::string(what) + ": read-only input was modified";
  return std::nullopt;
}

// ---- problem instances ----------------------------------------------------

/// A dimension near the "interesting" boundaries of `unit` (an unroll or
/// tile factor): 0, 1, exact multiples, multiples ± 1, and small primes.
std::int64_t dim_near(Rng& rng, std::int64_t unit) {
  unit = std::max<std::int64_t>(1, unit);
  const std::int64_t q = rng.uniform_int(1, 3);
  switch (rng.uniform_int(0, 7)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return unit * q;
    case 3: return std::max<std::int64_t>(0, unit * q - 1);
    case 4: return unit * q + 1;
    case 5: {
      constexpr std::int64_t kPrimes[6] = {2, 3, 5, 7, 13, 31};
      return pick(rng, kPrimes);
    }
    default: return rng.uniform_int(1, 4 * unit);
  }
}

double draw_alpha(Rng& rng, bool allow_nonfinite) {
  const std::int64_t roll = rng.uniform_int(0, allow_nonfinite ? 7 : 5);
  switch (roll) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return -1.0;
    case 3: return 0.5;
    case 6: return kNaN;
    case 7: return rng.uniform_int(0, 1) ? kInf : -kInf;
    default: return rng.uniform(-2.0, 2.0);
  }
}

/// Kernel-contract-level instance. Meaning of d[] per op:
///   GEMM: d0=mc (multiple of mr), d1=nc (multiple of nr), d2=kc, d3=ldc slack
///   GEMV: d0=m, d1=n, d2=lda slack
///   AXPY/DOT/SCAL: d0=n
struct KInstance {
  std::int64_t d[4] = {0, 0, 0, 0};
  double alpha = 1.0;  ///< axpy/scal only (kernel ABIs without alpha ignore it)
  Poison p = Poison::kNone;

  std::string to_string(KernelKind op) const {
    std::ostringstream os;
    os.precision(17);
    switch (op) {
      case KernelKind::kGemm:
        os << "mc=" << d[0] << " nc=" << d[1] << " kc=" << d[2]
           << " ldc=" << d[0] + d[3];
        break;
      case KernelKind::kGemv:
        os << "m=" << d[0] << " n=" << d[1]
           << " lda=" << std::max<std::int64_t>(1, d[0] + d[2]);
        break;
      default:
        os << "n=" << d[0] << " alpha=" << alpha;
        break;
    }
    os << " poison=" << poison_name(p);
    return os.str();
  }
};

KInstance draw_kinstance(Rng& rng, const CaseConfig& cfg) {
  KInstance in;
  switch (cfg.op) {
    case KernelKind::kGemm:
      in.d[0] = cfg.params.mr * rng.uniform_int(1, 3);
      in.d[1] = cfg.params.nr * rng.uniform_int(1, 3);
      in.d[2] = dim_near(rng, cfg.params.ku);
      in.d[3] = pick(rng, kSlackMenu);
      break;
    case KernelKind::kGemv:
      in.d[0] = dim_near(rng, cfg.params.unroll);
      in.d[1] = dim_near(rng, 4);
      in.d[2] = pick(rng, kSlackMenu);
      break;
    default:
      in.d[0] = dim_near(rng, cfg.params.unroll);
      in.alpha = draw_alpha(rng, /*allow_nonfinite=*/true);
      break;
  }
  constexpr Poison kPoisons[8] = {Poison::kNone, Poison::kNone, Poison::kNone,
                                  Poison::kNone, Poison::kNone, Poison::kNaN,
                                  Poison::kInf,  Poison::kMix};
  in.p = pick(rng, kPoisons);
  return in;
}

// ---- per-case runtime -----------------------------------------------------

struct CaseRt {
  std::uint64_t case_seed = 0;
  CaseConfig cfg;
  /// Set once generation succeeds (GeneratedKernel has no default state).
  std::optional<asmgen::GeneratedKernel> g;
  std::unique_ptr<jit::CompiledModule> mod;  ///< null when the JIT path is off
};

enum class Path { kInterp, kVm, kJit };

const char* path_name(Path p) {
  switch (p) {
    case Path::kInterp: return "interp";
    case Path::kVm: return "vm";
    case Path::kJit: return "jit";
  }
  return "?";
}

/// Runs one kernel-level path on one instance and cross-checks it against
/// the kernel-contract oracle. Data is a pure function of (case seed,
/// instance), so shrinking re-runs stay deterministic.
std::optional<std::string> check_kernel(CaseRt& rt, Path path,
                                        const KInstance& in) {
  Rng rng(mix(rt.case_seed, 0xda7a));
  const asmgen::GeneratedKernel& g = *rt.g;

  switch (rt.cfg.op) {
    case KernelKind::kGemm: {
      const index_t mc = in.d[0], nc = in.d[1], kc = in.d[2];
      const index_t ldc = mc + in.d[3];
      Buf a(static_cast<std::size_t>(mc * kc), rng);
      Buf b(static_cast<std::size_t>(nc * kc), rng);
      Buf c(static_cast<std::size_t>(nc * ldc), rng);
      poison(a, rng, in.p);
      poison(b, rng, in.p);
      poison(c, rng, in.p);
      const std::vector<double> a0 = a.payload(), b0 = b.payload();
      std::vector<double> want = c.payload();
      oracle_gemm_block(mc, nc, kc, a.cdata(), b.cdata(), want.data(), ldc,
                        rt.cfg.layout);
      switch (path) {
        case Path::kInterp: {
          ir::Env env;
          env["mc"] = mc;
          env["nc"] = nc;
          env["kc"] = kc;
          env["ldc"] = ldc;
          env["A"] = a.data();
          env["B"] = b.data();
          env["C"] = c.data();
          ir::interpret(g.source, std::move(env));
          break;
        }
        case Path::kVm: {
          vm::Machine m(g.insts);
          m.call({mc, nc, kc, a.cdata(), b.cdata(), c.data(), ldc});
          break;
        }
        case Path::kJit: {
          auto* fn = rt.mod->fn<void(long, long, long, const double*,
                                     const double*, double*, long)>(g.name);
          fn(mc, nc, kc, a.cdata(), b.cdata(), c.data(), ldc);
          break;
        }
      }
      CompareSpec spec{.depth = kc + 1, .scale = 1.0};
      if (auto m = compare_out("C", c.cdata(), want.data(), c.n, spec))
        return m;
      if (!c.guard_ok()) return std::string("C: guard region overwritten");
      if (auto m = check_untouched("A", a, a0)) return m;
      if (auto m = check_untouched("B", b, b0)) return m;
      return std::nullopt;
    }

    case KernelKind::kGemv: {
      const index_t m = in.d[0], n = in.d[1];
      const index_t lda = std::max<index_t>(1, m + in.d[2]);
      Buf a(static_cast<std::size_t>(n * lda), rng);
      Buf x(static_cast<std::size_t>(n), rng);
      Buf y(static_cast<std::size_t>(m), rng);
      poison(a, rng, in.p);
      poison(x, rng, in.p);
      poison(y, rng, in.p);
      const std::vector<double> a0 = a.payload(), x0 = x.payload();
      std::vector<double> want = y.payload();
      oracle_gemv(m, n, a.cdata(), lda, x.cdata(), want.data());
      switch (path) {
        case Path::kInterp: {
          ir::Env env;
          env["m"] = m;
          env["n"] = n;
          env["A"] = a.data();
          env["lda"] = lda;
          env["x"] = x.data();
          env["y"] = y.data();
          ir::interpret(g.source, std::move(env));
          break;
        }
        case Path::kVm: {
          vm::Machine machine(g.insts);
          machine.call({m, n, a.cdata(), lda, x.cdata(), y.data()});
          break;
        }
        case Path::kJit: {
          auto* fn = rt.mod->fn<void(long, long, const double*, long,
                                     const double*, double*)>(g.name);
          fn(m, n, a.cdata(), lda, x.cdata(), y.data());
          break;
        }
      }
      CompareSpec spec{.depth = n + 1, .scale = 1.0};
      if (auto mm = compare_out("y", y.cdata(), want.data(), y.n, spec))
        return mm;
      if (!y.guard_ok()) return std::string("y: guard region overwritten");
      if (auto mm = check_untouched("A", a, a0)) return mm;
      if (auto mm = check_untouched("x", x, x0)) return mm;
      return std::nullopt;
    }

    case KernelKind::kAxpy:
    case KernelKind::kDot:
    case KernelKind::kScal: {
      const index_t n = in.d[0];
      Buf x(static_cast<std::size_t>(n), rng);
      Buf y(static_cast<std::size_t>(n), rng);
      poison(x, rng, in.p);
      poison(y, rng, in.p);
      const std::vector<double> x0 = x.payload(), y0 = y.payload();

      if (rt.cfg.op == KernelKind::kDot) {
        const double want = oracle_dot(n, x.cdata(), y.cdata());
        double got = 0.0;
        switch (path) {
          case Path::kInterp: {
            ir::Env env;
            env["n"] = n;
            env["x"] = x.data();
            env["y"] = y.data();
            got = ir::interpret(g.source, std::move(env));
            break;
          }
          case Path::kVm: {
            vm::Machine machine(g.insts);
            got = machine.call({n, x.cdata(), y.cdata()});
            break;
          }
          case Path::kJit: {
            auto* fn =
                rt.mod->fn<double(long, const double*, const double*)>(g.name);
            got = fn(n, x.cdata(), y.cdata());
            break;
          }
        }
        CompareSpec spec{.depth = std::max<index_t>(n, 1), .scale = 1.0};
        if (!spec.close(got, want)) return fmt_mismatch("dot", 0, got, want);
        if (auto mm = check_untouched("x", x, x0)) return mm;
        if (auto mm = check_untouched("y", y, y0)) return mm;
        return std::nullopt;
      }

      const bool is_axpy = rt.cfg.op == KernelKind::kAxpy;
      Buf& out = is_axpy ? y : x;
      std::vector<double> want = out.payload();
      if (is_axpy)
        oracle_axpy(n, in.alpha, x.cdata(), want.data());
      else
        oracle_scal(n, in.alpha, want.data());
      switch (path) {
        case Path::kInterp: {
          ir::Env env;
          env["n"] = n;
          env["alpha"] = in.alpha;
          env["x"] = x.data();
          if (is_axpy) env["y"] = y.data();
          ir::interpret(g.source, std::move(env));
          break;
        }
        case Path::kVm: {
          vm::Machine machine(g.insts);
          if (is_axpy)
            machine.call({n, in.alpha, x.cdata(), y.data()});
          else
            machine.call({n, in.alpha, x.data()});
          break;
        }
        case Path::kJit: {
          if (is_axpy) {
            auto* fn =
                rt.mod->fn<void(long, double, const double*, double*)>(g.name);
            fn(n, in.alpha, x.cdata(), y.data());
          } else {
            auto* fn = rt.mod->fn<void(long, double, double*)>(g.name);
            fn(n, in.alpha, x.data());
          }
          break;
        }
      }
      CompareSpec spec{.depth = 1, .scale = 2.0};
      const char* what = is_axpy ? "y" : "x";
      if (auto mm = compare_out(what, out.cdata(), want.data(), out.n, spec))
        return mm;
      if (!out.guard_ok())
        return std::string(what) + ": guard region overwritten";
      if (is_axpy) {
        if (auto mm = check_untouched("x", x, x0)) return mm;
      } else if (!x.guard_ok()) {
        return std::string("x: guard region overwritten");
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

// ---- blocked-driver instances (GEMM only) ---------------------------------

/// BLAS-level GEMM instance for the blocked driver. alpha stays finite: the
/// driver folds alpha into the packed A panels while the oracle folds it
/// after the k-sum; for nonfinite alpha the two orders legitimately produce
/// different NaN/Inf classes (that divergence is documented, not a bug).
/// A/B may carry NaN/Inf only under alpha == ±1, where the fold is exact.
struct DInstance {
  std::int64_t m = 1, n = 1, k = 1;
  std::int64_t sa = 0, sb = 0, sc = 0;  ///< leading-dimension slack
  Trans ta = Trans::kNo, tb = Trans::kNo;
  double alpha = 1.0, beta = 1.0;
  Poison pc = Poison::kNone;  ///< poisoning of the initial C
  bool poison_ab = false;     ///< poison A/B too (requires alpha == ±1)

  std::string to_string() const {
    std::ostringstream os;
    os.precision(17);
    os << "m=" << m << " n=" << n << " k=" << k << " ta="
       << (ta == Trans::kYes ? "T" : "N")
       << " tb=" << (tb == Trans::kYes ? "T" : "N") << " alpha=" << alpha
       << " beta=" << beta << " slack=(" << sa << "," << sb << "," << sc
       << ") poisonC=" << poison_name(pc) << " poisonAB=" << poison_ab;
    return os.str();
  }
};

DInstance draw_dinstance(Rng& rng, const CaseConfig& cfg) {
  DInstance in;
  in.m = dim_near(rng, cfg.params.mr);
  in.n = dim_near(rng, cfg.params.nr);
  in.k = dim_near(rng, 4);
  in.sa = pick(rng, kSmallSlackMenu);
  in.sb = pick(rng, kSmallSlackMenu);
  in.sc = pick(rng, kSmallSlackMenu);
  in.ta = rng.uniform_int(0, 1) ? Trans::kYes : Trans::kNo;
  in.tb = rng.uniform_int(0, 1) ? Trans::kYes : Trans::kNo;
  in.alpha = draw_alpha(rng, /*allow_nonfinite=*/false);
  in.beta = draw_alpha(rng, /*allow_nonfinite=*/true);
  constexpr Poison kPoisons[6] = {Poison::kNone, Poison::kNone, Poison::kNone,
                                  Poison::kNaN,  Poison::kInf,  Poison::kMix};
  in.pc = pick(rng, kPoisons);
  if (rng.uniform_int(0, 2) == 0) {
    in.alpha = rng.uniform_int(0, 1) ? 1.0 : -1.0;
    in.poison_ab = true;
  }
  return in;
}

std::optional<std::string> check_driver(CaseRt& rt,
                                        const augem::GemmBlockFn& block,
                                        bool threaded, const DInstance& in) {
  Rng rng(mix(rt.case_seed, threaded ? 0xd217 : 0xd215));
  const index_t rows_a = in.ta == Trans::kNo ? in.m : in.k;
  const index_t cols_a = in.ta == Trans::kNo ? in.k : in.m;
  const index_t rows_b = in.tb == Trans::kNo ? in.k : in.n;
  const index_t cols_b = in.tb == Trans::kNo ? in.n : in.k;
  const index_t lda = std::max<index_t>(1, rows_a + in.sa);
  const index_t ldb = std::max<index_t>(1, rows_b + in.sb);
  const index_t ldc = std::max<index_t>(1, in.m + in.sc);

  Buf a(static_cast<std::size_t>(lda * cols_a), rng);
  Buf b(static_cast<std::size_t>(ldb * cols_b), rng);
  Buf c(static_cast<std::size_t>(ldc * in.n), rng);
  poison(c, rng, in.pc);
  if (in.poison_ab) {
    poison(a, rng, in.pc == Poison::kNone ? Poison::kMix : in.pc);
    poison(b, rng, in.pc == Poison::kNone ? Poison::kMix : in.pc);
  }
  const std::vector<double> a0 = a.payload(), b0 = b.payload();
  std::vector<double> want = c.payload();
  blas::ref::gemm(in.ta, in.tb, in.m, in.n, in.k, in.alpha, a.cdata(), lda,
                  b.cdata(), ldb, in.beta, want.data(), ldc);

  // Tiny cache blocks force multi-block macro loops even at fuzz sizes.
  blas::BlockSizes sizes;
  sizes.mc = rt.cfg.params.mr * 2;
  sizes.nc = std::max<index_t>(8, rt.cfg.params.nr * 2);
  sizes.kc = 6;
  blas::GemmContext ctx = threaded ? blas::threaded_gemm_context(sizes)
                                   : blas::serial_gemm_context(sizes);
  ctx.jr_granule = std::max<index_t>(8, rt.cfg.params.nr);
  blas::blocked_gemm(in.ta, in.tb, in.m, in.n, in.k, in.alpha, a.cdata(), lda,
                     b.cdata(), ldb, in.beta, c.data(), ldc, ctx,
                     augem::padded_gemm_block_kernel(block, rt.cfg.params.mr,
                                                     rt.cfg.params.nr));

  CompareSpec spec{.depth = in.k + 1, .scale = 2.0};
  if (auto mm = compare_out("C", c.cdata(), want.data(), c.n, spec)) return mm;
  if (!c.guard_ok()) return std::string("C: guard region overwritten");
  if (auto mm = check_untouched("A", a, a0)) return mm;
  if (auto mm = check_untouched("B", b, b0)) return mm;
  return std::nullopt;
}

// ---- BLAS-level wrapper instances -----------------------------------------

/// Instance for the Blas-interface sweep (AUGEM wrappers + the comparator
/// libraries vs the netlib-semantics oracle blas::ref). Nonfinite alpha is
/// allowed only for axpy/scal, where every implementation applies alpha
/// element-wise (exactly the same products); for gemm/gemv a nonfinite
/// alpha meeting a near-cancelling sum makes the result class depend on
/// summation order. Nonfinite beta is allowed everywhere: beta scales the
/// caller's exact y/C values identically in every implementation.
struct BInstance {
  std::int64_t m = 1, n = 1, k = 1;
  std::int64_t slack = 0;
  Trans ta = Trans::kNo, tb = Trans::kNo;
  double alpha = 1.0, beta = 1.0;
  Poison pdata = Poison::kNone;  ///< x / A / y-initial / C-initial poisoning

  std::string to_string(KernelKind op) const {
    std::ostringstream os;
    os.precision(17);
    switch (op) {
      case KernelKind::kGemm:
        os << "m=" << m << " n=" << n << " k=" << k
           << " ta=" << (ta == Trans::kYes ? "T" : "N")
           << " tb=" << (tb == Trans::kYes ? "T" : "N");
        break;
      case KernelKind::kGemv:
        os << "m=" << m << " n=" << n;
        break;
      default:
        os << "n=" << n;
        break;
    }
    os << " alpha=" << alpha << " beta=" << beta << " slack=" << slack
       << " poison=" << poison_name(pdata);
    return os.str();
  }
};

BInstance draw_binstance(Rng& rng, const CaseConfig& cfg) {
  BInstance in;
  in.m = dim_near(rng, cfg.params.mr);
  in.n = dim_near(rng, std::max(cfg.params.nr, cfg.params.unroll));
  in.k = dim_near(rng, 4);
  in.slack = pick(rng, kSmallSlackMenu);
  in.ta = rng.uniform_int(0, 1) ? Trans::kYes : Trans::kNo;
  in.tb = rng.uniform_int(0, 1) ? Trans::kYes : Trans::kNo;
  const bool elementwise_alpha =
      cfg.op == KernelKind::kAxpy || cfg.op == KernelKind::kScal;
  in.alpha = draw_alpha(rng, elementwise_alpha);
  in.beta = draw_alpha(rng, /*allow_nonfinite=*/true);
  constexpr Poison kPoisons[7] = {Poison::kNone, Poison::kNone, Poison::kNone,
                                  Poison::kNone, Poison::kNaN,  Poison::kInf,
                                  Poison::kMix};
  in.pdata = pick(rng, kPoisons);
  // GEMM implementations fold alpha into their packed panels; keep A/B
  // finite unless the fold is exact (see DInstance).
  if (cfg.op == KernelKind::kGemm && in.pdata != Poison::kNone &&
      in.alpha != 1.0 && in.alpha != -1.0)
    in.alpha = 1.0;
  return in;
}

/// One Blas implementation (including sub-variants like gemv_t) vs blas::ref.
std::optional<std::string> check_blas(std::uint64_t case_seed,
                                      blas::Blas& impl, KernelKind op,
                                      bool transposed_gemv,
                                      const BInstance& in) {
  Rng rng(mix(case_seed, 0xb1a5 + (transposed_gemv ? 1 : 0)));
  switch (op) {
    case KernelKind::kGemm: {
      const index_t rows_a = in.ta == Trans::kNo ? in.m : in.k;
      const index_t cols_a = in.ta == Trans::kNo ? in.k : in.m;
      const index_t rows_b = in.tb == Trans::kNo ? in.k : in.n;
      const index_t cols_b = in.tb == Trans::kNo ? in.n : in.k;
      const index_t lda = std::max<index_t>(1, rows_a + in.slack);
      const index_t ldb = std::max<index_t>(1, rows_b + in.slack);
      const index_t ldc = std::max<index_t>(1, in.m + in.slack);
      Buf a(static_cast<std::size_t>(lda * cols_a), rng);
      Buf b(static_cast<std::size_t>(ldb * cols_b), rng);
      Buf c(static_cast<std::size_t>(ldc * in.n), rng);
      poison(c, rng, in.pdata);
      if (in.alpha == 1.0 || in.alpha == -1.0) {
        poison(a, rng, in.pdata);
        poison(b, rng, in.pdata);
      }
      std::vector<double> want = c.payload();
      blas::ref::gemm(in.ta, in.tb, in.m, in.n, in.k, in.alpha, a.cdata(), lda,
                      b.cdata(), ldb, in.beta, want.data(), ldc);
      impl.gemm(in.ta, in.tb, in.m, in.n, in.k, in.alpha, a.cdata(), lda,
                b.cdata(), ldb, in.beta, c.data(), ldc);
      CompareSpec spec{.depth = in.k + 1, .scale = 2.0};
      if (auto mm = compare_out("C", c.cdata(), want.data(), c.n, spec))
        return mm;
      if (!c.guard_ok()) return std::string("C: guard region overwritten");
      return std::nullopt;
    }

    case KernelKind::kGemv: {
      const index_t lda = std::max<index_t>(1, in.m + in.slack);
      Buf a(static_cast<std::size_t>(lda * in.n), rng);
      const index_t xlen = transposed_gemv ? in.m : in.n;
      const index_t ylen = transposed_gemv ? in.n : in.m;
      Buf x(static_cast<std::size_t>(xlen), rng);
      Buf y(static_cast<std::size_t>(ylen), rng);
      poison(a, rng, in.pdata);
      poison(x, rng, in.pdata);
      poison(y, rng, in.pdata);
      std::vector<double> want = y.payload();
      if (transposed_gemv) {
        blas::ref::gemv_t(in.m, in.n, in.alpha, a.cdata(), lda, x.cdata(),
                          in.beta, want.data());
        impl.gemv_t(in.m, in.n, in.alpha, a.cdata(), lda, x.cdata(), in.beta,
                    y.data());
      } else {
        blas::ref::gemv(in.m, in.n, in.alpha, a.cdata(), lda, x.cdata(),
                        in.beta, want.data());
        impl.gemv(in.m, in.n, in.alpha, a.cdata(), lda, x.cdata(), in.beta,
                  y.data());
      }
      CompareSpec spec{.depth = (transposed_gemv ? in.m : in.n) + 1,
                       .scale = 2.0};
      if (auto mm = compare_out("y", y.cdata(), want.data(), y.n, spec))
        return mm;
      if (!y.guard_ok()) return std::string("y: guard region overwritten");
      return std::nullopt;
    }

    case KernelKind::kAxpy: {
      Buf x(static_cast<std::size_t>(in.n), rng);
      Buf y(static_cast<std::size_t>(in.n), rng);
      poison(x, rng, in.pdata);
      poison(y, rng, in.pdata);
      std::vector<double> want = y.payload();
      blas::ref::axpy(in.n, in.alpha, x.cdata(), want.data());
      impl.axpy(in.n, in.alpha, x.cdata(), y.data());
      CompareSpec spec{.depth = 1, .scale = 2.0};
      if (auto mm = compare_out("y", y.cdata(), want.data(), y.n, spec))
        return mm;
      if (!y.guard_ok()) return std::string("y: guard region overwritten");
      return std::nullopt;
    }

    case KernelKind::kDot: {
      Buf x(static_cast<std::size_t>(in.n), rng);
      Buf y(static_cast<std::size_t>(in.n), rng);
      poison(x, rng, in.pdata);
      poison(y, rng, in.pdata);
      const double want = blas::ref::dot(in.n, x.cdata(), y.cdata());
      const double got = impl.dot(in.n, x.cdata(), y.cdata());
      CompareSpec spec{.depth = std::max<index_t>(in.n, 1), .scale = 1.0};
      if (!spec.close(got, want)) return fmt_mismatch("dot", 0, got, want);
      return std::nullopt;
    }

    case KernelKind::kScal: {
      Buf x(static_cast<std::size_t>(in.n), rng);
      poison(x, rng, in.pdata);
      std::vector<double> want = x.payload();
      blas::ref::scal(in.n, in.alpha, want.data());
      impl.scal(in.n, in.alpha, x.data());
      CompareSpec spec{.depth = 1, .scale = 2.0};
      if (auto mm = compare_out("x", x.cdata(), want.data(), x.n, spec))
        return mm;
      if (!x.guard_ok()) return std::string("x: guard region overwritten");
      return std::nullopt;
    }
  }
  return std::nullopt;
}

// ---- batched small-GEMM instances -----------------------------------------

/// Instance for the batch-strided serving path (gemm_batch_strided with
/// fused epilogues) vs the reference batch loop in blas::Blas. Shapes are
/// drawn mostly inside the small-kernel window so the amortized-dispatch
/// fast path is what actually runs; a minority lands outside it to cover
/// the blocked fallback with the post-pass epilogue. Inside the window
/// both sides multiply alpha into the finished k-sum and scale C by beta
/// as one product each, so nonfinite alpha/beta see identical expression
/// trees; the blocked fallback folds alpha into its packed panels instead,
/// so outside the window alpha stays finite (see DInstance).
struct TInstance {
  std::int64_t m = 1, n = 1, k = 1, batch = 1;
  std::int64_t sa = 0, sb = 0, sc = 0;  ///< leading-dimension slack
  double alpha = 1.0, beta = 1.0;
  int bias_mode = 0;  ///< 0 none, 1 shared vector (stride 0), 2 per-instance
  bool relu = false;
  Poison p = Poison::kNone;  ///< A/B/C/bias poisoning

  std::string to_string() const {
    std::ostringstream os;
    os.precision(17);
    os << "m=" << m << " n=" << n << " k=" << k << " batch=" << batch
       << " alpha=" << alpha << " beta=" << beta << " slack=(" << sa << ","
       << sb << "," << sc << ") bias=" << bias_mode << " relu=" << relu
       << " poison=" << poison_name(p);
    return os.str();
  }
};

TInstance draw_tinstance(Rng& rng) {
  TInstance in;
  // Mostly window-interior shapes (the fast path), a few just outside.
  constexpr std::int64_t kDims[10] = {1, 2, 3, 4, 5, 8, 13, 16, 31, 32};
  in.m = pick(rng, kDims);
  in.n = pick(rng, kDims);
  in.k = pick(rng, kDims);
  if (rng.uniform_int(0, 4) == 0) in.m = 33 + rng.uniform_int(0, 7);
  constexpr std::int64_t kBatches[6] = {1, 2, 3, 7, 16, 33};
  in.batch = pick(rng, kBatches);
  in.sa = pick(rng, kSmallSlackMenu);
  in.sb = pick(rng, kSmallSlackMenu);
  in.sc = pick(rng, kSmallSlackMenu);
  in.alpha = draw_alpha(rng, /*allow_nonfinite=*/true);
  if (!runtime::use_small_gemm_kernel(in.m, in.n, in.k) &&
      !std::isfinite(in.alpha))
    in.alpha = rng.uniform(-2.0, 2.0);
  in.beta = draw_alpha(rng, /*allow_nonfinite=*/true);
  in.bias_mode = static_cast<int>(rng.uniform_int(0, 2));
  in.relu = rng.uniform_int(0, 1) != 0;
  constexpr Poison kPoisons[7] = {Poison::kNone, Poison::kNone, Poison::kNone,
                                  Poison::kNone, Poison::kNaN,  Poison::kInf,
                                  Poison::kMix};
  in.p = pick(rng, kPoisons);
  return in;
}

std::optional<std::string> check_batch(std::uint64_t case_seed,
                                       blas::Blas& fast, blas::Blas& oracle,
                                       const TInstance& in) {
  Rng rng(mix(case_seed, 0xba7c));
  const index_t lda = in.m + in.sa;
  const index_t ldb = in.k + in.sb;
  const index_t ldc = in.m + in.sc;
  const index_t stride_a = lda * in.k;
  const index_t stride_b = ldb * in.n;
  const index_t stride_c = ldc * in.n;
  const index_t stride_bias = in.bias_mode == 2 ? in.m : 0;

  Buf a(static_cast<std::size_t>(stride_a * in.batch), rng);
  Buf b(static_cast<std::size_t>(stride_b * in.batch), rng);
  Buf c(static_cast<std::size_t>(stride_c * in.batch), rng);
  const std::size_t bias_len = in.bias_mode == 0
                                   ? 0
                                   : static_cast<std::size_t>(
                                         in.m + stride_bias * (in.batch - 1));
  Buf bias(bias_len, rng);
  poison(a, rng, in.p);
  poison(b, rng, in.p);
  poison(c, rng, in.p);
  if (in.bias_mode != 0) poison(bias, rng, in.p);
  const std::vector<double> a0 = a.payload(), b0 = b.payload();
  const std::vector<double> bias0 = bias.payload();

  std::vector<double> want = c.payload();
  const double* bias_ptr = in.bias_mode == 0 ? nullptr : bias.cdata();
  // The oracle runs on a plain copy (no guards needed: the base-class
  // reference loop is the semantics definition, not code under test).
  oracle.gemm_batch_strided(in.m, in.n, in.k, in.alpha, a.cdata(), lda,
                            stride_a, b.cdata(), ldb, stride_b, in.beta,
                            want.data(), ldc, stride_c, in.batch, bias_ptr,
                            stride_bias, in.relu);
  fast.gemm_batch_strided(in.m, in.n, in.k, in.alpha, a.cdata(), lda, stride_a,
                          b.cdata(), ldb, stride_b, in.beta, c.data(), ldc,
                          stride_c, in.batch, bias_ptr, stride_bias, in.relu);

  CompareSpec spec{.depth = in.k + 2, .scale = 2.0};
  if (auto mm = compare_out("C", c.cdata(), want.data(), c.n, spec)) return mm;
  if (!c.guard_ok()) return std::string("C: guard region overwritten");
  if (auto mm = check_untouched("A", a, a0)) return mm;
  if (auto mm = check_untouched("B", b, b0)) return mm;
  if (auto mm = check_untouched("bias", bias, bias0)) return mm;
  return std::nullopt;
}

// ---- Level-3 routine instances --------------------------------------------

enum class L3 { kSymm, kSyrk, kSyr2k, kTrmm, kTrsm };

const char* l3_name(L3 r) {
  switch (r) {
    case L3::kSymm: return "symm";
    case L3::kSyrk: return "syrk";
    case L3::kSyr2k: return "syr2k";
    case L3::kTrmm: return "trmm";
    case L3::kTrsm: return "trsm";
  }
  return "?";
}

/// Instance for the Level-3 casting paths (SYMM/SYRK/SYR2K/TRMM/TRSM).
/// The unstored triangle of every symmetric/triangular A is NaN-filled, so
/// a single out-of-mask read in any decomposition shows up as a NaN
/// mismatch against the oracle. Alpha stays finite and, when the data is
/// poisoned, is forced to ±1: like GEMM, the engines fold alpha into their
/// packed panels while the oracle applies it after the k-sum. TRMM poisons
/// A only (see L3Data::prepare), and TRSM keeps clean data and a strictly
/// diagonally dominant triangle — divisions amplify poison (and
/// ill-conditioning) differently per decomposition.
struct LInstance {
  L3 routine = L3::kSymm;
  Side side = Side::kLeft;
  Uplo uplo = Uplo::kLower;
  Trans trans = Trans::kNo;
  std::int64_t m = 1, n = 1, k = 1;
  std::int64_t slack = 0;
  std::int64_t block = 16;  ///< decomposition block NB (set_level3_block)
  double alpha = 1.0, beta = 1.0;
  Poison pdata = Poison::kNone;

  std::string to_string() const {
    std::ostringstream os;
    os.precision(17);
    os << l3_name(routine);
    switch (routine) {
      case L3::kSyrk:
      case L3::kSyr2k:
        os << " uplo=" << (uplo == Uplo::kUpper ? "U" : "L")
           << " trans=" << (trans == Trans::kYes ? "T" : "N") << " n=" << n
           << " k=" << k;
        break;
      case L3::kSymm:
        os << " side=" << (side == Side::kRight ? "R" : "L")
           << " uplo=" << (uplo == Uplo::kUpper ? "U" : "L") << " m=" << m
           << " n=" << n;
        break;
      default:
        os << " side=" << (side == Side::kRight ? "R" : "L")
           << " uplo=" << (uplo == Uplo::kUpper ? "U" : "L")
           << " trans=" << (trans == Trans::kYes ? "T" : "N") << " m=" << m
           << " n=" << n;
        break;
    }
    os << " alpha=" << alpha << " beta=" << beta << " slack=" << slack
       << " nb=" << block << " poison=" << poison_name(pdata);
    return os.str();
  }
};

LInstance draw_linstance(Rng& rng) {
  LInstance in;
  constexpr L3 kRoutines[5] = {L3::kSymm, L3::kSyrk, L3::kSyr2k, L3::kTrmm,
                               L3::kTrsm};
  in.routine = pick(rng, kRoutines);
  in.side = rng.uniform_int(0, 1) ? Side::kRight : Side::kLeft;
  in.uplo = rng.uniform_int(0, 1) ? Uplo::kUpper : Uplo::kLower;
  in.trans = rng.uniform_int(0, 1) ? Trans::kYes : Trans::kNo;
  in.m = dim_near(rng, 8);
  in.n = dim_near(rng, 8);
  in.k = dim_near(rng, 4);
  in.slack = pick(rng, kSmallSlackMenu);
  // Small decomposition blocks put several block boundaries inside even
  // fuzz-sized triangles (partial diagonal blocks, short trailing panels).
  constexpr std::int64_t kBlocks[4] = {4, 8, 12, 16};
  in.block = pick(rng, kBlocks);
  in.alpha = draw_alpha(rng, /*allow_nonfinite=*/false);
  in.beta = draw_alpha(rng, /*allow_nonfinite=*/true);
  constexpr Poison kPoisons[6] = {Poison::kNone, Poison::kNone, Poison::kNone,
                                  Poison::kNaN,  Poison::kInf,  Poison::kMix};
  in.pdata = pick(rng, kPoisons);
  if (in.pdata != Poison::kNone && in.alpha != 1.0 && in.alpha != -1.0)
    in.alpha = rng.uniform_int(0, 1) ? 1.0 : -1.0;
  if (in.routine == L3::kTrsm) in.pdata = Poison::kNone;
  return in;
}

struct L3Shape {
  index_t a_rows = 0, a_cols = 0, lda = 1;
  index_t b_rows = 0, b_cols = 0, ldb = 1;
  index_t c_rows = 0, c_cols = 0, ldc = 1;
};

L3Shape l3_shape(const LInstance& in) {
  L3Shape s;
  const index_t ka = in.side == Side::kLeft ? in.m : in.n;
  switch (in.routine) {
    case L3::kSymm:
      s.a_rows = s.a_cols = ka;
      s.b_rows = in.m;
      s.b_cols = in.n;
      s.c_rows = in.m;
      s.c_cols = in.n;
      break;
    case L3::kSyr2k:
      s.b_rows = in.trans == Trans::kNo ? in.n : in.k;
      s.b_cols = in.trans == Trans::kNo ? in.k : in.n;
      [[fallthrough]];
    case L3::kSyrk:
      s.a_rows = in.trans == Trans::kNo ? in.n : in.k;
      s.a_cols = in.trans == Trans::kNo ? in.k : in.n;
      s.c_rows = s.c_cols = in.n;
      break;
    case L3::kTrmm:
    case L3::kTrsm:
      s.a_rows = s.a_cols = ka;
      s.b_rows = in.m;
      s.b_cols = in.n;
      break;
  }
  s.lda = std::max<index_t>(1, s.a_rows + in.slack);
  s.ldb = std::max<index_t>(1, s.b_rows + in.slack);
  s.ldc = std::max<index_t>(1, s.c_rows + in.slack);
  return s;
}

/// Operand + oracle state for one Level-3 instance, a pure function of
/// (seed, instance) so shrinking re-runs stay deterministic. `bwant` /
/// `cwant` hold the netlib-oracle result for whichever buffer the routine
/// writes; the other stays an untouched-input expectation.
struct L3Data {
  L3Shape s;
  Rng rng;
  Buf a, b, c;
  std::vector<double> a0, b0;
  std::vector<double> bwant, cwant;

  L3Data(std::uint64_t seed, const LInstance& in)
      : s(l3_shape(in)),
        rng(seed),
        a(static_cast<std::size_t>(s.lda * s.a_cols), rng),
        b(static_cast<std::size_t>(s.ldb * s.b_cols), rng),
        c(static_cast<std::size_t>(s.ldc * s.c_cols), rng) {
    prepare(in);
    a0 = a.payload();
    bwant = b.payload();
    cwant = c.payload();
    switch (in.routine) {
      case L3::kSymm:
        blas::ref::symm(in.side, in.uplo, in.m, in.n, in.alpha, a.cdata(),
                        s.lda, b.cdata(), s.ldb, in.beta, cwant.data(), s.ldc);
        b0 = b.payload();
        break;
      case L3::kSyrk:
        blas::ref::syrk(in.uplo, in.trans, in.n, in.k, in.alpha, a.cdata(),
                        s.lda, in.beta, cwant.data(), s.ldc);
        b0 = b.payload();
        break;
      case L3::kSyr2k:
        blas::ref::syr2k(in.uplo, in.trans, in.n, in.k, in.alpha, a.cdata(),
                         s.lda, b.cdata(), s.ldb, in.beta, cwant.data(),
                         s.ldc);
        b0 = b.payload();
        break;
      case L3::kTrmm:
        blas::ref::trmm(in.side, in.uplo, in.trans, in.m, in.n, in.alpha,
                        a.cdata(), s.lda, bwant.data(), s.ldb);
        break;
      case L3::kTrsm:
        blas::ref::trsm(in.side, in.uplo, in.trans, in.m, in.n, in.alpha,
                        a.cdata(), s.lda, bwant.data(), s.ldb);
        break;
    }
  }

 private:
  void prepare(const LInstance& in) {
    const bool tri_a = in.routine == L3::kSymm || in.routine == L3::kTrmm ||
                       in.routine == L3::kTrsm;
    if (tri_a) {
      for (index_t j = 0; j < s.a_cols; ++j)
        for (index_t i = 0; i < s.a_rows; ++i) {
          const bool stored = in.uplo == Uplo::kLower ? i >= j : i <= j;
          if (!stored) blas::at(a.data(), s.lda, i, j) = kNaN;
        }
    }
    if (in.routine == L3::kTrsm) {
      // Strict diagonal dominance: |diag| >= 1.5 while every stored
      // off-diagonal row sums below 1, so the solve stays well-conditioned
      // at any decomposition and the ULP comparison stays meaningful.
      const double damp =
          1.0 / static_cast<double>(std::max<index_t>(1, s.a_rows));
      for (index_t j = 0; j < s.a_cols; ++j)
        for (index_t i = 0; i < s.a_rows; ++i) {
          if (i == j)
            blas::at(a.data(), s.lda, i, i) =
                (i % 2 != 0 ? -1.0 : 1.0) *
                (1.5 + 0.5 * static_cast<double>(i % 4));
          else if (in.uplo == Uplo::kLower ? i > j : i < j)
            blas::at(a.data(), s.lda, i, j) *= damp;
        }
    }
    const bool exact_alpha = in.alpha == 1.0 || in.alpha == -1.0;
    switch (in.routine) {
      case L3::kSymm:
      case L3::kSyr2k:
        if (exact_alpha) {
          poison(a, rng, in.pdata);  // may land in the NaN triangle: harmless
          poison(b, rng, in.pdata);
        }
        poison(c, rng, in.pdata);
        break;
      case L3::kSyrk:
        if (exact_alpha) poison(a, rng, in.pdata);
        poison(c, rng, in.pdata);
        break;
      case L3::kTrmm:
        // A only: netlib's loop bounds skip the structural zeros of the
        // triangle, while the dense casting multiplies by them — a NaN/Inf
        // in B meets 0·NaN = NaN there. Poison in the *stored* triangle of
        // A participates in exactly the same products on both sides.
        if (exact_alpha) poison(a, rng, in.pdata);
        break;
      case L3::kTrsm:
        break;  // pdata forced to kNone at draw time
    }
  }
};

index_t l3_depth(const LInstance& in) {
  switch (in.routine) {
    case L3::kSyrk: return in.k + 2;
    case L3::kSyr2k: return 2 * in.k + 2;
    default: return (in.side == Side::kLeft ? in.m : in.n) + 2;
  }
}

std::optional<std::string> l3_compare(const LInstance& in, const L3Data& d) {
  const bool in_place = in.routine == L3::kTrmm || in.routine == L3::kTrsm;
  const CompareSpec spec{.depth = l3_depth(in),
                         .scale = in.routine == L3::kTrsm ? 8.0 : 2.0};
  if (in_place) {
    if (auto mm = compare_out("B", d.b.cdata(), d.bwant.data(), d.b.n, spec))
      return mm;
    if (!d.b.guard_ok()) return std::string("B: guard region overwritten");
  } else {
    if (auto mm = compare_out("C", d.c.cdata(), d.cwant.data(), d.c.n, spec))
      return mm;
    if (!d.c.guard_ok()) return std::string("C: guard region overwritten");
    if (auto mm = check_untouched("B", d.b, d.b0)) return mm;
  }
  return check_untouched("A", d.a, d.a0);
}

void l3_call(blas::Blas& impl, const LInstance& in, L3Data& d) {
  switch (in.routine) {
    case L3::kSymm:
      impl.symm(in.side, in.uplo, in.m, in.n, in.alpha, d.a.cdata(), d.s.lda,
                d.b.cdata(), d.s.ldb, in.beta, d.c.data(), d.s.ldc);
      break;
    case L3::kSyrk:
      impl.syrk(in.uplo, in.trans, in.n, in.k, in.alpha, d.a.cdata(), d.s.lda,
                in.beta, d.c.data(), d.s.ldc);
      break;
    case L3::kSyr2k:
      impl.syr2k(in.uplo, in.trans, in.n, in.k, in.alpha, d.a.cdata(),
                 d.s.lda, d.b.cdata(), d.s.ldb, in.beta, d.c.data(), d.s.ldc);
      break;
    case L3::kTrmm:
      impl.trmm(in.side, in.uplo, in.trans, in.m, in.n, in.alpha, d.a.cdata(),
                d.s.lda, d.b.data(), d.s.ldb);
      break;
    case L3::kTrsm:
      impl.trsm(in.side, in.uplo, in.trans, in.m, in.n, in.alpha, d.a.cdata(),
                d.s.lda, d.b.data(), d.s.ldb);
      break;
  }
}

/// One Blas implementation's Level-3 routine vs blas::ref, under the
/// instance's decomposition-block override (so NB boundaries get fuzzed).
std::optional<std::string> check_level3(std::uint64_t case_seed,
                                        blas::Blas& impl,
                                        const LInstance& in) {
  L3Data d(mix(case_seed, 0x1e73), in);
  impl.set_level3_block(std::max<index_t>(1, in.block));
  l3_call(impl, in, d);
  return l3_compare(in, d);
}

/// The prepacked-panel engine (blas/level3.hpp) on the case's generated
/// block kernel: serial and threaded contexts each vs blas::ref, then
/// bit-compared against each other — the tile decomposition is fixed at
/// pack time, so thread count must not change a single bit.
std::optional<std::string> check_level3_engine(CaseRt& rt,
                                               const augem::GemmBlockFn& block,
                                               const LInstance& in) {
  blas::BlockSizes sizes;
  sizes.mc = rt.cfg.params.mr * 2;
  sizes.nc = std::max<index_t>(8, rt.cfg.params.nr * 2);
  sizes.kc = 6;
  const blas::BlockKernel kernel = augem::padded_gemm_block_kernel(
      block, rt.cfg.params.mr, rt.cfg.params.nr);

  std::vector<double> serial_b, serial_c;
  for (const bool threaded : {false, true}) {
    L3Data d(mix(rt.case_seed, 0x1e75), in);  // identical data both ways
    blas::GemmContext ctx = threaded ? blas::threaded_gemm_context(sizes)
                                     : blas::serial_gemm_context(sizes);
    ctx.jr_granule = std::max<index_t>(8, rt.cfg.params.nr);
    const blas::Level3Config cfg{ctx, kernel,
                                 std::max<index_t>(1, in.block), nullptr};
    switch (in.routine) {
      case L3::kSymm:
        blas::level3_symm(cfg, in.side, in.uplo, in.m, in.n, in.alpha,
                          d.a.cdata(), d.s.lda, d.b.cdata(), d.s.ldb, in.beta,
                          d.c.data(), d.s.ldc);
        break;
      case L3::kSyrk:
        blas::level3_syrk(cfg, in.uplo, in.trans, in.n, in.k, in.alpha,
                          d.a.cdata(), d.s.lda, in.beta, d.c.data(), d.s.ldc);
        break;
      case L3::kSyr2k:
        blas::level3_syr2k(cfg, in.uplo, in.trans, in.n, in.k, in.alpha,
                           d.a.cdata(), d.s.lda, d.b.cdata(), d.s.ldb,
                           in.beta, d.c.data(), d.s.ldc);
        break;
      case L3::kTrmm:
        blas::level3_trmm(cfg, in.side, in.uplo, in.trans, in.m, in.n,
                          in.alpha, d.a.cdata(), d.s.lda, d.b.data(),
                          d.s.ldb);
        break;
      case L3::kTrsm:
        blas::level3_trsm(cfg, in.side, in.uplo, in.trans, in.m, in.n,
                          in.alpha, d.a.cdata(), d.s.lda, d.b.data(),
                          d.s.ldb);
        break;
    }
    if (auto mm = l3_compare(in, d))
      return std::string(threaded ? "threaded: " : "serial: ") + *mm;
    const std::vector<double> got_b = d.b.payload(), got_c = d.c.payload();
    if (!threaded) {
      serial_b = got_b;
      serial_c = got_c;
    } else if ((!got_b.empty() &&
                std::memcmp(got_b.data(), serial_b.data(),
                            got_b.size() * sizeof(double)) != 0) ||
               (!got_c.empty() &&
                std::memcmp(got_c.data(), serial_c.data(),
                            got_c.size() * sizeof(double)) != 0)) {
      return std::string("serial and threaded engine results differ bitwise");
    }
  }
  return std::nullopt;
}

// ---- shrinking ------------------------------------------------------------

/// Greedy per-dimension minimization: repeatedly halve each dimension (in
/// `gran` units, not below `lo`) while `fails()` — which must re-run the
/// failing check against the dimensions through the pointers — stays true.
void shrink_dims(const std::vector<std::int64_t*>& dims,
                 const std::vector<std::int64_t>& lo,
                 const std::vector<std::int64_t>& gran,
                 const std::function<bool()>& fails, int budget = 64) {
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (std::size_t d = 0; d < dims.size() && budget > 0; ++d) {
      while (*dims[d] > lo[d] && budget > 0) {
        const std::int64_t save = *dims[d];
        std::int64_t next = (save / gran[d] / 2) * gran[d];
        if (next == save) next = save - gran[d];
        next = std::max(next, lo[d]);
        if (next == save) break;
        *dims[d] = next;
        --budget;
        if (!fails()) {
          *dims[d] = save;
          break;
        }
        progress = true;
      }
    }
  }
}

template <typename T>
void try_simplify(T& field, T candidate, const std::function<bool()>& fails) {
  const T save = field;
  field = candidate;
  if (!fails()) field = save;
}

// ---- run context ----------------------------------------------------------

struct NamedBlas {
  std::string name;
  std::unique_ptr<blas::Blas> impl;
};

/// Base-class batch oracle: only gemm_batch_strided (inherited, the
/// reference loop) is ever called; the pure virtuals are inert stubs.
class BatchOracle final : public blas::Blas {
 public:
  std::string name() const override { return "batch-oracle"; }
  void gemm(Trans, Trans, index_t, index_t, index_t, double, const double*,
            index_t, const double*, index_t, double, double*,
            index_t) override {}
  void gemv(index_t, index_t, double, const double*, index_t, const double*,
            double, double*) override {}
  void axpy(index_t, double, const double*, double*) override {}
  double dot(index_t, const double*, const double*) override { return 0.0; }
  void scal(index_t, double, double*) override {}
};

struct RunCtx {
  bool jit_ok = false;
  std::vector<NamedBlas> impls;
  /// Batched-path runtime (memory-only, no tuner) + the serving BLAS on
  /// top of it; null when the JIT path is off or unavailable.
  std::unique_ptr<runtime::KernelRuntime> batch_rt;
  std::unique_ptr<blas::Blas> batch_impl;
  BatchOracle batch_oracle;
};

RunCtx make_run_ctx(const FuzzOptions& opts) {
  RunCtx ctx;
  ctx.jit_ok = opts.run_jit && jit::toolchain_available();
  // The Level-3 paths reuse the batch runtime as their RuntimeBlas under
  // test, so either toggle keeps it alive.
  if ((opts.run_batch || opts.run_level3) && ctx.jit_ok) {
    runtime::RuntimeConfig rc;
    rc.use_persistent = false;
    rc.tune_on_miss = false;
    rc.code_cache_capacity = 64;
    ctx.batch_rt = std::make_unique<runtime::KernelRuntime>(rc);
    ctx.batch_impl = runtime::make_runtime_blas(*ctx.batch_rt);
  }
  if (!opts.run_blas) return ctx;
  ctx.impls.push_back({"refblas", blas::make_refblas()});
  ctx.impls.push_back({"gotosim", blas::make_gotosim()});
  ctx.impls.push_back({"atlsim", blas::make_atlsim()});
  if (host_arch().has_avx2 && host_arch().has_fma3)
    ctx.impls.push_back({"vendorsim", blas::make_vendorsim()});
  if (ctx.jit_ok) {
    try {
      ctx.impls.push_back({"augem", augem::make_augem_blas()});
    } catch (const Error&) {
      // No natively generatable kernel set on this host; the VM paths still
      // cover the generated code.
    }
  }
  return ctx;
}

int count_f64_params(const ir::Kernel& k) {
  int n = 0;
  for (const ir::Param& p : k.params())
    if (p.type == ir::ScalarType::kF64) ++n;
  return n;
}

void log_failure(const FuzzOptions& opts, const Failure& f) {
  if (opts.log == nullptr) return;
  *opts.log << "FAIL case " << f.case_index << " [" << f.path << "] "
            << f.config << " | " << f.instance << "\n  " << f.detail << "\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::string FuzzReport::to_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed << ",\"cases_run\":" << cases_run
     << ",\"configs_rejected\":" << configs_rejected << ",\"path_runs\":{";
  bool first = true;
  for (const auto& [name, count] : path_runs) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << count;
  }
  os << "},\"path_families\":{";
  // Aggregate by path family: everything before the first ':' (so
  // "blas:gotosim:gemv" counts toward "blas"), giving a stable coarse
  // coverage summary even as the per-path names grow.
  std::map<std::string, std::int64_t> families;
  for (const auto& [name, count] : path_runs)
    families[name.substr(0, name.find(':'))] += count;
  first = true;
  for (const auto& [name, count] : families) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << count;
  }
  os << "},\"failures\":[";
  first = true;
  for (const Failure& f : failures) {
    if (!first) os << ",";
    first = false;
    os << "{\"case\":" << f.case_index << ",\"case_seed\":" << f.case_seed
       << ",\"path\":\"" << json_escape(f.path) << "\",\"config\":\""
       << json_escape(f.config) << "\",\"instance\":\""
       << json_escape(f.instance) << "\",\"detail\":\""
       << json_escape(f.detail) << "\"}";
  }
  os << "],\"ok\":" << (failures.empty() ? "true" : "false") << "}";
  return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport rep;
  rep.seed = opts.seed;
  RunCtx run = make_run_ctx(opts);
  const auto t0 = std::chrono::steady_clock::now();

  const std::int64_t begin = opts.only_case >= 0 ? opts.only_case : 0;
  const std::int64_t end =
      opts.only_case >= 0 ? opts.only_case + 1 : opts.cases;

  for (std::int64_t ci = begin; ci < end; ++ci) {
    if (opts.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() > opts.time_budget_seconds) break;
    }
    if (static_cast<std::int64_t>(rep.failures.size()) >= opts.max_failures)
      break;

    const std::uint64_t case_seed =
        mix(opts.seed, static_cast<std::uint64_t>(ci));
    Rng rng(case_seed);
    CaseRt rt;
    rt.case_seed = case_seed;
    rt.cfg = draw_config(rng);

    // All instance draws happen up front so that toggling individual paths
    // never changes what any other path sees for the same (seed, case).
    const KInstance kin = draw_kinstance(rng, rt.cfg);
    const DInstance din = draw_dinstance(rng, rt.cfg);
    const BInstance bin = draw_binstance(rng, rt.cfg);
    const TInstance tin = draw_tinstance(rng);
    const LInstance lin = draw_linstance(rng);

    ++rep.cases_run;

    auto record = [&](const std::string& path, const std::string& instance,
                      const std::string& detail) {
      Failure f;
      f.case_index = ci;
      f.case_seed = case_seed;
      f.path = path;
      f.config = rt.cfg.to_string();
      f.instance = instance;
      f.detail = detail;
      log_failure(opts, f);
      rep.failures.push_back(std::move(f));
    };

    // ---- generation + static verification --------------------------------
    try {
      ir::Kernel k = transform::generate_optimized_c(rt.cfg.op, rt.cfg.layout,
                                                     rt.cfg.params);
      opt::OptConfig oc;
      oc.isa = rt.cfg.isa;
      oc.strategy = rt.cfg.strategy;
      rt.g.emplace(asmgen::generate_assembly(std::move(k), oc));
    } catch (const Error&) {
      // The planner / register allocator refused this configuration — an
      // expected outcome for out-of-domain points, not a failure.
      ++rep.configs_rejected;
      continue;
    }

    ++rep.path_runs["verifier"];
    const std::vector<opt::VerifyIssue> issues =
        opt::verify_machine_code(rt.g->insts, count_f64_params(rt.g->source));
    if (!issues.empty()) {
      std::ostringstream os;
      for (const opt::VerifyIssue& is : issues)
        os << "[inst " << is.index << "] " << is.message << "; ";
      record("verifier", kin.to_string(rt.cfg.op), os.str());
      continue;  // the machine code is suspect; skip the numeric paths
    }

    // ---- full static analysis with bounds proofs --------------------------
    // Beyond the structural verifier: prove, from the kernel contract alone,
    // that every memory access stays inside the caller's buffers. A proof
    // failure here is a generator bug even if every numeric path agrees.
    ++rep.path_runs["mirlint"];
    if (opts.run_semantics) ++rep.path_runs["semantics"];
    {
      const analysis::KernelContract contract = analysis::contract_for(
          rt.cfg.op, rt.cfg.layout, rt.cfg.params, rt.g->source);
      analysis::SemanticsSpec sspec;
      sspec.kind = rt.cfg.op;
      sspec.layout = rt.cfg.layout;
      analysis::AnalyzeOptions aopts;
      aopts.num_f64_params = count_f64_params(rt.g->source);
      aopts.contract = &contract;
      // The translation validator rides the same analyze() call, so the
      // static proofs cost one pass per case; its findings are attributed
      // to their own path (the `semantics-*` kind prefix).
      if (opts.run_semantics) aopts.semantics = &sspec;
      const analysis::AnalysisReport ar = analysis::analyze(rt.g->insts, aopts);
      if (ar.errors() > 0) {
        std::ostringstream bounds_os, sem_os;
        for (const analysis::Finding& f : ar.findings) {
          if (f.severity != analysis::Severity::kError) continue;
          std::ostringstream& os =
              f.kind.rfind("semantics-", 0) == 0 ? sem_os : bounds_os;
          os << "[inst " << f.index << "] " << f.kind << ": " << f.message
             << "; ";
        }
        if (!bounds_os.str().empty())
          record("mirlint", kin.to_string(rt.cfg.op), bounds_os.str());
        if (!sem_os.str().empty())
          record("semantics", kin.to_string(rt.cfg.op), sem_os.str());
        continue;
      }
    }

    const bool native = run.jit_ok && host_arch().supports(rt.cfg.isa);
    if (native) {
      try {
        rt.mod = std::make_unique<jit::CompiledModule>(
            jit::assemble(rt.g->asm_text));
      } catch (const Error& e) {
        record("jit-assemble", kin.to_string(rt.cfg.op), e.what());
        continue;
      }
    }

    // ---- kernel-contract paths -------------------------------------------
    std::vector<Path> paths;
    if (opts.run_interp) paths.push_back(Path::kInterp);
    if (opts.run_vm) paths.push_back(Path::kVm);
    if (rt.mod != nullptr) paths.push_back(Path::kJit);
    for (Path p : paths) {
      ++rep.path_runs[path_name(p)];
      auto run_check = [&](const KInstance& inst) -> std::optional<std::string> {
        try {
          return check_kernel(rt, p, inst);
        } catch (const Error& e) {
          return std::string("execution error: ") + e.what();
        }
      };
      std::optional<std::string> fail = run_check(kin);
      if (!fail) continue;
      KInstance small = kin;
      if (opts.shrink) {
        auto fails = [&]() { return run_check(small).has_value(); };
        const std::int64_t mr = rt.cfg.params.mr, nr = rt.cfg.params.nr;
        if (rt.cfg.op == KernelKind::kGemm)
          shrink_dims({&small.d[0], &small.d[1], &small.d[2], &small.d[3]},
                      {mr, nr, 0, 0}, {mr, nr, 1, 1}, fails);
        else
          shrink_dims({&small.d[0], &small.d[1], &small.d[2]}, {0, 0, 0},
                      {1, 1, 1}, fails);
        try_simplify(small.p, Poison::kNone, fails);
        try_simplify(small.alpha, 1.0, fails);
        fail = run_check(small);
        if (!fail) {  // shrinking lost the failure; report the original
          small = kin;
          fail = run_check(small);
        }
      }
      record(path_name(p), small.to_string(rt.cfg.op),
             fail.value_or("unreproducible after shrink"));
    }

    // ---- blocked driver (GEMM configurations) ----------------------------
    // The driver's pack_b produces the row-panel layout (pb[l*nc + j]);
    // col-major-layout kernels are VM/interp-only by construction. The block
    // function is shared with the Level-3 engine path below.
    augem::GemmBlockFn block;
    if (rt.cfg.op == KernelKind::kGemm &&
        rt.cfg.layout == BLayout::kRowPanel) {
      if (rt.mod != nullptr) {
        auto* fn = rt.mod->fn<void(long, long, long, const double*,
                                   const double*, double*, long)>(rt.g->name);
        block = fn;
      } else {
        // VM-backed block kernel: a fresh Machine per call keeps the
        // threaded driver's concurrent invocations independent.
        const opt::MInstList* insts = &rt.g->insts;
        block = [insts](long mc, long nc, long kc, const double* pa,
                        const double* pb, double* c, long ldc) {
          vm::Machine m(*insts);
          m.call({mc, nc, kc, pa, pb, c, ldc});
        };
      }
    }
    if (opts.run_driver && block) {
      for (const bool threaded : {false, true}) {
        const char* pname = threaded ? "driver-threaded" : "driver-serial";
        ++rep.path_runs[pname];
        auto run_check =
            [&](const DInstance& inst) -> std::optional<std::string> {
          try {
            return check_driver(rt, block, threaded, inst);
          } catch (const Error& e) {
            return std::string("execution error: ") + e.what();
          }
        };
        std::optional<std::string> fail = run_check(din);
        if (!fail) continue;
        DInstance small = din;
        if (opts.shrink) {
          auto fails = [&]() { return run_check(small).has_value(); };
          shrink_dims({&small.m, &small.n, &small.k, &small.sa, &small.sb,
                       &small.sc},
                      {0, 0, 0, 0, 0, 0}, {1, 1, 1, 1, 1, 1}, fails);
          try_simplify(small.pc, Poison::kNone, fails);
          try_simplify(small.poison_ab, false, fails);
          try_simplify(small.beta, 1.0, fails);
          try_simplify(small.alpha, 1.0, fails);
          fail = run_check(small);
          if (!fail) {
            small = din;
            fail = run_check(small);
          }
        }
        record(pname, small.to_string(),
               fail.value_or("unreproducible after shrink"));
      }
    }

    // ---- BLAS wrappers vs the netlib oracle ------------------------------
    if (opts.run_blas) {
      for (NamedBlas& nb : run.impls) {
        if (static_cast<std::int64_t>(rep.failures.size()) >=
            opts.max_failures)
          break;
        const int variants = rt.cfg.op == KernelKind::kGemv ? 2 : 1;
        for (int v = 0; v < variants; ++v) {
          const bool transposed = v == 1;
          std::string pname = "blas:" + nb.name + ":" +
                              frontend::kernel_kind_name(rt.cfg.op);
          if (transposed) pname += "_t";
          ++rep.path_runs[pname];
          auto run_check =
              [&](const BInstance& inst) -> std::optional<std::string> {
            try {
              return check_blas(case_seed, *nb.impl, rt.cfg.op, transposed,
                                inst);
            } catch (const Error& e) {
              return std::string("execution error: ") + e.what();
            }
          };
          std::optional<std::string> fail = run_check(bin);
          if (!fail) continue;
          BInstance small = bin;
          if (opts.shrink) {
            auto fails = [&]() { return run_check(small).has_value(); };
            shrink_dims({&small.m, &small.n, &small.k, &small.slack},
                        {0, 0, 0, 0}, {1, 1, 1, 1}, fails);
            try_simplify(small.pdata, Poison::kNone, fails);
            try_simplify(small.beta, 1.0, fails);
            try_simplify(small.alpha, 1.0, fails);
            fail = run_check(small);
            if (!fail) {
              small = bin;
              fail = run_check(small);
            }
          }
          record(pname, small.to_string(rt.cfg.op),
                 fail.value_or("unreproducible after shrink"));
        }
      }
    }

    // ---- batched small-GEMM serving path vs the reference epilogue loop --
    // Gated on GEMM configs so the fast path still sees ~1/5 of all cases
    // without ballooning JIT builds (each distinct shape+epilogue builds
    // once into the run's shared code cache).
    if (opts.run_batch && run.batch_impl != nullptr &&
        rt.cfg.op == KernelKind::kGemm &&
        static_cast<std::int64_t>(rep.failures.size()) < opts.max_failures) {
      ++rep.path_runs["batch"];
      auto run_check = [&](const TInstance& inst) -> std::optional<std::string> {
        try {
          return check_batch(case_seed, *run.batch_impl, run.batch_oracle,
                             inst);
        } catch (const Error& e) {
          return std::string("execution error: ") + e.what();
        }
      };
      std::optional<std::string> fail = run_check(tin);
      if (fail) {
        TInstance small = tin;
        if (opts.shrink) {
          auto fails = [&]() { return run_check(small).has_value(); };
          shrink_dims({&small.batch, &small.m, &small.n, &small.k, &small.sa,
                       &small.sb, &small.sc},
                      {1, 1, 1, 1, 0, 0, 0}, {1, 1, 1, 1, 1, 1, 1}, fails);
          try_simplify(small.p, Poison::kNone, fails);
          try_simplify(small.relu, false, fails);
          try_simplify(small.bias_mode, 0, fails);
          try_simplify(small.beta, 1.0, fails);
          try_simplify(small.alpha, 1.0, fails);
          fail = run_check(small);
          if (!fail) {
            small = tin;
            fail = run_check(small);
          }
        }
        record("batch", small.to_string(),
               fail.value_or("unreproducible after shrink"));
      }
    }

    // ---- Level-3 routines (SYMM/SYRK/SYR2K/TRMM/TRSM) --------------------
    // Gated on GEMM configs like the batch path: the casting engines ride
    // on the same generated block kernels, and 1/5 of all cases keeps the
    // JIT build count bounded while covering every routine × variant. Three
    // families per case: the library casting of every Blas implementation,
    // the RuntimeBlas dispatch path, and the prepacked-panel engine (serial
    // vs threaded, bit-compared).
    if (opts.run_level3 && rt.cfg.op == KernelKind::kGemm) {
      const std::string routine = l3_name(lin.routine);
      auto sweep_l3 = [&](const std::string& pname,
                          const std::function<std::optional<std::string>(
                              const LInstance&)>& run_check) {
        ++rep.path_runs[pname];
        std::optional<std::string> fail = run_check(lin);
        if (!fail) return;
        LInstance small = lin;
        if (opts.shrink) {
          auto fails = [&]() { return run_check(small).has_value(); };
          shrink_dims({&small.m, &small.n, &small.k, &small.slack},
                      {0, 0, 0, 0}, {1, 1, 1, 1}, fails);
          try_simplify(small.pdata, Poison::kNone, fails);
          try_simplify(small.beta, 1.0, fails);
          try_simplify(small.alpha, 1.0, fails);
          try_simplify(small.block, std::int64_t{16}, fails);
          fail = run_check(small);
          if (!fail) {
            small = lin;
            fail = run_check(small);
          }
        }
        record(pname, small.to_string(),
               fail.value_or("unreproducible after shrink"));
      };

      if (opts.run_blas) {
        for (NamedBlas& nb : run.impls) {
          if (static_cast<std::int64_t>(rep.failures.size()) >=
              opts.max_failures)
            break;
          sweep_l3("level3:" + nb.name + ":" + routine,
                   [&](const LInstance& inst) -> std::optional<std::string> {
                     try {
                       return check_level3(case_seed, *nb.impl, inst);
                     } catch (const Error& e) {
                       return std::string("execution error: ") + e.what();
                     }
                   });
        }
      }
      if (run.batch_impl != nullptr &&
          static_cast<std::int64_t>(rep.failures.size()) < opts.max_failures)
        sweep_l3("level3:runtime:" + routine,
                 [&](const LInstance& inst) -> std::optional<std::string> {
                   try {
                     return check_level3(case_seed, *run.batch_impl, inst);
                   } catch (const Error& e) {
                     return std::string("execution error: ") + e.what();
                   }
                 });
      if (block &&
          static_cast<std::int64_t>(rep.failures.size()) < opts.max_failures)
        sweep_l3("level3-engine:" + routine,
                 [&](const LInstance& inst) -> std::optional<std::string> {
                   try {
                     return check_level3_engine(rt, block, inst);
                   } catch (const Error& e) {
                     return std::string("execution error: ") + e.what();
                   }
                 });
    }

    if (opts.log != nullptr && (ci + 1) % 100 == 0)
      *opts.log << "  ..." << (ci + 1) << " cases, " << rep.configs_rejected
                << " rejected, " << rep.failures.size() << " failures\n";
  }
  return rep;
}

}  // namespace augem::check
