#pragma once
// Floating-point comparison policy of the differential harness.
//
// Different execution paths of the same kernel legitimately differ in the
// last bits: SIMD vectorization regroups reductions, FMA fuses the
// multiply-add rounding, and the blocked driver splits the k-sum at block
// boundaries. The comparison therefore accepts a reassociation-sized slack
// that scales with the reduction depth, but is exact about the *class* of
// the value: NaN must meet NaN, and an infinity must match in sign.
// See docs/correctness.md for the full policy statement.

#include <cstdint>

namespace augem::check {

/// Distance between two doubles in units in the last place, measured on
/// the monotonic integer number line of IEEE-754 bit patterns (so the
/// distance across 0 counts the representable values in between). NaN on
/// either side yields the maximum distance unless both are NaN (0).
std::uint64_t ulp_distance(double a, double b);

/// One comparison context: how deep a reduction produced the value and how
/// large the summed terms can be.
struct CompareSpec {
  std::int64_t depth = 1;       ///< reduction length behind each element
  double scale = 1.0;           ///< magnitude bound of the summed terms
  std::uint64_t max_ulps = 256; ///< per-depth-unit ULP budget

  /// True when `got` is an acceptable value for oracle result `want`:
  ///  * both NaN (any payload), or
  ///  * both the same signed infinity, or
  ///  * finite and within depth·scale·1e-12 absolutely, or within
  ///    depth·max_ulps ULPs.
  bool close(double got, double want) const;
};

}  // namespace augem::check
