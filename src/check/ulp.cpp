#include "check/ulp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace augem::check {

namespace {

/// Maps a double onto an unsigned scale where adjacent representable
/// values are adjacent integers and ordering matches numeric ordering
/// (negative values are reflected below the positives).
std::uint64_t ordered_key(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return (u >> 63) != 0 ? ~u : (u | 0x8000000000000000ull);
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  const bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return na && nb ? 0 : std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t ka = ordered_key(a), kb = ordered_key(b);
  return ka > kb ? ka - kb : kb - ka;
}

bool CompareSpec::close(double got, double want) const {
  if (std::isnan(want) || std::isnan(got))
    return std::isnan(want) && std::isnan(got);
  if (std::isinf(want) || std::isinf(got)) return got == want;
  const double d = static_cast<double>(std::max<std::int64_t>(depth, 1));
  const double abs_tol = 1e-12 * d * std::max(scale, 1.0);
  if (std::abs(got - want) <= abs_tol) return true;
  return ulp_distance(got, want) <=
         max_ulps * static_cast<std::uint64_t>(std::max<std::int64_t>(depth, 1));
}

}  // namespace augem::check
