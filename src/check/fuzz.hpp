#pragma once
// Differential fuzzing harness for the whole codegen pipeline.
//
// Each case draws a random kernel configuration (operation, ISA,
// vectorization strategy, register tile / unroll factors, prefetching,
// B layout) and a random problem instance (ragged shapes around tile
// boundaries, strided leading dimensions, special alpha/beta values,
// NaN/Inf poisoning of the data), then runs the generated kernel through
// every execution path the repository has:
//
//   * the IR interpreter on the tagged low-level C (`GeneratedKernel::source`),
//   * the machine-IR VM on the machine code (`GeneratedKernel::insts`),
//   * the JIT-assembled native function (when the host executes the ISA),
//   * for GEMM, the blocked driver — serial and threaded — through
//     `augem::padded_gemm_block_kernel`,
//   * the BLAS-level wrappers (AUGEM + the simulated comparator libraries)
//     against the netlib-semantics oracle `blas::ref`,
//   * the batched small-GEMM serving path (`gemm_batch_strided` with fused
//     alpha/beta, bias, and ReLU epilogues) against the reference batch
//     loop in `blas::Blas` — including NaN/Inf propagation through the
//     MAXPD-semantics ReLU (relu(NaN) == 0),
//   * the Level-3 routines (SYMM/SYRK/SYR2K/TRMM/TRSM, Side × Uplo × Trans)
//     three ways: every library's GEMM-casting vs the netlib oracle, the
//     prepacked-panel engine serial vs threaded (which must be
//     bit-identical) vs the oracle, and the RuntimeBlas dispatch path —
//     with NaN-filled unstored triangles proving the masked accessors never
//     read outside the stored triangle.
//
// Every generated kernel additionally passes through the static machine-code
// verifier (`opt::verify_machine_code`). All numeric paths are cross-checked
// element-wise against a reference oracle under the ULP policy of
// check/ulp.hpp; on mismatch the harness shrinks the instance to a minimal
// reproducer and records a machine-readable failure. Everything is
// deterministic in (seed, case index). See docs/correctness.md.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace augem::check {

struct FuzzOptions {
  std::uint64_t seed = 1;       ///< master seed; case i uses mix(seed, i)
  std::int64_t cases = 1000;    ///< number of (config, instance) cases
  std::int64_t only_case = -1;  ///< run just this case index (reproducers)
  double time_budget_seconds = 0;  ///< stop early after this long (0 = off)

  bool run_interp = true;   ///< IR interpreter path
  bool run_vm = true;       ///< machine-IR VM path
  bool run_jit = true;      ///< native JIT path (auto-skipped off-ISA)
  bool run_driver = true;   ///< blocked GEMM driver, serial + threaded
  bool run_blas = true;     ///< BLAS-level wrappers vs blas::ref
  bool run_batch = true;    ///< batched small-GEMM fast path vs the
                            ///< reference epilogue oracle (JIT hosts only)
  bool run_level3 = true;   ///< SYMM/SYRK/SYR2K/TRMM/TRSM: library casting,
                            ///< prepacked engine (serial ≡ threaded), and
                            ///< RuntimeBlas dispatch vs blas::ref
  bool run_semantics = true;  ///< translation validation (the symbolic
                              ///< equivalence proof) on every generated
                              ///< kernel, alongside the bounds proofs
  bool shrink = true;       ///< minimize failing instances

  std::int64_t max_failures = 16;  ///< stop after this many failures
  std::ostream* log = nullptr;     ///< optional progress/failure narration
};

/// One cross-check mismatch (or verifier/generation error), with enough
/// context to reproduce it: `fuzz_kernels --seed <seed> --case <index>`.
struct Failure {
  std::int64_t case_index = 0;
  std::uint64_t case_seed = 0;
  std::string path;      ///< "vm", "jit", "driver-threaded", "blas:gotosim:gemv", …
  std::string config;    ///< kernel configuration (op/ISA/strategy/tile)
  std::string instance;  ///< minimized problem instance
  std::string detail;    ///< first mismatching element, got vs want
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::int64_t cases_run = 0;
  /// Configurations outside the generator's domain (vectorization planner
  /// or register allocator rejected them). Not failures: the pipeline is
  /// expected to refuse them with a clear error.
  std::int64_t configs_rejected = 0;
  /// Number of executions per path name (how often each path actually ran).
  std::map<std::string, std::int64_t> path_runs;
  std::vector<Failure> failures;

  bool ok() const { return failures.empty(); }
  /// Machine-readable report (one JSON object; stable key order).
  std::string to_json() const;
};

/// Runs the harness. Deterministic for fixed options.
FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace augem::check
