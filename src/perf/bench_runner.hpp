#pragma once
// BenchRunner: the one way this repository measures a kernel.
//
//   1. warmup until run-to-run improvement stops (first-touch paging, JIT
//      residency, branch/cache warm state) — detected, not guessed;
//   2. adaptive repetition: sample until the 95% CI on the median is
//      within a target fraction of the median, subject to rep and wall
//      budgets;
//   3. robust statistics (median/MAD, see stats.hpp);
//   4. a frequency probe before and after the samples flags measurements
//      taken while the clock was ramping or thermal-throttling.
//
// Every bench/ target and tools/bench_gate measure through this class, so
// a GFLOPS number anywhere in the repository carries the same semantics:
// *median of post-warmup repetitions with a known confidence interval*.
// (docs/benchmarking.md is the methodology reference.)

#include <functional>
#include <vector>

#include "perf/stats.hpp"

namespace augem::perf {

struct RunnerOptions {
  int min_reps = 5;     ///< floor: CI needs a few samples to mean anything
  int max_reps = 40;    ///< rep budget when the CI refuses to converge
  double target_rel_ci = 0.03;  ///< stop when ci_half/median drops below
  double max_seconds = 2.0;     ///< wall budget per measurement (post-warmup)
  int warmup_min_reps = 1;
  int warmup_max_reps = 8;
  /// A warmup run within this fraction of the best time seen so far means
  /// the workload has stopped improving and measurement can begin.
  double warmup_tolerance = 0.10;
  /// Run the frequency probe around the samples (off for sub-microsecond
  /// workloads where the probe itself would dominate).
  bool check_frequency = true;
  /// Frequency drift beyond this fraction marks the measurement unstable.
  double max_freq_drift = 0.10;

  /// Honors AUGEM_BENCH_REPS=n (the historical quick-smoke knob): fixed n
  /// reps, one warmup run, no frequency probe. Returns the options
  /// unchanged when the variable is unset.
  static RunnerOptions from_env(RunnerOptions base);
  static RunnerOptions from_env();
};

/// One measurement: the post-warmup timing samples and their summary.
struct Measurement {
  std::vector<double> samples_s;  ///< post-warmup, in run order
  Summary seconds;                ///< robust summary of samples_s
  int warmup_runs = 0;
  bool hit_target_ci = false;  ///< CI converged within the budgets
  double freq_drift = 0.0;     ///< |probe_after/probe_before - 1|
  bool frequency_stable = true;
  double flops = 0.0;  ///< per-run flop count the caller supplied

  double median_s() const { return seconds.median; }
  /// GFLOPS at the median / the CI edges (lo pairs with the slow edge).
  double gflops() const;
  double gflops_lo() const;
  double gflops_hi() const;
  double mflops() const { return gflops() * 1000.0; }
};

class BenchRunner {
 public:
  explicit BenchRunner(RunnerOptions options = RunnerOptions::from_env());

  /// Measures `fn`, a closure performing `flops` floating-point operations
  /// per invocation (0 when GFLOPS is not meaningful, e.g. latency
  /// benches).
  Measurement run(double flops, const std::function<void()>& fn) const;

  const RunnerOptions& options() const { return options_; }

 private:
  RunnerOptions options_;
};

}  // namespace augem::perf
