#pragma once
// Peak-GFLOPS roofline annotation from the CPUID-detected architecture.
//
// The paper reports efficiency against machine peak (Table 5 lists each
// testbed's peak GFLOPS); the reporter annotates every BENCH_*.json with
// the same ceiling so a trajectory can say "82% of peak" instead of a bare
// number. Peak needs the nominal frequency, which CPUID does not expose
// portably — the synthetic arches carry it, and the host value can be
// supplied with AUGEM_NOMINAL_GHZ; without it the reporter records the
// per-cycle ceiling only.

#include "support/arch.hpp"

namespace augem::perf {

/// Double-precision FLOPs per cycle per core the ISA can retire on the
/// paper's machine model: SSE2 2 lanes × (mul+add) = 4, AVX 4 × 2 = 8,
/// FMA3/FMA4 4 lanes × 2 flops × 2 FMA ports = 16.
double flops_per_cycle(Isa isa);

/// Single-core peak GFLOPS for `isa` on `arch`, or 0 when the nominal
/// frequency is unknown. Honors AUGEM_NOMINAL_GHZ (GHz, decimal) when the
/// arch itself carries no frequency.
double peak_gflops(const CpuArch& arch, Isa isa);

/// "12.3 GFLOPS (77% of 16.0 peak)" or "12.3 GFLOPS (peak unknown)".
std::string roofline_annotation(double gflops, const CpuArch& arch, Isa isa);

}  // namespace augem::perf
