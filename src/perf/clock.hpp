#pragma once
// The one monotonic clock the benchmark harness uses. Every measurement in
// the repository — BenchRunner samples, warmup detection, the frequency
// sanity probe, the bench/ scaffolding — reads this clock and no other, so
// two numbers from different benches are always comparable. (Historically
// the benches mixed support/timer.hpp best-of/mean-of helpers with ad-hoc
// stopwatch loops; docs/benchmarking.md records the deflaking rationale.)

#include <functional>

namespace augem::perf {

/// Seconds on a monotonic clock with an arbitrary epoch (steady_clock).
double monotonic_now_s();

/// Stopwatch on the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_now_s()) {}
  double elapsed_s() const { return monotonic_now_s() - start_; }
  void reset() { start_ = monotonic_now_s(); }

 private:
  double start_;
};

/// Times one invocation of `fn` in seconds.
double time_call(const std::function<void()>& fn);

/// Spins the FPU for `seconds` of wall time. Run once before a suite's
/// first measurement so it is not taken during the CPU's clock ramp
/// (observed: the first binary of a suite run can otherwise measure at
/// half frequency).
void spin_fpu(double seconds);

/// A fixed-size dependent floating-point workload, used as the frequency
/// probe: its wall time is proportional to 1/clock, so running it before
/// and after a measurement and comparing the two times detects frequency
/// or thermal drift *during* the measurement. Returns elapsed seconds
/// (~1 ms on a ~GHz machine).
double frequency_probe_s();

}  // namespace augem::perf
