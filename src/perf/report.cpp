#include "perf/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>

#include "perf/roofline.hpp"
#include "support/arch.hpp"
#include "support/error.hpp"

#ifndef AUGEM_GIT_REV
#define AUGEM_GIT_REV "unknown"
#endif

namespace augem::perf {

std::string BenchRow::key() const {
  std::ostringstream os;
  os << name << "/" << m << "x" << n << "x" << k << "/t" << threads;
  return os.str();
}

double BenchRow::rel_noise() const {
  if (gflops <= 0.0) return 0.0;
  const double half =
      std::max(gflops - gflops_lo, gflops_hi > 0.0 ? gflops_hi - gflops : 0.0);
  return half / gflops;
}

BenchRow BenchRow::from_measurement(const Measurement& meas, std::string name,
                                    long mm, long nn, long kk, int threads) {
  BenchRow r;
  r.name = std::move(name);
  r.m = mm;
  r.n = nn;
  r.k = kk;
  r.threads = threads;
  r.gflops = meas.gflops();
  r.gflops_lo = meas.gflops_lo();
  r.gflops_hi = meas.gflops_hi();
  r.median_s = meas.seconds.median;
  r.mad_s = meas.seconds.mad;
  r.reps = static_cast<int>(meas.seconds.n);
  r.frequency_stable = meas.frequency_stable;
  return r;
}

Json BenchReport::to_json() const {
  Json j = Json::object();
  j["schema"] = Json(schema);
  j["bench"] = Json(bench);
  j["machine"] = Json(machine);
  j["git_rev"] = Json(git_rev);
  j["timestamp"] = Json(timestamp);
  j["peak_gflops"] = Json(peak_gflops);
  Json rows_j = Json::array();
  for (const BenchRow& r : rows) {
    Json row = Json::object();
    row["name"] = Json(r.name);
    row["m"] = Json(static_cast<std::int64_t>(r.m));
    row["n"] = Json(static_cast<std::int64_t>(r.n));
    row["k"] = Json(static_cast<std::int64_t>(r.k));
    row["threads"] = Json(r.threads);
    row["gflops"] = Json(r.gflops);
    row["gflops_lo"] = Json(r.gflops_lo);
    row["gflops_hi"] = Json(r.gflops_hi);
    row["median_s"] = Json(r.median_s);
    row["mad_s"] = Json(r.mad_s);
    row["reps"] = Json(r.reps);
    row["frequency_stable"] = Json(r.frequency_stable);
    rows_j.push_back(std::move(row));
  }
  j["rows"] = std::move(rows_j);
  return j;
}

std::optional<BenchReport> BenchReport::from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  const auto schema = j.number("schema");
  if (!schema || static_cast<int>(*schema) != kReportSchemaVersion)
    return std::nullopt;
  const auto bench = j.string("bench");
  const auto machine = j.string("machine");
  const Json* rows = j.get("rows");
  if (!bench || !machine || rows == nullptr || !rows->is_array())
    return std::nullopt;

  BenchReport r;
  r.bench = *bench;
  r.machine = *machine;
  r.git_rev = j.string("git_rev").value_or("unknown");
  r.timestamp = j.string("timestamp").value_or("");
  r.peak_gflops = j.number("peak_gflops").value_or(0.0);
  for (const Json& row_j : rows->items()) {
    if (!row_j.is_object()) return std::nullopt;
    const auto name = row_j.string("name");
    const auto gflops = row_j.number("gflops");
    if (!name || !gflops) return std::nullopt;  // corrupt row: reject the file
    BenchRow row;
    row.name = *name;
    row.m = static_cast<long>(row_j.number("m").value_or(0));
    row.n = static_cast<long>(row_j.number("n").value_or(0));
    row.k = static_cast<long>(row_j.number("k").value_or(0));
    row.threads = static_cast<int>(row_j.number("threads").value_or(1));
    row.gflops = *gflops;
    row.gflops_lo = row_j.number("gflops_lo").value_or(*gflops);
    row.gflops_hi = row_j.number("gflops_hi").value_or(*gflops);
    row.median_s = row_j.number("median_s").value_or(0.0);
    row.mad_s = row_j.number("mad_s").value_or(0.0);
    row.reps = static_cast<int>(row_j.number("reps").value_or(0));
    row.frequency_stable = row_j.boolean("frequency_stable").value_or(true);
    r.rows.push_back(std::move(row));
  }
  return r;
}

BenchReport make_host_report(std::string bench) {
  BenchReport r;
  r.bench = std::move(bench);
  const CpuArch& arch = host_arch();
  r.machine = cpu_signature(arch);
  r.git_rev = AUGEM_GIT_REV;
  r.peak_gflops = peak_gflops(arch, arch.best_native_isa());
  char buf[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  r.timestamp = buf;
  return r;
}

std::string bench_output_dir() {
  if (const char* env = std::getenv("AUGEM_BENCH_DIR"))
    if (env[0] != '\0') return env;
  return ".";
}

std::string write_report(const BenchReport& report, std::string dir) {
  if (dir.empty()) dir = bench_output_dir();
  const std::string path = dir + "/" + report.file_name();
  std::ofstream out(path);
  AUGEM_CHECK(out.good(), "cannot open benchmark report file " + path);
  out << report.to_json().dump() << "\n";
  out.close();
  AUGEM_CHECK(out.good(), "failed writing benchmark report " + path);
  return path;
}

std::optional<BenchReport> load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto j = parse_json(buf.str());
  if (!j) return std::nullopt;
  return BenchReport::from_json(*j);
}

const char* row_verdict_name(RowVerdict v) {
  switch (v) {
    case RowVerdict::kUnchanged: return "unchanged";
    case RowVerdict::kImproved: return "improved";
    case RowVerdict::kRegressed: return "regressed";
    case RowVerdict::kNew: return "new";
    case RowVerdict::kMissing: return "missing";
  }
  return "?";
}

bool DiffResult::any_regression() const {
  for (const RowDiff& r : rows)
    if (r.verdict == RowVerdict::kRegressed) return true;
  return false;
}

std::string DiffResult::to_string() const {
  std::ostringstream os;
  if (machine_mismatch) os << "machine signatures differ; not comparable\n";
  if (schema_mismatch) os << "schema versions differ; not comparable\n";
  char line[192];
  for (const RowDiff& r : rows) {
    if (r.verdict == RowVerdict::kNew || r.verdict == RowVerdict::kMissing) {
      std::snprintf(line, sizeof line, "%-40s %-10s\n", r.key.c_str(),
                    row_verdict_name(r.verdict));
    } else {
      std::snprintf(line, sizeof line,
                    "%-40s %-10s %8.2f -> %8.2f GFLOPS  %+6.1f%% (noise "
                    "%.1f%%)\n",
                    r.key.c_str(), row_verdict_name(r.verdict), r.base_gflops,
                    r.cur_gflops, 100.0 * r.delta_rel, 100.0 * r.noise_rel);
    }
    os << line;
  }
  return os.str();
}

DiffResult diff_reports(const BenchReport& base, const BenchReport& cur,
                        const DiffOptions& options) {
  DiffResult result;
  result.schema_mismatch = base.schema != cur.schema;
  result.machine_mismatch =
      options.require_same_machine && base.machine != cur.machine;
  if (!result.comparable()) return result;

  std::map<std::string, const BenchRow*> base_rows;
  for (const BenchRow& r : base.rows) base_rows[r.key()] = &r;

  for (const BenchRow& c : cur.rows) {
    RowDiff d;
    d.key = c.key();
    d.cur_gflops = c.gflops;
    auto it = base_rows.find(d.key);
    if (it == base_rows.end()) {
      d.verdict = RowVerdict::kNew;
      result.rows.push_back(std::move(d));
      continue;
    }
    const BenchRow& b = *it->second;
    base_rows.erase(it);
    d.base_gflops = b.gflops;
    if (b.gflops > 0.0) d.delta_rel = (c.gflops - b.gflops) / b.gflops;
    // Pooled noise: both rows' CIs, each relative to its own median. A
    // change only counts when it clears the threshold *plus* this noise.
    d.noise_rel = b.rel_noise() + c.rel_noise();
    const double bar = options.threshold + d.noise_rel;
    if (d.delta_rel < -bar)
      d.verdict = RowVerdict::kRegressed;
    else if (d.delta_rel > bar)
      d.verdict = RowVerdict::kImproved;
    else
      d.verdict = RowVerdict::kUnchanged;
    result.rows.push_back(std::move(d));
  }
  for (const auto& [key, row] : base_rows) {
    RowDiff d;
    d.key = key;
    d.base_gflops = row->gflops;
    d.verdict = RowVerdict::kMissing;
    result.rows.push_back(std::move(d));
  }
  return result;
}

}  // namespace augem::perf
