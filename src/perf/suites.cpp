#include "perf/suites.hpp"

#include <algorithm>

#include "augem/augem.hpp"
#include "augem/augem_blas.hpp"
#include "blas/level3.hpp"
#include "perf/clock.hpp"
#include "runtime/dispatch.hpp"
#include "runtime/runtime_blas.hpp"
#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"

namespace augem::perf {

namespace {

KernelSet make_suite_kernels(bool pessimize) {
  const Isa isa = host_arch().best_native_isa();
  if (!pessimize) return KernelSet(isa);
  // The deliberately slow configuration: scalar GEMM (the §3.1-3.3
  // optimizers without SIMD — several× slower than Vdup on any SIMD
  // machine) and unroll-1 level-1 kernels.
  transform::CGenParams gemm;
  gemm.mr = 4;
  gemm.nr = 2;
  gemm.ku = 1;
  gemm.prefetch.enabled = false;
  transform::CGenParams level1;
  level1.unroll = 1;
  level1.prefetch.enabled = false;
  return KernelSet(isa, gemm, opt::VecStrategy::kScalar, level1);
}

struct Sizes {
  long gemm_mc, gemm_nc, gemm_kc;
  long gemv_mn;
  long vec_n;
  int vec_batch;  ///< calls per timed run (amortizes timer resolution)
};

Sizes sizes_for(bool quick) {
  if (quick) return {128, 128, 128, 256, 20000, 8};
  return {384, 384, 256, 1024, 100000, 16};
}

RunnerOptions runner_for(const SuiteOptions& options) {
  RunnerOptions r = options.runner;
  if (options.quick) {
    // Tier-1 budget: looser CI, tighter wall clock. Fixed-rep mode
    // (AUGEM_BENCH_REPS) already pinned the budgets in from_env().
    r.target_rel_ci = std::max(r.target_rel_ci, 0.08);
    r.max_seconds = std::min(r.max_seconds, 0.5);
    r.max_reps = std::min(r.max_reps, 20);
  }
  return r;
}

}  // namespace

namespace {

/// The batched small-GEMM serving path (docs/runtime.md): dispatch is
/// resolved once per (shape, epilogue) variant and thousands of instances
/// stream through the cached shape-specialized kernel. Pessimize mode
/// re-pays dispatch per instance (batch-of-1 calls through the same API),
/// which is exactly the overhead the fast path exists to amortize — so a
/// normal-config baseline vs a pessimized run must gate as regressed.
BenchReport run_batch_small(const SuiteOptions& options,
                            const BenchRunner& runner) {
  using runtime::KernelRuntime;
  using runtime::RuntimeConfig;

  RuntimeConfig cfg;
  cfg.use_persistent = false;  // hermetic: no cross-process tuning state
  cfg.tune_on_miss = false;
  KernelRuntime rt(cfg);
  const std::unique_ptr<blas::Blas> lib = runtime::make_runtime_blas(rt);

  const long batch = options.quick ? 256 : 2048;
  struct Point {
    int d;          ///< m = n = k (the square small-kernel shapes)
    bool fused;     ///< bias + relu epilogue fused into the kernel
    const char* name;
  };
  const Point points[] = {
      {16, false, "batch_gemm"},
      {8, false, "batch_gemm"},
      {16, true, "batch_gemm_bias_relu"},
  };

  BenchReport report = make_host_report("batch_small");
  Rng rng(101);
  for (const Point& pt : points) {
    const long d = pt.d;
    const long stride = d * d;
    DoubleBuffer a(static_cast<std::size_t>(batch * stride));
    DoubleBuffer b(static_cast<std::size_t>(batch * stride));
    DoubleBuffer c(static_cast<std::size_t>(batch * stride));
    DoubleBuffer bias(static_cast<std::size_t>(d));
    rng.fill(a.span());
    rng.fill(b.span());
    rng.fill(c.span());
    rng.fill(bias.span());
    const double* bias_p = pt.fused ? bias.data() : nullptr;
    const bool relu = pt.fused;

    auto run_batched = [&] {
      lib->gemm_batch_strided(d, d, d, 1.0, a.data(), d, stride, b.data(), d,
                              stride, 1.0, c.data(), d, stride, batch, bias_p,
                              0, relu);
    };
    auto run_per_instance = [&] {
      for (long p = 0; p < batch; ++p)
        lib->gemm_batch_strided(d, d, d, 1.0, a.data() + p * stride, d, stride,
                                b.data() + p * stride, d, stride, 1.0,
                                c.data() + p * stride, d, stride, 1, bias_p, 0,
                                relu);
    };
    run_batched();  // warm: generate + JIT the variant outside the timing
    const double flops = gemm_flops(d, d, d) * static_cast<double>(batch);
    const Measurement m =
        options.pessimize ? runner.run(flops, run_per_instance)
                          : runner.run(flops, run_batched);
    report.rows.push_back(
        BenchRow::from_measurement(m, pt.name, d, d, d));
  }
  return report;
}

/// The Level-3 casting engine (blas/level3.hpp): SYMM, SYRK and TRSM
/// through the prepacked-panel driver on the generated block kernel, at
/// dense square sizes. Pessimize mode pairs the scalar GEMM kernel with a
/// serial context — the two optimizations this suite guards (SIMD block
/// kernels under the casting, parallel panel GEMMs) — so a normal-config
/// baseline vs a pessimized run must gate as regressed.
BenchReport run_level3(const SuiteOptions& options, const BenchRunner& runner) {
  KernelSet set = make_suite_kernels(options.pessimize);
  const long d = options.quick ? 128 : 256;

  blas::BlockSizes sizes;
  blas::GemmContext ctx = options.pessimize
                              ? blas::serial_gemm_context(sizes)
                              : blas::threaded_gemm_context(sizes);
  const blas::Level3Config cfg{
      ctx,
      augem::padded_gemm_block_kernel(set.gemm(), set.gemm_mr(),
                                      set.gemm_nr()),
      128, nullptr};

  BenchReport report = make_host_report("level3");
  Rng rng(101);
  DoubleBuffer a(static_cast<std::size_t>(d * d));
  DoubleBuffer b(static_cast<std::size_t>(d * d));
  DoubleBuffer c(static_cast<std::size_t>(d * d));
  rng.fill(a.span());
  rng.fill(b.span());

  const Measurement sm = runner.run(symm_flops(d, d), [&] {
    blas::level3_symm(cfg, blas::Side::kLeft, blas::Uplo::kLower, d, d, 1.0,
                      a.data(), d, b.data(), d, 0.0, c.data(), d);
  });
  report.rows.push_back(BenchRow::from_measurement(sm, "symm", d, d));

  const Measurement km = runner.run(syrk_flops(d, d), [&] {
    blas::level3_syrk(cfg, blas::Uplo::kLower, blas::Trans::kNo, d, d, 1.0,
                      a.data(), d, 0.0, c.data(), d);
  });
  report.rows.push_back(BenchRow::from_measurement(km, "syrk", d, d));

  // Well-conditioned triangle: repeated timed solves stay finite.
  for (long i = 0; i < d; ++i)
    a.data()[i * d + i] = 4.0 + static_cast<double>(i % 3);
  DoubleBuffer b0(static_cast<std::size_t>(d * d));
  std::copy(b.data(), b.data() + d * d, b0.data());
  const Measurement tm = runner.run(trsm_flops(d, d), [&] {
    // Restore B first: TRSM overwrites it, and back-to-back solves of the
    // previous solution would decay toward denormals. The copy is O(d^2)
    // against the O(d^3) solve.
    std::copy(b0.data(), b0.data() + d * d, b.data());
    blas::level3_trsm(cfg, blas::Side::kLeft, blas::Uplo::kLower,
                      blas::Trans::kNo, d, d, 1.0, a.data(), d, b.data(), d);
  });
  report.rows.push_back(BenchRow::from_measurement(tm, "trsm", d, d));
  return report;
}

}  // namespace

std::vector<std::string> suite_names() {
  return {"micro", "level1", "batch_small", "level3"};
}

bool is_suite_name(const std::string& name) {
  const auto names = suite_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

BenchReport run_suite(const std::string& name, const SuiteOptions& options) {
  AUGEM_CHECK(is_suite_name(name), "unknown bench suite '"
                                       << name
                                       << "' (known: micro, level1, "
                                          "batch_small, level3)");
  const Sizes sz = sizes_for(options.quick);
  const BenchRunner runner(runner_for(options));
  if (name == "batch_small") return run_batch_small(options, runner);
  if (name == "level3") return run_level3(options, runner);
  KernelSet set = make_suite_kernels(options.pessimize);
  BenchReport report = make_host_report(name);

  Rng rng(101);
  if (name == "micro") {
    // GEMM on packed blocks (the inner kernel the whole system exists
    // for), sized to the resident working set the blocked driver creates.
    const long mc = sz.gemm_mc / set.gemm_mr() * set.gemm_mr();
    const long nc = sz.gemm_nc / set.gemm_nr() * set.gemm_nr();
    const long kc = sz.gemm_kc;
    DoubleBuffer pa(static_cast<std::size_t>(mc * kc));
    DoubleBuffer pb(static_cast<std::size_t>(nc * kc));
    DoubleBuffer c(static_cast<std::size_t>(mc * nc));
    rng.fill(pa.span());
    rng.fill(pb.span());
    const Measurement gm = runner.run(gemm_flops(mc, nc, kc), [&] {
      set.gemm()(mc, nc, kc, pa.data(), pb.data(), c.data(), mc);
    });
    report.rows.push_back(BenchRow::from_measurement(gm, "gemm", mc, nc, kc));

    const long mn = sz.gemv_mn;
    DoubleBuffer a(static_cast<std::size_t>(mn * mn));
    DoubleBuffer x(static_cast<std::size_t>(mn));
    DoubleBuffer y(static_cast<std::size_t>(mn));
    rng.fill(a.span());
    rng.fill(x.span());
    rng.fill(y.span());
    const Measurement vm = runner.run(gemv_flops(mn, mn), [&] {
      set.gemv()(mn, mn, a.data(), mn, x.data(), y.data());
    });
    report.rows.push_back(BenchRow::from_measurement(vm, "gemv", mn, mn));
  }

  // The streaming level-1 kernels, in both suites ("micro" tracks them at
  // in-cache-ish sizes; "level1" is the memory-bound figure regime).
  {
    const long n = name == "level1" && !options.quick ? 200000 : sz.vec_n;
    const int batch = sz.vec_batch;
    DoubleBuffer x(static_cast<std::size_t>(n));
    DoubleBuffer y(static_cast<std::size_t>(n));
    rng.fill(x.span());
    rng.fill(y.span());

    const Measurement am = runner.run(axpy_flops(n) * batch, [&] {
      for (int r = 0; r < batch; ++r)
        set.axpy()(n, 1.0000001, x.data(), y.data());
    });
    report.rows.push_back(BenchRow::from_measurement(am, "axpy", n));

    volatile double sink = 0.0;
    const Measurement dm = runner.run(dot_flops(n) * batch, [&] {
      double acc = 0.0;
      for (int r = 0; r < batch; ++r) acc += set.dot()(n, x.data(), y.data());
      sink = acc;
    });
    (void)sink;
    report.rows.push_back(BenchRow::from_measurement(dm, "dot", n));

    const Measurement sm = runner.run(static_cast<double>(n) * batch, [&] {
      for (int r = 0; r < batch; ++r) set.scal()(n, 1.0000001, x.data());
    });
    report.rows.push_back(BenchRow::from_measurement(sm, "scal", n));
  }
  return report;
}

}  // namespace augem::perf
