#pragma once
// Named benchmark suites over the generated kernels, shared by
// tools/bench_gate (the regression gate), the bench_quick_gate ctest, and
// bench/bench_kernels_micro. A suite is a fixed set of (kernel, problem
// size) points measured through BenchRunner into a BenchReport, so the
// gate, the ctest and the standalone bench all produce byte-compatible
// BENCH_<suite>.json trajectories.

#include <string>
#include <vector>

#include "perf/report.hpp"

namespace augem::perf {

struct SuiteOptions {
  /// Quick mode: smaller problems, looser CI target — the tier-1 /
  /// smoke-run configuration (catches gross regressions in ~seconds).
  bool quick = false;
  /// Deliberately pessimized kernel configuration (scalar GEMM strategy,
  /// no level-1 unrolling). Exists to *demonstrate* the gate: a baseline
  /// from the normal configuration vs a pessimized run must yield a
  /// regressed verdict (see bench_gate --selftest).
  bool pessimize = false;
  RunnerOptions runner = RunnerOptions::from_env();
};

/// The suites bench_gate knows: "micro" (all five generated kernels on
/// packed-block / in-cache problems), "level1" (the memory-bound
/// streaming kernels at figure sizes), "batch_small" (the batched
/// small-GEMM fast path with amortized dispatch and fused epilogues), and
/// "level3" (SYMM/SYRK/TRSM through the prepacked-panel casting engine).
std::vector<std::string> suite_names();
bool is_suite_name(const std::string& name);

/// Runs a suite and returns its report (bench = suite name). Throws
/// augem::Error for an unknown suite name.
BenchReport run_suite(const std::string& name, const SuiteOptions& options);

}  // namespace augem::perf
