#include "perf/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace augem::perf {

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double hi = samples[mid];
  if (samples.size() % 2 == 1) return hi;
  const double lo = *std::max_element(samples.begin(), samples.begin() + mid);
  return 0.5 * (lo + hi);
}

double mad(const std::vector<double>& samples, double center) {
  if (samples.empty()) return 0.0;
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double s : samples) dev.push_back(std::abs(s - center));
  return median(std::move(dev));
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  s.min = *lo;
  s.max = *hi;
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  s.median = median(samples);
  s.mad = mad(samples, s.median);
  // 1.96 (normal 95%) * 1.253 (sqrt(pi/2), median vs mean efficiency)
  // * 1.4826 (MAD -> sigma under normality) / sqrt(n).
  s.ci_half =
      1.96 * 1.253 * 1.4826 * s.mad / std::sqrt(static_cast<double>(s.n));
  return s;
}

}  // namespace augem::perf
