#include "perf/bench_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "perf/clock.hpp"
#include "support/error.hpp"

namespace augem::perf {

RunnerOptions RunnerOptions::from_env() { return from_env(RunnerOptions{}); }

RunnerOptions RunnerOptions::from_env(RunnerOptions base) {
  if (const char* env = std::getenv("AUGEM_BENCH_REPS")) {
    const int r = std::atoi(env);
    if (r > 0) {
      base.min_reps = r;
      base.max_reps = r;
      base.warmup_min_reps = 1;
      base.warmup_max_reps = 1;
      base.max_seconds = 1e9;  // fixed-rep mode: the rep count is the budget
      base.check_frequency = false;
    }
  }
  return base;
}

double Measurement::gflops() const {
  return seconds.median > 0.0 ? flops / seconds.median / 1.0e9 : 0.0;
}

double Measurement::gflops_lo() const {
  const double slow = seconds.median + seconds.ci_half;
  return slow > 0.0 ? flops / slow / 1.0e9 : 0.0;
}

double Measurement::gflops_hi() const {
  const double fast = seconds.median - seconds.ci_half;
  return fast > 0.0 ? flops / fast / 1.0e9 : gflops();
}

BenchRunner::BenchRunner(RunnerOptions options) : options_(options) {
  AUGEM_CHECK(options_.min_reps >= 1, "BenchRunner needs at least one rep");
  AUGEM_CHECK(options_.max_reps >= options_.min_reps,
              "BenchRunner rep budget below the rep floor");
}

Measurement BenchRunner::run(double flops,
                             const std::function<void()>& fn) const {
  Measurement m;
  m.flops = flops;

  const double probe_before =
      options_.check_frequency ? frequency_probe_s() : 0.0;

  // Warmup: run until a repetition stops beating the best time by more
  // than the tolerance — i.e. first-touch paging and cache/branch state
  // have stopped paying off — bounded by warmup_max_reps.
  double best = 0.0;
  for (int i = 0; i < options_.warmup_max_reps; ++i) {
    const double s = time_call(fn);
    ++m.warmup_runs;
    if (i > 0 && i + 1 >= options_.warmup_min_reps &&
        s <= best * (1.0 + options_.warmup_tolerance))
      break;
    best = (i == 0) ? s : std::min(best, s);
  }

  // Adaptive sampling: collect until the relative CI converges or a
  // budget runs out.
  const double t0 = monotonic_now_s();
  while (true) {
    m.samples_s.push_back(time_call(fn));
    if (static_cast<int>(m.samples_s.size()) >= options_.min_reps) {
      m.seconds = summarize(m.samples_s);
      if (m.seconds.rel_ci() <= options_.target_rel_ci &&
          m.seconds.median > 0.0) {
        m.hit_target_ci = true;
        break;
      }
      if (static_cast<int>(m.samples_s.size()) >= options_.max_reps) break;
      if (monotonic_now_s() - t0 >= options_.max_seconds) break;
    }
  }
  m.seconds = summarize(m.samples_s);

  if (options_.check_frequency) {
    const double probe_after = frequency_probe_s();
    if (probe_before > 0.0)
      m.freq_drift = std::abs(probe_after / probe_before - 1.0);
    m.frequency_stable = m.freq_drift <= options_.max_freq_drift;
  }
  return m;
}

}  // namespace augem::perf
