#include "perf/roofline.hpp"

#include <cstdio>
#include <cstdlib>

namespace augem::perf {

double flops_per_cycle(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return 4.0;
    case Isa::kAvx:  return 8.0;
    case Isa::kFma3:
    case Isa::kFma4: return 16.0;
  }
  return 0.0;
}

double peak_gflops(const CpuArch& arch, Isa isa) {
  double ghz = arch.nominal_ghz;
  if (ghz <= 0.0) {
    if (const char* env = std::getenv("AUGEM_NOMINAL_GHZ")) {
      const double v = std::atof(env);
      if (v > 0.0) ghz = v;
    }
  }
  return ghz > 0.0 ? ghz * flops_per_cycle(isa) : 0.0;
}

std::string roofline_annotation(double gflops, const CpuArch& arch, Isa isa) {
  char buf[96];
  const double peak = peak_gflops(arch, isa);
  if (peak > 0.0)
    std::snprintf(buf, sizeof buf, "%.1f GFLOPS (%.0f%% of %.1f peak)",
                  gflops, 100.0 * gflops / peak, peak);
  else
    std::snprintf(buf, sizeof buf, "%.1f GFLOPS (peak unknown)", gflops);
  return buf;
}

}  // namespace augem::perf
