#pragma once
// Schema-versioned benchmark trajectory files and the noise-aware diff.
//
// Every bench target writes a BENCH_<name>.json into the current directory
// (or AUGEM_BENCH_DIR): machine signature, git revision, peak-GFLOPS
// ceiling, and one row per measured point with the median GFLOPS *and its
// CI bounds*. Two reports for the same machine can then be diffed with a
// verdict per row — improved / regressed / unchanged — where "changed"
// means *beyond both the configured threshold and the pooled confidence
// intervals*, so timer noise cannot fail a gate. tools/bench_gate is the
// CLI over this; docs/benchmarking.md documents the schema.

#include <optional>
#include <string>
#include <vector>

#include "perf/bench_runner.hpp"
#include "support/json.hpp"

namespace augem::perf {

/// Bumped whenever a field changes meaning; readers reject other versions
/// (a baseline from a different schema must not silently gate a PR).
inline constexpr int kReportSchemaVersion = 1;

/// One measured point of a bench. `name` identifies the point within the
/// bench ("AUGEM", "gemm", ...); (m, n, k, threads) complete the identity
/// a diff matches rows by.
struct BenchRow {
  std::string name;
  long m = 0;
  long n = 0;
  long k = 0;
  int threads = 1;
  double gflops = 0.0;
  double gflops_lo = 0.0;  ///< CI bounds (lo = slow edge)
  double gflops_hi = 0.0;
  double median_s = 0.0;
  double mad_s = 0.0;
  int reps = 0;
  bool frequency_stable = true;

  /// Row identity within a report (what diffs join on).
  std::string key() const;
  /// The larger CI half-width, as a fraction of the median GFLOPS.
  double rel_noise() const;

  static BenchRow from_measurement(const Measurement& m, std::string name,
                                   long mm = 0, long nn = 0, long kk = 0,
                                   int threads = 1);
};

struct BenchReport {
  int schema = kReportSchemaVersion;
  std::string bench;    ///< short name; the file is BENCH_<bench>.json
  std::string machine;  ///< cpu_signature(host_arch())
  std::string git_rev;  ///< configure-time revision, "unknown" outside git
  std::string timestamp;  ///< ISO-8601 UTC
  double peak_gflops = 0.0;  ///< 0 when the frequency is unknown
  std::vector<BenchRow> rows;

  std::string file_name() const { return "BENCH_" + bench + ".json"; }
  Json to_json() const;
  static std::optional<BenchReport> from_json(const Json& j);
};

/// A report skeleton for the host: machine signature, git revision,
/// timestamp, and the roofline ceiling for the host's best native ISA.
BenchReport make_host_report(std::string bench);

/// $AUGEM_BENCH_DIR or "." — where trajectory files land.
std::string bench_output_dir();

/// Writes `report` as <dir>/BENCH_<bench>.json (dir defaults to
/// bench_output_dir()). Returns the path written. Throws augem::Error on
/// I/O failure.
std::string write_report(const BenchReport& report, std::string dir = {});

/// Loads and validates a report; nullopt on unreadable / malformed /
/// wrong-schema files.
std::optional<BenchReport> load_report(const std::string& path);

// ---- diffing ---------------------------------------------------------------

enum class RowVerdict {
  kUnchanged,  ///< inside threshold + pooled CI noise
  kImproved,
  kRegressed,
  kNew,      ///< row only in the current report
  kMissing,  ///< row only in the baseline
};

const char* row_verdict_name(RowVerdict v);

struct RowDiff {
  std::string key;
  double base_gflops = 0.0;
  double cur_gflops = 0.0;
  double delta_rel = 0.0;  ///< (cur - base) / base
  double noise_rel = 0.0;  ///< pooled relative CI of the two rows
  RowVerdict verdict = RowVerdict::kUnchanged;
};

struct DiffOptions {
  /// Relative change that counts as real *beyond* the pooled CI (the
  /// "5% beyond the pooled CI" rule).
  double threshold = 0.05;
  /// Refuse to compare reports from different machine signatures (a
  /// baseline from another machine says nothing about this one).
  bool require_same_machine = true;
};

struct DiffResult {
  std::vector<RowDiff> rows;
  bool machine_mismatch = false;
  bool schema_mismatch = false;

  bool comparable() const { return !machine_mismatch && !schema_mismatch; }
  bool any_regression() const;
  /// Human-readable multi-line verdict table.
  std::string to_string() const;
};

DiffResult diff_reports(const BenchReport& base, const BenchReport& cur,
                        const DiffOptions& options = {});

}  // namespace augem::perf
