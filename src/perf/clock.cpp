#include "perf/clock.hpp"

#include <chrono>

namespace augem::perf {

double monotonic_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double time_call(const std::function<void()>& fn) {
  const double t0 = monotonic_now_s();
  fn();
  return monotonic_now_s() - t0;
}

void spin_fpu(double seconds) {
  volatile double sink = 1.0;
  const double t0 = monotonic_now_s();
  while (monotonic_now_s() - t0 < seconds)
    sink = sink * 1.0000001 + 1e-9;
  (void)sink;
}

double frequency_probe_s() {
  // A serial dependency chain: the loop's wall time is latency-bound and
  // scales with 1/frequency, unaffected by memory or issue width.
  constexpr int kIters = 200000;
  volatile double seed = 1.0;
  double acc = seed;
  const double t0 = monotonic_now_s();
  for (int i = 0; i < kIters; ++i) acc = acc * 1.0000001 + 1e-12;
  const double t1 = monotonic_now_s();
  seed = acc;
  (void)seed;
  return t1 - t0;
}

}  // namespace augem::perf
