#pragma once
// Robust sample statistics for noisy timing data: median, median absolute
// deviation (MAD), and a MAD-based confidence interval on the median.
//
// Why median/MAD and not mean/stddev: timing samples on a busy machine are
// right-skewed (interrupts, frequency dips, page faults stretch individual
// runs; nothing shortens them), so the mean and the standard deviation are
// dominated by the outliers the harness is trying to ignore. The median and
// the MAD are insensitive to any minority of contaminated samples.

#include <cstddef>
#include <vector>

namespace augem::perf {

/// Median of `samples` (averaged middle pair for even sizes). 0 for empty.
double median(std::vector<double> samples);

/// Median absolute deviation around `center`. 0 for empty.
double mad(const std::vector<double>& samples, double center);

/// Robust summary of one measurement's samples.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;      ///< median absolute deviation around the median
  double ci_half = 0.0;  ///< 95% CI half-width on the median (MAD-based)

  /// CI half-width relative to the median (0 when the median is 0).
  double rel_ci() const { return median > 0.0 ? ci_half / median : 0.0; }
};

/// Summarizes `samples`. The CI half-width is
///   1.96 * 1.253 * (1.4826 * MAD) / sqrt(n)
/// — normal 95% quantile × the median's sampling-efficiency penalty × the
/// normal-consistent sigma estimate from the MAD. With n = 1 (or MAD = 0 on
/// a quantized clock) the CI collapses to 0; BenchRunner's min_reps floor
/// is what guarantees the interval is meaningful.
Summary summarize(const std::vector<double>& samples);

}  // namespace augem::perf
