#pragma once
// Thin client of the per-machine tuning daemon (docs/serving.md).
//
// The client is a *pure acceleration layer* for the kernel runtime: on a
// local-database miss the dispatcher asks the daemon before paying a tuner
// run, and uses the daemon's published .so artifact instead of paying a
// generate→assemble cycle. Every failure mode — no daemon, connect
// refused, protocol-version mismatch, mid-request death, AUGEM_NO_DAEMON —
// degrades to "resolve() returns nullopt" and the dispatcher continues on
// the existing in-process path, so no client-visible call can fail because
// a daemon is missing or dying.
//
// Engagement policy (decided in try_connect, documented in the fallback
// matrix of docs/serving.md):
//   * AUGEM_NO_DAEMON=1            -> never connect, never spawn;
//   * a live socket in the dir     -> connect to it;
//   * AUGEM_DAEMON=1, dead socket  -> auto-spawn `augem_serviced` for the
//                                     dir, then connect (first-miss spawn);
//   * otherwise                    -> no client, pure in-process serving.

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "runtime/tunedb.hpp"
#include "service/protocol.hpp"

namespace augem::service {

struct ClientOptions {
  /// Cache directory whose daemon to talk to; empty resolves through
  /// runtime::default_cache_dir() (AUGEM_CACHE_DIR et al.).
  std::string cache_dir;
  /// Spawn `augem_serviced` when no daemon answers (see engagement policy;
  /// the dispatcher sets this from AUGEM_DAEMON).
  bool autospawn = false;
  /// Per-request receive timeout. Generous by default: a cold resolve can
  /// sit behind a server-side tuner run.
  double timeout_s = 300.0;
  /// Version sent in the handshake — a test hook; leave at the default.
  int protocol_version = kServiceProtocolVersion;
};

/// What a daemon-side resolve hands back: the tuned variant, plus (when
/// artifact publication succeeded) the shared object every process on the
/// machine can dlopen directly — the "one build per key machine-wide" path.
struct ResolvedEntry {
  runtime::TunedVariant variant;
  std::string so_path;  ///< empty: no shared artifact, build locally
  std::string symbol;
  int mr = 0;  ///< GEMM register tile of the published artifact
  int nr = 0;
};

class ServiceClient {
 public:
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Applies the engagement policy and performs the version handshake.
  /// nullptr means "no daemon": the caller serves in-process.
  static std::unique_ptr<ServiceClient> try_connect(ClientOptions opts);

  /// Asks the daemon to resolve `key` (tuning and building server-side if
  /// needed). nullopt on any failure; the client is dead afterwards
  /// (healthy() false) and every later call returns failure immediately.
  std::optional<ResolvedEntry> resolve(const runtime::KernelKey& key);

  /// Offers a locally tuned result to the daemon (e.g. tuned while the
  /// daemon was down). The daemon keeps the better entry.
  bool publish(const runtime::KernelKey& key,
               const runtime::TunedVariant& variant);

  /// The daemon's counters / cache / database status as a JSON object.
  std::optional<Json> stats();

  /// Asks the daemon to retune `key` now (the same path its background
  /// sweep takes). Returns the promotion outcome name ("promoted",
  /// "rejected", "unchanged", "error"), or nullopt on transport failure.
  std::optional<std::string> request_retune(const runtime::KernelKey& key);

  /// Asks the daemon to exit gracefully.
  bool request_shutdown();

  bool healthy() const;
  const std::string& dir() const { return opts_.cache_dir; }

 private:
  explicit ServiceClient(ClientOptions opts, int fd);

  /// One request/response exchange; marks the client dead on any framing,
  /// I/O, or timeout failure.
  std::optional<Json> roundtrip(const Json& request);

  ClientOptions opts_;
  int fd_ = -1;
  bool healthy_ = false;
  std::mutex mutex_;  ///< requests are serialized on the one connection
};

}  // namespace augem::service
