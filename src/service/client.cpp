#include "service/client.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace augem::service {

namespace {

/// Connects to the unix socket; -1 on any failure (including a path too
/// long for sockaddr_un — then there simply is no daemon for this dir).
int connect_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void set_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - double(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Spawns `augem_serviced --dir <dir>` detached (double fork: the
/// grandchild is re-parented to init, so the caller never collects it and
/// the daemon outlives the spawning client). The binary is $AUGEM_SERVICED
/// or "augem_serviced" on PATH; a missing binary just means the connect
/// retry below fails and the caller falls back in-process.
void spawn_serviced(const std::string& dir) {
  const char* env = std::getenv("AUGEM_SERVICED");
  const std::string bin =
      env != nullptr && env[0] != '\0' ? env : "augem_serviced";
  const pid_t child = ::fork();
  if (child < 0) return;
  if (child == 0) {
    ::setsid();  // own session: no controlling terminal, survives the client
    const pid_t grandchild = ::fork();
    if (grandchild != 0) ::_exit(grandchild > 0 ? 0 : 127);
    const int devnull = ::open("/dev/null", O_RDWR);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      if (devnull > STDERR_FILENO) ::close(devnull);
    }
    ::execlp(bin.c_str(), bin.c_str(), "--dir", dir.c_str(),
             static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(child, &status, 0);  // the intermediate exits immediately
}

}  // namespace

ServiceClient::ServiceClient(ClientOptions opts, int fd)
    : opts_(std::move(opts)), fd_(fd), healthy_(true) {}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool ServiceClient::healthy() const { return healthy_; }

std::unique_ptr<ServiceClient> ServiceClient::try_connect(ClientOptions opts) {
  if (no_daemon_env()) return nullptr;
  if (opts.cache_dir.empty()) opts.cache_dir = runtime::default_cache_dir();
  const std::string path = socket_path(opts.cache_dir);

  int fd = connect_socket(path);
  if (fd < 0 && opts.autospawn) {
    spawn_serviced(opts.cache_dir);
    // The daemon needs a moment to bind; bounded retry, then give up and
    // serve in-process (the spawn may have failed entirely — no binary,
    // another daemon racing for the dir lock, ...).
    for (int attempt = 0; attempt < 100 && fd < 0; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      fd = connect_socket(path);
    }
  }
  if (fd < 0) return nullptr;
  set_timeout(fd, opts.timeout_s);

  auto client =
      std::unique_ptr<ServiceClient>(new ServiceClient(std::move(opts), fd));
  // Version handshake: both sides name their protocol version; any
  // mismatch (or a peer that is not a tuning daemon at all) disqualifies
  // the connection before a single real request.
  Json hello = make_request("hello");
  hello["v"] = Json(client->opts_.protocol_version);
  const auto reply = client->roundtrip(hello);
  if (!reply || !response_ok(*reply)) return nullptr;
  const auto daemon_version = reply->number("v");
  if (!daemon_version ||
      static_cast<int>(*daemon_version) != kServiceProtocolVersion)
    return nullptr;
  return client;
}

std::optional<Json> ServiceClient::roundtrip(const Json& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!healthy_ || fd_ < 0) return std::nullopt;
  Json reply;
  if (!write_frame(fd_, request) ||
      read_frame(fd_, reply) != ReadStatus::kOk) {
    // Any transport failure poisons the connection: requests and replies
    // can no longer be paired up, so the client goes dead and the runtime
    // falls back in-process for the rest of this process's lifetime.
    healthy_ = false;
    return std::nullopt;
  }
  return reply;
}

std::optional<ResolvedEntry> ServiceClient::resolve(
    const runtime::KernelKey& key) {
  Json req = make_request("resolve");
  req["key"] = runtime::encode_kernel_key(key);
  const auto reply = roundtrip(req);
  if (!reply || !response_ok(*reply)) return std::nullopt;
  const Json* variant = reply->get("variant");
  if (variant == nullptr) return std::nullopt;
  const auto decoded = runtime::decode_tuned_variant(*variant);
  if (!decoded) return std::nullopt;

  ResolvedEntry entry;
  entry.variant = *decoded;
  if (const auto so = reply->string("so")) entry.so_path = *so;
  if (const auto sym = reply->string("symbol")) entry.symbol = *sym;
  if (const auto mr = reply->number("mr")) entry.mr = static_cast<int>(*mr);
  if (const auto nr = reply->number("nr")) entry.nr = static_cast<int>(*nr);
  return entry;
}

bool ServiceClient::publish(const runtime::KernelKey& key,
                            const runtime::TunedVariant& variant) {
  Json req = make_request("publish");
  req["key"] = runtime::encode_kernel_key(key);
  req["variant"] = runtime::encode_tuned_variant(variant);
  const auto reply = roundtrip(req);
  return reply && response_ok(*reply);
}

std::optional<Json> ServiceClient::stats() {
  const auto reply = roundtrip(make_request("stats"));
  if (!reply || !response_ok(*reply)) return std::nullopt;
  return reply;
}

std::optional<std::string> ServiceClient::request_retune(
    const runtime::KernelKey& key) {
  Json req = make_request("retune");
  req["key"] = runtime::encode_kernel_key(key);
  const auto reply = roundtrip(req);
  if (!reply || !response_ok(*reply)) return std::nullopt;
  return reply->string("outcome");
}

bool ServiceClient::request_shutdown() {
  const auto reply = roundtrip(make_request("shutdown"));
  return reply && response_ok(*reply);
}

}  // namespace augem::service
