#include "service/daemon.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "augem/augem.hpp"
#include "jit/jit.hpp"
#include "perf/report.hpp"
#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/flops.hpp"
#include "support/rng.hpp"

namespace augem::service {

using runtime::CachedKernel;
using runtime::KernelKey;
using runtime::KernelRuntime;
using runtime::TunedVariant;
using frontend::KernelKind;

namespace {

/// mkdir -p: every component, existing directories tolerated.
void make_dirs(const std::string& path) {
  std::string partial;
  std::istringstream is(path);
  std::string component;
  if (!path.empty() && path[0] == '/') partial = "/";
  while (std::getline(is, component, '/')) {
    if (component.empty()) continue;
    partial += component;
    partial += '/';
    ::mkdir(partial.c_str(), 0755);  // EEXIST is fine
  }
}

bool same_configuration(const TunedVariant& a, const TunedVariant& b) {
  return a.params.mr == b.params.mr && a.params.nr == b.params.nr &&
         a.params.ku == b.params.ku && a.params.unroll == b.params.unroll &&
         a.params.prefetch.enabled == b.params.prefetch.enabled &&
         a.params.prefetch.distance == b.params.prefetch.distance &&
         a.strategy == b.strategy;
}

/// Generates + assembles `variant` for `key` and times it on the tuning
/// workload with the BenchRunner, so the promotion gate's numbers carry
/// the same semantics (median of post-warmup reps with a CI) as every
/// other GFLOPS figure in the repository.
perf::Measurement measure_variant(const KernelKey& key,
                                  const TunedVariant& variant,
                                  const tuning::TuneWorkload& w,
                                  const perf::RunnerOptions& ropts) {
  GenerateOptions options = default_options(key.kind, key.isa);
  options.params = variant.params;
  options.config.isa = key.isa;
  options.config.strategy = variant.strategy;
  const asmgen::GeneratedKernel gen = generate_kernel(key.kind, options);
  jit::CompiledModule mod = jit::assemble(gen.asm_text);

  const perf::BenchRunner runner(ropts);
  Rng rng(11);
  switch (key.kind) {
    case KernelKind::kGemm: {
      auto* fn = mod.fn<void(long, long, long, const double*, const double*,
                             double*, long)>(gen.name);
      DoubleBuffer a(static_cast<std::size_t>(w.mc * w.kc));
      DoubleBuffer b(static_cast<std::size_t>(w.nc * w.kc));
      DoubleBuffer c(static_cast<std::size_t>(w.nc * w.mc));
      rng.fill(a.span());
      rng.fill(b.span());
      const std::int64_t m_main = w.mc / variant.params.mr * variant.params.mr;
      const std::int64_t n_main = w.nc / variant.params.nr * variant.params.nr;
      return runner.run(gemm_flops(m_main, n_main, w.kc), [&] {
        fn(m_main, n_main, w.kc, a.data(), b.data(), c.data(), w.mc);
      });
    }
    case KernelKind::kGemv: {
      auto* fn = mod.fn<void(long, long, const double*, long, const double*,
                             double*)>(gen.name);
      const std::int64_t m = w.vec_len / 8, n = 64;
      DoubleBuffer a(static_cast<std::size_t>(m * n));
      DoubleBuffer x(static_cast<std::size_t>(n));
      DoubleBuffer y(static_cast<std::size_t>(m));
      rng.fill(a.span());
      rng.fill(x.span());
      return runner.run(gemv_flops(m, n),
                        [&] { fn(m, n, a.data(), m, x.data(), y.data()); });
    }
    case KernelKind::kAxpy: {
      auto* fn = mod.fn<void(long, double, const double*, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      return runner.run(axpy_flops(w.vec_len),
                        [&] { fn(w.vec_len, 1.1, x.data(), y.data()); });
    }
    case KernelKind::kScal: {
      auto* fn = mod.fn<void(long, double, double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      return runner.run(static_cast<double>(w.vec_len),
                        [&] { fn(w.vec_len, 1.0000001, x.data()); });
    }
    case KernelKind::kDot: {
      auto* fn = mod.fn<double(long, const double*, const double*)>(gen.name);
      DoubleBuffer x(static_cast<std::size_t>(w.vec_len));
      DoubleBuffer y(static_cast<std::size_t>(w.vec_len));
      rng.fill(x.span());
      rng.fill(y.span());
      volatile double sink = 0.0;
      const perf::Measurement m = runner.run(
          dot_flops(w.vec_len),
          [&] { sink = fn(w.vec_len, x.data(), y.data()); });
      (void)sink;
      return m;
    }
  }
  AUGEM_FAIL("unknown kernel kind");
}

}  // namespace

Json DaemonCounters::to_json() const {
  Json j = Json::object();
  j["connections"] = Json(static_cast<double>(connections));
  j["resolves"] = Json(static_cast<double>(resolves));
  j["resolve_hits"] = Json(static_cast<double>(resolve_hits));
  j["builds_deduped"] = Json(static_cast<double>(builds_deduped));
  j["publishes"] = Json(static_cast<double>(publishes));
  j["retunes"] = Json(static_cast<double>(retunes));
  j["promotions"] = Json(static_cast<double>(promotions));
  j["rejected_promotions"] = Json(static_cast<double>(rejected_promotions));
  j["protocol_errors"] = Json(static_cast<double>(protocol_errors));
  return j;
}

const char* promotion_outcome_name(PromotionOutcome o) {
  switch (o) {
    case PromotionOutcome::kPromoted: return "promoted";
    case PromotionOutcome::kRejected: return "rejected";
    case PromotionOutcome::kUnchanged: return "unchanged";
    case PromotionOutcome::kError: return "error";
  }
  return "?";
}

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  dir_ = config_.cache_dir.empty() ? runtime::default_cache_dir()
                                   : config_.cache_dir;
  runtime::RuntimeConfig rc;
  rc.cache_dir = dir_;
  rc.use_persistent = true;  // the daemon IS the persistence layer
  rc.workload_override = config_.workload_override;
  rc.code_cache_capacity = config_.code_cache_capacity;
  rc.use_daemon = false;  // never fall through to (i.e. recurse into) itself
  rt_ = std::make_unique<KernelRuntime>(rc);
}

Daemon::~Daemon() {
  stop();
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

bool Daemon::start() {
  if (running_.load()) return true;
  make_dirs(artifact_dir(dir_));  // also creates dir_ itself

  // Single instance per directory: the holder of the flock is the one
  // authoritative writer. A crashed daemon's lock dies with its process,
  // so recovery is automatic — no stale-pidfile heuristics.
  lock_fd_ = ::open(lock_path(dir_).c_str(),
                    O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    last_error_ = "cannot open " + lock_path(dir_);
    return false;
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    last_error_ = "another daemon owns " + dir_;
    ::close(lock_fd_);
    lock_fd_ = -1;
    return false;
  }

  const std::string path = socket_path();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    last_error_ = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // we hold the lock: any existing socket is stale
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    last_error_ = "cannot bind " + path + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_.store(true);
  shutdown_requested_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (config_.retune) retune_thread_ = std::thread([this] { retune_loop(); });
  return true;
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  stop_cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake every connection handler blocked in read_frame.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (retune_thread_.joinable()) retune_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conn_cv_.wait(lock, [this] { return conn_fds_.empty(); });
  }
  ::unlink(socket_path().c_str());
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // releases the flock: a successor may take over
    lock_fd_ = -1;
  }
}

void Daemon::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR) continue;
      break;  // listen socket gone
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.connections;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_fds_.insert(fd);
    }
    // One detached thread per connection: requests are short and clients
    // hold one connection each; stop() waits for the set to drain.
    std::thread([this, fd] {
      handle_connection(fd);
      ::close(fd);
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn_fds_.erase(fd);
      }
      conn_cv_.notify_all();
    }).detach();
  }
}

void Daemon::handle_connection(int fd) {
  while (running_.load()) {
    Json request;
    const ReadStatus st = read_frame(fd, request);
    if (st == ReadStatus::kEof) return;
    if (st == ReadStatus::kError) {
      // Garbage, a truncated frame, or a peer that died mid-request. The
      // framing cannot resync, so the connection is done — but the daemon
      // keeps serving everyone else.
      if (running_.load()) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.protocol_errors;
      }
      return;
    }
    bool close_after = false;
    Json response;
    const auto version = request.number("v");
    const auto op = request.string("op");
    if (!version || static_cast<int>(*version) != kServiceProtocolVersion) {
      response = make_error_response("protocol-version-mismatch");
      response["v"] = Json(kServiceProtocolVersion);
      close_after = true;
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.protocol_errors;
    } else if (!op) {
      response = make_error_response("missing-op");
      close_after = true;
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.protocol_errors;
    } else {
      response = handle_request(request);
      close_after = *op == "shutdown";
    }
    if (!write_frame(fd, response)) return;
    if (close_after) return;
  }
}

Json Daemon::handle_request(const Json& request) {
  const std::string op = *request.string("op");
  if (op == "hello") {
    Json r = make_ok_response();
    r["v"] = Json(kServiceProtocolVersion);
    r["pid"] = Json(static_cast<double>(::getpid()));
    return r;
  }
  if (op == "resolve") return handle_resolve(request);
  if (op == "publish") return handle_publish(request);
  if (op == "stats") return handle_stats();
  if (op == "retune") return handle_retune(request);
  if (op == "shutdown") {
    shutdown_requested_.store(true);
    stop_cv_.notify_all();
    return make_ok_response();
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.protocol_errors;
  }
  return make_error_response("unknown-op: " + op);
}

Json Daemon::handle_retune(const Json& request) {
  // On-demand retune of one served key, synchronous: the reply names the
  // promotion outcome. Exists so gates (service_smoke's seeded-retune
  // stage) drive the same path the background sweep takes, without racing
  // an interval timer.
  const Json* kj = request.get("key");
  const auto key = kj != nullptr ? runtime::decode_kernel_key(*kj)
                                 : std::nullopt;
  if (!key) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.protocol_errors;
    return make_error_response("bad-key");
  }
  const PromotionOutcome outcome = retune_key(*key);
  Json r = make_ok_response();
  r["outcome"] = Json(std::string(promotion_outcome_name(outcome)));
  return r;
}

Json Daemon::handle_resolve(const Json& request) {
  const Json* kj = request.get("key");
  const auto key = kj != nullptr ? runtime::decode_kernel_key(*kj)
                                 : std::nullopt;
  if (!key) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.protocol_errors;
    return make_error_response("bad-key");
  }
  // A tuned kernel is only valid on its machine class; a key for another
  // CPU / ISA / dtype is not servable here and the client must fall back.
  KernelKey expected = runtime::host_kernel_key(key->kind, key->shape);
  expected.small = key->small;
  if (!(expected == *key))
    return make_error_response("key-mismatch: not servable on this host");

  const std::string ks = key->to_string();
  bool was_inflight = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.resolves;
    TunedVariant tmp;
    if (rt_->database() != nullptr && rt_->database()->lookup(*key, tmp))
      ++counters_.resolve_hits;
    was_inflight = !inflight_.insert(ks).second;
    if (was_inflight) ++counters_.builds_deduped;
  }

  Json response;
  try {
    // The runtime's per-key promise/future dedup makes the concurrent
    // requesters of one key block here on a single tuner+build.
    const auto kernel = key->small ? rt_->resolve_small(*key->small)
                                   : rt_->resolve(key->kind, key->shape);
    note_served(*key);
    const std::string so = publish_artifact(*key, kernel);
    response = make_ok_response();
    response["variant"] = runtime::encode_tuned_variant(kernel->variant);
    response["symbol"] = Json(kernel->symbol);
    response["mr"] = Json(kernel->mr);
    response["nr"] = Json(kernel->nr);
    if (!so.empty()) response["so"] = Json(so);
  } catch (const Error& e) {
    response = make_error_response(std::string("resolve-failed: ") + e.what());
  }
  if (!was_inflight) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    inflight_.erase(ks);
  }
  return response;
}

Json Daemon::handle_publish(const Json& request) {
  const Json* kj = request.get("key");
  const Json* vj = request.get("variant");
  const auto key = kj != nullptr ? runtime::decode_kernel_key(*kj)
                                 : std::nullopt;
  const auto variant = vj != nullptr ? runtime::decode_tuned_variant(*vj)
                                     : std::nullopt;
  if (!key || !variant ||
      (key->small && (key->small->m % variant->params.mr != 0 ||
                      key->small->n % variant->params.nr != 0))) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.protocol_errors;
    return make_error_response("bad-record");
  }
  bool stored = false;
  if (auto* db = rt_->database()) {
    TunedVariant existing;
    // Keep the better-scored entry: a publish never downgrades what the
    // daemon already serves.
    if (!db->lookup(*key, existing) || existing.mflops < variant->mflops) {
      db->store(*key, *variant);
      stored = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.publishes;
  }
  Json r = make_ok_response();
  r["stored"] = Json(stored);
  return r;
}

Json Daemon::handle_stats() {
  Json r = make_ok_response();
  r["v"] = Json(kServiceProtocolVersion);
  r["pid"] = Json(static_cast<double>(::getpid()));
  r["dir"] = Json(dir_);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    r["counters"] = counters_.to_json();
    r["served_keys"] = Json(static_cast<double>(served_.size()));
  }
  const auto rc = rt_->counters();
  Json rj = Json::object();
  rj["db_hits"] = Json(static_cast<double>(rc.db_hits));
  rj["db_misses"] = Json(static_cast<double>(rc.db_misses));
  rj["tuner_runs"] = Json(static_cast<double>(rc.tuner_runs));
  rj["builds"] = Json(static_cast<double>(rc.builds));
  r["runtime"] = rj;
  const auto cs = rt_->code_stats();
  Json cj = Json::object();
  cj["hits"] = Json(static_cast<double>(cs.hits));
  cj["misses"] = Json(static_cast<double>(cs.misses));
  cj["evictions"] = Json(static_cast<double>(cs.evictions));
  r["code_cache"] = cj;
  if (auto* db = rt_->database()) {
    r["tunedb"] = db->replay_stats().to_json();
    r["tunedb_file"] = Json(db->file_path());
  }
  return r;
}

std::string Daemon::publish_artifact(
    const KernelKey& key, const std::shared_ptr<const CachedKernel>& kernel) {
  if (kernel == nullptr || kernel->module == nullptr) return "";
  std::lock_guard<std::mutex> lock(state_mutex_);
  const std::string ks = key.to_string();
  const auto it = artifact_of_.find(ks);
  if (it != artifact_of_.end() && it->second == kernel.get())
    return artifact_path_[ks];

  char name[32];
  std::snprintf(name, sizeof(name), "k%016llx.so",
                static_cast<unsigned long long>(fnv1a64(ks)));
  const std::string dst = artifact_dir(dir_) + "/" + name;
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp = dst + ".tmp" +
                          std::to_string(tmp_counter.fetch_add(1)) + "." +
                          std::to_string(::getpid());
  {
    // Copy the module's (temporary) .so, then rename into place: clients
    // either see the complete old artifact or the complete new one, and a
    // client that already mapped the old inode keeps running it —
    // zero-downtime promotion.
    std::ifstream in(kernel->module->so_path(), std::ios::binary);
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!in.good() || !out.good()) {
      std::remove(tmp.c_str());
      return "";
    }
    out << in.rdbuf();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return "";
    }
  }
  if (::rename(tmp.c_str(), dst.c_str()) != 0) {
    std::remove(tmp.c_str());
    return "";
  }
  artifact_of_[ks] = kernel.get();
  artifact_path_[ks] = dst;
  return dst;
}

void Daemon::note_served(const KernelKey& key) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto& entry = served_[key.to_string()];
  entry.key = key;
}

std::vector<std::string> Daemon::served_keys() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<std::string> out;
  out.reserve(served_.size());
  for (const auto& [ks, s] : served_) out.push_back(ks);
  return out;
}

std::optional<KernelKey> Daemon::next_retune_candidate() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Served* best = nullptr;
  for (auto& [ks, s] : served_) {
    if (s.key.small) continue;  // baked-in extents: no search space
    if (best == nullptr || s.last_retune_tick < best->last_retune_tick)
      best = &s;
  }
  if (best == nullptr) return std::nullopt;
  // Round-robin oldest-first: stamp now so a failed retune does not wedge
  // the sweep on one key.
  best->last_retune_tick = ++retune_tick_;
  return best->key;
}

void Daemon::retune_loop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  while (running_.load()) {
    stop_cv_.wait_for(
        lock,
        std::chrono::milliseconds(
            static_cast<long>(config_.retune_interval_s * 1000.0)),
        [this] { return !running_.load(); });
    if (!running_.load()) break;
    lock.unlock();
    const auto key = next_retune_candidate();
    if (key) retune_key(*key);
    lock.lock();
  }
}

PromotionOutcome Daemon::retune_key(const KernelKey& key) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.retunes;
  }
  auto* db = rt_->database();
  TunedVariant incumbent;
  if (db == nullptr || !db->lookup(key, incumbent))
    return PromotionOutcome::kError;
  if (key.small) return PromotionOutcome::kUnchanged;

  const tuning::TuneWorkload w =
      config_.workload_override
          ? *config_.workload_override
          : runtime::tune_workload_for(key.kind, key.shape);
  // The retune runs the same seeded search as in-process tuning (so a
  // pinned AUGEM_TUNE_SEED reproduces identical trial sequences across the
  // daemon and client paths — the determinism the service smoke gate
  // asserts). Without a pinned seed, each retune round folds its tick into
  // the seed so successive retunes of one key explore different restarts
  // instead of replaying the same climb forever.
  tuning::SearchOptions sopts = tuning::SearchOptions::from_env();
  if (!sopts.seed_from_env) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    sopts.seed ^= 0x9e3779b97f4a7c15ull * counters_.retunes;
  }
  TunedVariant candidate;
  try {
    const tuning::TuneResult r =
        key.kind == KernelKind::kGemm
            ? tuning::tune_gemm(key.isa, w, sopts)
            : tuning::tune_level1(key.kind, key.isa, w, sopts);
    candidate = TunedVariant::from_tune_result(r);
  } catch (const Error&) {
    return PromotionOutcome::kError;
  }
  if (same_configuration(candidate, incumbent))
    return PromotionOutcome::kUnchanged;
  return try_promote(key, candidate);
}

PromotionOutcome Daemon::try_promote(const KernelKey& key,
                                     const TunedVariant& candidate) {
  auto* db = rt_->database();
  TunedVariant incumbent;
  if (db == nullptr || !db->lookup(key, incumbent) || key.small)
    return PromotionOutcome::kError;
  if (same_configuration(candidate, incumbent))
    return PromotionOutcome::kUnchanged;

  const tuning::TuneWorkload w =
      config_.workload_override
          ? *config_.workload_override
          : runtime::tune_workload_for(key.kind, key.shape);
  perf::Measurement inc_m;
  perf::Measurement cand_m;
  try {
    inc_m = measure_variant(key, incumbent, w, config_.runner);
    cand_m = measure_variant(key, candidate, w, config_.runner);
  } catch (const Error&) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.rejected_promotions;
    return PromotionOutcome::kError;
  }

  // The promotion gate IS the perf harness's noise-aware diff: a candidate
  // wins only when it is faster beyond both the configured threshold and
  // the pooled confidence intervals, so measurement noise can neither
  // promote a loser nor flap between equivalent variants.
  perf::BenchReport base = perf::make_host_report("promotion");
  perf::BenchReport cur = base;
  base.rows.push_back(
      perf::BenchRow::from_measurement(inc_m, key.to_string()));
  cur.rows.push_back(
      perf::BenchRow::from_measurement(cand_m, key.to_string()));
  perf::DiffOptions dopts;
  dopts.threshold = config_.promote_threshold;
  const perf::DiffResult diff = perf::diff_reports(base, cur, dopts);
  if (!diff.comparable() || diff.rows.size() != 1)
    return PromotionOutcome::kError;

  if (diff.rows[0].verdict != perf::RowVerdict::kImproved) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.rejected_promotions;
    return PromotionOutcome::kRejected;
  }

  TunedVariant promoted = candidate;
  promoted.mflops = cand_m.mflops();
  db->store(key, promoted);
  // Drop the resident incumbent and rebuild so the artifact under
  // <dir>/kernels is republished from the winner; clients already running
  // the old code keep their mapping, the next resolve serves the new one.
  rt_->invalidate(key);
  try {
    const auto kernel = rt_->resolve(key.kind, key.shape);
    publish_artifact(key, kernel);
  } catch (const Error&) {
    // The promoted entry is stored; the artifact refresh can wait for the
    // next resolve.
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.promotions;
  }
  return PromotionOutcome::kPromoted;
}

DaemonCounters Daemon::counters() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return counters_;
}

}  // namespace augem::service
