#include "service/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace augem::service {

const char* frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kNeedMore: return "need-more";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kBadPayload: return "bad-payload";
  }
  return "?";
}

std::string encode_frame(const Json& msg) {
  const std::string payload = msg.dump();
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  const auto len = static_cast<std::uint32_t>(payload.size());
  // Little-endian length, byte by byte: the daemon and its clients share a
  // machine, but an explicit layout keeps the frame greppable and the
  // decoder honest about every byte.
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  frame += payload;
  return frame;
}

FrameStatus decode_frame(std::string_view buf, std::size_t& consumed,
                         Json& out) {
  consumed = 0;
  if (buf.empty()) return FrameStatus::kNeedMore;
  // Magic: checked byte-by-byte over the *available* prefix, so garbage is
  // reported as kBadMagic even when shorter than a full header.
  const std::size_t magic_avail = std::min(buf.size(), sizeof(kFrameMagic));
  if (std::memcmp(buf.data(), kFrameMagic, magic_avail) != 0)
    return FrameStatus::kBadMagic;
  if (buf.size() < kFrameHeaderSize) return FrameStatus::kNeedMore;

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[sizeof(kFrameMagic) + i]))
           << (8 * i);
  if (len > kMaxFramePayload) return FrameStatus::kOversized;
  if (buf.size() < kFrameHeaderSize + len) return FrameStatus::kNeedMore;

  const auto doc =
      parse_json(std::string_view(buf.data() + kFrameHeaderSize, len));
  if (!doc || !doc->is_object()) return FrameStatus::kBadPayload;
  out = *doc;
  consumed = kFrameHeaderSize + len;
  return FrameStatus::kOk;
}

bool write_frame(int fd, const Json& msg) {
  const std::string frame = encode_frame(msg);
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t w = ::send(fd, p, left, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  return true;
}

namespace {

/// Reads exactly n bytes. Returns 1 on success, 0 on clean EOF before any
/// byte, -1 on error or mid-read EOF.
int read_exact(int fd, char* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

ReadStatus read_frame(int fd, Json& out) {
  char header[kFrameHeaderSize];
  const int h = read_exact(fd, header, sizeof(header));
  if (h == 0) return ReadStatus::kEof;
  if (h < 0) return ReadStatus::kError;
  std::size_t consumed = 0;
  Json ignored;
  // Validate magic + length through the same pure decoder the fuzz tests
  // exercise (an empty-payload frame decodes fully from the header alone).
  std::string buf(header, sizeof(header));
  const FrameStatus peek = decode_frame(buf, consumed, ignored);
  if (peek != FrameStatus::kOk && peek != FrameStatus::kNeedMore &&
      peek != FrameStatus::kBadPayload)
    return ReadStatus::kError;

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(header[sizeof(kFrameMagic) + i]))
           << (8 * i);
  buf.resize(kFrameHeaderSize + len);
  if (len > 0 && read_exact(fd, buf.data() + kFrameHeaderSize, len) != 1)
    return ReadStatus::kError;
  return decode_frame(buf, consumed, out) == FrameStatus::kOk
             ? ReadStatus::kOk
             : ReadStatus::kError;
}

Json make_request(const std::string& op) {
  Json j = Json::object();
  j["v"] = Json(kServiceProtocolVersion);
  j["op"] = Json(op);
  return j;
}

Json make_ok_response() {
  Json j = Json::object();
  j["ok"] = Json(true);
  return j;
}

Json make_error_response(const std::string& error) {
  Json j = Json::object();
  j["ok"] = Json(false);
  j["error"] = Json(error);
  return j;
}

bool response_ok(const Json& msg) {
  const auto ok = msg.boolean("ok");
  return ok.has_value() && *ok;
}

std::string socket_path(const std::string& cache_dir) {
  return cache_dir + "/daemon.sock";
}

std::string lock_path(const std::string& cache_dir) {
  return cache_dir + "/daemon.lock";
}

std::string artifact_dir(const std::string& cache_dir) {
  return cache_dir + "/kernels";
}

namespace {

bool truthy_env(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

}  // namespace

bool no_daemon_env() { return truthy_env("AUGEM_NO_DAEMON"); }
bool want_daemon_env() { return truthy_env("AUGEM_DAEMON"); }

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace augem::service
