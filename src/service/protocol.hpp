#pragma once
// Wire protocol of the per-machine tuning service (docs/serving.md).
//
// Transport is a local (AF_UNIX, SOCK_STREAM) socket inside the cache
// directory, so filesystem permissions are the access control and a cache
// dir identifies its daemon. Every message is one length-prefixed frame:
//
//   [4-byte magic "AUGS"] [4-byte little-endian payload length] [payload]
//
// where the payload is one JSON object. The magic makes a peer that
// connects to the wrong socket fail fast instead of misreading a length;
// the length bound keeps a garbled or hostile peer from driving an
// unbounded allocation. decode_frame is a pure function over a byte buffer
// so the framing is directly fuzzable with truncated/garbage input
// (tests/service/protocol_test.cpp) without a socket in the loop.
//
// Requests carry {"v": kServiceProtocolVersion, "op": <name>, ...}; the
// ops are hello, resolve, publish, stats, shutdown. Responses carry
// {"ok": true, ...} or {"ok": false, "error": <message>}. A version the
// daemon does not speak gets an error response and the client falls back
// to the in-process path — a protocol mismatch is never fatal to serving.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.hpp"

namespace augem::service {

/// Bumped on any incompatible change to the frame layout or the message
/// schema. Client and daemon exchange it in `hello`; a mismatch means
/// "fall back to in-process", never "best-effort parse".
inline constexpr int kServiceProtocolVersion = 1;

inline constexpr char kFrameMagic[4] = {'A', 'U', 'G', 'S'};
inline constexpr std::size_t kFrameHeaderSize = 8;
/// Upper bound on one payload. Far above any real message (records are a
/// few hundred bytes) while bounding what a corrupt length can allocate.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

enum class FrameStatus {
  kOk,         ///< one complete frame decoded
  kNeedMore,   ///< a valid truncated prefix; read more bytes
  kBadMagic,   ///< first bytes are not "AUGS" — not our protocol
  kOversized,  ///< declared payload length exceeds kMaxFramePayload
  kBadPayload, ///< complete frame whose payload is not one JSON object
};
const char* frame_status_name(FrameStatus s);

/// Encodes one message as a frame (header + compact JSON payload).
std::string encode_frame(const Json& msg);

/// Decodes the first frame of `buf`. On kOk, `out` holds the payload and
/// `consumed` the frame's total byte length (a buffer can hold several
/// frames back to back). On any other status `consumed` is 0; every error
/// status is unrecoverable for the connection — a byte stream without
/// frame boundaries cannot resynchronize, so the peer must close.
FrameStatus decode_frame(std::string_view buf, std::size_t& consumed,
                         Json& out);

// ---- blocking fd transport -------------------------------------------------

/// Writes one frame; false on any error (EPIPE is suppressed via
/// MSG_NOSIGNAL — a dying peer must not signal the process).
bool write_frame(int fd, const Json& msg);

enum class ReadStatus {
  kOk,     ///< one frame read
  kEof,    ///< clean close at a frame boundary
  kError,  ///< I/O error, timeout, mid-frame EOF, or framing violation
};

/// Reads exactly one frame (blocking, honoring the fd's receive timeout).
ReadStatus read_frame(int fd, Json& out);

// ---- message helpers -------------------------------------------------------

/// A request skeleton: {"v": kServiceProtocolVersion, "op": op}.
Json make_request(const std::string& op);
Json make_ok_response();
Json make_error_response(const std::string& error);

/// True when the response object says ok (missing/false → failure).
bool response_ok(const Json& msg);

// ---- well-known paths and engagement policy --------------------------------

/// The daemon's socket / single-instance lock file inside a cache dir.
std::string socket_path(const std::string& cache_dir);
std::string lock_path(const std::string& cache_dir);
/// Directory the daemon publishes kernel artifacts (.so files) into.
std::string artifact_dir(const std::string& cache_dir);

/// AUGEM_NO_DAEMON=1 — never talk to (or spawn) a daemon.
bool no_daemon_env();
/// AUGEM_DAEMON=1 — opt into auto-spawning a daemon on first miss (without
/// it, a client only uses a daemon whose socket is already live).
bool want_daemon_env();

/// FNV-1a 64-bit over a string: stable artifact file names keyed by the
/// kernel-key string, shared by daemon and tests.
std::uint64_t fnv1a64(std::string_view s);

}  // namespace augem::service
