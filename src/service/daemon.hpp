#pragma once
// The per-machine kernel-tuning daemon (docs/serving.md).
//
// One daemon per cache directory (enforced by an flock'd lock file) owns
// the authoritative TuningDatabase and JIT code cache for the machine:
//
//   * every tunedb write on the serving path goes through this process, so
//     thousands of concurrent clients never interleave JSONL lines;
//   * a resolve request tunes/generates/assembles at most once per key
//     machine-wide (concurrent requests for the same key piggyback on the
//     in-flight build — the `builds_deduped` counter) and publishes the
//     compiled kernel as a .so artifact under <dir>/kernels/ that every
//     client process dlopens directly instead of assembling its own copy;
//   * a background retuning thread sweeps the keys this daemon has served,
//     re-runs the empirical tuner off the serving path, and *promotes* the
//     new parameterization only when the perf harness's noise-aware report
//     diff (src/perf/report.hpp) says it won — a promotion rewrites the
//     database entry and republishes the artifact atomically (rename), so
//     running clients keep their mapped code and later resolves pick up
//     the winner with zero downtime.
//
// The daemon is an acceleration layer, not a dependency: clients fall back
// to the in-process path on any failure (see client.hpp).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "perf/bench_runner.hpp"
#include "runtime/dispatch.hpp"
#include "service/protocol.hpp"

namespace augem::service {

struct DaemonConfig {
  /// Cache directory to own; empty → runtime::default_cache_dir().
  std::string cache_dir;
  /// Tuning workload override (CI/tests use a tiny one; unset picks the
  /// shape-matched workload, exactly like the in-process runtime).
  std::optional<tuning::TuneWorkload> workload_override;
  /// Run the background retuning sweep.
  bool retune = true;
  /// Seconds between retune attempts (one key per tick, oldest first).
  double retune_interval_s = 300.0;
  /// Relative improvement the noise-aware diff must certify (beyond the
  /// pooled CI) before a retuned variant replaces a served one.
  double promote_threshold = 0.05;
  /// Measurement budget of the promotion gate's A/B timing.
  perf::RunnerOptions runner;
  /// Code-cache bound of the daemon's runtime (generous: the daemon is the
  /// machine-wide cache of record).
  std::size_t code_cache_capacity = 64;
};

struct DaemonCounters {
  std::uint64_t connections = 0;
  std::uint64_t resolves = 0;
  std::uint64_t resolve_hits = 0;   ///< served from the database, no tuner
  std::uint64_t builds_deduped = 0; ///< piggybacked on an in-flight build
  std::uint64_t publishes = 0;
  std::uint64_t retunes = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rejected_promotions = 0;
  std::uint64_t protocol_errors = 0;

  Json to_json() const;
};

enum class PromotionOutcome {
  kPromoted,   ///< diff verdict improved: entry replaced, artifact republished
  kRejected,   ///< diff verdict not improved: incumbent kept
  kUnchanged,  ///< candidate identical to incumbent: nothing to gate
  kError,      ///< no incumbent, or measurement/generation failed
};
const char* promotion_outcome_name(PromotionOutcome o);

class Daemon {
 public:
  explicit Daemon(DaemonConfig config = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Acquires the directory lock, binds the socket, and starts the accept
  /// (and retune) threads. False when another daemon already owns the
  /// directory or the socket cannot be bound; the error is printable via
  /// last_error().
  bool start();

  /// Stops the threads, closes every connection, and removes the socket.
  /// Idempotent; the lock file is released on destruction.
  void stop();

  bool running() const { return running_.load(); }
  /// Set once a client's `shutdown` request was honored; the hosting
  /// process (tools/augem_serviced) polls this and calls stop().
  bool shutdown_requested() const { return shutdown_requested_.load(); }

  const std::string& dir() const { return dir_; }
  std::string socket_path() const { return service::socket_path(dir_); }
  const std::string& last_error() const { return last_error_; }

  DaemonCounters counters() const;
  runtime::KernelRuntime& runtime() { return *rt_; }

  // ---- retuning / promotion (driven by the background thread; exposed so
  // tests exercise the gate deterministically) -----------------------------

  /// Re-runs the empirical tuner for `key` and feeds the winner through
  /// try_promote. kUnchanged when the tuner reproduces the incumbent.
  PromotionOutcome retune_key(const runtime::KernelKey& key);

  /// A/B-times incumbent vs `candidate` with the BenchRunner and promotes
  /// the candidate only when the noise-aware report diff's verdict is
  /// `improved` at the configured threshold.
  PromotionOutcome try_promote(const runtime::KernelKey& key,
                               const runtime::TunedVariant& candidate);

  /// Keys the daemon has served (resolve requests), i.e. the retuning
  /// sweep's work list. Sorted; exposed for stats and tests.
  std::vector<std::string> served_keys() const;

 private:
  struct Served {
    runtime::KernelKey key;
    std::uint64_t last_retune_tick = 0;
  };

  void accept_loop();
  void retune_loop();
  void handle_connection(int fd);
  Json handle_request(const Json& request);
  Json handle_resolve(const Json& request);
  Json handle_publish(const Json& request);
  Json handle_stats();
  Json handle_retune(const Json& request);

  /// Copies the module behind `kernel` into the artifact directory under a
  /// name derived from the key (atomic rename). Returns the artifact path,
  /// or empty on failure (the response then omits the artifact and the
  /// client builds locally — degraded, never broken).
  std::string publish_artifact(
      const runtime::KernelKey& key,
      const std::shared_ptr<const runtime::CachedKernel>& kernel);

  void note_served(const runtime::KernelKey& key);
  std::optional<runtime::KernelKey> next_retune_candidate();

  DaemonConfig config_;
  std::string dir_;
  std::string last_error_;
  int lock_fd_ = -1;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::unique_ptr<runtime::KernelRuntime> rt_;

  std::thread accept_thread_;
  std::thread retune_thread_;
  std::set<int> conn_fds_;  ///< open connections (shutdown-able from stop())
  mutable std::mutex conn_mutex_;
  std::condition_variable conn_cv_;  ///< signaled as handlers drain

  mutable std::mutex state_mutex_;
  std::condition_variable stop_cv_;
  DaemonCounters counters_;
  std::map<std::string, Served> served_;
  std::set<std::string> inflight_;  ///< keys with a build in progress
  std::map<std::string, const void*> artifact_of_;  ///< key → built kernel id
  std::map<std::string, std::string> artifact_path_;
  std::uint64_t retune_tick_ = 0;
};

}  // namespace augem::service
