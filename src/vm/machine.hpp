#pragma once
// Machine-IR interpreter.
//
// Executes a generated kernel's MInstList directly against host memory,
// emulating the x86-64 register state (16 GPRs, 16 × 256-bit vector
// registers, comparison flags, a private stack). This is the semantic
// test-bed for *every* ISA variant the framework targets — in particular
// AMD FMA4, which the host CPU cannot execute natively (DESIGN.md §2) —
// and the reference the JIT-compiled native code is cross-checked against.
//
// Calls follow the SysV ABI the generated prologue expects: integer and
// pointer arguments in rdi/rsi/rdx/rcx/r8/r9 then on the stack, doubles in
// xmm0+. The return value is xmm0 lane 0.

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "opt/minst.hpp"

namespace augem::vm {

/// Argument value for a VM call.
using Arg = std::variant<std::int64_t, double, double*, const double*>;

class Machine {
 public:
  /// Resolves labels; throws on duplicate/missing jump targets.
  explicit Machine(const opt::MInstList& insts);

  /// Runs the function with the given arguments; returns xmm0 lane 0.
  /// Throws augem::Error on step-limit overrun (runaway loop) or on
  /// malformed instructions.
  double call(const std::vector<Arg>& args);

  /// Upper bound on executed instructions per call (default 500M).
  void set_step_limit(std::int64_t limit) { step_limit_ = limit; }

  /// Number of instructions executed by the last call.
  std::int64_t steps_executed() const { return steps_; }

 private:
  std::int64_t addr_of(const opt::Mem& m) const;
  double* ptr_of(const opt::Mem& m) const;

  const opt::MInstList& insts_;
  std::vector<std::size_t> label_target_;  // per instruction index of jumps
  std::int64_t step_limit_ = 500'000'000;
  std::int64_t steps_ = 0;

  std::array<std::int64_t, opt::kNumGprs> gpr_{};
  std::array<std::array<double, 4>, opt::kNumVrs> vr_{};
  bool flag_lt_ = false;
  bool flag_eq_ = false;
  std::vector<std::uint8_t> stack_;
};

}  // namespace augem::vm
