#include "vm/machine.hpp"

#include <cmath>
#include <cstring>
#include <map>

#include "support/error.hpp"

namespace augem::vm {

using namespace augem::opt;

namespace {
constexpr std::size_t kStackBytes = 1 << 16;
}

Machine::Machine(const MInstList& insts)
    : insts_(insts), stack_(kStackBytes) {
  std::map<std::string, std::size_t> labels;
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    if (insts_[i].op == MOp::kLabel) {
      AUGEM_CHECK(labels.emplace(insts_[i].label, i).second,
                  "duplicate label " << insts_[i].label);
    }
  }
  label_target_.assign(insts_.size(), 0);
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    const MInst& inst = insts_[i];
    switch (inst.op) {
      case MOp::kJl:
      case MOp::kJge:
      case MOp::kJne:
      case MOp::kJe:
      case MOp::kJmp: {
        const auto it = labels.find(inst.label);
        AUGEM_CHECK(it != labels.end(), "unknown jump target " << inst.label);
        label_target_[i] = it->second;
        break;
      }
      default:
        break;
    }
  }
}

std::int64_t Machine::addr_of(const Mem& m) const {
  AUGEM_CHECK(m.valid(), "invalid memory operand");
  std::int64_t a = gpr_[index_of(m.base)] + m.disp;
  if (m.has_index()) a += gpr_[index_of(m.index)] * m.scale;
  return a;
}

double* Machine::ptr_of(const Mem& m) const {
  return reinterpret_cast<double*>(addr_of(m));
}

double Machine::call(const std::vector<Arg>& args) {
  gpr_.fill(0);
  for (auto& v : vr_) v.fill(0.0);
  flag_lt_ = flag_eq_ = false;

  // SysV argument passing.
  static constexpr Gpr kIntArgs[6] = {Gpr::rdi, Gpr::rsi, Gpr::rdx,
                                      Gpr::rcx, Gpr::r8, Gpr::r9};
  int next_int = 0, next_sse = 0;
  std::vector<std::int64_t> stack_args;
  for (const Arg& a : args) {
    if (std::holds_alternative<double>(a)) {
      AUGEM_CHECK(next_sse < 8, "too many double args");
      vr_[next_sse++][0] = std::get<double>(a);
      continue;
    }
    std::int64_t v = 0;
    if (std::holds_alternative<std::int64_t>(a)) {
      v = std::get<std::int64_t>(a);
    } else if (std::holds_alternative<double*>(a)) {
      v = reinterpret_cast<std::int64_t>(std::get<double*>(a));
    } else {
      v = reinterpret_cast<std::int64_t>(std::get<const double*>(a));
    }
    if (next_int < 6) {
      gpr_[index_of(kIntArgs[next_int++])] = v;
    } else {
      stack_args.push_back(v);
    }
  }

  // Stack: rsp points at a fake return address; stack args live above it.
  std::int64_t rsp = reinterpret_cast<std::int64_t>(stack_.data()) +
                     static_cast<std::int64_t>(stack_.size()) - 4096;
  rsp &= ~std::int64_t{15};
  rsp -= 8;  // return-address slot
  for (std::size_t k = 0; k < stack_args.size(); ++k)
    std::memcpy(reinterpret_cast<void*>(rsp + 8 + 8 * static_cast<std::int64_t>(k)),
                &stack_args[k], 8);
  gpr_[index_of(Gpr::rsp)] = rsp;

  steps_ = 0;
  std::size_t pc = 0;
  while (pc < insts_.size()) {
    AUGEM_CHECK(++steps_ <= step_limit_, "VM step limit exceeded");
    const MInst& i = insts_[pc];
    const int w = i.width;
    switch (i.op) {
      case MOp::kVZero:
        vr_[index_of(i.vdst)].fill(0.0);
        break;
      case MOp::kVLoad:
      case MOp::kFLoad: {
        const double* p = ptr_of(i.mem);
        auto& d = vr_[index_of(i.vdst)];
        for (int k = 0; k < 4; ++k) d[k] = k < w ? p[k] : 0.0;
        break;
      }
      case MOp::kVStore:
      case MOp::kFStore: {
        double* p = ptr_of(i.mem);
        const auto& s = vr_[index_of(i.vsrc1)];
        for (int k = 0; k < w; ++k) p[k] = s[k];
        break;
      }
      case MOp::kVBroadcast: {
        const double v = *ptr_of(i.mem);
        auto& d = vr_[index_of(i.vdst)];
        for (int k = 0; k < 4; ++k) d[k] = k < w ? v : 0.0;
        break;
      }
      case MOp::kVMov:
        vr_[index_of(i.vdst)] = vr_[index_of(i.vsrc1)];
        break;
      case MOp::kVMul:
      case MOp::kVAdd:
      case MOp::kVMax: {
        const auto a = vr_[index_of(i.vsrc1)];
        const auto b = vr_[index_of(i.vsrc2)];
        auto& d = vr_[index_of(i.vdst)];
        for (int k = 0; k < 4; ++k) {
          if (k < w) {
            // kVMax matches MAXPD: src2 wins when src1 is NaN or on ties.
            d[k] = i.op == MOp::kVMul   ? a[k] * b[k]
                   : i.op == MOp::kVAdd ? a[k] + b[k]
                                        : (a[k] > b[k] ? a[k] : b[k]);
          } else {
            d[k] = a[k];  // narrower ops inherit src1's upper lanes
          }
        }
        break;
      }
      case MOp::kVFma231: {
        const auto a = vr_[index_of(i.vsrc1)];
        const auto b = vr_[index_of(i.vsrc2)];
        auto& d = vr_[index_of(i.vdst)];
        // Fused: single rounding, exactly as the silicon computes it.
        for (int k = 0; k < w; ++k) d[k] = std::fma(a[k], b[k], d[k]);
        break;
      }
      case MOp::kVFma4: {
        const auto a = vr_[index_of(i.vsrc1)];
        const auto b = vr_[index_of(i.vsrc2)];
        const auto c = vr_[index_of(i.vsrc3)];
        auto& d = vr_[index_of(i.vdst)];
        for (int k = 0; k < 4; ++k)
          d[k] = k < w ? std::fma(a[k], b[k], c[k]) : a[k];
        break;
      }
      case MOp::kVShuf: {
        const auto a = vr_[index_of(i.vsrc1)];
        const auto b = vr_[index_of(i.vsrc2)];
        auto& d = vr_[index_of(i.vdst)];
        const auto imm = i.imm;
        std::array<double, 4> r = a;
        r[0] = a[imm & 1];
        r[1] = b[(imm >> 1) & 1];
        if (w == 4) {
          r[2] = a[2 + ((imm >> 2) & 1)];
          r[3] = b[2 + ((imm >> 3) & 1)];
        }
        d = r;
        break;
      }
      case MOp::kVPerm128: {
        const auto a = vr_[index_of(i.vsrc1)];
        const auto b = vr_[index_of(i.vsrc2)];
        auto pick = [&](int sel, int lane) {
          switch (sel & 3) {
            case 0: return a[lane];
            case 1: return a[2 + lane];
            case 2: return b[lane];
            default: return b[2 + lane];
          }
        };
        auto& d = vr_[index_of(i.vdst)];
        const auto imm = i.imm;
        std::array<double, 4> r{};
        r[0] = pick(static_cast<int>(imm), 0);
        r[1] = pick(static_cast<int>(imm), 1);
        r[2] = pick(static_cast<int>(imm >> 4), 0);
        r[3] = pick(static_cast<int>(imm >> 4), 1);
        d = r;
        break;
      }
      case MOp::kVBlend: {
        const auto a = vr_[index_of(i.vsrc1)];
        const auto b = vr_[index_of(i.vsrc2)];
        auto& d = vr_[index_of(i.vdst)];
        std::array<double, 4> r = a;
        for (int k = 0; k < w; ++k) r[k] = (i.imm >> k) & 1 ? b[k] : a[k];
        d = r;
        break;
      }
      case MOp::kVExtractHigh: {
        const auto s = vr_[index_of(i.vsrc1)];
        auto& d = vr_[index_of(i.vdst)];
        d = {s[2], s[3], 0.0, 0.0};
        break;
      }

      case MOp::kIMovImm:
        gpr_[index_of(i.gdst)] = i.imm;
        break;
      case MOp::kIMov:
        gpr_[index_of(i.gdst)] = gpr_[index_of(i.gsrc)];
        break;
      case MOp::kIAdd:
        gpr_[index_of(i.gdst)] += gpr_[index_of(i.gsrc)];
        break;
      case MOp::kIAddImm:
        gpr_[index_of(i.gdst)] += i.imm;
        break;
      case MOp::kISub:
        gpr_[index_of(i.gdst)] -= gpr_[index_of(i.gsrc)];
        break;
      case MOp::kISubImm:
        gpr_[index_of(i.gdst)] -= i.imm;
        break;
      case MOp::kIMul:
        gpr_[index_of(i.gdst)] *= gpr_[index_of(i.gsrc)];
        break;
      case MOp::kIMulImm:
        gpr_[index_of(i.gdst)] = gpr_[index_of(i.gsrc)] * i.imm;
        break;
      case MOp::kIShlImm:
        gpr_[index_of(i.gdst)] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gpr_[index_of(i.gdst)]) << i.imm);
        break;
      case MOp::kINeg:
        gpr_[index_of(i.gdst)] = -gpr_[index_of(i.gdst)];
        break;
      case MOp::kILoad:
        std::memcpy(&gpr_[index_of(i.gdst)],
                    reinterpret_cast<void*>(addr_of(i.mem)), 8);
        break;
      case MOp::kIAddMem:
      case MOp::kISubMem:
      case MOp::kIMulMem: {
        std::int64_t v = 0;
        std::memcpy(&v, reinterpret_cast<void*>(addr_of(i.mem)), 8);
        auto& d = gpr_[index_of(i.gdst)];
        if (i.op == MOp::kIAddMem) {
          d += v;
        } else if (i.op == MOp::kISubMem) {
          d -= v;
        } else {
          d *= v;
        }
        break;
      }
      case MOp::kIStore:
        std::memcpy(reinterpret_cast<void*>(addr_of(i.mem)),
                    &gpr_[index_of(i.gsrc)], 8);
        break;
      case MOp::kLea:
        gpr_[index_of(i.gdst)] = addr_of(i.mem);
        break;

      case MOp::kCmp: {
        const std::int64_t a = gpr_[index_of(i.gdst)];
        const std::int64_t b = gpr_[index_of(i.gsrc)];
        flag_lt_ = a < b;
        flag_eq_ = a == b;
        break;
      }
      case MOp::kCmpImm: {
        const std::int64_t a = gpr_[index_of(i.gdst)];
        flag_lt_ = a < i.imm;
        flag_eq_ = a == i.imm;
        break;
      }
      case MOp::kJl:
        if (flag_lt_) {
          pc = label_target_[pc];
          continue;
        }
        break;
      case MOp::kJge:
        if (!flag_lt_) {
          pc = label_target_[pc];
          continue;
        }
        break;
      case MOp::kJne:
        if (!flag_eq_) {
          pc = label_target_[pc];
          continue;
        }
        break;
      case MOp::kJe:
        if (flag_eq_) {
          pc = label_target_[pc];
          continue;
        }
        break;
      case MOp::kJmp:
        pc = label_target_[pc];
        continue;

      case MOp::kPush:
        gpr_[index_of(Gpr::rsp)] -= 8;
        std::memcpy(reinterpret_cast<void*>(gpr_[index_of(Gpr::rsp)]),
                    &gpr_[index_of(i.gsrc)], 8);
        break;
      case MOp::kPop:
        std::memcpy(&gpr_[index_of(i.gdst)],
                    reinterpret_cast<void*>(gpr_[index_of(Gpr::rsp)]), 8);
        gpr_[index_of(Gpr::rsp)] += 8;
        break;
      case MOp::kVZeroUpper:
        for (auto& v : vr_) v[2] = v[3] = 0.0;
        break;
      case MOp::kRet:
        return vr_[0][0];

      case MOp::kLabel:
      case MOp::kPrefetch:
      case MOp::kComment:
        break;
    }
    ++pc;
  }
  AUGEM_FAIL("function fell off the end without ret");
}

}  // namespace augem::vm
