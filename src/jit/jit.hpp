#pragma once
// Runtime assembly of generated kernels.
//
// The framework's output is assembly *text* (as the paper's is). To execute
// it natively we feed that text to the system assembler (`gcc -x assembler
// -shared -nostdlib`) and dlopen the result. gcc acts purely as an
// assembler driver here — no compiler optimization touches the kernel,
// preserving the paper's "no general-purpose compiler in the loop" claim.

#include <memory>
#include <string>

namespace augem::jit {

/// A loaded shared object holding one or more generated kernels.
/// Owns the dlopen handle and the temporary files (removed on destruction).
class CompiledModule {
 public:
  CompiledModule(CompiledModule&&) noexcept;
  CompiledModule& operator=(CompiledModule&&) noexcept;
  CompiledModule(const CompiledModule&) = delete;
  CompiledModule& operator=(const CompiledModule&) = delete;
  ~CompiledModule();

  /// Resolves a kernel symbol; throws augem::Error when absent.
  void* raw_symbol(const std::string& name) const;

  /// Typed convenience: `module.fn<void(long, double, const double*,
  /// double*)>("daxpy_kernel")`.
  template <typename Fn>
  Fn* fn(const std::string& name) const {
    return reinterpret_cast<Fn*>(raw_symbol(name));
  }

  /// Path of the shared object (e.g. for debugging with objdump).
  const std::string& so_path() const;

 private:
  friend CompiledModule assemble(const std::string& asm_text);
  friend CompiledModule compile_c(const std::string& c_text,
                                  const std::string& flags);
  friend CompiledModule load_shared_object(const std::string& so_path);
  struct Impl;
  explicit CompiledModule(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Assembles AT&T-syntax text into a shared object and loads it.
/// Throws augem::Error with the assembler diagnostics on failure.
CompiledModule assemble(const std::string& asm_text);

/// Compiles C source text (e.g. the printed optimized low-level C kernel)
/// with the general-purpose compiler at the given flags and loads it. This
/// is the comparator for the "generated assembly vs compiler-from-the-same-
/// source" ablation: the paper's thesis is that the template backend beats
/// exactly this path.
CompiledModule compile_c(const std::string& c_text,
                         const std::string& flags = "-O2");

/// Loads an already-built shared object (e.g. a kernel artifact published
/// by the tuning daemon, docs/serving.md) without taking ownership of the
/// file: destruction dlcloses the handle but leaves the .so on disk, since
/// other processes share it. Throws augem::Error when dlopen fails.
CompiledModule load_shared_object(const std::string& so_path);

/// True if a working assembler toolchain is available (checked once).
bool toolchain_available();

}  // namespace augem::jit
