#include "jit/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "support/error.hpp"

namespace augem::jit {

struct CompiledModule::Impl {
  void* handle = nullptr;
  std::string s_path;
  std::string so_path;
  /// Modules assembled here own their temp files; a module loaded from a
  /// shared artifact (load_shared_object) must leave the file alone.
  bool owns_files = true;

  ~Impl() {
    if (handle != nullptr) dlclose(handle);
    if (!owns_files) return;
    if (!s_path.empty()) std::remove(s_path.c_str());
    if (!so_path.empty()) std::remove(so_path.c_str());
  }
};

CompiledModule::CompiledModule(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CompiledModule::CompiledModule(CompiledModule&&) noexcept = default;
CompiledModule& CompiledModule::operator=(CompiledModule&&) noexcept = default;
CompiledModule::~CompiledModule() = default;

void* CompiledModule::raw_symbol(const std::string& name) const {
  AUGEM_CHECK(impl_ != nullptr && impl_->handle != nullptr, "module not loaded");
  dlerror();
  void* sym = dlsym(impl_->handle, name.c_str());
  AUGEM_CHECK(sym != nullptr, "symbol '" << name << "' not found: "
                                         << (dlerror() ? dlerror() : "?"));
  return sym;
}

const std::string& CompiledModule::so_path() const { return impl_->so_path; }

namespace {

/// Creates (and keeps) a fresh empty file `<tmpdir>/augem_jit_XXXXXX<suffix>`
/// and returns its path. mkstemps makes the creation atomic and exclusive
/// (O_CREAT|O_EXCL on a kernel-randomized name), so concurrent processes —
/// or a PID-reusing successor of a crashed one — sharing the temp directory
/// can never collide on a path the way a pid+counter scheme could.
std::string make_temp_file(const char* suffix) {
  const char* dir = std::getenv("TMPDIR");
  std::string tmpl = std::string(dir != nullptr && dir[0] != '\0' ? dir : "/tmp") +
                     "/augem_jit_XXXXXX" + suffix;
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const int fd = mkstemps(buf.data(), static_cast<int>(std::strlen(suffix)));
  AUGEM_CHECK(fd >= 0, "cannot create temp file " << tmpl);
  close(fd);
  return std::string(buf.data());
}

/// Runs a shell command, capturing combined output; returns exit status.
int run_command(const std::string& cmd, std::string& output) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  AUGEM_CHECK(pipe != nullptr, "failed to spawn assembler");
  char buf[512];
  output.clear();
  while (fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  return pclose(pipe);
}

}  // namespace

CompiledModule assemble(const std::string& asm_text) {
  auto impl = std::make_unique<CompiledModule::Impl>();
  impl->s_path = make_temp_file(".s");
  impl->so_path = make_temp_file(".so");

  {
    std::ofstream out(impl->s_path);
    AUGEM_CHECK(out.good(), "cannot write " << impl->s_path);
    out << asm_text;
  }

  // gcc is used strictly as an assembler + linker driver: the input is
  // already assembly, -nostdlib keeps the object self-contained.
  const std::string cmd = "gcc -x assembler " + impl->s_path +
                          " -shared -nostdlib -o " + impl->so_path;
  std::string output;
  const int status = run_command(cmd, output);
  AUGEM_CHECK(status == 0, "assembler failed:\n" << output);

  impl->handle = dlopen(impl->so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  AUGEM_CHECK(impl->handle != nullptr,
              "dlopen failed: " << (dlerror() ? dlerror() : "?"));
  return CompiledModule(std::move(impl));
}

CompiledModule compile_c(const std::string& c_text, const std::string& flags) {
  auto impl = std::make_unique<CompiledModule::Impl>();
  impl->s_path = make_temp_file(".c");
  impl->so_path = make_temp_file(".so");
  {
    std::ofstream out(impl->s_path);
    AUGEM_CHECK(out.good(), "cannot write " << impl->s_path);
    out << c_text;
  }
  const std::string cmd = "gcc -x c " + flags + " -fPIC -shared " +
                          impl->s_path + " -o " + impl->so_path;
  std::string output;
  const int status = run_command(cmd, output);
  AUGEM_CHECK(status == 0, "C compiler failed:\n" << output);
  impl->handle = dlopen(impl->so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  AUGEM_CHECK(impl->handle != nullptr,
              "dlopen failed: " << (dlerror() ? dlerror() : "?"));
  return CompiledModule(std::move(impl));
}

CompiledModule load_shared_object(const std::string& so_path) {
  auto impl = std::make_unique<CompiledModule::Impl>();
  impl->so_path = so_path;
  impl->owns_files = false;
  impl->handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  AUGEM_CHECK(impl->handle != nullptr,
              "dlopen " << so_path
                        << " failed: " << (dlerror() ? dlerror() : "?"));
  return CompiledModule(std::move(impl));
}

bool toolchain_available() {
  static const bool available = [] {
    std::string output;
    return run_command("gcc --version", output) == 0;
  }();
  return available;
}

}  // namespace augem::jit
