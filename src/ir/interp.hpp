#pragma once
// Reference interpreter for IR kernels.
//
// Executes a Kernel directly against host memory. This is the semantic
// oracle of the whole framework: the simple-C kernel, every transformed
// kernel, the machine-code VM, and the JIT-compiled assembly must all agree
// with it (bit-for-bit for identical evaluation orders; within reassociation
// tolerance once SIMD vectorization regroups sums).

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "ir/kernel.hpp"

namespace augem::ir {

/// Runtime argument/variable value: index integer, double, or data pointer.
using Value = std::variant<std::int64_t, double, double*>;

/// Environment mapping variable names to values. Kernel parameters must be
/// pre-populated by the caller; locals are created on first assignment.
using Env = std::map<std::string, Value>;

/// Runs the kernel with the given arguments. Returns the kernel's return
/// value (0.0 for void kernels). Throws augem::Error on type errors or
/// references to unbound variables.
double interpret(const Kernel& kernel, Env args);

}  // namespace augem::ir
