#include "ir/affine.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace augem::ir {

Poly Poly::constant(std::int64_t c) {
  Poly p;
  if (c != 0) p.terms_.push_back({c, {}});
  return p;
}

Poly Poly::variable(const std::string& name) {
  Poly p;
  p.terms_.push_back({1, {name}});
  return p;
}

void Poly::canonicalize() {
  for (PolyTerm& t : terms_) std::sort(t.vars.begin(), t.vars.end());
  std::sort(terms_.begin(), terms_.end(),
            [](const PolyTerm& a, const PolyTerm& b) { return a.vars < b.vars; });
  std::vector<PolyTerm> merged;
  for (PolyTerm& t : terms_) {
    if (!merged.empty() && merged.back().same_monomial(t)) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(std::move(t));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const PolyTerm& t) { return t.coeff == 0; }),
               merged.end());
  terms_ = std::move(merged);
}

Poly Poly::operator+(const Poly& o) const {
  Poly r;
  r.terms_ = terms_;
  r.terms_.insert(r.terms_.end(), o.terms_.begin(), o.terms_.end());
  r.canonicalize();
  return r;
}

Poly Poly::operator-(const Poly& o) const {
  Poly neg = o;
  for (PolyTerm& t : neg.terms_) t.coeff = -t.coeff;
  return *this + neg;
}

Poly Poly::operator*(const Poly& o) const {
  Poly r;
  for (const PolyTerm& a : terms_) {
    for (const PolyTerm& b : o.terms_) {
      PolyTerm t;
      t.coeff = a.coeff * b.coeff;
      t.vars = a.vars;
      t.vars.insert(t.vars.end(), b.vars.begin(), b.vars.end());
      r.terms_.push_back(std::move(t));
    }
  }
  r.canonicalize();
  return r;
}

std::int64_t Poly::constant_part() const {
  for (const PolyTerm& t : terms_)
    if (t.vars.empty()) return t.coeff;
  return 0;
}

Poly Poly::without_constant() const {
  Poly r;
  for (const PolyTerm& t : terms_)
    if (!t.vars.empty()) r.terms_.push_back(t);
  return r;  // already canonical: subset of a canonical term list
}

bool Poly::independent_of(const std::string& v) const {
  for (const PolyTerm& t : terms_)
    if (std::find(t.vars.begin(), t.vars.end(), v) != t.vars.end()) return false;
  return true;
}

std::optional<Poly> Poly::coefficient_of(const std::string& v) const {
  Poly coeff;
  for (const PolyTerm& t : terms_) {
    const auto count = std::count(t.vars.begin(), t.vars.end(), v);
    if (count == 0) continue;
    if (count > 1) return std::nullopt;  // quadratic in v
    PolyTerm reduced = t;
    reduced.vars.erase(std::find(reduced.vars.begin(), reduced.vars.end(), v));
    coeff.terms_.push_back(std::move(reduced));
  }
  coeff.canonicalize();
  return coeff;
}

Poly Poly::drop_terms_with(const std::string& v) const {
  Poly r;
  for (const PolyTerm& t : terms_)
    if (std::find(t.vars.begin(), t.vars.end(), v) == t.vars.end())
      r.terms_.push_back(t);
  return r;
}

Poly Poly::substitute(const std::string& v, const Poly& replacement) const {
  Poly result;
  for (const PolyTerm& t : terms_) {
    const auto count = std::count(t.vars.begin(), t.vars.end(), v);
    PolyTerm rest = t;
    for (std::int64_t i = 0; i < count; ++i)
      rest.vars.erase(std::find(rest.vars.begin(), rest.vars.end(), v));
    Poly term_poly;
    term_poly.terms_.push_back(rest);
    for (std::int64_t i = 0; i < count; ++i) term_poly = term_poly * replacement;
    result = result + term_poly;
  }
  return result;
}

ExprPtr Poly::to_expr() const {
  if (terms_.empty()) return ival(0);
  ExprPtr acc;
  for (const PolyTerm& t : terms_) {
    // Build coeff * v1 * v2 * …, eliding a unit coefficient.
    ExprPtr term;
    if (t.vars.empty()) {
      term = ival(t.coeff);
    } else {
      for (const std::string& v : t.vars) {
        term = term ? mul(std::move(term), var(v)) : var(v);
      }
      if (t.coeff != 1) {
        if (t.coeff == -1) {
          term = sub(ival(0), std::move(term));
        } else {
          term = mul(ival(t.coeff), std::move(term));
        }
      }
    }
    acc = acc ? add(std::move(acc), std::move(term)) : std::move(term);
  }
  return acc;
}

std::string Poly::to_string() const { return to_expr()->to_string(); }

std::optional<Poly> to_poly(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kIntConst:
      return Poly::constant(as<IntConst>(e)->value());
    case ExprKind::kVarRef:
      return Poly::variable(as<VarRef>(e)->name());
    case ExprKind::kBinary: {
      const auto* b = as<Binary>(e);
      auto l = to_poly(b->lhs());
      auto r = to_poly(b->rhs());
      if (!l || !r) return std::nullopt;
      switch (b->op()) {
        case BinOp::kAdd: return *l + *r;
        case BinOp::kSub: return *l - *r;
        case BinOp::kMul: return *l * *r;
        case BinOp::kMax: return std::nullopt;  // not affine
      }
      return std::nullopt;
    }
    case ExprKind::kFloatConst:
    case ExprKind::kArrayRef:
      return std::nullopt;
  }
  return std::nullopt;
}

ExprPtr simplify_index(const Expr& e) {
  if (auto p = to_poly(e)) return p->to_expr();
  return e.clone();
}

}  // namespace augem::ir
