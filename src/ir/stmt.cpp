#include "ir/stmt.hpp"

#include <sstream>

namespace augem::ir {

StmtList clone_stmts(const StmtList& stmts) {
  StmtList out;
  out.reserve(stmts.size());
  for (const StmtPtr& s : stmts) out.push_back(s->clone());
  return out;
}

bool stmts_equal(const StmtList& a, const StmtList& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a[i]->equals(*b[i])) return false;
  return true;
}

Assign::Assign(ExprPtr lhs, ExprPtr rhs)
    : Stmt(StmtKind::kAssign), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

StmtPtr Assign::clone() const {
  auto copy = std::make_unique<Assign>(lhs_->clone(), rhs_->clone());
  copy->set_template_tag(template_tag(), region_id());
  return copy;
}

bool Assign::equals(const Stmt& other) const {
  const auto* o = as<Assign>(other);
  return o != nullptr && o->lhs().equals(*lhs_) && o->rhs().equals(*rhs_);
}

std::string Assign::to_string(int indent) const {
  std::ostringstream os;
  os << indent_str(indent) << lhs_->to_string() << " = " << rhs_->to_string()
     << ";";
  if (!template_tag().empty())
    os << "  /* " << template_tag() << "#" << region_id() << " */";
  return os.str();
}

ForStmt::ForStmt(std::string var, ExprPtr lower, ExprPtr upper,
                 std::int64_t step, StmtList body)
    : Stmt(StmtKind::kFor),
      var_(std::move(var)),
      lower_(std::move(lower)),
      upper_(std::move(upper)),
      step_(step),
      body_(std::move(body)) {}

StmtPtr ForStmt::clone() const {
  auto copy = std::make_unique<ForStmt>(var_, lower_->clone(), upper_->clone(),
                                        step_, clone_stmts(body_));
  copy->set_template_tag(template_tag(), region_id());
  return copy;
}

bool ForStmt::equals(const Stmt& other) const {
  const auto* o = as<ForStmt>(other);
  return o != nullptr && o->var() == var_ && o->lower().equals(*lower_) &&
         o->upper().equals(*upper_) && o->step() == step_ &&
         stmts_equal(o->body(), body_);
}

std::string ForStmt::to_string(int indent) const {
  std::ostringstream os;
  os << indent_str(indent) << "for (" << var_ << " = " << lower_->to_string()
     << "; " << var_ << " < " << upper_->to_string() << "; " << var_;
  if (step_ == 1) {
    os << "++";
  } else {
    os << " += " << step_;
  }
  os << ") {\n";
  for (const StmtPtr& s : body_) os << s->to_string(indent + 1) << "\n";
  os << indent_str(indent) << "}";
  return os.str();
}

Prefetch::Prefetch(std::string base, ExprPtr index, int locality)
    : Stmt(StmtKind::kPrefetch),
      base_(std::move(base)),
      index_(std::move(index)),
      locality_(locality) {}

StmtPtr Prefetch::clone() const {
  auto copy = std::make_unique<Prefetch>(base_, index_->clone(), locality_);
  copy->set_template_tag(template_tag(), region_id());
  return copy;
}

bool Prefetch::equals(const Stmt& other) const {
  const auto* o = as<Prefetch>(other);
  return o != nullptr && o->base() == base_ && o->index().equals(*index_) &&
         o->locality() == locality_;
}

std::string Prefetch::to_string(int indent) const {
  std::ostringstream os;
  os << indent_str(indent) << "__builtin_prefetch(&" << base_ << "["
     << index_->to_string() << "], 0, " << locality_ << ");";
  return os.str();
}

}  // namespace augem::ir
