#pragma once
// Statement nodes of the low-level C IR.
//
// The statement language mirrors what the paper's Optimized C Kernel
// Generator emits (Fig. 13): counted `for` loops, assignments (which after
// scalar replacement are loads, stores, or single-operator scalar
// arithmetic), and software prefetches. Statements matched by the Template
// Identifier are annotated in place via `Stmt::set_template_tag`.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace augem::ir {

enum class StmtKind : std::uint8_t {
  kAssign,
  kFor,
  kPrefetch,
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Deep-copies a statement list.
StmtList clone_stmts(const StmtList& stmts);

/// Structural equality of two statement lists (ignores template tags).
bool stmts_equal(const StmtList& a, const StmtList& b);

/// Base statement node.
class Stmt {
 public:
  virtual ~Stmt() = default;
  StmtKind kind() const { return kind_; }

  virtual StmtPtr clone() const = 0;
  virtual bool equals(const Stmt& other) const = 0;
  /// Renders C-like source, indented by `indent` double-spaces.
  virtual std::string to_string(int indent = 0) const = 0;

  /// Template annotation written by the Template Identifier ("" = untagged).
  /// Tags group *runs* of statements: all statements belonging to one
  /// identified region carry the same (tag, region_id) pair.
  const std::string& template_tag() const { return template_tag_; }
  int region_id() const { return region_id_; }
  void set_template_tag(std::string tag, int region_id) {
    template_tag_ = std::move(tag);
    region_id_ = region_id;
  }
  void clear_template_tag() {
    template_tag_.clear();
    region_id_ = -1;
  }

 protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}
  static std::string indent_str(int indent) { return std::string(2 * indent, ' '); }

 private:
  StmtKind kind_;
  std::string template_tag_;
  int region_id_ = -1;
};

/// `lhs = rhs` where lhs is a VarRef (scalar def) or ArrayRef (store).
class Assign final : public Stmt {
 public:
  static constexpr StmtKind kKind = StmtKind::kAssign;
  Assign(ExprPtr lhs, ExprPtr rhs);
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }
  /// Replaces the RHS (used by simplification inside transforms).
  void set_rhs(ExprPtr rhs) { rhs_ = std::move(rhs); }

  StmtPtr clone() const override;
  bool equals(const Stmt& other) const override;
  std::string to_string(int indent) const override;

 private:
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// `for (var = lower; var < upper; var += step) body`
/// `step` is a compile-time constant: unrolling and strength reduction both
/// need to reason about it exactly.
class ForStmt final : public Stmt {
 public:
  static constexpr StmtKind kKind = StmtKind::kFor;
  ForStmt(std::string var, ExprPtr lower, ExprPtr upper, std::int64_t step,
          StmtList body);
  const std::string& var() const { return var_; }
  const Expr& lower() const { return *lower_; }
  const Expr& upper() const { return *upper_; }
  std::int64_t step() const { return step_; }
  const StmtList& body() const { return body_; }
  StmtList& mutable_body() { return body_; }
  void set_step(std::int64_t step) { step_ = step; }
  void set_upper(ExprPtr upper) { upper_ = std::move(upper); }

  StmtPtr clone() const override;
  bool equals(const Stmt& other) const override;
  std::string to_string(int indent) const override;

 private:
  std::string var_;
  ExprPtr lower_;
  ExprPtr upper_;
  std::int64_t step_;
  StmtList body_;
};

/// `__builtin_prefetch(&base[index], 0, locality)` — inserted by the data
/// prefetching transform (paper §2.1, Fig. 13 lines 7-8, 12).
class Prefetch final : public Stmt {
 public:
  static constexpr StmtKind kKind = StmtKind::kPrefetch;
  Prefetch(std::string base, ExprPtr index, int locality = 3);
  const std::string& base() const { return base_; }
  const Expr& index() const { return *index_; }
  int locality() const { return locality_; }

  StmtPtr clone() const override;
  bool equals(const Stmt& other) const override;
  std::string to_string(int indent) const override;

 private:
  std::string base_;
  ExprPtr index_;
  int locality_;
};

// ---- convenience constructors -------------------------------------------

inline StmtPtr assign(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Assign>(std::move(lhs), std::move(rhs));
}
inline StmtPtr forloop(std::string v, ExprPtr lo, ExprPtr hi, std::int64_t step,
                       StmtList body) {
  return std::make_unique<ForStmt>(std::move(v), std::move(lo), std::move(hi),
                                   step, std::move(body));
}
inline StmtPtr prefetch(std::string base, ExprPtr index, int locality = 3) {
  return std::make_unique<Prefetch>(std::move(base), std::move(index), locality);
}

/// Downcast helper: returns nullptr if `s` is not a `T`. Dispatches on the
/// kind tag (no RTTI), LLVM isa/cast style.
template <typename T>
const T* as(const Stmt& s) {
  return s.kind() == T::kKind ? static_cast<const T*>(&s) : nullptr;
}
template <typename T>
T* as_mutable(Stmt& s) {
  return s.kind() == T::kKind ? static_cast<T*>(&s) : nullptr;
}

}  // namespace augem::ir
