#include "ir/visit.hpp"

#include "support/error.hpp"

namespace augem::ir {

void for_each_stmt(const StmtList& stmts,
                   const std::function<void(const Stmt&)>& fn) {
  for (const StmtPtr& s : stmts) {
    fn(*s);
    if (const auto* loop = as<ForStmt>(*s)) for_each_stmt(loop->body(), fn);
  }
}

void for_each_stmt_mutable(StmtList& stmts,
                           const std::function<void(Stmt&)>& fn) {
  for (StmtPtr& s : stmts) {
    fn(*s);
    if (auto* loop = as_mutable<ForStmt>(*s))
      for_each_stmt_mutable(loop->mutable_body(), fn);
  }
}

namespace {

void visit_expr_tree(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  switch (e.kind()) {
    case ExprKind::kArrayRef:
      visit_expr_tree(as<ArrayRef>(e)->index(), fn);
      break;
    case ExprKind::kBinary: {
      const auto* b = as<Binary>(e);
      visit_expr_tree(b->lhs(), fn);
      visit_expr_tree(b->rhs(), fn);
      break;
    }
    default:
      break;
  }
}

}  // namespace

void for_each_expr(const StmtList& stmts,
                   const std::function<void(const Expr&)>& fn) {
  for_each_stmt(stmts, [&](const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::kAssign: {
        const auto& a = *as<Assign>(s);
        visit_expr_tree(a.lhs(), fn);
        visit_expr_tree(a.rhs(), fn);
        break;
      }
      case StmtKind::kFor: {
        const auto& f = *as<ForStmt>(s);
        visit_expr_tree(f.lower(), fn);
        visit_expr_tree(f.upper(), fn);
        break;
      }
      case StmtKind::kPrefetch:
        visit_expr_tree(as<Prefetch>(s)->index(), fn);
        break;
    }
  });
}

ExprPtr rewrite_expr(const Expr& e,
                     const std::function<ExprPtr(const Expr&)>& fn) {
  ExprPtr rebuilt;
  switch (e.kind()) {
    case ExprKind::kIntConst:
    case ExprKind::kFloatConst:
    case ExprKind::kVarRef:
      rebuilt = e.clone();
      break;
    case ExprKind::kArrayRef: {
      const auto* a = as<ArrayRef>(e);
      rebuilt = arr(a->base(), rewrite_expr(a->index(), fn));
      break;
    }
    case ExprKind::kBinary: {
      const auto* b = as<Binary>(e);
      rebuilt = bin(b->op(), rewrite_expr(b->lhs(), fn),
                    rewrite_expr(b->rhs(), fn));
      break;
    }
  }
  ExprPtr replaced = fn(*rebuilt);
  return replaced ? std::move(replaced) : std::move(rebuilt);
}

StmtList rewrite_stmts(const StmtList& stmts,
                       const std::function<ExprPtr(const Expr&)>& fn) {
  StmtList out;
  out.reserve(stmts.size());
  for (const StmtPtr& s : stmts) {
    StmtPtr rebuilt;
    switch (s->kind()) {
      case StmtKind::kAssign: {
        const auto& a = *as<Assign>(*s);
        rebuilt = assign(rewrite_expr(a.lhs(), fn), rewrite_expr(a.rhs(), fn));
        break;
      }
      case StmtKind::kFor: {
        const auto& f = *as<ForStmt>(*s);
        rebuilt = forloop(f.var(), rewrite_expr(f.lower(), fn),
                          rewrite_expr(f.upper(), fn), f.step(),
                          rewrite_stmts(f.body(), fn));
        break;
      }
      case StmtKind::kPrefetch: {
        const auto& p = *as<Prefetch>(*s);
        rebuilt = prefetch(p.base(), rewrite_expr(p.index(), fn), p.locality());
        break;
      }
    }
    AUGEM_CHECK(rebuilt != nullptr, "unhandled statement kind");
    rebuilt->set_template_tag(s->template_tag(), s->region_id());
    out.push_back(std::move(rebuilt));
  }
  return out;
}

ExprPtr substitute_var(const Expr& e, const std::string& name,
                       const Expr& replacement) {
  return rewrite_expr(e, [&](const Expr& node) -> ExprPtr {
    if (const auto* v = as<VarRef>(node); v != nullptr && v->name() == name)
      return replacement.clone();
    return nullptr;
  });
}

StmtList substitute_var(const StmtList& stmts, const std::string& name,
                        const Expr& replacement) {
  return rewrite_stmts(stmts, [&](const Expr& node) -> ExprPtr {
    if (const auto* v = as<VarRef>(node); v != nullptr && v->name() == name)
      return replacement.clone();
    return nullptr;
  });
}

bool mentions_var(const StmtList& stmts, const std::string& name) {
  bool found = false;
  for_each_expr(stmts, [&](const Expr& e) {
    if (const auto* v = as<VarRef>(e); v != nullptr && v->name() == name)
      found = true;
    if (const auto* a = as<ArrayRef>(e); a != nullptr && a->base() == name)
      found = true;
  });
  return found;
}

}  // namespace augem::ir
