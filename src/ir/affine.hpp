#pragma once
// Multilinear ("affine with symbolic coefficients") normal form for integer
// index expressions.
//
// Subscripts in DLA kernels are sums of products of loop counters, extent
// parameters and constants, e.g. `(j + 1) * Kc + l` or `j * LDC + i`. The
// transforms need to answer questions like:
//   * what is the coefficient of loop variable `l` in this subscript?
//     (strength reduction: the cursor increment, possibly symbolic e.g. LDC)
//   * do two subscripts differ by a compile-time constant?
//     (cursor sharing, and the Unrolled-template contiguity checks)
//   * substitute `l := l + 4` and re-canonicalize (loop unrolling).
//
// `Poly` is a canonical sum of terms `coeff * v1 * v2 * …` with sorted
// variable lists and merged duplicates, so structural equality of
// normalized forms is semantic equality of the polynomials.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace augem::ir {

/// One monomial: `coeff * product(vars)`. `vars` is sorted and may contain
/// repeats (squares), though subscripts in practice are multilinear.
struct PolyTerm {
  std::int64_t coeff = 0;
  std::vector<std::string> vars;

  bool same_monomial(const PolyTerm& o) const { return vars == o.vars; }
};

/// Canonical polynomial over integer variables.
class Poly {
 public:
  Poly() = default;
  static Poly constant(std::int64_t c);
  static Poly variable(const std::string& name);

  const std::vector<PolyTerm>& terms() const { return terms_; }

  Poly operator+(const Poly& o) const;
  Poly operator-(const Poly& o) const;
  Poly operator*(const Poly& o) const;

  bool operator==(const Poly& o) const { return terms_ == o.terms_; }

  /// The pure-constant term (0 if absent).
  std::int64_t constant_part() const;

  /// This polynomial minus its pure-constant term.
  Poly without_constant() const;

  /// True if no term mentions `v`.
  bool independent_of(const std::string& v) const;

  /// Coefficient of `v` as a polynomial (nullopt if any term contains v
  /// more than once, i.e. the poly is not linear in v).
  std::optional<Poly> coefficient_of(const std::string& v) const;

  /// The polynomial with every term containing `v` removed.
  Poly drop_terms_with(const std::string& v) const;

  /// Substitute `v := replacement` and re-canonicalize.
  Poly substitute(const std::string& v, const Poly& replacement) const;

  /// Rebuilds a (reasonably small) Expr. Returns IntConst(0) for empty.
  ExprPtr to_expr() const;

  std::string to_string() const;

 private:
  void canonicalize();
  std::vector<PolyTerm> terms_;  // sorted by vars; no zero coeffs
};

inline bool operator==(const PolyTerm& a, const PolyTerm& b) {
  return a.coeff == b.coeff && a.vars == b.vars;
}

/// Converts an integer-typed Expr to polynomial normal form.
/// Returns nullopt for expressions outside +,-,*,constants,variables
/// (e.g. ArrayRef used as an index).
std::optional<Poly> to_poly(const Expr& e);

/// Convenience: normalize an index expression (simplify via the polynomial
/// round-trip). Returns a clone of `e` unchanged if it is not polynomial.
ExprPtr simplify_index(const Expr& e);

}  // namespace augem::ir
