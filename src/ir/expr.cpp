#include "ir/expr.hpp"

#include <cmath>
#include <sstream>

namespace augem::ir {

bool IntConst::equals(const Expr& other) const {
  const auto* o = as<IntConst>(other);
  return o != nullptr && o->value() == value_;
}

bool VarRef::equals(const Expr& other) const {
  const auto* o = as<VarRef>(other);
  return o != nullptr && o->name() == name_;
}

bool FloatConst::equals(const Expr& other) const {
  const auto* o = as<FloatConst>(other);
  return o != nullptr && o->value() == value_;
}

std::string FloatConst::to_string() const {
  if (value_ == std::floor(value_) && std::abs(value_) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value_) << ".0";
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << value_;
  return os.str();
}

ArrayRef::ArrayRef(std::string base, ExprPtr index)
    : Expr(ExprKind::kArrayRef), base_(std::move(base)), index_(std::move(index)) {}

ExprPtr ArrayRef::clone() const {
  return std::make_unique<ArrayRef>(base_, index_->clone());
}

bool ArrayRef::equals(const Expr& other) const {
  const auto* o = as<ArrayRef>(other);
  return o != nullptr && o->base() == base_ && o->index().equals(*index_);
}

std::string ArrayRef::to_string() const {
  return base_ + "[" + index_->to_string() + "]";
}

Binary::Binary(BinOp op, ExprPtr lhs, ExprPtr rhs)
    : Expr(ExprKind::kBinary), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

ExprPtr Binary::clone() const {
  return std::make_unique<Binary>(op_, lhs_->clone(), rhs_->clone());
}

bool Binary::equals(const Expr& other) const {
  const auto* o = as<Binary>(other);
  return o != nullptr && o->op() == op_ && o->lhs().equals(*lhs_) &&
         o->rhs().equals(*rhs_);
}

std::string Binary::to_string() const {
  // Fully parenthesized: the IR is read by tests and humans, never reparsed,
  // so unambiguous beats pretty.
  return "(" + lhs_->to_string() + " " + binop_token(op_) + " " +
         rhs_->to_string() + ")";
}

}  // namespace augem::ir
