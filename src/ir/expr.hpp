#pragma once
// Expression nodes of the low-level C IR.
//
// Expressions are intentionally side-effect free; all mutation happens in
// statements (ir/stmt.hpp). After scalar replacement the right-hand sides in
// innermost loops degenerate to at most one operator — the three-address
// form the paper's code templates (Fig. 3) are written against.

#include <cstdint>
#include <memory>
#include <string>

namespace augem::ir {

enum class ExprKind : std::uint8_t {
  kIntConst,
  kFloatConst,
  kVarRef,
  kArrayRef,
  kBinary,
};

enum class BinOp : std::uint8_t { kAdd, kSub, kMul, kMax };

inline const char* binop_token(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kMax: return "max";
  }
  return "?";
}

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class for all expression nodes. Nodes are immutable after
/// construction except through `clone`-and-rebuild, which keeps the
/// transformation passes simple and alias-free.
class Expr {
 public:
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  virtual ExprPtr clone() const = 0;
  virtual bool equals(const Expr& other) const = 0;
  virtual std::string to_string() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// 64-bit integer literal.
class IntConst final : public Expr {
 public:
  static constexpr ExprKind kKind = ExprKind::kIntConst;
  explicit IntConst(std::int64_t value) : Expr(ExprKind::kIntConst), value_(value) {}
  std::int64_t value() const { return value_; }

  ExprPtr clone() const override { return std::make_unique<IntConst>(value_); }
  bool equals(const Expr& other) const override;
  std::string to_string() const override { return std::to_string(value_); }

 private:
  std::int64_t value_;
};

/// Double literal.
class FloatConst final : public Expr {
 public:
  static constexpr ExprKind kKind = ExprKind::kFloatConst;
  explicit FloatConst(double value) : Expr(ExprKind::kFloatConst), value_(value) {}
  double value() const { return value_; }

  ExprPtr clone() const override { return std::make_unique<FloatConst>(value_); }
  bool equals(const Expr& other) const override;
  std::string to_string() const override;

 private:
  double value_;
};

/// Reference to a named scalar or pointer variable.
class VarRef final : public Expr {
 public:
  static constexpr ExprKind kKind = ExprKind::kVarRef;
  explicit VarRef(std::string name) : Expr(ExprKind::kVarRef), name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  ExprPtr clone() const override { return std::make_unique<VarRef>(name_); }
  bool equals(const Expr& other) const override;
  std::string to_string() const override { return name_; }

 private:
  std::string name_;
};

/// `base[index]` where `base` names an array/pointer variable. The paper's
/// templates always subscript a named pointer, never a computed base, so the
/// base is a name rather than a sub-expression.
class ArrayRef final : public Expr {
 public:
  static constexpr ExprKind kKind = ExprKind::kArrayRef;
  ArrayRef(std::string base, ExprPtr index);
  const std::string& base() const { return base_; }
  const Expr& index() const { return *index_; }

  ExprPtr clone() const override;
  bool equals(const Expr& other) const override;
  std::string to_string() const override;

 private:
  std::string base_;
  ExprPtr index_;
};

/// Binary arithmetic `lhs op rhs`.
class Binary final : public Expr {
 public:
  static constexpr ExprKind kKind = ExprKind::kBinary;
  Binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  BinOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  ExprPtr clone() const override;
  bool equals(const Expr& other) const override;
  std::string to_string() const override;

 private:
  BinOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// ---- convenience constructors -------------------------------------------

inline ExprPtr ival(std::int64_t v) { return std::make_unique<IntConst>(v); }
inline ExprPtr fval(double v) { return std::make_unique<FloatConst>(v); }
inline ExprPtr var(std::string name) { return std::make_unique<VarRef>(std::move(name)); }
inline ExprPtr arr(std::string base, ExprPtr index) {
  return std::make_unique<ArrayRef>(std::move(base), std::move(index));
}
inline ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<Binary>(op, std::move(l), std::move(r));
}
inline ExprPtr add(ExprPtr l, ExprPtr r) { return bin(BinOp::kAdd, std::move(l), std::move(r)); }
inline ExprPtr sub(ExprPtr l, ExprPtr r) { return bin(BinOp::kSub, std::move(l), std::move(r)); }
inline ExprPtr mul(ExprPtr l, ExprPtr r) { return bin(BinOp::kMul, std::move(l), std::move(r)); }
inline ExprPtr fmax2(ExprPtr l, ExprPtr r) { return bin(BinOp::kMax, std::move(l), std::move(r)); }

/// Downcast helper: returns nullptr if `e` is not a `T`. Dispatches on the
/// kind tag (no RTTI), LLVM isa/cast style.
template <typename T>
const T* as(const Expr& e) {
  return e.kind() == T::kKind ? static_cast<const T*>(&e) : nullptr;
}

}  // namespace augem::ir
