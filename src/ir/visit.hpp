#pragma once
// Traversal and rewriting utilities over the IR.
//
// Transforms are written as clone-and-rebuild passes; these helpers cover
// the shared plumbing: pre-order statement walks, bottom-up expression
// rewriting, and variable substitution.

#include <functional>

#include "ir/expr.hpp"
#include "ir/stmt.hpp"

namespace augem::ir {

/// Pre-order walk over every statement (including loop bodies).
void for_each_stmt(const StmtList& stmts,
                   const std::function<void(const Stmt&)>& fn);

/// Mutable pre-order walk.
void for_each_stmt_mutable(StmtList& stmts, const std::function<void(Stmt&)>& fn);

/// Walk over every expression appearing in a statement list (assignment
/// sides, loop bounds, prefetch indices), including sub-expressions.
void for_each_expr(const StmtList& stmts,
                   const std::function<void(const Expr&)>& fn);

/// Bottom-up expression rewrite: `fn` is offered each node after its
/// children were rebuilt; returning nullptr keeps the (rebuilt) node.
ExprPtr rewrite_expr(const Expr& e,
                     const std::function<ExprPtr(const Expr&)>& fn);

/// Rewrites every expression in a statement list (loop bounds, assignment
/// sides, prefetch indices) with `fn` as in `rewrite_expr`.
StmtList rewrite_stmts(const StmtList& stmts,
                       const std::function<ExprPtr(const Expr&)>& fn);

/// Substitutes every `VarRef(name)` with a clone of `replacement`.
ExprPtr substitute_var(const Expr& e, const std::string& name,
                       const Expr& replacement);

/// Substitutes a variable throughout a statement list.
StmtList substitute_var(const StmtList& stmts, const std::string& name,
                        const Expr& replacement);

/// True if any expression in `stmts` mentions variable `name` (as VarRef or
/// as an ArrayRef base).
bool mentions_var(const StmtList& stmts, const std::string& name);

}  // namespace augem::ir
