#include "ir/interp.hpp"

#include "support/error.hpp"

namespace augem::ir {

namespace {

class Interpreter {
 public:
  explicit Interpreter(Env env) : env_(std::move(env)) {}

  void run(const StmtList& stmts) {
    for (const StmtPtr& s : stmts) exec(*s);
  }

  double result_of(const std::string& name) {
    return std::get<double>(lookup(name));
  }

 private:
  Value& lookup(const std::string& name) {
    const auto it = env_.find(name);
    AUGEM_CHECK(it != env_.end(), "unbound variable '" << name << "'");
    return it->second;
  }

  Value eval(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kIntConst:
        return as<IntConst>(e)->value();
      case ExprKind::kFloatConst:
        return as<FloatConst>(e)->value();
      case ExprKind::kVarRef:
        return lookup(as<VarRef>(e)->name());
      case ExprKind::kArrayRef: {
        const auto* ref = as<ArrayRef>(e);
        double* base = std::get<double*>(lookup(ref->base()));
        const std::int64_t idx = std::get<std::int64_t>(eval(ref->index()));
        return base[idx];
      }
      case ExprKind::kBinary: {
        const auto* b = as<Binary>(e);
        const Value l = eval(b->lhs());
        const Value r = eval(b->rhs());
        return apply(b->op(), l, r, e);
      }
    }
    AUGEM_FAIL("unhandled expression kind");
  }

  static Value apply(BinOp op, const Value& l, const Value& r, const Expr& e) {
    // Integer arithmetic.
    if (std::holds_alternative<std::int64_t>(l) &&
        std::holds_alternative<std::int64_t>(r)) {
      const std::int64_t a = std::get<std::int64_t>(l);
      const std::int64_t b = std::get<std::int64_t>(r);
      switch (op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kMax: return a > b ? a : b;
      }
    }
    // Pointer arithmetic (element-granular, as in C pointer math).
    if (std::holds_alternative<double*>(l) &&
        std::holds_alternative<std::int64_t>(r)) {
      double* p = std::get<double*>(l);
      const std::int64_t b = std::get<std::int64_t>(r);
      switch (op) {
        case BinOp::kAdd: return p + b;
        case BinOp::kSub: return p - b;
        default: break;
      }
    }
    // Floating point.
    if (std::holds_alternative<double>(l) && std::holds_alternative<double>(r)) {
      const double a = std::get<double>(l);
      const double b = std::get<double>(r);
      switch (op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        // MAXPD semantics: src2 wins when src1 is NaN, so relu(NaN) == 0.
        case BinOp::kMax: return a > b ? a : b;
      }
    }
    AUGEM_FAIL("type error evaluating " << e.to_string());
  }

  void exec(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::kAssign: {
        const auto& a = *as<Assign>(s);
        const Value v = eval(a.rhs());
        if (const auto* dst = as<VarRef>(a.lhs())) {
          env_[dst->name()] = v;  // create-on-write for locals
          return;
        }
        const auto* ref = as<ArrayRef>(a.lhs());
        AUGEM_CHECK(ref != nullptr, "bad assignment target");
        double* base = std::get<double*>(lookup(ref->base()));
        const std::int64_t idx = std::get<std::int64_t>(eval(ref->index()));
        base[idx] = std::get<double>(v);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = *as<ForStmt>(s);
        // `for (v = v; …)` (remainder loops) keeps the current counter.
        const auto* self = as<VarRef>(f.lower());
        if (self == nullptr || self->name() != f.var())
          env_[f.var()] = eval(f.lower());
        for (;;) {
          const std::int64_t v = std::get<std::int64_t>(lookup(f.var()));
          const std::int64_t hi = std::get<std::int64_t>(eval(f.upper()));
          if (v >= hi) break;
          run(f.body());
          env_[f.var()] = v + f.step();
        }
        return;
      }
      case StmtKind::kPrefetch:
        return;  // a hint; no architectural effect
    }
    AUGEM_FAIL("unhandled statement kind");
  }

  Env env_;
};

}  // namespace

double interpret(const Kernel& kernel, Env args) {
  for (const Param& p : kernel.params())
    AUGEM_CHECK(args.count(p.name) == 1,
                "missing argument '" << p.name << "' for kernel " << kernel.name());
  Interpreter interp(std::move(args));
  interp.run(kernel.body());
  return kernel.return_var() ? interp.result_of(*kernel.return_var()) : 0.0;
}

}  // namespace augem::ir
