#include "ir/kernel.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace augem::ir {

void Kernel::declare_local(const std::string& name, ScalarType type) {
  AUGEM_CHECK(!is_declared(name), "duplicate variable '" << name << "' in kernel "
                                                         << name_);
  locals_.push_back({name, type});
}

void Kernel::ensure_local(const std::string& name, ScalarType type) {
  if (!is_declared(name)) {
    locals_.push_back({name, type});
    return;
  }
  AUGEM_CHECK(type_of(name) == type,
              "variable '" << name << "' re-declared with a different type");
}

void Kernel::remove_local(const std::string& name) {
  const auto it = std::find_if(locals_.begin(), locals_.end(),
                               [&](const Local& l) { return l.name == name; });
  AUGEM_CHECK(it != locals_.end(), "no local named '" << name << "'");
  locals_.erase(it);
}

ScalarType Kernel::type_of(const std::string& name) const {
  for (const Param& p : params_)
    if (p.name == name) return p.type;
  for (const Local& l : locals_)
    if (l.name == name) return l.type;
  AUGEM_FAIL("undeclared variable '" << name << "' in kernel " << name_);
}

bool Kernel::is_declared(const std::string& name) const {
  for (const Param& p : params_)
    if (p.name == name) return true;
  for (const Local& l : locals_)
    if (l.name == name) return true;
  return false;
}

bool Kernel::is_param(const std::string& name) const {
  for (const Param& p : params_)
    if (p.name == name) return true;
  return false;
}

std::string Kernel::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = prefix + std::to_string(fresh_counter_++);
    if (!is_declared(candidate)) return candidate;
  }
}

Kernel Kernel::clone() const {
  Kernel k(name_, params_);
  k.locals_ = locals_;
  k.body_ = clone_stmts(body_);
  k.return_var_ = return_var_;
  k.fresh_counter_ = fresh_counter_;
  return k;
}

std::string Kernel::to_string() const {
  std::ostringstream os;
  os << (return_var_ ? "double" : "void") << " " << name_ << "(";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) os << ", ";
    const Param& p = params_[i];
    if (p.type == ScalarType::kPtrF64 && p.is_const) os << "const ";
    os << type_name(p.type) << " " << p.name;
  }
  os << ") {\n";
  for (const Local& l : locals_)
    os << "  " << type_name(l.type) << " " << l.name << ";\n";
  for (const StmtPtr& s : body_) os << s->to_string(1) << "\n";
  if (return_var_) os << "  return " << *return_var_ << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace augem::ir
