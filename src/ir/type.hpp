#pragma once
// Scalar types of the "low-level C" IR.
//
// The language the paper's templates are defined over is deliberately tiny:
// 64-bit integers for loop counters and subscripts, doubles for data, and
// pointers-to-double introduced by strength reduction. Keeping the type
// lattice this small is what makes exhaustive template matching tractable.

#include <cstdint>

namespace augem::ir {

enum class ScalarType : std::uint8_t {
  kI64,     ///< loop counters, subscripts, extents
  kF64,     ///< floating-point data values
  kPtrF64,  ///< pointer to double (array base or strength-reduced cursor)
};

inline const char* type_name(ScalarType t) {
  switch (t) {
    case ScalarType::kI64: return "long";
    case ScalarType::kF64: return "double";
    case ScalarType::kPtrF64: return "double*";
  }
  return "?";
}

}  // namespace augem::ir
