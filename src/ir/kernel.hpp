#pragma once
// A Kernel is one complete DLA routine in the low-level C IR: a name, a
// typed parameter list (which fixes the generated function's ABI), locals,
// and a statement body. This is the unit that flows through the whole
// AUGEM pipeline: frontend → transforms → template identification →
// template optimization → assembly generation.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "ir/type.hpp"

namespace augem::ir {

/// One function parameter. Parameter order defines the SysV argument order
/// of the generated assembly function.
struct Param {
  std::string name;
  ScalarType type;
  /// For pointer params: true if the kernel never stores through it.
  bool is_const = true;
};

/// One local variable (loop counters, scalar-replacement temps,
/// strength-reduced pointers).
struct Local {
  std::string name;
  ScalarType type;
};

class Kernel {
 public:
  Kernel(std::string name, std::vector<Param> params)
      : name_(std::move(name)), params_(std::move(params)) {}

  const std::string& name() const { return name_; }
  const std::vector<Param>& params() const { return params_; }
  const std::vector<Local>& locals() const { return locals_; }
  const StmtList& body() const { return body_; }
  StmtList& mutable_body() { return body_; }
  void set_body(StmtList body) { body_ = std::move(body); }

  /// Scalar F64 variable whose final value is the function's return value
  /// (used by DOT); nullopt for void kernels.
  const std::optional<std::string>& return_var() const { return return_var_; }
  void set_return_var(std::string v) { return_var_ = std::move(v); }

  /// Declares a local, failing on duplicate names (including vs params).
  void declare_local(const std::string& name, ScalarType type);

  /// Declares a local only if not yet present (checks type agreement).
  void ensure_local(const std::string& name, ScalarType type);

  /// Removes a local (used when transforms replace variables).
  void remove_local(const std::string& name);

  /// Type lookup across params and locals; throws if unknown.
  ScalarType type_of(const std::string& name) const;

  /// True if `name` is a param or local.
  bool is_declared(const std::string& name) const;

  /// True if `name` is a parameter (as opposed to a local).
  bool is_param(const std::string& name) const;

  /// Fresh variable name with the given prefix ("tmp" → "tmp0", "tmp1", …),
  /// guaranteed not to collide with any declared name.
  std::string fresh_name(const std::string& prefix);

  /// Deep copy.
  Kernel clone() const;

  /// Renders the kernel as compilable-looking C (the artifact shown in the
  /// paper's Figs. 12/13/14).
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<Param> params_;
  std::vector<Local> locals_;
  StmtList body_;
  std::optional<std::string> return_var_;
  int fresh_counter_ = 0;
};

}  // namespace augem::ir
