#include "match/identifier.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>

#include "ir/visit.hpp"
#include "support/error.hpp"

namespace augem::match {

using namespace augem::ir;

const char* template_kind_name(TemplateKind k) {
  switch (k) {
    case TemplateKind::kMmComp: return "mmCOMP";
    case TemplateKind::kMmStore: return "mmSTORE";
    case TemplateKind::kMvComp: return "mvCOMP";
    case TemplateKind::kAccInit: return "accINIT";
    case TemplateKind::kSvScal: return "svSCAL";
    case TemplateKind::kMmEpiStore: return "mmEpiSTORE";
  }
  return "?";
}

std::size_t Region::size() const {
  switch (kind) {
    case TemplateKind::kMmComp: return mm.size();
    case TemplateKind::kMmStore: return stores.size();
    case TemplateKind::kMvComp: return mv.size();
    case TemplateKind::kAccInit: return acc_inits.size();
    case TemplateKind::kSvScal: return sv.size();
    case TemplateKind::kMmEpiStore: return epis.size();
  }
  return 0;
}

std::string Region::name() const {
  if (!unrolled()) return template_kind_name(kind);
  switch (kind) {
    case TemplateKind::kMmComp: return "mmUnrolledCOMP";
    case TemplateKind::kMmStore: return "mmUnrolledSTORE";
    case TemplateKind::kMvComp: return "mvUnrolledCOMP";
    case TemplateKind::kAccInit: return "accINIT";
    case TemplateKind::kSvScal: return "svUnrolledSCAL";
    case TemplateKind::kMmEpiStore: return "mmUnrolledEpiSTORE";
  }
  return "?";
}

namespace {

// ---- single-statement views ----------------------------------------------

struct LoadView {
  std::string dst;
  std::string base;
  std::int64_t off;
};

/// `dst = base[const]` with a scalar destination.
std::optional<LoadView> view_load(const Stmt& s) {
  const auto* a = as<Assign>(s);
  if (a == nullptr) return std::nullopt;
  const auto* dst = as<VarRef>(a->lhs());
  const auto* ref = as<ArrayRef>(a->rhs());
  if (dst == nullptr || ref == nullptr) return std::nullopt;
  const auto* off = as<IntConst>(ref->index());
  if (off == nullptr) return std::nullopt;
  return LoadView{dst->name(), ref->base(), off->value()};
}

struct BinView {
  std::string dst;
  BinOp op;
  // Operand names; empty when the operand is a literal.
  std::string lhs;
  std::string rhs;
};

/// `dst = a OP b` with variable operands.
std::optional<BinView> view_binop(const Stmt& s) {
  const auto* a = as<Assign>(s);
  if (a == nullptr) return std::nullopt;
  const auto* dst = as<VarRef>(a->lhs());
  const auto* b = as<Binary>(a->rhs());
  if (dst == nullptr || b == nullptr) return std::nullopt;
  const auto* l = as<VarRef>(b->lhs());
  const auto* r = as<VarRef>(b->rhs());
  if (l == nullptr || r == nullptr) return std::nullopt;
  return BinView{dst->name(), b->op(), l->name(), r->name()};
}

struct StoreView {
  std::string base;
  std::int64_t off;
  std::string src;
};

/// `base[const] = src` with a scalar source.
std::optional<StoreView> view_store(const Stmt& s) {
  const auto* a = as<Assign>(s);
  if (a == nullptr) return std::nullopt;
  const auto* ref = as<ArrayRef>(a->lhs());
  const auto* src = as<VarRef>(a->rhs());
  if (ref == nullptr || src == nullptr) return std::nullopt;
  const auto* off = as<IntConst>(ref->index());
  if (off == nullptr) return std::nullopt;
  return StoreView{ref->base(), off->value(), src->name()};
}

struct MaxZeroView {
  std::string dst;
  std::string src;
};

/// `dst = src max 0.0` — the lowered ReLU clamp (scalar_replace keeps the
/// literal in place, so the rhs of the Binary is a FloatConst, which the
/// generic view_binop rejects).
std::optional<MaxZeroView> view_max_zero(const Stmt& s) {
  const auto* a = as<Assign>(s);
  if (a == nullptr) return std::nullopt;
  const auto* dst = as<VarRef>(a->lhs());
  const auto* b = as<Binary>(a->rhs());
  if (dst == nullptr || b == nullptr || b->op() != BinOp::kMax)
    return std::nullopt;
  const auto* l = as<VarRef>(b->lhs());
  const auto* r = as<FloatConst>(b->rhs());
  if (l == nullptr || r == nullptr || r->value() != 0.0) return std::nullopt;
  return MaxZeroView{dst->name(), l->name()};
}

/// `dst = 0.0` accumulator zeroing.
std::optional<std::string> view_zero_init(const Stmt& s) {
  const auto* a = as<Assign>(s);
  if (a == nullptr) return std::nullopt;
  const auto* dst = as<VarRef>(a->lhs());
  const auto* c = as<FloatConst>(a->rhs());
  if (dst == nullptr || c == nullptr || c->value() != 0.0) return std::nullopt;
  return dst->name();
}

// ---- window matchers ------------------------------------------------------

/// mmCOMP: Load tA; Load tB; tM = tA*tB; res = res + tM. (4 statements)
std::optional<MmComp> match_mm_comp(const StmtList& body, std::size_t p) {
  if (p + 4 > body.size()) return std::nullopt;
  const auto l0 = view_load(*body[p]);
  const auto l1 = view_load(*body[p + 1]);
  const auto m = view_binop(*body[p + 2]);
  const auto acc = view_binop(*body[p + 3]);
  if (!l0 || !l1 || !m || !acc) return std::nullopt;
  if (m->op != BinOp::kMul) return std::nullopt;
  const bool mul_consumes_loads =
      (m->lhs == l0->dst && m->rhs == l1->dst) ||
      (m->lhs == l1->dst && m->rhs == l0->dst);
  if (!mul_consumes_loads) return std::nullopt;
  if (acc->op != BinOp::kAdd) return std::nullopt;
  const std::string& r = acc->dst;
  const bool accumulates = (acc->lhs == r && acc->rhs == m->dst) ||
                           (acc->lhs == m->dst && acc->rhs == r);
  if (!accumulates) return std::nullopt;
  if (r == l0->dst || r == l1->dst || r == m->dst) return std::nullopt;
  return MmComp{l0->base, l0->off, l1->base, l1->off, r};
}

/// mmSTORE: Load t0 = C[c]; t1 = t0 + res; C[c] = t1. (3 statements)
std::optional<MmStore> match_mm_store(const StmtList& body, std::size_t p) {
  if (p + 3 > body.size()) return std::nullopt;
  const auto l0 = view_load(*body[p]);
  const auto addv = view_binop(*body[p + 1]);
  const auto st = view_store(*body[p + 2]);
  if (!l0 || !addv || !st) return std::nullopt;
  if (addv->op != BinOp::kAdd) return std::nullopt;
  std::string res;
  if (addv->lhs == l0->dst) {
    res = addv->rhs;
  } else if (addv->rhs == l0->dst) {
    res = addv->lhs;
  } else {
    return std::nullopt;
  }
  if (res == l0->dst) return std::nullopt;
  if (st->base != l0->base || st->off != l0->off) return std::nullopt;
  if (st->src != addv->dst) return std::nullopt;
  return MmStore{st->base, st->off, res};
}

/// mmEpiSTORE: Load t0 = C[c]; [scale or plain accumulate]; [bias add];
/// [relu]; C[c] = t. Returns nullopt for the plain accumulate-only form —
/// that is the classic mmSTORE and must keep matching it.
std::optional<EpiStore> match_epi_store(const StmtList& body, std::size_t p) {
  if (p >= body.size()) return std::nullopt;
  const auto l0 = view_load(*body[p]);
  if (!l0) return std::nullopt;
  EpiStore e;
  e.arr = l0->base;
  e.off = l0->off;
  std::size_t q = p + 1;
  std::string cur;  // name carrying the value-so-far

  if (q >= body.size()) return std::nullopt;
  const auto b1 = view_binop(*body[q]);
  if (!b1) return std::nullopt;
  if (b1->op == BinOp::kMul) {
    // Scale form: t1 = t0*beta; t2 = res*alpha; t3 = t1 + t2.
    if (b1->lhs == l0->dst) {
      e.beta = b1->rhs;
    } else if (b1->rhs == l0->dst) {
      e.beta = b1->lhs;
    } else {
      return std::nullopt;
    }
    if (e.beta == l0->dst) return std::nullopt;
    if (q + 2 >= body.size()) return std::nullopt;
    const auto b2 = view_binop(*body[q + 1]);
    const auto b3 = view_binop(*body[q + 2]);
    if (!b2 || b2->op != BinOp::kMul) return std::nullopt;
    // Source-order convention (make_small_gemm_kernel emits res*alpha and
    // scalar replacement preserves operand order): lhs is the accumulator.
    e.res = b2->lhs;
    e.alpha = b2->rhs;
    if (e.res == e.alpha) return std::nullopt;
    if (!b3 || b3->op != BinOp::kAdd) return std::nullopt;
    const bool adds = (b3->lhs == b1->dst && b3->rhs == b2->dst) ||
                      (b3->lhs == b2->dst && b3->rhs == b1->dst);
    if (!adds) return std::nullopt;
    cur = b3->dst;
    e.scale = true;
    q += 3;
  } else if (b1->op == BinOp::kAdd) {
    // Plain accumulate: t1 = t0 + res.
    if (b1->lhs == l0->dst) {
      e.res = b1->rhs;
    } else if (b1->rhs == l0->dst) {
      e.res = b1->lhs;
    } else {
      return std::nullopt;
    }
    if (e.res == l0->dst) return std::nullopt;
    cur = b1->dst;
    q += 1;
  } else {
    return std::nullopt;
  }

  // Optional bias add: tb = bias[boff]; t = cur + tb.
  if (q + 2 <= body.size()) {
    const auto lb = view_load(*body[q]);
    const auto ba = view_binop(*body[q + 1]);
    if (lb && ba && ba->op == BinOp::kAdd &&
        ((ba->lhs == cur && ba->rhs == lb->dst) ||
         (ba->lhs == lb->dst && ba->rhs == cur))) {
      e.bias = true;
      e.bias_arr = lb->base;
      e.bias_off = lb->off;
      cur = ba->dst;
      q += 2;
    }
  }

  // Optional relu clamp: t = cur max 0.0.
  if (q < body.size()) {
    if (const auto mz = view_max_zero(*body[q]); mz && mz->src == cur) {
      e.relu = true;
      cur = mz->dst;
      q += 1;
    }
  }

  if (q >= body.size()) return std::nullopt;
  const auto st = view_store(*body[q]);
  if (!st || st->base != e.arr || st->off != e.off || st->src != cur)
    return std::nullopt;
  q += 1;

  if (!e.scale && !e.bias && !e.relu) return std::nullopt;  // plain mmSTORE
  e.len = q - p;
  return e;
}

/// svSCAL: Load; Mul-by-scal; Store-back to the same slot. (3 statements)
std::optional<SvScal> match_sv_scal(const StmtList& body, std::size_t p) {
  if (p + 3 > body.size()) return std::nullopt;
  const auto l0 = view_load(*body[p]);
  const auto m = view_binop(*body[p + 1]);
  const auto st = view_store(*body[p + 2]);
  if (!l0 || !m || !st) return std::nullopt;
  if (m->op != BinOp::kMul) return std::nullopt;
  std::string scal;
  if (m->lhs == l0->dst) {
    scal = m->rhs;
  } else if (m->rhs == l0->dst) {
    scal = m->lhs;
  } else {
    return std::nullopt;
  }
  if (scal == l0->dst) return std::nullopt;
  if (st->base != l0->base || st->off != l0->off) return std::nullopt;
  if (st->src != m->dst) return std::nullopt;
  return SvScal{st->base, st->off, scal};
}

/// mvCOMP: Load, Load, Mul-by-scal, Add, Store-back. (5 statements)
/// One load streams `arr_a`; the other reads the updated array `arr_b`,
/// which is stored back at the same subscript. Load order is free.
std::optional<MvComp> match_mv_comp(const StmtList& body, std::size_t p) {
  if (p + 5 > body.size()) return std::nullopt;
  const auto l0 = view_load(*body[p]);
  const auto l1 = view_load(*body[p + 1]);
  const auto m = view_binop(*body[p + 2]);
  const auto addv = view_binop(*body[p + 3]);
  const auto st = view_store(*body[p + 4]);
  if (!l0 || !l1 || !m || !addv || !st) return std::nullopt;
  if (m->op != BinOp::kMul || addv->op != BinOp::kAdd) return std::nullopt;

  // Which load feeds the multiply? The other one is the updated array.
  const LoadView* streamed = nullptr;
  const LoadView* updated = nullptr;
  std::string scal;
  auto classify = [&](const LoadView& a, const LoadView& b) -> bool {
    if (m->lhs == a.dst && m->rhs != b.dst) {
      streamed = &a;
      updated = &b;
      scal = m->rhs;
      return true;
    }
    if (m->rhs == a.dst && m->lhs != b.dst) {
      streamed = &a;
      updated = &b;
      scal = m->lhs;
      return true;
    }
    return false;
  };
  if (!classify(*l0, *l1) && !classify(*l1, *l0)) return std::nullopt;
  if (scal == streamed->dst || scal == updated->dst) return std::nullopt;

  // t3 = updated + product (either order), stored back to the same slot.
  const bool adds = (addv->lhs == updated->dst && addv->rhs == m->dst) ||
                    (addv->lhs == m->dst && addv->rhs == updated->dst);
  if (!adds) return std::nullopt;
  if (st->base != updated->base || st->off != updated->off) return std::nullopt;
  if (st->src != addv->dst) return std::nullopt;
  return MvComp{streamed->base, streamed->off, updated->base, updated->off,
                scal};
}

// ---- run classification ----------------------------------------------------

void classify_mm_region(Region& region) {
  const auto& mm = region.mm;
  if (mm.size() < 2) {
    region.shape = UnrolledShape::kIrregular;
    return;
  }
  // All instances must stream the same A cursor (the Vld side).
  for (const MmComp& inst : mm)
    if (inst.arr_a != mm[0].arr_a) {
      region.shape = UnrolledShape::kIrregular;
      return;
    }

  // Paired shape: both offsets advance by one on fixed arrays, one shared
  // accumulator (DOT after unrolling, §4.4).
  bool paired = true;
  for (std::size_t k = 0; k < mm.size(); ++k) {
    paired &= mm[k].arr_b == mm[0].arr_b;
    paired &= mm[k].off_a == mm[0].off_a + static_cast<std::int64_t>(k);
    paired &= mm[k].off_b == mm[0].off_b + static_cast<std::int64_t>(k);
    paired &= mm[k].res == mm[0].res;
  }
  if (paired) {
    region.shape = UnrolledShape::kPaired;
    region.n1 = static_cast<int>(mm.size());
    region.n2 = 1;
    return;
  }

  // Outer shape: contiguous A offsets × n2 distinct B elements, every
  // combination exactly once, distinct accumulators. B elements may live on
  // different cursors (paper Fig. 12's B[j*kc+l] layout): Vdup still
  // applies; the Shuf strategy additionally requires `b_contiguous`.
  std::set<std::int64_t> a_offs;
  std::set<std::pair<std::string, std::int64_t>> b_elems;
  for (const MmComp& inst : mm) {
    a_offs.insert(inst.off_a);
    b_elems.insert({inst.arr_b, inst.off_b});
  }
  const std::int64_t a0 = *a_offs.begin();
  const auto n1 = static_cast<std::int64_t>(a_offs.size());
  const auto n2 = static_cast<std::int64_t>(b_elems.size());
  const bool a_contig = *a_offs.rbegin() == a0 + n1 - 1;
  std::set<std::pair<std::int64_t, std::string>> combos;
  std::set<std::string> accs;
  for (const MmComp& inst : mm) {
    combos.insert({inst.off_a, inst.arr_b + "#" + std::to_string(inst.off_b)});
    accs.insert(inst.res);
  }
  if (a_contig && static_cast<std::int64_t>(mm.size()) == n1 * n2 &&
      combos.size() == mm.size() && accs.size() == mm.size()) {
    region.shape = UnrolledShape::kOuter;
    region.n1 = static_cast<int>(n1);
    region.n2 = static_cast<int>(n2);
    bool same_b_arr = true;
    std::set<std::int64_t> b_offs;
    for (const MmComp& inst : mm) {
      same_b_arr &= inst.arr_b == mm[0].arr_b;
      b_offs.insert(inst.off_b);
    }
    region.b_contiguous =
        same_b_arr && static_cast<std::int64_t>(b_offs.size()) == n2 &&
        *b_offs.rbegin() == *b_offs.begin() + n2 - 1;
    return;
  }
  region.shape = UnrolledShape::kIrregular;
}

void classify_mv_region(Region& region) {
  const auto& mv = region.mv;
  if (mv.size() < 2) {
    region.shape = UnrolledShape::kIrregular;
    return;
  }
  bool paired = true;
  for (std::size_t k = 0; k < mv.size(); ++k) {
    paired &= mv[k].arr_a == mv[0].arr_a && mv[k].arr_b == mv[0].arr_b;
    paired &= mv[k].scal == mv[0].scal;
    paired &= mv[k].off_a == mv[0].off_a + static_cast<std::int64_t>(k);
    paired &= mv[k].off_b == mv[0].off_b + static_cast<std::int64_t>(k);
  }
  region.shape = paired ? UnrolledShape::kPaired : UnrolledShape::kIrregular;
  region.n1 = static_cast<int>(mv.size());
}

// ---- the identifier --------------------------------------------------------

class Identifier {
 public:
  explicit Identifier(Kernel& kernel) : kernel_(kernel) {}

  MatchResult run() {
    scan(kernel_.mutable_body());
    compute_liveness();
    return std::move(result_);
  }

 private:
  /// Scans one statement list, recursing into loops, matching template
  /// windows and merging consecutive same-kind instances into regions.
  void scan(StmtList& body) {
    std::size_t p = 0;
    while (p < body.size()) {
      if (auto* loop = as_mutable<ForStmt>(*body[p])) {
        scan(loop->mutable_body());
        ++p;
        continue;
      }
      if (auto mv = match_mv_comp(body, p)) {
        p = grow_mv_region(body, p, std::move(*mv));
        continue;
      }
      if (auto mm = match_mm_comp(body, p)) {
        p = grow_mm_region(body, p, std::move(*mm));
        continue;
      }
      if (auto epi = match_epi_store(body, p)) {
        p = grow_epi_region(body, p, std::move(*epi));
        continue;
      }
      if (auto st = match_mm_store(body, p)) {
        p = grow_store_region(body, p, std::move(*st));
        continue;
      }
      if (auto sv = match_sv_scal(body, p)) {
        p = grow_sv_region(body, p, std::move(*sv));
        continue;
      }
      if (auto init = view_zero_init(*body[p])) {
        p = grow_init_region(body, p, std::move(*init));
        continue;
      }
      ++p;  // untagged statement (loop control, cursor updates, prefetch)
    }
  }

  Region& new_region(TemplateKind kind) {
    Region r;
    r.id = static_cast<int>(result_.regions.size());
    r.kind = kind;
    result_.regions.push_back(std::move(r));
    return result_.regions.back();
  }

  void tag(StmtList& body, std::size_t first, std::size_t last,
           const Region& region) {
    for (std::size_t i = first; i < last; ++i)
      body[i]->set_template_tag(region.name(), region.id);
  }

  std::size_t grow_mv_region(StmtList& body, std::size_t p, MvComp first) {
    Region& region = new_region(TemplateKind::kMvComp);
    region.mv.push_back(std::move(first));
    std::size_t q = p + 5;
    while (true) {
      auto next = match_mv_comp(body, q);
      if (!next) break;
      region.mv.push_back(std::move(*next));
      q += 5;
    }
    classify_mv_region(region);
    tag(body, p, q, region);
    return q;
  }

  std::size_t grow_mm_region(StmtList& body, std::size_t p, MmComp first) {
    Region& region = new_region(TemplateKind::kMmComp);
    region.mm.push_back(std::move(first));
    std::size_t q = p + 4;
    while (true) {
      auto next = match_mm_comp(body, q);
      if (!next) break;
      region.mm.push_back(std::move(*next));
      q += 4;
    }
    classify_mm_region(region);
    tag(body, p, q, region);
    return q;
  }

  std::size_t grow_store_region(StmtList& body, std::size_t p, MmStore first) {
    Region& region = new_region(TemplateKind::kMmStore);
    region.stores.push_back(std::move(first));
    std::size_t q = p + 3;
    while (true) {
      auto next = match_mm_store(body, q);
      if (!next) break;
      // The paper splits store runs per array: contiguous offsets of one
      // array form one mmUnrolledSTORE (its Fig. 14 yields two regions for
      // ptr_C0 / ptr_C1).
      const MmStore& prev = region.stores.back();
      if (next->arr != prev.arr || next->off != prev.off + 1) break;
      region.stores.push_back(std::move(*next));
      q += 3;
    }
    region.shape = UnrolledShape::kPaired;
    tag(body, p, q, region);
    return q;
  }

  std::size_t grow_epi_region(StmtList& body, std::size_t p, EpiStore first) {
    Region& region = new_region(TemplateKind::kMmEpiStore);
    std::size_t q = p + first.len;
    region.epis.push_back(std::move(first));
    while (true) {
      auto next = match_epi_store(body, q);
      if (!next) break;
      // Merge rule mirrors mmUnrolledSTORE — contiguous offsets on one C
      // cursor — plus: identical epilogue and a contiguous bias slice.
      const EpiStore& prev = region.epis.back();
      if (next->arr != prev.arr || next->off != prev.off + 1) break;
      if (!next->same_epilogue(prev)) break;
      if (next->bias && next->bias_off != prev.bias_off + 1) break;
      q += next->len;
      region.epis.push_back(std::move(*next));
    }
    region.shape = UnrolledShape::kPaired;
    tag(body, p, q, region);
    return q;
  }

  std::size_t grow_sv_region(StmtList& body, std::size_t p, SvScal first) {
    Region& region = new_region(TemplateKind::kSvScal);
    region.sv.push_back(std::move(first));
    std::size_t q = p + 3;
    while (true) {
      auto next = match_sv_scal(body, q);
      if (!next) break;
      const SvScal& prev = region.sv.back();
      // Paired merge: contiguous offsets on one array with one scal.
      if (next->arr != prev.arr || next->off != prev.off + 1 ||
          next->scal != prev.scal)
        break;
      region.sv.push_back(std::move(*next));
      q += 3;
    }
    region.shape = region.sv.size() > 1 ? UnrolledShape::kPaired
                                        : UnrolledShape::kIrregular;
    tag(body, p, q, region);
    return q;
  }

  std::size_t grow_init_region(StmtList& body, std::size_t p,
                               std::string first) {
    Region& region = new_region(TemplateKind::kAccInit);
    region.acc_inits.push_back(std::move(first));
    std::size_t q = p + 1;
    while (q < body.size()) {
      auto next = view_zero_init(*body[q]);
      if (!next) break;
      region.acc_inits.push_back(std::move(*next));
      ++q;
    }
    region.shape = UnrolledShape::kPaired;
    tag(body, p, q, region);
    return q;
  }

  /// Records, for every F64 scalar, the last region that reads it
  /// (program pre-order; reads outside regions pin the variable).
  void compute_liveness() {
    auto note_read = [&](const std::string& name, int region_id) {
      if (!kernel_.is_declared(name)) return;
      if (kernel_.type_of(name) != ScalarType::kF64) return;
      result_.last_read_region[name] = region_id;
    };
    std::function<void(const StmtList&)> walk = [&](const StmtList& body) {
      for (const StmtPtr& s : body) {
        if (const auto* loop = as<ForStmt>(*s)) {
          walk(loop->body());
          continue;
        }
        const int rid = s->template_tag().empty()
                            ? MatchResult::kReadBeyondRegions
                            : s->region_id();
        if (const auto* a = as<Assign>(*s)) {
          std::function<void(const Expr&)> reads = [&](const Expr& e) {
            if (const auto* v = as<VarRef>(e)) {
              note_read(v->name(), rid);
            } else if (const auto* b = as<Binary>(e)) {
              reads(b->lhs());
              reads(b->rhs());
            } else if (const auto* r = as<ArrayRef>(e)) {
              reads(r->index());
            }
          };
          reads(a->rhs());
          if (const auto* ref = as<ArrayRef>(a->lhs())) reads(ref->index());
        }
      }
    };
    walk(kernel_.body());
    if (kernel_.return_var())
      result_.last_read_region[*kernel_.return_var()] =
          MatchResult::kReadBeyondRegions;
  }

  Kernel& kernel_;
  MatchResult result_;
};

}  // namespace

MatchResult identify_templates(ir::Kernel& kernel) {
  return Identifier(kernel).run();
}

}  // namespace augem::match
