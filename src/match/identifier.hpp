#pragma once
// The Template Identifier (paper §2.2).
//
// Walks the optimized low-level C kernel with a recursive-descent traversal
// and tags every run of statements that matches one of the paper's code
// templates (Fig. 3):
//
//   mmCOMP  (A,idx1,B,idx2,res)  : Load, Load, Mul, accumulate-Add
//   mmSTORE (C,idx,res)          : Load, Add, Store
//   mvCOMP  (A,idx1,B,idx2,scal) : Load, Load, Mul-by-scal, Add, Store
//
// Consecutive instances are merged into the Unrolled variants:
//
//   mmUnrolledCOMP : n1×n2 mmCOMPs covering all combinations of contiguous
//                    A and B elements ("outer" shape, GEMM), or n matched
//                    pairs advancing both subscripts together ("paired"
//                    shape, DOT — §4.4 notes DOT reuses the GEMM templates)
//   mmUnrolledSTORE: n mmSTOREs over contiguous elements of one array
//   mvUnrolledCOMP : n mvCOMPs advancing both subscripts together
//
// Beyond the paper's six templates we also tag accINIT — runs of
// `res = 0.0` accumulator zeroing — because the Template Optimizer must
// rewrite those sites when it assigns the accumulators to SIMD registers.
//
// Matching is *dataflow-based*: the temps introduced by scalar replacement
// are verified to be written once and consumed once inside the candidate
// window, so any statement interleaving with the same dataflow matches the
// same template (the paper's register-reusing form included).
//
// Precondition: the kernel is in three-address form with all in-loop array
// subscripts reduced to `cursor[integer-constant]`
// (transform::check_three_address_form + strength reduction).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace augem::match {

enum class TemplateKind : std::uint8_t {
  kMmComp,
  kMmStore,
  kMvComp,
  kAccInit,
  kSvScal,  ///< extension template (svSCAL): arr[off] *= scal
  /// Epilogue store (small-GEMM fused epilogues):
  ///   arr[off] = relu(scale(arr[off], res) + bias[boff])
  /// with each of scale / bias / relu optional (but at least one present;
  /// the plain form is the classic mmSTORE).
  kMmEpiStore,
};

const char* template_kind_name(TemplateKind k);

/// Subscript-progression shape of a merged (unrolled) COMP region.
enum class UnrolledShape : std::uint8_t {
  kOuter,      ///< n1×n2 combinations (GEMM register tile)
  kPaired,     ///< both subscripts advance together (DOT, AXPY, GEMV)
  kIrregular,  ///< instances match individually but do not merge
};

/// One matched mmCOMP: res += arr_a[off_a] * arr_b[off_b].
struct MmComp {
  std::string arr_a;
  std::int64_t off_a = 0;
  std::string arr_b;
  std::int64_t off_b = 0;
  std::string res;
};

/// One matched mmSTORE: arr[off] += res.
struct MmStore {
  std::string arr;
  std::int64_t off = 0;
  std::string res;
};

/// One matched mmEpiSTORE:
///   arr[off] = relu( scale(arr[off], res) + bias_arr[bias_off] ).
/// `scale(c, r)` is `c*beta + r*alpha` when `scale` is set, else `c + r`.
struct EpiStore {
  std::string arr;
  std::int64_t off = 0;
  std::string res;

  bool scale = false;
  std::string alpha;  ///< scalar multiplying res (when scale)
  std::string beta;   ///< scalar multiplying the loaded C value (when scale)

  bool bias = false;
  std::string bias_arr;
  std::int64_t bias_off = 0;

  bool relu = false;

  /// Statements consumed by this instance (the window length varies with
  /// the feature set: 4 to 8 statements).
  std::size_t len = 0;

  /// True when both instances apply the identical epilogue (same features
  /// and the same scalar operands).
  bool same_epilogue(const EpiStore& o) const {
    return scale == o.scale && bias == o.bias && relu == o.relu &&
           alpha == o.alpha && beta == o.beta && bias_arr == o.bias_arr;
  }
};

/// One matched mvCOMP: arr_b[off_b] += arr_a[off_a] * scal.
struct MvComp {
  std::string arr_a;
  std::int64_t off_a = 0;
  std::string arr_b;
  std::int64_t off_b = 0;
  std::string scal;
};

/// One matched svSCAL (extension template): arr[off] *= scal.
/// Three statements: Load, Mul-by-scal, Store-back. Demonstrates the
/// paper's future-work path of adding templates for further routines.
struct SvScal {
  std::string arr;
  std::int64_t off = 0;
  std::string scal;
};

/// A maximal run of same-kind template instances, tagged in the IR with
/// this region's id. The instance vectors are ordered as matched.
struct Region {
  int id = -1;
  TemplateKind kind{};
  UnrolledShape shape = UnrolledShape::kIrregular;

  std::vector<MmComp> mm;       // kMmComp
  std::vector<MmStore> stores;  // kMmStore
  std::vector<MvComp> mv;       // kMvComp
  std::vector<std::string> acc_inits;  // kAccInit: zeroed scalars, in order
  std::vector<SvScal> sv;      // kSvScal
  std::vector<EpiStore> epis;  // kMmEpiStore

  /// Outer shape extents: n1 distinct A offsets × n2 distinct B elements.
  int n1 = 1;
  int n2 = 1;

  /// Outer shape only: true when all B elements sit contiguously on one
  /// cursor — the precondition of the Shuf vectorization strategy (§3.4).
  bool b_contiguous = false;

  /// Number of template instances merged into this region.
  std::size_t size() const;
  /// True when more than one instance merged (an Unrolled template).
  bool unrolled() const { return size() > 1; }

  /// The paper's template name for this region, e.g. "mmUnrolledCOMP".
  std::string name() const;
};

/// Output of the identifier: parsed regions plus the global liveness facts
/// the register allocator needs (paper §3.1: "the live range of each
/// variable is computed globally during the template identification
/// process").
struct MatchResult {
  std::vector<Region> regions;  // regions[i].id == i

  /// For each F64 scalar: the id of the last region that *reads* it.
  /// kReadBeyondRegions marks reads outside any region (e.g. a remainder
  /// loop or the kernel's return value) — never release such registers
  /// based on region position alone.
  static constexpr int kReadBeyondRegions = 1 << 30;
  std::map<std::string, int> last_read_region;
};

/// Identifies all template regions, tagging matched statements in place
/// (Stmt::set_template_tag) and returning the parsed regions.
MatchResult identify_templates(ir::Kernel& kernel);

}  // namespace augem::match
