#pragma once
// "Simple C" implementations of the four DLA kernels the paper optimizes
// (GEMM Fig. 12, GEMV Fig. 15, AXPY Fig. 16, DOT Fig. 17), expressed in the
// low-level C IR. These are the *inputs* to the AUGEM pipeline.
//
// ABI note: the parameter lists below define the SysV x86-64 signatures of
// the generated assembly functions (see asmgen/abi.hpp). All extents are
// `long`, all data is `double`.

#include <string>

#include "ir/kernel.hpp"

namespace augem::frontend {

/// Layout of the packed B block consumed by the GEMM kernel.
enum class BLayout {
  /// B[l*nc + j]: row-major packed block, contiguous across the unrolled j
  /// direction. Both of the paper's vectorization strategies (Vdup and
  /// Shuf, §3.4) apply.
  kRowPanel,
  /// B[j*kc + l]: column-major block, exactly the paper's Fig. 12. The
  /// unrolled j elements are `kc` apart, so only the Vdup strategy applies
  /// (the Template Identifier rejects Shuf here).
  kColMajor,
};

/// Which kernel a spec describes. The first four are the paper's; kScal is
/// this repository's demonstration of the paper's stated future work
/// ("extending our template-based approach to support a much broader
/// collection of routines"): one new template (svSCAL) plus one specialized
/// optimizer suffice to cover a new Level-1 routine.
enum class KernelKind { kGemm, kGemv, kAxpy, kDot, kScal };

const char* kernel_kind_name(KernelKind k);

/// GEMM inner kernel over packed blocks (Goto-style, paper Fig. 12):
///
///   void name(long mc, long nc, long kc,
///             const double* A, const double* B, double* C, long ldc)
///   // C[j*ldc+i] += sum_l A[l*mc+i] * B_elem(l,j)   for i<mc, j<nc
ir::Kernel make_gemm_kernel(BLayout layout = BLayout::kRowPanel,
                            const std::string& name = "dgemm_kernel");

/// GEMV, column-traversal AXPY form (paper Fig. 15):
///
///   void name(long m, long n, const double* A, long lda,
///             const double* x, double* y)
///   // y[j] += A[i*lda+j] * x[i]   for i<n, j<m   (A column-major)
ir::Kernel make_gemv_kernel(const std::string& name = "dgemv_kernel");

/// AXPY (paper Fig. 16):
///
///   void name(long n, double alpha, const double* x, double* y)
///   // y[i] += x[i] * alpha
ir::Kernel make_axpy_kernel(const std::string& name = "daxpy_kernel");

/// DOT (paper Fig. 17):
///
///   double name(long n, const double* x, const double* y)
///   // returns sum_i x[i]*y[i]
ir::Kernel make_dot_kernel(const std::string& name = "ddot_kernel");

/// SCAL (extension kernel, see KernelKind::kScal):
///
///   void name(long n, double alpha, double* x)
///   // x[i] = x[i] * alpha
ir::Kernel make_scal_kernel(const std::string& name = "dscal_kernel");

/// Builds the simple-C kernel for `kind` (GEMM uses `layout`).
ir::Kernel make_kernel(KernelKind kind, BLayout layout = BLayout::kRowPanel);

// ---- shape-specialized small GEMM ----------------------------------------

/// Optional epilogue fused into the small-GEMM store. The combined update is
///
///   C[j*ldc+i] = relu( scale(C[j*ldc+i], res) + bias[i] )
///
/// where scale(c, r) is `c*beta + r*alpha` when `scale` is set and `c + r`
/// otherwise, the bias term appears only when `bias` is set, and relu(x) is
/// `max(x, 0.0)` (MAXPD semantics: relu(NaN) == 0.0) when `relu` is set.
struct EpilogueSpec {
  bool scale = false;  ///< alpha/beta scaling instead of plain accumulate
  bool bias = false;   ///< add bias[i] (one vector of m doubles)
  bool relu = false;   ///< clamp at zero

  bool any() const { return scale || bias || relu; }
  /// Display tag, e.g. "+scale+bias+relu"; empty for a plain store.
  std::string tag() const;
  /// Symbol-safe suffix, e.g. "_scale_bias_relu"; empty for a plain store.
  std::string suffix() const;

  friend bool operator==(const EpilogueSpec& a, const EpilogueSpec& b) {
    return a.scale == b.scale && a.bias == b.bias && a.relu == b.relu;
  }
  friend bool operator!=(const EpilogueSpec& a, const EpilogueSpec& b) {
    return !(a == b);
  }
};

/// A fully shape-specialized small GEMM problem: every extent is a compile-
/// time constant, A/B are read in place (no packing), and the epilogue is
/// fused into the generated store.
struct SmallGemmSpec {
  int m = 16;
  int n = 16;
  int k = 16;
  EpilogueSpec epilogue;

  /// e.g. "16x16x16+bias+relu".
  std::string to_string() const;

  friend bool operator==(const SmallGemmSpec& a, const SmallGemmSpec& b) {
    return a.m == b.m && a.n == b.n && a.k == b.k && a.epilogue == b.epilogue;
  }
  friend bool operator!=(const SmallGemmSpec& a, const SmallGemmSpec& b) {
    return !(a == b);
  }
};

/// Small-GEMM kernel over unpacked column-major operands with the fused
/// epilogue of `spec`. Loop bounds are the spec's constants, so the whole
/// kernel unrolls away under the small-GEMM pipeline. Signature (uniform
/// across epilogue variants; unused trailing operands are simply ignored):
///
///   void name(const double* A, long lda, const double* B, long ldb,
///             double* C, long ldc, const double* bias,
///             double alpha, double beta)
///   // C[j*ldc+i] = epilogue(C[j*ldc+i], sum_l A[l*lda+i] * B[j*ldb+l])
ir::Kernel make_small_gemm_kernel(const SmallGemmSpec& spec,
                                  const std::string& name = "");

}  // namespace augem::frontend
