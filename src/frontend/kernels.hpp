#pragma once
// "Simple C" implementations of the four DLA kernels the paper optimizes
// (GEMM Fig. 12, GEMV Fig. 15, AXPY Fig. 16, DOT Fig. 17), expressed in the
// low-level C IR. These are the *inputs* to the AUGEM pipeline.
//
// ABI note: the parameter lists below define the SysV x86-64 signatures of
// the generated assembly functions (see asmgen/abi.hpp). All extents are
// `long`, all data is `double`.

#include <string>

#include "ir/kernel.hpp"

namespace augem::frontend {

/// Layout of the packed B block consumed by the GEMM kernel.
enum class BLayout {
  /// B[l*nc + j]: row-major packed block, contiguous across the unrolled j
  /// direction. Both of the paper's vectorization strategies (Vdup and
  /// Shuf, §3.4) apply.
  kRowPanel,
  /// B[j*kc + l]: column-major block, exactly the paper's Fig. 12. The
  /// unrolled j elements are `kc` apart, so only the Vdup strategy applies
  /// (the Template Identifier rejects Shuf here).
  kColMajor,
};

/// Which kernel a spec describes. The first four are the paper's; kScal is
/// this repository's demonstration of the paper's stated future work
/// ("extending our template-based approach to support a much broader
/// collection of routines"): one new template (svSCAL) plus one specialized
/// optimizer suffice to cover a new Level-1 routine.
enum class KernelKind { kGemm, kGemv, kAxpy, kDot, kScal };

const char* kernel_kind_name(KernelKind k);

/// GEMM inner kernel over packed blocks (Goto-style, paper Fig. 12):
///
///   void name(long mc, long nc, long kc,
///             const double* A, const double* B, double* C, long ldc)
///   // C[j*ldc+i] += sum_l A[l*mc+i] * B_elem(l,j)   for i<mc, j<nc
ir::Kernel make_gemm_kernel(BLayout layout = BLayout::kRowPanel,
                            const std::string& name = "dgemm_kernel");

/// GEMV, column-traversal AXPY form (paper Fig. 15):
///
///   void name(long m, long n, const double* A, long lda,
///             const double* x, double* y)
///   // y[j] += A[i*lda+j] * x[i]   for i<n, j<m   (A column-major)
ir::Kernel make_gemv_kernel(const std::string& name = "dgemv_kernel");

/// AXPY (paper Fig. 16):
///
///   void name(long n, double alpha, const double* x, double* y)
///   // y[i] += x[i] * alpha
ir::Kernel make_axpy_kernel(const std::string& name = "daxpy_kernel");

/// DOT (paper Fig. 17):
///
///   double name(long n, const double* x, const double* y)
///   // returns sum_i x[i]*y[i]
ir::Kernel make_dot_kernel(const std::string& name = "ddot_kernel");

/// SCAL (extension kernel, see KernelKind::kScal):
///
///   void name(long n, double alpha, double* x)
///   // x[i] = x[i] * alpha
ir::Kernel make_scal_kernel(const std::string& name = "dscal_kernel");

/// Builds the simple-C kernel for `kind` (GEMM uses `layout`).
ir::Kernel make_kernel(KernelKind kind, BLayout layout = BLayout::kRowPanel);

}  // namespace augem::frontend
