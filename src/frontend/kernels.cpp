#include "frontend/kernels.hpp"

#include "support/error.hpp"

namespace augem::frontend {

using namespace augem::ir;

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::kGemm: return "gemm";
    case KernelKind::kGemv: return "gemv";
    case KernelKind::kAxpy: return "axpy";
    case KernelKind::kDot:  return "dot";
    case KernelKind::kScal: return "scal";
  }
  return "?";
}

ir::Kernel make_gemm_kernel(BLayout layout, const std::string& name) {
  Kernel k(name, {
                     {"mc", ScalarType::kI64},
                     {"nc", ScalarType::kI64},
                     {"kc", ScalarType::kI64},
                     {"A", ScalarType::kPtrF64, /*is_const=*/true},
                     {"B", ScalarType::kPtrF64, /*is_const=*/true},
                     {"C", ScalarType::kPtrF64, /*is_const=*/false},
                     {"ldc", ScalarType::kI64},
                 });
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("j", ScalarType::kI64);
  k.declare_local("l", ScalarType::kI64);
  k.declare_local("res", ScalarType::kF64);

  // B element (l, j) in the chosen packed layout.
  auto b_index = [&]() -> ExprPtr {
    if (layout == BLayout::kRowPanel)
      return add(mul(var("l"), var("nc")), var("j"));
    return add(mul(var("j"), var("kc")), var("l"));
  };

  StmtList l_body;
  // res = res + A[l*mc + i] * B[...];
  l_body.push_back(assign(
      var("res"),
      add(var("res"), mul(arr("A", add(mul(var("l"), var("mc")), var("i"))),
                          arr("B", b_index())))));

  StmtList i_body;
  i_body.push_back(assign(var("res"), fval(0.0)));
  i_body.push_back(forloop("l", ival(0), var("kc"), 1, std::move(l_body)));
  // C[j*ldc + i] = C[j*ldc + i] + res;
  auto c_ref = [&] { return arr("C", add(mul(var("j"), var("ldc")), var("i"))); };
  i_body.push_back(assign(c_ref(), add(c_ref(), var("res"))));

  StmtList j_body;
  j_body.push_back(forloop("i", ival(0), var("mc"), 1, std::move(i_body)));

  StmtList body;
  body.push_back(forloop("j", ival(0), var("nc"), 1, std::move(j_body)));
  k.set_body(std::move(body));
  return k;
}

ir::Kernel make_gemv_kernel(const std::string& name) {
  Kernel k(name, {
                     {"m", ScalarType::kI64},
                     {"n", ScalarType::kI64},
                     {"A", ScalarType::kPtrF64, /*is_const=*/true},
                     {"lda", ScalarType::kI64},
                     {"x", ScalarType::kPtrF64, /*is_const=*/true},
                     {"y", ScalarType::kPtrF64, /*is_const=*/false},
                 });
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("j", ScalarType::kI64);
  k.declare_local("scal", ScalarType::kF64);

  StmtList j_body;
  // y[j] = y[j] + A[i*lda + j] * scal;
  j_body.push_back(assign(
      arr("y", var("j")),
      add(arr("y", var("j")),
          mul(arr("A", add(mul(var("i"), var("lda")), var("j"))), var("scal")))));

  StmtList i_body;
  i_body.push_back(assign(var("scal"), arr("x", var("i"))));
  i_body.push_back(forloop("j", ival(0), var("m"), 1, std::move(j_body)));

  StmtList body;
  body.push_back(forloop("i", ival(0), var("n"), 1, std::move(i_body)));
  k.set_body(std::move(body));
  return k;
}

ir::Kernel make_axpy_kernel(const std::string& name) {
  Kernel k(name, {
                     {"n", ScalarType::kI64},
                     {"alpha", ScalarType::kF64},
                     {"x", ScalarType::kPtrF64, /*is_const=*/true},
                     {"y", ScalarType::kPtrF64, /*is_const=*/false},
                 });
  k.declare_local("i", ScalarType::kI64);

  StmtList i_body;
  // y[i] = y[i] + x[i] * alpha;
  i_body.push_back(assign(arr("y", var("i")),
                          add(arr("y", var("i")),
                              mul(arr("x", var("i")), var("alpha")))));

  StmtList body;
  body.push_back(forloop("i", ival(0), var("n"), 1, std::move(i_body)));
  k.set_body(std::move(body));
  return k;
}

ir::Kernel make_dot_kernel(const std::string& name) {
  Kernel k(name, {
                     {"n", ScalarType::kI64},
                     {"x", ScalarType::kPtrF64, /*is_const=*/true},
                     {"y", ScalarType::kPtrF64, /*is_const=*/true},
                 });
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("res", ScalarType::kF64);

  StmtList i_body;
  // res = res + x[i] * y[i];
  i_body.push_back(assign(
      var("res"),
      add(var("res"), mul(arr("x", var("i")), arr("y", var("i"))))));

  StmtList body;
  body.push_back(assign(var("res"), fval(0.0)));
  body.push_back(forloop("i", ival(0), var("n"), 1, std::move(i_body)));
  k.set_body(std::move(body));
  k.set_return_var("res");
  return k;
}

ir::Kernel make_scal_kernel(const std::string& name) {
  Kernel k(name, {
                     {"n", ScalarType::kI64},
                     {"alpha", ScalarType::kF64},
                     {"x", ScalarType::kPtrF64, /*is_const=*/false},
                 });
  k.declare_local("i", ScalarType::kI64);

  StmtList i_body;
  // x[i] = x[i] * alpha;
  i_body.push_back(assign(arr("x", var("i")),
                          mul(arr("x", var("i")), var("alpha"))));

  StmtList body;
  body.push_back(forloop("i", ival(0), var("n"), 1, std::move(i_body)));
  k.set_body(std::move(body));
  return k;
}

std::string EpilogueSpec::tag() const {
  std::string s;
  if (scale) s += "+scale";
  if (bias) s += "+bias";
  if (relu) s += "+relu";
  return s;
}

std::string EpilogueSpec::suffix() const {
  std::string s;
  if (scale) s += "_scale";
  if (bias) s += "_bias";
  if (relu) s += "_relu";
  return s;
}

std::string SmallGemmSpec::to_string() const {
  return std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k) +
         epilogue.tag();
}

ir::Kernel make_small_gemm_kernel(const SmallGemmSpec& spec,
                                  const std::string& name) {
  AUGEM_CHECK(spec.m > 0 && spec.n > 0 && spec.k > 0,
              "small-GEMM extents must be positive");
  std::string fn = name;
  if (fn.empty()) {
    fn = "dgemm_small_" + std::to_string(spec.m) + "x" +
         std::to_string(spec.n) + "x" + std::to_string(spec.k) +
         spec.epilogue.suffix();
  }
  Kernel k(fn, {
                   {"A", ScalarType::kPtrF64, /*is_const=*/true},
                   {"lda", ScalarType::kI64},
                   {"B", ScalarType::kPtrF64, /*is_const=*/true},
                   {"ldb", ScalarType::kI64},
                   {"C", ScalarType::kPtrF64, /*is_const=*/false},
                   {"ldc", ScalarType::kI64},
                   {"bias", ScalarType::kPtrF64, /*is_const=*/true},
                   {"alpha", ScalarType::kF64},
                   {"beta", ScalarType::kF64},
               });
  k.declare_local("i", ScalarType::kI64);
  k.declare_local("j", ScalarType::kI64);
  k.declare_local("l", ScalarType::kI64);
  k.declare_local("res", ScalarType::kF64);

  StmtList l_body;
  // res = res + A[l*lda + i] * B[j*ldb + l];
  l_body.push_back(assign(
      var("res"),
      add(var("res"), mul(arr("A", add(mul(var("l"), var("lda")), var("i"))),
                          arr("B", add(mul(var("j"), var("ldb")), var("l")))))));

  StmtList i_body;
  i_body.push_back(assign(var("res"), fval(0.0)));
  i_body.push_back(forloop("l", ival(0), ival(spec.k), 1, std::move(l_body)));
  auto c_ref = [&] { return arr("C", add(mul(var("j"), var("ldc")), var("i"))); };
  // C[j*ldc+i] = relu(scale(C[j*ldc+i], res) + bias[i]) per the spec.
  ExprPtr upd;
  if (spec.epilogue.scale) {
    upd = add(mul(c_ref(), var("beta")), mul(var("res"), var("alpha")));
  } else {
    upd = add(c_ref(), var("res"));
  }
  if (spec.epilogue.bias) upd = add(std::move(upd), arr("bias", var("i")));
  if (spec.epilogue.relu) upd = fmax2(std::move(upd), fval(0.0));
  i_body.push_back(assign(c_ref(), std::move(upd)));

  StmtList j_body;
  j_body.push_back(forloop("i", ival(0), ival(spec.m), 1, std::move(i_body)));

  StmtList body;
  body.push_back(forloop("j", ival(0), ival(spec.n), 1, std::move(j_body)));
  k.set_body(std::move(body));
  return k;
}

ir::Kernel make_kernel(KernelKind kind, BLayout layout) {
  switch (kind) {
    case KernelKind::kGemm: return make_gemm_kernel(layout);
    case KernelKind::kGemv: return make_gemv_kernel();
    case KernelKind::kAxpy: return make_axpy_kernel();
    case KernelKind::kDot:  return make_dot_kernel();
    case KernelKind::kScal: return make_scal_kernel();
  }
  AUGEM_FAIL("unknown kernel kind");
}

}  // namespace augem::frontend
