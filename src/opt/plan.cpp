#include "opt/plan.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace augem::opt {

using match::MatchResult;
using match::Region;
using match::TemplateKind;
using match::UnrolledShape;

const char* vec_strategy_name(VecStrategy s) {
  switch (s) {
    case VecStrategy::kAuto: return "auto";
    case VecStrategy::kVdup: return "vdup";
    case VecStrategy::kShuf: return "shuf";
    case VecStrategy::kScalar: return "scalar";
  }
  return "?";
}

namespace {

/// Largest SIMD width in {isa width, 2} dividing `n`; 1 when none.
int pick_width(Isa isa, std::int64_t n) {
  const int full = isa_vector_doubles(isa);
  if (n % full == 0) return full;
  if (full > 2 && n % 2 == 0) return 2;
  return 1;
}

class Planner {
 public:
  Planner(const MatchResult& match, const OptConfig& config)
      : match_(match), config_(config) {}

  VecPlan run() {
    for (const Region& region : match_.regions) plan_region(region);
    plan_stores();
    check_budget();
    return std::move(plan_);
  }

 private:
  void plan_region(const Region& region) {
    switch (region.kind) {
      case TemplateKind::kMmComp: plan_mm(region); break;
      case TemplateKind::kMvComp: plan_mv(region); break;
      case TemplateKind::kMmStore: break;  // planned after all COMP regions
      case TemplateKind::kAccInit: break;  // follows the accumulator plans
      case TemplateKind::kSvScal: plan_sv(region); break;
      case TemplateKind::kMmEpiStore: break;  // planned with the stores
    }
  }

  void plan_mm(const Region& region) {
    RegionPlan rp;
    if (config_.strategy == VecStrategy::kScalar ||
        region.shape == UnrolledShape::kIrregular) {
      plan_.regions[region.id] = rp;
      return;
    }
    if (region.shape == UnrolledShape::kPaired) {
      plan_mm_paired(region, rp);
      return;
    }
    plan_mm_outer(region, rp);
  }

  void plan_mm_paired(const Region& region, RegionPlan rp) {
    const auto count = static_cast<std::int64_t>(region.mm.size());
    const int w = pick_width(config_.isa, count);
    if (w == 1) {
      plan_.regions[region.id] = rp;
      return;
    }
    rp.width = w;
    plan_.regions[region.id] = rp;

    const std::string& res = region.mm[0].res;
    const int partials = static_cast<int>(count) / w;
    auto it = plan_.partials_of.find(res);
    if (it == plan_.partials_of.end()) {
      std::vector<int> ids;
      for (int p = 0; p < partials; ++p) {
        AccGroup g;
        g.width = w;
        g.owner = res;
        ids.push_back(static_cast<int>(plan_.groups.size()));
        plan_.groups.push_back(std::move(g));
      }
      plan_.partials_of[res] = std::move(ids);
      plan_.reduce_scalars.insert(res);
    } else {
      // A second region over the same shared accumulator (e.g. another
      // unrolled copy) reuses the partials; it may use fewer, never more.
      AUGEM_CHECK(static_cast<int>(it->second.size()) >= partials,
                  "inconsistent partial-sum expansion for '" << res << "'");
      AUGEM_CHECK(plan_.groups[it->second[0]].width == w,
                  "inconsistent width for shared accumulator '" << res << "'");
    }
  }

  void plan_mm_outer(const Region& region, RegionPlan rp) {
    const int w = pick_width(config_.isa, region.n1);
    if (w == 1) {
      plan_.regions[region.id] = rp;
      return;
    }
    rp.width = w;
    const bool shuf_legal = region.b_contiguous && region.n1 == w &&
                            region.n2 == w;
    rp.use_shuf = config_.strategy == VecStrategy::kShuf;
    if (rp.use_shuf)
      AUGEM_CHECK(shuf_legal,
                  "Shuf strategy requires an n×n tile (n = SIMD width) with "
                  "contiguous B elements; region #"
                      << region.id << " has n1=" << region.n1
                      << " n2=" << region.n2
                      << " b_contiguous=" << region.b_contiguous);
    plan_.regions[region.id] = rp;

    // Index accumulators by (ia, jj): ia = A offset rank, jj = B element
    // rank (deterministic: sorted by (array, offset)).
    const auto [res_at, n1, n2] = index_accumulators(region);
    if (rp.use_shuf) {
      // acc_r lane i holds res(i, (i + r) mod w).
      for (int r = 0; r < w; ++r) {
        std::vector<std::string> lanes(w);
        for (int i = 0; i < w; ++i) lanes[i] = res_at.at({i, (i + r) % w});
        register_group(w, std::move(lanes));
      }
    } else {
      // Vdup: group (jj, row-block rb) holds res(rb*w + lane, jj).
      for (int jj = 0; jj < n2; ++jj) {
        for (int rb = 0; rb < n1 / w; ++rb) {
          std::vector<std::string> lanes(w);
          for (int lane = 0; lane < w; ++lane)
            lanes[lane] = res_at.at({rb * w + lane, jj});
          register_group(w, std::move(lanes));
        }
      }
    }
  }

  /// Maps (A-offset rank, B-element rank) → accumulator name.
  std::tuple<std::map<std::pair<int, int>, std::string>, int, int>
  index_accumulators(const Region& region) {
    std::vector<std::int64_t> a_offs;
    std::vector<std::pair<std::string, std::int64_t>> b_elems;
    for (const match::MmComp& m : region.mm) {
      a_offs.push_back(m.off_a);
      b_elems.push_back({m.arr_b, m.off_b});
    }
    std::sort(a_offs.begin(), a_offs.end());
    a_offs.erase(std::unique(a_offs.begin(), a_offs.end()), a_offs.end());
    std::sort(b_elems.begin(), b_elems.end());
    b_elems.erase(std::unique(b_elems.begin(), b_elems.end()), b_elems.end());

    std::map<std::pair<int, int>, std::string> res_at;
    for (const match::MmComp& m : region.mm) {
      const int ia = static_cast<int>(
          std::lower_bound(a_offs.begin(), a_offs.end(), m.off_a) -
          a_offs.begin());
      const int jj = static_cast<int>(
          std::lower_bound(b_elems.begin(), b_elems.end(),
                           std::make_pair(m.arr_b, m.off_b)) -
          b_elems.begin());
      res_at[{ia, jj}] = m.res;
    }
    return {std::move(res_at), static_cast<int>(a_offs.size()),
            static_cast<int>(b_elems.size())};
  }

  /// Registers a lane group, reusing an identical existing group (regions
  /// sharing accumulators — ku-unrolled copies — must agree).
  void register_group(int width, std::vector<std::string> lanes) {
    // Existing identical group?
    for (std::size_t g = 0; g < plan_.groups.size(); ++g) {
      if (plan_.groups[g].lanes == lanes) {
        AUGEM_CHECK(plan_.groups[g].width == width,
                    "conflicting widths for one accumulator group");
        return;
      }
    }
    for (const std::string& name : lanes)
      AUGEM_CHECK(plan_.lane_of.count(name) == 0,
                  "accumulator '" << name
                                  << "' assigned to two different lane groups");
    const int id = static_cast<int>(plan_.groups.size());
    AccGroup g;
    g.width = width;
    g.lanes = lanes;
    plan_.groups.push_back(std::move(g));
    for (int lane = 0; lane < width; ++lane)
      plan_.lane_of[lanes[lane]] = {id, lane};
  }

  void plan_mv(const Region& region) {
    RegionPlan rp;
    if (config_.strategy == VecStrategy::kScalar ||
        region.shape != UnrolledShape::kPaired) {
      plan_.regions[region.id] = rp;
      if (!region.mv.empty() && config_.strategy != VecStrategy::kScalar &&
          region.shape == UnrolledShape::kIrregular && region.mv.size() == 1) {
        // Singleton remainder instances run scalar; no broadcast needed.
      }
      return;
    }
    const int w =
        pick_width(config_.isa, static_cast<std::int64_t>(region.mv.size()));
    rp.width = w;
    plan_.regions[region.id] = rp;
    if (w > 1) plan_.broadcast_scals.insert(region.mv[0].scal);
  }

  void plan_sv(const Region& region) {
    RegionPlan rp;
    if (config_.strategy == VecStrategy::kScalar ||
        region.shape != UnrolledShape::kPaired) {
      plan_.regions[region.id] = rp;
      return;
    }
    const int w =
        pick_width(config_.isa, static_cast<std::int64_t>(region.sv.size()));
    rp.width = w;
    plan_.regions[region.id] = rp;
    if (w > 1) plan_.broadcast_scals.insert(region.sv[0].scal);
  }

  /// Store regions inherit the width of their accumulators' groups.
  void plan_stores() {
    for (const Region& region : match_.regions) {
      if (region.kind != TemplateKind::kMmStore) continue;
      RegionPlan rp;
      // Vectorizable when every res is lane-mapped and the run length is a
      // multiple of the group width with lane-aligned offsets.
      bool ok = !region.stores.empty();
      int w = 1;
      for (const match::MmStore& st : region.stores)
        ok &= plan_.lane_of.count(st.res) > 0;
      if (ok) {
        w = plan_.groups[plan_.lane_of[region.stores[0].res].first].width;
        ok = static_cast<int>(region.stores.size()) % w == 0;
      }
      if (ok && w > 1) rp.width = w;
      plan_.regions[region.id] = rp;
    }
    plan_epi_stores();
  }

  /// Epilogue stores vectorize exactly like plain stores; a vectorized
  /// scale form additionally keeps broadcast alpha/beta registers resident.
  void plan_epi_stores() {
    for (const Region& region : match_.regions) {
      if (region.kind != TemplateKind::kMmEpiStore) continue;
      RegionPlan rp;
      bool ok = !region.epis.empty();
      int w = 1;
      for (const match::EpiStore& st : region.epis)
        ok &= plan_.lane_of.count(st.res) > 0;
      if (ok) {
        w = plan_.groups[plan_.lane_of[region.epis[0].res].first].width;
        ok = static_cast<int>(region.epis.size()) % w == 0;
      }
      if (ok && w > 1) {
        rp.width = w;
        if (region.epis[0].scale) {
          plan_.broadcast_scals.insert(region.epis[0].alpha);
          plan_.broadcast_scals.insert(region.epis[0].beta);
        }
      }
      plan_.regions[region.id] = rp;
    }
  }

  /// Rough register budget: accumulator groups + broadcasts must leave
  /// room for the streaming temporaries.
  void check_budget() {
    const int held = static_cast<int>(plan_.groups.size()) +
                     static_cast<int>(plan_.broadcast_scals.size());
    AUGEM_CHECK(held <= kNumVrs - 4,
                "vector register budget exceeded: " << held
                                                    << " persistent registers");
  }

  const MatchResult& match_;
  const OptConfig& config_;
  VecPlan plan_;
};

}  // namespace

VecPlan plan_vectorization(const match::MatchResult& match,
                           const OptConfig& config) {
  return Planner(match, config).run();
}

}  // namespace augem::opt
