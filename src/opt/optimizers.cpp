#include "opt/optimizers.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace augem::opt {

using match::MatchResult;
using match::Region;
using match::TemplateKind;

namespace {

/// Deterministic (A offset rank, B element rank) indexing of an outer-shape
/// mmUnrolledCOMP region, shared with the planner's layout decisions.
struct MmIndex {
  std::vector<std::int64_t> a_offs;
  std::vector<std::pair<std::string, std::int64_t>> b_elems;
  std::map<std::pair<int, int>, std::string> res_at;
  int n1 = 0;
  int n2 = 0;
};

MmIndex index_mm_region(const Region& region) {
  MmIndex idx;
  for (const match::MmComp& m : region.mm) {
    idx.a_offs.push_back(m.off_a);
    idx.b_elems.push_back({m.arr_b, m.off_b});
  }
  std::sort(idx.a_offs.begin(), idx.a_offs.end());
  idx.a_offs.erase(std::unique(idx.a_offs.begin(), idx.a_offs.end()),
                   idx.a_offs.end());
  std::sort(idx.b_elems.begin(), idx.b_elems.end());
  idx.b_elems.erase(std::unique(idx.b_elems.begin(), idx.b_elems.end()),
                    idx.b_elems.end());
  for (const match::MmComp& m : region.mm) {
    const int ia = static_cast<int>(
        std::lower_bound(idx.a_offs.begin(), idx.a_offs.end(), m.off_a) -
        idx.a_offs.begin());
    const int jj = static_cast<int>(
        std::lower_bound(idx.b_elems.begin(), idx.b_elems.end(),
                         std::make_pair(m.arr_b, m.off_b)) -
        idx.b_elems.begin());
    idx.res_at[{ia, jj}] = m.res;
  }
  idx.n1 = static_cast<int>(idx.a_offs.size());
  idx.n2 = static_cast<int>(idx.b_elems.size());
  return idx;
}

std::string region_comment(const Region& region, const RegionPlan& rp) {
  std::ostringstream os;
  os << region.name() << "#" << region.id;
  if (rp.width > 1) {
    os << " [" << (rp.use_shuf ? "shuf" : "vdup") << " w=" << rp.width << "]";
  } else {
    os << " [scalar]";
  }
  return os.str();
}

}  // namespace

Vr EmitCtx::group(int gid) {
  const auto it = group_reg.find(gid);
  if (it != group_reg.end()) return it->second;
  const AccGroup& g = plan.groups[static_cast<std::size_t>(gid)];
  std::string affinity;
  if (!g.lanes.empty()) {
    const auto aff = store_affinity.find(g.lanes[0]);
    if (aff != store_affinity.end()) affinity = aff->second;
  }
  const Vr r = vralloc->alloc(affinity);
  group_reg[gid] = r;
  return r;
}

Vr EmitCtx::scalar(const std::string& name) {
  if (reg_table.contains(name)) return reg_table.lookup(name);
  std::string affinity;
  const auto aff = store_affinity.find(name);
  if (aff != store_affinity.end()) affinity = aff->second;
  const Vr r = vralloc->alloc(affinity);
  reg_table.bind(name, r);
  return r;
}

void EmitCtx::release_dead_groups(int region_id) {
  for (auto it = group_reg.begin(); it != group_reg.end();) {
    const AccGroup& g = plan.groups[static_cast<std::size_t>(it->first)];
    bool dead = !g.lanes.empty();  // partial groups die at reduction instead
    for (const std::string& lane : g.lanes) {
      const auto lr = match->last_read_region.find(lane);
      dead &= lr != match->last_read_region.end() &&
              lr->second != MatchResult::kReadBeyondRegions &&
              lr->second <= region_id;
    }
    if (dead) {
      vralloc->release(it->second);
      it = group_reg.erase(it);
    } else {
      ++it;
    }
  }
}

void EmitCtx::release_dead_scalars(int region_id) {
  const auto& table = reg_table.bindings();
  std::vector<std::string> dead;
  for (const auto& [name, reg] : table) {
    if (pinned_scalars.count(name) > 0) continue;
    const auto lr = match->last_read_region.find(name);
    if (lr == match->last_read_region.end()) continue;
    if (lr->second == MatchResult::kReadBeyondRegions) continue;
    if (lr->second <= region_id) dead.push_back(name);
  }
  for (const std::string& name : dead) vralloc->release(reg_table.unbind(name));
}

void compute_store_affinities(EmitCtx& ctx) {
  for (const Region& region : ctx.match->regions) {
    if (region.kind == TemplateKind::kMmStore) {
      for (const match::MmStore& st : region.stores)
        ctx.store_affinity[st.res] = st.arr;
    } else if (region.kind == TemplateKind::kMmEpiStore) {
      for (const match::EpiStore& st : region.epis)
        ctx.store_affinity[st.res] = st.arr;
    }
  }
}

namespace {

// ---- scalar (width-1) paths: the paper's §3.1-3.3 base optimizers ----------

void emit_mm_scalar(EmitCtx& ctx, const Region& region) {
  const Isa isa = ctx.config.isa;
  for (const match::MmComp& m : region.mm) {
    const Vr ta = ctx.vralloc->alloc(m.arr_a);
    emit_load(*ctx.out, isa, 1, ta, ctx.mem_of(m.arr_a, m.off_a));
    const Vr tb = ctx.vralloc->alloc(m.arr_b);
    emit_load(*ctx.out, isa, 1, tb, ctx.mem_of(m.arr_b, m.off_b));
    const Vr acc = ctx.scalar(m.res);
    const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
    emit_mul_add(*ctx.out, isa, 1, ta, tb, acc, tmp);
    if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
    ctx.vralloc->release(ta);
    ctx.vralloc->release(tb);
  }
}

void emit_store_scalar(EmitCtx& ctx, const Region& region) {
  const Isa isa = ctx.config.isa;
  for (const match::MmStore& st : region.stores) {
    const Vr t = ctx.vralloc->alloc(st.arr);
    const Mem m = ctx.mem_of(st.arr, st.off);
    emit_load(*ctx.out, isa, 1, t, m);
    const Vr acc = ctx.scalar(st.res);
    emit_add_store(*ctx.out, isa, 1, t, acc, m);
    ctx.vralloc->release(t);
  }
}

void emit_mv_scalar(EmitCtx& ctx, const Region& region) {
  const Isa isa = ctx.config.isa;
  for (const match::MvComp& m : region.mv) {
    const Vr tb = ctx.vralloc->alloc(m.arr_b);
    const Mem mem_b = ctx.mem_of(m.arr_b, m.off_b);
    emit_load(*ctx.out, isa, 1, tb, mem_b);
    const Vr ta = ctx.vralloc->alloc(m.arr_a);
    emit_load(*ctx.out, isa, 1, ta, ctx.mem_of(m.arr_a, m.off_a));
    AUGEM_CHECK(ctx.reg_table.contains(m.scal),
                "mvCOMP scalar '" << m.scal << "' has no bound register");
    const Vr s = ctx.reg_table.lookup(m.scal);
    const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
    emit_mul_add(*ctx.out, isa, 1, ta, s, tb, tmp);  // tb += ta * scal
    emit_store(*ctx.out, isa, 1, tb, mem_b);
    if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
    ctx.vralloc->release(ta);
    ctx.vralloc->release(tb);
  }
}

// ---- vector paths -----------------------------------------------------------

void emit_mm_outer_vdup(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  const MmIndex idx = index_mm_region(region);
  const std::int64_t a0 = idx.a_offs.front();

  // Vdup the B elements, then Vld the A row blocks (paper Fig. 8 order).
  std::vector<Vr> vb(static_cast<std::size_t>(idx.n2));
  for (int jj = 0; jj < idx.n2; ++jj) {
    const auto& [arr_b, off_b] = idx.b_elems[static_cast<std::size_t>(jj)];
    vb[static_cast<std::size_t>(jj)] = ctx.vralloc->alloc(arr_b);
    emit_broadcast(*ctx.out, isa, w, vb[static_cast<std::size_t>(jj)],
                   ctx.mem_of(arr_b, off_b));
  }
  const int row_blocks = idx.n1 / w;
  std::vector<Vr> va(static_cast<std::size_t>(row_blocks));
  for (int rb = 0; rb < row_blocks; ++rb) {
    va[static_cast<std::size_t>(rb)] = ctx.vralloc->alloc(region.mm[0].arr_a);
    emit_load(*ctx.out, isa, w, va[static_cast<std::size_t>(rb)],
              ctx.mem_of(region.mm[0].arr_a, a0 + rb * w));
  }
  const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
  for (int jj = 0; jj < idx.n2; ++jj) {
    for (int rb = 0; rb < row_blocks; ++rb) {
      const std::string& res = idx.res_at.at({rb * w, jj});
      const auto [gid, lane] = ctx.plan.lane_of.at(res);
      AUGEM_CHECK(lane == 0, "row-block accumulator must start at lane 0");
      emit_mul_add(*ctx.out, isa, w, va[static_cast<std::size_t>(rb)],
                   vb[static_cast<std::size_t>(jj)], ctx.group(gid), tmp);
    }
  }
  if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
  for (Vr r : va) ctx.vralloc->release(r);
  for (Vr r : vb) ctx.vralloc->release(r);
}

void emit_mm_outer_shuf(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  const MmIndex idx = index_mm_region(region);
  AUGEM_CHECK(idx.n1 == w && idx.n2 == w, "Shuf needs an n×n tile");

  const Vr va = ctx.vralloc->alloc(region.mm[0].arr_a);
  emit_load(*ctx.out, isa, w, va, ctx.mem_of(region.mm[0].arr_a, idx.a_offs[0]));
  const Vr vb = ctx.vralloc->alloc(idx.b_elems[0].first);
  emit_load(*ctx.out, isa, w, vb,
            ctx.mem_of(idx.b_elems[0].first, idx.b_elems[0].second));

  // acc_r's lane 0 holds res(0, r).
  auto acc_of_rotation = [&](int r) {
    const std::string& res = idx.res_at.at({0, r});
    return ctx.group(ctx.plan.lane_of.at(res).first);
  };

  const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
  emit_mul_add(*ctx.out, isa, w, va, vb, acc_of_rotation(0), tmp);

  if (w == 2) {
    const Vr rot = ctx.vralloc->alloc("");
    emit_rotate(*ctx.out, isa, 2, rot, vb, 1, Vr::kNoVr);
    emit_mul_add(*ctx.out, isa, 2, va, rot, acc_of_rotation(1), tmp);
    ctx.vralloc->release(rot);
  } else {
    AUGEM_CHECK(w == 4, "Shuf widths are 2 and 4");
    // s = in-half swap, p = full reverse; rotations derive by blending
    // (5 shuffle-class ops for all three rotations).
    const Vr s = ctx.vralloc->alloc("");
    ctx.out->push_back(vshuf(s, vb, vb, 0b0101, 4, true));
    const Vr p = ctx.vralloc->alloc("");
    ctx.out->push_back(vperm128(p, s, s, 0x01));
    const Vr rot = ctx.vralloc->alloc("");
    ctx.out->push_back(vblend(rot, s, p, 0b1010, 4, true));  // [b1 b2 b3 b0]
    emit_mul_add(*ctx.out, isa, 4, va, rot, acc_of_rotation(1), tmp);
    ctx.out->push_back(vperm128(rot, vb, vb, 0x01));         // [b2 b3 b0 b1]
    emit_mul_add(*ctx.out, isa, 4, va, rot, acc_of_rotation(2), tmp);
    ctx.out->push_back(vblend(rot, p, s, 0b1010, 4, true));  // [b3 b0 b1 b2]
    emit_mul_add(*ctx.out, isa, 4, va, rot, acc_of_rotation(3), tmp);
    ctx.vralloc->release(rot);
    ctx.vralloc->release(p);
    ctx.vralloc->release(s);
  }
  if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
  ctx.vralloc->release(va);
  ctx.vralloc->release(vb);
}

void emit_mm_paired(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  const std::string& res = region.mm[0].res;
  const auto& partials = ctx.plan.partials_of.at(res);
  const int p_count = static_cast<int>(region.mm.size()) / w;
  AUGEM_CHECK(p_count <= static_cast<int>(partials.size()),
              "more partials required than planned for '" << res << "'");

  const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
  for (int p = 0; p < p_count; ++p) {
    const match::MmComp& first = region.mm[static_cast<std::size_t>(p * w)];
    const Vr vx = ctx.vralloc->alloc(first.arr_a);
    emit_load(*ctx.out, isa, w, vx, ctx.mem_of(first.arr_a, first.off_a));
    const Vr vy = ctx.vralloc->alloc(first.arr_b);
    emit_load(*ctx.out, isa, w, vy, ctx.mem_of(first.arr_b, first.off_b));
    emit_mul_add(*ctx.out, isa, w, vx, vy,
                 ctx.group(partials[static_cast<std::size_t>(p)]), tmp);
    ctx.vralloc->release(vx);
    ctx.vralloc->release(vy);
  }
  if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
  ctx.pending_reductions.insert(res);
}

void emit_mv_paired(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  const std::string& scal = region.mv[0].scal;
  const auto bc = ctx.broadcast_reg.find(scal);
  AUGEM_CHECK(bc != ctx.broadcast_reg.end(),
              "no broadcast register for '" << scal << "'");
  const Vr svec = bc->second;

  const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
  const int groups = static_cast<int>(region.mv.size()) / w;
  for (int g = 0; g < groups; ++g) {
    const match::MvComp& first = region.mv[static_cast<std::size_t>(g * w)];
    const Vr vb = ctx.vralloc->alloc(first.arr_b);
    const Mem mem_b = ctx.mem_of(first.arr_b, first.off_b);
    emit_load(*ctx.out, isa, w, vb, mem_b);
    const Vr va = ctx.vralloc->alloc(first.arr_a);
    emit_load(*ctx.out, isa, w, va, ctx.mem_of(first.arr_a, first.off_a));
    emit_mul_add(*ctx.out, isa, w, va, svec, vb, tmp);  // vb += va * scal
    emit_store(*ctx.out, isa, w, vb, mem_b);
    ctx.vralloc->release(va);
    ctx.vralloc->release(vb);
  }
  if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
}

void emit_store_vector(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  const int chunks = static_cast<int>(region.stores.size()) / w;
  for (int c = 0; c < chunks; ++c) {
    // Which register holds each lane of this output chunk?
    std::vector<Vr> srcs(static_cast<std::size_t>(w));
    bool same_group = true;
    int gid0 = -1;
    for (int i = 0; i < w; ++i) {
      const match::MmStore& st = region.stores[static_cast<std::size_t>(c * w + i)];
      const auto [gid, lane] = ctx.plan.lane_of.at(st.res);
      AUGEM_CHECK(lane == i, "store lane misalignment for '" << st.res << "'");
      srcs[static_cast<std::size_t>(i)] = ctx.group(gid);
      if (i == 0) gid0 = gid;
      same_group &= gid == gid0;
    }
    Vr col;
    bool col_owned = false;
    if (same_group) {
      col = srcs[0];
    } else {
      col = ctx.vralloc->alloc("");
      emit_lane_gather(*ctx.out, isa, w, col, srcs);
      col_owned = true;
    }
    const match::MmStore& first = region.stores[static_cast<std::size_t>(c * w)];
    const Vr t = ctx.vralloc->alloc(first.arr);
    const Mem m = ctx.mem_of(first.arr, first.off);
    emit_load(*ctx.out, isa, w, t, m);
    emit_add_store(*ctx.out, isa, w, t, col, m);
    ctx.vralloc->release(t);
    if (col_owned) ctx.vralloc->release(col);
  }
}

// The mmEpiSTORE optimizer (small-GEMM fused epilogues): Table 2's
// Load-Add-Store extended with optional alpha/beta scaling (Vmul + the
// Mul/Add rows against broadcast alpha), a bias Vld-Vadd, and a ReLU Vmax
// against a region-hoisted zero register. The plain form never reaches
// here — the identifier leaves it to mmSTORE.

void emit_epi_store_scalar(EmitCtx& ctx, const Region& region) {
  const Isa isa = ctx.config.isa;
  const bool vex = isa_is_vex(isa);
  Vr z = Vr::kNoVr;
  for (const match::EpiStore& st : region.epis) {
    const Vr t = ctx.vralloc->alloc(st.arr);
    const Mem m = ctx.mem_of(st.arr, st.off);
    emit_load(*ctx.out, isa, 1, t, m);
    const Vr acc = ctx.scalar(st.res);
    if (st.scale) {
      AUGEM_CHECK(ctx.reg_table.contains(st.alpha) &&
                      ctx.reg_table.contains(st.beta),
                  "epilogue scalars '" << st.alpha << "'/'" << st.beta
                                       << "' have no bound registers");
      ctx.out->push_back(vmul(t, t, ctx.reg_table.lookup(st.beta), 1, vex));
      const Vr tmp = needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
      emit_mul_add(*ctx.out, isa, 1, acc, ctx.reg_table.lookup(st.alpha), t,
                   tmp);  // t = C*beta + res*alpha
      if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
    } else {
      ctx.out->push_back(vadd(t, t, acc, 1, vex));
    }
    if (st.bias) {
      const Vr tb = ctx.vralloc->alloc(st.bias_arr);
      emit_load(*ctx.out, isa, 1, tb, ctx.mem_of(st.bias_arr, st.bias_off));
      ctx.out->push_back(vadd(t, t, tb, 1, vex));
      ctx.vralloc->release(tb);
    }
    if (st.relu) {
      if (z == Vr::kNoVr) {
        z = ctx.vralloc->alloc("");
        emit_zero(*ctx.out, isa, 1, z);
      }
      ctx.out->push_back(vmax(t, t, z, 1, vex));
    }
    emit_store(*ctx.out, isa, 1, t, m);
    ctx.vralloc->release(t);
  }
  if (z != Vr::kNoVr) ctx.vralloc->release(z);
}

void emit_epi_store_vector(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  const bool vex = isa_is_vex(isa);
  const match::EpiStore& head = region.epis[0];
  Vr alpha_bc = Vr::kNoVr;
  Vr beta_bc = Vr::kNoVr;
  if (head.scale) {
    const auto a = ctx.broadcast_reg.find(head.alpha);
    const auto b = ctx.broadcast_reg.find(head.beta);
    AUGEM_CHECK(a != ctx.broadcast_reg.end() && b != ctx.broadcast_reg.end(),
                "no broadcast registers for epilogue scalars '"
                    << head.alpha << "'/'" << head.beta << "'");
    alpha_bc = a->second;
    beta_bc = b->second;
  }
  Vr z = Vr::kNoVr;
  if (head.relu) {
    z = ctx.vralloc->alloc("");
    emit_zero(*ctx.out, isa, w, z);
  }
  const Vr tmp =
      head.scale && needs_mul_temp(isa) ? ctx.vralloc->alloc("") : Vr::kNoVr;
  const int chunks = static_cast<int>(region.epis.size()) / w;
  for (int c = 0; c < chunks; ++c) {
    std::vector<Vr> srcs(static_cast<std::size_t>(w));
    bool same_group = true;
    int gid0 = -1;
    for (int i = 0; i < w; ++i) {
      const match::EpiStore& st =
          region.epis[static_cast<std::size_t>(c * w + i)];
      const auto [gid, lane] = ctx.plan.lane_of.at(st.res);
      AUGEM_CHECK(lane == i, "store lane misalignment for '" << st.res << "'");
      srcs[static_cast<std::size_t>(i)] = ctx.group(gid);
      if (i == 0) gid0 = gid;
      same_group &= gid == gid0;
    }
    Vr col;
    bool col_owned = false;
    if (same_group) {
      col = srcs[0];
    } else {
      col = ctx.vralloc->alloc("");
      emit_lane_gather(*ctx.out, isa, w, col, srcs);
      col_owned = true;
    }
    const match::EpiStore& first = region.epis[static_cast<std::size_t>(c * w)];
    const Vr t = ctx.vralloc->alloc(first.arr);
    const Mem m = ctx.mem_of(first.arr, first.off);
    emit_load(*ctx.out, isa, w, t, m);
    if (first.scale) {
      ctx.out->push_back(vmul(t, t, beta_bc, w, vex));
      emit_mul_add(*ctx.out, isa, w, col, alpha_bc, t, tmp);
    } else {
      ctx.out->push_back(vadd(t, t, col, w, vex));
    }
    if (first.bias) {
      const Vr tb = ctx.vralloc->alloc(first.bias_arr);
      emit_load(*ctx.out, isa, w, tb,
                ctx.mem_of(first.bias_arr, first.bias_off));
      ctx.out->push_back(vadd(t, t, tb, w, vex));
      ctx.vralloc->release(tb);
    }
    if (first.relu) ctx.out->push_back(vmax(t, t, z, w, vex));
    emit_store(*ctx.out, isa, w, t, m);
    ctx.vralloc->release(t);
    if (col_owned) ctx.vralloc->release(col);
  }
  if (tmp != Vr::kNoVr) ctx.vralloc->release(tmp);
  if (z != Vr::kNoVr) ctx.vralloc->release(z);
}

// The svSCAL optimizer (extension template): Vld-Vmul-Vst over `scal`'s
// broadcast register; scalar fallback mirrors Table 3 minus the Add.
void emit_sv_scal(EmitCtx& ctx, const Region& region, int w) {
  const Isa isa = ctx.config.isa;
  if (w <= 1) {
    for (const match::SvScal& s : region.sv) {
      const Vr t = ctx.vralloc->alloc(s.arr);
      const Mem m = ctx.mem_of(s.arr, s.off);
      emit_load(*ctx.out, isa, 1, t, m);
      AUGEM_CHECK(ctx.reg_table.contains(s.scal),
                  "svSCAL scalar '" << s.scal << "' has no bound register");
      const Vr sreg = ctx.reg_table.lookup(s.scal);
      // t = t * scal (two-operand legal: dst == src1).
      ctx.out->push_back(vmul(t, t, sreg, 1, isa_is_vex(isa)));
      emit_store(*ctx.out, isa, 1, t, m);
      ctx.vralloc->release(t);
    }
    return;
  }
  const std::string& scal = region.sv[0].scal;
  const auto bc = ctx.broadcast_reg.find(scal);
  AUGEM_CHECK(bc != ctx.broadcast_reg.end(),
              "no broadcast register for '" << scal << "'");
  const int groups = static_cast<int>(region.sv.size()) / w;
  for (int g = 0; g < groups; ++g) {
    const match::SvScal& first = region.sv[static_cast<std::size_t>(g * w)];
    const Vr t = ctx.vralloc->alloc(first.arr);
    const Mem m = ctx.mem_of(first.arr, first.off);
    emit_load(*ctx.out, isa, w, t, m);
    ctx.out->push_back(vmul(t, t, bc->second, w, isa_is_vex(isa)));
    emit_store(*ctx.out, isa, w, t, m);
    ctx.vralloc->release(t);
  }
}

void emit_acc_init(EmitCtx& ctx, const Region& region) {
  const Isa isa = ctx.config.isa;
  std::set<int> zeroed;
  for (const std::string& name : region.acc_inits) {
    if (const auto lane = ctx.plan.lane_of.find(name);
        lane != ctx.plan.lane_of.end()) {
      const int gid = lane->second.first;
      if (zeroed.insert(gid).second)
        emit_zero(*ctx.out, isa, ctx.plan.groups[static_cast<std::size_t>(gid)].width,
                  ctx.group(gid));
      continue;
    }
    if (const auto part = ctx.plan.partials_of.find(name);
        part != ctx.plan.partials_of.end()) {
      for (int gid : part->second) {
        if (zeroed.insert(gid).second)
          emit_zero(*ctx.out, isa,
                    ctx.plan.groups[static_cast<std::size_t>(gid)].width,
                    ctx.group(gid));
      }
      continue;
    }
    emit_zero(*ctx.out, isa, 1, ctx.scalar(name));
  }
}

}  // namespace

void emit_region(EmitCtx& ctx, const Region& region) {
  const auto plan_it = ctx.plan.regions.find(region.id);
  const RegionPlan rp =
      plan_it != ctx.plan.regions.end() ? plan_it->second : RegionPlan{};
  ctx.out->push_back(comment(region_comment(region, rp)));

  switch (region.kind) {
    case TemplateKind::kAccInit:
      emit_acc_init(ctx, region);
      break;
    case TemplateKind::kMmComp:
      if (rp.width <= 1) {
        emit_mm_scalar(ctx, region);
      } else if (region.shape == match::UnrolledShape::kPaired) {
        emit_mm_paired(ctx, region, rp.width);
      } else if (rp.use_shuf) {
        emit_mm_outer_shuf(ctx, region, rp.width);
      } else {
        emit_mm_outer_vdup(ctx, region, rp.width);
      }
      break;
    case TemplateKind::kMvComp:
      if (rp.width <= 1) {
        emit_mv_scalar(ctx, region);
      } else {
        emit_mv_paired(ctx, region, rp.width);
      }
      break;
    case TemplateKind::kMmStore:
      if (rp.width <= 1) {
        emit_store_scalar(ctx, region);
      } else {
        emit_store_vector(ctx, region, rp.width);
      }
      break;
    case TemplateKind::kSvScal:
      emit_sv_scal(ctx, region, rp.width);
      break;
    case TemplateKind::kMmEpiStore:
      if (rp.width <= 1) {
        emit_epi_store_scalar(ctx, region);
      } else {
        emit_epi_store_vector(ctx, region, rp.width);
      }
      break;
  }

  ctx.release_dead_groups(region.id);
  ctx.release_dead_scalars(region.id);
}

void emit_pending_reductions(EmitCtx& ctx) {
  const Isa isa = ctx.config.isa;
  for (const std::string& res : ctx.pending_reductions) {
    const auto& partials = ctx.plan.partials_of.at(res);
    const int w = ctx.plan.groups[static_cast<std::size_t>(partials[0])].width;
    ctx.out->push_back(comment("reduce " + res));

    const Vr acc0 = ctx.group(partials[0]);
    for (std::size_t p = 1; p < partials.size(); ++p)
      ctx.out->push_back(
          vadd(acc0, acc0, ctx.group(partials[p]), w, isa_is_vex(isa)));

    const Vr dst = ctx.vralloc->alloc("");
    const Vr tmp = ctx.vralloc->alloc("");
    const Vr tmp2 = w == 4 ? ctx.vralloc->alloc("") : Vr::kNoVr;
    emit_hsum(*ctx.out, isa, w, dst, acc0, tmp, tmp2);
    ctx.vralloc->release(tmp);
    if (tmp2 != Vr::kNoVr) ctx.vralloc->release(tmp2);

    for (int gid : partials) {
      ctx.vralloc->release(ctx.group_reg.at(gid));
      ctx.group_reg.erase(gid);
    }
    ctx.reg_table.bind(res, dst);
  }
  ctx.pending_reductions.clear();
}

}  // namespace augem::opt
