#pragma once
// Machine instruction IR.
//
// The Template Optimizer and the Assembly Kernel Generator both emit this
// three-address machine IR; it is then (a) printed as AT&T-syntax x86-64
// assembly by asmgen/printer and (b) executed directly by the vm module so
// that code for every ISA — including FMA4, which the host cannot run — is
// verified semantically.
//
// Semantics are uniformly three-operand; the printer enforces the
// two-operand SSE constraint `dst == src1` that the instruction-selection
// rules (paper Tables 1-4) guarantee by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "opt/regs.hpp"

namespace augem::opt {

/// Memory operand: base + index*scale + displacement. Strength reduction
/// keeps data accesses at base+disp; the index form is used by `lea` when
/// materializing cursor addresses (ptr = base + expr*8).
struct Mem {
  Gpr base = Gpr::kNoGpr;
  Gpr index = Gpr::kNoGpr;
  std::int8_t scale = 1;
  std::int32_t disp = 0;

  bool valid() const { return base != Gpr::kNoGpr; }
  bool has_index() const { return index != Gpr::kNoGpr; }
};

inline Mem mem_bd(Gpr base, std::int32_t disp) { return Mem{base, Gpr::kNoGpr, 1, disp}; }
inline Mem mem_bis(Gpr base, Gpr index, std::int8_t scale, std::int32_t disp = 0) {
  return Mem{base, index, scale, disp};
}

enum class MOp : std::uint8_t {
  // --- vector / floating point (operate on `width` doubles) ---
  kVZero,      // vdst = 0                        (xorpd/vxorpd)
  kVLoad,      // vdst = [mem]                    (movsd/movupd/vmovupd)
  kVStore,     // [mem] = vsrc1                   (movsd/movupd/vmovupd)
  kVBroadcast, // vdst = dup([mem])               (movddup/vbroadcastsd)
  kVMov,       // vdst = vsrc1                    (movapd/vmovapd)
  kVMul,       // vdst = vsrc1 * vsrc2            (mulpd/vmulpd)
  kVAdd,       // vdst = vsrc1 + vsrc2            (addpd/vaddpd)
  kVFma231,    // vdst += vsrc1 * vsrc2           (vfmadd231pd, FMA3)
  kVFma4,      // vdst = vsrc1 * vsrc2 + vsrc3    (vfmaddpd, FMA4)
  kVShuf,      // vdst = shuffle(vsrc1, vsrc2, imm) (shufpd/vshufpd)
  kVPerm128,   // vdst = perm2f128(vsrc1, vsrc2, imm) (AVX, width 4 only)
  kVBlend,     // vdst = blend(vsrc1, vsrc2, imm) (blendpd/vblendpd)
  kVExtractHigh, // vdst(xmm) = high 128 bits of vsrc1(ymm)  (vextractf128 $1)

  // --- integer / pointer (64-bit) ---
  kIMovImm,    // gdst = imm
  kIMov,       // gdst = gsrc
  kIAdd,       // gdst += gsrc
  kIAddImm,    // gdst += imm
  kISub,       // gdst -= gsrc
  kISubImm,    // gdst -= imm
  kIMul,       // gdst *= gsrc       (imul)
  kIMulImm,    // gdst = gsrc * imm  (imul 3-operand)
  kIShlImm,    // gdst <<= imm
  kINeg,       // gdst = -gdst
  kILoad,      // gdst = [mem] (64-bit)
  kIStore,     // [mem] = gsrc
  kIAddMem,    // gdst += [mem]
  kISubMem,    // gdst -= [mem]
  kIMulMem,    // gdst *= [mem]
  kLea,        // gdst = mem.base + imm (lea imm(base), dst)

  // --- FP spill slots (scalar double to/from the stack frame) ---
  kFLoad,      // vdst = [mem] scalar  (same as kVLoad width 1; distinct op
               //                       for frame traffic readability)
  kFStore,     // [mem] = vsrc1 scalar

  // --- control ---
  kCmp,        // compare gdst ? gsrc (sets flags; AT&T: cmp %gsrc, %gdst)
  kCmpImm,     // compare gdst ? imm
  kJl,         // jump to label if dst <  src (signed)
  kJge,        // jump if dst >= src
  kJne, kJe,
  kJmp,
  kLabel,      // label definition
  kPrefetch,   // prefetcht0/t1/t2/nta [mem]; imm = locality (3→t0 … 0→nta)
  kPush,       // push gsrc
  kPop,        // pop gdst
  kVZeroUpper, // clear upper YMM state before returning to SSE callers
  kRet,
  kComment,    // no-op; label holds the text

  // Appended past the original set so the numeric op ids in existing
  // machine-IR dumps (golden snapshots) stay stable.
  kVMax,       // vdst = max(vsrc1, vsrc2)        (maxpd/vmaxpd; NaN -> vsrc2)
};

/// One machine instruction. Unused fields keep their defaults.
struct MInst {
  MOp op{};
  int width = 1;  ///< doubles per vector op: 1 (sd), 2 (xmm pd), 4 (ymm pd)
  bool vex = false;  ///< print VEX (v-prefixed three-operand) encoding

  Vr vdst = Vr::kNoVr;
  Vr vsrc1 = Vr::kNoVr;
  Vr vsrc2 = Vr::kNoVr;
  Vr vsrc3 = Vr::kNoVr;

  Gpr gdst = Gpr::kNoGpr;
  Gpr gsrc = Gpr::kNoGpr;

  Mem mem{};
  std::int64_t imm = 0;
  std::string label;  ///< jump target / label name / comment text

  /// Debug rendering (not assembly syntax; see asmgen/printer for that).
  std::string to_string() const;
};

using MInstList = std::vector<MInst>;

// ---- construction helpers --------------------------------------------------

MInst vzero(Vr dst, int width, bool vex);
MInst vload(Vr dst, Mem m, int width, bool vex);
MInst vstore(Vr src, Mem m, int width, bool vex);
MInst vbroadcast(Vr dst, Mem m, int width, bool vex);
MInst vmov(Vr dst, Vr src, int width, bool vex);
MInst vmul(Vr dst, Vr a, Vr b, int width, bool vex);
MInst vadd(Vr dst, Vr a, Vr b, int width, bool vex);
MInst vmax(Vr dst, Vr a, Vr b, int width, bool vex);
MInst vfma231(Vr dst_acc, Vr a, Vr b, int width);
MInst vfma4(Vr dst, Vr a, Vr b, Vr c, int width);
MInst vshuf(Vr dst, Vr a, Vr b, std::int64_t imm, int width, bool vex);
MInst vperm128(Vr dst, Vr a, Vr b, std::int64_t imm);
MInst vblend(Vr dst, Vr a, Vr b, std::int64_t imm, int width, bool vex);
MInst vextract_high(Vr dst, Vr src);

MInst imov_imm(Gpr dst, std::int64_t v);
MInst imov(Gpr dst, Gpr src);
MInst iadd(Gpr dst, Gpr src);
MInst iadd_imm(Gpr dst, std::int64_t v);
MInst isub(Gpr dst, Gpr src);
MInst isub_imm(Gpr dst, std::int64_t v);
MInst imul(Gpr dst, Gpr src);
MInst imul_imm(Gpr dst, Gpr src, std::int64_t v);
MInst ishl_imm(Gpr dst, std::int64_t v);
MInst ineg(Gpr dst);
MInst iload(Gpr dst, Mem m);
MInst istore(Gpr src, Mem m);
MInst iadd_mem(Gpr dst, Mem m);
MInst isub_mem(Gpr dst, Mem m);
MInst imul_mem(Gpr dst, Mem m);
MInst lea(Gpr dst, Mem m);
MInst fload(Vr dst, Mem m, bool vex);
MInst fstore(Vr src, Mem m, bool vex);

MInst cmp(Gpr a, Gpr b);
MInst cmp_imm(Gpr a, std::int64_t v);
MInst jl(std::string label);
MInst jge(std::string label);
MInst jne(std::string label);
MInst je(std::string label);
MInst jmp(std::string label);
MInst label(std::string name);
MInst prefetch(Mem m, int locality);
MInst push(Gpr g);
MInst pop(Gpr g);
MInst vzeroupper();
MInst ret();
MInst comment(std::string text);

// ---- def/use extraction (scheduler, verifier, tests) -----------------------

/// Registers written by the instruction.
void defs_of(const MInst& inst, std::vector<Gpr>& gprs, std::vector<Vr>& vrs);
/// Registers read by the instruction (includes mem.base).
void uses_of(const MInst& inst, std::vector<Gpr>& gprs, std::vector<Vr>& vrs);
/// True for loads/stores/prefetches (memory side effects or reads).
bool touches_memory(const MInst& inst);
/// True for stores (memory writes).
bool writes_memory(const MInst& inst);
/// True for control flow (labels, jumps, ret, push/pop).
bool is_control(const MInst& inst);

}  // namespace augem::opt
