#pragma once
// Register allocation (paper §3.1).
//
// Vector registers: "a separate register queue is dedicated to each array
// variable, so that different physical registers are used for values from
// different arrays … to minimize any false dependence". With R registers
// and m arrays the paper dedicates R/m to each; we partition R across the
// m arrays plus one pure-temporary pool, and fall back to stealing from the
// globally least-loaded pool when a queue runs dry (the paper's kernels
// never exhaust a queue; ours must also survive adversarial configs).
//
// The variable→register map (`reg_table` in the paper's Fig. 2) lives here
// too, shared between the template optimizers and the global assembly
// generator so allocation decisions stay consistent across regions.

#include <map>
#include <string>
#include <vector>

#include "opt/regs.hpp"
#include "support/error.hpp"

namespace augem::opt {

enum class RegAllocPolicy {
  kPerArrayQueues,  ///< the paper's policy
  kSinglePool,      ///< ablation baseline: one FIFO free list
};

/// Vector (SIMD) register allocator with per-array affinity queues.
class VrAllocator {
 public:
  /// `affinities` are the array variable names of the kernel; an empty
  /// string affinity designates the pure-temporary pool (always present).
  /// `reserved` registers (e.g. xmm0 holding the alpha argument) are never
  /// handed out.
  VrAllocator(std::vector<std::string> affinities, RegAllocPolicy policy,
              std::vector<Vr> reserved = {});

  /// Allocates a register, preferring the queue of `affinity` ("" = temp).
  /// Throws when every register is in use.
  Vr alloc(const std::string& affinity);

  /// Returns a register to its home queue.
  void release(Vr v);

  /// Number of registers currently free.
  int free_count() const;

  bool in_use(Vr v) const;

 private:
  int queue_of(const std::string& affinity) const;

  RegAllocPolicy policy_;
  std::vector<std::string> affinity_names_;  // index = queue id; "" last
  std::vector<std::vector<Vr>> queues_;      // free registers per queue
  std::vector<int> home_queue_;              // per register index
  std::vector<bool> busy_;
};

/// The global variable→vector-register table (paper Fig. 2's reg_table).
class RegTable {
 public:
  bool contains(const std::string& name) const { return table_.count(name) > 0; }
  Vr lookup(const std::string& name) const;
  void bind(const std::string& name, Vr v);
  /// Removes the binding and returns the register (for release).
  Vr unbind(const std::string& name);
  /// All current bindings (deterministic order), e.g. for tests/dumps.
  const std::map<std::string, Vr>& bindings() const { return table_; }

 private:
  std::map<std::string, Vr> table_;
};

}  // namespace augem::opt
