#pragma once
// Physical x86-64 registers used by the generated kernels.

#include <cstdint>

namespace augem::opt {

/// General-purpose registers. Values are the standard encoding order;
/// kNoGpr marks an absent operand.
enum class Gpr : std::uint8_t {
  rax, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
  r8, r9, r10, r11, r12, r13, r14, r15,
  kNoGpr,
};

/// SIMD registers xmm0-15 / ymm0-15 (the name is chosen by operand width).
enum class Vr : std::uint8_t {
  v0, v1, v2, v3, v4, v5, v6, v7,
  v8, v9, v10, v11, v12, v13, v14, v15,
  kNoVr,
};

constexpr int kNumGprs = 16;
constexpr int kNumVrs = 16;

/// AT&T register name without the '%' sigil ("rax", "r12", …).
const char* gpr_name(Gpr g);

/// AT&T name at a width: "xmm3" (width 1 or 2 doubles) or "ymm3" (width 4).
/// Returned storage is static per (reg, width) combination.
const char* vr_name(Vr v, int width_doubles);

/// True for the SysV callee-saved GPRs (rbx, rbp, r12-r15).
bool is_callee_saved(Gpr g);

inline int index_of(Gpr g) { return static_cast<int>(g); }
inline int index_of(Vr v) { return static_cast<int>(v); }
inline Gpr gpr_at(int i) { return static_cast<Gpr>(i); }
inline Vr vr_at(int i) { return static_cast<Vr>(i); }

}  // namespace augem::opt
