#pragma once
// Static verifier for generated machine code.
//
// Catches code-generator bugs at generation time instead of as wrong
// numerics later: every kernel produced by asmgen::generate_assembly is
// verified before it is printed.
//
// This header is a compatibility facade: the implementation lives in
// src/analysis (see analysis/analyzer.hpp), which builds a real CFG and
// runs the checks below as dataflow passes over every path, plus — when
// given a KernelContract — symbolic memory-bounds proofs. This API reports
// only error-severity findings; use analysis::analyze or tools/mirlint for
// the advisory warnings (dead stores, register-queue reuse hazards).

#include <string>
#include <vector>

#include "opt/minst.hpp"

namespace augem::opt {

/// One verifier finding.
struct VerifyIssue {
  std::size_t index;   ///< instruction index
  std::string message;
};

/// Checks, in order:
///  * operand completeness: every register field an op requires is set,
///    memory operands are valid where required;
///  * two-operand encodings: non-VEX kVMul/kVAdd/kVShuf/kVBlend have
///    dst == src1 (the constraint the printer would reject);
///  * widths: vector widths are 1, 2 or 4; 256-bit-only ops are width 4;
///    non-VEX ops never use width 4;
///  * control flow: jumps target existing labels; exactly balanced
///    push/pop (same registers, reverse order) on every path that returns;
///    rsp adjustments are matched;
///  * conditional jumps are preceded by a flag-setting compare with no
///    clobbering instruction in between (flags are not modelled through
///    arithmetic, which on x86 would alter them — the generator always
///    re-compares, and the verifier enforces that);
///  * register initialization: along every CFG path, no vector or
///    general-purpose register is read before something wrote it,
///    excluding the SysV argument registers.
std::vector<VerifyIssue> verify_machine_code(const MInstList& insts,
                                             int num_f64_params = 0);

/// Throws augem::Error listing all issues when verification fails.
void check_machine_code(const MInstList& insts, int num_f64_params = 0);

}  // namespace augem::opt
