#pragma once
// Static verifier for generated machine code.
//
// Catches code-generator bugs at generation time instead of as wrong
// numerics later: every kernel produced by asmgen::generate_assembly is
// verified before it is printed. The checks are conservative over the
// control-flow structure the generator emits (reducible counted loops with
// forward/backward conditional jumps).

#include <string>
#include <vector>

#include "opt/minst.hpp"

namespace augem::opt {

/// One verifier finding.
struct VerifyIssue {
  std::size_t index;   ///< instruction index
  std::string message;
};

/// Checks, in order:
///  * operand completeness: every register field an op requires is set,
///    memory operands are valid where required;
///  * two-operand encodings: non-VEX kVMul/kVAdd/kVShuf/kVBlend have
///    dst == src1 (the constraint the printer would reject);
///  * widths: vector widths are 1, 2 or 4; 256-bit-only ops are width 4;
///    non-VEX ops never use width 4;
///  * control flow: jumps target existing labels; exactly balanced
///    push/pop (same registers, reverse order) on every path that returns;
///    rsp adjustments are matched;
///  * conditional jumps are preceded by a flag-setting compare with no
///    clobbering instruction in between (flags are not modelled through
///    arithmetic, which on x86 would alter them — the generator always
///    re-compares, and the verifier enforces that);
///  * register initialization: along straight-line order (the generator's
///    loops always execute their compare first), no vector register is
///    read before something wrote it, excluding the SysV argument
///    registers.
std::vector<VerifyIssue> verify_machine_code(const MInstList& insts,
                                             int num_f64_params = 0);

/// Throws augem::Error listing all issues when verification fails.
void check_machine_code(const MInstList& insts, int num_f64_params = 0);

}  // namespace augem::opt
