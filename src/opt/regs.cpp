#include "opt/regs.hpp"

namespace augem::opt {

const char* gpr_name(Gpr g) {
  switch (g) {
    case Gpr::rax: return "rax";
    case Gpr::rcx: return "rcx";
    case Gpr::rdx: return "rdx";
    case Gpr::rbx: return "rbx";
    case Gpr::rsp: return "rsp";
    case Gpr::rbp: return "rbp";
    case Gpr::rsi: return "rsi";
    case Gpr::rdi: return "rdi";
    case Gpr::r8: return "r8";
    case Gpr::r9: return "r9";
    case Gpr::r10: return "r10";
    case Gpr::r11: return "r11";
    case Gpr::r12: return "r12";
    case Gpr::r13: return "r13";
    case Gpr::r14: return "r14";
    case Gpr::r15: return "r15";
    case Gpr::kNoGpr: return "<none>";
  }
  return "?";
}

const char* vr_name(Vr v, int width_doubles) {
  static const char* xmm[] = {"xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5",
                              "xmm6", "xmm7", "xmm8", "xmm9", "xmm10", "xmm11",
                              "xmm12", "xmm13", "xmm14", "xmm15"};
  static const char* ymm[] = {"ymm0", "ymm1", "ymm2", "ymm3", "ymm4", "ymm5",
                              "ymm6", "ymm7", "ymm8", "ymm9", "ymm10", "ymm11",
                              "ymm12", "ymm13", "ymm14", "ymm15"};
  if (v == Vr::kNoVr) return "<none>";
  return width_doubles >= 4 ? ymm[index_of(v)] : xmm[index_of(v)];
}

bool is_callee_saved(Gpr g) {
  switch (g) {
    case Gpr::rbx:
    case Gpr::rbp:
    case Gpr::r12:
    case Gpr::r13:
    case Gpr::r14:
    case Gpr::r15:
      return true;
    default:
      return false;
  }
}

}  // namespace augem::opt
