#include "opt/minst.hpp"

#include <sstream>

namespace augem::opt {

namespace {

MInst base(MOp op) {
  MInst i;
  i.op = op;
  return i;
}

}  // namespace

MInst vzero(Vr dst, int width, bool vex) {
  MInst i = base(MOp::kVZero);
  i.vdst = dst;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vload(Vr dst, Mem m, int width, bool vex) {
  MInst i = base(MOp::kVLoad);
  i.vdst = dst;
  i.mem = m;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vstore(Vr src, Mem m, int width, bool vex) {
  MInst i = base(MOp::kVStore);
  i.vsrc1 = src;
  i.mem = m;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vbroadcast(Vr dst, Mem m, int width, bool vex) {
  MInst i = base(MOp::kVBroadcast);
  i.vdst = dst;
  i.mem = m;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vmov(Vr dst, Vr src, int width, bool vex) {
  MInst i = base(MOp::kVMov);
  i.vdst = dst;
  i.vsrc1 = src;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vmul(Vr dst, Vr a, Vr b, int width, bool vex) {
  MInst i = base(MOp::kVMul);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vadd(Vr dst, Vr a, Vr b, int width, bool vex) {
  MInst i = base(MOp::kVAdd);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vmax(Vr dst, Vr a, Vr b, int width, bool vex) {
  MInst i = base(MOp::kVMax);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vfma231(Vr dst_acc, Vr a, Vr b, int width) {
  MInst i = base(MOp::kVFma231);
  i.vdst = dst_acc;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.width = width;
  i.vex = true;
  return i;
}

MInst vfma4(Vr dst, Vr a, Vr b, Vr c, int width) {
  MInst i = base(MOp::kVFma4);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.vsrc3 = c;
  i.width = width;
  i.vex = true;
  return i;
}

MInst vshuf(Vr dst, Vr a, Vr b, std::int64_t imm, int width, bool vex) {
  MInst i = base(MOp::kVShuf);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.imm = imm;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vperm128(Vr dst, Vr a, Vr b, std::int64_t imm) {
  MInst i = base(MOp::kVPerm128);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.imm = imm;
  i.width = 4;
  i.vex = true;
  return i;
}

MInst vblend(Vr dst, Vr a, Vr b, std::int64_t imm, int width, bool vex) {
  MInst i = base(MOp::kVBlend);
  i.vdst = dst;
  i.vsrc1 = a;
  i.vsrc2 = b;
  i.imm = imm;
  i.width = width;
  i.vex = vex;
  return i;
}

MInst vextract_high(Vr dst, Vr src) {
  MInst i = base(MOp::kVExtractHigh);
  i.vdst = dst;
  i.vsrc1 = src;
  i.width = 4;
  i.vex = true;
  return i;
}

MInst imov_imm(Gpr dst, std::int64_t v) {
  MInst i = base(MOp::kIMovImm);
  i.gdst = dst;
  i.imm = v;
  return i;
}

MInst imov(Gpr dst, Gpr src) {
  MInst i = base(MOp::kIMov);
  i.gdst = dst;
  i.gsrc = src;
  return i;
}

MInst iadd(Gpr dst, Gpr src) {
  MInst i = base(MOp::kIAdd);
  i.gdst = dst;
  i.gsrc = src;
  return i;
}

MInst iadd_imm(Gpr dst, std::int64_t v) {
  MInst i = base(MOp::kIAddImm);
  i.gdst = dst;
  i.imm = v;
  return i;
}

MInst isub(Gpr dst, Gpr src) {
  MInst i = base(MOp::kISub);
  i.gdst = dst;
  i.gsrc = src;
  return i;
}

MInst isub_imm(Gpr dst, std::int64_t v) {
  MInst i = base(MOp::kISubImm);
  i.gdst = dst;
  i.imm = v;
  return i;
}

MInst imul(Gpr dst, Gpr src) {
  MInst i = base(MOp::kIMul);
  i.gdst = dst;
  i.gsrc = src;
  return i;
}

MInst imul_imm(Gpr dst, Gpr src, std::int64_t v) {
  MInst i = base(MOp::kIMulImm);
  i.gdst = dst;
  i.gsrc = src;
  i.imm = v;
  return i;
}

MInst ishl_imm(Gpr dst, std::int64_t v) {
  MInst i = base(MOp::kIShlImm);
  i.gdst = dst;
  i.imm = v;
  return i;
}

MInst ineg(Gpr dst) {
  MInst i = base(MOp::kINeg);
  i.gdst = dst;
  return i;
}

MInst iload(Gpr dst, Mem m) {
  MInst i = base(MOp::kILoad);
  i.gdst = dst;
  i.mem = m;
  return i;
}

MInst istore(Gpr src, Mem m) {
  MInst i = base(MOp::kIStore);
  i.gsrc = src;
  i.mem = m;
  return i;
}

namespace {
MInst mem_arith(MOp op, Gpr dst, Mem m) {
  MInst i = base(op);
  i.gdst = dst;
  i.mem = m;
  return i;
}
}  // namespace

MInst iadd_mem(Gpr dst, Mem m) { return mem_arith(MOp::kIAddMem, dst, m); }
MInst isub_mem(Gpr dst, Mem m) { return mem_arith(MOp::kISubMem, dst, m); }
MInst imul_mem(Gpr dst, Mem m) { return mem_arith(MOp::kIMulMem, dst, m); }

MInst lea(Gpr dst, Mem m) {
  MInst i = base(MOp::kLea);
  i.gdst = dst;
  i.mem = m;
  return i;
}

MInst fload(Vr dst, Mem m, bool vex) {
  MInst i = base(MOp::kFLoad);
  i.vdst = dst;
  i.mem = m;
  i.width = 1;
  i.vex = vex;
  return i;
}

MInst fstore(Vr src, Mem m, bool vex) {
  MInst i = base(MOp::kFStore);
  i.vsrc1 = src;
  i.mem = m;
  i.width = 1;
  i.vex = vex;
  return i;
}

MInst cmp(Gpr a, Gpr b) {
  MInst i = base(MOp::kCmp);
  i.gdst = a;
  i.gsrc = b;
  return i;
}

MInst cmp_imm(Gpr a, std::int64_t v) {
  MInst i = base(MOp::kCmpImm);
  i.gdst = a;
  i.imm = v;
  return i;
}

namespace {
MInst jump(MOp op, std::string l) {
  MInst i = base(op);
  i.label = std::move(l);
  return i;
}
}  // namespace

MInst jl(std::string l) { return jump(MOp::kJl, std::move(l)); }
MInst jge(std::string l) { return jump(MOp::kJge, std::move(l)); }
MInst jne(std::string l) { return jump(MOp::kJne, std::move(l)); }
MInst je(std::string l) { return jump(MOp::kJe, std::move(l)); }
MInst jmp(std::string l) { return jump(MOp::kJmp, std::move(l)); }
MInst label(std::string name) { return jump(MOp::kLabel, std::move(name)); }

MInst prefetch(Mem m, int locality) {
  MInst i = base(MOp::kPrefetch);
  i.mem = m;
  i.imm = locality;
  return i;
}

MInst push(Gpr g) {
  MInst i = base(MOp::kPush);
  i.gsrc = g;
  return i;
}

MInst pop(Gpr g) {
  MInst i = base(MOp::kPop);
  i.gdst = g;
  return i;
}

MInst vzeroupper() { return base(MOp::kVZeroUpper); }

MInst ret() { return base(MOp::kRet); }

MInst comment(std::string text) { return jump(MOp::kComment, std::move(text)); }

// ---- def/use ---------------------------------------------------------------

void defs_of(const MInst& inst, std::vector<Gpr>& gprs, std::vector<Vr>& vrs) {
  gprs.clear();
  vrs.clear();
  switch (inst.op) {
    case MOp::kVZero:
    case MOp::kVLoad:
    case MOp::kVBroadcast:
    case MOp::kVMov:
    case MOp::kVMul:
    case MOp::kVAdd:
    case MOp::kVMax:
    case MOp::kVShuf:
    case MOp::kVPerm128:
    case MOp::kVBlend:
    case MOp::kVExtractHigh:
    case MOp::kFLoad:
      vrs.push_back(inst.vdst);
      break;
    case MOp::kVFma231:
    case MOp::kVFma4:
      vrs.push_back(inst.vdst);
      break;
    case MOp::kIMovImm:
    case MOp::kIMov:
    case MOp::kIAdd:
    case MOp::kIAddImm:
    case MOp::kISub:
    case MOp::kISubImm:
    case MOp::kIMul:
    case MOp::kIMulImm:
    case MOp::kIShlImm:
    case MOp::kINeg:
    case MOp::kILoad:
    case MOp::kLea:
    case MOp::kPop:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
      gprs.push_back(inst.gdst);
      break;
    default:
      break;
  }
}

void uses_of(const MInst& inst, std::vector<Gpr>& gprs, std::vector<Vr>& vrs) {
  gprs.clear();
  vrs.clear();
  if (inst.mem.valid()) {
    gprs.push_back(inst.mem.base);
    if (inst.mem.has_index()) gprs.push_back(inst.mem.index);
  }
  switch (inst.op) {
    case MOp::kVStore:
    case MOp::kFStore:
      vrs.push_back(inst.vsrc1);
      break;
    case MOp::kVMov:
    case MOp::kVExtractHigh:
      vrs.push_back(inst.vsrc1);
      break;
    case MOp::kVMul:
    case MOp::kVAdd:
    case MOp::kVMax:
    case MOp::kVShuf:
    case MOp::kVPerm128:
    case MOp::kVBlend:
      vrs.push_back(inst.vsrc1);
      vrs.push_back(inst.vsrc2);
      break;
    case MOp::kVFma231:
      vrs.push_back(inst.vsrc1);
      vrs.push_back(inst.vsrc2);
      vrs.push_back(inst.vdst);  // accumulator is read-modify-write
      break;
    case MOp::kVFma4:
      vrs.push_back(inst.vsrc1);
      vrs.push_back(inst.vsrc2);
      vrs.push_back(inst.vsrc3);
      break;
    case MOp::kIMov:
    case MOp::kIMulImm:
      gprs.push_back(inst.gsrc);
      break;
    case MOp::kIAdd:
    case MOp::kISub:
    case MOp::kIMul:
      gprs.push_back(inst.gsrc);
      gprs.push_back(inst.gdst);  // read-modify-write
      break;
    case MOp::kIAddImm:
    case MOp::kISubImm:
    case MOp::kIShlImm:
    case MOp::kINeg:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
      gprs.push_back(inst.gdst);
      break;
    case MOp::kIStore:
    case MOp::kPush:
      gprs.push_back(inst.gsrc);
      break;
    case MOp::kCmp:
      gprs.push_back(inst.gdst);
      gprs.push_back(inst.gsrc);
      break;
    case MOp::kCmpImm:
      gprs.push_back(inst.gdst);
      break;
    default:
      break;
  }
}

bool touches_memory(const MInst& inst) {
  switch (inst.op) {
    case MOp::kVLoad:
    case MOp::kVStore:
    case MOp::kVBroadcast:
    case MOp::kFLoad:
    case MOp::kFStore:
    case MOp::kILoad:
    case MOp::kIStore:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
    case MOp::kPrefetch:
    case MOp::kPush:
    case MOp::kPop:
      return true;
    default:
      return false;
  }
}

bool writes_memory(const MInst& inst) {
  switch (inst.op) {
    case MOp::kVStore:
    case MOp::kFStore:
    case MOp::kIStore:
    case MOp::kPush:
      return true;
    default:
      return false;
  }
}

bool is_control(const MInst& inst) {
  switch (inst.op) {
    case MOp::kJl:
    case MOp::kJge:
    case MOp::kJne:
    case MOp::kJe:
    case MOp::kJmp:
    case MOp::kLabel:
    case MOp::kVZeroUpper:
    case MOp::kRet:
    case MOp::kPush:
    case MOp::kPop:
    case MOp::kCmp:
    case MOp::kCmpImm:
      return true;
    default:
      return false;
  }
}

std::string MInst::to_string() const {
  std::ostringstream os;
  os << "op=" << static_cast<int>(op) << " w=" << width;
  if (vdst != Vr::kNoVr) os << " vdst=" << vr_name(vdst, width);
  if (vsrc1 != Vr::kNoVr) os << " vsrc1=" << vr_name(vsrc1, width);
  if (vsrc2 != Vr::kNoVr) os << " vsrc2=" << vr_name(vsrc2, width);
  if (vsrc3 != Vr::kNoVr) os << " vsrc3=" << vr_name(vsrc3, width);
  if (gdst != Gpr::kNoGpr) os << " gdst=" << gpr_name(gdst);
  if (gsrc != Gpr::kNoGpr) os << " gsrc=" << gpr_name(gsrc);
  if (mem.valid()) os << " mem=" << mem.disp << "(" << gpr_name(mem.base) << ")";
  if (imm != 0) os << " imm=" << imm;
  if (!label.empty()) os << " label=" << label;
  return os.str();
}

}  // namespace augem::opt
