#pragma once
// The Template Optimizer proper (paper §2.3, §3): turns identified template
// regions into machine instructions, combining SIMD vectorization (per the
// VecPlan), register allocation (per-array queues + the global reg_table)
// and instruction selection (the Tables 1-4 rules in opt/isel).
//
// The Assembly Kernel Generator (asmgen/codegen) owns the traversal of the
// kernel; it constructs one EmitCtx and calls emit_region for each tagged
// region it encounters, interleaving its own lowering of the untagged
// low-level C in between — exactly the Fig. 2 algorithm.

#include <functional>
#include <map>
#include <set>
#include <string>

#include "match/identifier.hpp"
#include "opt/isel.hpp"
#include "opt/plan.hpp"
#include "opt/regalloc.hpp"

namespace augem::opt {

/// Shared emission state threaded through region optimizers and the global
/// generator.
struct EmitCtx {
  OptConfig config;
  VecPlan plan;
  const match::MatchResult* match = nullptr;

  VrAllocator* vralloc = nullptr;
  RegTable reg_table;  ///< scalar F64 name → register (paper's reg_table)

  /// Lazily allocated accumulator-group registers (group id → register).
  std::map<int, Vr> group_reg;
  /// Broadcast registers for mv `scal` values.
  std::map<std::string, Vr> broadcast_reg;
  /// Shared accumulators whose partial sums were touched and still await a
  /// post-loop reduction.
  std::set<std::string> pending_reductions;
  /// Accumulator affinity: scalar → the array (cursor) it is stored to.
  std::map<std::string, std::string> store_affinity;
  /// Scalars whose registers must never be auto-released (e.g. F64
  /// parameters living in reserved argument registers).
  std::set<std::string> pinned_scalars;

  /// Resolves `array[element_offset]` to a machine memory operand (may
  /// emit a scratch load for a spilled base). Provided by the generator.
  std::function<Mem(const std::string& array, std::int64_t elem_off)> mem_of;

  MInstList* out = nullptr;

  // -- helpers shared by the region optimizers --

  /// Register holding accumulator group `gid`, allocating on first use.
  Vr group(int gid);
  /// Scalar register bound to `name`, binding a fresh one on first use
  /// (affinity = its store array when known).
  Vr scalar(const std::string& name);
  /// Releases group registers whose accumulators are dead after `region_id`
  /// (uses MatchResult::last_read_region).
  void release_dead_groups(int region_id);
  /// Releases a scalar binding whose last read is `region_id` or earlier.
  void release_dead_scalars(int region_id);
};

/// Initializes store_affinity from the match result (res → C array).
void compute_store_affinities(EmitCtx& ctx);

/// Emits machine code for one identified region.
void emit_region(EmitCtx& ctx, const match::Region& region);

/// Emits the pending partial-sum reductions for every shared accumulator in
/// `ctx.pending_reductions`, binding the scalar results in reg_table.
/// Called by the generator right after the loop containing the vectorized
/// region closes.
void emit_pending_reductions(EmitCtx& ctx);

}  // namespace augem::opt
