#include "opt/regalloc.hpp"

#include <algorithm>

namespace augem::opt {

VrAllocator::VrAllocator(std::vector<std::string> affinities,
                         RegAllocPolicy policy, std::vector<Vr> reserved)
    : policy_(policy) {
  if (policy_ == RegAllocPolicy::kSinglePool) affinities.clear();
  affinity_names_ = std::move(affinities);
  affinity_names_.emplace_back("");  // the pure-temporary pool, always last

  const int queues = static_cast<int>(affinity_names_.size());
  queues_.resize(queues);
  home_queue_.assign(kNumVrs, queues - 1);
  busy_.assign(kNumVrs, false);

  for (Vr r : reserved) busy_[index_of(r)] = true;

  // Distribute free registers round-robin across the queues so each array
  // gets ~R/m dedicated registers (paper §3.1), temps taking the rest.
  int q = 0;
  for (int i = 0; i < kNumVrs; ++i) {
    if (busy_[i]) continue;
    home_queue_[i] = q;
    queues_[q].push_back(vr_at(i));
    q = (q + 1) % queues;
  }
  // Queues are consumed from the front in ascending register order.
  for (auto& fifo : queues_) std::sort(fifo.begin(), fifo.end());
}

int VrAllocator::queue_of(const std::string& affinity) const {
  for (std::size_t i = 0; i < affinity_names_.size(); ++i)
    if (affinity_names_[i] == affinity) return static_cast<int>(i);
  return static_cast<int>(affinity_names_.size()) - 1;  // temp pool
}

Vr VrAllocator::alloc(const std::string& affinity) {
  int q = queue_of(affinity);
  if (queues_[q].empty()) {
    // Steal from the fullest queue to keep arrays separated for as long
    // as possible.
    int best = -1;
    std::size_t best_size = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (queues_[i].size() > best_size) {
        best_size = queues_[i].size();
        best = static_cast<int>(i);
      }
    }
    AUGEM_CHECK(best >= 0, "out of vector registers (affinity '" << affinity
                                                                 << "')");
    q = best;
  }
  const Vr r = queues_[q].front();
  queues_[q].erase(queues_[q].begin());
  busy_[index_of(r)] = true;
  return r;
}

void VrAllocator::release(Vr v) {
  const int i = index_of(v);
  AUGEM_CHECK(busy_[i], "double release of " << vr_name(v, 2));
  busy_[i] = false;
  auto& fifo = queues_[home_queue_[i]];
  fifo.insert(std::lower_bound(fifo.begin(), fifo.end(), v), v);
}

int VrAllocator::free_count() const {
  int n = 0;
  for (const auto& fifo : queues_) n += static_cast<int>(fifo.size());
  return n;
}

bool VrAllocator::in_use(Vr v) const { return busy_[index_of(v)]; }

Vr RegTable::lookup(const std::string& name) const {
  const auto it = table_.find(name);
  AUGEM_CHECK(it != table_.end(), "no register bound to '" << name << "'");
  return it->second;
}

void RegTable::bind(const std::string& name, Vr v) {
  AUGEM_CHECK(table_.count(name) == 0,
              "'" << name << "' is already bound to a register");
  table_[name] = v;
}

Vr RegTable::unbind(const std::string& name) {
  const auto it = table_.find(name);
  AUGEM_CHECK(it != table_.end(), "unbinding unbound '" << name << "'");
  const Vr v = it->second;
  table_.erase(it);
  return v;
}

}  // namespace augem::opt
