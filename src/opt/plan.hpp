#pragma once
// Vectorization planning for the Template Optimizer (paper §3.4-3.6).
//
// Before any code is emitted, this pass decides — per identified region —
// the SIMD width and strategy, and derives the *accumulator expansion*:
// which scalar accumulators live in which lane of which SIMD register
// group. The plan is global so that regions sharing accumulators (the
// ku-unrolled GEMM bodies, the DOT remainder) agree, the accINIT regions
// zero the right registers, and post-loop reductions are placed correctly.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "match/identifier.hpp"
#include "opt/regalloc.hpp"
#include "support/arch.hpp"

namespace augem::opt {

/// Vectorization strategy selection (paper §3.4 names the two methods).
enum class VecStrategy {
  kAuto,    ///< Vdup where it applies; the tuner tries both explicitly
  kVdup,    ///< Vld-Vdup-Vmul-Vadd (broadcast the B element)
  kShuf,    ///< Vld-Vld-Vmul-Vadd + Shufi rotations (needs contiguous B)
  kScalar,  ///< disable SIMD: the §3.1-3.3 scalar optimizers only (ablation)
};

const char* vec_strategy_name(VecStrategy s);

/// All machine-level knobs of the Template Optimizer.
struct OptConfig {
  Isa isa = Isa::kAvx;
  VecStrategy strategy = VecStrategy::kAuto;
  RegAllocPolicy regalloc = RegAllocPolicy::kPerArrayQueues;
  bool schedule = true;  ///< run the instruction scheduler on loop bodies
};

/// How one region will be compiled.
struct RegionPlan {
  int width = 1;          ///< SIMD lanes (1 = scalar path)
  bool use_shuf = false;  ///< outer mmUnrolledCOMP only
};

/// One SIMD register's worth of accumulators.
struct AccGroup {
  int width = 1;
  /// Lane i holds scalar lanes[i] (outer shape). Empty for a partial-sum
  /// group (paired shape), where the whole register accumulates one shared
  /// scalar.
  std::vector<std::string> lanes;
  /// For partial groups: the shared scalar this group accumulates into.
  std::string owner;
};

struct VecPlan {
  std::map<int, RegionPlan> regions;  ///< keyed by region id

  std::vector<AccGroup> groups;
  /// Outer-shape accumulators: scalar → (group id, lane).
  std::map<std::string, std::pair<int, int>> lane_of;
  /// Paired-shape shared accumulators: scalar → its partial group ids.
  std::map<std::string, std::vector<int>> partials_of;

  /// Scalars that must be broadcast into a SIMD register (mv scal).
  std::set<std::string> broadcast_scals;
  /// Shared accumulators needing a post-loop horizontal reduction back to
  /// a scalar register.
  std::set<std::string> reduce_scalars;

  bool scalar_is_vectorized(const std::string& name) const {
    return lane_of.count(name) > 0 || partials_of.count(name) > 0;
  }
};

/// Computes the plan. Throws augem::Error when the configuration cannot
/// fit the register file (the tuner treats that as an invalid point).
VecPlan plan_vectorization(const match::MatchResult& match,
                           const OptConfig& config);

}  // namespace augem::opt
