#include "opt/schedule.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

namespace augem::opt {

namespace {

bool is_barrier(const MInst& inst) {
  return is_control(inst) || inst.op == MOp::kComment;
}

bool is_cond_jump(const MInst& inst) {
  switch (inst.op) {
    case MOp::kJl:
    case MOp::kJge:
    case MOp::kJne:
    case MOp::kJe:
      return true;
    default:
      return false;
  }
}

constexpr unsigned ports(std::initializer_list<int> ps) {
  unsigned m = 0;
  for (int p : ps) m |= 1u << p;
  return m;
}

/// One dependence edge: `node` is the other endpoint (the predecessor in a
/// preds list, the successor in a succs list); the dependent's operands are
/// ready `lat` cycles after the producer issues (0 for ordering-only
/// anti/output/memory edges, the producer latency for true RAW edges).
struct Edge {
  std::size_t node;
  int lat;
};

/// Schedules one straight-line span [first, last) in place. When the span
/// feeds a conditional jump (`cond_jump_follows`), its last flags-writer is
/// pinned behind every other flags-writer so the jump still reads the
/// flags the original program computed.
void schedule_span(MInstList& insts, std::size_t first, std::size_t last,
                   bool cond_jump_follows) {
  const std::size_t n = last - first;
  if (n < 3) return;

  std::vector<std::vector<Edge>> preds(n);
  std::vector<Gpr> dg, ug, dg2, ug2;
  std::vector<Vr> dv, uv, dv2, uv2;
  for (std::size_t i = 0; i < n; ++i) {
    const MInst& a = insts[first + i];
    defs_of(a, dg, dv);
    uses_of(a, ug, uv);
    for (std::size_t j = i + 1; j < n; ++j) {
      const MInst& b = insts[first + j];
      defs_of(b, dg2, dv2);
      uses_of(b, ug2, uv2);
      // RAW (b reads a's result) carries a's latency; WAR/WAW only
      // constrain order — the consumer may issue the same cycle.
      bool raw = false, order = false;
      for (Gpr g : dg) {
        raw |= std::count(ug2.begin(), ug2.end(), g) > 0;
        order |= std::count(dg2.begin(), dg2.end(), g) > 0;
      }
      for (Vr v : dv) {
        raw |= std::count(uv2.begin(), uv2.end(), v) > 0;
        order |= std::count(dv2.begin(), dv2.end(), v) > 0;
      }
      for (Gpr g : ug) order |= std::count(dg2.begin(), dg2.end(), g) > 0;
      for (Vr v : uv) order |= std::count(dv2.begin(), dv2.end(), v) > 0;
      // Memory: stores are ordered against all other memory operations
      // (bases may alias; prefetches are hints and stay free).
      const bool a_mem = touches_memory(a) && a.op != MOp::kPrefetch;
      const bool b_mem = touches_memory(b) && b.op != MOp::kPrefetch;
      if (a_mem && b_mem && (writes_memory(a) || writes_memory(b)))
        order = true;
      if (raw) {
        preds[j].push_back({i, std::max(1, op_cost(a).latency)});
      } else if (order) {
        preds[j].push_back({i, 0});
      }
    }
  }

  // EFLAGS: spans carry no flags dataflow edges (nothing in a span reads
  // flags — conditional jumps are barriers), but when the next instruction
  // is a conditional jump the last flags-writer L feeds it. Earlier flag
  // writers are harmless before L (L overwrites the flags) and fatal after
  // it, so pin L behind every other flags-writer.
  if (cond_jump_follows) {
    std::size_t flags_last = n;
    for (std::size_t i = 0; i < n; ++i)
      if (writes_flags(insts[first + i])) flags_last = i;
    if (flags_last != n)
      for (std::size_t i = 0; i < flags_last; ++i)
        if (writes_flags(insts[first + i]))
          preds[flags_last].push_back({i, 0});
  }

  std::vector<std::vector<Edge>> succs(n);
  for (std::size_t j = 0; j < n; ++j)
    for (const Edge& e : preds[j]) succs[e.node].push_back({j, e.lat});

  // Critical-path height: latency of the instruction plus the tallest
  // successor. Edges always point forward (i < j), so a reverse walk is a
  // topological order.
  std::vector<long> cp(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    long tallest = 0;
    for (const Edge& e : succs[i]) tallest = std::max(tallest, cp[e.node]);
    cp[i] = op_cost(insts[first + i]).latency + tallest;
  }

  // Cycle simulation. ready[i]: earliest cycle i's operands are available;
  // port_free[p]: first cycle port p can accept another op (one per cycle);
  // port_issued[p]: total ops sent to p so far (the saturation tie-break).
  std::vector<long> ready(n, 0);
  std::vector<std::size_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = preds[i].size();
  std::array<long, kNumIssuePorts> port_free{};
  std::array<long, kNumIssuePorts> port_issued{};
  std::vector<bool> emitted(n, false);
  std::vector<std::size_t> order_out;
  order_out.reserve(n);

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t pick = n;
    int pick_port = -1;
    long pick_t = 0, pick_cp = 0, pick_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (emitted[i] || remaining[i] != 0) continue;
      const OpCost c = op_cost(insts[first + i]);
      // Cheapest port for i: earliest issue cycle, then least issued.
      int best_p = -1;
      long best_t = std::numeric_limits<long>::max(), best_load = 0;
      for (int p = 0; p < kNumIssuePorts; ++p) {
        if ((c.ports & (1u << p)) == 0) continue;
        const long t = std::max(ready[i], port_free[p]);
        if (best_p < 0 || t < best_t ||
            (t == best_t && port_issued[p] < best_load)) {
          best_p = p;
          best_t = t;
          best_load = port_issued[p];
        }
      }
      // Candidate order: earliest issue, then tallest critical path, then
      // least-saturated port, then original index (determinism).
      if (pick == n || best_t < pick_t ||
          (best_t == pick_t &&
           (cp[i] > pick_cp ||
            (cp[i] == pick_cp && best_load < pick_load)))) {
        pick = i;
        pick_port = best_p;
        pick_t = best_t;
        pick_cp = cp[i];
        pick_load = best_load;
      }
    }
    emitted[pick] = true;
    order_out.push_back(pick);
    port_free[pick_port] = pick_t + 1;
    ++port_issued[pick_port];
    for (const Edge& e : succs[pick]) {
      ready[e.node] = std::max(ready[e.node], pick_t + e.lat);
      if (remaining[e.node] > 0) --remaining[e.node];
    }
  }

  MInstList scheduled;
  scheduled.reserve(n);
  for (std::size_t i : order_out) scheduled.push_back(insts[first + i]);
  std::move(scheduled.begin(), scheduled.end(), insts.begin() + first);
}

ScheduleValidator g_validator = nullptr;

}  // namespace

OpCost op_cost(const MInst& inst) {
  // Latencies/ports after Agner Fog's Haswell–Skylake tables (docs/tuning.md
  // has the provenance): FMA/mul 5c on p0/p1, add 4c, loads 6c on p2/p3,
  // store-data on p4, shuffles 1c on p5, scalar ALU 1c on p0/p1/p5/p6.
  switch (inst.op) {
    case MOp::kVFma231:
    case MOp::kVFma4:
    case MOp::kVMul:
      return {5, ports({0, 1})};
    case MOp::kVAdd:
    case MOp::kVMax:
      return {4, ports({0, 1})};
    case MOp::kVZero:
    case MOp::kVMov:
      return {1, ports({0, 1, 5})};
    case MOp::kVLoad:
    case MOp::kVBroadcast:
    case MOp::kFLoad:
      return {6, ports({2, 3})};
    case MOp::kILoad:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
      return {5, ports({2, 3})};
    case MOp::kVStore:
    case MOp::kFStore:
    case MOp::kIStore:
      return {1, ports({4})};
    case MOp::kVShuf:
    case MOp::kVBlend:
    case MOp::kVExtractHigh:
      return {1, ports({5})};
    case MOp::kVPerm128:
      return {3, ports({5})};
    case MOp::kIMul:
    case MOp::kIMulImm:
      return {3, ports({1})};
    case MOp::kLea:
      return {1, ports({1, 5})};
    case MOp::kPrefetch:
      return {0, ports({2, 3})};
    case MOp::kIMovImm:
    case MOp::kIMov:
    case MOp::kIAdd:
    case MOp::kIAddImm:
    case MOp::kISub:
    case MOp::kISubImm:
    case MOp::kIShlImm:
    case MOp::kINeg:
    case MOp::kCmp:
    case MOp::kCmpImm:
      return {1, ports({0, 1, 5, 6})};
    default:
      // Control flow and pseudo-ops never enter a scheduled span.
      return {1, ports({6})};
  }
}

bool writes_flags(const MInst& inst) {
  switch (inst.op) {
    case MOp::kIAdd:
    case MOp::kIAddImm:
    case MOp::kISub:
    case MOp::kISubImm:
    case MOp::kIMul:
    case MOp::kIMulImm:
    case MOp::kIShlImm:
    case MOp::kINeg:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
    case MOp::kCmp:
    case MOp::kCmpImm:
      return true;
    default:
      return false;
  }
}

void set_schedule_validator(ScheduleValidator v) { g_validator = v; }

void schedule_instructions(MInstList& insts) {
#ifndef NDEBUG
  MInstList before;
  if (g_validator != nullptr) before = insts;
#endif
  std::size_t span_start = 0;
  for (std::size_t i = 0; i <= insts.size(); ++i) {
    if (i == insts.size() || is_barrier(insts[i])) {
      const bool cond = i < insts.size() && is_cond_jump(insts[i]);
      schedule_span(insts, span_start, i, cond);
      span_start = i + 1;
    }
  }
#ifndef NDEBUG
  if (g_validator != nullptr) g_validator(before, insts);
#endif
}

}  // namespace augem::opt
