#include "opt/schedule.hpp"

#include <algorithm>
#include <vector>

namespace augem::opt {

namespace {

bool is_barrier(const MInst& inst) {
  return is_control(inst) || inst.op == MOp::kComment;
}

bool is_load_like(const MInst& inst) {
  switch (inst.op) {
    case MOp::kVLoad:
    case MOp::kVBroadcast:
    case MOp::kFLoad:
    case MOp::kILoad:
      return true;
    default:
      return false;
  }
}

/// Schedules one straight-line span [first, last) in place.
void schedule_span(MInstList& insts, std::size_t first, std::size_t last) {
  const std::size_t n = last - first;
  if (n < 3) return;

  // Dependence edges: pred[i] = indices (span-relative) that must precede i.
  std::vector<std::vector<std::size_t>> preds(n);
  std::vector<Gpr> dg, ug, dg2, ug2;
  std::vector<Vr> dv, uv, dv2, uv2;
  for (std::size_t i = 0; i < n; ++i) {
    const MInst& a = insts[first + i];
    defs_of(a, dg, dv);
    uses_of(a, ug, uv);
    for (std::size_t j = i + 1; j < n; ++j) {
      const MInst& b = insts[first + j];
      defs_of(b, dg2, dv2);
      uses_of(b, ug2, uv2);
      bool dep = false;
      // RAW: b uses a's defs. WAR: b defines a's uses. WAW: same defs.
      for (Gpr g : dg)
        dep |= std::count(ug2.begin(), ug2.end(), g) > 0 ||
               std::count(dg2.begin(), dg2.end(), g) > 0;
      for (Vr v : dv)
        dep |= std::count(uv2.begin(), uv2.end(), v) > 0 ||
               std::count(dv2.begin(), dv2.end(), v) > 0;
      for (Gpr g : ug) dep |= std::count(dg2.begin(), dg2.end(), g) > 0;
      for (Vr v : uv) dep |= std::count(dv2.begin(), dv2.end(), v) > 0;
      // Memory: stores are ordered against all other memory operations
      // (bases may alias; prefetches are hints and stay free).
      const bool a_mem = touches_memory(a) && a.op != MOp::kPrefetch;
      const bool b_mem = touches_memory(b) && b.op != MOp::kPrefetch;
      if (a_mem && b_mem && (writes_memory(a) || writes_memory(b))) dep = true;
      if (dep) preds[j].push_back(i);
    }
  }

  // Greedy list scheduling: among ready instructions prefer loads (issue
  // early), then original order for determinism.
  std::vector<std::size_t> remaining_preds(n);
  for (std::size_t i = 0; i < n; ++i) remaining_preds[i] = preds[i].size();
  std::vector<std::vector<std::size_t>> succs(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t p : preds[i]) succs[p].push_back(i);

  std::vector<bool> emitted(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t pick = n;
    bool pick_is_load = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (emitted[i] || remaining_preds[i] != 0) continue;
      const bool load = is_load_like(insts[first + i]);
      if (pick == n || (load && !pick_is_load)) {
        pick = i;
        pick_is_load = load;
        if (load) break;  // earliest ready load wins
      }
    }
    emitted[pick] = true;
    order.push_back(pick);
    for (std::size_t s : succs[pick])
      if (remaining_preds[s] > 0) --remaining_preds[s];
  }

  MInstList scheduled;
  scheduled.reserve(n);
  for (std::size_t i : order) scheduled.push_back(insts[first + i]);
  std::move(scheduled.begin(), scheduled.end(), insts.begin() + first);
}

ScheduleValidator g_validator = nullptr;

}  // namespace

void set_schedule_validator(ScheduleValidator v) { g_validator = v; }

void schedule_instructions(MInstList& insts) {
#ifndef NDEBUG
  MInstList before;
  if (g_validator != nullptr) before = insts;
#endif
  std::size_t span_start = 0;
  for (std::size_t i = 0; i <= insts.size(); ++i) {
    if (i == insts.size() || is_barrier(insts[i])) {
      schedule_span(insts, span_start, i);
      span_start = i + 1;
    }
  }
#ifndef NDEBUG
  if (g_validator != nullptr) g_validator(before, insts);
#endif
}

}  // namespace augem::opt
