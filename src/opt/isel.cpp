#include "opt/isel.hpp"

#include "support/error.hpp"

namespace augem::opt {

bool needs_mul_temp(Isa isa) {
  return isa == Isa::kSse2 || isa == Isa::kAvx;
}

void emit_load(MInstList& out, Isa isa, int width, Vr dst, Mem m) {
  out.push_back(vload(dst, m, width, isa_is_vex(isa)));
}

void emit_broadcast(MInstList& out, Isa isa, int width, Vr dst, Mem m) {
  AUGEM_CHECK(width >= 2, "broadcast is a vector operation");
  out.push_back(vbroadcast(dst, m, width, isa_is_vex(isa)));
}

void emit_store(MInstList& out, Isa isa, int width, Vr src, Mem m) {
  out.push_back(vstore(src, m, width, isa_is_vex(isa)));
}

void emit_mul_add(MInstList& out, Isa isa, int width, Vr a, Vr b, Vr acc,
                  Vr tmp) {
  switch (isa) {
    case Isa::kSse2:
      // Table 1, SSE row: Mov r1,r2; Mul r0,r2; Add r2,r3.
      AUGEM_CHECK(tmp != Vr::kNoVr && tmp != a && tmp != b && tmp != acc,
                  "SSE Mul+Add needs a free temp");
      out.push_back(vmov(tmp, b, width, false));
      out.push_back(vmul(tmp, tmp, a, width, false));
      out.push_back(vadd(acc, acc, tmp, width, false));
      return;
    case Isa::kAvx:
      // Table 1, AVX row: Mul r0,r1,r2; Add r2,r3,r3.
      AUGEM_CHECK(tmp != Vr::kNoVr && tmp != a && tmp != b && tmp != acc,
                  "AVX Mul+Add needs a free temp");
      out.push_back(vmul(tmp, a, b, width, true));
      out.push_back(vadd(acc, acc, tmp, width, true));
      return;
    case Isa::kFma3:
      // Table 1, FMA3 row: FMA3 r0,r1,r3 (accumulator is an input too).
      out.push_back(vfma231(acc, a, b, width));
      return;
    case Isa::kFma4:
      // Table 1, FMA4 row: FMA4 r0,r1,r3,r3.
      out.push_back(vfma4(acc, a, b, acc, width));
      return;
  }
  AUGEM_FAIL("unknown ISA");
}

void emit_add_store(MInstList& out, Isa isa, int width, Vr t, Vr acc, Mem m) {
  const bool vex = isa_is_vex(isa);
  // Table 2: Add r1,r2[,r3]; Store.
  out.push_back(vadd(t, t, acc, width, vex));
  out.push_back(vstore(t, m, width, vex));
}

void emit_zero(MInstList& out, Isa isa, int width, Vr dst) {
  out.push_back(vzero(dst, width, isa_is_vex(isa)));
}

void emit_mov(MInstList& out, Isa isa, int width, Vr dst, Vr src) {
  out.push_back(vmov(dst, src, width, isa_is_vex(isa)));
}

void emit_rotate(MInstList& out, Isa isa, int width, Vr dst, Vr src, int r,
                 Vr tmp) {
  AUGEM_CHECK(r >= 1 && r < width, "rotation " << r << " out of range");
  const bool vex = isa_is_vex(isa);
  if (width == 2) {
    // shufpd $1: dst = [src1, src0]. With dst==src the SSE two-operand
    // form is legal too, but the allocator always hands us a fresh dst.
    if (!vex && dst != src) out.push_back(vmov(dst, src, width, false));
    if (!vex) {
      out.push_back(vshuf(dst, dst, dst, 0b01, width, false));
    } else {
      out.push_back(vshuf(dst, src, src, 0b01, width, true));
    }
    return;
  }
  AUGEM_CHECK(width == 4, "rotate supports widths 2 and 4");
  AUGEM_CHECK(vex, "256-bit rotate requires a VEX ISA");
  switch (r) {
    case 2:
      // [b2 b3 b0 b1]: swap the 128-bit halves.
      out.push_back(vperm128(dst, src, src, 0x01));
      return;
    case 1:
    case 3: {
      AUGEM_CHECK(tmp != Vr::kNoVr && tmp != dst && tmp != src,
                  "256-bit odd rotate needs a temp");
      // s = [b1 b0 b3 b2] (swap within halves), p = [b3 b2 b1 b0].
      out.push_back(vshuf(tmp, src, src, 0b0101, 4, true));      // s → tmp
      out.push_back(vperm128(dst, tmp, tmp, 0x01));              // p → dst
      if (r == 1) {
        // rot1 = [s0 p1 s2 p3] = [b1 b2 b3 b0]
        out.push_back(vblend(dst, tmp, dst, 0b1010, 4, true));
      } else {
        // rot3 = [p0 s1 p2 s3] = [b3 b0 b1 b2]
        out.push_back(vblend(dst, dst, tmp, 0b1010, 4, true));
      }
      return;
    }
    default:
      AUGEM_FAIL("unreachable rotation " << r);
  }
}

void emit_lane_gather(MInstList& out, Isa isa, int width, Vr dst,
                      const std::vector<Vr>& srcs) {
  AUGEM_CHECK(static_cast<int>(srcs.size()) == width, "one source per lane");
  for (Vr s : srcs)
    AUGEM_CHECK(s != dst, "gather destination must not alias a source");
  const bool vex = isa_is_vex(isa);
  if (width == 2) {
    if (srcs[0] == srcs[1]) {
      out.push_back(vmov(dst, srcs[0], width, vex));
      return;
    }
    // dst = [srcs0[0], srcs1[1]]
    if (!vex) {
      out.push_back(vmov(dst, srcs[0], 2, false));
      out.push_back(vblend(dst, dst, srcs[1], 0b10, 2, false));
    } else {
      out.push_back(vblend(dst, srcs[0], srcs[1], 0b10, 2, true));
    }
    return;
  }
  AUGEM_CHECK(width == 4 && vex, "lane gather supports xmm pairs or VEX ymm");
  // Pairwise blend tree: t0 covers lanes 0,1; reuse dst for it, then blend
  // in lanes 2,3 from the second pair.
  out.push_back(vblend(dst, srcs[0], srcs[1], 0b0010, 4, true));
  // Upper two lanes: blend srcs[2]/srcs[3] on lanes 2,3 — build into dst
  // via a second blend selecting per lane.
  out.push_back(vblend(dst, dst, srcs[2], 0b0100, 4, true));
  out.push_back(vblend(dst, dst, srcs[3], 0b1000, 4, true));
}

void emit_hsum(MInstList& out, Isa isa, int width, Vr dst, Vr src, Vr tmp,
               Vr tmp2) {
  const bool vex = isa_is_vex(isa);
  AUGEM_CHECK(tmp != Vr::kNoVr && tmp != src && tmp != dst, "hsum needs a temp");
  if (width == 1) {
    if (dst != src) out.push_back(vmov(dst, src, 1, vex));
    return;
  }
  if (width == 2) {
    // tmp = [src1, src1]; dst = src + tmp (scalar add on lane 0).
    if (!vex) {
      out.push_back(vmov(tmp, src, 2, false));
      out.push_back(vshuf(tmp, tmp, tmp, 0b11, 2, false));
      if (dst != src) out.push_back(vmov(dst, src, 2, false));
      out.push_back(vadd(dst, dst, tmp, 1, false));
    } else {
      out.push_back(vshuf(tmp, src, src, 0b11, 2, true));
      out.push_back(vadd(dst, src, tmp, 1, true));
    }
    return;
  }
  AUGEM_CHECK(width == 4 && vex, "width-4 hsum requires a VEX ISA");
  AUGEM_CHECK(tmp2 != Vr::kNoVr && tmp2 != tmp && tmp2 != src && tmp2 != dst,
              "width-4 hsum needs two temps");
  // tmp = high 128 bits; tmp = lo + hi (2 lanes); then 2-lane hsum.
  out.push_back(vextract_high(tmp, src));
  out.push_back(vadd(tmp, tmp, src, 2, true));  // xmm add: lanes 0,1
  out.push_back(vshuf(tmp2, tmp, tmp, 0b11, 2, true));
  out.push_back(vadd(dst, tmp, tmp2, 1, true));
}

}  // namespace augem::opt
