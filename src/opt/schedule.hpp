#pragma once
// Instruction scheduling (paper §2.3 lists Instruction Selection/Scheduling
// among the collectively applied machine-level optimizations).
//
// A list scheduler for straight-line instruction runs: builds the register
// and memory dependence graph and re-orders instructions so that loads and
// broadcasts issue as early as their dependences allow, hiding load latency
// under the multiply-add chains — the effect hand-written kernels obtain by
// interleaving loads of iteration k+1 with arithmetic of iteration k.
//
// Control-flow instructions act as barriers; only the straight-line spans
// between them are reordered, so scheduling a whole function body is safe.

#include "opt/minst.hpp"

namespace augem::opt {

/// Reorders `insts` in place. Semantics-preserving: respects RAW/WAR/WAW
/// register dependences, keeps stores ordered with all memory accesses, and
/// never moves anything across control flow.
void schedule_instructions(MInstList& insts);

/// Translation validation of the scheduler itself. In debug builds, when a
/// validator is installed, schedule_instructions hands it the instruction
/// list before and after reordering; the validator must abort (AUGEM_FAIL)
/// on any dataflow divergence. The analysis library installs a value-
/// numbering comparator at static-initialization time, so every target that
/// links it gets the assertion for free; release builds skip the copy and
/// the call entirely.
using ScheduleValidator = void (*)(const MInstList& before,
                                   const MInstList& after);
void set_schedule_validator(ScheduleValidator v);

}  // namespace augem::opt
