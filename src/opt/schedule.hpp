#pragma once
// Instruction scheduling (paper §2.3 lists Instruction Selection/Scheduling
// among the collectively applied machine-level optimizations).
//
// A list scheduler for straight-line instruction runs: builds the register
// and memory dependence graph and re-orders instructions under a
// port-pressure cost model — each opcode carries a latency and the set of
// issue ports that can execute it (Agner Fog's Haswell/Skylake tables,
// collapsed to the shape every recent x86 big core shares: two FMA ports,
// two load ports, one store port, one shuffle port). Selection is by
// earliest issue cycle, then critical-path height, then least-loaded port,
// then original order — the effect hand-written kernels obtain by hoisting
// loads of iteration k+1 over the multiply-add chains of iteration k and by
// interleaving independent work into latency bubbles.
//
// Control-flow instructions act as barriers; only the straight-line spans
// between them are reordered, so scheduling a whole function body is safe.
// A span that feeds a conditional jump additionally keeps its last
// flags-writer (the compare) as the final flags write of the span.

#include "opt/minst.hpp"

namespace augem::opt {

/// Issue ports in the cost model. Modeled on the Haswell/Skylake execution
/// engine: p0/p1 FMA + vector ALU, p2/p3 loads, p4 store-data, p5 shuffle
/// + vector ALU, p6 scalar ALU/branch.
inline constexpr int kNumIssuePorts = 7;

/// Per-opcode cost: result latency in cycles and the bitmask of issue
/// ports (bit p set ⇒ port p can execute it, one op per port per cycle).
struct OpCost {
  int latency = 1;
  unsigned ports = 0;
};

/// The latency/port table entry for `inst` (tests and docs read this too).
OpCost op_cost(const MInst& inst);

/// True for instructions that write EFLAGS (arithmetic and compares). The
/// scheduler uses this to keep the compare feeding a conditional jump the
/// last flags write in its span.
bool writes_flags(const MInst& inst);

/// Reorders `insts` in place. Semantics-preserving: respects RAW/WAR/WAW
/// register dependences, keeps stores ordered with all memory accesses,
/// keeps the flags producer of a conditional jump last among flag writers,
/// and never moves anything across control flow.
void schedule_instructions(MInstList& insts);

/// Translation validation of the scheduler itself. In debug builds, when a
/// validator is installed, schedule_instructions hands it the instruction
/// list before and after reordering; the validator must abort (AUGEM_FAIL)
/// on any dataflow divergence. The analysis library installs a value-
/// numbering comparator at static-initialization time, so every target that
/// links it gets the assertion for free; release builds skip the copy and
/// the call entirely.
using ScheduleValidator = void (*)(const MInstList& before,
                                   const MInstList& after);
void set_schedule_validator(ScheduleValidator v);

}  // namespace augem::opt
