#include "opt/verifier.hpp"

#include <map>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace augem::opt {

namespace {

bool is_cond_jump(MOp op) {
  return op == MOp::kJl || op == MOp::kJge || op == MOp::kJne ||
         op == MOp::kJe;
}

bool requires_vdst(MOp op) {
  switch (op) {
    case MOp::kVZero:
    case MOp::kVLoad:
    case MOp::kVBroadcast:
    case MOp::kVMov:
    case MOp::kVMul:
    case MOp::kVAdd:
    case MOp::kVFma231:
    case MOp::kVFma4:
    case MOp::kVShuf:
    case MOp::kVPerm128:
    case MOp::kVBlend:
    case MOp::kVExtractHigh:
    case MOp::kFLoad:
      return true;
    default:
      return false;
  }
}

bool requires_mem(MOp op) {
  switch (op) {
    case MOp::kVLoad:
    case MOp::kVStore:
    case MOp::kVBroadcast:
    case MOp::kFLoad:
    case MOp::kFStore:
    case MOp::kILoad:
    case MOp::kIStore:
    case MOp::kIAddMem:
    case MOp::kISubMem:
    case MOp::kIMulMem:
    case MOp::kLea:
    case MOp::kPrefetch:
      return true;
    default:
      return false;
  }
}

bool two_operand_constrained(MOp op) {
  return op == MOp::kVMul || op == MOp::kVAdd || op == MOp::kVShuf ||
         op == MOp::kVBlend;
}

}  // namespace

std::vector<VerifyIssue> verify_machine_code(const MInstList& insts,
                                             int num_f64_params) {
  std::vector<VerifyIssue> issues;
  auto issue = [&](std::size_t i, const std::string& msg) {
    issues.push_back({i, msg});
  };

  // Pass 1: labels.
  std::set<std::string> labels;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (insts[i].op == MOp::kLabel) {
      if (!labels.insert(insts[i].label).second)
        issue(i, "duplicate label '" + insts[i].label + "'");
    }
  }

  // Pass 2: linear walk.
  std::set<int> vr_written;
  for (int p = 0; p < num_f64_params && p < 8; ++p) vr_written.insert(p);
  std::set<int> gpr_written = {
      index_of(Gpr::rdi), index_of(Gpr::rsi), index_of(Gpr::rdx),
      index_of(Gpr::rcx), index_of(Gpr::r8),  index_of(Gpr::r9),
      index_of(Gpr::rsp)};

  std::vector<Gpr> push_stack;
  std::int64_t rsp_delta = 0;
  bool flags_valid = false;
  bool saw_ret = false;

  std::vector<Gpr> dg, ug;
  std::vector<Vr> dv, uv;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const MInst& inst = insts[i];

    // Operand completeness.
    if (requires_vdst(inst.op) && inst.vdst == Vr::kNoVr)
      issue(i, "missing vector destination");
    if (requires_mem(inst.op) && !inst.mem.valid())
      issue(i, "missing/invalid memory operand");
    if (inst.width != 1 && inst.width != 2 && inst.width != 4)
      issue(i, "invalid vector width " + std::to_string(inst.width));
    if (!inst.vex && inst.width == 4)
      issue(i, "256-bit operation without VEX encoding");
    if ((inst.op == MOp::kVPerm128 || inst.op == MOp::kVExtractHigh) &&
        !inst.vex)
      issue(i, "AVX-only operation without VEX encoding");

    // Two-operand encodings.
    if (!inst.vex && two_operand_constrained(inst.op) &&
        inst.vdst != inst.vsrc1)
      issue(i, "non-VEX two-operand form requires dst == src1");

    // Flags discipline.
    if (inst.op == MOp::kCmp || inst.op == MOp::kCmpImm) {
      flags_valid = true;
    } else if (is_cond_jump(inst.op)) {
      if (!flags_valid)
        issue(i, "conditional jump without an immediately preceding compare");
      if (labels.count(inst.label) == 0)
        issue(i, "jump to unknown label '" + inst.label + "'");
    } else if (inst.op == MOp::kJmp) {
      if (labels.count(inst.label) == 0)
        issue(i, "jump to unknown label '" + inst.label + "'");
    } else if (inst.op != MOp::kComment && inst.op != MOp::kLabel &&
               inst.op != MOp::kPrefetch) {
      // Arithmetic would clobber EFLAGS on real silicon: the generator
      // must re-compare before every conditional jump.
      flags_valid = false;
    }

    // Frame discipline.
    switch (inst.op) {
      case MOp::kPush:
        push_stack.push_back(inst.gsrc);
        break;
      case MOp::kPop:
        if (push_stack.empty()) {
          issue(i, "pop without matching push");
        } else if (push_stack.back() != inst.gdst) {
          issue(i, std::string("pop order mismatch: expected ") +
                       gpr_name(push_stack.back()) + ", got " +
                       gpr_name(inst.gdst));
          push_stack.pop_back();
        } else {
          push_stack.pop_back();
        }
        break;
      case MOp::kISubImm:
        if (inst.gdst == Gpr::rsp) rsp_delta += inst.imm;
        break;
      case MOp::kIAddImm:
        if (inst.gdst == Gpr::rsp) rsp_delta -= inst.imm;
        break;
      case MOp::kRet:
        saw_ret = true;
        if (!push_stack.empty())
          issue(i, std::to_string(push_stack.size()) +
                       " callee-saved register(s) not restored at ret");
        if (rsp_delta != 0)
          issue(i, "unbalanced stack frame at ret (delta " +
                       std::to_string(rsp_delta) + " bytes)");
        break;
      default:
        if (inst.op != MOp::kPush && inst.op != MOp::kPop) {
          defs_of(inst, dg, dv);
          for (Gpr g : dg)
            if (g == Gpr::rsp && inst.op != MOp::kISubImm &&
                inst.op != MOp::kIAddImm)
              issue(i, "unexpected write to rsp");
        }
        break;
    }

    // Initialization (linear order; the generator emits loop bodies after
    // their guards, so linear order covers every runtime-first execution).
    uses_of(inst, ug, uv);
    // Pushes in the prologue save caller-owned values: not "reads" of
    // generator-initialized state.
    if (inst.op == MOp::kPush) ug.clear();
    for (Vr v : uv)
      if (vr_written.count(index_of(v)) == 0)
        issue(i, std::string("read of uninitialized vector register ") +
                     vr_name(v, inst.width));
    for (Gpr g : ug)
      if (gpr_written.count(index_of(g)) == 0)
        issue(i, std::string("read of uninitialized register ") + gpr_name(g));
    defs_of(inst, dg, dv);
    for (Vr v : dv) vr_written.insert(index_of(v));
    for (Gpr g : dg) gpr_written.insert(index_of(g));
  }

  if (!saw_ret && !insts.empty())
    issue(insts.size() - 1, "function has no ret");
  return issues;
}

void check_machine_code(const MInstList& insts, int num_f64_params) {
  const std::vector<VerifyIssue> issues =
      verify_machine_code(insts, num_f64_params);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "machine-code verification failed (" << issues.size() << " issue(s)):";
  for (const VerifyIssue& vi : issues)
    os << "\n  [" << vi.index << "] " << vi.message << "  | "
       << insts[vi.index].to_string();
  AUGEM_FAIL(os.str());
}

}  // namespace augem::opt
