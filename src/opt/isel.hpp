#pragma once
// Instruction selection rules (paper Tables 1-4).
//
// Each helper emits the machine instructions one abstract template
// operation maps to on a given ISA. This file IS the paper's portability
// claim in code: the template optimizers are ISA-agnostic and call these
// helpers; retargeting SSE2 → AVX → FMA3 → FMA4 changes *only* the
// sequences below.
//
//   Table 1 (mmCOMP):   Load;  Mul+Add → {Mov,Mul,Add} (SSE)
//                                       | {Mul,Add}     (AVX)
//                                       | {FMA3}        | {FMA4}
//   Table 2 (mmSTORE):  Load; Add; Store
//   Table 3 (mvCOMP):   Load; Mul+Add (as Table 1); Store
//   Table 4 (Unrolled): Vld; Vdup; Shuf — plus the rotation/gather
//                       sequences the Shuf strategy needs on 256-bit AVX
//                       (vshufpd/vperm2f128/vblendpd).

#include "opt/minst.hpp"
#include "support/arch.hpp"

namespace augem::opt {

/// True when the ISA needs a separate destination register for Mul before
/// Add (SSE and AVX rows of Table 1); false for the fused FMA3/FMA4 rows.
bool needs_mul_temp(Isa isa);

/// Load `width` doubles: movsd / movupd / vmovupd.
void emit_load(MInstList& out, Isa isa, int width, Vr dst, Mem m);

/// Broadcast-load one double into all lanes: the paper's Vdup
/// (movddup on 128-bit, vbroadcastsd on 256-bit).
void emit_broadcast(MInstList& out, Isa isa, int width, Vr dst, Mem m);

/// Store `width` doubles.
void emit_store(MInstList& out, Isa isa, int width, Vr src, Mem m);

/// acc += a * b, per the Mul/Add rows of Tables 1/3.
/// `tmp` is consumed only when needs_mul_temp(isa); it may equal neither
/// a, b nor acc.
void emit_mul_add(MInstList& out, Isa isa, int width, Vr a, Vr b, Vr acc,
                  Vr tmp);

/// [m] = t + acc where t already holds the loaded destination element(s)
/// (Table 2's Add+Store). Clobbers t.
void emit_add_store(MInstList& out, Isa isa, int width, Vr t, Vr acc, Mem m);

/// Zero a register (accumulator initialization).
void emit_zero(MInstList& out, Isa isa, int width, Vr dst);

/// Full-register copy.
void emit_mov(MInstList& out, Isa isa, int width, Vr dst, Vr src);

/// dst = rotate_lanes(src, r): dst[i] = src[(i + r) mod width].
/// The Shuf strategy's Shufi step (§3.4). May clobber tmp (width 4 only).
/// r must be in [1, width-1].
void emit_rotate(MInstList& out, Isa isa, int width, Vr dst, Vr src, int r,
                 Vr tmp);

/// dst[i] = srcs[i][i] — gathers the lane-aligned diagonal of `width`
/// source registers (unscrambling Shuf accumulators at store time).
/// srcs[i] is the register providing lane i; registers may repeat.
/// dst must differ from every entry of srcs.
void emit_lane_gather(MInstList& out, Isa isa, int width, Vr dst,
                      const std::vector<Vr>& srcs);

/// dst(lane 0) = horizontal sum of src's `width` lanes. Clobbers tmp and,
/// for width 4, tmp2. dst may equal src.
void emit_hsum(MInstList& out, Isa isa, int width, Vr dst, Vr src, Vr tmp,
               Vr tmp2);

}  // namespace augem::opt
