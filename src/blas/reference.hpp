#pragma once
// Straightforward reference implementations of every BLAS operation the
// evaluation uses. These are (a) the test oracle for all optimized paths
// and (b) the "reference" series some ablations report.

#include "blas/types.hpp"

namespace augem::blas::ref {

/// C(m×n) = alpha * op(A)(m×k) * op(B)(k×n) + beta * C.
void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc);

/// y(m) = alpha * A(m×n) * x(n) + beta * y.
void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* x, double beta, double* y);

/// y(n) = alpha * A^T * x + beta * y (A is m×n).
void gemv_t(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y);

/// y += alpha * x.
void axpy(index_t n, double alpha, const double* x, double* y);

/// dot(x, y).
double dot(index_t n, const double* x, const double* y);

/// x *= alpha.
void scal(index_t n, double alpha, double* x);

/// A(m×n) += alpha * x * y^T.
void ger(index_t m, index_t n, double alpha, const double* x, const double* y,
         double* a, index_t lda);

/// C(m×n) = alpha * A_sym * B + beta * C (kLeft) or
/// alpha * B * A_sym + beta * C (kRight); A symmetric, stored in triangle
/// `uplo`, m×m on the left / n×n on the right. netlib semantics: beta==0
/// overwrites, alpha==0 reduces to the beta update with A/B unread.
void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc);

/// C(n×n) = alpha * op(A) * op(A)^T + beta * C, triangle `uplo` of C
/// updated; op(A) is n×k (A is n×k for kNo, k×n for kYes).
void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
          const double* a, index_t lda, double beta, double* c, index_t ldc);

/// C(n×n) = alpha * (op(A)*op(B)^T + op(B)*op(A)^T) + beta * C, triangle
/// `uplo` of C updated; op(A), op(B) are n×k.
void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
           const double* a, index_t lda, const double* b, index_t ldb,
           double beta, double* c, index_t ldc);

/// B(m×n) = alpha * op(A) * B (kLeft) or alpha * B * op(A) (kRight);
/// A triangular (non-unit diagonal) stored in triangle `uplo`. alpha==0
/// sets B to zero without reading A (netlib dtrmm).
void trmm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb);

/// Solves op(A) * X = alpha * B (kLeft) or X * op(A) = alpha * B (kRight)
/// in place in B; A triangular (non-unit diagonal) stored in triangle
/// `uplo`. Rejects zero and non-finite pivots (a NaN diagonal must error,
/// not silently flood the solution with NaN). alpha==0 sets B to zero
/// without reading A.
void trsm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb);

}  // namespace augem::blas::ref
