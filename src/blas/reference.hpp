#pragma once
// Straightforward reference implementations of every BLAS operation the
// evaluation uses. These are (a) the test oracle for all optimized paths
// and (b) the "reference" series some ablations report.

#include "blas/types.hpp"

namespace augem::blas::ref {

/// C(m×n) = alpha * op(A)(m×k) * op(B)(k×n) + beta * C.
void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc);

/// y(m) = alpha * A(m×n) * x(n) + beta * y.
void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* x, double beta, double* y);

/// y(n) = alpha * A^T * x + beta * y (A is m×n).
void gemv_t(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y);

/// y += alpha * x.
void axpy(index_t n, double alpha, const double* x, double* y);

/// dot(x, y).
double dot(index_t n, const double* x, const double* y);

/// x *= alpha.
void scal(index_t n, double alpha, double* x);

/// A(m×n) += alpha * x * y^T.
void ger(index_t m, index_t n, double alpha, const double* x, const double* y,
         double* a, index_t lda);

/// C(m×n) = alpha * A * B + beta * C, A symmetric m×m stored in its lower
/// triangle (Side=Left, Uplo=Lower).
void symm(index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* b, index_t ldb, double beta, double* c, index_t ldc);

/// C(n×n) = alpha * A(n×k) * A^T + beta * C, lower triangle updated.
void syrk(index_t n, index_t k, double alpha, const double* a, index_t lda,
          double beta, double* c, index_t ldc);

/// C(n×n) = alpha * (A*B^T + B*A^T) + beta * C, lower triangle updated.
void syr2k(index_t n, index_t k, double alpha, const double* a, index_t lda,
           const double* b, index_t ldb, double beta, double* c, index_t ldc);

/// B(m×n) = L * B, L unit-free lower-triangular m×m (Side=Left).
void trmm(index_t m, index_t n, const double* l, index_t ldl, double* b,
          index_t ldb);

/// B(m×n) = L^{-1} * B (forward substitution; Side=Left, Lower, NonUnit).
void trsm(index_t m, index_t n, const double* l, index_t ldl, double* b,
          index_t ldb);

}  // namespace augem::blas::ref
