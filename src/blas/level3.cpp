#include "blas/level3.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/scratch.hpp"

namespace augem::blas {

namespace {

void beta_scale_triangle(Uplo uplo, index_t n, double beta, double* c,
                         index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    if (uplo == Uplo::kLower)
      beta_scale(&at(c, ldc, j, j), n - j, beta);
    else
      beta_scale(&at(c, ldc, 0, j), j + 1, beta);
  }
}

void check_pivot(double piv) {
  AUGEM_CHECK(std::isfinite(piv) && piv != 0.0,
              "non-finite or zero pivot in triangular solve");
}

void zero_matrix(index_t m, index_t n, double* b, index_t ldb) {
  for (index_t j = 0; j < n; ++j) beta_scale(&at(b, ldb, 0, j), m, 0.0);
}

}  // namespace

void level3_symm(const Level3Config& cfg, Side side, Uplo uplo, index_t m,
                 index_t n, double alpha, const double* a, index_t lda,
                 const double* b, index_t ldb, double beta, double* c,
                 index_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (alpha == 0.0) {  // netlib: beta update only, A and B unread
    for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
    return;
  }
  const index_t ka = side == Side::kLeft ? m : n;
  const index_t kc = std::min(cfg.ctx.sizes.kc, ka);
  const index_t jw = default_jr_width(n, cfg.ctx.jr_granule);
  ScratchLease storage(PackedB::storage_doubles(ka, n, kc),
                       Scratch::kLevel3PackB);
  PackedB pb(ka, n, kc, jw, storage.data());
  if (side == Side::kLeft) {
    // Panel = B, packed once; the symmetric expansion happens in the
    // A-packer, which reads only the stored triangle through sym_at.
    pb.pack_rows(
        0, ka,
        [&](index_t k0, index_t j0, index_t kcq, index_t w, double* dst) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t j = 0; j < w; ++j)
              dst[l * w + j] = at(b, ldb, k0 + l, j0 + j);
        },
        cfg.ctx, cfg.stats);
    blocked_gemm_prepacked(
        m, 0, n, 0, ka, pb, beta, c, ldc, cfg.ctx, cfg.kernel,
        [&](index_t i0, index_t p0, index_t mc, index_t kcq, double* pa) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t i = 0; i < mc; ++i)
              pa[l * mc + i] =
                  alpha * sym_at(a, lda, uplo, i0 + i, p0 + l);
        },
        cfg.stats);
  } else {
    // Panel = the expanded symmetric A (n×n), packed once; B streams
    // through the A-packer unchanged.
    pb.pack_rows(
        0, ka,
        [&](index_t k0, index_t j0, index_t kcq, index_t w, double* dst) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t j = 0; j < w; ++j)
              dst[l * w + j] = sym_at(a, lda, uplo, k0 + l, j0 + j);
        },
        cfg.ctx, cfg.stats);
    blocked_gemm_prepacked(
        m, 0, n, 0, ka, pb, beta, c, ldc, cfg.ctx, cfg.kernel,
        [&](index_t i0, index_t p0, index_t mc, index_t kcq, double* pa) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t i = 0; i < mc; ++i)
              pa[l * mc + i] = alpha * at(b, ldb, i0 + i, p0 + l);
        },
        cfg.stats);
  }
}

namespace {

/// Shared SYRK/SYR2K core: walks C's column blocks, computing the diagonal
/// block into a dense temporary (so only the stored triangle of C is
/// touched) and the off-diagonal rows directly — both from the same packed
/// op(X)^T panel chunks.
struct RankUpdatePanel {
  const double* x;
  index_t ldx;
  Trans trans;
};

void pack_rank_panel(PackedB& pb, const RankUpdatePanel& p,
                     const Level3Config& cfg) {
  pb.pack_rows(
      0, pb.k(),
      [&](index_t k0, index_t j0, index_t kcq, index_t w, double* dst) {
        // Element (l, j) of op(X)^T = op(X)(j, l).
        for (index_t l = 0; l < kcq; ++l)
          for (index_t j = 0; j < w; ++j)
            dst[l * w + j] = op_at(p.x, p.ldx, p.trans, j0 + j, k0 + l);
      },
      cfg.ctx, cfg.stats);
}

void rank_update_sweep(const Level3Config& cfg, Uplo uplo, index_t n,
                       index_t k, double alpha, const RankUpdatePanel& left1,
                       PackedB& panel1, const RankUpdatePanel* left2,
                       PackedB* panel2, double* c, index_t ldc) {
  const index_t nbk = cfg.block;
  ScratchLease tmp(static_cast<std::size_t>(nbk * nbk), Scratch::kLevel3TmpA);
  const auto left_packer = [](const RankUpdatePanel& p, index_t row0,
                              double coeff) {
    return [&p, row0, coeff](index_t i0, index_t p0, index_t mc, index_t kcq,
                             double* pa) {
      for (index_t l = 0; l < kcq; ++l)
        for (index_t i = 0; i < mc; ++i)
          pa[l * mc + i] =
              coeff * op_at(p.x, p.ldx, p.trans, row0 + i0 + i, p0 + l);
    };
  };
  for (index_t bj = 0; bj < n; bj += nbk) {
    const index_t nb = std::min(nbk, n - bj);
    // Diagonal block via the temporary (beta 0 overwrites stale contents).
    blocked_gemm_prepacked(nb, bj, bj + nb, 0, k, panel1, 0.0, tmp.data(), nb,
                           cfg.ctx, cfg.kernel, left_packer(left1, bj, 1.0),
                           cfg.stats);
    if (panel2 != nullptr)
      blocked_gemm_prepacked(nb, bj, bj + nb, 0, k, *panel2, 1.0, tmp.data(),
                             nb, cfg.ctx, cfg.kernel,
                             left_packer(*left2, bj, 1.0), cfg.stats);
    for (index_t jj = 0; jj < nb; ++jj) {
      const index_t ii0 = uplo == Uplo::kLower ? jj : 0;
      const index_t ii1 = uplo == Uplo::kLower ? nb : jj + 1;
      for (index_t ii = ii0; ii < ii1; ++ii)
        at(c, ldc, bj + ii, bj + jj) += alpha * tmp.data()[jj * nb + ii];
    }
    // Off-diagonal rows straight into C, consuming the same panel chunks.
    const index_t r0 = uplo == Uplo::kLower ? bj + nb : 0;
    const index_t rows = uplo == Uplo::kLower ? n - (bj + nb) : bj;
    if (rows <= 0) continue;
    blocked_gemm_prepacked(rows, bj, bj + nb, 0, k, panel1, 1.0,
                           &at(c, ldc, r0, bj), ldc, cfg.ctx, cfg.kernel,
                           left_packer(left1, r0, alpha), cfg.stats);
    if (panel2 != nullptr)
      blocked_gemm_prepacked(rows, bj, bj + nb, 0, k, *panel2, 1.0,
                             &at(c, ldc, r0, bj), ldc, cfg.ctx, cfg.kernel,
                             left_packer(*left2, r0, alpha), cfg.stats);
  }
}

}  // namespace

void level3_syrk(const Level3Config& cfg, Uplo uplo, Trans trans, index_t n,
                 index_t k, double alpha, const double* a, index_t lda,
                 double beta, double* c, index_t ldc) {
  if (n <= 0) return;
  beta_scale_triangle(uplo, n, beta, c, ldc);
  if (alpha == 0.0 || k <= 0) return;  // netlib: A unread

  const index_t kc = std::min(cfg.ctx.sizes.kc, k);
  ScratchLease storage(PackedB::storage_doubles(k, n, kc),
                       Scratch::kLevel3PackB);
  // jw = block so C's column blocks land on jr-chunk boundaries.
  PackedB panel(k, n, kc, cfg.block, storage.data());
  const RankUpdatePanel opa{a, lda, trans};
  pack_rank_panel(panel, opa, cfg);
  rank_update_sweep(cfg, uplo, n, k, alpha, opa, panel, nullptr, nullptr, c,
                    ldc);
}

void level3_syr2k(const Level3Config& cfg, Uplo uplo, Trans trans, index_t n,
                  index_t k, double alpha, const double* a, index_t lda,
                  const double* b, index_t ldb, double beta, double* c,
                  index_t ldc) {
  if (n <= 0) return;
  beta_scale_triangle(uplo, n, beta, c, ldc);
  if (alpha == 0.0 || k <= 0) return;  // netlib: A and B unread

  const index_t kc = std::min(cfg.ctx.sizes.kc, k);
  ScratchLease storage_b(PackedB::storage_doubles(k, n, kc),
                         Scratch::kLevel3PackB);
  ScratchLease storage_a(PackedB::storage_doubles(k, n, kc),
                         Scratch::kLevel3PackB2);
  PackedB panel_bt(k, n, kc, cfg.block, storage_b.data());
  PackedB panel_at(k, n, kc, cfg.block, storage_a.data());
  const RankUpdatePanel opa{a, lda, trans};
  const RankUpdatePanel opb{b, ldb, trans};
  // C = alpha*(op(A)*op(B)^T + op(B)*op(A)^T) + beta*C: op(A) rows pair
  // with the packed op(B)^T panel and vice versa; each panel is consumed
  // twice per column block (diagonal temporary + off-diagonal rows).
  pack_rank_panel(panel_bt, opb, cfg);
  pack_rank_panel(panel_at, opa, cfg);
  rank_update_sweep(cfg, uplo, n, k, alpha, opa, panel_bt, &opb, &panel_at, c,
                    ldc);
}

void level3_trmm(const Level3Config& cfg, Side side, Uplo uplo, Trans trans,
                 index_t m, index_t n, double alpha, const double* a,
                 index_t lda, double* b, index_t ldb) {
  if (m <= 0 || n <= 0) return;
  if (alpha == 0.0) {  // netlib dtrmm: B := 0, A unread
    zero_matrix(m, n, b, ldb);
    return;
  }
  if (side == Side::kLeft) {
    // B := alpha*op(tri(A))*B as ONE masked prepacked GEMM: B is packed
    // before the in-place overwrite starts, and the A-packer zeroes
    // everything outside the effective triangle (tri_at), so no block
    // decomposition of the triangle is needed.
    const index_t kc = std::min(cfg.ctx.sizes.kc, m);
    const index_t jw = default_jr_width(n, cfg.ctx.jr_granule);
    ScratchLease storage(PackedB::storage_doubles(m, n, kc),
                         Scratch::kLevel3PackB);
    PackedB pb(m, n, kc, jw, storage.data());
    pb.pack_rows(
        0, m,
        [&](index_t k0, index_t j0, index_t kcq, index_t w, double* dst) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t j = 0; j < w; ++j)
              dst[l * w + j] = at(b, ldb, k0 + l, j0 + j);
        },
        cfg.ctx, cfg.stats);
    blocked_gemm_prepacked(
        m, 0, n, 0, m, pb, 0.0, b, ldb, cfg.ctx, cfg.kernel,
        [&](index_t i0, index_t p0, index_t mc, index_t kcq, double* pa) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t i = 0; i < mc; ++i)
              pa[l * mc + i] =
                  alpha * tri_at(a, lda, uplo, trans, i0 + i, p0 + l);
        },
        cfg.stats);
  } else {
    // B := alpha*B*op(tri(A)): the masked triangle packs once as the
    // panel; B must be copied first because it is both the left operand
    // and the overwritten output across k-chunks.
    const index_t kc = std::min(cfg.ctx.sizes.kc, n);
    ScratchLease storage(PackedB::storage_doubles(n, n, kc),
                         Scratch::kLevel3PackB);
    ScratchLease copy(static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
                      Scratch::kLevel3TmpA);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        copy.data()[j * m + i] = at(b, ldb, i, j);
    const index_t jw = default_jr_width(n, cfg.ctx.jr_granule);
    PackedB pb(n, n, kc, jw, storage.data());
    pb.pack_rows(
        0, n,
        [&](index_t k0, index_t j0, index_t kcq, index_t w, double* dst) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t j = 0; j < w; ++j)
              dst[l * w + j] = tri_at(a, lda, uplo, trans, k0 + l, j0 + j);
        },
        cfg.ctx, cfg.stats);
    double* copied = copy.data();
    blocked_gemm_prepacked(
        m, 0, n, 0, n, pb, 0.0, b, ldb, cfg.ctx, cfg.kernel,
        [copied, m, alpha](index_t i0, index_t p0, index_t mc, index_t kcq,
                           double* pa) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t i = 0; i < mc; ++i)
              pa[l * mc + i] = alpha * copied[(p0 + l) * m + (i0 + i)];
        },
        cfg.stats);
  }
}

void level3_trsm(const Level3Config& cfg, Side side, Uplo uplo, Trans trans,
                 index_t m, index_t n, double alpha, const double* a,
                 index_t lda, double* b, index_t ldb) {
  if (m <= 0 || n <= 0) return;
  if (alpha == 0.0) {  // netlib dtrsm: B := 0, A unread
    zero_matrix(m, n, b, ldb);
    return;
  }
  if (alpha != 1.0)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) at(b, ldb, i, j) *= alpha;

  const bool upper = effective_upper(uplo, trans);
  const index_t nbk = cfg.block;
  if (side == Side::kLeft) {
    // The solved-panel reuse case: each solved block of X packs once
    // (chunk size = the solve block, so chunks align with solve order) and
    // every later trailing update consumes those same chunks.
    ScratchLease storage(PackedB::storage_doubles(m, n, nbk),
                         Scratch::kLevel3PackB);
    const index_t jw = default_jr_width(n, cfg.ctx.jr_granule);
    PackedB solved(m, n, nbk, jw, storage.data());
    const auto solved_writer = [&](index_t k0, index_t j0, index_t kcq,
                                   index_t w, double* dst) {
      for (index_t l = 0; l < kcq; ++l)
        for (index_t j = 0; j < w; ++j)
          dst[l * w + j] = at(b, ldb, k0 + l, j0 + j);
    };
    const index_t nblk = (m + nbk - 1) / nbk;
    for (index_t step = 0; step < nblk; ++step) {
      const index_t bi = (upper ? nblk - 1 - step : step) * nbk;
      const index_t mb = std::min(nbk, m - bi);
      const index_t s0 = upper ? bi + mb : 0;    // solved row range
      const index_t s1 = upper ? m : bi;
      if (s1 > s0) {
        // B_bi -= op(A)(bi, solved) * X(solved, :) from the packed chunks;
        // the coefficient region is strictly inside the effective
        // triangle, hence dense stored data.
        blocked_gemm_prepacked(
            mb, 0, n, s0, s1, solved, 1.0, &at(b, ldb, bi, 0), ldb, cfg.ctx,
            cfg.kernel,
            [&](index_t i0, index_t p0, index_t mc, index_t kcq, double* pa) {
              for (index_t l = 0; l < kcq; ++l)
                for (index_t i = 0; i < mc; ++i)
                  pa[l * mc + i] =
                      -op_at(a, lda, trans, bi + i0 + i, p0 + l);
            },
            cfg.stats);
      }
      // Scalar in-block substitution (the paper's §5 TRSM caveat).
      for (index_t j = 0; j < n; ++j) {
        for (index_t s = 0; s < mb; ++s) {
          const index_t ii = upper ? mb - 1 - s : s;
          double acc = at(b, ldb, bi + ii, j);
          const index_t p0 = upper ? ii + 1 : 0;
          const index_t p1 = upper ? mb : ii;
          for (index_t p = p0; p < p1; ++p)
            acc -=
                op_at(a, lda, trans, bi + ii, bi + p) * at(b, ldb, bi + p, j);
          const double piv = op_at(a, lda, trans, bi + ii, bi + ii);
          check_pivot(piv);
          at(b, ldb, bi + ii, j) = acc / piv;
        }
      }
      // Publish the solved block into the shared panel for later updates.
      solved.pack_rows(bi, bi + mb, solved_writer, cfg.ctx, cfg.stats);
    }
  } else {
    // X*op(A) = B: the masked triangle packs once (A is read-only); the
    // left operand of every trailing update is the already-solved columns
    // of B, packed on demand.
    ScratchLease storage(PackedB::storage_doubles(n, n, nbk),
                         Scratch::kLevel3PackB);
    PackedB tri(n, n, nbk, nbk, storage.data());
    tri.pack_rows(
        0, n,
        [&](index_t k0, index_t j0, index_t kcq, index_t w, double* dst) {
          for (index_t l = 0; l < kcq; ++l)
            for (index_t j = 0; j < w; ++j)
              dst[l * w + j] = tri_at(a, lda, uplo, trans, k0 + l, j0 + j);
        },
        cfg.ctx, cfg.stats);
    const index_t nblk = (n + nbk - 1) / nbk;
    for (index_t step = 0; step < nblk; ++step) {
      const index_t bj = (upper ? step : nblk - 1 - step) * nbk;
      const index_t jb = std::min(nbk, n - bj);
      const index_t s0 = upper ? 0 : bj + jb;    // solved column range
      const index_t s1 = upper ? bj : n;
      if (s1 > s0) {
        blocked_gemm_prepacked(
            m, bj, bj + jb, s0, s1, tri, 1.0, &at(b, ldb, 0, bj), ldb,
            cfg.ctx, cfg.kernel,
            [&](index_t i0, index_t p0, index_t mc, index_t kcq, double* pa) {
              for (index_t l = 0; l < kcq; ++l)
                for (index_t i = 0; i < mc; ++i)
                  pa[l * mc + i] = -at(b, ldb, i0 + i, p0 + l);
            },
            cfg.stats);
      }
      for (index_t s = 0; s < jb; ++s) {
        const index_t jj = upper ? s : jb - 1 - s;
        const double piv = op_at(a, lda, trans, bj + jj, bj + jj);
        check_pivot(piv);
        const index_t p0 = upper ? 0 : jj + 1;
        const index_t p1 = upper ? jj : jb;
        for (index_t i = 0; i < m; ++i) {
          double acc = at(b, ldb, i, bj + jj);
          for (index_t p = p0; p < p1; ++p)
            acc -=
                at(b, ldb, i, bj + p) * op_at(a, lda, trans, bj + p, bj + jj);
          at(b, ldb, i, bj + jj) = acc / piv;
        }
      }
    }
  }
}

}  // namespace augem::blas
