// vendorsim: the Intel MKL / AMD ACML stand-in (DESIGN.md §2).
//
// Expert-tuned kernels written directly in AVX2+FMA intrinsics over the
// same Goto blocking — i.e. what a vendor library's hand assembly achieves
// on this machine. The paper's central claim is that AUGEM's *generated*
// assembly matches or slightly beats this class of code.
//
// Compiled with -mavx2 -mfma (see CMakeLists).

#include <immintrin.h>

#include "blas/driver.hpp"
#include "blas/libraries.hpp"

namespace augem::blas {

namespace {

/// 8×4 register tile: 8 ymm accumulators, FMA throughput-bound.
void block_kernel_avx2(index_t mc, index_t nc, index_t kc, const double* pa,
                       const double* pb, double* c, index_t ldc) {
  const index_t m_main = mc / 8 * 8;
  const index_t n_main = nc / 4 * 4;
  for (index_t j = 0; j < n_main; j += 4) {
    for (index_t i = 0; i < m_main; i += 8) {
      __m256d acc[2][4];
      for (int r = 0; r < 2; ++r)
        for (int q = 0; q < 4; ++q) acc[r][q] = _mm256_setzero_pd();
      for (index_t l = 0; l < kc; ++l) {
        const __m256d a0 = _mm256_loadu_pd(pa + l * mc + i);
        const __m256d a1 = _mm256_loadu_pd(pa + l * mc + i + 4);
        for (int q = 0; q < 4; ++q) {
          const __m256d bq = _mm256_broadcast_sd(pb + l * nc + j + q);
          acc[0][q] = _mm256_fmadd_pd(a0, bq, acc[0][q]);
          acc[1][q] = _mm256_fmadd_pd(a1, bq, acc[1][q]);
        }
      }
      for (int q = 0; q < 4; ++q) {
        double* cq = &at(c, ldc, i, j + q);
        _mm256_storeu_pd(cq, _mm256_add_pd(_mm256_loadu_pd(cq), acc[0][q]));
        _mm256_storeu_pd(cq + 4,
                         _mm256_add_pd(_mm256_loadu_pd(cq + 4), acc[1][q]));
      }
    }
  }
  // Edges in scalar code.
  for (index_t j = 0; j < nc; ++j) {
    const index_t i0 = j < n_main ? m_main : 0;
    for (index_t i = i0; i < mc; ++i) {
      double accs = 0.0;
      for (index_t l = 0; l < kc; ++l) accs += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += accs;
    }
  }
}

class VendorSim final : public Blas {
 public:
  VendorSim() : ctx_(threaded_gemm_context(default_block_sizes(host_arch()))) {}

  std::string name() const override { return "vendorsim"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    blocked_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ctx_,
                 block_kernel_avx2);
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    beta_scale(y, m, beta);
    if (alpha == 0.0) return;
    for (index_t j = 0; j < n; ++j) {
      const double s = alpha * x[j];
      const double* col = &at(a, lda, 0, j);
      const __m256d vs = _mm256_set1_pd(s);
      index_t i = 0;
      for (; i + 8 <= m; i += 8) {
        const __m256d y0 = _mm256_loadu_pd(y + i);
        const __m256d y1 = _mm256_loadu_pd(y + i + 4);
        _mm256_storeu_pd(y + i,
                         _mm256_fmadd_pd(_mm256_loadu_pd(col + i), vs, y0));
        _mm256_storeu_pd(
            y + i + 4, _mm256_fmadd_pd(_mm256_loadu_pd(col + i + 4), vs, y1));
      }
      for (; i < m; ++i) y[i] += col[i] * s;
    }
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    if (alpha == 0.0) return;
    const __m256d va = _mm256_set1_pd(alpha);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_pd(y + i, _mm256_fmadd_pd(_mm256_loadu_pd(x + i), va,
                                              _mm256_loadu_pd(y + i)));
      _mm256_storeu_pd(y + i + 4,
                       _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), va,
                                       _mm256_loadu_pd(y + i + 4)));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
  }

  double dot(index_t n, const double* x, const double* y) override {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                             acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                             _mm256_loadu_pd(y + i + 4), acc1);
    }
    acc0 = _mm256_add_pd(acc0, acc1);
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc0);
    double total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i) total += x[i] * y[i];
    return total;
  }

  void scal(index_t n, double alpha, double* x) override {
    if (alpha == 0.0) {
      for (index_t i = 0; i < n; ++i) x[i] = 0.0;
      return;
    }
    const __m256d va = _mm256_set1_pd(alpha);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
      _mm256_storeu_pd(x + i + 4,
                       _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), va));
    }
    for (; i < n; ++i) x[i] *= alpha;
  }

 private:
  GemmContext ctx_;
};

}  // namespace

std::unique_ptr<Blas> make_vendorsim() { return std::make_unique<VendorSim>(); }

}  // namespace augem::blas
