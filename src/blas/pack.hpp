#pragma once
// Panel packing for the Goto-style blocked GEMM driver (paper §4.1 builds
// its kernel on "a general block-partitioned algorithm originally developed
// by Goto").
//
// The generated (and baseline) block kernels consume:
//   * packed A: an mc×kc block stored column-major with leading dimension
//     exactly mc — element (i, l) at pa[l*mc + i]. Alpha is folded in here.
//   * packed B: a kc×nc block stored row-major — element (l, j) at
//     pb[l*nc + j] — making the unrolled j elements contiguous, which both
//     of the paper's vectorization strategies rely on (BLayout::kRowPanel).
//
// Both packers read through op(X), so the same kernels serve the
// transposed cases SYRK/SYR2K need.

#include "blas/types.hpp"

namespace augem::blas {

/// pa[l*mc + i] = alpha * op(A)(i0+i, k0+l) for i<mc, l<kc.
void pack_a_block(Trans ta, const double* a, index_t lda, index_t i0,
                  index_t k0, index_t mc, index_t kc, double alpha,
                  double* pa);

/// pb[l*nc + j] = op(B)(k0+l, j0+j) for l<kc, j<nc.
void pack_b_block(Trans tb, const double* b, index_t ldb, index_t k0,
                  index_t j0, index_t kc, index_t nc, double* pb);

}  // namespace augem::blas
