// gotosim: the GotoBLAS2 1.13 stand-in (DESIGN.md §2).
//
// Goto-style blocking with hand-written 128-bit SSE2/SSE3 kernels and
// *no* AVX or FMA — the paper attributes GotoBLAS's 47-90% losses on Sandy
// Bridge / Piledriver exactly to that missing ISA support, so this baseline
// reproduces the cause, not just the number.
//
// This translation unit is compiled without AVX flags; every vector op is
// an explicit _mm_* intrinsic.

#include <emmintrin.h>  // SSE2
#include <pmmintrin.h>  // SSE3 (movddup)

#include "blas/driver.hpp"
#include "blas/libraries.hpp"

namespace augem::blas {

namespace {

/// 4×2 register tile over packed panels, SSE2 mul+add (no FMA).
void block_kernel_sse(index_t mc, index_t nc, index_t kc, const double* pa,
                      const double* pb, double* c, index_t ldc) {
  const index_t m_main = mc / 4 * 4;
  const index_t n_main = nc / 2 * 2;
  for (index_t j = 0; j < n_main; j += 2) {
    for (index_t i = 0; i < m_main; i += 4) {
      __m128d c00 = _mm_setzero_pd(), c10 = _mm_setzero_pd();
      __m128d c01 = _mm_setzero_pd(), c11 = _mm_setzero_pd();
      for (index_t l = 0; l < kc; ++l) {
        const __m128d a0 = _mm_loadu_pd(pa + l * mc + i);
        const __m128d a1 = _mm_loadu_pd(pa + l * mc + i + 2);
        const __m128d b0 = _mm_loaddup_pd(pb + l * nc + j);
        const __m128d b1 = _mm_loaddup_pd(pb + l * nc + j + 1);
        c00 = _mm_add_pd(c00, _mm_mul_pd(a0, b0));
        c10 = _mm_add_pd(c10, _mm_mul_pd(a1, b0));
        c01 = _mm_add_pd(c01, _mm_mul_pd(a0, b1));
        c11 = _mm_add_pd(c11, _mm_mul_pd(a1, b1));
      }
      double* c0 = &at(c, ldc, i, j);
      double* c1 = &at(c, ldc, i, j + 1);
      _mm_storeu_pd(c0, _mm_add_pd(_mm_loadu_pd(c0), c00));
      _mm_storeu_pd(c0 + 2, _mm_add_pd(_mm_loadu_pd(c0 + 2), c10));
      _mm_storeu_pd(c1, _mm_add_pd(_mm_loadu_pd(c1), c01));
      _mm_storeu_pd(c1 + 2, _mm_add_pd(_mm_loadu_pd(c1 + 2), c11));
    }
  }
  // Edges: remaining rows and columns in scalar code.
  for (index_t j = 0; j < nc; ++j) {
    const index_t i0 = j < n_main ? m_main : 0;
    for (index_t i = i0; i < mc; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += acc;
    }
  }
}

class GotoSim final : public Blas {
 public:
  GotoSim() : ctx_(threaded_gemm_context(default_block_sizes(host_arch()))) {}

  std::string name() const override { return "gotosim"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    blocked_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ctx_,
                 block_kernel_sse);
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    beta_scale(y, m, beta);
    if (alpha == 0.0) return;
    for (index_t j = 0; j < n; ++j) {
      const double s = alpha * x[j];
      const double* col = &at(a, lda, 0, j);
      const __m128d vs = _mm_set1_pd(s);
      index_t i = 0;
      for (; i + 2 <= m; i += 2) {
        const __m128d av = _mm_loadu_pd(col + i);
        const __m128d yv = _mm_loadu_pd(y + i);
        _mm_storeu_pd(y + i, _mm_add_pd(yv, _mm_mul_pd(av, vs)));
      }
      for (; i < m; ++i) y[i] += col[i] * s;
    }
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    if (alpha == 0.0) return;
    const __m128d va = _mm_set1_pd(alpha);
    index_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128d x0 = _mm_loadu_pd(x + i);
      const __m128d x1 = _mm_loadu_pd(x + i + 2);
      _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), _mm_mul_pd(x0, va)));
      _mm_storeu_pd(y + i + 2,
                    _mm_add_pd(_mm_loadu_pd(y + i + 2), _mm_mul_pd(x1, va)));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
  }

  double dot(index_t n, const double* x, const double* y) override {
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    index_t i = 0;
    for (; i + 4 <= n; i += 4) {
      acc0 = _mm_add_pd(acc0,
                        _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i)));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_loadu_pd(x + i + 2),
                                         _mm_loadu_pd(y + i + 2)));
    }
    acc0 = _mm_add_pd(acc0, acc1);
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, acc0);
    double total = lanes[0] + lanes[1];
    for (; i < n; ++i) total += x[i] * y[i];
    return total;
  }

  void scal(index_t n, double alpha, double* x) override {
    if (alpha == 0.0) {  // overwrite, never multiply NaN/Inf payloads away
      for (index_t i = 0; i < n; ++i) x[i] = 0.0;
      return;
    }
    const __m128d va = _mm_set1_pd(alpha);
    index_t i = 0;
    for (; i + 2 <= n; i += 2)
      _mm_storeu_pd(x + i, _mm_mul_pd(_mm_loadu_pd(x + i), va));
    for (; i < n; ++i) x[i] *= alpha;
  }

 private:
  GemmContext ctx_;
};

}  // namespace

std::unique_ptr<Blas> make_gotosim() { return std::make_unique<GotoSim>(); }

}  // namespace augem::blas
