#include "blas/pack.hpp"

namespace augem::blas {

void pack_a_block(Trans ta, const double* a, index_t lda, index_t i0,
                  index_t k0, index_t mc, index_t kc, double alpha,
                  double* pa) {
  if (ta == Trans::kNo) {
    // Source columns are contiguous: copy column-by-column.
    for (index_t l = 0; l < kc; ++l) {
      const double* src = &at(a, lda, i0, k0 + l);
      double* dst = pa + l * mc;
      for (index_t i = 0; i < mc; ++i) dst[i] = alpha * src[i];
    }
  } else {
    for (index_t l = 0; l < kc; ++l) {
      double* dst = pa + l * mc;
      for (index_t i = 0; i < mc; ++i)
        dst[i] = alpha * at(a, lda, k0 + l, i0 + i);
    }
  }
}

void pack_b_block(Trans tb, const double* b, index_t ldb, index_t k0,
                  index_t j0, index_t kc, index_t nc, double* pb) {
  if (tb == Trans::kNo) {
    for (index_t j = 0; j < nc; ++j) {
      const double* src = &at(b, ldb, k0, j0 + j);
      for (index_t l = 0; l < kc; ++l) pb[l * nc + j] = src[l];
    }
  } else {
    for (index_t l = 0; l < kc; ++l) {
      double* dst = pb + l * nc;
      for (index_t j = 0; j < nc; ++j) dst[j] = at(b, ldb, j0 + j, k0 + l);
    }
  }
}

}  // namespace augem::blas
