#include "blas/reference.hpp"

#include "support/error.hpp"

namespace augem::blas::ref {

void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
  // netlib structure: scale C first (beta == 0 overwrites, so garbage /
  // NaN in C never propagates), and the alpha term only participates when
  // there is an actual k-sum to accumulate.
  for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
  if (k <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l)
        acc += op_at(a, lda, ta, i, l) * op_at(b, ldb, tb, l, j);
      at(c, ldc, i, j) += alpha * acc;
    }
  }
}

void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* x, double beta, double* y) {
  beta_scale(y, m, beta);
  if (n <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    const double s = alpha * x[j];
    for (index_t i = 0; i < m; ++i) y[i] += at(a, lda, i, j) * s;
  }
}

void gemv_t(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) {
  beta_scale(y, n, beta);
  if (m <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (index_t i = 0; i < m; ++i) acc += at(a, lda, i, j) * x[i];
    y[j] += alpha * acc;
  }
}

void axpy(index_t n, double alpha, const double* x, double* y) {
  if (alpha == 0.0) return;  // netlib daxpy: y untouched, even for NaN x
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot(index_t n, const double* x, const double* y) {
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void scal(index_t n, double alpha, double* x) {
  // alpha == 0 overwrites (same policy as beta_scale): "scale to nothing"
  // must not keep NaN/Inf alive in x.
  if (alpha == 0.0) {
    for (index_t i = 0; i < n; ++i) x[i] = 0.0;
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ger(index_t m, index_t n, double alpha, const double* x, const double* y,
         double* a, index_t lda) {
  if (alpha == 0.0) return;  // netlib dger early-out
  for (index_t j = 0; j < n; ++j) {
    const double s = alpha * y[j];
    for (index_t i = 0; i < m; ++i) at(a, lda, i, j) += x[i] * s;
  }
}

namespace {

/// Symmetric element (i, j) from a lower-triangle-stored matrix.
double sym_at(const double* a, index_t lda, index_t i, index_t j) {
  return i >= j ? at(a, lda, i, j) : at(a, lda, j, i);
}

}  // namespace

void symm(index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* b, index_t ldb, double beta, double* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < m; ++l)
        acc += sym_at(a, lda, i, l) * at(b, ldb, l, j);
      at(c, ldc, i, j) = alpha * acc + beta * at(c, ldc, i, j);
    }
  }
}

void syrk(index_t n, index_t k, double alpha, const double* a, index_t lda,
          double beta, double* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {  // lower triangle only
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l)
        acc += at(a, lda, i, l) * at(a, lda, j, l);
      at(c, ldc, i, j) = alpha * acc + beta * at(c, ldc, i, j);
    }
  }
}

void syr2k(index_t n, index_t k, double alpha, const double* a, index_t lda,
           const double* b, index_t ldb, double beta, double* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l)
        acc += at(a, lda, i, l) * at(b, ldb, j, l) +
               at(b, ldb, i, l) * at(a, lda, j, l);
      at(c, ldc, i, j) = alpha * acc + beta * at(c, ldc, i, j);
    }
  }
}

void trmm(index_t m, index_t n, const double* l, index_t ldl, double* b,
          index_t ldb) {
  // B = L*B in place: compute rows bottom-up so inputs stay unmodified.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = m - 1; i >= 0; --i) {
      double acc = 0.0;
      for (index_t p = 0; p <= i; ++p)
        acc += at(l, ldl, i, p) * at(b, ldb, p, j);
      at(b, ldb, i, j) = acc;
    }
  }
}

void trsm(index_t m, index_t n, const double* l, index_t ldl, double* b,
          index_t ldb) {
  // Forward substitution, column by column of B.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = at(b, ldb, i, j);
      for (index_t p = 0; p < i; ++p)
        acc -= at(l, ldl, i, p) * at(b, ldb, p, j);
      AUGEM_CHECK(at(l, ldl, i, i) != 0.0, "singular triangular factor");
      at(b, ldb, i, j) = acc / at(l, ldl, i, i);
    }
  }
}

}  // namespace augem::blas::ref
