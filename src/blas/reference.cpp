#include "blas/reference.hpp"

#include <cmath>

#include "support/error.hpp"

namespace augem::blas::ref {

void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
  // netlib structure: scale C first (beta == 0 overwrites, so garbage /
  // NaN in C never propagates), and the alpha term only participates when
  // there is an actual k-sum to accumulate.
  for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
  if (k <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l)
        acc += op_at(a, lda, ta, i, l) * op_at(b, ldb, tb, l, j);
      at(c, ldc, i, j) += alpha * acc;
    }
  }
}

void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* x, double beta, double* y) {
  beta_scale(y, m, beta);
  if (n <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    const double s = alpha * x[j];
    for (index_t i = 0; i < m; ++i) y[i] += at(a, lda, i, j) * s;
  }
}

void gemv_t(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) {
  beta_scale(y, n, beta);
  if (m <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (index_t i = 0; i < m; ++i) acc += at(a, lda, i, j) * x[i];
    y[j] += alpha * acc;
  }
}

void axpy(index_t n, double alpha, const double* x, double* y) {
  if (alpha == 0.0) return;  // netlib daxpy: y untouched, even for NaN x
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot(index_t n, const double* x, const double* y) {
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void scal(index_t n, double alpha, double* x) {
  // alpha == 0 overwrites (same policy as beta_scale): "scale to nothing"
  // must not keep NaN/Inf alive in x.
  if (alpha == 0.0) {
    for (index_t i = 0; i < n; ++i) x[i] = 0.0;
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ger(index_t m, index_t n, double alpha, const double* x, const double* y,
         double* a, index_t lda) {
  if (alpha == 0.0) return;  // netlib dger early-out
  for (index_t j = 0; j < n; ++j) {
    const double s = alpha * y[j];
    for (index_t i = 0; i < m; ++i) at(a, lda, i, j) += x[i] * s;
  }
}

namespace {

/// Walks c's stored triangle column by column, scaling with beta_scale
/// semantics (beta == 0 overwrites NaN/garbage instead of multiplying it).
void beta_scale_triangle(Uplo uplo, index_t n, double beta, double* c,
                         index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    if (uplo == Uplo::kLower)
      beta_scale(&at(c, ldc, j, j), n - j, beta);
    else
      beta_scale(&at(c, ldc, 0, j), j + 1, beta);
  }
}

/// The single pivot policy of every trsm in this repository: zero pivots
/// are singular, and non-finite pivots (NaN compares unequal to zero, so
/// `piv != 0.0` would wave NaN through) must be rejected too — dividing by
/// them silently floods whole columns of the solution with NaN/Inf.
void check_pivot(double piv) {
  AUGEM_CHECK(std::isfinite(piv) && piv != 0.0,
              "non-finite or zero pivot in triangular solve");
}

}  // namespace

void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
  if (alpha == 0.0) return;  // netlib dsymm: A and B are not read
  const index_t ka = side == Side::kLeft ? m : n;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < ka; ++l)
        acc += side == Side::kLeft
                   ? sym_at(a, lda, uplo, i, l) * at(b, ldb, l, j)
                   : at(b, ldb, i, l) * sym_at(a, lda, uplo, l, j);
      at(c, ldc, i, j) += alpha * acc;
    }
  }
}

void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
          const double* a, index_t lda, double beta, double* c, index_t ldc) {
  beta_scale_triangle(uplo, n, beta, c, ldc);
  if (alpha == 0.0 || k <= 0) return;  // netlib dsyrk: A is not read
  for (index_t j = 0; j < n; ++j) {
    const index_t i0 = uplo == Uplo::kLower ? j : 0;
    const index_t i1 = uplo == Uplo::kLower ? n : j + 1;
    for (index_t i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l)
        acc += op_at(a, lda, trans, i, l) * op_at(a, lda, trans, j, l);
      at(c, ldc, i, j) += alpha * acc;
    }
  }
}

void syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
           const double* a, index_t lda, const double* b, index_t ldb,
           double beta, double* c, index_t ldc) {
  beta_scale_triangle(uplo, n, beta, c, ldc);
  if (alpha == 0.0 || k <= 0) return;  // netlib dsyr2k: A and B not read
  for (index_t j = 0; j < n; ++j) {
    const index_t i0 = uplo == Uplo::kLower ? j : 0;
    const index_t i1 = uplo == Uplo::kLower ? n : j + 1;
    for (index_t i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l)
        acc += op_at(a, lda, trans, i, l) * op_at(b, ldb, trans, j, l) +
               op_at(b, ldb, trans, i, l) * op_at(a, lda, trans, j, l);
      at(c, ldc, i, j) += alpha * acc;
    }
  }
}

void trmm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb) {
  if (alpha == 0.0) {  // netlib dtrmm: B := 0, A not read
    for (index_t j = 0; j < n; ++j) beta_scale(&at(b, ldb, 0, j), m, 0.0);
    return;
  }
  const bool upper = effective_upper(uplo, trans);
  if (side == Side::kLeft) {
    // In-place row order: effective-upper rows read only rows below them
    // (still inputs when walking top-down); effective-lower the reverse.
    for (index_t j = 0; j < n; ++j) {
      for (index_t step = 0; step < m; ++step) {
        const index_t i = upper ? step : m - 1 - step;
        double acc = 0.0;
        const index_t p0 = upper ? i : 0;
        const index_t p1 = upper ? m : i + 1;
        for (index_t p = p0; p < p1; ++p)
          acc += tri_at(a, lda, uplo, trans, i, p) * at(b, ldb, p, j);
        at(b, ldb, i, j) = alpha * acc;
      }
    }
  } else {
    // B := alpha * B * op(A): column j of the result reads B columns in
    // op(A)'s column j support; effective-upper means p <= j (walk columns
    // right-to-left), effective-lower p >= j (left-to-right).
    for (index_t step = 0; step < n; ++step) {
      const index_t j = upper ? n - 1 - step : step;
      const index_t p0 = upper ? 0 : j;
      const index_t p1 = upper ? j + 1 : n;
      for (index_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (index_t p = p0; p < p1; ++p)
          acc += at(b, ldb, i, p) * tri_at(a, lda, uplo, trans, p, j);
        at(b, ldb, i, j) = alpha * acc;
      }
    }
  }
}

void trsm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
          double alpha, const double* a, index_t lda, double* b, index_t ldb) {
  if (m <= 0 || n <= 0) return;  // netlib quick return (no pivot checks)
  if (alpha == 0.0) {  // netlib dtrsm: B := 0, A not read
    for (index_t j = 0; j < n; ++j) beta_scale(&at(b, ldb, 0, j), m, 0.0);
    return;
  }
  const bool upper = effective_upper(uplo, trans);
  if (side == Side::kLeft) {
    // op(A) X = alpha B: forward substitution for effective-lower, backward
    // for effective-upper, column by column of B.
    for (index_t j = 0; j < n; ++j) {
      for (index_t step = 0; step < m; ++step) {
        const index_t i = upper ? m - 1 - step : step;
        double acc = alpha * at(b, ldb, i, j);
        const index_t p0 = upper ? i + 1 : 0;
        const index_t p1 = upper ? m : i;
        for (index_t p = p0; p < p1; ++p)
          acc -= tri_at(a, lda, uplo, trans, i, p) * at(b, ldb, p, j);
        const double piv = op_at(a, lda, trans, i, i);
        check_pivot(piv);
        at(b, ldb, i, j) = acc / piv;
      }
    }
  } else {
    // X op(A) = alpha B: column j of X depends on columns p with
    // op(A)(p, j) != 0, p != j — below j for effective-lower (solve
    // right-to-left), above j for effective-upper (left-to-right).
    for (index_t step = 0; step < n; ++step) {
      const index_t j = upper ? step : n - 1 - step;
      const double piv = op_at(a, lda, trans, j, j);
      check_pivot(piv);
      const index_t p0 = upper ? 0 : j + 1;
      const index_t p1 = upper ? j : n;
      for (index_t i = 0; i < m; ++i) {
        double acc = alpha * at(b, ldb, i, j);
        for (index_t p = p0; p < p1; ++p)
          acc -= at(b, ldb, i, p) * tri_at(a, lda, uplo, trans, p, j);
        at(b, ldb, i, j) = acc / piv;
      }
    }
  }
}

}  // namespace augem::blas::ref
