#pragma once
// Factory functions for the comparator BLAS libraries of the evaluation
// (DESIGN.md §2 maps each to the library it stands in for):
//
//   refblas   — naive loops; the "simple C" floor
//   gotosim   — Goto blocking + 128-bit SSE2/SSE3 kernels, no AVX/FMA:
//               stands in for GotoBLAS2 1.13, whose losses the paper
//               attributes precisely to the missing AVX/FMA support
//   atlsim    — register-tiled plain C compiled by the general-purpose
//               compiler (auto-vectorization): the ATLAS approach
//   vendorsim — expert-tuned AVX2+FMA intrinsics kernels: the MKL/ACML
//               stand-in
//
// The AUGEM-backed implementation lives in augem/augem_blas.hpp.

#include <memory>

#include "blas/blas.hpp"

namespace augem::blas {

std::unique_ptr<Blas> make_refblas();
std::unique_ptr<Blas> make_gotosim();
std::unique_ptr<Blas> make_atlsim();
std::unique_ptr<Blas> make_vendorsim();

}  // namespace augem::blas
