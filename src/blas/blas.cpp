#include "blas/blas.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/scratch.hpp"

namespace augem::blas {

void Blas::gemm_batch_strided(index_t m, index_t n, index_t k, double alpha,
                              const double* a, index_t lda, index_t stride_a,
                              const double* b, index_t ldb, index_t stride_b,
                              double beta, double* c, index_t ldc,
                              index_t stride_c, index_t batch,
                              const double* bias, index_t stride_bias,
                              bool relu) {
  if (m <= 0 || n <= 0 || batch <= 0) return;
  for (index_t p = 0; p < batch; ++p) {
    const double* ap = a + p * stride_a;
    const double* bp = b + p * stride_b;
    double* cp = c + p * stride_c;
    const double* biasp = bias == nullptr ? nullptr : bias + p * stride_bias;
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        double sum = 0.0;
        for (index_t l = 0; l < k; ++l)
          sum += at(ap, lda, i, l) * at(bp, ldb, l, j);
        // beta == 0 overwrites so garbage in an uninitialized C never
        // propagates (beta_scale semantics).
        double v = (beta == 0.0 ? 0.0 : beta * at(cp, ldc, i, j)) + alpha * sum;
        if (biasp != nullptr) v += biasp[i];
        // MAXPD semantics, matching the generated epilogue: the clamp
        // operand wins on NaN, so relu(NaN) == 0.
        if (relu) v = v > 0.0 ? v : 0.0;
        at(cp, ldc, i, j) = v;
      }
    }
  }
}

void Blas::gemv_t(index_t m, index_t n, double alpha, const double* a,
                  index_t lda, const double* x, double beta, double* y) {
  // (A^T x)[j] = dot(column j of A, x): columns are contiguous, so each
  // row of the result is one Level-1 DOT over unit-stride data.
  beta_scale(y, n, beta);
  if (m <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j)
    y[j] += alpha * dot(m, &at(a, lda, 0, j), x);
}

void Blas::ger(index_t m, index_t n, double alpha, const double* x,
               const double* y, double* a, index_t lda) {
  // One AXPY per column of A (paper §5: "GER … invoke[s] the four low-level
  // kernels … to obtain high performance").
  if (alpha == 0.0) return;  // netlib dger: A untouched, even for NaN x/y
  for (index_t j = 0; j < n; ++j)
    axpy(m, alpha * y[j], x, &at(a, lda, 0, j));
}

void Blas::symm(index_t m, index_t n, double alpha, const double* a,
                index_t lda, const double* b, index_t ldb, double beta,
                double* c, index_t ldc) {
  // Scale C once (beta == 0 overwrites — beta_scale semantics), then
  // accumulate alpha * A_sym * B block by block; all bulk work is GEMM.
  for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);

  // Per-thread cached scratch: symm is called in loops (e.g. by solvers),
  // so the diagonal-block temporary must not hit the allocator per call.
  double* diag = scratch_doubles(
      static_cast<std::size_t>(kL3Block * kL3Block), Scratch::kLevel3TmpA);
  for (index_t bi = 0; bi < m; bi += kL3Block) {
    const index_t mb = std::min(kL3Block, m - bi);
    for (index_t bl = 0; bl < m; bl += kL3Block) {
      const index_t lb = std::min(kL3Block, m - bl);
      if (bi > bl) {
        // Strictly-lower stored block, used directly.
        gemm(Trans::kNo, Trans::kNo, mb, n, lb, alpha, &at(a, lda, bi, bl),
             lda, &at(b, ldb, bl, 0), ldb, 1.0, &at(c, ldc, bi, 0), ldc);
      } else if (bi < bl) {
        // Upper part comes from the transposed stored block.
        gemm(Trans::kYes, Trans::kNo, mb, n, lb, alpha, &at(a, lda, bl, bi),
             lda, &at(b, ldb, bl, 0), ldb, 1.0, &at(c, ldc, bi, 0), ldc);
      } else {
        // Diagonal block: expand the symmetric block densely, then GEMM.
        for (index_t jj = 0; jj < lb; ++jj)
          for (index_t ii = 0; ii < mb; ++ii)
            diag[jj * mb + ii] =
                ii >= jj ? at(a, lda, bi + ii, bl + jj)
                         : at(a, lda, bl + jj, bi + ii);
        gemm(Trans::kNo, Trans::kNo, mb, n, lb, alpha, diag, mb,
             &at(b, ldb, bl, 0), ldb, 1.0, &at(c, ldc, bi, 0), ldc);
      }
    }
  }
}

void Blas::syrk(index_t n, index_t k, double alpha, const double* a,
                index_t lda, double beta, double* c, index_t ldc) {
  double* tmp = scratch_doubles(
      static_cast<std::size_t>(kL3Block * kL3Block), Scratch::kLevel3TmpA);
  for (index_t bj = 0; bj < n; bj += kL3Block) {
    const index_t nb = std::min(kL3Block, n - bj);
    // Diagonal block through a temporary so only the triangle is touched.
    gemm(Trans::kNo, Trans::kYes, nb, nb, k, 1.0, &at(a, lda, bj, 0), lda,
         &at(a, lda, bj, 0), lda, 0.0, tmp, nb);
    for (index_t jj = 0; jj < nb; ++jj) {
      beta_scale(&at(c, ldc, bj + jj, bj + jj), nb - jj, beta);
      if (alpha == 0.0) continue;
      for (index_t ii = jj; ii < nb; ++ii)
        at(c, ldc, bj + ii, bj + jj) += alpha * tmp[jj * nb + ii];
    }
    // Below-diagonal panel in one GEMM.
    const index_t rows = n - (bj + nb);
    if (rows > 0)
      gemm(Trans::kNo, Trans::kYes, rows, nb, k, alpha,
           &at(a, lda, bj + nb, 0), lda, &at(a, lda, bj, 0), lda, beta,
           &at(c, ldc, bj + nb, bj), ldc);
  }
}

void Blas::syr2k(index_t n, index_t k, double alpha, const double* a,
                 index_t lda, const double* b, index_t ldb, double beta,
                 double* c, index_t ldc) {
  double* tmp = scratch_doubles(
      static_cast<std::size_t>(kL3Block * kL3Block), Scratch::kLevel3TmpA);
  for (index_t bj = 0; bj < n; bj += kL3Block) {
    const index_t nb = std::min(kL3Block, n - bj);
    // Diagonal block: A*B^T + B*A^T into a temporary.
    gemm(Trans::kNo, Trans::kYes, nb, nb, k, 1.0, &at(a, lda, bj, 0), lda,
         &at(b, ldb, bj, 0), ldb, 0.0, tmp, nb);
    gemm(Trans::kNo, Trans::kYes, nb, nb, k, 1.0, &at(b, ldb, bj, 0), ldb,
         &at(a, lda, bj, 0), lda, 1.0, tmp, nb);
    for (index_t jj = 0; jj < nb; ++jj) {
      beta_scale(&at(c, ldc, bj + jj, bj + jj), nb - jj, beta);
      if (alpha == 0.0) continue;
      for (index_t ii = jj; ii < nb; ++ii)
        at(c, ldc, bj + ii, bj + jj) += alpha * tmp[jj * nb + ii];
    }
    const index_t rows = n - (bj + nb);
    if (rows > 0) {
      gemm(Trans::kNo, Trans::kYes, rows, nb, k, alpha,
           &at(a, lda, bj + nb, 0), lda, &at(b, ldb, bj, 0), ldb, beta,
           &at(c, ldc, bj + nb, bj), ldc);
      gemm(Trans::kNo, Trans::kYes, rows, nb, k, alpha,
           &at(b, ldb, bj + nb, 0), ldb, &at(a, lda, bj, 0), lda, 1.0,
           &at(c, ldc, bj + nb, bj), ldc);
    }
  }
}

void Blas::trmm(index_t m, index_t n, const double* l, index_t ldl, double* b,
                index_t ldb) {
  double* diag = scratch_doubles(
      static_cast<std::size_t>(kL3Block * kL3Block), Scratch::kLevel3TmpA);
  double* row = scratch_doubles(
      static_cast<std::size_t>(kL3Block) * static_cast<std::size_t>(n),
      Scratch::kLevel3TmpB);
  // Bottom-up so lower block-rows of B are still unmodified inputs.
  index_t bi = ((m - 1) / kL3Block) * kL3Block;
  for (; bi >= 0; bi -= kL3Block) {
    const index_t mb = std::min(kL3Block, m - bi);
    // row := B_i (copy), B_i := L_ii_dense * row.
    for (index_t j = 0; j < n; ++j)
      for (index_t ii = 0; ii < mb; ++ii)
        row[j * mb + ii] = at(b, ldb, bi + ii, j);
    for (index_t jj = 0; jj < mb; ++jj)
      for (index_t ii = 0; ii < mb; ++ii)
        diag[jj * mb + ii] =
            ii >= jj ? at(l, ldl, bi + ii, bi + jj) : 0.0;
    gemm(Trans::kNo, Trans::kNo, mb, n, mb, 1.0, diag, mb, row,
         mb, 0.0, &at(b, ldb, bi, 0), ldb);
    // Contributions from strictly lower columns: B_i += L_i,p * B_p (p<i).
    if (bi > 0)
      gemm(Trans::kNo, Trans::kNo, mb, n, bi, 1.0, &at(l, ldl, bi, 0), ldl,
           &at(b, ldb, 0, 0), ldb, 1.0, &at(b, ldb, bi, 0), ldb);
    if (bi == 0) break;
  }
}

void Blas::trsm(index_t m, index_t n, const double* l, index_t ldl, double* b,
                index_t ldb) {
  for (index_t bi = 0; bi < m; bi += kL3Block) {
    const index_t mb = std::min(kL3Block, m - bi);
    // Panel update through GEMM: B_i -= L_i,0:bi * B_0:bi.
    if (bi > 0)
      gemm(Trans::kNo, Trans::kNo, mb, n, bi, -1.0, &at(l, ldl, bi, 0), ldl,
           &at(b, ldb, 0, 0), ldb, 1.0, &at(b, ldb, bi, 0), ldb);
    // Diagonal solve: deliberately plain scalar forward substitution — the
    // step the paper could not derive from GEMM, translated "in a
    // straightforward fashion" (§5's TRSM caveat).
    for (index_t j = 0; j < n; ++j) {
      for (index_t ii = 0; ii < mb; ++ii) {
        double acc = at(b, ldb, bi + ii, j);
        for (index_t p = 0; p < ii; ++p)
          acc -= at(l, ldl, bi + ii, bi + p) * at(b, ldb, bi + p, j);
        const double piv = at(l, ldl, bi + ii, bi + ii);
        AUGEM_CHECK(piv != 0.0, "singular triangular factor");
        at(b, ldb, bi + ii, j) = acc / piv;
      }
    }
  }
}

}  // namespace augem::blas
