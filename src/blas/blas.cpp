#include "blas/blas.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/scratch.hpp"

namespace augem::blas {

void Blas::gemm_batch_strided(index_t m, index_t n, index_t k, double alpha,
                              const double* a, index_t lda, index_t stride_a,
                              const double* b, index_t ldb, index_t stride_b,
                              double beta, double* c, index_t ldc,
                              index_t stride_c, index_t batch,
                              const double* bias, index_t stride_bias,
                              bool relu) {
  if (m <= 0 || n <= 0 || batch <= 0) return;
  for (index_t p = 0; p < batch; ++p) {
    const double* ap = a + p * stride_a;
    const double* bp = b + p * stride_b;
    double* cp = c + p * stride_c;
    const double* biasp = bias == nullptr ? nullptr : bias + p * stride_bias;
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        double sum = 0.0;
        // netlib alpha semantics: alpha == 0 leaves A/B unread, so a NaN or
        // Inf there can never reach C through 0 * sum.
        if (alpha != 0.0)
          for (index_t l = 0; l < k; ++l)
            sum += at(ap, lda, i, l) * at(bp, ldb, l, j);
        // beta == 0 overwrites so garbage in an uninitialized C never
        // propagates (beta_scale semantics).
        double v = (beta == 0.0 ? 0.0 : beta * at(cp, ldc, i, j)) + alpha * sum;
        if (biasp != nullptr) v += biasp[i];
        // MAXPD semantics, matching the generated epilogue: the clamp
        // operand wins on NaN, so relu(NaN) == 0.
        if (relu) v = v > 0.0 ? v : 0.0;
        at(cp, ldc, i, j) = v;
      }
    }
  }
}

void Blas::gemv_t(index_t m, index_t n, double alpha, const double* a,
                  index_t lda, const double* x, double beta, double* y) {
  // (A^T x)[j] = dot(column j of A, x): columns are contiguous, so each
  // row of the result is one Level-1 DOT over unit-stride data.
  beta_scale(y, n, beta);
  if (m <= 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j)
    y[j] += alpha * dot(m, &at(a, lda, 0, j), x);
}

void Blas::ger(index_t m, index_t n, double alpha, const double* x,
               const double* y, double* a, index_t lda) {
  // One AXPY per column of A (paper §5: "GER … invoke[s] the four low-level
  // kernels … to obtain high performance").
  if (alpha == 0.0) return;  // netlib dger: A untouched, even for NaN x/y
  for (index_t j = 0; j < n; ++j)
    axpy(m, alpha * y[j], x, &at(a, lda, 0, j));
}

namespace {

/// Scales the stored triangle of C with beta_scale semantics (the SYRK /
/// SYR2K output update: the opposite triangle is never touched).
void beta_scale_triangle(Uplo uplo, index_t n, double beta, double* c,
                         index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    if (uplo == Uplo::kLower)
      beta_scale(&at(c, ldc, j, j), n - j, beta);
    else
      beta_scale(&at(c, ldc, 0, j), j + 1, beta);
  }
}

/// Shared trsm pivot policy (docs/correctness.md): `piv != 0.0` alone waves
/// NaN pivots through (NaN != 0.0 is true) and the division then floods
/// the column with NaN — reject anything non-finite with its own message.
void check_pivot(double piv) {
  AUGEM_CHECK(std::isfinite(piv) && piv != 0.0,
              "non-finite or zero pivot in triangular solve");
}

}  // namespace

void Blas::symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
                const double* a, index_t lda, const double* b, index_t ldb,
                double beta, double* c, index_t ldc) {
  if (m <= 0 || n <= 0) return;
  // Scale C once (beta == 0 overwrites — beta_scale semantics)…
  for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
  // …and stop there for alpha == 0: netlib dsymm never reads A or B then
  // (they may be null or NaN-poisoned).
  if (alpha == 0.0) return;

  const index_t nb = level3_block();
  // Per-thread cached scratch lease: symm is called in loops (e.g. by
  // solvers), so the diagonal-block temporary must not hit the allocator
  // per call; the lease guards the slot across the nested virtual gemms.
  ScratchLease diag(static_cast<std::size_t>(nb * nb), Scratch::kLevel3TmpA);
  if (side == Side::kLeft) {
    // C(bi, :) += alpha * symA(bi, bl) * B(bl, :) block pair by block pair;
    // off-diagonal block pairs are fully inside one stored triangle, so
    // they run as direct or transposed GEMMs on the stored data.
    for (index_t bi = 0; bi < m; bi += nb) {
      const index_t mb = std::min(nb, m - bi);
      for (index_t bl = 0; bl < m; bl += nb) {
        const index_t lb = std::min(nb, m - bl);
        const bool stored = uplo == Uplo::kLower ? bi > bl : bi < bl;
        if (bi == bl) {
          // Diagonal block: expand the symmetric block densely, then GEMM.
          for (index_t jj = 0; jj < lb; ++jj)
            for (index_t ii = 0; ii < mb; ++ii)
              diag.data()[jj * mb + ii] =
                  sym_at(a, lda, uplo, bi + ii, bl + jj);
          gemm(Trans::kNo, Trans::kNo, mb, n, lb, alpha, diag.data(), mb,
               &at(b, ldb, bl, 0), ldb, 1.0, &at(c, ldc, bi, 0), ldc);
        } else if (stored) {
          gemm(Trans::kNo, Trans::kNo, mb, n, lb, alpha, &at(a, lda, bi, bl),
               lda, &at(b, ldb, bl, 0), ldb, 1.0, &at(c, ldc, bi, 0), ldc);
        } else {
          // The unstored triangle comes from the transposed stored block.
          gemm(Trans::kYes, Trans::kNo, mb, n, lb, alpha, &at(a, lda, bl, bi),
               lda, &at(b, ldb, bl, 0), ldb, 1.0, &at(c, ldc, bi, 0), ldc);
        }
      }
    }
  } else {
    // Right side: C(:, bj) += alpha * B(:, bl) * symA(bl, bj).
    for (index_t bj = 0; bj < n; bj += nb) {
      const index_t jb = std::min(nb, n - bj);
      for (index_t bl = 0; bl < n; bl += nb) {
        const index_t lb = std::min(nb, n - bl);
        const bool stored = uplo == Uplo::kLower ? bl > bj : bl < bj;
        if (bl == bj) {
          for (index_t jj = 0; jj < jb; ++jj)
            for (index_t ii = 0; ii < lb; ++ii)
              diag.data()[jj * lb + ii] =
                  sym_at(a, lda, uplo, bl + ii, bj + jj);
          gemm(Trans::kNo, Trans::kNo, m, jb, lb, alpha, &at(b, ldb, 0, bl),
               ldb, diag.data(), lb, 1.0, &at(c, ldc, 0, bj), ldc);
        } else if (stored) {
          gemm(Trans::kNo, Trans::kNo, m, jb, lb, alpha, &at(b, ldb, 0, bl),
               ldb, &at(a, lda, bl, bj), lda, 1.0, &at(c, ldc, 0, bj), ldc);
        } else {
          gemm(Trans::kNo, Trans::kYes, m, jb, lb, alpha, &at(b, ldb, 0, bl),
               ldb, &at(a, lda, bj, bl), lda, 1.0, &at(c, ldc, 0, bj), ldc);
        }
      }
    }
  }
}

void Blas::syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
                const double* a, index_t lda, double beta, double* c,
                index_t ldc) {
  if (n <= 0) return;
  beta_scale_triangle(uplo, n, beta, c, ldc);
  // netlib dsyrk: with alpha == 0 or an empty k-sum only the beta update
  // happens; A must not be read (it may be null or poisoned).
  if (alpha == 0.0 || k <= 0) return;

  const index_t nbk = level3_block();
  ScratchLease tmp(static_cast<std::size_t>(nbk * nbk), Scratch::kLevel3TmpA);
  for (index_t bj = 0; bj < n; bj += nbk) {
    const index_t nb = std::min(nbk, n - bj);
    // Diagonal block through a temporary so only the triangle is touched.
    if (trans == Trans::kNo)
      gemm(Trans::kNo, Trans::kYes, nb, nb, k, 1.0, &at(a, lda, bj, 0), lda,
           &at(a, lda, bj, 0), lda, 0.0, tmp.data(), nb);
    else
      gemm(Trans::kYes, Trans::kNo, nb, nb, k, 1.0, &at(a, lda, 0, bj), lda,
           &at(a, lda, 0, bj), lda, 0.0, tmp.data(), nb);
    for (index_t jj = 0; jj < nb; ++jj) {
      const index_t ii0 = uplo == Uplo::kLower ? jj : 0;
      const index_t ii1 = uplo == Uplo::kLower ? nb : jj + 1;
      for (index_t ii = ii0; ii < ii1; ++ii)
        at(c, ldc, bj + ii, bj + jj) += alpha * tmp.data()[jj * nb + ii];
    }
    // Off-diagonal panel in one GEMM: the rows below the diagonal block
    // for the lower triangle, the rows above it for the upper one.
    const index_t r0 = uplo == Uplo::kLower ? bj + nb : 0;
    const index_t rows = uplo == Uplo::kLower ? n - (bj + nb) : bj;
    if (rows <= 0) continue;
    if (trans == Trans::kNo)
      gemm(Trans::kNo, Trans::kYes, rows, nb, k, alpha, &at(a, lda, r0, 0),
           lda, &at(a, lda, bj, 0), lda, 1.0, &at(c, ldc, r0, bj), ldc);
    else
      gemm(Trans::kYes, Trans::kNo, rows, nb, k, alpha, &at(a, lda, 0, r0),
           lda, &at(a, lda, 0, bj), lda, 1.0, &at(c, ldc, r0, bj), ldc);
  }
}

void Blas::syr2k(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
                 const double* a, index_t lda, const double* b, index_t ldb,
                 double beta, double* c, index_t ldc) {
  if (n <= 0) return;
  beta_scale_triangle(uplo, n, beta, c, ldc);
  if (alpha == 0.0 || k <= 0) return;  // netlib dsyr2k: A and B not read

  const index_t nbk = level3_block();
  ScratchLease tmp(static_cast<std::size_t>(nbk * nbk), Scratch::kLevel3TmpA);
  for (index_t bj = 0; bj < n; bj += nbk) {
    const index_t nb = std::min(nbk, n - bj);
    // Diagonal block: op(A)*op(B)^T + op(B)*op(A)^T into a temporary.
    if (trans == Trans::kNo) {
      gemm(Trans::kNo, Trans::kYes, nb, nb, k, 1.0, &at(a, lda, bj, 0), lda,
           &at(b, ldb, bj, 0), ldb, 0.0, tmp.data(), nb);
      gemm(Trans::kNo, Trans::kYes, nb, nb, k, 1.0, &at(b, ldb, bj, 0), ldb,
           &at(a, lda, bj, 0), lda, 1.0, tmp.data(), nb);
    } else {
      gemm(Trans::kYes, Trans::kNo, nb, nb, k, 1.0, &at(a, lda, 0, bj), lda,
           &at(b, ldb, 0, bj), ldb, 0.0, tmp.data(), nb);
      gemm(Trans::kYes, Trans::kNo, nb, nb, k, 1.0, &at(b, ldb, 0, bj), ldb,
           &at(a, lda, 0, bj), lda, 1.0, tmp.data(), nb);
    }
    for (index_t jj = 0; jj < nb; ++jj) {
      const index_t ii0 = uplo == Uplo::kLower ? jj : 0;
      const index_t ii1 = uplo == Uplo::kLower ? nb : jj + 1;
      for (index_t ii = ii0; ii < ii1; ++ii)
        at(c, ldc, bj + ii, bj + jj) += alpha * tmp.data()[jj * nb + ii];
    }
    const index_t r0 = uplo == Uplo::kLower ? bj + nb : 0;
    const index_t rows = uplo == Uplo::kLower ? n - (bj + nb) : bj;
    if (rows <= 0) continue;
    if (trans == Trans::kNo) {
      gemm(Trans::kNo, Trans::kYes, rows, nb, k, alpha, &at(a, lda, r0, 0),
           lda, &at(b, ldb, bj, 0), ldb, 1.0, &at(c, ldc, r0, bj), ldc);
      gemm(Trans::kNo, Trans::kYes, rows, nb, k, alpha, &at(b, ldb, r0, 0),
           ldb, &at(a, lda, bj, 0), lda, 1.0, &at(c, ldc, r0, bj), ldc);
    } else {
      gemm(Trans::kYes, Trans::kNo, rows, nb, k, alpha, &at(a, lda, 0, r0),
           lda, &at(b, ldb, 0, bj), ldb, 1.0, &at(c, ldc, r0, bj), ldc);
      gemm(Trans::kYes, Trans::kNo, rows, nb, k, alpha, &at(b, ldb, 0, r0),
           ldb, &at(a, lda, 0, bj), lda, 1.0, &at(c, ldc, r0, bj), ldc);
    }
  }
}

void Blas::trmm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
                double alpha, const double* a, index_t lda, double* b,
                index_t ldb) {
  // Guard degenerate extents before any scratch sizing: the historical
  // code computed ((m-1)/block) for m == 0 and sized block*n scratch for
  // negative n.
  if (m <= 0 || n <= 0) return;
  if (alpha == 0.0) {  // netlib dtrmm: B := 0, A not read
    for (index_t j = 0; j < n; ++j) beta_scale(&at(b, ldb, 0, j), m, 0.0);
    return;
  }

  const bool upper = effective_upper(uplo, trans);
  const index_t nbk = level3_block();
  ScratchLease diag(static_cast<std::size_t>(nbk * nbk), Scratch::kLevel3TmpA);
  if (side == Side::kLeft) {
    ScratchLease copy(static_cast<std::size_t>(nbk) * static_cast<std::size_t>(n),
                      Scratch::kLevel3TmpB);
    // Row blocks in the in-place-safe order: effective-lower reads rows
    // above the current block (process bottom-up), effective-upper reads
    // rows below (top-down).
    const index_t nblk = (m + nbk - 1) / nbk;
    for (index_t step = 0; step < nblk; ++step) {
      const index_t bi = (upper ? step : nblk - 1 - step) * nbk;
      const index_t mb = std::min(nbk, m - bi);
      // copy := B_bi, then B_bi := alpha * tri(A)_ii_dense * copy. The
      // diagonal block is expanded densely with the off-triangle zeroed,
      // so the unstored triangle of A is never read.
      for (index_t j = 0; j < n; ++j)
        for (index_t ii = 0; ii < mb; ++ii)
          copy.data()[j * mb + ii] = at(b, ldb, bi + ii, j);
      for (index_t jj = 0; jj < mb; ++jj)
        for (index_t ii = 0; ii < mb; ++ii)
          diag.data()[jj * mb + ii] =
              tri_at(a, lda, uplo, trans, bi + ii, bi + jj);
      gemm(Trans::kNo, Trans::kNo, mb, n, mb, alpha, diag.data(), mb,
           copy.data(), mb, 0.0, &at(b, ldb, bi, 0), ldb);
      // Panel contribution from the strict effective triangle — fully
      // stored, so it runs directly on A (transposed view when op flips
      // the stored triangle).
      if (!upper && bi > 0) {
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, mb, n, bi, alpha, &at(a, lda, bi, 0),
               lda, b, ldb, 1.0, &at(b, ldb, bi, 0), ldb);
        else
          gemm(Trans::kYes, Trans::kNo, mb, n, bi, alpha, &at(a, lda, 0, bi),
               lda, b, ldb, 1.0, &at(b, ldb, bi, 0), ldb);
      } else if (upper && bi + mb < m) {
        const index_t r0 = bi + mb;
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, mb, n, m - r0, alpha,
               &at(a, lda, bi, r0), lda, &at(b, ldb, r0, 0), ldb, 1.0,
               &at(b, ldb, bi, 0), ldb);
        else
          gemm(Trans::kYes, Trans::kNo, mb, n, m - r0, alpha,
               &at(a, lda, r0, bi), lda, &at(b, ldb, r0, 0), ldb, 1.0,
               &at(b, ldb, bi, 0), ldb);
      }
    }
  } else {
    ScratchLease copy(static_cast<std::size_t>(m) * static_cast<std::size_t>(nbk),
                      Scratch::kLevel3TmpB);
    // Column blocks: effective-upper columns read columns to their left
    // (process right-to-left), effective-lower the reverse.
    const index_t nblk = (n + nbk - 1) / nbk;
    for (index_t step = 0; step < nblk; ++step) {
      const index_t bj = (upper ? nblk - 1 - step : step) * nbk;
      const index_t jb = std::min(nbk, n - bj);
      for (index_t jj = 0; jj < jb; ++jj)
        for (index_t i = 0; i < m; ++i)
          copy.data()[jj * m + i] = at(b, ldb, i, bj + jj);
      for (index_t jj = 0; jj < jb; ++jj)
        for (index_t ii = 0; ii < jb; ++ii)
          diag.data()[jj * jb + ii] =
              tri_at(a, lda, uplo, trans, bj + ii, bj + jj);
      gemm(Trans::kNo, Trans::kNo, m, jb, jb, alpha, copy.data(), m,
           diag.data(), jb, 0.0, &at(b, ldb, 0, bj), ldb);
      if (upper && bj > 0) {
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, m, jb, bj, alpha, b, ldb,
               &at(a, lda, 0, bj), lda, 1.0, &at(b, ldb, 0, bj), ldb);
        else
          gemm(Trans::kNo, Trans::kYes, m, jb, bj, alpha, b, ldb,
               &at(a, lda, bj, 0), lda, 1.0, &at(b, ldb, 0, bj), ldb);
      } else if (!upper && bj + jb < n) {
        const index_t p0 = bj + jb;
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, m, jb, n - p0, alpha,
               &at(b, ldb, 0, p0), ldb, &at(a, lda, p0, bj), lda, 1.0,
               &at(b, ldb, 0, bj), ldb);
        else
          gemm(Trans::kNo, Trans::kYes, m, jb, n - p0, alpha,
               &at(b, ldb, 0, p0), ldb, &at(a, lda, bj, p0), lda, 1.0,
               &at(b, ldb, 0, bj), ldb);
      }
    }
  }
}

void Blas::trsm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
                double alpha, const double* a, index_t lda, double* b,
                index_t ldb) {
  if (m <= 0 || n <= 0) return;
  if (alpha == 0.0) {  // netlib dtrsm: B := 0, A not read
    for (index_t j = 0; j < n; ++j) beta_scale(&at(b, ldb, 0, j), m, 0.0);
    return;
  }
  // Fold alpha into B once; the substitutions below then solve op(A)X = B.
  if (alpha != 1.0)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) at(b, ldb, i, j) *= alpha;

  const bool upper = effective_upper(uplo, trans);
  const index_t nbk = level3_block();
  if (side == Side::kLeft) {
    // Blocked substitution: effective-lower runs forward, effective-upper
    // backward. Panel updates from already-solved blocks go through GEMM;
    // the in-block diagonal solve is deliberately plain scalar code.
    const index_t nblk = (m + nbk - 1) / nbk;
    for (index_t step = 0; step < nblk; ++step) {
      const index_t bi = (upper ? nblk - 1 - step : step) * nbk;
      const index_t mb = std::min(nbk, m - bi);
      if (!upper && bi > 0) {
        // B_bi -= op(A)(bi, 0:bi) * X(0:bi, :) — strictly inside the
        // effective triangle, so the coefficient panel is dense stored data.
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, mb, n, bi, -1.0, &at(a, lda, bi, 0),
               lda, b, ldb, 1.0, &at(b, ldb, bi, 0), ldb);
        else
          gemm(Trans::kYes, Trans::kNo, mb, n, bi, -1.0, &at(a, lda, 0, bi),
               lda, b, ldb, 1.0, &at(b, ldb, bi, 0), ldb);
      } else if (upper && bi + mb < m) {
        const index_t r0 = bi + mb;
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, mb, n, m - r0, -1.0,
               &at(a, lda, bi, r0), lda, &at(b, ldb, r0, 0), ldb, 1.0,
               &at(b, ldb, bi, 0), ldb);
        else
          gemm(Trans::kYes, Trans::kNo, mb, n, m - r0, -1.0,
               &at(a, lda, r0, bi), lda, &at(b, ldb, r0, 0), ldb, 1.0,
               &at(b, ldb, bi, 0), ldb);
      }
      for (index_t j = 0; j < n; ++j) {
        for (index_t s = 0; s < mb; ++s) {
          const index_t ii = upper ? mb - 1 - s : s;
          double acc = at(b, ldb, bi + ii, j);
          const index_t p0 = upper ? ii + 1 : 0;
          const index_t p1 = upper ? mb : ii;
          for (index_t p = p0; p < p1; ++p)
            acc -= op_at(a, lda, trans, bi + ii, bi + p) * at(b, ldb, bi + p, j);
          const double piv = op_at(a, lda, trans, bi + ii, bi + ii);
          check_pivot(piv);
          at(b, ldb, bi + ii, j) = acc / piv;
        }
      }
    }
  } else {
    // X * op(A) = B: solve column blocks in dependency order (effective-
    // upper forward, effective-lower backward), trailing updates via GEMM
    // with the already-solved columns of B as the left operand.
    const index_t nblk = (n + nbk - 1) / nbk;
    for (index_t step = 0; step < nblk; ++step) {
      const index_t bj = (upper ? step : nblk - 1 - step) * nbk;
      const index_t jb = std::min(nbk, n - bj);
      if (upper && bj > 0) {
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, m, jb, bj, -1.0, b, ldb,
               &at(a, lda, 0, bj), lda, 1.0, &at(b, ldb, 0, bj), ldb);
        else
          gemm(Trans::kNo, Trans::kYes, m, jb, bj, -1.0, b, ldb,
               &at(a, lda, bj, 0), lda, 1.0, &at(b, ldb, 0, bj), ldb);
      } else if (!upper && bj + jb < n) {
        const index_t p0 = bj + jb;
        if (trans == Trans::kNo)
          gemm(Trans::kNo, Trans::kNo, m, jb, n - p0, -1.0,
               &at(b, ldb, 0, p0), ldb, &at(a, lda, p0, bj), lda, 1.0,
               &at(b, ldb, 0, bj), ldb);
        else
          gemm(Trans::kNo, Trans::kYes, m, jb, n - p0, -1.0,
               &at(b, ldb, 0, p0), ldb, &at(a, lda, bj, p0), lda, 1.0,
               &at(b, ldb, 0, bj), ldb);
      }
      for (index_t s = 0; s < jb; ++s) {
        const index_t jj = upper ? s : jb - 1 - s;
        const double piv = op_at(a, lda, trans, bj + jj, bj + jj);
        check_pivot(piv);
        const index_t p0 = upper ? 0 : jj + 1;
        const index_t p1 = upper ? jj : jb;
        for (index_t i = 0; i < m; ++i) {
          double acc = at(b, ldb, i, bj + jj);
          for (index_t p = p0; p < p1; ++p)
            acc -= at(b, ldb, i, bj + p) *
                   op_at(a, lda, trans, bj + p, bj + jj);
          at(b, ldb, i, bj + jj) = acc / piv;
        }
      }
    }
  }
}

}  // namespace augem::blas
