#include "blas/driver.hpp"

#include <algorithm>

#include "blas/pack.hpp"
#include "support/error.hpp"
#include "support/scratch.hpp"

namespace augem::blas {

BlockSizes default_block_sizes(const CpuArch& arch) {
  BlockSizes s;
  // kc: a kc-deep B micro-panel (a few columns) plus the A micro-panel
  // must sit in L1 with room to spare; 256 on a 32KB L1 (the value the
  // paper's testbeds and OpenBLAS use on this CPU class).
  s.kc = std::clamp<index_t>(arch.l1d_bytes / (8 * 16), 64, 256);
  // mc: the packed mc×kc A block targets half of L2.
  s.mc = std::clamp<index_t>(arch.l2_bytes / 2 / (8 * s.kc), 32, 512);
  // Round to friendly multiples of the largest register tile we generate.
  s.kc = s.kc / 8 * 8;
  s.mc = s.mc / 8 * 8;
  // nc: the packed kc×nc B panel targets half of the LLC — it is streamed
  // once per (jc, pc) step and, under the threaded driver, shared read-only
  // by every core of the socket.
  s.nc = std::clamp<index_t>(arch.l3_bytes / 2 / (8 * s.kc), 240, 4096);
  s.nc = s.nc / 8 * 8;
  return s;
}

BlockSizes block_sizes_for_shape(const CpuArch& arch, index_t m, index_t n,
                                 index_t k) {
  BlockSizes s = default_block_sizes(arch);
  // Clamp to the problem, rounded up to the 8-granule every generated
  // register tile divides: packing scratch shrinks from cache-sized to
  // problem-sized, and the macro loops make exactly one trip per clamped
  // dimension.
  const auto clamp_to = [](index_t block, index_t extent) {
    if (extent <= 0) return std::min<index_t>(block, 8);
    return std::min(block, (extent + 7) / 8 * 8);
  };
  s.mc = clamp_to(s.mc, m);
  s.nc = clamp_to(s.nc, n);
  s.kc = clamp_to(s.kc, k);
  return s;
}

GemmContext gemm_context_for_shape(const CpuArch& arch, index_t m, index_t n,
                                   index_t k) {
  const BlockSizes sizes = block_sizes_for_shape(arch, m, n, k);
  // Threading repays its pool wake + barrier only past a work threshold;
  // 2mnk flops below ~16 MFLOP run serial (the crossover every scaling
  // bench on the CI class machines shows is in the 1-64 MFLOP decade).
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  if (flops < 16.0e6) return serial_gemm_context(sizes);
  return threaded_gemm_context(sizes);
}

GemmContext serial_gemm_context(const BlockSizes& sizes) {
  GemmContext ctx;
  ctx.sizes = sizes;
  ctx.threads = 1;
  return ctx;
}

GemmContext threaded_gemm_context(const BlockSizes& sizes) {
  GemmContext ctx;
  ctx.sizes = sizes;
  ctx.pool = &ThreadPool::global();
  ctx.threads = ctx.pool->num_threads();
  return ctx;
}

namespace {

index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// The historical single-core macro loop, byte-for-byte the reference the
/// parallel decomposition must reproduce.
void serial_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double beta, double* c, index_t ldc,
                 const BlockSizes& sizes, const BlockKernel& kernel) {
  // beta is applied once up front (overwriting when beta == 0, see
  // beta_scale); the block kernels accumulate.
  for (index_t j = 0; j < n; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
  if (k <= 0 || alpha == 0.0) return;

  double* pa = scratch_doubles(static_cast<std::size_t>(sizes.mc * sizes.kc),
                               Scratch::kGemmPackA);
  double* pb = scratch_doubles(static_cast<std::size_t>(sizes.kc * sizes.nc),
                               Scratch::kGemmPackB);

  for (index_t jc = 0; jc < n; jc += sizes.nc) {
    const index_t nc = std::min(sizes.nc, n - jc);
    for (index_t pc = 0; pc < k; pc += sizes.kc) {
      const index_t kc = std::min(sizes.kc, k - pc);
      pack_b_block(tb, b, ldb, pc, jc, kc, nc, pb);
      for (index_t ic = 0; ic < m; ic += sizes.mc) {
        const index_t mc = std::min(sizes.mc, m - ic);
        pack_a_block(ta, a, lda, ic, pc, mc, kc, alpha, pa);
        kernel(mc, nc, kc, pa, pb, &at(c, ldc, ic, jc), ldc);
      }
    }
  }
}

void parallel_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                   double alpha, const double* a, index_t lda, const double* b,
                   index_t ldb, double beta, double* c, index_t ldc,
                   const GemmContext& ctx, int threads,
                   const BlockKernel& kernel) {
  ThreadPool& pool = *ctx.pool;
  const index_t T = threads;
  const BlockSizes& s = ctx.sizes;

  // Up-front beta sweep over all of C: a full-matrix pass that would
  // otherwise serialize small-k calls; columns split contiguously so each
  // element is scaled exactly once (bit-identical to the serial sweep).
  // Note: run() dispatches to every pool participant; a context may use
  // fewer (ctx.threads < pool size, e.g. during a tuner sweep), so tids
  // beyond T idle — but must still reach every barrier.
  if (beta != 1.0) {
    pool.run([&](int tid) {
      if (tid >= T) return;
      const index_t j0 = n * tid / T;
      const index_t j1 = n * (tid + 1) / T;
      for (index_t j = j0; j < j1; ++j) beta_scale(&at(c, ldc, 0, j), m, beta);
    });
  }
  if (k <= 0 || alpha == 0.0) return;

  const index_t granule = std::max<index_t>(1, ctx.jr_granule);
  // Shared packed-B panel: lives in the calling thread's scratch cache,
  // cooperatively written by all threads before the barrier and read-only
  // after it. Workers see it through the captured pointer.
  double* pb = scratch_doubles(static_cast<std::size_t>(s.kc * s.nc),
                               Scratch::kGemmPackB);

  for (index_t jc = 0; jc < n; jc += s.nc) {
    const index_t nc = std::min(s.nc, n - jc);
    // 2D decomposition of this panel: ic blocks × jr chunks. The jr split
    // activates only when C has fewer row blocks than threads (tall-skinny);
    // chunk boundaries stay on granule multiples so every kernel call sees
    // the serial sweep's register-tile boundaries.
    const index_t iblocks = ceil_div(m, s.mc);
    index_t jw = nc;  // jr chunk width
    index_t njr = 1;
    if (iblocks < T && nc > granule) {
      const index_t want = ceil_div(T, iblocks);
      jw = std::max(granule, ceil_div(ceil_div(nc, want), granule) * granule);
      njr = ceil_div(nc, jw);
    }
    for (index_t pc = 0; pc < k; pc += s.kc) {
      const index_t kc = std::min(s.kc, k - pc);
      pool.run([&](int tid) {
        // Phase 1 — cooperative B pack. The panel is stored as njr
        // contiguous chunk-panels (chunk q covers columns [q*jw, q*jw+w)
        // with row stride w, at offset kc*q*jw); each thread packs one
        // l-slice of every chunk.
        const index_t l0 = tid < T ? kc * tid / T : kc;
        const index_t l1 = tid < T ? kc * (tid + 1) / T : kc;
        if (l1 > l0) {
          for (index_t q = 0; q < njr; ++q) {
            const index_t j0 = q * jw;
            const index_t w = std::min(jw, nc - j0);
            pack_b_block(tb, b, ldb, pc + l0, jc + j0, l1 - l0, w,
                         pb + kc * j0 + l0 * w);
          }
        }
        pool.barrier();
        if (tid >= T) return;
        // Phase 2 — partition the (ic block × jr chunk) grid round-robin.
        // A blocks are packed privately per thread: redundant across jr
        // chunks of one block, but free of sharing traffic.
        double* pa = scratch_doubles(static_cast<std::size_t>(s.mc * kc),
                                     Scratch::kGemmPackA);
        const index_t items = iblocks * njr;
        index_t packed_bi = -1;
        for (index_t it = tid; it < items; it += T) {
          const index_t bi = it / njr;
          const index_t q = it % njr;
          const index_t ic = bi * s.mc;
          const index_t mc = std::min(s.mc, m - ic);
          if (bi != packed_bi) {
            pack_a_block(ta, a, lda, ic, pc, mc, kc, alpha, pa);
            packed_bi = bi;
          }
          const index_t j0 = q * jw;
          const index_t w = std::min(jw, nc - j0);
          kernel(mc, w, kc, pa, pb + kc * j0, &at(c, ldc, ic, jc + j0), ldc);
        }
        // The run()'s completion handshake is the end-of-region barrier: pb
        // is not repacked until every thread returned.
      });
    }
  }
}

}  // namespace

void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const GemmContext& ctx, const BlockKernel& kernel) {
  if (m <= 0 || n <= 0) return;
  const int threads =
      ctx.pool != nullptr ? std::min(ctx.threads, ctx.pool->num_threads()) : 1;
  if (threads <= 1) {
    serial_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                ctx.sizes, kernel);
    return;
  }
  parallel_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ctx,
                threads, kernel);
}

void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const BlockSizes& sizes, const BlockKernel& kernel) {
  blocked_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               serial_gemm_context(sizes), kernel);
}

// ---- prepacked panels -----------------------------------------------------

PackedB::PackedB(index_t k, index_t n, index_t kc, index_t jw, double* storage)
    : k_(k), n_(n), kc_(kc), jw_(jw), data_(storage) {
  AUGEM_CHECK(k > 0 && n > 0 && kc > 0 && jw > 0 && storage != nullptr,
              "invalid PackedB geometry");
  kchunks_ = ceil_div(k, kc);
  jchunks_ = ceil_div(n, jw);
  uses_.assign(static_cast<std::size_t>(kchunks_ * jchunks_), 0);
}

std::size_t PackedB::storage_doubles(index_t k, index_t n, index_t kc) {
  // Chunk qk lives at qk*kc*n whatever its actual row count, so storage is
  // full-kc-sized per chunk (only the last chunk may leave slack).
  return static_cast<std::size_t>(ceil_div(k, kc) * kc * n);
}

void PackedB::pack_rows(index_t k0, index_t k1, const PanelWriter& writer,
                        const GemmContext& ctx, Level3Stats* stats) {
  AUGEM_CHECK(k0 % kc_ == 0 && (k1 == k_ || k1 % kc_ == 0) && k0 <= k1 &&
                  k1 <= k_,
              "pack_rows range [" << k0 << ", " << k1
                                  << ") is not chunk-aligned");
  if (k1 <= k0) return;
  const index_t q0 = k0 / kc_;
  const index_t q1 = ceil_div(k1, kc_);
  const index_t items = (q1 - q0) * jchunks_;
  const auto pack_item = [&](index_t it) {
    const index_t qk = q0 + it / jchunks_;
    const index_t qj = it % jchunks_;
    writer(qk * kc_, qj * jw_, chunk_rows(qk), chunk_cols(qj), chunk(qk, qj));
  };
  const int threads =
      ctx.pool != nullptr ? std::min(ctx.threads, ctx.pool->num_threads()) : 1;
  if (threads <= 1 || items <= 1) {
    for (index_t it = 0; it < items; ++it) pack_item(it);
  } else {
    // Chunk writes are disjoint; spread them round-robin over the pool.
    ctx.pool->run([&](int tid) {
      if (tid >= threads) return;
      for (index_t it = tid; it < items; it += threads) pack_item(it);
    });
  }
  if (stats != nullptr) stats->panels_packed += items;
}

index_t default_jr_width(index_t n, index_t granule) {
  // Enough chunks to feed a pool on single-block-row updates, but fixed
  // independent of the thread count so serial and threaded consumers make
  // identical kernel calls (the bit-identity condition).
  constexpr index_t kTargetChunks = 16;
  const index_t g = std::max<index_t>(1, granule);
  if (n <= g) return g;
  return std::max(g, ceil_div(ceil_div(n, kTargetChunks), g) * g);
}

void blocked_gemm_prepacked(index_t m, index_t j0, index_t j1, index_t k0,
                            index_t k1, PackedB& pb, double beta, double* c,
                            index_t ldc, const GemmContext& ctx,
                            const BlockKernel& kernel, const APacker& apack,
                            Level3Stats* stats) {
  if (m <= 0 || j1 <= j0) return;
  const index_t jw = pb.jw();
  const index_t kc = pb.kc();
  AUGEM_CHECK(j0 % jw == 0 && (j1 == pb.n() || j1 % jw == 0),
              "column range [" << j0 << ", " << j1
                               << ") is not jr-chunk-aligned");
  AUGEM_CHECK(k0 % kc == 0 && (k1 == pb.k() || k1 % kc == 0) && k1 <= pb.k(),
              "k range [" << k0 << ", " << k1 << ") is not chunk-aligned");

  const int threads =
      ctx.pool != nullptr ? std::min(ctx.threads, ctx.pool->num_threads()) : 1;
  const index_t ncols = j1 - j0;
  if (beta != 1.0) {
    if (threads <= 1) {
      for (index_t j = 0; j < ncols; ++j)
        beta_scale(&at(c, ldc, 0, j), m, beta);
    } else {
      ThreadPool& pool = *ctx.pool;
      const index_t T = threads;
      pool.run([&](int tid) {
        if (tid >= T) return;
        const index_t c0 = ncols * tid / T;
        const index_t c1 = ncols * (tid + 1) / T;
        for (index_t j = c0; j < c1; ++j)
          beta_scale(&at(c, ldc, 0, j), m, beta);
      });
    }
  }
  if (k1 <= k0) return;

  const index_t mc = ctx.sizes.mc;
  const index_t iblocks = ceil_div(m, mc);
  const index_t qj0 = j0 / jw;
  const index_t qj1 = ceil_div(j1, jw);
  const index_t njr = qj1 - qj0;
  const index_t qk0 = k0 / kc;
  const index_t qk1 = ceil_div(k1, kc);

  for (index_t qk = qk0; qk < qk1; ++qk) {
    const index_t kcq = pb.chunk_rows(qk);
    const index_t p0 = qk * kc;
    const auto run_items = [&](index_t first, index_t stride, double* pa) {
      index_t packed_bi = -1;
      for (index_t it = first; it < iblocks * njr; it += stride) {
        const index_t bi = it / njr;
        const index_t qj = qj0 + it % njr;
        const index_t ic = bi * mc;
        const index_t mcb = std::min(mc, m - ic);
        if (bi != packed_bi) {
          apack(ic, p0, mcb, kcq, pa);
          packed_bi = bi;
        }
        const index_t w = pb.chunk_cols(qj);
        kernel(mcb, w, kcq, pa, pb.chunk(qk, qj),
               &at(c, ldc, ic, qj * jw - j0), ldc);
      }
    };
    if (threads <= 1) {
      double* pa = scratch_doubles(static_cast<std::size_t>(mc * kcq),
                                   Scratch::kGemmPackA);
      run_items(0, 1, pa);
    } else {
      // Same (ic block × jr chunk) round-robin grid as parallel_gemm; the
      // run() completion handshake orders successive k-chunks, so the
      // accumulation order into any C tile matches the serial loop.
      ThreadPool& pool = *ctx.pool;
      const index_t T = threads;
      pool.run([&](int tid) {
        if (tid >= T) return;
        double* pa = scratch_doubles(static_cast<std::size_t>(mc * kcq),
                                     Scratch::kGemmPackA);
        run_items(tid, T, pa);
      });
    }
    // Reuse accounting on the calling thread: every chunk in range was
    // consumed once per ic block this call.
    for (index_t qj = qj0; qj < qj1; ++qj) {
      auto& u = pb.uses()[static_cast<std::size_t>(qk * pb.jchunks() + qj)];
      if (stats != nullptr)
        stats->panel_reuses += iblocks - (u == 0 ? 1 : 0);
      u += static_cast<std::int32_t>(iblocks);
    }
  }
}

}  // namespace augem::blas
