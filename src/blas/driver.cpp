#include "blas/driver.hpp"

#include <algorithm>

#include "blas/pack.hpp"
#include "support/buffer.hpp"

namespace augem::blas {

BlockSizes default_block_sizes(const CpuArch& arch) {
  BlockSizes s;
  // kc: a kc-deep B micro-panel (a few columns) plus the A micro-panel
  // must sit in L1 with room to spare; 256 on a 32KB L1 (the value the
  // paper's testbeds and OpenBLAS use on this CPU class).
  s.kc = std::clamp<index_t>(arch.l1d_bytes / (8 * 16), 64, 256);
  // mc: the packed mc×kc A block targets half of L2.
  s.mc = std::clamp<index_t>(arch.l2_bytes / 2 / (8 * s.kc), 32, 512);
  // Round to friendly multiples of the largest register tile we generate.
  s.kc = s.kc / 8 * 8;
  s.mc = s.mc / 8 * 8;
  // nc: bound the packed B panel (kc×nc doubles) to stream from L2/L3.
  s.nc = 240;
  return s;
}

void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const BlockSizes& sizes, const BlockKernel& kernel) {
  if (m <= 0 || n <= 0) return;

  // beta is applied once up front; the block kernels accumulate.
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        at(c, ldc, i, j) = beta == 0.0 ? 0.0 : beta * at(c, ldc, i, j);
  }
  if (k <= 0 || alpha == 0.0) return;

  DoubleBuffer pa(static_cast<std::size_t>(sizes.mc * sizes.kc));
  DoubleBuffer pb(static_cast<std::size_t>(sizes.kc * sizes.nc));

  for (index_t jc = 0; jc < n; jc += sizes.nc) {
    const index_t nc = std::min(sizes.nc, n - jc);
    for (index_t pc = 0; pc < k; pc += sizes.kc) {
      const index_t kc = std::min(sizes.kc, k - pc);
      pack_b_block(tb, b, ldb, pc, jc, kc, nc, pb.data());
      for (index_t ic = 0; ic < m; ic += sizes.mc) {
        const index_t mc = std::min(sizes.mc, m - ic);
        pack_a_block(ta, a, lda, ic, pc, mc, kc, alpha, pa.data());
        kernel(mc, nc, kc, pa.data(), pb.data(), &at(c, ldc, ic, jc), ldc);
      }
    }
  }
}

}  // namespace augem::blas
