#pragma once
// The Goto block-partitioned GEMM driver (paper §4.1). Shared by the
// AUGEM-backed library and the simulated comparators: each supplies a
// *block kernel* computing C(mc×nc) += PA(mc×kc) * PB(kc×nc) over packed
// panels; the driver owns the cache blocking, packing, beta handling and —
// through a GemmContext — the multi-threaded macro-loop decomposition.

#include <functional>

#include "blas/types.hpp"
#include "support/arch.hpp"
#include "support/threadpool.hpp"

namespace augem::blas {

/// Cache blocking parameters.
struct BlockSizes {
  index_t mc = 128;  ///< A-block rows (L2 resident)
  index_t nc = 512;  ///< B-panel columns (L3 / memory streamed)
  index_t kc = 256;  ///< shared depth (A block + B panel rows, L1/L2)
};

/// Derives block sizes from the cache hierarchy: kc*8 bytes of a B column
/// must leave room in L1 beside the A micro-panel; mc*kc doubles of packed
/// A target half of L2; the kc×nc packed B panel targets half of the LLC.
BlockSizes default_block_sizes(const CpuArch& arch);

/// C(mc×nc, ldc) += PA * PB over packed panels (see blas/pack.hpp for the
/// layouts). Must handle arbitrary mc/nc/kc ≥ 0. Under the threaded driver
/// the kernel is invoked concurrently from several threads on disjoint C
/// blocks, so it must be reentrant (stateless or thread-local state only).
using BlockKernel =
    std::function<void(index_t mc, index_t nc, index_t kc, const double* pa,
                       const double* pb, double* c, index_t ldc)>;

/// Execution context of one GEMM entry: blocking plus threading.
///
/// With threads == 1 (or no pool) the driver runs the exact serial macro
/// loop. Otherwise the BLIS-style 2D decomposition is used: for each
/// (jc, pc) panel all threads cooperatively pack B — shared read-only
/// afterwards — then partition the ic loop, each thread packing its A
/// blocks into per-thread scratch; when C has fewer ic blocks than threads
/// (tall-skinny), the jr sub-loop inside the panel is split as the second
/// dimension. jr splits land on jr_granule column multiples so every block
/// kernel sees the same register-tile boundaries as the serial sweep — the
/// parallel result is bit-identical to the serial one for any kernel whose
/// per-element operation order depends only on the position inside its
/// column tile (true of all kernels in this repository; granule 8 covers
/// every generated tile width nr ∈ {2, 4, 8}).
struct GemmContext {
  BlockSizes sizes;
  int threads = 1;            ///< participants used (clamped to pool size)
  ThreadPool* pool = nullptr; ///< null → serial regardless of `threads`
  index_t jr_granule = 8;     ///< jr split alignment, ≥ the kernel tile width
};

/// Shape-aware blocking for the dispatching runtime (docs/runtime.md):
/// starts from default_block_sizes(arch) and clamps each block to the
/// problem extent (rounded up to the register-tile granule), so a small or
/// skinny GEMM never packs panels sized for the cache-blocked regime.
BlockSizes block_sizes_for_shape(const CpuArch& arch, index_t m, index_t n,
                                 index_t k);

/// Execution context for one (m, n, k) problem on `arch`: shape-clamped
/// block sizes, and a serial macro loop for problems too small to repay a
/// pool wake (threading is a per-call decision, not a per-library one).
/// The threaded and serial paths are bit-identical, so this only affects
/// speed.
GemmContext gemm_context_for_shape(const CpuArch& arch, index_t m, index_t n,
                                   index_t k);

/// Serial context (bit-identical to the historical single-core driver).
GemmContext serial_gemm_context(const BlockSizes& sizes);

/// Context on the process-global pool, sized by AUGEM_NUM_THREADS or the
/// detected core count.
GemmContext threaded_gemm_context(const BlockSizes& sizes);

/// Full GEMM: C = alpha*op(A)*op(B) + beta*C via packing + block kernel,
/// decomposed across ctx.threads workers.
void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const GemmContext& ctx, const BlockKernel& kernel);

/// Serial convenience overload (historical entry point).
void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const BlockSizes& sizes, const BlockKernel& kernel);

}  // namespace augem::blas
