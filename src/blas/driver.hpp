#pragma once
// The Goto block-partitioned GEMM driver (paper §4.1). Shared by the
// AUGEM-backed library and the simulated comparators: each supplies a
// *block kernel* computing C(mc×nc) += PA(mc×kc) * PB(kc×nc) over packed
// panels; the driver owns the cache blocking, packing and beta handling.

#include <functional>

#include "blas/types.hpp"
#include "support/arch.hpp"

namespace augem::blas {

/// Cache blocking parameters.
struct BlockSizes {
  index_t mc = 128;  ///< A-block rows (L2 resident)
  index_t nc = 512;  ///< B-panel columns (L3 / memory streamed)
  index_t kc = 256;  ///< shared depth (A block + B panel rows, L1/L2)
};

/// Derives block sizes from the cache hierarchy: kc*8 bytes of a B column
/// must leave room in L1 beside the A micro-panel; mc*kc doubles of packed
/// A target half of L2.
BlockSizes default_block_sizes(const CpuArch& arch);

/// C(mc×nc, ldc) += PA * PB over packed panels (see blas/pack.hpp for the
/// layouts). Must handle arbitrary mc/nc/kc ≥ 0.
using BlockKernel =
    std::function<void(index_t mc, index_t nc, index_t kc, const double* pa,
                       const double* pb, double* c, index_t ldc)>;

/// Full GEMM: C = alpha*op(A)*op(B) + beta*C via packing + block kernel.
void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const BlockSizes& sizes, const BlockKernel& kernel);

}  // namespace augem::blas
