#pragma once
// The Goto block-partitioned GEMM driver (paper §4.1). Shared by the
// AUGEM-backed library and the simulated comparators: each supplies a
// *block kernel* computing C(mc×nc) += PA(mc×kc) * PB(kc×nc) over packed
// panels; the driver owns the cache blocking, packing, beta handling and —
// through a GemmContext — the multi-threaded macro-loop decomposition.

#include <cstdint>
#include <functional>
#include <vector>

#include "blas/types.hpp"
#include "support/arch.hpp"
#include "support/threadpool.hpp"

namespace augem::blas {

/// Cache blocking parameters.
struct BlockSizes {
  index_t mc = 128;  ///< A-block rows (L2 resident)
  index_t nc = 512;  ///< B-panel columns (L3 / memory streamed)
  index_t kc = 256;  ///< shared depth (A block + B panel rows, L1/L2)
};

/// Derives block sizes from the cache hierarchy: kc*8 bytes of a B column
/// must leave room in L1 beside the A micro-panel; mc*kc doubles of packed
/// A target half of L2; the kc×nc packed B panel targets half of the LLC.
BlockSizes default_block_sizes(const CpuArch& arch);

/// C(mc×nc, ldc) += PA * PB over packed panels (see blas/pack.hpp for the
/// layouts). Must handle arbitrary mc/nc/kc ≥ 0. Under the threaded driver
/// the kernel is invoked concurrently from several threads on disjoint C
/// blocks, so it must be reentrant (stateless or thread-local state only).
using BlockKernel =
    std::function<void(index_t mc, index_t nc, index_t kc, const double* pa,
                       const double* pb, double* c, index_t ldc)>;

/// Execution context of one GEMM entry: blocking plus threading.
///
/// With threads == 1 (or no pool) the driver runs the exact serial macro
/// loop. Otherwise the BLIS-style 2D decomposition is used: for each
/// (jc, pc) panel all threads cooperatively pack B — shared read-only
/// afterwards — then partition the ic loop, each thread packing its A
/// blocks into per-thread scratch; when C has fewer ic blocks than threads
/// (tall-skinny), the jr sub-loop inside the panel is split as the second
/// dimension. jr splits land on jr_granule column multiples so every block
/// kernel sees the same register-tile boundaries as the serial sweep — the
/// parallel result is bit-identical to the serial one for any kernel whose
/// per-element operation order depends only on the position inside its
/// column tile (true of all kernels in this repository; granule 8 covers
/// every generated tile width nr ∈ {2, 4, 8}).
struct GemmContext {
  BlockSizes sizes;
  int threads = 1;            ///< participants used (clamped to pool size)
  ThreadPool* pool = nullptr; ///< null → serial regardless of `threads`
  index_t jr_granule = 8;     ///< jr split alignment, ≥ the kernel tile width
};

/// Shape-aware blocking for the dispatching runtime (docs/runtime.md):
/// starts from default_block_sizes(arch) and clamps each block to the
/// problem extent (rounded up to the register-tile granule), so a small or
/// skinny GEMM never packs panels sized for the cache-blocked regime.
BlockSizes block_sizes_for_shape(const CpuArch& arch, index_t m, index_t n,
                                 index_t k);

/// Execution context for one (m, n, k) problem on `arch`: shape-clamped
/// block sizes, and a serial macro loop for problems too small to repay a
/// pool wake (threading is a per-call decision, not a per-library one).
/// The threaded and serial paths are bit-identical, so this only affects
/// speed.
GemmContext gemm_context_for_shape(const CpuArch& arch, index_t m, index_t n,
                                   index_t k);

/// Serial context (bit-identical to the historical single-core driver).
GemmContext serial_gemm_context(const BlockSizes& sizes);

/// Context on the process-global pool, sized by AUGEM_NUM_THREADS or the
/// detected core count.
GemmContext threaded_gemm_context(const BlockSizes& sizes);

/// Full GEMM: C = alpha*op(A)*op(B) + beta*C via packing + block kernel,
/// decomposed across ctx.threads workers.
void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const GemmContext& ctx, const BlockKernel& kernel);

/// Serial convenience overload (historical entry point).
void blocked_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                  double alpha, const double* a, index_t lda, const double* b,
                  index_t ldb, double beta, double* c, index_t ldc,
                  const BlockSizes& sizes, const BlockKernel& kernel);

// ---- prepacked panels for the Level-3 casting engine ----------------------
//
// The Level-3 routines (blas/level3.hpp) decompose into many GEMM panels
// that share one operand: SYRK consumes the same op(A) panel for the
// diagonal temporary and the off-diagonal update, TRSM's trailing updates
// re-read every already-solved block. Going through blocked_gemm would
// repack that operand for every call; a PackedB packs it once into the
// driver's kernel layout and blocked_gemm_prepacked consumes it repeatedly,
// counting the reuse (Level3Stats) so tests can assert panels are shared.

/// Writes one packed sub-panel in kernel layout: dst[l*w + j] must become
/// logical element (k0 + l, j0 + j) of the panel operand, l < kc, j < w.
/// The writer abstracts the source (a plain matrix, a symmetric expansion,
/// a masked triangle, the in-solve B…).
using PanelWriter = std::function<void(index_t k0, index_t j0, index_t kc,
                                       index_t w, double* dst)>;

/// Packs an alpha-folded mc×kc A block: pa[l*mc + i] must become
/// alpha * element (i0 + i, p0 + l) of the left operand.
using APacker = std::function<void(index_t i0, index_t p0, index_t mc,
                                   index_t kc, double* pa)>;

/// Packed-panel accounting, aggregated across one Level-3 call.
struct Level3Stats {
  std::int64_t panels_packed = 0;  ///< chunk-panels written by pack_rows
  std::int64_t panel_reuses = 0;   ///< kernel consumptions beyond the first
};

/// A k×n panel packed once into the block kernel's row-panel layout and
/// consumed by many blocked_gemm_prepacked calls. Storage is chunked:
/// k-chunks of `kc` rows, each split into column chunks of `jw` columns
/// (the jr tiling, fixed at pack time so serial and threaded consumers see
/// identical kernel-call boundaries — the bit-identity condition of the
/// threaded driver). Chunk (qk, qj) lives at
/// data + qk*kc*n + rows(qk)*qj*jw with row stride min(jw, n - qj*jw).
/// The storage pointer is borrowed (normally a ScratchLease).
class PackedB {
 public:
  PackedB(index_t k, index_t n, index_t kc, index_t jw, double* storage);

  /// Doubles a PackedB of this geometry needs.
  static std::size_t storage_doubles(index_t k, index_t n, index_t kc);

  /// Packs rows [k0, k1) of the panel through `writer`. The range must
  /// cover whole k-chunks (k0 aligned; k1 aligned or == k). With a
  /// threaded ctx the independent chunk writes are spread over the pool.
  void pack_rows(index_t k0, index_t k1, const PanelWriter& writer,
                 const GemmContext& ctx, Level3Stats* stats = nullptr);

  index_t k() const { return k_; }
  index_t n() const { return n_; }
  index_t kc() const { return kc_; }
  index_t jw() const { return jw_; }
  index_t kchunks() const { return kchunks_; }
  index_t jchunks() const { return jchunks_; }
  index_t chunk_rows(index_t qk) const {
    return qk + 1 < kchunks_ ? kc_ : k_ - qk * kc_;
  }
  index_t chunk_cols(index_t qj) const {
    return qj + 1 < jchunks_ ? jw_ : n_ - qj * jw_;
  }
  const double* chunk(index_t qk, index_t qj) const {
    return data_ + qk * kc_ * n_ + chunk_rows(qk) * qj * jw_;
  }
  double* chunk(index_t qk, index_t qj) {
    return data_ + qk * kc_ * n_ + chunk_rows(qk) * qj * jw_;
  }

  /// Consumption counters per (qk, qj) chunk, maintained by
  /// blocked_gemm_prepacked for the reuse statistics.
  std::vector<std::int32_t>& uses() { return uses_; }

 private:
  index_t k_, n_, kc_, jw_;
  index_t kchunks_, jchunks_;
  double* data_;
  std::vector<std::int32_t> uses_;
};

/// A jr chunk width for full-width panel consumers: splits n into enough
/// granule-aligned chunks for the pool to spread tall-skinny updates,
/// independent of the thread count (serial and threaded runs must tile
/// identically).
index_t default_jr_width(index_t n, index_t granule);

/// C(m × (j1-j0)) += sum over k-chunks in [k0, k1) of A(m×kc) * PB-chunk,
/// with beta applied to C first (beta_scale semantics). `apack` packs each
/// alpha-folded A block on demand; the panel rows come prepacked from
/// `pb`. Ranges must be chunk-aligned: k0/k1 on kc boundaries (or == k),
/// j0/j1 on jw boundaries (or == n). c points at the C element for panel
/// column j0. k-chunks run in ascending order with a pool barrier between
/// them, so threaded accumulation is bit-identical to serial. Reuse
/// accounting lands in `stats` and pb.uses().
void blocked_gemm_prepacked(index_t m, index_t j0, index_t j1, index_t k0,
                            index_t k1, PackedB& pb, double beta, double* c,
                            index_t ldc, const GemmContext& ctx,
                            const BlockKernel& kernel, const APacker& apack,
                            Level3Stats* stats = nullptr);

}  // namespace augem::blas
