#pragma once
// Common BLAS-layer conventions.
//
// All matrices are column-major with explicit leading dimensions, matching
// the netlib BLAS the paper's comparators implement. Only the operand
// shapes the paper's evaluation exercises are supported: `Side::kLeft` and
// `Uplo::kLower` for the symmetric/triangular routines.

#include <cstdint>

namespace augem::blas {

using index_t = std::int64_t;

enum class Trans : std::uint8_t { kNo, kYes };

/// Element (i, j) of a column-major matrix with leading dimension ld.
inline double& at(double* a, index_t ld, index_t i, index_t j) {
  return a[j * ld + i];
}
inline const double& at(const double* a, index_t ld, index_t i, index_t j) {
  return a[j * ld + i];
}

/// Element (i, j) of op(A): op = transpose ? A^T : A.
inline const double& op_at(const double* a, index_t ld, Trans t, index_t i,
                           index_t j) {
  return t == Trans::kNo ? at(a, ld, i, j) : at(a, ld, j, i);
}

/// BLAS output-operand scaling: y[i] = beta * y[i], except that beta == 0
/// *overwrites* with zero instead of multiplying — the netlib convention
/// ("when BETA is supplied as zero then Y need not be set on input"), so
/// NaN/Inf payloads in an uninitialized output operand never leak into the
/// result. Every implementation in this repository must route its beta
/// handling through these semantics (see docs/correctness.md).
inline void beta_scale(double* y, index_t n, double beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (index_t i = 0; i < n; ++i) y[i] = 0.0;
  } else {
    for (index_t i = 0; i < n; ++i) y[i] *= beta;
  }
}

}  // namespace augem::blas
