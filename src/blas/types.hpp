#pragma once
// Common BLAS-layer conventions.
//
// All matrices are column-major with explicit leading dimensions, matching
// the netlib BLAS the paper's comparators implement. The symmetric and
// triangular Level-3 routines take the full netlib operand variants
// (Side × Uplo × Trans, non-unit diagonal).

#include <cstdint>

namespace augem::blas {

using index_t = std::int64_t;

enum class Trans : std::uint8_t { kNo, kYes };

/// Which side the symmetric/triangular operand multiplies from:
/// kLeft → op(A)·B, kRight → B·op(A).
enum class Side : std::uint8_t { kLeft, kRight };

/// Which triangle of the symmetric/triangular operand is stored.
enum class Uplo : std::uint8_t { kLower, kUpper };

/// The triangle op(A) *behaves* as: transposing flips the stored triangle,
/// so op(A) is effectively upper-triangular iff exactly one of
/// {stored-upper, transposed} holds.
inline bool effective_upper(Uplo uplo, Trans trans) {
  return (uplo == Uplo::kUpper) == (trans == Trans::kNo);
}

/// Element (i, j) of a column-major matrix with leading dimension ld.
inline double& at(double* a, index_t ld, index_t i, index_t j) {
  return a[j * ld + i];
}
inline const double& at(const double* a, index_t ld, index_t i, index_t j) {
  return a[j * ld + i];
}

/// Element (i, j) of op(A): op = transpose ? A^T : A.
inline const double& op_at(const double* a, index_t ld, Trans t, index_t i,
                           index_t j) {
  return t == Trans::kNo ? at(a, ld, i, j) : at(a, ld, j, i);
}

/// Element (i, j) of a symmetric matrix stored in triangle `uplo`; the
/// opposite triangle is read through the mirrored stored element, so the
/// unstored triangle is never touched.
inline const double& sym_at(const double* a, index_t ld, Uplo uplo, index_t i,
                            index_t j) {
  const bool stored = uplo == Uplo::kLower ? i >= j : i <= j;
  return stored ? at(a, ld, i, j) : at(a, ld, j, i);
}

/// Element (i, j) of op(A) for a triangular A stored in triangle `uplo`.
/// Elements outside the effective triangle are structural zeros: the
/// unstored triangle is never read (it may be NaN-poisoned or unmapped).
inline double tri_at(const double* a, index_t ld, Uplo uplo, Trans trans,
                     index_t i, index_t j) {
  const bool inside = effective_upper(uplo, trans) ? i <= j : i >= j;
  return inside ? op_at(a, ld, trans, i, j) : 0.0;
}

/// BLAS output-operand scaling: y[i] = beta * y[i], except that beta == 0
/// *overwrites* with zero instead of multiplying — the netlib convention
/// ("when BETA is supplied as zero then Y need not be set on input"), so
/// NaN/Inf payloads in an uninitialized output operand never leak into the
/// result. Every implementation in this repository must route its beta
/// handling through these semantics (see docs/correctness.md).
inline void beta_scale(double* y, index_t n, double beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (index_t i = 0; i < n; ++i) y[i] = 0.0;
  } else {
    for (index_t i = 0; i < n; ++i) y[i] *= beta;
  }
}

}  // namespace augem::blas
