#pragma once
// The BLAS library interface every implementation in this repository
// satisfies: the AUGEM-backed library (augem/augem_blas) and the three
// simulated comparators standing in for the paper's MKL/ACML, ATLAS and
// GotoBLAS (DESIGN.md §2).
//
// Implementations provide the four primitive kernels the paper generates
// (GEMM, GEMV, AXPY, DOT). The six higher-level routines of the paper's
// Table 6 (SYMM, SYRK, SYR2K, TRMM, TRSM, GER) have default implementations
// here that cast their bulk computation onto those primitives — exactly the
// structure the paper's §4 describes (citing Goto & van de Geijn [13]).

#include <memory>
#include <string>

#include "blas/types.hpp"

namespace augem::blas {

class Blas {
 public:
  virtual ~Blas() = default;

  /// Implementation name shown in benchmark output ("AUGEM", "vendorsim"…).
  virtual std::string name() const = 0;

  // ---- the four generated/primitive kernels --------------------------------

  /// C(m×n) = alpha * op(A) * op(B) + beta * C.
  virtual void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                    double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc) = 0;

  /// Batch-strided GEMM with optional fused epilogue, over `batch`
  /// same-shaped instances:
  ///
  ///   C_p = relu?( alpha * A_p * B_p + beta * C_p + bias_p )
  ///
  /// where X_p = X + p * stride_x (no transposition; all instances share
  /// m, n, k and the leading dimensions). `bias` is null for no bias add,
  /// else instance p adds bias[p*stride_bias + i] to every element of row
  /// i (stride_bias 0 shares one vector across the batch). `relu` clamps
  /// at zero after everything else, with max-semantics: a NaN result
  /// clamps to 0. beta == 0 overwrites (beta_scale semantics).
  ///
  /// The default implementation is a straightforward reference loop — it
  /// doubles as the oracle the fuzz harness checks fast paths against.
  /// RuntimeBlas overrides it with the amortized-dispatch fast path.
  virtual void gemm_batch_strided(index_t m, index_t n, index_t k,
                                  double alpha, const double* a, index_t lda,
                                  index_t stride_a, const double* b,
                                  index_t ldb, index_t stride_b, double beta,
                                  double* c, index_t ldc, index_t stride_c,
                                  index_t batch,
                                  const double* bias = nullptr,
                                  index_t stride_bias = 0, bool relu = false);

  /// y(m) = alpha * A(m×n) * x + beta * y.
  virtual void gemv(index_t m, index_t n, double alpha, const double* a,
                    index_t lda, const double* x, double beta, double* y) = 0;

  /// y += alpha * x.
  virtual void axpy(index_t n, double alpha, const double* x, double* y) = 0;

  /// dot(x, y).
  virtual double dot(index_t n, const double* x, const double* y) = 0;

  /// x *= alpha (covered by the svSCAL extension template in the AUGEM
  /// implementation).
  virtual void scal(index_t n, double alpha, double* x) = 0;

  /// y(n) = alpha * A^T(n×m... i.e. A is m×n, op=transpose) * x(m) + beta*y.
  /// Default: one DOT per column of A — the paper's "Level-2 routines
  /// invoke optimized Level-1 kernels" structure (§4).
  virtual void gemv_t(index_t m, index_t n, double alpha, const double* a,
                      index_t lda, const double* x, double beta, double* y);

  // ---- Table 6 routines, cast onto the primitives --------------------------

  /// A(m×n) += alpha * x * y^T — one AXPY per column.
  virtual void ger(index_t m, index_t n, double alpha, const double* x,
                   const double* y, double* a, index_t lda);

  /// C = alpha*A*B + beta*C with A symmetric (lower, left): the symmetric
  /// operand is expanded blockwise and the bulk runs through GEMM.
  virtual void symm(index_t m, index_t n, double alpha, const double* a,
                    index_t lda, const double* b, index_t ldb, double beta,
                    double* c, index_t ldc);

  /// C(n×n, lower) = alpha*A*A^T + beta*C — block panels through GEMM(N,T).
  virtual void syrk(index_t n, index_t k, double alpha, const double* a,
                    index_t lda, double beta, double* c, index_t ldc);

  /// C(n×n, lower) = alpha*(A*B^T + B*A^T) + beta*C — two GEMM sweeps.
  virtual void syr2k(index_t n, index_t k, double alpha, const double* a,
                     index_t lda, const double* b, index_t ldb, double beta,
                     double* c, index_t ldc);

  /// B = L*B (left, lower): block panels via GEMM plus small triangular
  /// block multiplies.
  virtual void trmm(index_t m, index_t n, const double* l, index_t ldl,
                    double* b, index_t ldb);

  /// B = L^{-1}*B (left, lower): blocked forward substitution. The
  /// panel update B2 -= L21*B1 runs through GEMM; the diagonal solve
  /// B1 = L11^{-1}*B1 is plain scalar code — reproducing the paper's
  /// observed TRSM weakness (§5: "the first step cannot be simply derived
  /// from the GEMM kernel").
  virtual void trsm(index_t m, index_t n, const double* l, index_t ldl,
                    double* b, index_t ldb);

 protected:
  /// Block size used by the default Level-3 algorithms.
  static constexpr index_t kL3Block = 128;
};

}  // namespace augem::blas
