#pragma once
// The BLAS library interface every implementation in this repository
// satisfies: the AUGEM-backed library (augem/augem_blas) and the three
// simulated comparators standing in for the paper's MKL/ACML, ATLAS and
// GotoBLAS (DESIGN.md §2).
//
// Implementations provide the four primitive kernels the paper generates
// (GEMM, GEMV, AXPY, DOT). The six higher-level routines of the paper's
// Table 6 (SYMM, SYRK, SYR2K, TRMM, TRSM, GER) have default implementations
// here that cast their bulk computation onto those primitives — exactly the
// structure the paper's §4 describes (citing Goto & van de Geijn [13]).

#include <memory>
#include <string>

#include "blas/types.hpp"

namespace augem::blas {

class Blas {
 public:
  virtual ~Blas() = default;

  /// Implementation name shown in benchmark output ("AUGEM", "vendorsim"…).
  virtual std::string name() const = 0;

  // ---- the four generated/primitive kernels --------------------------------

  /// C(m×n) = alpha * op(A) * op(B) + beta * C.
  virtual void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                    double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc) = 0;

  /// Batch-strided GEMM with optional fused epilogue, over `batch`
  /// same-shaped instances:
  ///
  ///   C_p = relu?( alpha * A_p * B_p + beta * C_p + bias_p )
  ///
  /// where X_p = X + p * stride_x (no transposition; all instances share
  /// m, n, k and the leading dimensions). `bias` is null for no bias add,
  /// else instance p adds bias[p*stride_bias + i] to every element of row
  /// i (stride_bias 0 shares one vector across the batch). `relu` clamps
  /// at zero after everything else, with max-semantics: a NaN result
  /// clamps to 0. beta == 0 overwrites (beta_scale semantics).
  ///
  /// The default implementation is a straightforward reference loop — it
  /// doubles as the oracle the fuzz harness checks fast paths against.
  /// RuntimeBlas overrides it with the amortized-dispatch fast path.
  virtual void gemm_batch_strided(index_t m, index_t n, index_t k,
                                  double alpha, const double* a, index_t lda,
                                  index_t stride_a, const double* b,
                                  index_t ldb, index_t stride_b, double beta,
                                  double* c, index_t ldc, index_t stride_c,
                                  index_t batch,
                                  const double* bias = nullptr,
                                  index_t stride_bias = 0, bool relu = false);

  /// y(m) = alpha * A(m×n) * x + beta * y.
  virtual void gemv(index_t m, index_t n, double alpha, const double* a,
                    index_t lda, const double* x, double beta, double* y) = 0;

  /// y += alpha * x.
  virtual void axpy(index_t n, double alpha, const double* x, double* y) = 0;

  /// dot(x, y).
  virtual double dot(index_t n, const double* x, const double* y) = 0;

  /// x *= alpha (covered by the svSCAL extension template in the AUGEM
  /// implementation).
  virtual void scal(index_t n, double alpha, double* x) = 0;

  /// y(n) = alpha * A^T(n×m... i.e. A is m×n, op=transpose) * x(m) + beta*y.
  /// Default: one DOT per column of A — the paper's "Level-2 routines
  /// invoke optimized Level-1 kernels" structure (§4).
  virtual void gemv_t(index_t m, index_t n, double alpha, const double* a,
                      index_t lda, const double* x, double beta, double* y);

  // ---- Table 6 routines, cast onto the primitives --------------------------

  /// A(m×n) += alpha * x * y^T — one AXPY per column.
  virtual void ger(index_t m, index_t n, double alpha, const double* x,
                   const double* y, double* a, index_t lda);

  /// C = alpha*op-side(A_sym, B) + beta*C with A symmetric (m×m on the
  /// left, n×n on the right), stored in triangle `uplo`: the symmetric
  /// operand is expanded blockwise and the bulk runs through GEMM. netlib
  /// semantics: beta == 0 overwrites, alpha == 0 reduces to the beta
  /// update with A and B unread.
  virtual void symm(Side side, Uplo uplo, index_t m, index_t n, double alpha,
                    const double* a, index_t lda, const double* b, index_t ldb,
                    double beta, double* c, index_t ldc);

  /// C(n×n, triangle `uplo`) = alpha*op(A)*op(A)^T + beta*C — block panels
  /// through GEMM; op(A) is n×k.
  virtual void syrk(Uplo uplo, Trans trans, index_t n, index_t k, double alpha,
                    const double* a, index_t lda, double beta, double* c,
                    index_t ldc);

  /// C(n×n, triangle `uplo`) = alpha*(op(A)*op(B)^T + op(B)*op(A)^T) +
  /// beta*C — two GEMM sweeps per panel.
  virtual void syr2k(Uplo uplo, Trans trans, index_t n, index_t k,
                     double alpha, const double* a, index_t lda,
                     const double* b, index_t ldb, double beta, double* c,
                     index_t ldc);

  /// B = alpha*op(A)*B (kLeft) or alpha*B*op(A) (kRight), A triangular
  /// (non-unit diagonal) stored in triangle `uplo`: block panels via GEMM
  /// plus small dense-expanded triangular block multiplies. alpha == 0
  /// zeroes B without reading A (netlib dtrmm).
  virtual void trmm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
                    double alpha, const double* a, index_t lda, double* b,
                    index_t ldb);

  /// Solves op(A)*X = alpha*B (kLeft) or X*op(A) = alpha*B (kRight) in
  /// place in B; A triangular, non-unit diagonal, triangle `uplo`. Blocked
  /// substitution: the panel update runs through GEMM; the diagonal solve
  /// is plain scalar code — reproducing the paper's observed TRSM weakness
  /// (§5: "the first step cannot be simply derived from the GEMM kernel").
  /// Zero and non-finite pivots throw (docs/correctness.md).
  virtual void trsm(Side side, Uplo uplo, Trans trans, index_t m, index_t n,
                    double alpha, const double* a, index_t lda, double* b,
                    index_t ldb);

  /// Overrides the Level-3 decomposition block (default 128). A testing and
  /// tuning hook: small blocks force multi-block decompositions at fuzz-
  /// sized problems, exercising every block-boundary path.
  void set_level3_block(index_t nb) { l3_block_ = nb < 1 ? 1 : nb; }

 protected:
  /// Default block size of the Level-3 algorithms.
  static constexpr index_t kL3Block = 128;

  index_t level3_block() const { return l3_block_; }

 private:
  index_t l3_block_ = kL3Block;
};

}  // namespace augem::blas
