#include "blas/libraries.hpp"
#include "blas/reference.hpp"

namespace augem::blas {

namespace {

/// Naive reference implementation: no blocking, no SIMD, no packing.
class RefBlas final : public Blas {
 public:
  std::string name() const override { return "refblas"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    ref::gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    ref::gemv(m, n, alpha, a, lda, x, beta, y);
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    ref::axpy(n, alpha, x, y);
  }

  double dot(index_t n, const double* x, const double* y) override {
    return ref::dot(n, x, y);
  }

  void scal(index_t n, double alpha, double* x) override {
    ref::scal(n, alpha, x);
  }
};

}  // namespace

std::unique_ptr<Blas> make_refblas() { return std::make_unique<RefBlas>(); }

}  // namespace augem::blas
