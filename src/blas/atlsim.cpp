// atlsim: the ATLAS stand-in (DESIGN.md §2).
//
// Register-tiled, scalar-replaced *plain C* — the kind of code the ATLAS
// generator emits — compiled by the general-purpose compiler with
// auto-vectorization enabled (-O3 -funroll-loops, see CMakeLists). No
// intrinsics, no assembly: the compiler decides everything machine-level.
// The paper's thesis is that this approach leaves performance on the table
// versus template-generated assembly.

#include "blas/driver.hpp"
#include "blas/libraries.hpp"

namespace augem::blas {

namespace {

/// 4×4 register tile in plain C, every accumulator scalar-replaced.
void block_kernel_c(index_t mc, index_t nc, index_t kc, const double* pa,
                    const double* pb, double* c, index_t ldc) {
  const index_t m_main = mc / 4 * 4;
  const index_t n_main = nc / 4 * 4;
  for (index_t j = 0; j < n_main; j += 4) {
    for (index_t i = 0; i < m_main; i += 4) {
      double r00 = 0, r10 = 0, r20 = 0, r30 = 0;
      double r01 = 0, r11 = 0, r21 = 0, r31 = 0;
      double r02 = 0, r12 = 0, r22 = 0, r32 = 0;
      double r03 = 0, r13 = 0, r23 = 0, r33 = 0;
      const double* ap = pa + i;
      const double* bp = pb + j;
      for (index_t l = 0; l < kc; ++l) {
        const double a0 = ap[0], a1 = ap[1], a2 = ap[2], a3 = ap[3];
        const double b0 = bp[0], b1 = bp[1], b2 = bp[2], b3 = bp[3];
        r00 += a0 * b0; r10 += a1 * b0; r20 += a2 * b0; r30 += a3 * b0;
        r01 += a0 * b1; r11 += a1 * b1; r21 += a2 * b1; r31 += a3 * b1;
        r02 += a0 * b2; r12 += a1 * b2; r22 += a2 * b2; r32 += a3 * b2;
        r03 += a0 * b3; r13 += a1 * b3; r23 += a2 * b3; r33 += a3 * b3;
        ap += mc;
        bp += nc;
      }
      double* c0 = &at(c, ldc, i, j);
      double* c1 = &at(c, ldc, i, j + 1);
      double* c2 = &at(c, ldc, i, j + 2);
      double* c3 = &at(c, ldc, i, j + 3);
      c0[0] += r00; c0[1] += r10; c0[2] += r20; c0[3] += r30;
      c1[0] += r01; c1[1] += r11; c1[2] += r21; c1[3] += r31;
      c2[0] += r02; c2[1] += r12; c2[2] += r22; c2[3] += r32;
      c3[0] += r03; c3[1] += r13; c3[2] += r23; c3[3] += r33;
    }
  }
  for (index_t j = 0; j < nc; ++j) {
    const index_t i0 = j < n_main ? m_main : 0;
    for (index_t i = i0; i < mc; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < kc; ++l) acc += pa[l * mc + i] * pb[l * nc + j];
      at(c, ldc, i, j) += acc;
    }
  }
}

class AtlSim final : public Blas {
 public:
  AtlSim() : ctx_(threaded_gemm_context(default_block_sizes(host_arch()))) {}

  std::string name() const override { return "atlsim"; }

  void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) override {
    blocked_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ctx_,
                 block_kernel_c);
  }

  void gemv(index_t m, index_t n, double alpha, const double* a, index_t lda,
            const double* x, double beta, double* y) override {
    beta_scale(y, m, beta);
    if (alpha == 0.0) return;
    for (index_t j = 0; j < n; ++j) {
      const double s = alpha * x[j];
      const double* col = &at(a, lda, 0, j);
      for (index_t i = 0; i < m; ++i) y[i] += col[i] * s;
    }
  }

  void axpy(index_t n, double alpha, const double* x, double* y) override {
    if (alpha == 0.0) return;
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  }

  double dot(index_t n, const double* x, const double* y) override {
    double acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    index_t i = 0;
    for (; i + 4 <= n; i += 4) {
      acc0 += x[i] * y[i];
      acc1 += x[i + 1] * y[i + 1];
      acc2 += x[i + 2] * y[i + 2];
      acc3 += x[i + 3] * y[i + 3];
    }
    double total = (acc0 + acc1) + (acc2 + acc3);
    for (; i < n; ++i) total += x[i] * y[i];
    return total;
  }

  void scal(index_t n, double alpha, double* x) override {
    if (alpha == 0.0) {
      for (index_t i = 0; i < n; ++i) x[i] = 0.0;
      return;
    }
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
  }

 private:
  GemmContext ctx_;
};

}  // namespace

std::unique_ptr<Blas> make_atlsim() { return std::make_unique<AtlSim>(); }

}  // namespace augem::blas
