#pragma once
// First-class Level-3 casting engine (paper §4, Table 6): SYMM / SYRK /
// SYR2K / TRMM / TRSM decomposed onto ONE block kernel through the
// prepacked-panel driver (blas/driver.hpp).
//
// Unlike the Blas base-class casting — which re-enters the virtual gemm and
// therefore repacks its operands on every panel call — this engine packs
// each shared operand exactly once into the kernel's panel layout and
// reuses the packed chunks across the whole decomposition:
//   * SYMM packs B (left) / the expanded symmetric A (right) once; every
//     block row of C consumes the same chunks.
//   * SYRK/SYR2K pack op(A)^T (and op(B)^T) once; the diagonal-block
//     temporary and the off-diagonal panel update share each chunk.
//   * TRMM packs the dense operand once (reading B before the in-place
//     overwrite starts) and masks the triangle in the A-packer.
//   * TRSM packs each solved block of X once, immediately after its
//     diagonal solve; every later trailing update re-reads those chunks.
// Reuse is measured (Level3Stats) so tests can assert the sharing actually
// happens. Serial and threaded contexts produce bit-identical results: the
// tile decomposition is fixed at pack time, independent of thread count.

#include "blas/driver.hpp"
#include "blas/types.hpp"

namespace augem::blas {

/// How a Level-3 engine call runs: the block kernel, its threading context
/// and the decomposition block (diagonal solves / C column blocks).
struct Level3Config {
  GemmContext ctx;
  BlockKernel kernel;
  index_t block = 128;            ///< NB: triangular/diagonal block size
  Level3Stats* stats = nullptr;   ///< optional packed-panel reuse counters
};

/// C = alpha*A_sym*B + beta*C (kLeft) or alpha*B*A_sym + beta*C (kRight).
void level3_symm(const Level3Config& cfg, Side side, Uplo uplo, index_t m,
                 index_t n, double alpha, const double* a, index_t lda,
                 const double* b, index_t ldb, double beta, double* c,
                 index_t ldc);

/// C(triangle uplo) = alpha*op(A)*op(A)^T + beta*C.
void level3_syrk(const Level3Config& cfg, Uplo uplo, Trans trans, index_t n,
                 index_t k, double alpha, const double* a, index_t lda,
                 double beta, double* c, index_t ldc);

/// C(triangle uplo) = alpha*(op(A)*op(B)^T + op(B)*op(A)^T) + beta*C.
void level3_syr2k(const Level3Config& cfg, Uplo uplo, Trans trans, index_t n,
                  index_t k, double alpha, const double* a, index_t lda,
                  const double* b, index_t ldb, double beta, double* c,
                  index_t ldc);

/// B = alpha*op(A)*B (kLeft) or alpha*B*op(A) (kRight), A triangular.
void level3_trmm(const Level3Config& cfg, Side side, Uplo uplo, Trans trans,
                 index_t m, index_t n, double alpha, const double* a,
                 index_t lda, double* b, index_t ldb);

/// Solves op(A)*X = alpha*B (kLeft) or X*op(A) = alpha*B (kRight) in B.
/// Zero/non-finite pivots throw augem::Error (docs/correctness.md).
void level3_trsm(const Level3Config& cfg, Side side, Uplo uplo, Trans trans,
                 index_t m, index_t n, double alpha, const double* a,
                 index_t lda, double* b, index_t ldb);

}  // namespace augem::blas
