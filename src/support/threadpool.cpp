#include "support/threadpool.hpp"

#include <cstdlib>
#include <utility>

#include "support/arch.hpp"
#include "support/error.hpp"

namespace augem {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  AUGEM_CHECK(num_threads >= 1, "pool needs at least one participant, got "
                                    << num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int tid = 1; tid < num_threads_; ++tid)
    workers_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AUGEM_CHECK(!running_, "nested ThreadPool::run on the same pool");
    running_ = true;
    job_ = &fn;
    done_count_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_count_ == num_threads_ - 1; });
  job_ = nullptr;
  running_ = false;
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::barrier() {
  if (num_threads_ == 1) return;
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const bool sense = barrier_sense_;
  if (++barrier_arrived_ == num_threads_) {
    barrier_arrived_ = 0;
    barrier_sense_ = !sense;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [this, sense] { return barrier_sense_ != sense; });
  }
}

void ThreadPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++done_count_;
      if (done_count_ == num_threads_ - 1) done_cv_.notify_one();
    }
  }
}

int ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("AUGEM_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return host_arch().cores >= 1 ? host_arch().cores : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

}  // namespace augem
