#pragma once
// Minimal JSON support shared by the kernel runtime and the perf harness:
// the persistent tuning database stores one JSON object per line, the
// benchmark reporter writes BENCH_<name>.json trajectory files, and the
// CLI tools emit
// machine-readable output. Deliberately small — objects, arrays, strings,
// doubles, bools, null — because the records the runtime reads and writes
// never need more, and a hand-rolled parser keeps the subsystem free of
// external dependencies.
//
// Parsing is *tolerant by construction*: `parse` returns std::nullopt on
// any malformed input instead of throwing, so a corrupt database line is a
// skipped record, never a fatal error (the contract docs/runtime.md
// documents).

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace augem {

/// One JSON value. Numbers are always doubles (the database round-trips
/// small integers exactly; doubles have 53 mantissa bits).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  const std::string& as_string() const { return str_; }

  std::vector<Json>& items() { return items_; }
  const std::vector<Json>& items() const { return items_; }
  void push_back(Json v) { items_.push_back(std::move(v)); }

  /// Object field access; `get` returns null for a missing key.
  Json& operator[](const std::string& key) { return fields_[key]; }
  const Json* get(const std::string& key) const {
    auto it = fields_.find(key);
    return it == fields_.end() ? nullptr : &it->second;
  }
  bool has(const std::string& key) const { return fields_.count(key) > 0; }
  const std::map<std::string, Json>& fields() const { return fields_; }

  /// Typed field helpers for record decoding: nullopt when the field is
  /// missing or the wrong type (callers treat that as a corrupt record).
  std::optional<double> number(const std::string& key) const;
  std::optional<std::string> string(const std::string& key) const;
  std::optional<bool> boolean(const std::string& key) const;

  /// Serializes to compact JSON (no whitespace; keys in sorted order so
  /// records are byte-stable across runs).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

/// Parses one JSON document. Returns nullopt on any syntax error or on
/// trailing garbage after the document — never throws.
std::optional<Json> parse_json(std::string_view text);

}  // namespace augem
