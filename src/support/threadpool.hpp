#pragma once
// Persistent work-pool threading layer for the blocked BLAS driver.
//
// A ThreadPool owns a fixed set of worker threads that survive across
// submits, so the per-GEMM-call cost is two condition-variable round trips
// rather than thread creation. `run(fn)` executes fn(tid) on every
// participant — the calling thread acts as tid 0, the workers as
// 1..num_threads()-1 — and returns once all of them finished. Inside a
// running task, `barrier()` synchronizes all participants (used between the
// cooperative B-panel pack and the C-update phase of the parallel driver).
//
// The pool size follows AUGEM_NUM_THREADS when set, else the detected core
// count — the same knob OpenBLAS exposes for the paper's multi-threaded
// DGEMM runs.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace augem {

class ThreadPool {
 public:
  /// Spawns num_threads-1 workers (the submitting thread is participant 0).
  /// num_threads must be >= 1; 1 is the degenerate pool that runs every
  /// task inline with no worker threads and no-op barriers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(tid) for tid in [0, num_threads()). The caller participates as
  /// tid 0 and the call returns after every participant finished. The first
  /// exception thrown by any participant is rethrown here after the batch
  /// drains. Submitting from inside a running task (nesting) is an error.
  void run(const std::function<void(int)>& fn);

  /// Blocks until all num_threads() participants of the current `run` have
  /// arrived. Callable only from inside a task; every participant must reach
  /// every barrier the task executes, or the batch deadlocks. Reusable any
  /// number of times within and across submits (sense-reversing).
  void barrier();

  /// AUGEM_NUM_THREADS when set to a positive integer, else the detected
  /// core count of the host (always >= 1).
  static int default_num_threads();

  /// Process-wide pool sized by default_num_threads() at first use.
  static ThreadPool& global();

 private:
  void worker_loop(int tid);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Submit/complete handshake.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;  ///< bumped per submit; workers wait for a change
  int done_count_ = 0;
  bool running_ = false;
  bool stop_ = false;
  std::exception_ptr first_error_;

  // Sense-reversing barrier state (separate lock: barrier traffic must not
  // contend with the submit handshake).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  bool barrier_sense_ = false;
};

}  // namespace augem
