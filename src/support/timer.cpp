#include "support/timer.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace augem {

double time_best_of(int reps, const std::function<void()>& fn) {
  AUGEM_CHECK(reps > 0, "need at least one repetition");
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    const double s = t.elapsed_s();
    best = (i == 0) ? s : std::min(best, s);
  }
  return best;
}

double time_mean_of(int reps, const std::function<void()>& fn) {
  AUGEM_CHECK(reps > 0, "need at least one repetition");
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    total += t.elapsed_s();
  }
  return total / reps;
}

}  // namespace augem
