#pragma once
// Error handling for the AUGEM framework.
//
// The framework is a code generator: almost every failure is a programming
// or usage error (malformed IR, impossible unroll factor, register pressure
// overflow).  We signal these with a single exception type carrying a
// human-readable message, and provide CHECK macros that capture the failing
// expression and source location.

#include <stdexcept>
#include <sstream>
#include <string>

namespace augem {

/// Exception thrown on any AUGEM usage or internal-consistency error.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace augem

/// Throws augem::Error if `expr` is false. Usage:
///   AUGEM_CHECK(n > 0, "vector length must be positive, got " << n);
#define AUGEM_CHECK(expr, ...)                                             \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream augem_check_os_;                                  \
      (void)(augem_check_os_ __VA_OPT__(<< __VA_ARGS__));                  \
      ::augem::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                           augem_check_os_.str());         \
    }                                                                      \
  } while (0)

/// Unconditional failure with a message.
#define AUGEM_FAIL(...) AUGEM_CHECK(false, __VA_ARGS__)
