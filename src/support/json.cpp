#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace augem {

std::optional<double> Json::number(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::optional<std::string> Json::string(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

std::optional<bool> Json::boolean(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->as_bool();
}

namespace {

void dump_string(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_number(double v, std::ostringstream& os) {
  // Integers print without a fraction (keys and tile sizes stay readable);
  // everything else uses enough digits to round-trip.
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  } else {
    os << "null";  // JSON has no Inf/NaN; null marks the record corrupt
  }
}

void dump_value(const Json& j, std::ostringstream& os) {
  switch (j.type()) {
    case Json::Type::kNull: os << "null"; break;
    case Json::Type::kBool: os << (j.as_bool() ? "true" : "false"); break;
    case Json::Type::kNumber: dump_number(j.as_number(), os); break;
    case Json::Type::kString: dump_string(j.as_string(), os); break;
    case Json::Type::kArray: {
      os << '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) os << ',';
        first = false;
        dump_value(item, os);
      }
      os << ']';
      break;
    }
    case Json::Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : j.fields()) {
        if (!first) os << ',';
        first = false;
        dump_string(key, os);
        os << ':';
        dump_value(value, os);
      }
      os << '}';
      break;
    }
  }
}

/// Recursive-descent parser. Every method returns false on malformed
/// input; the cursor position is then meaningless.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(Json& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage = corrupt record
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Json(false);
      return true;
    }
    if (c == '"') return parse_string(out);
    if (c == '[') return parse_array(out, depth);
    if (c == '{') return parse_object(out, depth);
    return parse_number(out);
  }

  bool parse_string(Json& out) {
    std::string s;
    if (!parse_raw_string(s)) return false;
    out = Json(std::move(s));
    return true;
  }

  bool parse_raw_string(std::string& s) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    s.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The database only ever stores ASCII; encode BMP code points
            // as UTF-8 so foreign records survive a round trip.
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xc0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              s += static_cast<char>(0xe0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              s += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // unescaped control character
      } else {
        s += c;
      }
    }
    return false;  // unterminated string
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) return false;
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out = Json(v);
    return true;
  }

  bool parse_array(Json& out, int depth) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_raw_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out[key] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::ostringstream os;
  dump_value(*this, os);
  return os.str();
}

std::optional<Json> parse_json(std::string_view text) {
  Json out;
  Parser p(text);
  if (!p.parse_document(out)) return std::nullopt;
  return out;
}

}  // namespace augem
