#pragma once
// Canonical floating-point operation counts for the DLA routines measured in
// the paper's evaluation. All figures/tables report MFLOPS computed from
// these counts, so they live in one place.

#include <cstdint>

namespace augem {

/// 2*m*n*k flops for C(m×n) += A(m×k) * B(k×n).
inline double gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// 2*m*n flops for y(m) += A(m×n) * x(n).
inline double gemv_flops(std::int64_t m, std::int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}

/// 2*n flops for y += alpha * x.
inline double axpy_flops(std::int64_t n) { return 2.0 * static_cast<double>(n); }

/// 2*n flops for dot(x, y).
inline double dot_flops(std::int64_t n) { return 2.0 * static_cast<double>(n); }

/// 2*m*n flops for A += alpha * x * y^T (GER).
inline double ger_flops(std::int64_t m, std::int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}

/// SYMM C(m×n) = A(m×m, symmetric) * B(m×n): 2*m*m*n.
inline double symm_flops(std::int64_t m, std::int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(m) *
         static_cast<double>(n);
}

/// SYRK C(n×n) += A(n×k) * A^T: n*(n+1)*k (only a triangle is updated).
inline double syrk_flops(std::int64_t n, std::int64_t k) {
  return static_cast<double>(n) * static_cast<double>(n + 1) *
         static_cast<double>(k);
}

/// SYR2K C(n×n) += A*B^T + B*A^T over a triangle: 2*n*(n+1)*k.
inline double syr2k_flops(std::int64_t n, std::int64_t k) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n + 1) *
         static_cast<double>(k);
}

/// TRMM B(m×n) = L(m×m, triangular) * B: m*m*n.
inline double trmm_flops(std::int64_t m, std::int64_t n) {
  return static_cast<double>(m) * static_cast<double>(m) *
         static_cast<double>(n);
}

/// TRSM B(m×n) = L^{-1} * B: m*m*n.
inline double trsm_flops(std::int64_t m, std::int64_t n) {
  return static_cast<double>(m) * static_cast<double>(m) *
         static_cast<double>(n);
}

}  // namespace augem
