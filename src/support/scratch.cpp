#include "support/scratch.hpp"

#include "support/buffer.hpp"

namespace augem {

double* scratch_doubles(std::size_t count, Scratch slot) {
  thread_local DoubleBuffer buffers[static_cast<int>(Scratch::kCount)];
  DoubleBuffer& buf = buffers[static_cast<int>(slot)];
  if (buf.size() < count) buf = DoubleBuffer(count);
  return buf.data();
}

}  // namespace augem
