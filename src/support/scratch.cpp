#include "support/scratch.hpp"

#include "support/buffer.hpp"
#include "support/error.hpp"

namespace augem {

namespace {

#ifndef NDEBUG
/// Debug live-slot accounting: per thread, which slots a ScratchLease
/// currently owns. scratch_doubles and ScratchLease check against it.
thread_local bool g_leased[static_cast<int>(Scratch::kCount)] = {};
#endif

DoubleBuffer& slot_buffer(Scratch slot) {
  thread_local DoubleBuffer buffers[static_cast<int>(Scratch::kCount)];
  return buffers[static_cast<int>(slot)];
}

}  // namespace

bool scratch_guard_enabled() {
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

double* scratch_doubles(std::size_t count, Scratch slot) {
#ifndef NDEBUG
  // A raw acquisition may *grow* the buffer a live lease points into —
  // that invalidates the lease holder's pointer with no visible failure
  // until the stale data is read back.
  AUGEM_CHECK(!g_leased[static_cast<int>(slot)],
              "scratch slot " << static_cast<int>(slot)
                              << " acquired while held by a live lease");
#endif
  DoubleBuffer& buf = slot_buffer(slot);
  if (buf.size() < count) buf = DoubleBuffer(count);
  return buf.data();
}

ScratchLease::ScratchLease(std::size_t count, Scratch slot) : slot_(slot) {
#ifndef NDEBUG
  AUGEM_CHECK(!g_leased[static_cast<int>(slot)],
              "scratch slot " << static_cast<int>(slot)
                              << " leased while held by a live lease");
#endif
  DoubleBuffer& buf = slot_buffer(slot);
  if (buf.size() < count) buf = DoubleBuffer(count);
  data_ = buf.data();
#ifndef NDEBUG
  g_leased[static_cast<int>(slot)] = true;
#endif
}

ScratchLease::~ScratchLease() {
#ifndef NDEBUG
  g_leased[static_cast<int>(slot_)] = false;
#else
  (void)slot_;
#endif
}

}  // namespace augem
