#pragma once
// Aligned, RAII-owned numeric buffers.
//
// Generated SIMD kernels use aligned vector loads where possible, so all
// matrices/vectors in tests, benchmarks and the BLAS layer live in 64-byte
// aligned storage (a cache line, which also satisfies 32-byte AVX alignment).

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "support/error.hpp"

namespace augem {

/// Heap buffer of `T` aligned to `kAlign` bytes. Movable, non-copyable.
template <typename T, std::size_t kAlign = 64>
class AlignedBuffer {
  static_assert(kAlign >= alignof(T) && (kAlign & (kAlign - 1)) == 0,
                "alignment must be a power of two and at least alignof(T)");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    // Round the byte size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const std::size_t bytes = (count * sizeof(T) + kAlign - 1) / kAlign * kAlign;
    data_ = static_cast<T*>(std::aligned_alloc(kAlign, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    for (std::size_t i = 0; i < count; ++i) new (data_ + i) T();
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void release() {
    if (data_ != nullptr) {
      for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
      std::free(data_);
      data_ = nullptr;
    }
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

using DoubleBuffer = AlignedBuffer<double>;

}  // namespace augem
