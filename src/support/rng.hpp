#pragma once
// Deterministic random data generation for tests and benchmarks.
//
// All randomized correctness tests must be reproducible, so every fill goes
// through an explicitly seeded engine.

#include <cstdint>
#include <random>
#include <span>

namespace augem {

/// Deterministic RNG for test/benchmark data (seeded mt19937_64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = -1.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Fills `out` with uniform doubles in [lo, hi).
  void fill(std::span<double> out, double lo = -1.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    for (double& x : out) x = dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace augem
