#include "support/arch.hpp"

#include <cpuid.h>

#include <array>
#include <sstream>
#include <thread>

#include "support/error.hpp"

namespace augem {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return "SSE2";
    case Isa::kAvx:  return "AVX";
    case Isa::kFma3: return "FMA3";
    case Isa::kFma4: return "FMA4";
  }
  return "?";
}

int isa_vector_doubles(Isa isa) { return isa == Isa::kSse2 ? 2 : 4; }

int isa_vector_bits(Isa isa) { return isa == Isa::kSse2 ? 128 : 256; }

bool isa_is_vex(Isa isa) { return isa != Isa::kSse2; }

Isa CpuArch::best_native_isa() const {
  if (has_fma3) return Isa::kFma3;
  if (has_fma4) return Isa::kFma4;
  if (has_avx) return Isa::kAvx;
  return Isa::kSse2;
}

bool CpuArch::supports(Isa isa) const {
  switch (isa) {
    case Isa::kSse2: return has_sse2;
    case Isa::kAvx:  return has_avx;
    case Isa::kFma3: return has_fma3;
    case Isa::kFma4: return has_fma4;
  }
  return false;
}

std::vector<Isa> CpuArch::native_isas() const {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kSse2, Isa::kAvx, Isa::kFma3, Isa::kFma4})
    if (supports(isa)) out.push_back(isa);
  return out;
}

std::string CpuArch::report() const {
  std::ostringstream os;
  os << "CPU:          " << name << "\n"
     << "L1d cache:    " << l1d_bytes / 1024 << " KB\n"
     << "L2 cache:     " << l2_bytes / 1024 << " KB\n"
     << "L3 cache:     " << l3_bytes / 1024 << " KB\n"
     << "Vector size:  " << isa_vector_bits(best_native_isa()) << "-bit\n"
     << "Cores:        " << cores << "\n"
     << "ISA support: ";
  for (Isa isa : native_isas()) os << " " << isa_name(isa);
  os << "\n";
  return os.str();
}

namespace {

struct CpuidRegs {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
};

CpuidRegs cpuid(unsigned leaf, unsigned subleaf = 0) {
  CpuidRegs r;
  __cpuid_count(leaf, subleaf, r.eax, r.ebx, r.ecx, r.edx);
  return r;
}

std::string brand_string() {
  const unsigned max_ext = cpuid(0x80000000u).eax;
  if (max_ext < 0x80000004u) return "unknown x86-64";
  std::array<char, 49> buf{};
  for (unsigned i = 0; i < 3; ++i) {
    const CpuidRegs r = cpuid(0x80000002u + i);
    const unsigned regs[4] = {r.eax, r.ebx, r.ecx, r.edx};
    for (int j = 0; j < 4; ++j)
      for (int b = 0; b < 4; ++b)
        buf[i * 16 + j * 4 + b] = static_cast<char>((regs[j] >> (8 * b)) & 0xff);
  }
  std::string s(buf.data());
  // Trim leading/trailing spaces that vendors pad the brand string with.
  const auto first = s.find_first_not_of(' ');
  const auto last = s.find_last_not_of(' ');
  return first == std::string::npos ? "unknown x86-64" : s.substr(first, last - first + 1);
}

// Reads a cache size in bytes from CPUID leaf 4 (Intel deterministic cache
// parameters); returns 0 when the requested level is not enumerated.
std::int64_t cache_bytes_leaf4(int wanted_level) {
  for (unsigned sub = 0; sub < 16; ++sub) {
    const CpuidRegs r = cpuid(4, sub);
    const unsigned type = r.eax & 0x1f;
    if (type == 0) break;                 // no more caches
    const int level = static_cast<int>((r.eax >> 5) & 0x7);
    const bool is_data = type == 1 || type == 3;  // data or unified
    if (level != wanted_level || !is_data) continue;
    const std::int64_t ways = ((r.ebx >> 22) & 0x3ff) + 1;
    const std::int64_t partitions = ((r.ebx >> 12) & 0x3ff) + 1;
    const std::int64_t line = (r.ebx & 0xfff) + 1;
    const std::int64_t sets = static_cast<std::int64_t>(r.ecx) + 1;
    return ways * partitions * line * sets;
  }
  return 0;
}

CpuArch detect_host() {
  CpuArch a;
  a.name = brand_string();

  const CpuidRegs f1 = cpuid(1);
  a.has_sse2 = (f1.edx >> 26) & 1;
  const bool osxsave = (f1.ecx >> 27) & 1;
  const bool avx_bit = (f1.ecx >> 28) & 1;
  a.has_fma3 = (f1.ecx >> 12) & 1;

  // AVX additionally requires OS support for YMM state (XCR0 bits 1|2).
  bool ymm_enabled = false;
  if (osxsave) {
    unsigned lo = 0, hi = 0;
    __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    ymm_enabled = (lo & 0x6) == 0x6;
  }
  a.has_avx = avx_bit && ymm_enabled;
  a.has_fma3 = a.has_fma3 && ymm_enabled;

  const CpuidRegs f7 = cpuid(7);
  a.has_avx2 = a.has_avx && ((f7.ebx >> 5) & 1);

  const unsigned max_ext = cpuid(0x80000000u).eax;
  if (max_ext >= 0x80000001u) {
    const CpuidRegs e1 = cpuid(0x80000001u);
    a.has_fma4 = ymm_enabled && ((e1.ecx >> 16) & 1);
  }

  if (std::int64_t l1 = cache_bytes_leaf4(1); l1 > 0) a.l1d_bytes = l1;
  if (std::int64_t l2 = cache_bytes_leaf4(2); l2 > 0) a.l2_bytes = l2;
  if (std::int64_t l3 = cache_bytes_leaf4(3); l3 > 0) a.l3_bytes = l3;

  // Logical processors available to this process: the default width of the
  // threaded BLAS driver (ThreadPool::default_num_threads).
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 1) a.cores = static_cast<int>(hw);
  return a;
}

}  // namespace

std::string cpu_signature(const CpuArch& arch) {
  std::ostringstream os;
  os << arch.name << "_v" << (arch.has_fma4 ? "fma4." : "")
     << (arch.has_fma3 ? "fma3" : arch.has_avx ? "avx" : "sse2")
     << (arch.has_avx2 ? ".avx2" : "") << "_l" << arch.l1d_bytes / 1024 << "."
     << arch.l2_bytes / 1024 << "." << arch.l3_bytes / 1024;
  std::string s = os.str();
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '-';
  }
  return s;
}

const CpuArch& host_arch() {
  static const CpuArch arch = detect_host();
  return arch;
}

CpuArch sandy_bridge_arch() {
  CpuArch a;
  a.name = "Intel Sandy Bridge E5-2680 (synthetic)";
  a.has_avx = true;
  a.has_fma3 = false;
  a.has_fma4 = false;
  a.l1d_bytes = 32 * 1024;
  a.l2_bytes = 256 * 1024;
  a.l3_bytes = 20 * 1024 * 1024;
  a.cores = 8;
  a.nominal_ghz = 2.7;
  return a;
}

CpuArch piledriver_arch() {
  CpuArch a;
  a.name = "AMD Piledriver Opteron 6380 (synthetic)";
  a.has_avx = true;
  a.has_fma3 = true;
  a.has_fma4 = true;
  a.l1d_bytes = 16 * 1024;
  a.l2_bytes = 2048 * 1024;
  a.l3_bytes = 8 * 1024 * 1024;
  a.cores = 8;
  a.nominal_ghz = 2.5;
  return a;
}

}  // namespace augem
