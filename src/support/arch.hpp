#pragma once
// CPU architecture description: which SIMD ISA extensions are available,
// cache geometry, and the derived parameters the code generator needs
// (vector width, register file size).
//
// This is the reproduction of the `arch` input to the Template Optimizer
// (paper Fig. 2) and of the platform table the paper reports (Table 5).

#include <cstdint>
#include <string>
#include <vector>

namespace augem {

/// The SIMD instruction-set variants the framework can target.
/// These correspond exactly to the columns/rows of the paper's instruction
/// mapping rules (Tables 1-4): two-operand 128-bit SSE, three-operand
/// 256-bit AVX, and the FMA3 / FMA4 fused multiply-add extensions.
enum class Isa : std::uint8_t {
  kSse2,  ///< 128-bit, two-operand mul/add (Sandy Bridge legacy path)
  kAvx,   ///< 256-bit, three-operand mul/add (Intel Sandy Bridge)
  kFma3,  ///< 256-bit, FMA3 d=a*b+c with d∈{a,b,c} (Haswell+, Piledriver)
  kFma4,  ///< 256-bit, FMA4 with independent destination (AMD Bulldozer/Piledriver)
};

/// Human-readable ISA name ("SSE2", "AVX", "FMA3", "FMA4").
const char* isa_name(Isa isa);

/// Number of doubles per SIMD register for an ISA (2 for SSE2, else 4).
int isa_vector_doubles(Isa isa);

/// SIMD register width in bits (128 or 256).
int isa_vector_bits(Isa isa);

/// True if the ISA uses non-destructive three-operand (VEX) encodings.
bool isa_is_vex(Isa isa);

/// Description of one CPU, either detected from the host via CPUID or
/// constructed synthetically (e.g. to generate Piledriver FMA4 code on an
/// Intel host and execute it in the VM).
struct CpuArch {
  std::string name;          ///< marketing / model string
  bool has_sse2 = true;      ///< baseline for x86-64
  bool has_avx = false;
  bool has_avx2 = false;
  bool has_fma3 = false;
  bool has_fma4 = false;
  int num_vector_regs = 16;  ///< xmm/ymm0-15 in 64-bit mode
  std::int64_t l1d_bytes = 32 * 1024;
  std::int64_t l2_bytes = 256 * 1024;
  std::int64_t l3_bytes = 8 * 1024 * 1024;
  int cores = 1;
  double nominal_ghz = 0.0;  ///< 0 when unknown

  /// Best ISA this CPU can *execute natively* (FMA3 > AVX > SSE2; FMA4 only
  /// if the CPU really has it).
  Isa best_native_isa() const;

  /// True if `isa` can be executed natively on this CPU.
  bool supports(Isa isa) const;

  /// All ISAs this CPU supports natively, in increasing capability order.
  std::vector<Isa> native_isas() const;

  /// Multi-line report in the spirit of the paper's Table 5.
  std::string report() const;
};

/// Stable identifier of the machine class a tuning or benchmark result is
/// valid for: brand string plus the features and cache geometry that change
/// which code wins. Sanitized to [A-Za-z0-9._-] so it can appear in file
/// names and JSON keys verbatim. (Shared by the kernel runtime's cache keys
/// and the perf harness's BENCH_*.json reports.)
std::string cpu_signature(const CpuArch& arch);

/// Detect the host CPU via CPUID (features + cache sizes).
const CpuArch& host_arch();

/// A synthetic Intel Sandy Bridge (AVX, no FMA) — the paper's first testbed.
CpuArch sandy_bridge_arch();

/// A synthetic AMD Piledriver (AVX + FMA3 + FMA4) — the paper's second testbed.
CpuArch piledriver_arch();

}  // namespace augem
