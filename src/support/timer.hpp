#pragma once
// Wall-clock timing utilities for kernel benchmarking and empirical tuning.
//
// The paper times each kernel variant several times and reports the average
// (§5: "We measured the elapsed time of each evaluation five times").
// `time_best_of` mirrors the standard practice in the tuner, where the
// *minimum* is the most reproducible statistic on a noisy machine.

#include <chrono>
#include <cstdint>
#include <functional>

namespace augem {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` `reps` times and returns the fastest single run in seconds.
double time_best_of(int reps, const std::function<void()>& fn);

/// Runs `fn` `reps` times and returns the mean run time in seconds
/// (the statistic the paper reports).
double time_mean_of(int reps, const std::function<void()>& fn);

/// MFLOPS given a flop count and elapsed seconds (the paper's unit).
inline double mflops(double flops, double seconds) {
  return seconds > 0 ? flops / seconds / 1.0e6 : 0.0;
}

}  // namespace augem
