#pragma once
// Per-thread scratch-buffer cache.
//
// The blocked GEMM driver needs packing panels on every call; allocating
// them with aligned_alloc each time puts the allocator on the hot path and,
// worse, serializes the parallel driver on the heap lock. Instead each
// thread keeps one grow-only aligned buffer per named slot, reused across
// calls for the lifetime of the thread (pool workers are persistent, so the
// steady state performs no allocation at all).
//
// Buffers are returned uninitialized: callers own the contents and must
// fully write what they read. Two live uses of the same slot on the same
// thread would alias — slots are named per call site to prevent that.

#include <cstddef>

namespace augem {

/// Named scratch slots; each (thread, slot) pair is one cached buffer.
enum class Scratch : int {
  kGemmPackA,   ///< per-thread packed A block (mc×kc)
  kGemmPackB,   ///< shared packed B panel (kc×nc), owned by the caller thread
  kGemmPadA,    ///< zero-padded edge-tile A copy (augem block kernel)
  kGemmPadB,    ///< zero-padded edge-tile B copy
  kGemmPadC,    ///< zero-padded edge-tile C accumulator
  kLevel3TmpA,  ///< Level-3 default algorithms: diagonal/temporary block
  kLevel3TmpB,  ///< Level-3 default algorithms: second temporary block
  kCount
};

/// Returns this thread's cached 64-byte-aligned buffer for `slot`, grown to
/// hold at least `count` doubles. The pointer stays valid until the next
/// larger request for the same slot on the same thread.
double* scratch_doubles(std::size_t count, Scratch slot);

}  // namespace augem
