#pragma once
// Per-thread scratch-buffer cache.
//
// The blocked GEMM driver needs packing panels on every call; allocating
// them with aligned_alloc each time puts the allocator on the hot path and,
// worse, serializes the parallel driver on the heap lock. Instead each
// thread keeps one grow-only aligned buffer per named slot, reused across
// calls for the lifetime of the thread (pool workers are persistent, so the
// steady state performs no allocation at all).
//
// Buffers are returned uninitialized: callers own the contents and must
// fully write what they read. Two live uses of the same slot on the same
// thread would alias — slots are named per call site to prevent that, and
// code that holds a slot across nested calls (the Level-3 casting routines
// hold kLevel3Tmp* pointers across virtual gemm calls) takes a ScratchLease
// so debug builds catch any re-acquisition of a held slot.

#include <cstddef>

namespace augem {

/// Named scratch slots; each (thread, slot) pair is one cached buffer.
enum class Scratch : int {
  kGemmPackA,     ///< per-thread packed A block (mc×kc)
  kGemmPackB,     ///< shared packed B panel (kc×nc), owned by caller thread
  kGemmPadA,      ///< zero-padded edge-tile A copy (augem block kernel)
  kGemmPadB,      ///< zero-padded edge-tile B copy
  kGemmPadC,      ///< zero-padded edge-tile C accumulator
  kLevel3TmpA,    ///< Level-3 algorithms: diagonal/temporary block
  kLevel3TmpB,    ///< Level-3 algorithms: second temporary block
  kLevel3PackB,   ///< Level-3 engine: shared reusable packed panel
  kLevel3PackB2,  ///< Level-3 engine: second reusable packed panel (syr2k)
  kCount
};

/// Returns this thread's cached 64-byte-aligned buffer for `slot`, grown to
/// hold at least `count` doubles. The pointer stays valid until the next
/// larger request for the same slot on the same thread. In debug builds,
/// asserts the slot is not currently held by a live ScratchLease on this
/// thread (a grow would silently invalidate the lease's pointer).
double* scratch_doubles(std::size_t count, Scratch slot);

/// True when the debug live-slot accounting below is compiled in (!NDEBUG);
/// tests use this to skip the negative cases in release builds.
bool scratch_guard_enabled();

/// RAII ownership of a scratch slot for code that keeps the pointer live
/// across nested calls (e.g. a Level-3 diagonal temporary held across a
/// virtual gemm). Acquiring a slot that is already leased on this thread is
/// a programming error — the nested user would alias or reallocate the
/// held buffer — and asserts in debug builds.
class ScratchLease {
 public:
  ScratchLease(std::size_t count, Scratch slot);
  ~ScratchLease();
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  double* data() const { return data_; }

 private:
  double* data_;
  Scratch slot_;
};

}  // namespace augem
