#include "transform/scalarrep.hpp"

#include "ir/visit.hpp"
#include "support/error.hpp"

namespace augem::transform {

using namespace augem::ir;

namespace {

bool is_f64_assign(const Assign& a, const Kernel& kernel) {
  if (as<ArrayRef>(a.lhs()) != nullptr) return true;  // stores are F64
  const auto* v = as<VarRef>(a.lhs());
  AUGEM_CHECK(v != nullptr, "assignment lhs must be a variable or array ref");
  return kernel.type_of(v->name()) == ScalarType::kF64;
}

bool is_leaf(const Expr& e) {
  return e.kind() == ExprKind::kVarRef || e.kind() == ExprKind::kFloatConst;
}

/// Lowers `e` to a leaf operand, emitting load/compute temps into `out`.
ExprPtr lower_operand(const Expr& e, StmtList& out, Kernel& kernel) {
  if (is_leaf(e)) return e.clone();
  const std::string tmp = kernel.fresh_name("tmp");
  kernel.declare_local(tmp, ScalarType::kF64);
  if (const auto* ref = as<ArrayRef>(e)) {
    out.push_back(assign(var(tmp), ref->clone()));
    return var(tmp);
  }
  const auto* b = as<Binary>(e);
  AUGEM_CHECK(b != nullptr, "unexpected expression in F64 assignment: "
                                << e.to_string());
  ExprPtr l = lower_operand(b->lhs(), out, kernel);
  ExprPtr r = lower_operand(b->rhs(), out, kernel);
  out.push_back(assign(var(tmp), bin(b->op(), std::move(l), std::move(r))));
  return var(tmp);
}

/// Lowers one F64 assignment into three-address statements appended to out.
void lower_assign(const Assign& a, StmtList& out, Kernel& kernel) {
  const Expr& rhs = a.rhs();

  if (const auto* store_target = as<ArrayRef>(a.lhs())) {
    // Store: reduce the RHS to a scalar, then store it.
    ExprPtr value;
    if (const auto* b = as<Binary>(rhs)) {
      // Keep the final operator as its own statement feeding the store.
      ExprPtr l = lower_operand(b->lhs(), out, kernel);
      ExprPtr r = lower_operand(b->rhs(), out, kernel);
      const std::string tmp = kernel.fresh_name("tmp");
      kernel.declare_local(tmp, ScalarType::kF64);
      out.push_back(assign(var(tmp), bin(b->op(), std::move(l), std::move(r))));
      value = var(tmp);
    } else {
      value = lower_operand(rhs, out, kernel);
    }
    out.push_back(assign(store_target->clone(), std::move(value)));
    return;
  }

  // Scalar destination.
  if (is_leaf(rhs) || rhs.kind() == ExprKind::kArrayRef) {
    out.push_back(assign(a.lhs().clone(), rhs.clone()));  // load or copy
    return;
  }
  const auto* b = as<Binary>(rhs);
  AUGEM_CHECK(b != nullptr, "unexpected expression in F64 assignment: "
                                << rhs.to_string());
  // Keep the destination on the final operator: `res = res + tmp2` rather
  // than an extra copy through a temp.
  ExprPtr l = lower_operand(b->lhs(), out, kernel);
  ExprPtr r = lower_operand(b->rhs(), out, kernel);
  out.push_back(assign(a.lhs().clone(), bin(b->op(), std::move(l), std::move(r))));
}

StmtList process(StmtList stmts, Kernel& kernel) {
  StmtList out;
  for (StmtPtr& s : stmts) {
    if (auto* loop = as_mutable<ForStmt>(*s)) {
      loop->mutable_body() = process(std::move(loop->mutable_body()), kernel);
      out.push_back(std::move(s));
      continue;
    }
    const auto* a = as<Assign>(*s);
    if (a == nullptr || !is_f64_assign(*a, kernel)) {
      out.push_back(std::move(s));
      continue;
    }
    lower_assign(*a, out, kernel);
  }
  return out;
}

}  // namespace

void scalar_replace(ir::Kernel& kernel) {
  kernel.mutable_body() = process(std::move(kernel.mutable_body()), kernel);
}

void check_three_address_form(const ir::Kernel& kernel) {
  for_each_stmt(kernel.body(), [&](const Stmt& s) {
    const auto* a = as<Assign>(s);
    if (a == nullptr) return;
    if (!is_f64_assign(*a, kernel)) return;

    if (as<ArrayRef>(a->lhs()) != nullptr) {
      AUGEM_CHECK(is_leaf(a->rhs()),
                  "store RHS must be a scalar leaf: " << s.to_string(0));
      return;
    }
    const Expr& rhs = a->rhs();
    if (is_leaf(rhs)) return;  // copy
    if (const auto* ref = as<ArrayRef>(rhs)) {
      (void)ref;
      return;  // load
    }
    const auto* b = as<Binary>(rhs);
    AUGEM_CHECK(b != nullptr && is_leaf(b->lhs()) && is_leaf(b->rhs()),
                "not three-address form: " << s.to_string(0));
  });
}

}  // namespace augem::transform
