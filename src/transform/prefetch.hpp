#pragma once
// Data prefetching (paper §2.1, Fig. 13 lines 7-8 and 12).
//
// Two insertion points mirror the paper's GEMM kernel:
//  * before each innermost loop, the store targets of the *enclosing* body
//    (the C tile cursors) are prefetched so the tile is resident by the
//    time the accumulator loop finishes;
//  * at the top of each innermost loop body, the streamed arrays (the A/B
//    panel cursors) are prefetched `distance` elements ahead.

#include "ir/kernel.hpp"

namespace augem::transform {

struct PrefetchConfig {
  bool enabled = true;
  /// Elements ahead for streamed (loaded) arrays in innermost loops.
  int distance = 16;
  /// Prefetch the store targets of the enclosing body before inner loops.
  bool prefetch_stores = true;
  /// __builtin_prefetch locality hint (3 = keep in all cache levels).
  int locality = 3;
};

/// Inserts prefetch statements per `config`. No-op when disabled.
void insert_prefetch(ir::Kernel& kernel, const PrefetchConfig& config = {});

}  // namespace augem::transform
