#include "transform/prefetch.hpp"

#include <set>

#include "ir/visit.hpp"

namespace augem::transform {

using namespace augem::ir;

namespace {

bool is_innermost(const ForStmt& loop) {
  for (const StmtPtr& s : loop.body())
    if (s->kind() == StmtKind::kFor) return false;
  return true;
}

/// Bases loaded (read through ArrayRef on a RHS) in a statement list.
std::set<std::string> loaded_bases(const StmtList& body) {
  std::set<std::string> bases;
  for_each_stmt(body, [&](const Stmt& s) {
    if (const auto* a = as<Assign>(s)) {
      // Walk only the RHS: store targets are not streams.
      std::function<void(const Expr&)> walk = [&](const Expr& e) {
        if (const auto* ref = as<ArrayRef>(e)) {
          bases.insert(ref->base());
          walk(ref->index());
        } else if (const auto* b = as<Binary>(e)) {
          walk(b->lhs());
          walk(b->rhs());
        }
      };
      walk(a->rhs());
    }
  });
  return bases;
}

/// Bases stored to in a statement list (not descending into nested loops —
/// those handle their own prefetching).
std::set<std::string> stored_bases_shallow(const StmtList& body) {
  std::set<std::string> bases;
  for (const StmtPtr& s : body) {
    if (const auto* a = as<Assign>(*s))
      if (const auto* ref = as<ArrayRef>(a->lhs())) bases.insert(ref->base());
  }
  return bases;
}

void process(StmtList& stmts, const PrefetchConfig& cfg) {
  // First: prefetch store targets of this body before each innermost loop.
  if (cfg.prefetch_stores) {
    const std::set<std::string> stores = stored_bases_shallow(stmts);
    if (!stores.empty()) {
      StmtList out;
      for (StmtPtr& s : stmts) {
        const auto* loop = as<ForStmt>(*s);
        if (loop != nullptr && is_innermost(*loop)) {
          for (const std::string& base : stores)
            out.push_back(prefetch(base, ival(0), cfg.locality));
        }
        out.push_back(std::move(s));
      }
      stmts = std::move(out);
    }
  }

  for (StmtPtr& s : stmts) {
    auto* loop = as_mutable<ForStmt>(*s);
    if (loop == nullptr) continue;
    if (!is_innermost(*loop)) {
      process(loop->mutable_body(), cfg);
      continue;
    }
    // Innermost loop: prefetch the streamed arrays `distance` ahead.
    StmtList& body = loop->mutable_body();
    StmtList out;
    for (const std::string& base : loaded_bases(body))
      out.push_back(prefetch(base, ival(cfg.distance), cfg.locality));
    for (StmtPtr& b : body) out.push_back(std::move(b));
    body = std::move(out);
  }
}

}  // namespace

void insert_prefetch(ir::Kernel& kernel, const PrefetchConfig& config) {
  if (!config.enabled) return;
  process(kernel.mutable_body(), config);
}

}  // namespace augem::transform
