#pragma once
// The Optimized C Kernel Generator (paper §2.1): applies the five
// source-to-source transformations to a simple-C kernel with explicit,
// tunable parameters, producing the "low-level optimized C" the Template
// Identifier consumes.
//
// Parameter roles per kernel (mirroring the paper's §4):
//   GEMM : unroll&jam j by `nr`, unroll&jam i by `mr` (the register tile),
//          unroll l by `ku`, then strength reduction, scalar replacement,
//          prefetching. The drivers guarantee mc % mr == 0 and nc % nr == 0.
//   GEMV : unroll the inner j loop by `unroll` (with remainder loop).
//   AXPY / DOT : unroll the i loop by `unroll` (with remainder loop).

#include "frontend/kernels.hpp"
#include "ir/kernel.hpp"
#include "transform/prefetch.hpp"

namespace augem::transform {

/// Tunable source-level parameters — the search space of the empirical
/// tuner (paper §2.1: "automatically experiments with different unrolling
/// and unroll&jam configurations").
struct CGenParams {
  int mr = 4;            ///< GEMM i-direction register tile (unroll&jam)
  int nr = 2;            ///< GEMM j-direction register tile (unroll&jam)
  int ku = 1;            ///< GEMM inner (l) unroll factor
  int unroll = 8;        ///< level-1/2 inner-loop unroll factor
  PrefetchConfig prefetch;

  std::string to_string() const;
};

/// Runs the full source-to-source pipeline on the simple-C kernel for
/// `kind`, returning the optimized low-level C kernel.
ir::Kernel generate_optimized_c(frontend::KernelKind kind,
                                frontend::BLayout layout,
                                const CGenParams& params);

/// Same, but starting from a caller-provided simple-C kernel (used by
/// tests and by ablations that tweak the input).
void apply_pipeline(ir::Kernel& kernel, frontend::KernelKind kind,
                    const CGenParams& params);

/// Small-GEMM pipeline: register-tiles i by `params.mr` and j by
/// `params.nr` (both must divide the spec's constant extents), strength-
/// reduces, fully unrolls the depth loop, and scalar-replaces — producing a
/// straight-line low-level C kernel whose epilogue stores the Template
/// Identifier's mmEpiSTORE template matches. `params.ku` is ignored: the
/// unroll factor of l is always the spec's k.
ir::Kernel generate_small_gemm_c(const frontend::SmallGemmSpec& spec,
                                 const CGenParams& params);

}  // namespace augem::transform
