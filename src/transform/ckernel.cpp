#include "transform/ckernel.hpp"

#include <sstream>

#include "support/error.hpp"
#include "transform/scalarrep.hpp"
#include "transform/strength.hpp"
#include "transform/unroll.hpp"

namespace augem::transform {

using frontend::KernelKind;

std::string CGenParams::to_string() const {
  std::ostringstream os;
  os << "mr=" << mr << " nr=" << nr << " ku=" << ku << " unroll=" << unroll
     << " prefetch=" << (prefetch.enabled ? "on" : "off");
  if (prefetch.enabled) os << " dist=" << prefetch.distance;
  return os.str();
}

void apply_pipeline(ir::Kernel& kernel, KernelKind kind,
                    const CGenParams& params) {
  switch (kind) {
    case KernelKind::kGemm:
      AUGEM_CHECK(params.mr >= 1 && params.nr >= 1 && params.ku >= 1,
                  "invalid GEMM tile " << params.to_string());
      // Register tiling: the macro driver pads/guarantees divisibility of
      // mc by mr and nc by nr, so no remainder loops are needed here.
      // i is jammed first so the final statement order groups the C-tile
      // stores per column cursor (C0[0], C0[1], …, C1[0], C1[1] — the
      // paper's Fig. 14 order, which mmUnrolledSTORE merging relies on).
      unroll_and_jam(kernel, "i", params.mr, /*assume_divisible=*/true);
      unroll_and_jam(kernel, "j", params.nr, /*assume_divisible=*/true);
      // The l loop is unrolled *after* strength reduction: the A/B strides
      // (mc, nc) are runtime values, so unrolled copies advance the cursors
      // between groups instead of multiplying the cursor count (runtime
      // strides cannot become constant x86 displacements).
      strength_reduce(kernel);
      if (params.ku > 1) unroll(kernel, "l", params.ku);
      scalar_replace(kernel);
      check_three_address_form(kernel);
      insert_prefetch(kernel, params.prefetch);
      return;
    case KernelKind::kGemv:
      AUGEM_CHECK(params.unroll >= 1, "invalid unroll " << params.unroll);
      if (params.unroll > 1) unroll(kernel, "j", params.unroll);
      break;
    case KernelKind::kAxpy:
    case KernelKind::kDot:
    case KernelKind::kScal:
      AUGEM_CHECK(params.unroll >= 1, "invalid unroll " << params.unroll);
      if (params.unroll > 1) unroll(kernel, "i", params.unroll);
      break;
  }
  strength_reduce(kernel);
  scalar_replace(kernel);
  check_three_address_form(kernel);
  insert_prefetch(kernel, params.prefetch);
}

ir::Kernel generate_optimized_c(KernelKind kind, frontend::BLayout layout,
                                const CGenParams& params) {
  ir::Kernel kernel = frontend::make_kernel(kind, layout);
  apply_pipeline(kernel, kind, params);
  return kernel;
}

ir::Kernel generate_small_gemm_c(const frontend::SmallGemmSpec& spec,
                                 const CGenParams& params) {
  AUGEM_CHECK(params.mr >= 1 && params.nr >= 1,
              "invalid small-GEMM tile " << params.to_string());
  AUGEM_CHECK(spec.m % params.mr == 0 && spec.n % params.nr == 0,
              "small-GEMM tile " << params.mr << "x" << params.nr
                                 << " must divide " << spec.to_string());
  ir::Kernel kernel = frontend::make_small_gemm_kernel(spec);
  unroll_and_jam(kernel, "i", params.mr, /*assume_divisible=*/true);
  unroll_and_jam(kernel, "j", params.nr, /*assume_divisible=*/true);
  // Like GEMM the strides (lda/ldb/ldc) are runtime values, so cursors are
  // created before the depth loop is unrolled; unlike GEMM the depth extent
  // is a constant, so it unrolls away completely.
  strength_reduce(kernel);
  if (spec.k > 1) unroll(kernel, "l", spec.k);
  scalar_replace(kernel);
  check_three_address_form(kernel);
  insert_prefetch(kernel, params.prefetch);
  return kernel;
}

}  // namespace augem::transform
