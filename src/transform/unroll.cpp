#include "transform/unroll.hpp"

#include <algorithm>
#include <set>

#include "ir/affine.hpp"
#include "ir/visit.hpp"
#include "support/error.hpp"

namespace augem::transform {

using namespace augem::ir;

namespace {

/// Applies `fn` to the unique loop over `loop_var`, replacing the loop
/// statement with whatever list `fn` returns. Returns the number of loops
/// replaced (expected: exactly 1).
int replace_loop(StmtList& stmts, const std::string& loop_var,
                 const std::function<StmtList(const ForStmt&)>& fn) {
  int replaced = 0;
  StmtList out;
  for (StmtPtr& s : stmts) {
    auto* loop = as_mutable<ForStmt>(*s);
    if (loop != nullptr && loop->var() == loop_var) {
      StmtList replacement = fn(*loop);
      for (StmtPtr& r : replacement) out.push_back(std::move(r));
      ++replaced;
      continue;
    }
    if (loop != nullptr) replaced += replace_loop(loop->mutable_body(), loop_var, fn);
    out.push_back(std::move(s));
  }
  stmts = std::move(out);
  return replaced;
}

/// Clone of `body` with `v := v + offset`, re-canonicalizing subscripts so
/// unrolled indices print as `i + 1` rather than `(i + 1)`-shaped trees
/// nested inside products.
StmtList offset_copy(const StmtList& body, const std::string& v,
                     std::int64_t offset) {
  StmtList copy =
      offset == 0 ? clone_stmts(body)
                  : substitute_var(body, v, *add(var(v), ival(offset)));
  return rewrite_stmts(copy, [](const Expr& e) -> ExprPtr {
    if (const auto* a = as<ArrayRef>(e))
      return arr(a->base(), simplify_index(a->index()));
    return nullptr;
  });
}

/// Read/write name sets of a statement run. Array bases are treated as
/// single conservative cells.
struct Effects {
  std::set<std::string> reads;
  std::set<std::string> writes;
};

void collect_expr_reads(const Expr& e, std::set<std::string>& reads) {
  if (const auto* v = as<VarRef>(e)) {
    reads.insert(v->name());
  } else if (const auto* a = as<ArrayRef>(e)) {
    reads.insert(a->base());
    collect_expr_reads(a->index(), reads);
  } else if (const auto* b = as<Binary>(e)) {
    collect_expr_reads(b->lhs(), reads);
    collect_expr_reads(b->rhs(), reads);
  }
}

void collect_effects(const Stmt& s, Effects& eff) {
  switch (s.kind()) {
    case StmtKind::kAssign: {
      const auto& a = *as<Assign>(s);
      collect_expr_reads(a.rhs(), eff.reads);
      if (const auto* v = as<VarRef>(a.lhs())) {
        eff.writes.insert(v->name());
      } else if (const auto* ar = as<ArrayRef>(a.lhs())) {
        eff.writes.insert(ar->base());
        collect_expr_reads(ar->index(), eff.reads);
      }
      break;
    }
    case StmtKind::kFor: {
      const auto& f = *as<ForStmt>(s);
      eff.writes.insert(f.var());
      eff.reads.insert(f.var());
      collect_expr_reads(f.lower(), eff.reads);
      collect_expr_reads(f.upper(), eff.reads);
      for (const StmtPtr& b : f.body()) collect_effects(*b, eff);
      break;
    }
    case StmtKind::kPrefetch: {
      const auto& p = *as<Prefetch>(s);
      eff.reads.insert(p.base());
      collect_expr_reads(p.index(), eff.reads);
      break;
    }
  }
}

Effects effects_of(const StmtList& stmts) {
  Effects eff;
  for (const StmtPtr& s : stmts) collect_effects(*s, eff);
  return eff;
}

bool disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::none_of(a.begin(), a.end(),
                      [&](const std::string& x) { return b.count(x) > 0; });
}

/// True if statements with effects `moved` may be reordered across
/// statements with effects `crossed` (no read-write or write-write hazard).
bool reorder_legal(const Effects& moved, const Effects& crossed) {
  return disjoint(moved.writes, crossed.reads) &&
         disjoint(moved.writes, crossed.writes) &&
         disjoint(moved.reads, crossed.writes);
}

/// Recursively fuses F structurally parallel statement lists: leading
/// non-loop statements are grouped (in copy order), matching loops are
/// fused with their bodies jam-merged, and the process repeats on the
/// tails. Verifies the implied statement reordering is dependence-safe.
StmtList jam_merge(std::vector<StmtList> copies) {
  const std::size_t f = copies.size();
  AUGEM_CHECK(f >= 2, "jam needs at least two copies");

  // Split each copy at its first loop.
  std::vector<StmtList> pres(f), tails(f);
  std::vector<StmtPtr> loops(f);
  bool any_loop = false;
  for (std::size_t k = 0; k < f; ++k) {
    StmtList& c = copies[k];
    std::size_t p = 0;
    while (p < c.size() && c[p]->kind() != StmtKind::kFor) {
      pres[k].push_back(std::move(c[p]));
      ++p;
    }
    if (p < c.size()) {
      any_loop = true;
      loops[k] = std::move(c[p]);
      ++p;
    }
    while (p < c.size()) {
      tails[k].push_back(std::move(c[p]));
      ++p;
    }
  }

  StmtList out;
  if (!any_loop) {
    for (std::size_t k = 0; k < f; ++k)
      for (StmtPtr& s : pres[k]) out.push_back(std::move(s));
    return out;
  }

  // Every copy must contribute a loop with an identical header; the copies
  // come from unrolling one body, so a mismatch means the transform was
  // applied to a kernel outside its domain.
  for (std::size_t k = 0; k < f; ++k)
    AUGEM_CHECK(loops[k] != nullptr,
                "unroll&jam: copy " << k << " lacks the loop its siblings have");
  const auto& head = *as<ForStmt>(*loops[0]);
  for (std::size_t k = 1; k < f; ++k) {
    const auto& lk = *as<ForStmt>(*loops[k]);
    AUGEM_CHECK(lk.var() == head.var() && lk.step() == head.step() &&
                    lk.lower().equals(head.lower()) &&
                    lk.upper().equals(head.upper()),
                "unroll&jam: loop headers over '" << head.var()
                                                  << "' diverge across copies");
  }

  // Legality of the grouping reorder: copy k's pre-statements move ahead of
  // copies <k's loop and tail; copy k's tail moves behind copies >k's loop
  // (the pres of later copies were already checked symmetrically).
  for (std::size_t k = 1; k < f; ++k) {
    Effects moved = effects_of(pres[k]);
    for (std::size_t j = 0; j < k; ++j) {
      Effects crossed;
      collect_effects(*loops[j], crossed);
      Effects tail_eff = effects_of(tails[j]);
      crossed.reads.insert(tail_eff.reads.begin(), tail_eff.reads.end());
      crossed.writes.insert(tail_eff.writes.begin(), tail_eff.writes.end());
      AUGEM_CHECK(reorder_legal(moved, crossed),
                  "unroll&jam: hoisting statements of copy "
                      << k << " across copy " << j << " is not dependence-safe");
    }
  }
  for (std::size_t k = 0; k + 1 < f; ++k) {
    Effects moved = effects_of(tails[k]);
    for (std::size_t j = k + 1; j < f; ++j) {
      Effects crossed;
      collect_effects(*loops[j], crossed);
      AUGEM_CHECK(reorder_legal(moved, crossed),
                  "unroll&jam: sinking statements of copy "
                      << k << " across copy " << j << " is not dependence-safe");
    }
  }

  for (std::size_t k = 0; k < f; ++k)
    for (StmtPtr& s : pres[k]) out.push_back(std::move(s));

  std::vector<StmtList> inner_bodies;
  inner_bodies.reserve(f);
  for (std::size_t k = 0; k < f; ++k) {
    auto* lk = as_mutable<ForStmt>(*loops[k]);
    inner_bodies.push_back(std::move(lk->mutable_body()));
  }
  out.push_back(forloop(head.var(), head.lower().clone(), head.upper().clone(),
                        head.step(), jam_merge(std::move(inner_bodies))));

  bool tails_nonempty = false;
  for (std::size_t k = 0; k < f; ++k) tails_nonempty |= !tails[k].empty();
  if (tails_nonempty) {
    StmtList merged_tails = jam_merge(std::move(tails));
    for (StmtPtr& s : merged_tails) out.push_back(std::move(s));
  }
  return out;
}

/// Names of floating-point scalars assigned anywhere in `body`.
std::set<std::string> written_f64_scalars(const StmtList& body,
                                          const Kernel& kernel) {
  std::set<std::string> names;
  for_each_stmt(body, [&](const Stmt& s) {
    if (const auto* a = as<Assign>(s)) {
      if (const auto* v = as<VarRef>(a->lhs())) {
        if (kernel.type_of(v->name()) == ScalarType::kF64)
          names.insert(v->name());
      }
    }
  });
  return names;
}

}  // namespace

void unroll(ir::Kernel& kernel, const std::string& loop_var, int factor,
            bool assume_divisible) {
  AUGEM_CHECK(factor >= 1, "unroll factor must be >= 1, got " << factor);
  if (factor == 1) return;

  const int n = replace_loop(
      kernel.mutable_body(), loop_var, [&](const ForStmt& loop) -> StmtList {
        const std::int64_t s = loop.step();
        StmtList main_body;
        for (int k = 0; k < factor; ++k) {
          StmtList copy = offset_copy(loop.body(), loop_var, k * s);
          for (StmtPtr& st : copy) main_body.push_back(std::move(st));
        }
        StmtList out;
        ExprPtr main_upper =
            assume_divisible
                ? loop.upper().clone()
                : sub(loop.upper().clone(), ival(factor * s - 1));
        out.push_back(forloop(loop_var, loop.lower().clone(),
                              std::move(main_upper), factor * s,
                              std::move(main_body)));
        if (!assume_divisible) {
          // Remainder re-enters with the counter value the main loop left:
          // rendered/lowered as a loop without counter re-initialization.
          out.push_back(forloop(loop_var, var(loop_var), loop.upper().clone(),
                                s, clone_stmts(loop.body())));
        }
        return out;
      });
  AUGEM_CHECK(n == 1, "expected exactly one loop over '" << loop_var
                                                         << "', found " << n);
}

void unroll_and_jam(ir::Kernel& kernel, const std::string& loop_var, int factor,
                    bool assume_divisible) {
  AUGEM_CHECK(factor >= 1, "unroll&jam factor must be >= 1, got " << factor);
  if (factor == 1) return;  // a 1-jam is the identity; divisibility is vacuous
  AUGEM_CHECK(assume_divisible,
              "unroll&jam over '"
                  << loop_var << "' by factor " << factor
                  << " requires a trip count divisible by the factor: once "
                     "iterations are jammed, no remainder loop can restore "
                     "the leftover ones. The BLAS drivers guarantee "
                     "divisibility for the register-tile loops by padding "
                     "partial tiles (augem::padded_gemm_block_kernel); for "
                     "a general loop use unroll(), which emits a remainder "
                     "loop");

  const int n = replace_loop(
      kernel.mutable_body(), loop_var, [&](const ForStmt& loop) -> StmtList {
        const std::int64_t s = loop.step();
        const std::set<std::string> renamable =
            written_f64_scalars(loop.body(), kernel);

        std::vector<StmtList> copies;
        copies.reserve(factor);
        for (int k = 0; k < factor; ++k) {
          StmtList copy = offset_copy(loop.body(), loop_var, k * s);
          if (k > 0) {
            // Rename per-iteration scalars apart (res → res1, res2, …),
            // mirroring the res0…res3 expansion of the paper's Fig. 13.
            for (const std::string& name : renamable) {
              const std::string renamed = kernel.fresh_name(name);
              kernel.declare_local(renamed, ScalarType::kF64);
              copy = substitute_var(copy, name, *var(renamed));
            }
          }
          copies.push_back(std::move(copy));
        }

        StmtList out;
        out.push_back(forloop(loop_var, loop.lower().clone(),
                              loop.upper().clone(), factor * s,
                              jam_merge(std::move(copies))));
        return out;
      });
  AUGEM_CHECK(n == 1, "expected exactly one loop over '" << loop_var
                                                         << "', found " << n);
}

}  // namespace augem::transform
