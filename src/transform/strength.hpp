#pragma once
// Strength reduction (paper §2.1): replaces repeated array-subscript
// evaluation inside loops with incrementally advanced pointer cursors —
// the `ptr_A`, `ptr_B`, `ptr_C0`, `ptr_C1` variables of the paper's Fig. 13.
//
// For each loop `for (v = lo; v < hi; v += s)` and each group of array
// references `base[idx]` in its body whose subscripts are linear in `v` and
// differ only by compile-time constants, the pass introduces a cursor
//     ptr = base + (idx without its constant part, with v := lo);
// rewrites the references to `ptr[const]`, and appends
//     ptr = ptr + coeff(v) * s;
// to the loop body. Coefficients may be symbolic (e.g. `ldc`), in which
// case the increment is a runtime value. Loops are processed
// innermost-first, so multi-loop subscripts like `A[l*mc + i]` reduce to a
// cursor over `l` that is re-based once per `i` iteration.

#include "ir/kernel.hpp"

namespace augem::transform {

/// Applies strength reduction to every loop of the kernel (innermost-first).
void strength_reduce(ir::Kernel& kernel);

}  // namespace augem::transform
